# GradSec reproduction — build/test/bench entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite, race detector enabled
#   make fuzz-check   run the fuzz corpora in regression mode (no fuzzing)
#   make bench        all artefact + fleet benchmarks (one iteration each)
#   make bench-fleet  fixed-benchtime fleet benchmarks -> bench/fleet.txt
#   make bench-secagg secagg privacy-ladder benchmarks -> bench/secagg.txt
#   make bench-hier   hierarchical fan-in benchmarks   -> bench/hier.txt
#   make bench-async  async buffered-federation benchmarks -> bench/async.txt
#   make bench-recover journal-replay vs re-attest benchmarks -> bench/recover.txt
#   make bench-obs    telemetry-overhead benchmarks (off vs on) -> bench/obs.txt
#   make bench-smoke  every benchmark once, small cases only (CI)
#   make smoke-telemetry run the observability example end to end
#   make check        build + vet + test + fuzz regression + telemetry smoke (CI gate)
#
# Benchmark artefacts land in the git-ignored bench/ directory.

GO ?= go

.PHONY: build vet test fuzz-check bench bench-fleet bench-secagg bench-hier bench-async bench-recover bench-obs bench-smoke smoke-telemetry check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Replays the fuzz seed corpora as ordinary tests. `make test` already
# covers the seeds implicitly (go test runs fuzz targets as unit tests);
# this target is the explicit, fast regression gate for the decoder
# corpora and the entry point documented for CI. Real fuzzing is
# `go test -fuzz FuzzReadFrame ./internal/wire` etc.
fuzz-check:
	$(GO) test -run 'Fuzz' ./internal/wire ./internal/fl ./internal/journal ./internal/obs ./internal/secagg

# The legacy full-pairwise masked rounds (mask expansion is
# O(cohort² · model)) exceed go test's default 10m timeout.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x -benchmem -timeout 60m .

# Fixed-iteration fleet benchmark sweep (clients × codec), captured as a
# comparable artefact. Not part of `check`: it takes minutes. Written to
# the file first so a failing run propagates its exit status (a bare
# pipe into tee would mask it).
bench-fleet:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkFleetRound' -benchtime=2x -benchmem . > bench/fleet.txt; \
	status=$$?; cat bench/fleet.txt; exit $$status

# The telemetry example doubles as the observability smoke test: it
# runs a metered fleet, serves the admin listener, and scrapes its own
# /metrics and /healthz — failing loudly if the exposition is empty.
smoke-telemetry:
	$(GO) run ./examples/telemetry

check: build vet test fuzz-check smoke-telemetry

# Privacy-ladder benchmark: plain vs k-regular masked (auto degree,
# the default) vs legacy full-pairwise vs enclave aggregation at
# 64/256/1024 clients. Three iterations per cell: single-shot fleet
# rounds swing ±20% on a busy host, which is noise the masked/plain
# ratio cannot absorb. The legacy complete graph is O(cohort² · model)
# in mask expansion — that baseline keeps the raised timeout (its
# 1024-client cell is skipped in-run; EXPERIMENTS.md records it).
bench-secagg:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkSecAggRound' -benchtime=3x -benchmem -timeout 60m . > bench/secagg.txt; \
	status=$$?; cat bench/secagg.txt; exit $$status

# Hierarchical fan-in benchmark: flat server vs sharded root over
# protocol stubs at 4096/16384 simulated clients. The flat 16384-client
# baseline alone runs for minutes — that asymmetry is the result.
bench-hier:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkHierRound' -benchtime=1x -benchmem -timeout 60m . > bench/hier.txt; \
	status=$$?; cat bench/hier.txt; exit $$status

# Async buffered-federation benchmark: lockstep-deterministic fleets at
# 64/256 clients, 8 buffered applications each. The async soak and
# edge-case tests themselves run under the race detector via `make
# test` (part of `check`).
bench-async:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkAsyncRound' -benchtime=1x -benchmem -timeout 60m . > bench/async.txt; \
	status=$$?; cat bench/async.txt; exit $$status

# Telemetry-overhead benchmark: the same stub-client round with
# observability disabled (nil instruments, must cost zero extra
# allocations) and enabled (registry + span sink), plus the merged
# path (BenchmarkObsRoundMerged — a root folding 16 shard snapshot
# deltas per round). The reference pair lives in EXPERIMENTS.md.
bench-obs:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkObsRound' -benchtime=5x -benchmem . > bench/obs.txt; \
	status=$$?; cat bench/obs.txt; exit $$status

# Crash-recovery benchmark: journal replay (time-to-resume) vs the
# per-device re-attestation a journal-less restart pays, at 256/1024
# clients.
bench-recover:
	@mkdir -p bench
	$(GO) test -run xxx -bench 'BenchmarkRecover' -benchtime=20x -benchmem . > bench/recover.txt; \
	status=$$?; cat bench/recover.txt; exit $$status

# CI benchmark smoke: run every benchmark exactly once with the heavy
# cases gated behind -short, so bench code can neither rot uncompiled
# nor unrun.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x -timeout 20m ./...
