# GradSec reproduction — build/test/bench entry points.
#
#   make build        compile everything
#   make vet          static checks
#   make test         full test suite, race detector enabled
#   make fuzz-check   run the fuzz corpora in regression mode (no fuzzing)
#   make bench        all artefact + fleet benchmarks (one iteration each)
#   make bench-fleet  fixed-benchtime fleet benchmarks -> bench-fleet.txt
#   make bench-secagg secagg privacy-ladder benchmarks -> bench-secagg.txt
#   make check        build + vet + test + fuzz regression (CI gate)

GO ?= go

.PHONY: build vet test fuzz-check bench bench-fleet bench-secagg check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Replays the fuzz seed corpora as ordinary tests. `make test` already
# covers the seeds implicitly (go test runs fuzz targets as unit tests);
# this target is the explicit, fast regression gate for the decoder
# corpora and the entry point documented for CI. Real fuzzing is
# `go test -fuzz FuzzReadFrame ./internal/wire` etc.
fuzz-check:
	$(GO) test -run 'Fuzz' ./internal/wire ./internal/fl

# BenchmarkSecAggRound's 1024-client masked rounds exceed go test's
# default 10m timeout (mask expansion is O(cohort² · model)).
bench:
	$(GO) test -run xxx -bench . -benchtime=1x -benchmem -timeout 60m .

# Fixed-iteration fleet benchmark sweep (clients × codec), captured as a
# comparable artefact. Not part of `check`: it takes minutes. Written to
# the file first so a failing run propagates its exit status (a bare
# pipe into tee would mask it).
bench-fleet:
	$(GO) test -run xxx -bench 'BenchmarkFleetRound' -benchtime=2x -benchmem . > bench-fleet.txt; \
	status=$$?; cat bench-fleet.txt; exit $$status

check: build vet test fuzz-check

# Privacy-ladder benchmark: plain vs masked vs enclave aggregation at
# 64/256/1024 clients. Pairwise masking is O(cohort² · model) in mask
# expansion, so the 1024-client masked rounds need a raised timeout.
bench-secagg:
	$(GO) test -run xxx -bench 'BenchmarkSecAggRound' -benchtime=1x -benchmem -timeout 60m . > bench-secagg.txt; \
	status=$$?; cat bench-secagg.txt; exit $$status
