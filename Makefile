# GradSec reproduction — build/test/bench entry points.
#
#   make build   compile everything
#   make vet     static checks
#   make test    full test suite, race detector enabled
#   make bench   all artefact + fleet benchmarks (one iteration each)
#   make check   build + vet + test (CI gate)

GO ?= go

.PHONY: build vet test bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime=1x -benchmem .

check: build vet test
