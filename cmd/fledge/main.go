// Command fledge runs a GradSec edge aggregator over TCP — the middle
// tier of the hierarchical aggregation topology. Upstream it connects
// to a flserver running in root mode (-edges); downstream it is a
// complete FL server for its shard of flclient processes: TEE-aware
// selection, cohort sampling, round deadlines, quarantine, codec
// negotiation, and (when the root announces it) shard-scoped secure
// aggregation. Each round it adopts the root's global model, folds its
// shard into one partial aggregate, and forwards a single PartialUp
// frame upstream — so the root's fan-in stays O(shards) however many
// clients sit behind the edges.
//
// Example topology (one root, two edges, four clients):
//
//	flserver -edges 2 -rounds 3
//	fledge -name edge-a -addr :7501 -clients 2
//	fledge -name edge-b -addr :7502 -clients 2
//	flclient -addr 127.0.0.1:7501 -name pi-1
//	flclient -addr 127.0.0.1:7501 -name pi-2
//	flclient -addr 127.0.0.1:7502 -name pi-3
//	flclient -addr 127.0.0.1:7502 -name pi-4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/hier"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/wire"
)

func main() {
	upstream := flag.String("upstream", "127.0.0.1:7443", "root server address (flserver -edges)")
	addr := flag.String("addr", "127.0.0.1:7501", "listen address for this shard's clients")
	name := flag.String("name", "edge", "edge aggregator name (shard identity at the root)")
	clients := flag.Int("clients", 2, "shard clients to wait for")
	minClients := flag.Int("min-clients", 1, "responders required per shard round")
	sampleFraction := flag.Float64("sample-fraction", 0, "fraction of shard clients sampled per round (0 = all)")
	sampleCount := flag.Int("sample-count", 0, "shard clients sampled per round (overrides -sample-fraction)")
	deadline := flag.Duration("deadline", 0, "per-round shard deadline; stragglers are dropped (0 = wait forever)")
	seed := flag.Int64("seed", 1, "shard cohort sampling seed")
	codecName := flag.String("codec", "f64", "tensor wire codec offered to the shard's clients: f64, f32, or q8")
	maxCodecName := flag.String("max-codec", "q8", "highest codec accepted from the root's offer for the model broadcast")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-operation transport deadline (0 = none)")
	quarantineRounds := flag.Int("quarantine-rounds", 0, "probation window for failed shard clients in rounds (0 = permanent exclusion)")
	minRelease := flag.Int("min-release", 0, "shard-level secure-aggregation release floor: a shard partial folding fewer updates is never forwarded (0 = no floor)")
	retries := flag.Int("retry", 1, "total upstream connection attempts with jittered exponential backoff (1 = no retry)")
	retryMax := flag.Duration("retry-max", 8*time.Second, "backoff cap between upstream connection attempts")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics (Prometheus), /healthz, and /debug/pprof (empty = off)")
	adminToken := flag.String("admin-token", "", "bearer token required on every admin request; mandatory for non-loopback -admin binds")
	adminCert := flag.String("admin-cert", "", "PEM certificate serving the admin endpoint over TLS (needs -admin-key)")
	adminKey := flag.String("admin-key", "", "PEM private key for -admin-cert")
	spansPath := flag.String("spans", "", "export shard round spans as JSONL to this file (empty = off)")
	clientTelemetry := flag.Bool("client-telemetry", false, "fold device-side gradsec_client_* metrics riding plaintext GradUps into the shard registry (and onward to the root; needs -admin)")
	flag.Parse()

	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	maxCodec, err := wire.ParseCodec(*maxCodecName)
	if err != nil {
		log.Fatal(err)
	}

	tel, err := obs.OpenTelemetry(*adminAddr, *spansPath)
	if err != nil {
		log.Fatal(err)
	}
	tel.Security = obs.AdminSecurity{Token: *adminToken, CertFile: *adminCert, KeyFile: *adminKey}
	defer closeTelemetry(tel)

	// The model template mirrors the root's: shapes are what matter,
	// values are overwritten by the root's broadcast each round.
	template := nn.NewLeNet5Mini(rand.New(rand.NewSource(7)), nn.ActReLU).StateDict()
	edge := hier.NewEdge(template, hier.EdgeConfig{
		Name:     *name,
		MaxCodec: maxCodec,
		Server: fl.ServerConfig{
			MinClients:       *minClients,
			SampleFraction:   *sampleFraction,
			SampleCount:      *sampleCount,
			SampleSeed:       *seed,
			RoundDeadline:    *deadline,
			Codec:            codec,
			IOTimeout:        *ioTimeout,
			QuarantineRounds: *quarantineRounds,
			MinRelease:       *minRelease,
			Metrics:          tel.Metrics,
			Spans:            tel.Spans,
			ClientTelemetry:  *clientTelemetry,
			Hooks: fl.Hooks{
				ClientQuarantined: func(device string, reason error) {
					fmt.Printf("quarantined %s: %v\n", device, reason)
				},
				RoundClosed: func(st fl.RoundStats) {
					fmt.Printf("shard round %d: sampled %d, responded %d, dropped %d, reconciled %d\n",
						st.Round, st.Sampled, st.Responded, st.Dropped, st.Reconciled)
				},
			},
		},
	})
	if bound, err := tel.Serve(*adminAddr, edge.Health); err != nil {
		log.Fatal(err)
	} else if bound != "" {
		fmt.Printf("admin listening on %s (/metrics, /healthz, /debug/pprof)\n", bound)
	}
	l, err := fl.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	fmt.Printf("fledge %s listening on %s; waiting for %d shard clients (downstream codec %s)\n",
		*name, l.Addr(), *clients, codec)
	conns := make([]fl.Conn, 0, *clients)
	for len(conns) < *clients {
		c, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		fmt.Printf("shard client %d connected\n", len(conns))
	}

	up, err := fl.DialRetry(*upstream, fl.RetryConfig{Attempts: *retries, Max: *retryMax})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolling with root at %s\n", *upstream)

	var interrupted atomic.Bool
	abortOnSignal(&interrupted, edge, conns)
	if err := edge.Run(up, conns); err != nil {
		if interrupted.Load() {
			closeTelemetry(tel)
			fmt.Printf("edge interrupted: %d shard rounds served, telemetry flushed\n", edge.Rounds)
			return
		}
		fmt.Fprintf(os.Stderr, "edge session failed: %v\n", err)
		os.Exit(1)
	}
	if edge.RejectedReason != "" {
		fmt.Printf("rejected by root: %s\n", edge.RejectedReason)
		return
	}
	fmt.Printf("%s: %d shard clients served across %d rounds; partials forwarded upstream\n",
		*name, edge.Selected, edge.Rounds)
}

// abortOnSignal arranges a graceful shutdown: the first SIGINT/SIGTERM
// closes the upstream and every shard connection, unwinding Run through
// its ordinary transport-failure path on its own goroutine. A second
// signal falls back to the runtime's default (kill).
func abortOnSignal(interrupted *atomic.Bool, edge *hier.Edge, conns []fl.Conn) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		signal.Stop(sig)
		interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "received %s: aborting edge session\n", s)
		edge.Abort()
		for _, c := range conns {
			_ = c.Close()
		}
	}()
}

// closeTelemetry flushes the telemetry surfaces, reporting a failed
// span export. Safe to call more than once.
func closeTelemetry(tel *obs.Telemetry) {
	if err := tel.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "span export: %v\n", err)
	}
}
