// Command flclient runs a GradSec federated-learning client over TCP:
// a simulated TrustZone device training LeNet-5-mini on a synthetic local
// corpus, with the server-distributed protection plan enforced by the
// GradSec trusted application.
//
// The client is tier-agnostic: -addr may point at a flat flserver or at
// a fledge edge aggregator — the round protocol is identical, so a
// device cannot tell (and need not care) whether its aggregator is the
// root or a shard of a larger hierarchy. Adaptive servers may switch
// the session codec mid-run (CodecSwitch); the client follows any
// switch up to its -codec cap.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "server address")
	name := flag.String("name", "pi-client", "device name")
	seed := flag.Int64("seed", 1, "local data seed")
	codecName := flag.String("codec", "q8", "highest tensor wire codec accepted from the server's offer: f64, f32, or q8")
	retries := flag.Int("retry", 1, "total connection attempts with jittered exponential backoff (1 = no retry)")
	retryMax := flag.Duration("retry-max", 8*time.Second, "backoff cap between connection attempts")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics, /healthz, and /debug/pprof for on-device debugging (empty = off)")
	adminToken := flag.String("admin-token", "", "bearer token required on every admin request; mandatory for non-loopback -admin binds")
	adminCert := flag.String("admin-cert", "", "PEM certificate serving the admin endpoint over TLS (needs -admin-key)")
	adminKey := flag.String("admin-key", "", "PEM private key for -admin-cert")
	telemetry := flag.Bool("telemetry", false, "meter device-side training (gradsec_client_*) and piggyback deltas on plaintext GradUps for server-side folding")
	spansPath := flag.String("spans", "", "export device train spans as JSONL to this file (empty = off)")
	flag.Parse()

	maxCodec, err := wire.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}

	gen := dataset.NewGenerator(rand.New(rand.NewSource(*seed)), 10, 1, 16, 16, 0.2)
	data := gen.FixedSet(rand.New(rand.NewSource(*seed+1)), 6)
	bRng := rand.New(rand.NewSource(*seed + 2))

	dev := tz.NewDevice(*name)
	net := nn.NewLeNet5Mini(rand.New(rand.NewSource(7)), nn.ActReLU)
	plan, err := core.NewStaticPlan(0) // replaced by the server's plan each round
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := core.NewSecureTrainer(dev, net, plan, core.TrainerConfig{
		Iterations: 3, LR: 0.05,
		Batch: func(int, int) (*tensor.Tensor, *tensor.Tensor) { return data.RandomBatch(bRng, 12) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// With -telemetry the device carries its own registry: scrapeable
	// locally on the admin listener, and its deltas ride each plaintext
	// GradUp upstream for the server to fold (if the operator opted in
	// there with -client-telemetry).
	var metrics *obs.Registry
	if *telemetry {
		metrics = obs.NewRegistry()
	}
	var spans *obs.TraceSink
	if *spansPath != "" {
		f, err := os.Create(*spansPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		spans = obs.NewTraceSink(f, nil)
	}
	var sessionDone atomic.Bool
	if *adminAddr != "" {
		sec := obs.AdminSecurity{Token: *adminToken, CertFile: *adminCert, KeyFile: *adminKey}
		admin, err := obs.ServeAdminSecure(*adminAddr, metrics, func() obs.Health {
			return obs.Health{Open: !sessionDone.Load()}
		}, sec)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		fmt.Printf("admin listening on %s (/metrics, /healthz, /debug/pprof)\n", admin.Addr())
	}

	conn, err := fl.DialRetry(*addr, fl.RetryConfig{Attempts: *retries, Max: *retryMax})
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	client := fl.NewClient(conn, core.NewGradSecClient(*name, trainer))
	client.MaxCodec = maxCodec
	client.Metrics = metrics
	client.Spans = spans
	err = client.Run()
	sessionDone.Store(true)
	if err != nil {
		log.Fatal(err)
	}
	if client.RejectedReason != "" {
		fmt.Printf("rejected by server: %s\n", client.RejectedReason)
		return
	}
	mode := "plaintext updates"
	if client.SecAgg {
		mode = "masked updates (secure aggregation)"
	}
	fmt.Printf("%s: completed %d rounds over codec %s with %s; final model received (%d tensors); SMCs %d\n",
		*name, client.Rounds, client.NegotiatedCodec, mode, len(client.Final), dev.SMCCount())
}
