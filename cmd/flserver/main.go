// Command flserver runs a GradSec federated-learning server over TCP:
// it waits for -clients connections, performs TEE-aware selection (open
// enrolment: device keys are accepted on first use in this demo binary),
// and drives -rounds FL cycles of the LeNet-5-mini model with the given
// protection plan.
//
// With -async the session is asynchronous buffered federation
// (FedBuff-style): clients train and push on their own cadence, the
// server folds updates staleness-discounted into a buffer and applies
// it every -goal-updates folds; -rounds counts those applications.
//
// With -journal the server writes a checksummed round journal; after a
// crash, restarting with -recover replays the committed rounds and
// resumes the session bit-identically with the reconnecting fleet.
// -aggregation trimmed-mean/median swaps FedAvg for a Byzantine-robust
// aggregator (see -trim for the trimmed-mean tail fraction).
//
// With -edges N the binary runs as a hierarchical aggregation root
// instead: it waits for N fledge edge-aggregator connections, broadcasts
// the model once per round, and folds one partial aggregate per shard —
// fan-in O(shards) instead of O(fleet). Clients then connect to the
// fledge processes, not to this one.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/hier"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7443", "listen address")
	clients := flag.Int("clients", 2, "clients to wait for")
	rounds := flag.Int("rounds", 3, "FL cycles")
	layers := flag.String("protect", "2,5", "1-based protected layers (static plan)")
	minClients := flag.Int("min-clients", 1, "responders required per round")
	sampleFraction := flag.Float64("sample-fraction", 0, "fraction of clients sampled per round (0 = all)")
	sampleCount := flag.Int("sample-count", 0, "clients sampled per round (overrides -sample-fraction)")
	deadline := flag.Duration("deadline", 0, "per-round deadline; stragglers are dropped (0 = wait forever)")
	seed := flag.Int64("seed", 1, "cohort sampling seed")
	codecName := flag.String("codec", "f64", "tensor wire codec offered to clients: f64, f32, or q8")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-operation transport deadline: handshake reads and model-distribution writes (0 = none)")
	secAgg := flag.Bool("secagg", false, "secure aggregation: clients send pairwise-masked updates; protected layers aggregate inside a simulated server enclave")
	secAggScale := flag.Int("secagg-scale", secagg.DefaultScaleBits, "fixed-point fractional bits for masked updates")
	maskDegree := flag.Int("mask-degree", 0, "secagg mask-graph degree: 0 = full pairwise masking, -1 = automatic k-regular degree (log2 cohort, floored at 6), k>0 = mask against k graph neighbours with a Shamir-shared self mask")
	quarantineRounds := flag.Int("quarantine-rounds", 0, "probation window for failed clients in rounds (0 = permanent exclusion)")
	minRelease := flag.Int("min-release", 0, "secure-aggregation release floor: rounds folding fewer updates never publish their aggregate (0 = no floor)")
	adaptiveCodec := flag.Float64("adaptive-codec", 0, "adaptive codec downgrade: open the session at f64 and switch capable clients to q8 once the round update norm falls below this threshold (0 = off; flat mode only)")
	edges := flag.Int("edges", 0, "hierarchical root mode: wait for this many fledge edge aggregators instead of clients (0 = flat server)")
	minShards := flag.Int("min-shards", 0, "root mode: shard partials required per round (0 = all edges)")
	async := flag.Bool("async", false, "asynchronous buffered federation: clients push whenever ready; -rounds counts buffered model applications instead of synchronous cycles")
	goalUpdates := flag.Int("goal-updates", 0, "async: buffer goal K — apply the staleness-weighted aggregate once this many updates fold (0 = -min-clients)")
	maxStaleness := flag.Int("max-staleness", 0, "async: discard updates trained on a model more than this many versions old (0 = fold any staleness, discounted)")
	asyncBuffer := flag.Int("async-buffer", 0, "async: arrival fan-in capacity before backpressure reaches the transports (0 = 2x goal)")
	pushInterval := flag.Duration("push-interval", 0, "async: per-device fold rate limit; faster pushes are discarded as duplicates (0 = unlimited)")
	journalPath := flag.String("journal", "", "write-ahead round journal for crash durability (empty = none)")
	recoverRun := flag.Bool("recover", false, "resume a crashed session from -journal: replay committed rounds, then continue with the reconnecting fleet")
	aggName := flag.String("aggregation", "fedavg", "round aggregation: fedavg, trimmed-mean, or median (the robust modes are incompatible with -secagg)")
	trim := flag.Float64("trim", 0.1, "per-tail trim fraction for -aggregation trimmed-mean, in (0, 0.5)")
	adminAddr := flag.String("admin", "", "admin HTTP listen address serving /metrics (Prometheus), /healthz, and /debug/pprof (empty = off)")
	adminToken := flag.String("admin-token", "", "bearer token required on every admin request; mandatory for non-loopback -admin binds")
	adminCert := flag.String("admin-cert", "", "PEM certificate serving the admin endpoint over TLS (needs -admin-key)")
	adminKey := flag.String("admin-key", "", "PEM private key for -admin-cert")
	spansPath := flag.String("spans", "", "export round spans as JSONL to this file (empty = off)")
	clientTelemetry := flag.Bool("client-telemetry", false, "fold device-side gradsec_client_* metrics riding plaintext GradUps into the server registry (needs -admin)")
	flag.Parse()
	adminSec := obs.AdminSecurity{Token: *adminToken, CertFile: *adminCert, KeyFile: *adminKey}

	codec, err := wire.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	aggMethod, err := fl.ParseAggMethod(*aggName)
	if err != nil {
		log.Fatal(err)
	}
	if aggMethod != fl.AggFedAvg && *secAgg {
		log.Fatal("-aggregation trimmed-mean/median needs per-client updates (incompatible with -secagg)")
	}
	if *recoverRun && *journalPath == "" {
		log.Fatal("-recover needs the crashed session's -journal")
	}

	if *edges > 0 {
		if *async {
			log.Fatal("-async is a flat-server mode (incompatible with -edges)")
		}
		if aggMethod != fl.AggFedAvg {
			log.Fatal("-aggregation trimmed-mean/median is a flat-server mode (incompatible with -edges)")
		}
		runRoot(*addr, *edges, *rounds, *minShards, *minRelease, *deadline, *ioTimeout, codec, *secAgg, *secAggScale, *maskDegree, *journalPath, *recoverRun, *adminAddr, *spansPath, adminSec)
		return
	}
	if *async && *secAgg {
		log.Fatal("-async aggregates plaintext updates (incompatible with -secagg)")
	}

	var protect []int
	if trimmed := strings.TrimSpace(*layers); trimmed != "" && trimmed != "none" {
		for _, part := range strings.Split(trimmed, ",") {
			l, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || l < 1 {
				log.Fatalf("bad -protect entry %q", part)
			}
			protect = append(protect, l-1)
		}
	}
	global := nn.NewLeNet5Mini(rand.New(rand.NewSource(7)), nn.ActReLU)
	var planner fl.RoundPlanner = fl.NoProtection{}
	planDesc := "none"
	if len(protect) > 0 {
		plan, err := core.NewStaticPlan(protect...)
		if err != nil {
			log.Fatal(err)
		}
		planner = core.NewPlanner(plan, global, func(ls []int) map[int]bool {
			return core.FlatIndicesForLayers(global, ls)
		})
		planDesc = plan.String()
	}

	// Secure aggregation with protected layers requires the aggregation
	// enclave — the server must not unseal updates into plaintext.
	var enclave *secagg.Enclave
	if *secAgg && len(protect) > 0 {
		enclave, err = secagg.NewEnclave("flserver-aggregator")
		if err != nil {
			log.Fatal(err)
		}
		defer enclave.Close()
	}

	jnl, err := openJournal(*journalPath, *recoverRun)
	if err != nil {
		log.Fatal(err)
	}
	if jnl != nil {
		defer jnl.Close()
	}

	tel, err := obs.OpenTelemetry(*adminAddr, *spansPath)
	if err != nil {
		log.Fatal(err)
	}
	tel.Security = adminSec
	defer closeTelemetry(tel)
	var srvHolder atomic.Pointer[fl.Server]
	serveAdmin(tel, *adminAddr, func() obs.Health {
		if s := srvHolder.Load(); s != nil {
			return s.Health()
		}
		return obs.Health{}
	})

	l, err := fl.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	mode := "plaintext aggregation"
	if *secAgg {
		switch {
		case *maskDegree == 0:
			mode = "secure aggregation (full pairwise masking"
		case *maskDegree < 0:
			mode = "secure aggregation (k-regular masking, auto degree"
		default:
			mode = fmt.Sprintf("secure aggregation (k-regular masking, degree %d", *maskDegree)
		}
		if enclave != nil {
			mode += " + enclave"
		}
		mode += ")"
	}
	if *async {
		mode = "asynchronous buffered aggregation"
	}
	if aggMethod != fl.AggFedAvg {
		mode = fmt.Sprintf("Byzantine-robust aggregation (%s)", aggMethod)
	}
	fmt.Printf("flserver listening on %s; waiting for %d clients (plan %s, codec %s, %s)\n",
		l.Addr(), *clients, planDesc, codec, mode)

	conns := make([]fl.Conn, 0, *clients)
	for len(conns) < *clients {
		c, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		fmt.Printf("client %d connected\n", len(conns))
	}

	cfg := fl.ServerConfig{
		Rounds:           *rounds,
		Planner:          planner,
		MinClients:       *minClients,
		SampleFraction:   *sampleFraction,
		SampleCount:      *sampleCount,
		SampleSeed:       *seed,
		RoundDeadline:    *deadline,
		Codec:            codec,
		IOTimeout:        *ioTimeout,
		SecAgg:           *secAgg,
		SecAggScaleBits:  *secAggScale,
		MaskDegree:       *maskDegree,
		Enclave:          enclave,
		QuarantineRounds: *quarantineRounds,
		MinRelease:       *minRelease,
		AdaptiveCodec:    *adaptiveCodec,
		Journal:          jnl,
		Aggregation:      aggMethod,
		TrimFraction:     *trim,
		Metrics:          tel.Metrics,
		Spans:            tel.Spans,
		ClientTelemetry:  *clientTelemetry,
		Async: fl.AsyncConfig{
			Enabled:         *async,
			GoalUpdates:     *goalUpdates,
			MaxStaleness:    *maxStaleness,
			Buffer:          *asyncBuffer,
			MinPushInterval: *pushInterval,
		},
		Hooks: fl.Hooks{
			ClientQuarantined: func(device string, reason error) {
				fmt.Printf("quarantined %s: %v\n", device, reason)
			},
			ClientProbationed: func(device string, reason error) {
				fmt.Printf("probationed %s: %v\n", device, reason)
			},
			RoundClosed: func(st fl.RoundStats) {
				fmt.Printf("round %d: sampled %d, responded %d, dropped %d, probation %d, quarantined %d, reconciled %d, |update| %.4f\n",
					st.Round, st.Sampled, st.Responded, st.Dropped, st.Probation, st.Quarantined, st.Reconciled, st.UpdateNorm)
			},
		},
	}
	var srv *fl.Server
	if *recoverRun {
		srv, err = fl.Recover(*journalPath, global.StateDict(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered session from %s: resuming at round %d\n", *journalPath, srv.NextRound())
	} else {
		srv = fl.NewServer(global.StateDict(), cfg)
	}
	srvHolder.Store(srv)
	var interrupted atomic.Bool
	abortOnSignal(&interrupted, conns)
	run := srv.Run
	unit := "rounds"
	if *async {
		run = srv.RunAsync
		unit = "model versions"
	}
	selected, err := run(conns)
	if interrupted.Load() {
		// Graceful shutdown: the engine already tore the session down
		// through its transport-failure path (committing the journal
		// close records); flush the remaining durability surfaces and
		// report what completed.
		if jnl != nil {
			_ = jnl.Sync()
		}
		closeTelemetry(tel)
		fmt.Printf("session interrupted: %d %s committed, telemetry flushed\n", len(srv.Trace()), unit)
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "session failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("session complete: %d clients, %d %s, %d parameter tensors aggregated\n",
		selected, *rounds, unit, len(srv.State()))
}

// abortOnSignal arranges a graceful shutdown: the first SIGINT/SIGTERM
// closes every session connection, which unwinds the engine through its
// ordinary transport-failure path on its own goroutine — no
// cross-goroutine access to session state. A second signal falls back
// to the runtime's default (kill).
func abortOnSignal(interrupted *atomic.Bool, conns []fl.Conn) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		signal.Stop(sig)
		interrupted.Store(true)
		fmt.Fprintf(os.Stderr, "received %s: aborting session\n", s)
		for _, c := range conns {
			_ = c.Close()
		}
	}()
}

// serveAdmin starts the admin HTTP listener when an address is set.
func serveAdmin(tel *obs.Telemetry, addr string, health func() obs.Health) {
	bound, err := tel.Serve(addr, health)
	if err != nil {
		log.Fatal(err)
	}
	if bound != "" {
		fmt.Printf("admin listening on %s (/metrics, /healthz, /debug/pprof)\n", bound)
	}
}

// closeTelemetry flushes the telemetry surfaces, reporting a failed
// span export. Safe to call more than once.
func closeTelemetry(tel *obs.Telemetry) {
	if err := tel.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "span export: %v\n", err)
	}
}

// openJournal opens the write-ahead journal: created fresh for a new
// session, reopened for appending when resuming a crashed one.
func openJournal(path string, resume bool) (*journal.Journal, error) {
	if path == "" {
		return nil, nil
	}
	if resume {
		return journal.Append(path)
	}
	return journal.Create(path)
}

// runRoot drives the hierarchical root: N edge aggregators instead of
// N clients, one partial fold per shard per round.
func runRoot(addr string, edges, rounds, minShards, minRelease int, shardDeadline, ioTimeout time.Duration, codec wire.Codec, secAgg bool, secAggScale, maskDegree int, journalPath string, recoverRun bool, adminAddr, spansPath string, adminSec obs.AdminSecurity) {
	global := nn.NewLeNet5Mini(rand.New(rand.NewSource(7)), nn.ActReLU)
	jnl, err := openJournal(journalPath, recoverRun)
	if err != nil {
		log.Fatal(err)
	}
	if jnl != nil {
		defer jnl.Close()
	}
	tel, err := obs.OpenTelemetry(adminAddr, spansPath)
	if err != nil {
		log.Fatal(err)
	}
	tel.Security = adminSec
	defer closeTelemetry(tel)
	var rootHolder atomic.Pointer[hier.Root]
	serveAdmin(tel, adminAddr, func() obs.Health {
		r := rootHolder.Load()
		if r == nil {
			return obs.Health{Rounds: rounds}
		}
		trace := r.Trace()
		h := obs.Health{Open: len(trace) < rounds, Rounds: rounds, Roster: edges}
		if n := len(trace); n > 0 {
			h.Round = trace[n-1].Round + 1
		}
		if jnl != nil {
			h.JournalLag = int(jnl.Pending())
		}
		return h
	})
	l, err := fl.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	mode := "plain partial sums"
	if secAgg {
		mode = "masked ring partials (shard-scoped secure aggregation)"
	}
	fmt.Printf("flserver (root) listening on %s; waiting for %d edge aggregators (codec %s, %s)\n",
		l.Addr(), edges, codec, mode)
	conns := make([]fl.Conn, 0, edges)
	for len(conns) < edges {
		c, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		conns = append(conns, c)
		fmt.Printf("edge %d connected\n", len(conns))
	}
	rootCfg := hier.RootConfig{
		Rounds:          rounds,
		MinShards:       minShards,
		ShardDeadline:   shardDeadline,
		Codec:           codec,
		SecAgg:          secAgg,
		SecAggScaleBits: secAggScale,
		MaskDegree:      maskDegree,
		MinRelease:      minRelease,
		IOTimeout:       ioTimeout,
		Journal:         jnl,
		Metrics:         tel.Metrics,
		Spans:           tel.Spans,
		Hooks: hier.Hooks{
			ShardDropped: func(shard string, reason error) {
				fmt.Printf("dropped edge %s: %v\n", shard, reason)
			},
			RoundClosed: func(st fl.RoundStats) {
				fmt.Printf("round %d: %d shards, sampled %d, responded %d, dropped %d, reconciled %d, |update| %.4f\n",
					st.Round, st.Shards, st.Sampled, st.Responded, st.Dropped, st.Reconciled, st.UpdateNorm)
			},
		},
	}
	var root *hier.Root
	if recoverRun {
		root, err = hier.RecoverRoot(journalPath, global.StateDict(), rootCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recovered root session from %s\n", journalPath)
	} else {
		root = hier.NewRoot(global.StateDict(), rootCfg)
	}
	rootHolder.Store(root)
	var interrupted atomic.Bool
	abortOnSignal(&interrupted, conns)
	enrolled, err := root.Run(conns)
	if interrupted.Load() {
		if jnl != nil {
			_ = jnl.Sync()
		}
		closeTelemetry(tel)
		fmt.Printf("session interrupted: %d rounds committed, telemetry flushed\n", len(root.Trace()))
		return
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "session failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("session complete: %d edge aggregators, %d rounds, fan-in O(shards) at the root\n",
		enrolled, rounds)
}
