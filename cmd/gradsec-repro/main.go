// Command gradsec-repro regenerates the paper's evaluation artefacts.
//
// Usage:
//
//	gradsec-repro            # run everything (tables 1/5/6, figures 5-8)
//	gradsec-repro -exp fig5a # run one artefact
//	gradsec-repro -list      # list artefact IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/gradsec/gradsec/internal/repro"
)

func main() {
	exp := flag.String("exp", "", "single experiment ID (table1,table5,table6,fig5a,fig5b,fig6a,fig6b,fig7,fig8)")
	list := flag.Bool("list", false, "list experiment IDs")
	flag.Parse()

	if *list {
		fmt.Println("table1 table5 table6 fig5a fig5b fig6a fig6b fig7 fig8 ablation-smc ablation-enclave")
		return
	}
	if *exp != "" {
		t := repro.ByID(*exp)
		if t == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(1)
		}
		t.Print(os.Stdout)
		return
	}
	for _, t := range repro.All() {
		t.Print(os.Stdout)
	}
}
