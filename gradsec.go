// Package gradsec is the public facade of the GradSec reproduction: a
// TEE-shielded federated-learning stack reproducing "Shielding Federated
// Learning Systems against Inference Attacks with ARM TrustZone"
// (Middleware 2022).
//
// GradSec protects selected layers of a neural network inside a (simulated)
// ARM TrustZone enclave during FL local training, so a compromised client
// OS observes only the gradients of unprotected layers. Two modes exist:
//
//   - static: a fixed, possibly non-successive, layer set (e.g. the first
//     conv layer against data-reconstruction attacks plus the dense head
//     against membership inference);
//   - dynamic: a moving window of successive layers slides across the
//     model over FL cycles following a probability distribution VMW,
//     defeating long-term property-inference attacks with only a couple
//     of layers resident at a time.
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	model := gradsec.NewLeNet5(rng, gradsec.ActReLU)
//	plan, _ := gradsec.NewStaticPlan(1, 4) // L2 + L5, paper naming
//	dev := gradsec.NewDevice("pi-client-1")
//	trainer, _ := gradsec.NewSecureTrainer(dev, model, plan, gradsec.TrainerConfig{
//		Iterations: 10, LR: 0.05, Batch: batchFn,
//	})
//	sv, _ := gradsec.EstablishServerView(trainer)
//	res, _ := trainer.RunCycle(0)
//	// res.Observable — the attacker's view (nil at protected layers)
//	// sv.FullUpdate(res) — the trusted server's complete update
//
// # Fleet-scale orchestration
//
// Beyond the single-device trainer, internal/fl provides a concurrent FL
// round engine: client selection/attestation runs across a bounded
// worker pool, each round samples a cohort (SampleFraction/SampleCount),
// a per-round deadline drops stragglers (a round succeeds with ≥
// MinClients responders; late updates are discarded), failed clients are
// quarantined instead of aborting the session, and aggregation streams
// each update into a running weighted sum so server memory stays
// O(model) rather than O(clients × model). Wall time flows through an
// injected clock (internal/simclock), so deadline behaviour is
// deterministic under test.
//
// RunFleet drives that engine against a simulated fleet: N in-memory
// clients with per-client latency/failure/no-TEE profiles from a seeded
// RNG, returning a round-by-round trace (participation, drops,
// quarantines, aggregate update norm). Two runs of the same scenario
// produce identical traces:
//
//	res, _ := gradsec.RunFleet(gradsec.FleetScenario{
//		Clients: 256, Rounds: 10, SampleFraction: 0.5,
//		Deadline: 2 * time.Second, StragglerFraction: 0.1, Seed: 42,
//	})
//	for _, round := range res.Trace { fmt.Println(round) }
//
// Model traffic rides a negotiated wire codec (Codec): f64 is the exact
// baseline, f32 and q8 shrink transfers 2–8× (q8 error ≤ range/255 per
// tensor, sealed TEE tensors always exact). The server encodes each
// round's model once per codec and broadcasts the shared frame.
//
// Secure aggregation (FleetScenario.SecAgg, flserver -secagg) extends
// the paper's threat model to a compromised aggregator: clients send
// pairwise-masked fixed-point updates whose masks cancel over the
// cohort, dropped stragglers are reconciled from survivor-revealed
// round seeds, and protected tensors fold inside a simulated server
// enclave (internal/secagg) — the server never materialises an
// individual client's gradients, yet the aggregate is bit-identical
// to plaintext FedAvg for the simulator's dyadic updates.
//
// Fleet scale comes from the hierarchical aggregation tier
// (internal/hier, FleetScenario.Shards): the fleet is partitioned
// across edge aggregators that each run the full round protocol
// against their shard and forward one exact partial aggregate
// upstream, so the root folds O(shards) frames instead of O(fleet)
// and a round is bounded by the slowest shard. Partial sums compose
// exactly — plain sums in f64, masked sums in the ring with
// shard-scoped mask graphs — so the hierarchical aggregate is
// bit-identical to flat FedAvg over the same fleet.
//
// Asynchronous buffered federation (AsyncFleetScenario, flserver
// -async) removes the round barrier entirely: clients pull the current
// model and push updates whenever ready, the server folds each update
// into a buffer discounted by its staleness (1/√(1+s) versions behind)
// and applies the buffer every K folds, bumping the model version. A
// bounded arrival channel pushes backpressure to the transports, a
// per-device rate limit stops fast devices flooding the buffer, and
// duplicate pushes strike a health budget (probation, then
// quarantine). RunFleetAsync replays the same seeded fleet as RunFleet
// without the barrier, so the two pacing modes are directly
// comparable: same stragglers, zero fleet-idle time.
//
// Run `go run ./examples/fleet` for a full scenario walk-through,
// `go run ./examples/secagg` for the secure-aggregation proof,
// `go run ./examples/hier` for the flat-vs-hierarchy identity and
// degradation demo, or `go run ./cmd/flserver -deadline 5s
// -sample-fraction 0.5 -codec q8` plus several `go run ./cmd/flclient`
// processes for the engine over real TCP (`flserver -edges N` plus
// `cmd/fledge` processes for the two-tier topology).
//
// See examples/ for runnable programs and internal/repro for the code
// that regenerates every table and figure of the paper.
package gradsec

import (
	"math/rand"

	"io"

	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/flsim"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// Re-exported core types: protection plans and the secure trainer.
type (
	// Plan describes which layers are shielded per FL cycle.
	Plan = core.Plan
	// Mode selects static/dynamic/DarkneTZ plan semantics.
	Mode = core.Mode
	// TrainerConfig parameterises secure local training.
	TrainerConfig = core.TrainerConfig
	// CycleResult is one cycle's outcome, including the attacker-visible
	// gradient view.
	CycleResult = core.CycleResult
	// SecureTrainer executes GradSec training on a simulated device.
	SecureTrainer = core.SecureTrainer
	// ServerView is the trusted server's end of the trusted I/O path.
	ServerView = core.ServerView
	// OverheadSim reproduces the paper's Table 6 cost accounting.
	OverheadSim = core.OverheadSim
	// Device is a simulated TrustZone-capable client device.
	Device = tz.Device
	// Network is a feed-forward neural network.
	Network = nn.Network
	// Activation selects layer nonlinearities.
	Activation = nn.Activation
)

// Re-exported fleet types: the round engine's trace and its scenario
// simulator.
type (
	// RoundStats is one round's trace entry (participation, drops,
	// quarantines, aggregate update norm).
	RoundStats = fl.RoundStats
	// FleetScenario parameterises a simulated fleet session.
	FleetScenario = flsim.Scenario
	// FleetProfile describes one simulated client (latency, failure
	// round, TEE capability).
	FleetProfile = flsim.Profile
	// FleetResult is a completed simulation: selection outcome, trace,
	// and final model.
	FleetResult = flsim.Result
	// AsyncFleetScenario replays a seeded fleet through asynchronous
	// buffered federation instead of synchronous rounds.
	AsyncFleetScenario = flsim.AsyncScenario
	// AsyncFleetResult is a completed asynchronous simulation: one
	// trace entry per applied model version, plus push accounting.
	AsyncFleetResult = flsim.AsyncResult
	// Codec selects the negotiated tensor wire encoding for fleet
	// traffic: CodecF64 (exact), CodecF32 (4 B/elem), CodecQ8
	// (1 B/elem, error ≤ range/255 per tensor).
	Codec = wire.Codec
	// Tensor is a dense float64 tensor — model parameters and updates.
	Tensor = tensor.Tensor
)

// AutoMaskDegree, as a FleetScenario.MaskDegree (or fl.ServerConfig
// MaskDegree, flserver -mask-degree) value, selects the automatic
// k-regular mask-graph degree ⌈log₂ cohort⌉ (even-rounded, floored at
// 6) per round: each
// client masks against only k graph neighbours instead of the whole
// cohort, with a Shamir-shared self mask covering the dropout window.
// 0 keeps the full pairwise graph (the pre-k-regular wire behaviour).
const AutoMaskDegree = secagg.AutoDegree

// Re-exported observability types: the fleet telemetry registry and
// its admin HTTP surface (FleetScenario.Metrics / FleetScenario.Spans
// accept them; see docs/METRICS.md for the metric families).
type (
	// Metrics is a process-wide telemetry registry of counters, gauges,
	// and mergeable histograms with Prometheus text exposition.
	Metrics = obs.Registry
	// AdminServer is the admin HTTP listener: /metrics, /healthz, and
	// /debug/pprof.
	AdminServer = obs.Admin
	// AdminSecurity carries the admin listener's bearer token and TLS
	// key pair; non-loopback binds without a token are refused.
	AdminSecurity = obs.AdminSecurity
	// Health is the /healthz payload summarising a running session.
	Health = obs.Health
	// MetricsSnapshot is a registry's compact wire-portable state: the
	// payload that rides the federation protocol for fleet-wide merging.
	MetricsSnapshot = obs.Snapshot
	// SpanSource names one JSONL span stream for StitchSpans.
	SpanSource = obs.SpanSource
)

// NewMetrics creates an empty telemetry registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ServeAdmin starts the admin HTTP listener on addr, exporting reg at
// /metrics. Both reg and health may be nil. Loopback binds only; use
// ServeAdminSecure for anything reachable off-host.
func ServeAdmin(addr string, reg *Metrics, health func() Health) (*AdminServer, error) {
	return obs.ServeAdmin(addr, reg, health)
}

// ServeAdminSecure is ServeAdmin with bearer-token auth and optional
// TLS; non-loopback binds are refused unless sec.Token is set.
func ServeAdminSecure(addr string, reg *Metrics, health func() Health, sec AdminSecurity) (*AdminServer, error) {
	return obs.ServeAdminSecure(addr, reg, health, sec)
}

// SnapshotMetrics captures a registry's current state as a compact,
// wire-portable snapshot.
func SnapshotMetrics(reg *Metrics) *MetricsSnapshot { return obs.TakeSnapshot(reg) }

// StitchSpans merges per-tier JSONL span streams into one causal round
// timeline ordered by virtual start time — the cross-tier trace view.
// Deterministic inputs yield byte-identical output.
func StitchSpans(w io.Writer, sources ...SpanSource) error {
	return obs.StitchSpans(w, sources...)
}

// WriteMetrics writes the registry's current state as Prometheus text
// exposition.
func WriteMetrics(w io.Writer, reg *Metrics) error { return obs.WritePrometheus(w, reg) }

// UpdateNorm returns the L2 norm of a flat model state or update — the
// metric the adaptive codec threshold and the sync-vs-async pacing
// comparison use.
func UpdateNorm(update []*Tensor) float64 { return fl.UpdateNorm(update) }

// Tensor wire codecs, in increasing compression order.
const (
	CodecF64 = wire.CodecF64
	CodecF32 = wire.CodecF32
	CodecQ8  = wire.CodecQ8
)

// Plan modes.
const (
	ModeStatic   = core.ModeStatic
	ModeDynamic  = core.ModeDynamic
	ModeDarkneTZ = core.ModeDarkneTZ
)

// Activations.
const (
	ActNone    = nn.ActNone
	ActReLU    = nn.ActReLU
	ActSigmoid = nn.ActSigmoid
	ActTanh    = nn.ActTanh
)

// NewStaticPlan protects an arbitrary (possibly non-successive) layer set.
func NewStaticPlan(layers ...int) (*Plan, error) { return core.NewStaticPlan(layers...) }

// NewDynamicPlan builds a moving-window plan with distribution vmw.
func NewDynamicPlan(sizeMW int, vmw []float64) (*Plan, error) {
	return core.NewDynamicPlan(sizeMW, vmw)
}

// NewDarkneTZPlan builds the contiguous-slice baseline plan.
func NewDarkneTZPlan(first, last int) (*Plan, error) { return core.NewDarkneTZPlan(first, last) }

// NewDevice creates a simulated TrustZone device (4 MiB enclave, Pi-3B+
// cost model).
func NewDevice(name string, opts ...tz.DeviceOption) *Device { return tz.NewDevice(name, opts...) }

// NewSecureTrainer installs the GradSec TA on dev and prepares secure
// training of net under plan.
func NewSecureTrainer(dev *Device, net *Network, plan *Plan, cfg TrainerConfig) (*SecureTrainer, error) {
	return core.NewSecureTrainer(dev, net, plan, cfg)
}

// EstablishServerView connects a trusted-server channel endpoint to the
// trainer's TA (for standalone, non-networked use).
func EstablishServerView(t *SecureTrainer) (*ServerView, error) {
	return core.EstablishServerView(t)
}

// NewOverheadSim builds the Table-6 cost simulator for net.
func NewOverheadSim(net *Network) *OverheadSim { return core.NewOverheadSim(net) }

// NewLeNet5 builds the paper's LeNet-5 (Table 4).
func NewLeNet5(rng *rand.Rand, act Activation) *Network { return nn.NewLeNet5(rng, act) }

// NewAlexNet builds the paper's AlexNet (Table 4).
func NewAlexNet(rng *rand.Rand) *Network { return nn.NewAlexNet(rng) }

// Pi3BCostModel returns the calibrated Raspberry-Pi-3B+/OP-TEE cost model.
func Pi3BCostModel() simclock.CostModel { return simclock.Pi3B() }

// RunFleet simulates an FL session over an in-memory fleet with the
// given scenario, deterministically: identical scenarios yield identical
// traces and final models.
func RunFleet(sc FleetScenario) (*FleetResult, error) { return flsim.Run(sc) }

// RunFleetAsync simulates an asynchronous buffered-federation session
// over the same seeded fleet RunFleet would build, deterministically:
// clients push on their own per-device cadence, the server folds
// staleness-discounted updates and applies every GoalUpdates folds.
func RunFleetAsync(sc AsyncFleetScenario) (*AsyncFleetResult, error) { return flsim.RunAsync(sc) }
