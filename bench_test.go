package gradsec_test

// One benchmark per table and figure of the paper's evaluation (§8).
// Each benchmark regenerates the artefact through internal/repro; run
//
//	go test -bench=. -benchmem
//
// and compare against the published values (EXPERIMENTS.md records a
// reference run). The overhead artefacts (Table 6, Figures 7–8) are
// deterministic cost-model computations; the security artefacts
// (Figures 5–6, Table 5) run the real attacks at reduced scale.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/repro"
)

func benchArtefact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := repro.ByID(id)
		if t == nil || len(t.Rows) == 0 {
			b.Fatalf("artefact %s produced no rows", id)
		}
		t.Print(io.Discard)
		if i == 0 && testing.Verbose() {
			b.Logf("artefact %s: %d rows", id, len(t.Rows))
		}
	}
}

// BenchmarkTable1 regenerates the headline summary (paper Table 1).
func BenchmarkTable1(b *testing.B) { benchArtefact(b, "table1") }

// BenchmarkTable5 regenerates the DPIA AUC table (paper Table 5).
func BenchmarkTable5(b *testing.B) { benchArtefact(b, "table5") }

// BenchmarkTable6 regenerates the CPU/TEE-memory table (paper Table 6).
func BenchmarkTable6(b *testing.B) { benchArtefact(b, "table6") }

// BenchmarkFigure5a regenerates the LeNet-5 DRIA sweep (paper Fig. 5a).
func BenchmarkFigure5a(b *testing.B) { benchArtefact(b, "fig5a") }

// BenchmarkFigure5b regenerates the AlexNet DRIA sweep (paper Fig. 5b).
func BenchmarkFigure5b(b *testing.B) { benchArtefact(b, "fig5b") }

// BenchmarkFigure6a regenerates the LeNet-5 MIA sweep (paper Fig. 6a).
func BenchmarkFigure6a(b *testing.B) { benchArtefact(b, "fig6a") }

// BenchmarkFigure6b regenerates the AlexNet MIA sweep (paper Fig. 6b).
func BenchmarkFigure6b(b *testing.B) { benchArtefact(b, "fig6b") }

// BenchmarkFigure7 regenerates the overhead bar charts (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchArtefact(b, "fig7") }

// BenchmarkFigure8 regenerates the DarkneTZ comparison (paper Fig. 8).
func BenchmarkFigure8(b *testing.B) { benchArtefact(b, "fig8") }

// BenchmarkAblationSMC regenerates the world-switch-cost ablation.
func BenchmarkAblationSMC(b *testing.B) { benchArtefact(b, "ablation-smc") }

// BenchmarkAblationEnclave regenerates the enclave-size ablation.
func BenchmarkAblationEnclave(b *testing.B) { benchArtefact(b, "ablation-enclave") }

// BenchmarkFleetRound measures one full FL cycle of the concurrent
// round engine over a simulated fleet: every client receives the
// LeNet-5 model, trains (constant-work simulated update), and the
// server streams all updates into the aggregate. Devices are plain
// (no TEE) so the number isolates protocol + codec + aggregation
// throughput rather than attestation crypto. The codec dimension
// sweeps the negotiated wire encoding: f64 is the exact baseline
// protocol, f32 and q8 the compressed transfers. MB/s counts logical
// model-down + update-up traffic (params × 8 bytes), so compressed
// codecs report effective throughput on the same axis as f64.
// EXPERIMENTS.md records a reference run.
func BenchmarkFleetRound(b *testing.B) {
	for _, clients := range []int{64, 256, 1024} {
		for _, codec := range []gradsec.Codec{gradsec.CodecF64, gradsec.CodecF32, gradsec.CodecQ8} {
			b.Run(fmt.Sprintf("clients=%d/codec=%s", clients, codec), func(b *testing.B) {
				model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)
				params := 0
				for _, t := range model.StateDict() {
					params += t.Size()
				}
				b.SetBytes(int64(2 * clients * params * 8)) // model down + update up
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					state := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
					b.StartTimer()
					res, err := gradsec.RunFleet(gradsec.FleetScenario{
						Clients:       clients,
						Rounds:        1,
						NoTEEFraction: 1.0,
						Seed:          int64(i + 1),
						Model:         state,
						Codec:         codec,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Trace[0].Responded != clients {
						b.Fatalf("round folded %d of %d updates", res.Trace[0].Responded, clients)
					}
				}
			})
		}
	}
}

// BenchmarkSecAggRound measures the cost of the privacy ladder at
// fleet scale: one full FL cycle per mode over the LeNet-5 model.
// "plain" is the PR 2 baseline (plaintext FedAvg), "masked" adds
// pairwise-masked fixed-point aggregation (8 B/element level transfer
// plus per-pair mask expansion on the clients and at reconciliation),
// and "enclave" additionally routes one protected tensor through the
// simulated aggregation enclave's sealed path. MB/s counts logical
// model-down + update-up traffic on the same axis as BenchmarkFleetRound.
// EXPERIMENTS.md records a reference run.
func BenchmarkSecAggRound(b *testing.B) {
	type mode struct {
		name    string
		secagg  bool
		protect []int
	}
	modes := []mode{
		{name: "plain"},
		{name: "masked", secagg: true},
		{name: "enclave", secagg: true, protect: []int{0}},
	}
	for _, clients := range []int{64, 256, 1024} {
		for _, m := range modes {
			b.Run(fmt.Sprintf("clients=%d/mode=%s", clients, m.name), func(b *testing.B) {
				model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)
				params := 0
				for _, t := range model.StateDict() {
					params += t.Size()
				}
				b.SetBytes(int64(2 * clients * params * 8)) // model down + update up
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					state := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
					b.StartTimer()
					res, err := gradsec.RunFleet(gradsec.FleetScenario{
						Clients: clients,
						Rounds:  1,
						SecAgg:  m.secagg,
						Protect: m.protect,
						Seed:    int64(i + 1),
						Model:   state,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Trace[0].Responded != clients {
						b.Fatalf("round folded %d of %d updates", res.Trace[0].Responded, clients)
					}
				}
			})
		}
	}
}
