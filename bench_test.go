package gradsec_test

// One benchmark per table and figure of the paper's evaluation (§8).
// Each benchmark regenerates the artefact through internal/repro; run
//
//	go test -bench=. -benchmem
//
// and compare against the published values (EXPERIMENTS.md records a
// reference run). The overhead artefacts (Table 6, Figures 7–8) are
// deterministic cost-model computations; the security artefacts
// (Figures 5–6, Table 5) run the real attacks at reduced scale.

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/hier"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/repro"
	"github.com/gradsec/gradsec/internal/tensor"
)

func benchArtefact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := repro.ByID(id)
		if t == nil || len(t.Rows) == 0 {
			b.Fatalf("artefact %s produced no rows", id)
		}
		t.Print(io.Discard)
		if i == 0 && testing.Verbose() {
			b.Logf("artefact %s: %d rows", id, len(t.Rows))
		}
	}
}

// BenchmarkTable1 regenerates the headline summary (paper Table 1).
func BenchmarkTable1(b *testing.B) { benchArtefact(b, "table1") }

// BenchmarkTable5 regenerates the DPIA AUC table (paper Table 5).
func BenchmarkTable5(b *testing.B) { benchArtefact(b, "table5") }

// BenchmarkTable6 regenerates the CPU/TEE-memory table (paper Table 6).
func BenchmarkTable6(b *testing.B) { benchArtefact(b, "table6") }

// BenchmarkFigure5a regenerates the LeNet-5 DRIA sweep (paper Fig. 5a).
func BenchmarkFigure5a(b *testing.B) { benchArtefact(b, "fig5a") }

// BenchmarkFigure5b regenerates the AlexNet DRIA sweep (paper Fig. 5b).
func BenchmarkFigure5b(b *testing.B) { benchArtefact(b, "fig5b") }

// BenchmarkFigure6a regenerates the LeNet-5 MIA sweep (paper Fig. 6a).
func BenchmarkFigure6a(b *testing.B) { benchArtefact(b, "fig6a") }

// BenchmarkFigure6b regenerates the AlexNet MIA sweep (paper Fig. 6b).
func BenchmarkFigure6b(b *testing.B) { benchArtefact(b, "fig6b") }

// BenchmarkFigure7 regenerates the overhead bar charts (paper Fig. 7).
func BenchmarkFigure7(b *testing.B) { benchArtefact(b, "fig7") }

// BenchmarkFigure8 regenerates the DarkneTZ comparison (paper Fig. 8).
func BenchmarkFigure8(b *testing.B) { benchArtefact(b, "fig8") }

// BenchmarkAblationSMC regenerates the world-switch-cost ablation.
func BenchmarkAblationSMC(b *testing.B) { benchArtefact(b, "ablation-smc") }

// BenchmarkAblationEnclave regenerates the enclave-size ablation.
func BenchmarkAblationEnclave(b *testing.B) { benchArtefact(b, "ablation-enclave") }

// BenchmarkFleetRound measures one full FL cycle of the concurrent
// round engine over a simulated fleet: every client receives the
// LeNet-5 model, trains (constant-work simulated update), and the
// server streams all updates into the aggregate. Devices are plain
// (no TEE) so the number isolates protocol + codec + aggregation
// throughput rather than attestation crypto. The codec dimension
// sweeps the negotiated wire encoding: f64 is the exact baseline
// protocol, f32 and q8 the compressed transfers. MB/s counts logical
// model-down + update-up traffic (params × 8 bytes), so compressed
// codecs report effective throughput on the same axis as f64.
// EXPERIMENTS.md records a reference run.
func BenchmarkFleetRound(b *testing.B) {
	for _, clients := range []int{64, 256, 1024} {
		for _, codec := range []gradsec.Codec{gradsec.CodecF64, gradsec.CodecF32, gradsec.CodecQ8} {
			if testing.Short() && clients > 64 {
				continue // CI bench smoke: compile-and-run, smallest case only
			}
			b.Run(fmt.Sprintf("clients=%d/codec=%s", clients, codec), func(b *testing.B) {
				model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)
				params := 0
				for _, t := range model.StateDict() {
					params += t.Size()
				}
				b.SetBytes(int64(2 * clients * params * 8)) // model down + update up
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					state := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
					b.StartTimer()
					res, err := gradsec.RunFleet(gradsec.FleetScenario{
						Clients:       clients,
						Rounds:        1,
						NoTEEFraction: 1.0,
						Seed:          int64(i + 1),
						Model:         state,
						Codec:         codec,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Trace[0].Responded != clients {
						b.Fatalf("round folded %d of %d updates", res.Trace[0].Responded, clients)
					}
				}
			})
		}
	}
}

// BenchmarkAsyncRound measures the asynchronous buffered-federation
// engine: a lockstep-deterministic fleet where every client pushes the
// moment its (virtual-clock) training timer fires, and the server folds
// each update staleness-discounted and applies the buffer every
// K = clients/4 folds, for 8 model versions per iteration. Devices are
// plain (no TEE) as in BenchmarkFleetRound, so the number isolates the
// async fan-in path: bounded-channel arrivals, per-push fold + re-arm,
// buffered application. MB/s counts logical model-down + update-up
// traffic per fold on the same axis as the synchronous benchmark.
// EXPERIMENTS.md records a reference run.
func BenchmarkAsyncRound(b *testing.B) {
	const versions = 8
	for _, clients := range []int{64, 256} {
		if testing.Short() && clients > 64 {
			continue // CI bench smoke: compile-and-run, smallest case only
		}
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			goal := clients / 4
			model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)
			params := 0
			for _, t := range model.StateDict() {
				params += t.Size()
			}
			b.SetBytes(int64(2 * versions * goal * params * 8)) // model down + update up, per fold
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				state := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
				b.StartTimer()
				res, err := gradsec.RunFleetAsync(gradsec.AsyncFleetScenario{
					Scenario: gradsec.FleetScenario{
						Clients:       clients,
						Rounds:        versions,
						MinClients:    1,
						NoTEEFraction: 1.0,
						Seed:          int64(i + 1),
						Model:         state,
					},
					GoalUpdates: goal,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Folds != versions*goal {
					b.Fatalf("session folded %d updates, want %d", res.Folds, versions*goal)
				}
			}
		})
	}
}

// benchModel builds the LeNet-5 flat state used by the fan-in
// benchmarks.
func benchModel() []*tensor.Tensor {
	return gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
}

// runFlatStubRound drives one flat FL round against `fleet` stub
// clients that answer every ModelDown with one precomputed GradUp
// frame. The stubs spend no cycles on training or encoding, so the
// measured work is the server's own fan-in: `fleet` model
// distributions, `fleet` update decodes, `fleet` folds. cfg carries
// optional engine settings (telemetry, deadlines); Rounds is forced
// to 1.
func runFlatStubRound(b *testing.B, fleet int, state []*tensor.Tensor, cfg fl.ServerConfig) {
	b.Helper()
	upd := make([]*tensor.Tensor, len(state))
	for i, t := range state {
		upd[i] = tensor.Full(0.25, t.Shape...)
	}
	payload := fl.EncodeMessageCodec(&fl.GradUp{Round: 0, Plain: upd}, gradsec.CodecF64)
	conns := make([]fl.Conn, fleet)
	var wg sync.WaitGroup
	for i := range conns {
		server, client := fl.Pipe()
		conns[i] = server
		wg.Add(1)
		go func(id int, c fl.Conn) {
			defer wg.Done()
			defer c.Close()
			msg, err := c.Recv()
			if err != nil {
				return
			}
			ch, ok := msg.(*fl.Challenge)
			if !ok {
				return
			}
			if err := c.Send(&fl.Attest{DeviceID: fmt.Sprintf("stub-%05d", id), Codec: ch.Codec}); err != nil {
				return
			}
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				switch m.(type) {
				case *fl.ModelDown:
					if err := c.SendFrame(fl.MsgGradUp, payload); err != nil {
						return
					}
				default:
					return // Done or teardown
				}
			}
		}(i, client)
	}
	cfg.Rounds = 1
	srv := fl.NewServer(state, cfg)
	if _, err := srv.Run(conns); err != nil {
		b.Fatal(err)
	}
	wg.Wait()
}

// BenchmarkObsRound isolates the telemetry tax on the server's round
// fan-in: the flat stub-client round of BenchmarkHierRound, run with
// observability disabled (the shipped default — ServerConfig.Metrics
// and Spans nil, every instrument call a nil-receiver no-op) and
// enabled (a live registry plus a JSONL span sink writing to
// io.Discard). Compare the two cases with -benchmem: the disabled
// case must cost zero extra allocations over a build without the
// subsystem. EXPERIMENTS.md records a reference pair.
func BenchmarkObsRound(b *testing.B) {
	const fleet = 256
	cases := []struct {
		name string
		cfg  func() fl.ServerConfig
	}{
		{name: "obs=off", cfg: func() fl.ServerConfig { return fl.ServerConfig{} }},
		{name: "obs=on", cfg: func() fl.ServerConfig {
			return fl.ServerConfig{
				Metrics: obs.NewRegistry(),
				Spans:   obs.NewTraceSink(io.Discard, nil),
			}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			model := benchModel()
			params := 0
			for _, t := range model {
				params += t.Size()
			}
			b.SetBytes(int64(2 * fleet * params * 8)) // model down + update up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				state := benchModel()
				cfg := tc.cfg()
				b.StartTimer()
				runFlatStubRound(b, fleet, state, cfg)
			}
		})
	}
}

// BenchmarkObsRoundMerged measures the root-side cost of the in-band
// telemetry plane: per iteration, 16 shard registries each record one
// round of engine activity, cut a delta snapshot, and the root decodes
// and folds every snapshot into the fleet registry under tier/shard
// labels — the exact work hier.Root does per round when every edge
// piggybacks telemetry on its PartialUp. Compare ns/op and B/op
// against one BenchmarkObsRound fan-in to size the telemetry tax.
func BenchmarkObsRoundMerged(b *testing.B) {
	const shards = 16
	phases := []string{"sample", "broadcast", "collect", "close", "round"}
	edges := make([]*obs.Registry, shards)
	snaps := make([]*obs.Snapshotter, shards)
	names := make([]string, shards)
	for s := range edges {
		edges[s] = obs.NewRegistry()
		snaps[s] = obs.NewSnapshotter(edges[s])
		names[s] = fmt.Sprintf("edge-%03d", s)
	}
	root := obs.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < shards; s++ {
			edges[s].Counter("gradsec_rounds_total", "rounds", "mode", "sync", "result", "ok").Inc()
			for _, phase := range phases {
				edges[s].Histogram("gradsec_phase_ns", "phase latency", "phase", phase).
					ObserveEx(int64(1000*(s+1)+i), i)
			}
			snap, err := obs.DecodeSnapshot(snaps[s].Delta())
			if err != nil {
				b.Fatal(err)
			}
			root.MergeSnapshot(snap, "tier", "edge", "shard", names[s])
		}
	}
}

// runHierStubRound drives one hierarchical FL round against `shards`
// stub edges, each representing fleet/shards clients through one
// precomputed PartialUp frame. The measured work is the root's fan-in:
// `shards` ShardDown broadcasts, `shards` partial decodes and folds —
// independent of the fleet size the partials claim to represent.
func runHierStubRound(b *testing.B, fleet, shards int, state []*tensor.Tensor) {
	b.Helper()
	shardSize := fleet / shards
	sum := make([]*tensor.Tensor, len(state))
	for i, t := range state {
		sum[i] = tensor.Full(0.25*float64(shardSize), t.Shape...)
	}
	payload := fl.EncodeMessageCodec(&fl.PartialUp{
		Round: 0, Sum: sum, Weight: float64(shardSize),
		Count: uint64(shardSize), Sampled: uint64(shardSize),
	}, gradsec.CodecF64)
	conns := make([]fl.Conn, shards)
	var wg sync.WaitGroup
	for s := range conns {
		rootSide, edgeSide := fl.Pipe()
		conns[s] = rootSide
		wg.Add(1)
		go func(id int, c fl.Conn) {
			defer wg.Done()
			defer c.Close()
			msg, err := c.Recv()
			if err != nil {
				return
			}
			ch, ok := msg.(*fl.Challenge)
			if !ok {
				return
			}
			if err := c.Send(&fl.Attest{DeviceID: fmt.Sprintf("edge-%03d", id), Codec: ch.Codec}); err != nil {
				return
			}
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				switch m.(type) {
				case *fl.ShardDown:
					if err := c.SendFrame(fl.MsgPartialUp, payload); err != nil {
						return
					}
				default:
					return // Done or teardown
				}
			}
		}(s, edgeSide)
	}
	root := hier.NewRoot(state, hier.RootConfig{Rounds: 1, MinShards: shards})
	if _, err := root.Run(conns); err != nil {
		b.Fatal(err)
	}
	wg.Wait()
}

// BenchmarkHierRound isolates root-side fan-in cost across the
// hierarchy design space: one FL round of the LeNet-5 model over
// protocol stubs that answer instantly (no training, no client-side
// encode), so ns/op and B/op measure what the aggregation tier itself
// must do per round. "flat" is the single-tier baseline — the server
// fans in every client directly and its cost grows with the fleet;
// "shards=K" is the hierarchical root fanning in K edge partials —
// its cost grows with K and stays flat as the fleet behind the edges
// quadruples from 4096 to 16384 (the acceptance claim of PR 4).
// End-to-end hierarchy correctness at these sizes is covered by the
// flsim multi-tier scenarios. EXPERIMENTS.md records a reference run.
func BenchmarkHierRound(b *testing.B) {
	for _, fleet := range []int{4096, 16384} {
		for _, shards := range []int{0, 16, 64} { // 0 = flat baseline
			if testing.Short() && (fleet > 4096 || shards == 0) {
				continue // CI bench smoke: the flat 4096/16384-client fan-ins dominate
			}
			name := fmt.Sprintf("fleet=%d/mode=flat", fleet)
			if shards > 0 {
				name = fmt.Sprintf("fleet=%d/mode=shards-%d", fleet, shards)
			}
			b.Run(name, func(b *testing.B) {
				model := benchModel()
				params := 0
				for _, t := range model {
					params += t.Size()
				}
				// Root-side logical traffic: one model down and one
				// aggregate-sized payload up per fan-in peer.
				peers := fleet
				if shards > 0 {
					peers = shards
				}
				b.SetBytes(int64(2 * peers * params * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					state := benchModel()
					b.StartTimer()
					if shards == 0 {
						runFlatStubRound(b, fleet, state, fl.ServerConfig{})
					} else {
						runHierStubRound(b, fleet, shards, state)
					}
				}
			})
		}
	}
}

// BenchmarkSecAggRound measures the cost of the privacy ladder at
// fleet scale: one full FL cycle per mode over the LeNet-5 model.
// "plain" is the PR 2 baseline (plaintext FedAvg); "masked" adds
// fixed-point masked aggregation over the k-regular graph (auto
// degree ⌈log₂ n⌉ rounded to even, floored at 6: 8 B/element level transfer, k AES-CTR mask
// expansions per client plus one Shamir-shared self mask); "masked-full"
// is the legacy complete pairwise graph — the O(cohort²·model)
// keystream wall the k-regular graph exists to kill — kept at 64/256
// clients as the comparison baseline (its 1024-client cell takes ~5
// minutes alone; EXPERIMENTS.md records the reference number); and
// "enclave" additionally routes one protected tensor through the
// simulated aggregation enclave's sealed path. MB/s counts logical
// model-down + update-up traffic on the same axis as BenchmarkFleetRound.
// EXPERIMENTS.md records a reference run.
func BenchmarkSecAggRound(b *testing.B) {
	type mode struct {
		name    string
		secagg  bool
		degree  int
		protect []int
	}
	modes := []mode{
		{name: "plain"},
		{name: "masked", secagg: true, degree: gradsec.AutoMaskDegree},
		{name: "masked-full", secagg: true},
		{name: "enclave", secagg: true, degree: gradsec.AutoMaskDegree, protect: []int{0}},
	}
	for _, clients := range []int{64, 256, 1024} {
		for _, m := range modes {
			if testing.Short() && clients > 64 {
				continue // CI bench smoke: the 1024-client masked rounds alone take minutes
			}
			if m.name == "masked-full" && clients > 256 {
				continue // quadratic baseline: the 1024-client cell is the recorded ~317 s reference
			}
			b.Run(fmt.Sprintf("clients=%d/mode=%s", clients, m.name), func(b *testing.B) {
				model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)
				params := 0
				for _, t := range model.StateDict() {
					params += t.Size()
				}
				b.SetBytes(int64(2 * clients * params * 8)) // model down + update up
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					state := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
					b.StartTimer()
					res, err := gradsec.RunFleet(gradsec.FleetScenario{
						Clients:    clients,
						Rounds:     1,
						SecAgg:     m.secagg,
						MaskDegree: m.degree,
						Protect:    m.protect,
						Seed:       int64(i + 1),
						Model:      state,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Trace[0].Responded != clients {
						b.Fatalf("round folded %d of %d updates", res.Trace[0].Responded, clients)
					}
				}
			})
		}
	}
}
