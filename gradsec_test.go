package gradsec_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
)

// TestFacadeQuickstart exercises the public API end to end: build a
// model, protect a non-successive layer set, train a cycle on a simulated
// device, and verify the information-flow boundary.
func TestFacadeQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewTinyConvNet(rng, 1, 6, 6, 3, gradsec.ActSigmoid)

	plan, err := gradsec.NewStaticPlan(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dev := gradsec.NewDevice("facade-test")
	bRng := rand.New(rand.NewSource(2))
	trainer, err := gradsec.NewSecureTrainer(dev, model, plan, gradsec.TrainerConfig{
		Iterations: 2, LR: 0.05,
		Batch: func(int, int) (*tensor.Tensor, *tensor.Tensor) {
			x := tensor.Randn(bRng, 0.5, 4, 1, 6, 6)
			y := tensor.New(4, 3)
			for i := 0; i < 4; i++ {
				y.Set(1, i, bRng.Intn(3))
			}
			return x, y
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := gradsec.EstablishServerView(trainer)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trainer.RunCycle(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observable[0] != nil {
		t.Fatal("protected layer update visible to the normal world")
	}
	full, err := sv.FullUpdate(res)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range full {
		if u == nil {
			t.Fatalf("server view missing update %d", i)
		}
	}
	if res.PeakTEEBytes <= 0 || res.Cost.Total() <= 0 {
		t.Fatal("accounting missing")
	}
}

// TestFacadeOverheadSim checks the public cost-model path against the
// paper's headline gains.
func TestFacadeOverheadSim(t *testing.T) {
	model := gradsec.NewLeNet5(rand.New(rand.NewSource(1)), gradsec.ActReLU)
	sim := gradsec.NewOverheadSim(model)
	gradsecCost := sim.CycleCost([]int{1, 4}).Total()
	darknetz := sim.CycleCost([]int{1, 2, 3, 4}).Total()
	if gradsecCost >= darknetz {
		t.Fatalf("GradSec %v must beat DarkneTZ %v", gradsecCost, darknetz)
	}
	if m := gradsec.Pi3BCostModel(); m.SecureFactor <= 1 {
		t.Fatal("cost model must slow down secure compute")
	}
	if _, err := gradsec.NewDarkneTZPlan(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := gradsec.NewDynamicPlan(2, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeFleet drives the fleet simulator through the public API and
// checks the scenario trace is reproducible.
func TestFacadeFleet(t *testing.T) {
	scenario := gradsec.FleetScenario{
		Clients:           32,
		Rounds:            3,
		SampleFraction:    0.5,
		Deadline:          time.Second,
		StragglerFraction: 0.25,
		Seed:              11,
	}
	first, err := gradsec.RunFleet(scenario)
	if err != nil {
		t.Fatal(err)
	}
	second, err := gradsec.RunFleet(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Trace) != 3 {
		t.Fatalf("trace has %d rounds", len(first.Trace))
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Fatalf("fleet traces differ:\n%+v\n%+v", first.Trace, second.Trace)
	}
	for _, st := range first.Trace {
		if st.Sampled != 16 || st.Responded+st.Dropped != 16 {
			t.Fatalf("round stats = %+v", st)
		}
	}
}

// TestFacadeAsyncFleet drives the asynchronous buffered-federation
// simulator through the public API and checks the trace is reproducible
// and every buffered application folded exactly GoalUpdates updates.
func TestFacadeAsyncFleet(t *testing.T) {
	scenario := gradsec.AsyncFleetScenario{
		Scenario: gradsec.FleetScenario{
			Clients:           16,
			Rounds:            4,
			MinClients:        1,
			StragglerFraction: 0.25,
			Deadline:          time.Second,
			Seed:              11,
		},
		GoalUpdates: 8,
	}
	first, err := gradsec.RunFleetAsync(scenario)
	if err != nil {
		t.Fatal(err)
	}
	second, err := gradsec.RunFleetAsync(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Trace) != 4 {
		t.Fatalf("trace has %d versions", len(first.Trace))
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Fatalf("async traces differ:\n%+v\n%+v", first.Trace, second.Trace)
	}
	for _, st := range first.Trace {
		if st.Responded != 8 {
			t.Fatalf("version stats = %+v, want 8 folds", st)
		}
	}
	if first.Idle != 0 {
		t.Fatalf("async idle = %v, want 0 (no round barrier)", first.Idle)
	}
}
