// Quickstart: one client, static GradSec protecting L2 and L5 of a
// LeNet-5-style model (the paper's grouped defence against DRIA + MIA),
// trained for a few FL cycles on a simulated TrustZone device.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewLeNet5Mini(rng, gradsec.ActReLU)

	// Protect the second conv layer (vs DRIA) and the dense head (vs
	// MIA) — a non-successive set DarkneTZ cannot express.
	plan, err := gradsec.NewStaticPlan(1, 4)
	if err != nil {
		log.Fatal(err)
	}

	gen := dataset.NewGenerator(rand.New(rand.NewSource(2)), 10, 1, 16, 16, 0.2)
	data := gen.FixedSet(rand.New(rand.NewSource(3)), 8)
	batchRng := rand.New(rand.NewSource(4))
	batch := func(cycle, iter int) (*tensor.Tensor, *tensor.Tensor) {
		return data.RandomBatch(batchRng, 16)
	}

	dev := gradsec.NewDevice("pi-client-1")
	trainer, err := gradsec.NewSecureTrainer(dev, model, plan, gradsec.TrainerConfig{
		Iterations: 4, LR: 0.05, Batch: batch,
	})
	if err != nil {
		log.Fatal(err)
	}
	server, err := gradsec.EstablishServerView(trainer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan: %s\n", plan)
	for cycle := 0; cycle < 3; cycle++ {
		res, err := trainer.RunCycle(cycle)
		if err != nil {
			log.Fatal(err)
		}
		observable := 0
		for _, u := range res.Observable {
			if u != nil {
				observable++
			}
		}
		full, err := server.FullUpdate(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: loss %.3f | attacker sees %d/%d update tensors | server recovers %d | TEE peak %.3f MB | %s\n",
			cycle, res.MeanLoss, observable, len(res.Observable), len(full),
			float64(res.PeakTEEBytes)/1e6, res.Cost)
	}
	fmt.Printf("world switches (SMCs): %d\n", dev.SMCCount())
}
