// Command secagg walks through server-side secure aggregation: the
// same fleet scenario is run under plaintext FedAvg and under pairwise
// masking (plus an aggregation enclave for the protected tensors), and
// the walkthrough verifies what the paper's threat model demands —
// the aggregates are bit-identical, while the masked path never shows
// the server an individual client's update.
//
//	go run ./examples/secagg
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/gradsec/gradsec"
)

func main() {
	fmt.Println("=== GradSec secure aggregation walkthrough ===")
	fmt.Println()

	// Part 1: full cohort — masks cancel, aggregates match bit for bit.
	fmt.Println("-- Part 1: masked aggregation, full cohort")
	base := gradsec.FleetScenario{
		Clients:          64,
		Rounds:           4,
		SampleFraction:   0.5,
		MinClients:       8,
		WeightedExamples: true,
		Seed:             42,
	}
	plain := run(base)
	masked := run(withSecAgg(base))
	fmt.Printf("   plaintext final norm-ish probe: %+.6f\n", plain.Final[0].Data[0])
	fmt.Printf("   masked    final norm-ish probe: %+.6f\n", masked.Final[0].Data[0])
	fmt.Printf("   bit-identical models: %v\n", identical(plain, masked))
	fmt.Println()

	// Part 2: straggler dropout — survivors reveal round seeds, the
	// server subtracts exactly the unpaired masks.
	fmt.Println("-- Part 2: straggler dropout + mask reconciliation")
	drop := gradsec.FleetScenario{
		Clients:           20,
		Rounds:            3,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.25,
		Seed:              7,
	}
	plainDrop := run(drop)
	maskedDrop := run(withSecAgg(drop))
	for _, st := range maskedDrop.Trace {
		fmt.Printf("   round %d: responded %2d, dropped %d, masks reconciled %d, |update| %.4f\n",
			st.Round, st.Responded, st.Dropped, st.Reconciled, st.UpdateNorm)
	}
	fmt.Printf("   bit-identical to plaintext dropout run: %v\n", identical(plainDrop, maskedDrop))
	fmt.Println()

	// Part 3: protected tensors — sealed updates fold inside the
	// aggregation enclave; the server never unseals them.
	fmt.Println("-- Part 3: protected tensors through the aggregation enclave")
	prot := gradsec.FleetScenario{
		Clients:    16,
		Rounds:     3,
		Protect:    []int{0},
		RequireTEE: true,
		Seed:       11,
	}
	plainProt := run(prot)
	maskedProt := run(withSecAgg(prot))
	fmt.Printf("   enclave world switches (SMCs): %d\n", maskedProt.EnclaveSMCs)
	fmt.Printf("   bit-identical to plaintext TEE run: %v\n", identical(plainProt, maskedProt))
	fmt.Println()

	fmt.Println("In the masked runs the server only ever folded uniformly random")
	fmt.Println("ring levels (plus sealed ciphertext routed into the enclave) —")
	fmt.Println("no individual client update existed outside a TEE at any point.")
}

func withSecAgg(sc gradsec.FleetScenario) gradsec.FleetScenario {
	sc.SecAgg = true
	return sc
}

func run(sc gradsec.FleetScenario) *gradsec.FleetResult {
	res, err := gradsec.RunFleet(sc)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func identical(a, b *gradsec.FleetResult) bool {
	for i := range a.Final {
		for j := range a.Final[i].Data {
			if a.Final[i].Data[j] != b.Final[i].Data[j] {
				return false
			}
		}
	}
	return true
}
