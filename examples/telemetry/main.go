// Command telemetry demonstrates the fleet observability surface: a
// deterministic simulated fleet runs with a metrics registry and span
// export attached, the admin HTTP listener comes up on a loopback
// port, and the program scrapes its own /metrics and /healthz exactly
// as a Prometheus collector or load balancer would.
//
// A second phase shows the fleet-wide telemetry plane: a hierarchical
// fleet runs with per-edge registries whose snapshot deltas ride each
// PartialUp upstream, so the root's single /metrics endpoint answers
// per-shard latency quantiles mid-session — no side-channel scrape
// mesh into the edges.
//
// The same surface attaches to the real binaries with
// `flserver -admin 127.0.0.1:9090 -spans rounds.jsonl` (and the
// matching fledge/flclient flags; add -admin-token for non-loopback
// binds and -client-telemetry to fold device-side metrics).
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/gradsec/gradsec"
)

func main() {
	model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)

	// Attach a registry and a span sink to an ordinary fleet scenario.
	// Telemetry never feeds back into the protocol: the trace below is
	// bit-identical to the same scenario run with both disabled.
	reg := gradsec.NewMetrics()
	var spans bytes.Buffer
	scenario := gradsec.FleetScenario{
		Clients:           64,
		Rounds:            6,
		MinClients:        8,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.15,
		FailureFraction:   0.05,
		Seed:              42,
		Model:             model.StateDict(),
		Metrics:           reg,
		Spans:             &spans,
	}

	// The admin listener serves /metrics, /healthz, and /debug/pprof.
	admin, err := gradsec.ServeAdmin("127.0.0.1:0", reg, func() gradsec.Health {
		return gradsec.Health{Open: true, Rounds: scenario.Rounds}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	fmt.Printf("admin listening on %s\n\n", admin.Addr())

	res, err := gradsec.RunFleet(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet session: %d clients selected, %d rounds closed\n\n", res.Selected, len(res.Trace))

	// Scrape our own endpoints, exactly as an external collector would.
	health := httpGet("http://" + admin.Addr() + "/healthz")
	fmt.Printf("GET /healthz -> %s\n", strings.TrimSpace(health))

	metrics := httpGet("http://" + admin.Addr() + "/metrics")
	fmt.Println("GET /metrics (gradsec_* families, histograms elided to their summaries):")
	shown := 0
	for sc := bufio.NewScanner(strings.NewReader(metrics)); sc.Scan(); {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		if strings.HasPrefix(line, "gradsec_") {
			fmt.Printf("  %s\n", line)
			shown++
		}
	}
	if shown == 0 {
		log.Fatal("scrape returned no gradsec_ samples")
	}

	// The registry answers quantile queries directly — here the
	// end-to-end round latency distribution on the fleet's virtual
	// clock (nanoseconds are simulated deadline time, not wall time).
	roundNS := reg.Histogram("gradsec_phase_ns", "", "phase", "round")
	fmt.Printf("\nround latency (virtual): p50 %v  p99 %v  over %d rounds\n",
		time.Duration(roundNS.Quantile(0.50)), time.Duration(roundNS.Quantile(0.99)), roundNS.Count())

	// The span export is JSONL on the same virtual clock — byte-identical
	// across reruns of this program.
	fmt.Printf("\nspan export (%d bytes of JSONL), first rounds:\n", spans.Len())
	lines := strings.Split(strings.TrimRight(spans.String(), "\n"), "\n")
	for i, line := range lines {
		if i >= 3 {
			fmt.Printf("  ... %d more spans\n", len(lines)-i)
			break
		}
		fmt.Printf("  %s\n", line)
	}

	fleetWide(model)
}

// fleetWide runs the hierarchical telemetry plane: four edges each keep
// a private registry, its snapshot deltas ride the shard's PartialUp
// frames, and the root folds them into fleet-wide families under
// tier/shard labels. The root's admin endpoint is scraped mid-session —
// the per-shard view converges without ever contacting an edge.
func fleetWide(model *gradsec.Network) {
	fleetReg := gradsec.NewMetrics()
	scenario := gradsec.FleetScenario{
		Clients:        16,
		Rounds:         4,
		Shards:         4,
		MinClients:     2,
		Seed:           42,
		Model:          model.StateDict(),
		Metrics:        fleetReg,
		FleetTelemetry: true,
	}
	admin, err := gradsec.ServeAdmin("127.0.0.1:0", fleetReg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	url := "http://" + admin.Addr() + "/metrics"

	resCh := make(chan *gradsec.FleetResult, 1)
	go func() {
		res, err := gradsec.RunFleet(scenario)
		if err != nil {
			log.Fatal(err)
		}
		resCh <- res
	}()

	// Poll the root's exposition while the session runs: as soon as the
	// first shard partial folds, its telemetry is scrapeable fleet-wide.
	var mid string
	var res *gradsec.FleetResult
	for res == nil {
		select {
		case res = <-resCh:
		default:
			if s := httpGet(url); mid == "" && strings.Contains(s, `tier="edge"`) {
				mid = s
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if mid == "" {
		// The virtual-clock fleet outran the poller; the final scrape
		// shows the same fleet-wide families.
		mid = httpGet(url)
	}
	fmt.Printf("\nfleet session (hierarchical): %d clients across %d shards, %d rounds closed\n",
		res.Selected, scenario.Shards, len(res.Trace))
	fmt.Println("\nmid-session scrape of the root /metrics (per-shard families, one endpoint):")
	for sc := bufio.NewScanner(strings.NewReader(mid)); sc.Scan(); {
		line := sc.Text()
		if strings.HasPrefix(line, `gradsec_phase_ns_count{phase="round",tier="edge"`) {
			fmt.Printf("  %s\n", line)
		}
	}

	fmt.Println("\nper-shard round latency (virtual), merged at the root:")
	for s := 0; s < scenario.Shards; s++ {
		shard := fmt.Sprintf("edge-%03d", s)
		h := fleetReg.Histogram("gradsec_phase_ns", "", "phase", "round", "tier", "edge", "shard", shard)
		if h.Count() == 0 {
			log.Fatalf("fleet merge produced no %s round histogram", shard)
		}
		fmt.Printf("  %s: p50 %v  p99 %v  over %d rounds\n",
			shard, time.Duration(h.Quantile(0.50)), time.Duration(h.Quantile(0.99)), h.Count())
	}
}

// httpGet fetches a URL or aborts the demo.
func httpGet(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", url, resp.Status)
	}
	return string(body)
}
