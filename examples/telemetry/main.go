// Command telemetry demonstrates the fleet observability surface: a
// deterministic simulated fleet runs with a metrics registry and span
// export attached, the admin HTTP listener comes up on a loopback
// port, and the program scrapes its own /metrics and /healthz exactly
// as a Prometheus collector or load balancer would.
//
// The same surface attaches to the real binaries with
// `flserver -admin 127.0.0.1:9090 -spans rounds.jsonl` (and the
// matching fledge/flclient flags).
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"github.com/gradsec/gradsec"
)

func main() {
	model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)

	// Attach a registry and a span sink to an ordinary fleet scenario.
	// Telemetry never feeds back into the protocol: the trace below is
	// bit-identical to the same scenario run with both disabled.
	reg := gradsec.NewMetrics()
	var spans bytes.Buffer
	scenario := gradsec.FleetScenario{
		Clients:           64,
		Rounds:            6,
		MinClients:        8,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.15,
		FailureFraction:   0.05,
		Seed:              42,
		Model:             model.StateDict(),
		Metrics:           reg,
		Spans:             &spans,
	}

	// The admin listener serves /metrics, /healthz, and /debug/pprof.
	admin, err := gradsec.ServeAdmin("127.0.0.1:0", reg, func() gradsec.Health {
		return gradsec.Health{Open: true, Rounds: scenario.Rounds}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	fmt.Printf("admin listening on %s\n\n", admin.Addr())

	res, err := gradsec.RunFleet(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet session: %d clients selected, %d rounds closed\n\n", res.Selected, len(res.Trace))

	// Scrape our own endpoints, exactly as an external collector would.
	health := httpGet("http://" + admin.Addr() + "/healthz")
	fmt.Printf("GET /healthz -> %s\n", strings.TrimSpace(health))

	metrics := httpGet("http://" + admin.Addr() + "/metrics")
	fmt.Println("GET /metrics (gradsec_* families, histograms elided to their summaries):")
	shown := 0
	for sc := bufio.NewScanner(strings.NewReader(metrics)); sc.Scan(); {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		if strings.HasPrefix(line, "gradsec_") {
			fmt.Printf("  %s\n", line)
			shown++
		}
	}
	if shown == 0 {
		log.Fatal("scrape returned no gradsec_ samples")
	}

	// The registry answers quantile queries directly — here the
	// end-to-end round latency distribution on the fleet's virtual
	// clock (nanoseconds are simulated deadline time, not wall time).
	roundNS := reg.Histogram("gradsec_phase_ns", "", "phase", "round")
	fmt.Printf("\nround latency (virtual): p50 %v  p99 %v  over %d rounds\n",
		time.Duration(roundNS.Quantile(0.50)), time.Duration(roundNS.Quantile(0.99)), roundNS.Count())

	// The span export is JSONL on the same virtual clock — byte-identical
	// across reruns of this program.
	fmt.Printf("\nspan export (%d bytes of JSONL), first rounds:\n", spans.Len())
	lines := strings.Split(strings.TrimRight(spans.String(), "\n"), "\n")
	for i, line := range lines {
		if i >= 3 {
			fmt.Printf("  ... %d more spans\n", len(lines)-i)
			break
		}
		fmt.Printf("  %s\n", line)
	}
}

// httpGet fetches a URL or aborts the demo.
func httpGet(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", url, resp.Status)
	}
	return string(body)
}
