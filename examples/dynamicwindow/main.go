// Dynamic window demo: shows dynamic GradSec sliding its moving window
// across the model over FL cycles following the paper's best DPIA
// defence distribution VMW = [0.2, 0.1, 0.6, 0.1], and the resulting
// per-cycle TEE cost from the Pi-3B+ model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/core"
)

func main() {
	model := gradsec.NewLeNet5(rand.New(rand.NewSource(1)), gradsec.ActReLU)
	plan, err := gradsec.NewDynamicPlan(2, []float64{0.2, 0.1, 0.6, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	sim := gradsec.NewOverheadSim(model)

	fmt.Println("dynamic GradSec, sizeMW=2, VMW=[0.2 0.1 0.6 0.1] (paper's DPIA defence):")
	counts := make([]int, 4)
	for cycle := 0; cycle < 20; cycle++ {
		layers := plan.ProtectedLayers(cycle, model.NumLayers())
		counts[layers[0]]++
		cost := sim.CycleCost(layers)
		fmt.Printf("  cycle %2d: window L%d+L%d  cost %s  TEE %.3f MB\n",
			cycle, layers[0]+1, layers[1]+1, cost, float64(sim.TEEMemory(layers))/1e6)
	}
	fmt.Printf("window position counts over 20 cycles: %v (ideal 4/2/12/2)\n", counts)

	dyn, err := sim.Dynamic(plan)
	if err != nil {
		log.Fatal(err)
	}
	darknetz := sim.CycleCost([]int{1, 2, 3, 4})
	fmt.Printf("VMW-weighted average cycle: %s\n", dyn.Average)
	fmt.Printf("DarkneTZ (L2..L5) cycle:    %s\n", darknetz)
	fmt.Printf("training-time gain vs DarkneTZ: %.1f%% (paper: 56.7%%)\n",
		(1-dyn.Average.Total().Seconds()/darknetz.Total().Seconds())*100)
	_ = core.ModeDynamic
}
