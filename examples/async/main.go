// Command async replays the same seeded fleet under both pacing modes
// and prints the comparison the asynchronous tier exists for. The fleet
// has 8 clients, two of them stragglers that need 100ms of training
// against the fast clients' 10ms. Synchronous rounds wait a 1s deadline
// for the stragglers and then drop them — every responder idles out the
// remainder of every round. The asynchronous session has no barrier:
// each client pushes the moment it finishes, the server folds each
// update discounted by its staleness (1/√(1+s) model versions behind)
// and applies the buffer every K folds. Same fleet, same seed, both
// traces deterministic.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/gradsec/gradsec"
)

func main() {
	base := gradsec.FleetScenario{
		Clients:           8,
		Rounds:            6,
		MinClients:        1,
		StragglerFraction: 0.25,
		Deadline:          time.Second,
		PositiveDeltas:    true, // monotone norm growth → comparable across modes
		Seed:              42,
	}

	fmt.Printf("fleet: %d clients (%.0f%% stragglers), seed %d\n\n",
		base.Clients, base.StragglerFraction*100, base.Seed)

	sync, err := gradsec.RunFleet(base)
	if err != nil {
		log.Fatal(err)
	}

	// Same fleet, no barrier: 12 buffered applications of K=6 updates.
	async, err := gradsec.RunFleetAsync(gradsec.AsyncFleetScenario{
		Scenario:    base,
		Versions:    12,
		GoalUpdates: 6,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mode   rounds/versions  |model|   fleet idle  virtual time")
	fmt.Printf("sync   %15d  %7.3f  %10v  %12v\n",
		len(sync.Trace), gradsec.UpdateNorm(sync.Final), sync.Idle, sync.Elapsed)
	fmt.Printf("async  %15d  %7.3f  %10v  %12v\n\n",
		len(async.Trace), gradsec.UpdateNorm(async.Final), async.Idle, async.Elapsed)

	fmt.Printf("async pushes: %d folded, %d over-stale, %d rate-limited/duplicate\n",
		async.Folds, async.Stale, async.Duplicates)
	fmt.Println("\nper-version async trace (staleness-weighted folds):")
	fmt.Println("version  folds  |update|")
	for _, st := range async.Trace {
		fmt.Printf("%7d  %5d  %8.4f\n", st.Round, st.Responded, st.UpdateNorm)
	}

	fmt.Println("\nthe synchronous run dropped the stragglers at every deadline;")
	fmt.Println("the async run folded them, reached a higher model norm, and")
	fmt.Println("spent zero virtual seconds of fleet idle doing it.")
}
