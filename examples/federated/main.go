// Federated demo: a full FL session over the in-memory transport — a
// server with TEE-required selection and two GradSec clients training a
// shared model with the L2+L5 static plan; a third client without a TEE
// is rejected during selection (paper Fig. 2 step 1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"github.com/gradsec/gradsec"
	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// legacyTrainer is a device without TrustZone support.
type legacyTrainer struct{}

func (legacyTrainer) DeviceID() string                   { return "legacy-phone" }
func (legacyTrainer) HasTEE() bool                       { return false }
func (legacyTrainer) Attest([]byte) (tz.Quote, error)    { return tz.Quote{}, nil }
func (legacyTrainer) OpenChannel([]byte) ([]byte, error) { return nil, nil }
func (legacyTrainer) TrainRound(int, []*tensor.Tensor, []byte, []byte) ([]*tensor.Tensor, []byte, error) {
	return nil, nil, nil
}

func main() {
	mkModel := func() *nn.Network { return nn.NewLeNet5Mini(rand.New(rand.NewSource(7)), gradsec.ActReLU) }
	plan, err := gradsec.NewStaticPlan(1, 4)
	if err != nil {
		log.Fatal(err)
	}

	verifier := tz.NewVerifier()
	buildClient := func(name string, seed int64) *core.GradSecClient {
		gen := dataset.NewGenerator(rand.New(rand.NewSource(seed)), 10, 1, 16, 16, 0.2)
		data := gen.FixedSet(rand.New(rand.NewSource(seed+1)), 6)
		bRng := rand.New(rand.NewSource(seed + 2))
		dev := gradsec.NewDevice(name)
		trainer, err := gradsec.NewSecureTrainer(dev, mkModel(), plan, gradsec.TrainerConfig{
			Iterations: 3, LR: 0.05,
			Batch: func(int, int) (*tensor.Tensor, *tensor.Tensor) { return data.RandomBatch(bRng, 12) },
		})
		if err != nil {
			log.Fatal(err)
		}
		gc := core.NewGradSecClient(name, trainer)
		verifier.RegisterDevice(dev.Identity().ID(), dev.Identity().RootKey())
		m, err := dev.Measurement(trainer.TAUUID())
		if err != nil {
			log.Fatal(err)
		}
		verifier.AllowMeasurement(m)
		return gc
	}

	global := mkModel()
	planner := core.NewPlanner(plan, global, func(layers []int) map[int]bool {
		return core.FlatIndicesForLayers(global, layers)
	})
	srv := fl.NewServer(global.StateDict(), fl.ServerConfig{
		Rounds: 3, RequireTEE: true, Verifier: verifier, Planner: planner, MinClients: 2,
	})

	gc1 := buildClient("pi-client-1", 100)
	gc2 := buildClient("pi-client-2", 200)

	c1, s1 := fl.Pipe()
	c2, s2 := fl.Pipe()
	c3, s3 := fl.Pipe()

	var wg sync.WaitGroup
	clients := []*fl.Client{
		fl.NewClient(c1, gc1),
		fl.NewClient(c2, gc2),
		fl.NewClient(c3, legacyTrainer{}),
	}
	for _, c := range clients {
		wg.Add(1)
		go func(c *fl.Client) {
			defer wg.Done()
			if err := c.Run(); err != nil {
				log.Printf("client: %v", err)
			}
		}(c)
	}

	selected, err := srv.Run([]fl.Conn{s1, s2, s3})
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected clients: %d of 3\n", selected)
	fmt.Printf("legacy client rejected: %q\n", clients[2].RejectedReason)
	fmt.Printf("rounds completed by pi-client-1: %d\n", clients[0].Rounds)
	fmt.Printf("global model updated: %d parameter tensors\n", len(srv.State()))
}
