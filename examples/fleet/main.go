// Command fleet demonstrates the concurrent FL round engine against a
// simulated heterogeneous edge fleet: 256 clients with stragglers,
// training failures, and non-TEE devices, half-fleet sampling per round,
// and a per-round deadline — the operating regime of the paper's Fig. 2
// deployment story at scale. The scenario is fully deterministic: rerun
// it and the trace is identical.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/gradsec/gradsec"
)

func main() {
	// The global model is the paper's LeNet-5 flat parameter tensors.
	model := gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU)

	scenario := gradsec.FleetScenario{
		Clients:           256,
		Rounds:            8,
		MinClients:        16,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.10,
		FailureFraction:   0.05,
		NoTEEFraction:     0.05,
		RequireTEE:        true,
		Seed:              42,
		Model:             model.StateDict(),
	}

	fmt.Printf("fleet: %d clients, %d rounds, sample %.0f%%, deadline %v\n",
		scenario.Clients, scenario.Rounds, scenario.SampleFraction*100, scenario.Deadline)
	fmt.Printf("       %.0f%% stragglers, %.0f%% failing, %.0f%% without TEE (rejected: RequireTEE)\n\n",
		scenario.StragglerFraction*100, scenario.FailureFraction*100, scenario.NoTEEFraction*100)

	start := time.Now()
	res, err := gradsec.RunFleet(scenario)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selection: %d accepted, %d rejected\n\n", res.Selected, res.Rejected)
	fmt.Println("round  sampled  responded  dropped  quarantined  |update|")
	for _, st := range res.Trace {
		fmt.Printf("%5d  %7d  %9d  %7d  %11d  %8.4f\n",
			st.Round, st.Sampled, st.Responded, st.Dropped, st.Quarantined, st.UpdateNorm)
	}
	fmt.Printf("\nquarantined devices: %v\n", res.Quarantined)
	fmt.Printf("virtual deadline time: %v, wall time: %v\n", res.Elapsed, time.Since(start).Round(time.Millisecond))
}
