// Attack demo: runs the data-reconstruction inference attack (DRIA /
// deep leakage from gradients) against an unprotected model and against
// static GradSec protecting the early conv layers, printing the
// ImageLoss achieved by the attacker in each setting (paper Figure 5).
package main

import (
	"fmt"
	"math/rand"

	"github.com/gradsec/gradsec/internal/attack"
	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/nn"
)

func main() {
	net := nn.NewLeNet5Mini(rand.New(rand.NewSource(3)), nn.ActSigmoid)
	faces := dataset.NewFaceGenerator(rand.New(rand.NewSource(4)), 10, 1, 16, 16, 0.02)
	x := faces.Sample(rand.New(rand.NewSource(6)), 0, false).Reshape(1, 1, 16, 16)
	y := dataset.OneHot([]int{0}, 10)

	cfg := attack.DRIAConfig{Iterations: 120, Seed: 8}
	fmt.Println("DRIA (gradient matching with analytic second-order gradients):")
	for _, c := range []struct {
		label string
		prot  []int
	}{
		{"no protection", nil},
		{"GradSec static L2", []int{1}},
		{"GradSec static L1+L2", []int{0, 1}},
	} {
		res := attack.DRIA(net, x, y, c.prot, cfg)
		verdict := "RECONSTRUCTED"
		if res.ImageLoss > 1 {
			verdict = "attack defeated"
		}
		fmt.Printf("  %-22s ImageLoss %.3f  (%s)\n", c.label, res.ImageLoss, verdict)
	}
}
