// Command recovery demonstrates crash-durable federation: the same
// seeded fleet is run once uninterrupted and once with the server
// killed mid-round, recovered from its write-ahead journal, and resumed
// with a reconnecting fleet. The journal commits each round atomically
// (open → folds → close), so the torn round is discarded, re-run
// identically, and the two sessions land on bit-identical models —
// trace for trace, coordinate for coordinate.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/gradsec/gradsec/internal/flsim"
)

func main() {
	sc := flsim.Scenario{
		Clients:         18,
		Rounds:          6,
		MinClients:      4,
		FailureFraction: 0.2, // some quarantines commit before the crash
		Seed:            11,
	}

	baseline, err := flsim.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "gradsec-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Kill the server inside round 3 after two folds: the journal holds
	// three committed rounds plus a torn round-3 prefix.
	spec := flsim.CrashSpec{Round: 3, Folds: 2}
	recovered, err := flsim.RunWithCrash(sc, spec, filepath.Join(dir, "session.journal"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet: %d clients, %d rounds, crash mid-round %d (after %d folds)\n\n",
		sc.Clients, sc.Rounds, spec.Round, spec.Folds)
	fmt.Printf("%-8s %-28s %-28s\n", "round", "uninterrupted", "crash+recover")
	for r := range baseline.Trace {
		b, c := baseline.Trace[r], recovered.Trace[r]
		note := ""
		if r == spec.Round {
			note = "  <- re-run after recovery"
		}
		fmt.Printf("%-8d sampled %-3d |u|=%-10.6f sampled %-3d |u|=%-10.6f%s\n",
			r, b.Sampled, b.UpdateNorm, c.Sampled, c.UpdateNorm, note)
	}

	same := true
	for i := range baseline.Final {
		for j := range baseline.Final[i].Data {
			if baseline.Final[i].Data[j] != recovered.Final[i].Data[j] {
				same = false
			}
		}
	}
	fmt.Printf("\nfinal models bit-identical: %v\n", same)
	if !same {
		os.Exit(1)
	}
}
