// Command hier demonstrates the hierarchical aggregation tier: the
// same 1024-client fleet run flat (one server fanning in every client)
// and through 16 edge aggregators (the root fanning in 16 shard
// partials), proving the two aggregates are bit-identical — plain and
// under shard-scoped secure aggregation — and showing a congested
// shard degrading gracefully instead of stalling the fleet.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/gradsec/gradsec"
)

func sameModel(a, b []*gradsec.FleetResult) bool {
	x, y := a[0].Final, b[0].Final
	for i := range x {
		for j := range x[i].Data {
			if x[i].Data[j] != y[i].Data[j] {
				return false
			}
		}
	}
	return true
}

func run(label string, sc gradsec.FleetScenario) *gradsec.FleetResult {
	start := time.Now()
	res, err := gradsec.RunFleet(sc)
	if err != nil {
		log.Fatal(err)
	}
	last := res.Trace[len(res.Trace)-1]
	fmt.Printf("%-28s responded %4d/%4d per round, |update| %.6f, wall %v\n",
		label+":", last.Responded, sc.Clients, last.UpdateNorm, time.Since(start).Round(time.Millisecond))
	return res
}

func main() {
	base := gradsec.FleetScenario{
		Clients:          1024,
		Rounds:           3,
		WeightedExamples: true,
		Seed:             42,
		Model:            gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict(),
	}
	fresh := func(mutate func(*gradsec.FleetScenario)) gradsec.FleetScenario {
		sc := base
		sc.Model = gradsec.NewLeNet5(rand.New(rand.NewSource(7)), gradsec.ActReLU).StateDict()
		mutate(&sc)
		return sc
	}

	fmt.Println("== 1024 clients, LeNet-5, 3 rounds: flat vs 16-shard hierarchy ==")
	flat := run("flat (fan-in 1024)", fresh(func(*gradsec.FleetScenario) {}))
	hier := run("hierarchical (fan-in 16)", fresh(func(sc *gradsec.FleetScenario) { sc.Shards = 16 }))
	if !sameModel([]*gradsec.FleetResult{flat}, []*gradsec.FleetResult{hier}) {
		log.Fatal("hierarchical aggregate diverged from flat FedAvg")
	}
	fmt.Println("-> bit-identical final models: partial sums compose exactly")

	fmt.Println()
	fmt.Println("== shard-scoped secure aggregation (64 clients x 8 shards) ==")
	small := func(mutate func(*gradsec.FleetScenario)) gradsec.FleetScenario {
		sc := fresh(mutate)
		sc.Clients = 64
		return sc
	}
	plainSmall := run("flat plaintext", small(func(*gradsec.FleetScenario) {}))
	maskedHier := run("hierarchical masked", small(func(sc *gradsec.FleetScenario) {
		sc.SecAgg = true
		sc.Shards = 8
	}))
	if !sameModel([]*gradsec.FleetResult{plainSmall}, []*gradsec.FleetResult{maskedHier}) {
		log.Fatal("masked hierarchical aggregate diverged from plaintext FedAvg")
	}
	fmt.Println("-> per-shard masks cancel, ring partials compose: still bit-identical")

	fmt.Println()
	fmt.Println("== graceful degradation: one fully congested shard ==")
	degraded, err := gradsec.RunFleet(gradsec.FleetScenario{
		Clients:         64,
		Rounds:          3,
		Shards:          8,
		MinShards:       7,
		Deadline:        2 * time.Second,
		ShardStragglers: []float64{0, 0, 0, 0, 0, 0, 0, 1},
		Seed:            7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round  shards  sampled  responded  dropped")
	for _, st := range degraded.Trace {
		fmt.Printf("%5d  %6d  %7d  %9d  %7d\n", st.Round, st.Shards, st.Sampled, st.Responded, st.Dropped)
	}
	fmt.Println("-> the congested shard misses every round; the other 7 keep the fleet training")
}
