// Package hier is the hierarchical aggregation tier of the FL stack: a
// two-level federation of one root and N edge aggregators that lifts
// the round engine from "one server, one cohort" to fleet scale.
//
// Each edge aggregator runs the complete existing round protocol
// against its shard of clients — selection and attestation, cohort
// sampling, round deadlines, quarantine and probation, codec
// negotiation, secure-aggregation masking — by driving an fl.Server in
// hierarchical partial mode (fl.ServerConfig.Partials). Instead of
// applying each round's weighted mean locally, the edge folds its
// shard into one un-normalised partial aggregate and forwards a single
// PartialUp frame upstream. The root broadcasts the global model once
// per round (ShardDown, encode-once per negotiated codec), folds the
// shard partials, normalises once over the whole fleet, and applies
// the update.
//
// The fan-in consequence is the point: the root handles O(shards)
// connections, frames, and folds per round instead of O(fleet), and a
// round's wall time is bounded by the slowest shard rather than the
// slowest client of the whole fleet (each shard drops its own
// stragglers against its own deadline).
//
// # Exact composition
//
// Partial sums compose exactly at the root:
//
//   - Plain rounds forward Σ wᵢuᵢ as full-precision f64 tensors
//     (wire.ExactTensorList — never the lossy session codec) plus the
//     summed weight Σ wᵢ. The root adds the shard sums and divides
//     once by the fleet weight: for the simulator's dyadic updates
//     every addition is exact in float64, so the hierarchical
//     aggregate is bit-identical to flat FedAvg over the same fleet
//     (asserted by the flsim multi-tier scenarios).
//
//   - Secure-aggregation rounds forward the shard's ring sums in
//     ℤ/2⁶⁴. The pairwise mask graph is scoped per shard — each edge
//     distributes only its own cohort roster, so masks cancel (or are
//     reconciled from survivor shares) entirely within the shard — and
//     fixed-point sums are additive in the ring, so the root simply
//     adds the level vectors and dequantises once. Ring arithmetic is
//     exact by construction; the masked hierarchical aggregate equals
//     flat masked aggregation bit for bit. Shard scoping also cuts
//     mask expansion from O(fleet²·model) to O(shards·(fleet/shards)²·
//     model) — the hierarchy makes large-cohort secagg cheap as a side
//     effect.
//
// Protected (sealed) tensors are supported in plain mode — the edge
// unseals and folds them exactly like a flat trusted server — but not
// under secure aggregation, where sealed halves need the root's
// enclave (fl.ErrPartialProtected).
//
// # Degradation
//
// A shard whose round fails (too few responders, reconciliation
// failure) reports an empty partial and stays in the session; a shard
// that misses the root's ShardDeadline is dropped for the round; an
// edge whose transport dies is removed. The root's round succeeds
// while at least MinShards partials fold, so one bad shard degrades
// coverage instead of killing the fleet.
package hier
