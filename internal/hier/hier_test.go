package hier

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// constTrainer is a TEE-less trainer answering every round with a
// constant additive update (dyadic, so aggregation is exact).
type constTrainer struct {
	id       string
	delta    float64
	examples int
	failOn   int // report a training failure from this round on; -1 never
}

func (t *constTrainer) DeviceID() string { return t.id }
func (t *constTrainer) HasTEE() bool     { return false }
func (t *constTrainer) NumExamples() int { return t.examples }
func (t *constTrainer) Attest([]byte) (tz.Quote, error) {
	return tz.Quote{}, errors.New("no TEE")
}
func (t *constTrainer) OpenChannel([]byte) ([]byte, error) {
	return nil, errors.New("no TEE")
}
func (t *constTrainer) TrainRound(round int, plain []*tensor.Tensor, sealed, plan []byte) ([]*tensor.Tensor, []byte, error) {
	if t.failOn >= 0 && round >= t.failOn {
		return nil, nil, fmt.Errorf("injected failure (round %d)", round)
	}
	upd := make([]*tensor.Tensor, len(plain))
	for i, p := range plain {
		upd[i] = tensor.Full(t.delta, p.Shape...)
	}
	return upd, nil, nil
}

func testModel() []*tensor.Tensor {
	return []*tensor.Tensor{tensor.New(2, 3), tensor.New(4)}
}

// dyadicDelta gives client i an exact dyadic update value.
func dyadicDelta(i int) float64 { return float64(i%13-6) / 16 }

// runFlat runs a flat session over n clients and returns the final
// model and trace.
func runFlat(t *testing.T, n, rounds int, secAgg bool) ([]*tensor.Tensor, []fl.RoundStats) {
	t.Helper()
	state := testModel()
	conns := make([]fl.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		server, client := fl.Pipe()
		conns[i] = server
		tr := &constTrainer{id: fmt.Sprintf("dev-%03d", i), delta: dyadicDelta(i), examples: 1 + i%4, failOn: -1}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := fl.NewClient(client, tr)
			_ = c.Run()
		}()
	}
	srv := fl.NewServer(state, fl.ServerConfig{Rounds: rounds, SecAgg: secAgg})
	if _, err := srv.Run(conns); err != nil {
		t.Fatalf("flat session: %v", err)
	}
	wg.Wait()
	return state, srv.Trace()
}

// runHier runs the same fleet through shards edges and returns the
// root's final model and trace.
func runHier(t *testing.T, n, shards, rounds int, secAgg bool) ([]*tensor.Tensor, []fl.RoundStats) {
	t.Helper()
	state := testModel()
	edgeConns := make([]fl.Conn, shards)
	var fleet sync.WaitGroup
	for s := 0; s < shards; s++ {
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		// Contiguous partition, same device order as the flat run.
		lo, hi := s*n/shards, (s+1)*n/shards
		clientConns := make([]fl.Conn, 0, hi-lo)
		for i := lo; i < hi; i++ {
			server, client := fl.Pipe()
			clientConns = append(clientConns, server)
			tr := &constTrainer{id: fmt.Sprintf("dev-%03d", i), delta: dyadicDelta(i), examples: 1 + i%4, failOn: -1}
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				c := fl.NewClient(client, tr)
				_ = c.Run()
			}()
		}
		edge := NewEdge(testModel(), EdgeConfig{Name: fmt.Sprintf("edge-%d", s), MaxCodec: wire.CodecQ8})
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			if err := edge.Run(edgeSide, clientConns); err != nil {
				t.Errorf("edge: %v", err)
			}
		}()
	}
	root := NewRoot(state, RootConfig{Rounds: rounds, MinShards: shards, SecAgg: secAgg})
	if _, err := root.Run(edgeConns); err != nil {
		t.Fatalf("hier session: %v", err)
	}
	fleet.Wait()
	return state, root.Trace()
}

func assertSameModel(t *testing.T, label string, a, b []*tensor.Tensor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: tensor counts differ", label)
	}
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("%s: models differ at tensor %d elem %d: %v != %v",
					label, i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// TestHierPlainMatchesFlat: the two-tier plain aggregate — weighted
// FedAvg over contiguous shards — is bit-identical to the flat session
// over the same fleet, round accounting included.
func TestHierPlainMatchesFlat(t *testing.T) {
	flat, flatTrace := runFlat(t, 12, 3, false)
	hier, hierTrace := runHier(t, 12, 3, 3, false)
	assertSameModel(t, "plain", flat, hier)
	if len(hierTrace) != len(flatTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(hierTrace), len(flatTrace))
	}
	for r := range hierTrace {
		h, f := hierTrace[r], flatTrace[r]
		if h.Shards != 3 {
			t.Fatalf("round %d folded %d shards, want 3", r, h.Shards)
		}
		if h.Sampled != f.Sampled || h.Responded != f.Responded || h.WeightTotal != f.WeightTotal {
			t.Fatalf("round %d accounting diverged: hier %+v vs flat %+v", r, h, f)
		}
		if h.UpdateNorm != f.UpdateNorm {
			t.Fatalf("round %d update norm diverged: %v vs %v", r, h.UpdateNorm, f.UpdateNorm)
		}
	}
}

// TestHierMaskedMatchesFlat: shard-scoped pairwise masking composes —
// each shard's masks cancel within the shard, the ring partials add at
// the root, and the dequantised aggregate equals flat secure
// aggregation (and flat plaintext) bit for bit.
func TestHierMaskedMatchesFlat(t *testing.T) {
	flat, _ := runFlat(t, 12, 3, false)
	flatMasked, _ := runFlat(t, 12, 3, true)
	hierMasked, trace := runHier(t, 12, 4, 3, true)
	assertSameModel(t, "flat masked vs flat plain", flat, flatMasked)
	assertSameModel(t, "hier masked vs flat plain", flat, hierMasked)
	for r, st := range trace {
		if st.Shards != 4 || st.Responded != 12 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
	}
}

// TestHierShardFailureDegrades: a shard whose clients all fail keeps
// reporting empty partials; the root's round degrades to the healthy
// shards instead of failing the session.
func TestHierShardFailureDegrades(t *testing.T) {
	const shards, perShard, rounds = 3, 4, 3
	state := testModel()
	edgeConns := make([]fl.Conn, shards)
	var fleet sync.WaitGroup
	for s := 0; s < shards; s++ {
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		clientConns := make([]fl.Conn, 0, perShard)
		for i := 0; i < perShard; i++ {
			server, client := fl.Pipe()
			clientConns = append(clientConns, server)
			failOn := -1
			if s == 2 {
				failOn = 1 // the whole shard fails from round 1 on
			}
			tr := &constTrainer{id: fmt.Sprintf("s%d-dev-%d", s, i), delta: 0.25, failOn: failOn}
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				_ = fl.NewClient(client, tr).Run()
			}()
		}
		edge := NewEdge(testModel(), EdgeConfig{Name: fmt.Sprintf("edge-%d", s)})
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			_ = edge.Run(edgeSide, clientConns)
		}()
	}
	root := NewRoot(state, RootConfig{Rounds: rounds, MinShards: 2})
	if _, err := root.Run(edgeConns); err != nil {
		t.Fatalf("session should degrade, not fail: %v", err)
	}
	fleet.Wait()
	trace := root.Trace()
	if trace[0].Shards != 3 || trace[0].Responded != 12 {
		t.Fatalf("round 0 stats = %+v", trace[0])
	}
	for r := 1; r < rounds; r++ {
		if trace[r].Shards != 2 || trace[r].Responded != 8 {
			t.Fatalf("round %d stats = %+v, want 2 shards / 8 responders", r, trace[r])
		}
	}
	// Round 1 additionally records the failed shard's quarantines.
	if trace[1].Quarantined != perShard {
		t.Fatalf("round 1 quarantined %d, want %d", trace[1].Quarantined, perShard)
	}
}

// TestHierEdgeLossTolerated: an edge that dies mid-session is dropped;
// the root finishes on the surviving shards.
func TestHierEdgeLossTolerated(t *testing.T) {
	const shards = 3
	state := testModel()
	edgeConns := make([]fl.Conn, shards)
	var fleet sync.WaitGroup
	for s := 0; s < shards; s++ {
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		if s == 2 {
			// This "edge" enrols, answers round 0, then vanishes.
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				defer edgeSide.Close()
				msg, err := edgeSide.Recv()
				if err != nil {
					return
				}
				ch := msg.(*fl.Challenge)
				_ = edgeSide.Send(&fl.Attest{DeviceID: "edge-flaky", Codec: ch.Codec})
				m, err := edgeSide.Recv()
				if err != nil {
					return
				}
				down := m.(*fl.ShardDown)
				sum := make([]*tensor.Tensor, len(down.Model))
				for i, p := range down.Model {
					sum[i] = tensor.Full(0.5, p.Shape...)
				}
				_ = edgeSide.Send(&fl.PartialUp{Round: down.Round, Sum: sum, Weight: 1, Count: 1, Sampled: 1})
				// ...and dies before round 1.
			}()
			continue
		}
		clientConns := make([]fl.Conn, 0, 2)
		for i := 0; i < 2; i++ {
			server, client := fl.Pipe()
			clientConns = append(clientConns, server)
			tr := &constTrainer{id: fmt.Sprintf("s%d-dev-%d", s, i), delta: 0.25, failOn: -1}
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				_ = fl.NewClient(client, tr).Run()
			}()
		}
		edge := NewEdge(testModel(), EdgeConfig{Name: fmt.Sprintf("edge-%d", s)})
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			_ = edge.Run(edgeSide, clientConns)
		}()
	}
	var dropped []string
	root := NewRoot(state, RootConfig{Rounds: 3, MinShards: 2, Hooks: Hooks{
		ShardDropped: func(shard string, _ error) { dropped = append(dropped, shard) },
	}})
	if _, err := root.Run(edgeConns); err != nil {
		t.Fatalf("session should tolerate the lost edge: %v", err)
	}
	fleet.Wait()
	if len(dropped) != 1 || dropped[0] != "edge-flaky" {
		t.Fatalf("dropped %v, want [edge-flaky]", dropped)
	}
	trace := root.Trace()
	if trace[0].Shards != 3 {
		t.Fatalf("round 0 folded %d shards, want 3", trace[0].Shards)
	}
	for r := 1; r < 3; r++ {
		if trace[r].Shards != 2 {
			t.Fatalf("round %d folded %d shards, want 2", r, trace[r].Shards)
		}
	}
}

// TestHierEnrolmentRejectsDuplicates: shard identity is unique — a
// second edge claiming an enrolled name is turned away.
func TestHierEnrolmentRejectsDuplicates(t *testing.T) {
	state := testModel()
	mk := func(name string) (fl.Conn, *Edge, []fl.Conn, *sync.WaitGroup) {
		rootSide, edgeSide := fl.Pipe()
		server, client := fl.Pipe()
		tr := &constTrainer{id: name + "-dev", delta: 0.25, failOn: -1}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fl.NewClient(client, tr).Run()
		}()
		edge := NewEdge(testModel(), EdgeConfig{Name: name})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = edge.Run(edgeSide, []fl.Conn{server})
		}()
		return rootSide, edge, []fl.Conn{server}, &wg
	}
	c1, _, _, wg1 := mk("edge-a")
	c2, dup, _, wg2 := mk("edge-a")
	root := NewRoot(state, RootConfig{Rounds: 1, MinShards: 1})
	if _, err := root.Run([]fl.Conn{c1, c2}); err != nil {
		t.Fatalf("session: %v", err)
	}
	wg1.Wait()
	wg2.Wait()
	if dup.RejectedReason == "" {
		t.Fatal("duplicate edge was not rejected")
	}
	trace := root.Trace()
	if trace[0].Shards != 1 {
		t.Fatalf("round 0 folded %d shards, want 1", trace[0].Shards)
	}
}

// TestPartialModeRefusesProtectedSecAgg: a secure-aggregation edge
// given a protecting planner must fail loudly — sealed halves need the
// root's enclave, which a shard partial cannot carry.
func TestPartialModeRefusesProtectedSecAgg(t *testing.T) {
	state := testModel()
	srv := fl.NewServer(state, fl.ServerConfig{
		Partials: true,
		SecAgg:   true,
		Planner:  staticPlan{0: true},
	})
	server, client := fl.Pipe()
	done := make(chan struct{})
	tr := &constTrainer{id: "dev-0", delta: 0.25, failOn: -1}
	go func() {
		defer close(done)
		_ = fl.NewClient(client, tr).Run()
	}()
	if _, err := srv.Open([]fl.Conn{server}); err != nil {
		t.Fatalf("open: %v", err)
	}
	_, err := srv.StepRound(0)
	if !errors.Is(err, fl.ErrPartialProtected) {
		t.Fatalf("StepRound error = %v, want ErrPartialProtected", err)
	}
	srv.Abort()
	<-done
}

// staticPlan protects a fixed flat-index set every round.
type staticPlan map[int]bool

func (p staticPlan) PlanRound(int) (map[int]bool, []byte) { return p, nil }

// TestRootMinReleaseFloor: the fleet-wide secure-aggregation release
// floor holds at the root — a masked round whose composed partials
// fold too few client updates never dequantises.
func TestRootMinReleaseFloor(t *testing.T) {
	state := testModel()
	edgeConns := make([]fl.Conn, 2)
	var fleet sync.WaitGroup
	for s := 0; s < 2; s++ {
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		server, client := fl.Pipe()
		tr := &constTrainer{id: fmt.Sprintf("mr-dev-%d", s), delta: 0.25, failOn: -1}
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			_ = fl.NewClient(client, tr).Run()
		}()
		edge := NewEdge(testModel(), EdgeConfig{Name: fmt.Sprintf("edge-%d", s)})
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			_ = edge.Run(edgeSide, []fl.Conn{server})
		}()
	}
	root := NewRoot(state, RootConfig{Rounds: 1, SecAgg: true, MinRelease: 4})
	_, err := root.Run(edgeConns)
	fleet.Wait()
	if !errors.Is(err, secagg.ErrCohortTooSmall) {
		t.Fatalf("err = %v, want ErrCohortTooSmall", err)
	}
	for i := range state {
		for j := range state[i].Data {
			if state[i].Data[j] != 0 {
				t.Fatal("state mutated despite a refused release")
			}
		}
	}
}
