package hier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// ErrNotEnoughShards is returned when enrolment leaves fewer edges than
// MinShards, or when fewer than MinShards shard partials fold before a
// round closes.
var ErrNotEnoughShards = errors.New("hier: not enough shards")

// RootConfig configures the hierarchy root.
type RootConfig struct {
	// Rounds is the number of FL cycles to run.
	Rounds int
	// MinShards is the per-round partial floor: a round fails when
	// fewer shards contribute a non-empty partial. 0 requires every
	// enrolled edge.
	MinShards int
	// ShardDeadline bounds each round at the root: shards that have not
	// forwarded their partial when it expires are dropped for the round
	// (they stay enrolled). 0 waits for every live shard — per-round
	// wall time is then exactly the slowest shard's. Edges pace their
	// own clients with their own RoundDeadline.
	ShardDeadline time.Duration
	// Codec is the tensor codec offered to edges for the downstream
	// model broadcast (ShardDown); an edge may negotiate down. Partial
	// sums always travel exactly, whatever is negotiated.
	Codec wire.Codec
	// SecAgg announces masked secure aggregation for the whole
	// hierarchy: each edge runs its shard in masked mode with a
	// shard-scoped mask roster and forwards ring-sum partials.
	SecAgg bool
	// SecAggScaleBits is the fleet-wide fixed-point precision; every
	// shard must quantise identically or the ring sums would not
	// compose. 0 selects secagg.DefaultScaleBits.
	SecAggScaleBits int
	// MaskDegree is the fleet-wide masking topology, adopted by every
	// edge for its shard-scoped rosters: 0 = legacy full pairwise,
	// secagg.AutoDegree = per-shard-round k-regular graphs with double
	// masking, >0 = fixed degree. Shard graphs are independent (each
	// shard's roster seeds its own graph), so the modes compose at the
	// root exactly like full-pairwise ring sums.
	MaskDegree int
	// MinRelease, in secure-aggregation sessions, is the fleet-wide
	// release floor: a round whose composed partials fold fewer client
	// updates never publishes its aggregate (secagg.ErrCohortTooSmall).
	// Shard-level floors are the edges' own ServerConfig.MinRelease.
	// 0 disables.
	MinRelease int
	// IOTimeout bounds enrolment reads and broadcast writes on
	// deadline-capable transports. 0 disables.
	IOTimeout time.Duration
	// Clock supplies wall time for shard deadlines. Defaults to the
	// real clock; flsim injects a virtual one.
	Clock simclock.WallClock
	// Journal, when set, receives the root's write-ahead records —
	// enrolments, round opens, and committed closes carrying the
	// applied fleet mean — so a crashed root recovers with RecoverRoot
	// to the same model and round, bit for bit.
	Journal *journal.Journal
	// Rejoin, when set, is polled at the start of every round for edge
	// connections re-entering the session (a recovered edge redialling
	// after a crash). Each returned connection runs the ordinary
	// enrolment handshake; a name already live in the session is turned
	// away. The callback runs on the root's round goroutine and may
	// block — in simulations that is what makes rejoin timing
	// deterministic.
	Rejoin func(round int) []fl.Conn
	// Hooks observe the root lifecycle; all callbacks fire from the
	// root's round goroutine.
	Hooks Hooks
	// Metrics, when set, receives the root's fleet telemetry: round
	// counters, fan-in duration, and per-shard partial latency. Nil
	// disables metrics with no hot-path cost.
	Metrics *obs.Registry
	// Spans, when set, receives root round spans timed on Clock.
	Spans *obs.TraceSink
}

// Hooks observe the hierarchy root. Any field may be nil.
type Hooks struct {
	// RoundStarted fires after the round's ShardDown broadcast is
	// prepared, before it is distributed.
	RoundStarted func(round int, shards []string)
	// PartialFolded fires after a shard's partial is folded into the
	// round accumulator.
	PartialFolded func(round int, shard string)
	// ShardDropped fires when an edge is removed from the session
	// (transport failure or protocol violation).
	ShardDropped func(shard string, reason error)
	// RoundClosed fires after the round's aggregate is applied (or the
	// round failed).
	RoundClosed func(stats fl.RoundStats)
}

// Root drives a hierarchical FL session over a set of edge-aggregator
// connections: per round it broadcasts the global model once per
// negotiated codec, folds O(shards) partial aggregates, normalises once
// over the fleet, and applies the update.
type Root struct {
	cfg   RootConfig
	state []*tensor.Tensor
	ob    *rootObs

	// traceMu guards trace: the round goroutine appends, Trace (callable
	// from any goroutine, e.g. an admin health handler) copies.
	traceMu sync.Mutex
	trace   []fl.RoundStats

	// Session state lives on the struct (not Run's stack) so Abort can
	// tear a crashed-and-recovered harness down from outside Run.
	sessions  []*edgeSess
	arrivals  chan edgeArrival
	done      chan struct{}
	readers   sync.WaitGroup
	opened    bool
	shut      bool
	nextRound int
	recovered bool
}

// NewRoot creates a root owning the given global model state (flat
// parameter tensors; the slice is updated in place).
func NewRoot(state []*tensor.Tensor, cfg RootConfig) *Root {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.MinShards < 0 {
		cfg.MinShards = 0 // resolved to the enrolled edge count in Run
	}
	if !cfg.Codec.Valid() {
		cfg.Codec = wire.CodecF64
	}
	if cfg.SecAggScaleBits <= 0 || cfg.SecAggScaleBits > secagg.MaxScaleBits {
		cfg.SecAggScaleBits = secagg.DefaultScaleBits
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real()
	}
	return &Root{cfg: cfg, state: state, ob: newRootObs(&cfg)}
}

// State returns the current global model parameters.
func (r *Root) State() []*tensor.Tensor { return r.state }

// Trace returns a copy of the per-round statistics for the session so
// far, in round order. Sampled/Responded/Dropped/… are fleet-wide
// sums over the shard accounting carried by each PartialUp; Shards
// counts the partials folded. Safe to call from any goroutine while
// the session is running.
func (r *Root) Trace() []fl.RoundStats {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	out := make([]fl.RoundStats, len(r.trace))
	copy(out, r.trace)
	return out
}

// rootObs holds the root's pre-resolved telemetry handles; nil when
// observability is disabled, and every method is nil-receiver-safe.
type rootObs struct {
	clock simclock.WallClock
	spans *obs.TraceSink

	roundsOK     *obs.Counter
	roundsFailed *obs.Counter
	fanIn        *obs.Histogram
	partial      *obs.Histogram

	// bcastAt is the current round's broadcast completion instant;
	// owned by the round goroutine.
	bcastAt time.Time
}

func newRootObs(cfg *RootConfig) *rootObs {
	if cfg.Metrics == nil && cfg.Spans == nil {
		return nil
	}
	r := cfg.Metrics // nil registry hands out nil (no-op) instruments
	return &rootObs{
		clock:        cfg.Clock,
		spans:        cfg.Spans,
		roundsOK:     r.Counter("gradsec_hier_rounds_total", "hierarchical rounds closed at the root by result", "result", "ok"),
		roundsFailed: r.Counter("gradsec_hier_rounds_total", "hierarchical rounds closed at the root by result", "result", "failed"),
		fanIn:        r.Histogram("gradsec_hier_fanin_ns", "root fan-in latency (broadcast end to collect end) in nanoseconds"),
		partial:      r.Histogram("gradsec_hier_partial_ns", "per-shard partial latency from broadcast end in nanoseconds"),
	}
}

// startRound opens the root round span.
func (o *rootObs) startRound(round int) *obs.Span {
	if o == nil {
		return nil
	}
	return o.spans.Start("hier_round", round)
}

// setTrace stamps the round-scoped trace ID on spans started from now
// on; forwarded to the sink, nil-safe end to end.
func (o *rootObs) setTrace(id uint64) {
	if o == nil {
		return
	}
	o.spans.SetTrace(id)
}

// markBroadcast stamps the end of the shard broadcast — the origin for
// fan-in and per-shard partial latency.
func (o *rootObs) markBroadcast() {
	if o == nil {
		return
	}
	o.bcastAt = o.clock.Now()
}

// notePartial records one shard partial's latency since broadcast end.
func (o *rootObs) notePartial() {
	if o == nil {
		return
	}
	o.partial.Observe(o.clock.Now().Sub(o.bcastAt).Nanoseconds())
}

// noteFanIn records the full fan-in duration for the round.
func (o *rootObs) noteFanIn() {
	if o == nil {
		return
	}
	o.fanIn.Observe(o.clock.Now().Sub(o.bcastAt).Nanoseconds())
}

// noteClose counts the round by result.
func (o *rootObs) noteClose(ok bool) {
	if o == nil {
		return
	}
	if ok {
		o.roundsOK.Inc()
	} else {
		o.roundsFailed.Inc()
	}
}

// edgeSess is the root's per-edge state, owned by the round goroutine.
type edgeSess struct {
	conn  fl.Conn
	name  string
	codec wire.Codec
	dead  bool
}

// edgeArrival is one message (or terminal transport error) from an
// edge's read loop.
type edgeArrival struct {
	sess *edgeSess
	msg  fl.Message
	err  error
}

// Run enrols the given edge connections and executes cfg.Rounds
// hierarchical FL cycles, then closes the edges with a Done carrying
// the final model. It returns the number of enrolled edges. A root
// rebuilt by RecoverRoot starts at the first uncommitted round instead
// of round 0.
func (r *Root) Run(edges []fl.Conn) (int, error) {
	sessions := r.enrol(edges)
	if r.cfg.MinShards == 0 {
		// "Every edge": whatever enrolled defines the floor — but never
		// less than one shard.
		r.cfg.MinShards = max(1, len(sessions))
	}
	if len(sessions) < r.cfg.MinShards {
		for _, sess := range sessions {
			r.reject(sess.conn, "not enough edge aggregators enrolled")
		}
		return len(sessions), fmt.Errorf("%w: %d of %d enrolled", ErrNotEnoughShards, len(sessions), r.cfg.MinShards)
	}
	r.journalSessionOpen(sessions)

	r.sessions = sessions
	r.arrivals = make(chan edgeArrival, len(sessions))
	r.done = make(chan struct{})
	for _, sess := range sessions {
		r.startReader(sess)
	}
	r.opened = true
	r.shut = false

	for round := r.nextRound; round < r.cfg.Rounds; round++ {
		r.admitRejoins(round)
		if err := r.runRound(round, r.arrivals); err != nil {
			r.shutdown()
			return len(sessions), fmt.Errorf("hier: round %d: %w", round, err)
		}
	}

	// Encode-once final broadcast, mirroring the flat engine.
	finalFrames := make(map[wire.Codec][]byte)
	for _, sess := range r.sessions {
		if sess.dead {
			continue
		}
		payload, ok := finalFrames[sess.codec]
		if !ok {
			payload = fl.EncodeMessageCodec(&fl.Done{Final: r.state}, sess.codec)
			finalFrames[sess.codec] = payload
		}
		_ = sess.conn.SendFrame(fl.MsgDone, payload)
	}
	r.shutdown()
	return len(sessions), nil
}

// startReader spawns the read loop for one enrolled edge.
func (r *Root) startReader(sess *edgeSess) {
	r.readers.Add(1)
	go func() {
		defer r.readers.Done()
		for {
			msg, err := sess.conn.Recv()
			select {
			case r.arrivals <- edgeArrival{sess: sess, msg: msg, err: err}:
			case <-r.done:
				return
			}
			if err != nil {
				return
			}
		}
	}()
}

// Abort tears the session down without a final broadcast: connections
// close, readers drain, the journal is flushed. Used by crash harnesses
// after recovering a panic out of Run.
func (r *Root) Abort() { r.shutdown() }

func (r *Root) shutdown() {
	if !r.opened || r.shut {
		return
	}
	r.shut = true
	close(r.done)
	for _, sess := range r.sessions {
		_ = sess.conn.Close()
	}
	r.readers.Wait()
	if r.cfg.Journal != nil {
		_ = r.cfg.Journal.Sync()
	}
	r.opened = false
}

// journalAppend writes one record through the configured journal; a
// no-op without one.
func (r *Root) journalAppend(rec *journal.Record) {
	if r.cfg.Journal != nil {
		_ = r.cfg.Journal.Append(rec)
	}
}

// journalSessionOpen writes the session fingerprint and the enrolled
// shard roster. A recovered root continues its old journal and does
// not re-fingerprint.
func (r *Root) journalSessionOpen(sessions []*edgeSess) {
	if r.cfg.Journal == nil || r.recovered {
		return
	}
	var flags uint64
	scale := 0
	if r.cfg.SecAgg {
		flags |= journal.FlagSecAgg
		scale = r.cfg.SecAggScaleBits
	}
	r.journalAppend(&journal.Record{
		Type:   journal.RecSession,
		Flags:  flags,
		Rounds: r.cfg.Rounds,
		Scale:  scale,
		Floor:  r.cfg.MinRelease,
	})
	for _, sess := range sessions {
		r.journalAppend(&journal.Record{Type: journal.RecRoster, Device: sess.name, Codec: uint8(sess.codec)})
	}
	_ = r.cfg.Journal.Sync()
}

// admitRejoins enrols connections from the Rejoin callback into the
// running session — the path a crashed-and-recovered edge takes back
// in. A name still live in the session is turned away; the dead
// session it replaces stays dead, so stale arrivals from its old read
// loop keep filtering out by session identity.
func (r *Root) admitRejoins(round int) {
	if r.cfg.Rejoin == nil {
		return
	}
	for _, conn := range r.cfg.Rejoin(round) {
		sess := r.enrolOne(conn)
		if sess == nil {
			continue
		}
		dup := false
		for _, s := range r.sessions {
			if !s.dead && s.name == sess.name {
				dup = true
				break
			}
		}
		if dup {
			r.reject(sess.conn, fmt.Sprintf("edge %q is already enrolled", sess.name))
			continue
		}
		r.journalAppend(&journal.Record{Type: journal.RecRoster, Device: sess.name, Codec: uint8(sess.codec)})
		r.sessions = append(r.sessions, sess)
		r.startReader(sess)
	}
}

// enrol runs the enrolment handshake with every edge in parallel,
// preserving input order and turning away duplicates, so shard
// identity is deterministic.
func (r *Root) enrol(edges []fl.Conn) []*edgeSess {
	results := make([]*edgeSess, len(edges))
	var wg sync.WaitGroup
	for i, conn := range edges {
		wg.Add(1)
		go func(i int, conn fl.Conn) {
			defer wg.Done()
			results[i] = r.enrolOne(conn)
		}(i, conn)
	}
	wg.Wait()

	seen := make(map[string]bool, len(edges))
	var out []*edgeSess
	for _, sess := range results {
		if sess == nil {
			continue
		}
		if seen[sess.name] {
			r.reject(sess.conn, fmt.Sprintf("duplicate edge name %q", sess.name))
			continue
		}
		seen[sess.name] = true
		out = append(out, sess)
	}
	return out
}

// enrolOne performs the enrolment handshake with a single edge,
// returning nil when it is rejected or unreachable.
func (r *Root) enrolOne(conn fl.Conn) *edgeSess {
	if dc, ok := conn.(fl.DeadlineConn); ok && r.cfg.IOTimeout > 0 {
		dc.SetReadTimeout(r.cfg.IOTimeout)
		dc.SetWriteTimeout(r.cfg.IOTimeout)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		r.reject(conn, fmt.Sprintf("generating nonce: %v", err))
		return nil
	}
	ch := &fl.Challenge{Nonce: nonce, Codec: r.cfg.Codec}
	if r.cfg.SecAgg {
		ch.SecAgg = true
		ch.ScaleBits = uint8(r.cfg.SecAggScaleBits)
		ch.MaskDegree = r.cfg.MaskDegree
	}
	if err := conn.Send(ch); err != nil {
		_ = conn.Close()
		return nil
	}
	msg, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil
	}
	att, ok := msg.(*fl.Attest)
	if !ok {
		r.reject(conn, fmt.Sprintf("sent %T instead of Attest", msg))
		return nil
	}
	if att.DeviceID == "" {
		r.reject(conn, "edge enrolment without a name")
		return nil
	}
	if !att.Codec.Valid() || att.Codec > r.cfg.Codec {
		r.reject(conn, fmt.Sprintf("codec %s exceeds offered %s", att.Codec, r.cfg.Codec))
		return nil
	}
	conn.SetCodec(att.Codec)
	if dc, ok := conn.(fl.DeadlineConn); ok {
		dc.SetReadTimeout(0) // reads are round-paced from here on
	}
	return &edgeSess{conn: conn, name: att.DeviceID, codec: att.Codec}
}

func (r *Root) reject(conn fl.Conn, reason string) {
	_ = conn.Send(&fl.Reject{Reason: reason})
	_ = conn.Close()
}

// dropEdge removes an edge from the session permanently.
func (r *Root) dropEdge(sess *edgeSess, reason error) {
	if sess.dead {
		return
	}
	sess.dead = true
	_ = sess.conn.Close()
	if r.cfg.Hooks.ShardDropped != nil {
		r.cfg.Hooks.ShardDropped(sess.name, reason)
	}
}

// roundAccum folds shard partials for one round. Exactly one of sum
// (plain) or levels (masked) is populated.
type roundAccum struct {
	sum    []*tensor.Tensor
	levels [][]uint64
	weight float64
	count  int
	shards int
}

// runRound executes one hierarchical FL cycle.
func (r *Root) runRound(round int, arrivals <-chan edgeArrival) error {
	var live []*edgeSess
	for _, sess := range r.sessions {
		if !sess.dead {
			live = append(live, sess)
		}
	}
	if len(live) < r.cfg.MinShards {
		return fmt.Errorf("%w: %d live shards, need %d", ErrNotEnoughShards, len(live), r.cfg.MinShards)
	}
	// Write-ahead: the round is in flight; records before its close
	// stay uncommitted if the root dies, and recovery re-runs it.
	r.journalAppend(&journal.Record{Type: journal.RecRoundOpen, Round: round})
	if round+1 > r.nextRound {
		r.nextRound = round + 1
	}

	stats := fl.RoundStats{Round: round}
	var reasons []string
	// The root mints the fleet-wide trace ID for the round: it rides the
	// ShardDown to every edge (and from there to every client), so spans
	// emitted at any tier this round share one correlation ID.
	trace := obs.RoundTrace(round)
	r.ob.setTrace(trace)
	roundSpan := r.ob.startRound(round)
	defer roundSpan.End()

	var deadlineC <-chan time.Time
	if r.cfg.ShardDeadline > 0 {
		timer := r.cfg.Clock.NewTimer(r.cfg.ShardDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}

	if r.cfg.Hooks.RoundStarted != nil {
		names := make([]string, len(live))
		for i, sess := range live {
			names[i] = sess.name
		}
		r.cfg.Hooks.RoundStarted(round, names)
	}

	// Encode-once shard broadcast: every edge on the same codec shares
	// one ShardDown frame.
	shared := make(map[wire.Codec][]byte)
	pending := make(map[*edgeSess]bool, len(live))
	for _, sess := range live {
		payload, ok := shared[sess.codec]
		if !ok {
			payload = fl.EncodeMessageCodec(&fl.ShardDown{Round: round, Model: r.state, Trace: trace}, sess.codec)
			shared[sess.codec] = payload
		}
		if err := sess.conn.SendFrame(fl.MsgShardDown, payload); err != nil {
			r.dropEdge(sess, fmt.Errorf("sending model: %w", err))
			reasons = append(reasons, fmt.Sprintf("%s: send: %v", sess.name, err))
			continue
		}
		pending[sess] = true
	}
	r.ob.markBroadcast()

	acc := &roundAccum{}
collect:
	for len(pending) > 0 {
		select {
		case a := <-arrivals:
			r.handleArrival(round, a, pending, acc, &stats, &reasons)
		case <-deadlineC:
			for {
				select {
				case a := <-arrivals:
					r.handleArrival(round, a, pending, acc, &stats, &reasons)
				default:
					break collect
				}
			}
		}
	}
	r.ob.noteFanIn()
	stats.Shards = acc.shards
	stats.Responded = acc.count
	stats.WeightTotal = acc.weight

	if acc.shards < r.cfg.MinShards || acc.count == 0 {
		detail := ""
		if len(reasons) > 0 {
			detail = " (" + strings.Join(reasons, "; ") + ")"
		}
		err := fmt.Errorf("%w: %d shard partials folded (%d updates), need %d shards%s",
			ErrNotEnoughShards, acc.shards, acc.count, r.cfg.MinShards, detail)
		r.closeRound(stats, false, nil)
		return err
	}
	if r.cfg.SecAgg && r.cfg.MinRelease > 0 && acc.count < r.cfg.MinRelease {
		// Below the fleet-wide release floor the composed aggregate
		// approaches an individual shard's (or client's) update; refuse
		// to dequantise it, mirroring the flat engine's policy.
		err := fmt.Errorf("%w: %d of %d required for release", secagg.ErrCohortTooSmall, acc.count, r.cfg.MinRelease)
		r.closeRound(stats, false, nil)
		return err
	}

	mean := r.mean(acc)
	stats.UpdateNorm = fl.UpdateNorm(mean)
	fl.ApplyUpdate(r.state, mean, 1.0)
	r.closeRound(stats, true, mean)
	return nil
}

// mean normalises the round accumulator over the fleet weight. The
// arithmetic mirrors the flat engine exactly — dequantise the composed
// ring sum (masked) or take the composed float sum (plain), then one
// Scale by 1/weight — so dyadic fleets reproduce flat FedAvg bit for
// bit.
func (r *Root) mean(acc *roundAccum) []*tensor.Tensor {
	inv := 1 / acc.weight
	out := make([]*tensor.Tensor, len(r.state))
	if acc.sum != nil {
		for i, s := range acc.sum {
			out[i] = tensor.Scale(s, inv)
		}
		return out
	}
	scale := secagg.ScaleFor(r.cfg.SecAggScaleBits)
	for i, lv := range acc.levels {
		t := tensor.New(r.state[i].Shape...)
		secagg.Dequantise(lv, scale, t.Data)
		out[i] = tensor.Scale(t, inv)
	}
	return out
}

// closeRound commits the round: journal close record (with the applied
// fleet mean for successful rounds), trace, observer hook — in that
// order, so a crash inside a hook still finds the round durable.
func (r *Root) closeRound(stats fl.RoundStats, ok bool, applied []*tensor.Tensor) {
	if r.cfg.Journal != nil {
		r.journalAppend(&journal.Record{
			Type:   journal.RecRoundClose,
			Round:  stats.Round,
			OK:     ok,
			Stats:  rootJournalStats(stats),
			Update: applied,
		})
		_ = r.cfg.Journal.Sync()
	}
	r.ob.noteClose(ok)
	r.traceMu.Lock()
	r.trace = append(r.trace, stats)
	r.traceMu.Unlock()
	if r.cfg.Hooks.RoundClosed != nil {
		r.cfg.Hooks.RoundClosed(stats)
	}
}

func rootJournalStats(st fl.RoundStats) journal.Stats {
	return journal.Stats{
		Round:         st.Round,
		Sampled:       st.Sampled,
		Responded:     st.Responded,
		Dropped:       st.Dropped,
		Quarantined:   st.Quarantined,
		Probation:     st.Probation,
		LateDiscarded: st.LateDiscarded,
		Duplicates:    st.Duplicates,
		Reconciled:    st.Reconciled,
		WeightTotal:   st.WeightTotal,
		UpdateNorm:    st.UpdateNorm,
		Shards:        st.Shards,
	}
}

// handleArrival routes one edge message during a round: fold a valid
// partial, discard stale ones, drop the edge on failure.
func (r *Root) handleArrival(round int, a edgeArrival, pending map[*edgeSess]bool, acc *roundAccum, stats *fl.RoundStats, reasons *[]string) {
	sess := a.sess
	if sess.dead {
		return // residue from an already-closed connection
	}
	if a.err != nil {
		delete(pending, sess)
		r.dropEdge(sess, fmt.Errorf("transport: %w", a.err))
		*reasons = append(*reasons, fmt.Sprintf("%s: transport: %v", sess.name, a.err))
		return
	}
	switch m := a.msg.(type) {
	case *fl.PartialUp:
		if m.Round < round {
			// A slow shard's answer to an earlier round it was dropped
			// from: stale, the fleet has moved on.
			stats.LateDiscarded++
			return
		}
		if m.Round > round || !pending[sess] {
			delete(pending, sess)
			r.dropEdge(sess, fmt.Errorf("unexpected partial for round %d during round %d", m.Round, round))
			*reasons = append(*reasons, fmt.Sprintf("%s: protocol violation", sess.name))
			return
		}
		delete(pending, sess)
		// Shard accounting folds into the fleet-wide stats whether or
		// not the shard contributed updates.
		stats.Sampled += int(m.Sampled)
		stats.Dropped += int(m.Dropped)
		stats.Quarantined += int(m.Quarantined)
		stats.LateDiscarded += int(m.LateDiscarded)
		stats.Reconciled += int(m.Reconciled)
		stats.Probation += int(m.Probation)
		// Fold the shard's telemetry delta into the fleet registry before
		// the empty-partial check: a degraded shard round's accounting is
		// exactly what the fleet view must not lose. Decode failures drop
		// the blob, never the partial — telemetry must not perturb
		// training.
		if len(m.Telemetry) > 0 && r.cfg.Metrics != nil {
			if snap, err := obs.DecodeSnapshot(m.Telemetry); err == nil {
				r.cfg.Metrics.MergeSnapshot(snap, "tier", "edge", "shard", sess.name)
			}
		}
		if m.Count == 0 {
			*reasons = append(*reasons, fmt.Sprintf("%s: empty partial (shard round failed)", sess.name))
			return
		}
		if err := r.fold(acc, m); err != nil {
			r.dropEdge(sess, err)
			*reasons = append(*reasons, fmt.Sprintf("%s: %v", sess.name, err))
			return
		}
		r.ob.notePartial()
		if r.cfg.Hooks.PartialFolded != nil {
			r.cfg.Hooks.PartialFolded(round, sess.name)
		}
	case *fl.ErrorMsg:
		delete(pending, sess)
		r.dropEdge(sess, fmt.Errorf("edge error: %s", m.Text))
		*reasons = append(*reasons, fmt.Sprintf("%s: %s", sess.name, m.Text))
	default:
		delete(pending, sess)
		r.dropEdge(sess, fmt.Errorf("unexpected %T mid-round", a.msg))
		*reasons = append(*reasons, fmt.Sprintf("%s: protocol violation", sess.name))
	}
}

// fold validates one shard partial against the session mode and model
// layout, then composes it into the accumulator. Validation precedes
// every mutation, so a rejected partial leaves the round consistent.
func (r *Root) fold(acc *roundAccum, m *fl.PartialUp) error {
	if !(m.Weight > 0) || math.IsInf(m.Weight, 0) {
		return fmt.Errorf("hier: partial with weight %v", m.Weight)
	}
	if r.cfg.SecAgg {
		if len(m.Sum) != 0 {
			return errors.New("hier: plain partial in a secure-aggregation session")
		}
		if int(m.ScaleBits) != r.cfg.SecAggScaleBits {
			return fmt.Errorf("hier: partial quantised at %d bits, session runs %d", m.ScaleBits, r.cfg.SecAggScaleBits)
		}
		if len(m.Levels) != len(r.state) {
			return fmt.Errorf("hier: partial covers %d tensors, model has %d", len(m.Levels), len(r.state))
		}
		for i, lv := range m.Levels {
			if lv == nil || len(lv.Levels) != r.state[i].Size() || lv.Size() != r.state[i].Size() {
				return fmt.Errorf("hier: partial levels for tensor %d do not match the model", i)
			}
		}
		if acc.levels == nil {
			acc.levels = make([][]uint64, len(r.state))
			for i, t := range r.state {
				acc.levels[i] = make([]uint64, t.Size())
			}
		}
		for i, lv := range m.Levels {
			dst := acc.levels[i]
			for j, l := range lv.Levels {
				dst[j] += l
			}
		}
	} else {
		if len(m.Levels) != 0 {
			return errors.New("hier: masked partial in a plain session")
		}
		if len(m.Sum) != len(r.state) {
			return fmt.Errorf("hier: partial covers %d tensors, model has %d", len(m.Sum), len(r.state))
		}
		for i, t := range m.Sum {
			if t == nil || !t.SameShape(r.state[i]) {
				return fmt.Errorf("hier: partial tensor %d does not match the model", i)
			}
		}
		if acc.sum == nil {
			acc.sum = make([]*tensor.Tensor, len(r.state))
			for i, t := range r.state {
				acc.sum[i] = tensor.New(t.Shape...)
			}
		}
		for i, t := range m.Sum {
			tensor.AddInPlace(acc.sum[i], t)
		}
	}
	acc.weight += m.Weight
	acc.count += int(m.Count)
	acc.shards++
	return nil
}
