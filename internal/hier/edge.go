package hier

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// EdgeConfig configures one edge aggregator.
type EdgeConfig struct {
	// Name identifies the edge to the root (shard identity; the root
	// turns away duplicates).
	Name string
	// MaxCodec caps the upstream codec negotiation with the root. The
	// zero value pins the exact f64 model broadcast.
	MaxCodec wire.Codec
	// Server configures the shard's round engine — sampling, deadlines,
	// quarantine, codec offered to the shard's own clients, protection
	// planner. Partials is forced on; Rounds is ignored (the root paces
	// rounds); SecAgg and SecAggScaleBits are adopted from the root's
	// enrolment challenge so the whole hierarchy quantises identically.
	Server fl.ServerConfig
}

// Edge is one shard aggregator: downstream it is a complete FL server
// for its clients (selection, sampling, deadlines, quarantine, secagg
// masking with a shard-scoped roster); upstream it behaves like a
// client of the root, adopting each round's global model and answering
// with its shard's partial aggregate.
type Edge struct {
	cfg   EdgeConfig
	state []*tensor.Tensor
	srv   *fl.Server

	// mu guards upstream, aborted, and the srv pointer itself: Run
	// registers the upstream connection and builds the shard engine,
	// Abort and Health may run on any goroutine.
	mu       sync.Mutex
	upstream fl.Conn
	aborted  bool

	// snap cuts per-round telemetry deltas from the shard engine's
	// registry for the upstream piggyback (lazily built; nil when the
	// shard runs without metrics).
	snap *obs.Snapshotter

	// Selected is the number of shard clients that passed selection.
	Selected int
	// Rounds counts shard rounds stepped under root control.
	Rounds int
	// RejectedReason is set when the root refused this edge.
	RejectedReason string
}

// NewEdge creates an edge aggregator owning the given model-shaped
// state (values are overwritten by the root's broadcast each round).
func NewEdge(state []*tensor.Tensor, cfg EdgeConfig) *Edge {
	if cfg.Name == "" {
		cfg.Name = "edge"
	}
	return &Edge{cfg: cfg, state: state}
}

// Trace returns the shard engine's per-round statistics.
func (e *Edge) Trace() []fl.RoundStats {
	if e.srv == nil {
		return nil
	}
	return e.srv.Trace()
}

// Abort tears a running edge down from outside Run, e.g. a signal
// handler: the upstream connection closes, Run's receive loop surfaces
// the transport error and unwinds through its own deferred shard-engine
// teardown on the Run goroutine. Safe to call from any goroutine, at
// any time — calling it before Run makes Run return immediately.
func (e *Edge) Abort() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.aborted = true
	if e.upstream != nil {
		_ = e.upstream.Close()
	}
}

// Health summarises the shard engine for an admin /healthz probe.
// Safe to call from any goroutine; before the engine exists it reports
// a zero Health.
func (e *Edge) Health() obs.Health {
	e.mu.Lock()
	srv := e.srv
	e.mu.Unlock()
	if srv == nil {
		return obs.Health{}
	}
	return srv.Health()
}

// Run participates in a hierarchical session: enrol with the root over
// upstream, select the shard's clients, then serve rounds — adopt each
// ShardDown model, run the shard round, forward the partial — until
// the root sends Done (forwarded to the shard's clients) or Reject.
func (e *Edge) Run(upstream fl.Conn, clients []fl.Conn) error {
	defer upstream.Close()
	e.mu.Lock()
	e.upstream = upstream
	aborted := e.aborted
	e.mu.Unlock()
	if aborted {
		_ = upstream.Close()
		return errors.New("hier: edge aborted")
	}
	msg, err := upstream.Recv()
	if err != nil {
		return fmt.Errorf("hier: awaiting enrolment challenge: %w", err)
	}
	ch, ok := msg.(*fl.Challenge)
	if !ok {
		if rej, isRej := msg.(*fl.Reject); isRej {
			e.RejectedReason = rej.Reason
			return nil
		}
		return fmt.Errorf("hier: expected Challenge, got %T", msg)
	}
	codec := ch.Codec
	if codec > e.cfg.MaxCodec {
		codec = e.cfg.MaxCodec
	}
	if err := upstream.Send(&fl.Attest{DeviceID: e.cfg.Name, Codec: codec, Cap: e.cfg.MaxCodec}); err != nil {
		return fmt.Errorf("hier: enrolling: %w", err)
	}
	upstream.SetCodec(codec)

	// The shard engine adopts the hierarchy-wide aggregation mode from
	// the enrolment challenge and always runs in partial mode.
	scfg := e.cfg.Server
	scfg.Partials = true
	scfg.SecAgg = ch.SecAgg
	if ch.SecAgg {
		scfg.SecAggScaleBits = int(ch.ScaleBits)
		scfg.MaskDegree = ch.MaskDegree
	}
	var n int
	if e.srv != nil && e.srv.Resumable() {
		// Journal-recovered shard (RecoverEdge): the engine already
		// holds the roster and round position. The root's announced
		// mode must match what the journal was validated against.
		if scfg.SecAgg != e.cfg.Server.SecAgg || (scfg.SecAgg && scfg.SecAggScaleBits != e.cfg.Server.SecAggScaleBits) {
			_ = upstream.Send(&fl.ErrorMsg{Text: "recovered shard mode does not match root challenge"})
			return fmt.Errorf("hier: recovered shard ran %v/%d, root announces %v/%d",
				e.cfg.Server.SecAgg, e.cfg.Server.SecAggScaleBits, scfg.SecAgg, scfg.SecAggScaleBits)
		}
		n, err = e.srv.Resume(clients)
	} else {
		srv := fl.NewServer(e.state, scfg)
		e.mu.Lock()
		e.srv = srv
		e.mu.Unlock()
		n, err = srv.Open(clients)
	}
	e.Selected = n
	if err != nil {
		// The shard cannot serve: tell the root and leave — the root
		// degrades to the remaining shards.
		_ = upstream.Send(&fl.ErrorMsg{Text: fmt.Sprintf("shard selection failed: %v", err)})
		return fmt.Errorf("hier: shard selection: %w", err)
	}
	defer e.srv.Abort()

	for {
		msg, err := upstream.Recv()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("hier: root closed mid-session: %w", err)
			}
			return fmt.Errorf("hier: receiving from root: %w", err)
		}
		switch m := msg.(type) {
		case *fl.Reject:
			e.RejectedReason = m.Reason
			return nil
		case *fl.Done:
			// Forward the fleet's final model to the shard's clients.
			return e.srv.Close(m.Final)
		case *fl.ShardDown:
			if err := e.serveRound(upstream, m); err != nil {
				return err
			}
		case *fl.ErrorMsg:
			return fmt.Errorf("hier: root error: %s", m.Text)
		default:
			return fmt.Errorf("hier: unexpected message %T from root", msg)
		}
	}
}

// serveRound adopts the round's global model, runs the shard round,
// and forwards the partial (or an empty partial when the shard round
// failed — the shard stays enrolled and may recover as clients come
// off probation).
func (e *Edge) serveRound(upstream fl.Conn, m *fl.ShardDown) error {
	// Adopt the root-minted trace before the shard round starts so every
	// span this round emits — here and on this shard's clients — carries
	// the fleet-wide correlation ID.
	e.srv.SetRoundTrace(m.Trace)
	if err := e.srv.SetState(m.Model); err != nil {
		_ = upstream.Send(&fl.ErrorMsg{Text: err.Error()})
		return fmt.Errorf("hier: adopting round %d model: %w", m.Round, err)
	}
	partial, err := e.srv.StepRound(m.Round)
	e.Rounds++
	if err != nil {
		if errors.Is(err, fl.ErrNotEnoughClients) || errors.Is(err, fl.ErrSecAggRecon) || errors.Is(err, secagg.ErrCohortTooSmall) {
			// A degraded shard round: report it and stay in the session.
			up := &fl.PartialUp{Round: m.Round}
			if st := e.lastStats(m.Round); st != nil {
				fillShardStats(up, *st)
			}
			// A degraded round still reports its telemetry: the failure's
			// accounting is exactly what the fleet view must not lose.
			up.Telemetry = e.telemetryDelta()
			if sendErr := upstream.Send(up); sendErr != nil {
				return fmt.Errorf("hier: reporting failed shard round %d: %w", m.Round, sendErr)
			}
			return nil
		}
		_ = upstream.Send(&fl.ErrorMsg{Text: err.Error()})
		return fmt.Errorf("hier: shard round %d: %w", m.Round, err)
	}
	up := &fl.PartialUp{
		Round:     partial.Round,
		Sum:       partial.Sum,
		Levels:    partial.Levels,
		ScaleBits: uint8(partial.ScaleBits),
		Weight:    partial.Weight,
		Count:     uint64(partial.Count),
	}
	fillShardStats(up, partial.Stats)
	up.Telemetry = e.telemetryDelta()
	if err := upstream.Send(up); err != nil {
		return fmt.Errorf("hier: forwarding round %d partial: %w", partial.Round, err)
	}
	return nil
}

// telemetryDelta cuts the shard registry's delta since the previous
// upstream send; nil when the shard runs without metrics or nothing
// changed. Taken after the round steps so the round's own observations
// ride the partial they describe.
func (e *Edge) telemetryDelta() []byte {
	if e.cfg.Server.Metrics == nil {
		return nil
	}
	if e.snap == nil {
		e.snap = obs.NewSnapshotter(e.cfg.Server.Metrics)
	}
	return e.snap.Delta()
}

// lastStats returns the shard engine's stats for the given round, if
// the round got far enough to record any.
func (e *Edge) lastStats(round int) *fl.RoundStats {
	trace := e.srv.Trace()
	for i := len(trace) - 1; i >= 0; i-- {
		if trace[i].Round == round {
			return &trace[i]
		}
	}
	return nil
}

// fillShardStats copies the shard round accounting onto the wire.
func fillShardStats(up *fl.PartialUp, st fl.RoundStats) {
	up.Sampled = uint64(st.Sampled)
	up.Dropped = uint64(st.Dropped)
	up.Quarantined = uint64(st.Quarantined)
	up.LateDiscarded = uint64(st.LateDiscarded)
	up.Reconciled = uint64(st.Reconciled)
	up.Probation = uint64(st.Probation)
}

// ShardState returns the edge's current model state (the last adopted
// global model); exposed for tests and tooling.
func (e *Edge) ShardState() []*tensor.Tensor { return e.state }
