package hier

import (
	"errors"
	"fmt"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/tensor"
)

// ErrRootJournalMismatch rejects a root journal whose session
// fingerprint disagrees with the configuration handed to RecoverRoot.
var ErrRootJournalMismatch = errors.New("hier: journal does not match root config")

// RecoverRoot rebuilds a crashed hierarchy root from its journal: the
// committed rounds' fleet means replay onto the initial model (state
// must hold the values the crashed root was constructed with), the
// trace is restored, and Run resumes at the first uncommitted round.
// Edges re-enrol through Run as usual — their own shard journals carry
// the per-client standing.
func RecoverRoot(path string, state []*tensor.Tensor, cfg RootConfig) (*Root, error) {
	recs, err := journal.Replay(path)
	if err != nil {
		return nil, err
	}
	st := journal.Commit(recs)
	if st.Session == nil {
		return nil, fmt.Errorf("%w: journal has no session record", ErrRootJournalMismatch)
	}
	r := NewRoot(state, cfg) // applies config defaults first

	var flags uint64
	scale := 0
	if r.cfg.SecAgg {
		flags |= journal.FlagSecAgg
		scale = r.cfg.SecAggScaleBits
	}
	switch {
	case st.Session.Flags != flags:
		return nil, fmt.Errorf("%w: journal mode flags %#x, config %#x", ErrRootJournalMismatch, st.Session.Flags, flags)
	case st.Session.Rounds != r.cfg.Rounds:
		return nil, fmt.Errorf("%w: journal plans %d rounds, config %d", ErrRootJournalMismatch, st.Session.Rounds, r.cfg.Rounds)
	case r.cfg.SecAgg && st.Session.Scale != scale:
		return nil, fmt.Errorf("%w: journal scale bits %d, config %d", ErrRootJournalMismatch, st.Session.Scale, scale)
	}

	for _, c := range st.Closes {
		r.trace = append(r.trace, rootStatsFromJournal(c.Stats))
		if !c.OK || c.Update == nil {
			continue
		}
		if len(c.Update) != len(r.state) {
			return nil, fmt.Errorf("%w: round %d update has %d tensors, model has %d", ErrRootJournalMismatch, c.Round, len(c.Update), len(r.state))
		}
		for i, u := range c.Update {
			if !u.SameShape(r.state[i]) {
				return nil, fmt.Errorf("%w: round %d update tensor %d shape %v, model %v", ErrRootJournalMismatch, c.Round, i, u.Shape, r.state[i].Shape)
			}
		}
		fl.ApplyUpdate(r.state, c.Update, 1.0)
	}
	r.nextRound = st.NextRound
	r.recovered = true
	return r, nil
}

// NextRound returns the first round the root will run: 0 fresh, one
// past the last committed round after recovery.
func (r *Root) NextRound() int { return r.nextRound }

func rootStatsFromJournal(st journal.Stats) fl.RoundStats {
	return fl.RoundStats{
		Round:         st.Round,
		Sampled:       st.Sampled,
		Responded:     st.Responded,
		Dropped:       st.Dropped,
		Quarantined:   st.Quarantined,
		Probation:     st.Probation,
		LateDiscarded: st.LateDiscarded,
		Duplicates:    st.Duplicates,
		Reconciled:    st.Reconciled,
		WeightTotal:   st.WeightTotal,
		UpdateNorm:    st.UpdateNorm,
		Shards:        st.Shards,
	}
}

// RecoverEdge rebuilds a crashed edge aggregator from its shard
// journal (EdgeConfig.Server.Journal written by a previous run). The
// shard server comes back with its roster, quarantine/probation
// standing, and round position intact; Run then resumes the shard
// session — matching rejoining clients against the journaled roster
// instead of re-attesting — and re-enrols with the root, which paces
// it from the next uncommitted round. cfg.Server must carry the same
// mode flags (SecAgg, scale bits, seed) the crashed edge ran with;
// the journal fingerprint is validated against it.
func RecoverEdge(path string, state []*tensor.Tensor, cfg EdgeConfig) (*Edge, error) {
	scfg := cfg.Server
	scfg.Partials = true
	srv, err := fl.Recover(path, state, scfg)
	if err != nil {
		return nil, err
	}
	e := NewEdge(state, cfg)
	e.srv = srv
	return e, nil
}
