package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/metrics"
)

// xorDataset is non-linearly separable: trees must beat logistic there.
func xorDataset(rng *rand.Rand, n int) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		a, b := rng.Float64(), rng.Float64()
		x[i] = []float64{a, b, rng.Float64() * 0.01}
		y[i] = (a > 0.5) != (b > 0.5)
	}
	return x, y
}

// linearDataset is separable by a hyperplane.
func linearDataset(rng *rand.Rand, n int) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x[i] = []float64{a, b}
		y[i] = a+2*b > 0
	}
	return x, y
}

func auc(m interface{ PredictProb([]float64) float64 }, x [][]float64, y []bool) float64 {
	scores := make([]float64, len(x))
	for i, row := range x {
		scores[i] = m.PredictProb(row)
	}
	return metrics.AUC(y, scores)
}

func TestTreeLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := xorDataset(rng, 400)
	tree := FitTree(x, y, TreeConfig{MaxDepth: 8})
	tx, ty := xorDataset(rng, 200)
	if got := auc(tree, tx, ty); got < 0.9 {
		t.Fatalf("tree XOR AUC = %v, want ≥0.9", got)
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []bool{true, true, true, true}
	tree := FitTree(x, y, TreeConfig{})
	if !tree.root.isLeaf || tree.root.leafProb != 1 {
		t.Fatal("pure node must become a leaf with prob 1")
	}
}

func TestForestBeatsSingleTreeOnNoisyData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Noisy linear task with useless extra features.
	gen := func(n int) ([][]float64, []bool) {
		x := make([][]float64, n)
		y := make([]bool, n)
		for i := range x {
			row := make([]float64, 10)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			x[i] = row
			y[i] = row[0]+row[1]+rng.NormFloat64()*0.8 > 0
		}
		return x, y
	}
	trainX, trainY := gen(300)
	testX, testY := gen(300)
	tree := FitTree(trainX, trainY, TreeConfig{MaxDepth: 10})
	forest := FitForest(trainX, trainY, ForestConfig{Trees: 40, Seed: 3})
	if at, af := auc(tree, testX, testY), auc(forest, testX, testY); af <= at-0.02 {
		t.Fatalf("forest AUC %v should not trail tree AUC %v", af, at)
	}
	if got := auc(forest, testX, testY); got < 0.75 {
		t.Fatalf("forest AUC = %v, want ≥0.75", got)
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := xorDataset(rng, 100)
	f1 := FitForest(x, y, ForestConfig{Trees: 5, Seed: 7})
	f2 := FitForest(x, y, ForestConfig{Trees: 5, Seed: 7})
	probe := []float64{0.3, 0.7, 0}
	if f1.PredictProb(probe) != f2.PredictProb(probe) {
		t.Fatal("same seed must give identical forests")
	}
}

func TestLogisticLearnsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := linearDataset(rng, 400)
	m := FitLogistic(x, y, LogisticConfig{Epochs: 300, LR: 0.5})
	tx, ty := linearDataset(rng, 200)
	if got := auc(m, tx, ty); got < 0.95 {
		t.Fatalf("logistic AUC = %v, want ≥0.95", got)
	}
}

func TestLogisticProbRange(t *testing.T) {
	m := &Logistic{W: []float64{100}, B: 0}
	if p := m.PredictProb([]float64{10}); p <= 0.99 || p > 1 {
		t.Fatalf("prob = %v", p)
	}
	if p := m.PredictProb([]float64{-10}); p >= 0.01 || p < 0 {
		t.Fatalf("prob = %v", p)
	}
}

func TestMeanImpute(t *testing.T) {
	nan := math.NaN()
	x := [][]float64{
		{1, nan},
		{3, 4},
		{nan, 8},
	}
	means := MeanImpute(x)
	if means[0] != 2 || means[1] != 6 {
		t.Fatalf("means = %v", means)
	}
	if x[0][1] != 6 || x[2][0] != 2 {
		t.Fatalf("imputed = %v", x)
	}
	// Apply the same means to a test row.
	test := [][]float64{{nan, 1}}
	ApplyImpute(test, means)
	if test[0][0] != 2 {
		t.Fatalf("ApplyImpute = %v", test)
	}
}

func TestMeanImputeAllMissingColumn(t *testing.T) {
	nan := math.NaN()
	x := [][]float64{{nan}, {nan}}
	means := MeanImpute(x)
	if means[0] != 0 || x[0][0] != 0 {
		t.Fatal("all-missing column must impute to 0")
	}
	if MeanImpute(nil) != nil {
		t.Fatal("empty imputation must be nil")
	}
}

// Deleting the informative feature (NaN + imputation) must hurt the
// classifier — this is the mechanism behind the paper's protection
// simulation methodology (§8.1).
func TestImputationDegradesClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gen := func(n int, wipe bool) ([][]float64, []bool) {
		x := make([][]float64, n)
		y := make([]bool, n)
		for i := range x {
			a := rng.NormFloat64()
			noise := rng.NormFloat64()
			y[i] = a > 0
			if wipe {
				x[i] = []float64{math.NaN(), noise}
			} else {
				x[i] = []float64{a, noise}
			}
		}
		return x, y
	}
	fullX, fullY := gen(300, false)
	m1 := FitLogistic(fullX, fullY, LogisticConfig{})
	aucFull := auc(m1, fullX, fullY)

	wipedX, wipedY := gen(300, true)
	MeanImpute(wipedX)
	m2 := FitLogistic(wipedX, wipedY, LogisticConfig{})
	aucWiped := auc(m2, wipedX, wipedY)

	if aucFull < 0.9 {
		t.Fatalf("full-feature AUC = %v", aucFull)
	}
	if aucWiped > 0.65 {
		t.Fatalf("wiped-feature AUC = %v, want ≈0.5", aucWiped)
	}
}
