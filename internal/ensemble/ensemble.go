// Package ensemble provides the attack-model classifiers of the paper's
// evaluation: a CART-style decision tree, a random forest (the paper's
// DPIA attack model) and L2-regularised logistic regression (used for
// MIA). All operate on dense float64 feature matrices; missing values
// are expected to be mean-imputed by the caller, as the paper does for
// protected gradient columns.
package ensemble

import (
	"math"
	"math/rand"
	"sort"
)

// TreeConfig bounds decision-tree growth.
type TreeConfig struct {
	// MaxDepth limits tree depth (0 = 12).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (0 = 2).
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split
	// (0 = 1.0; random forests use sqrt(d)/d).
	FeatureFrac float64
	// Rng drives feature subsampling; nil disables subsampling.
	Rng *rand.Rand
}

type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	leafProb float64
	isLeaf   bool
}

// Tree is a binary classification decision tree.
type Tree struct {
	root *treeNode
}

// FitTree grows a tree on features X (rows = samples) and binary labels.
func FitTree(x [][]float64, y []bool, cfg TreeConfig) *Tree {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 2
	}
	if cfg.FeatureFrac == 0 {
		cfg.FeatureFrac = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{}
	t.root = grow(x, y, idx, cfg, 0)
	return t
}

func grow(x [][]float64, y []bool, idx []int, cfg TreeConfig, depth int) *treeNode {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pos == 0 || pos == len(idx) {
		return &treeNode{isLeaf: true, leafProb: prob}
	}

	nFeat := len(x[0])
	feats := featureSubset(nFeat, cfg)
	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	parentImp := gini(prob)
	for _, f := range feats {
		thresh, gain := bestSplit(x, y, idx, f, parentImp, cfg.MinLeaf)
		if gain > bestGain {
			bestFeat, bestThresh, bestGain = f, thresh, gain
		}
	}
	if bestFeat < 0 {
		return &treeNode{isLeaf: true, leafProb: prob}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
		return &treeNode{isLeaf: true, leafProb: prob}
	}
	return &treeNode{
		feature: bestFeat,
		thresh:  bestThresh,
		left:    grow(x, y, leftIdx, cfg, depth+1),
		right:   grow(x, y, rightIdx, cfg, depth+1),
	}
}

func featureSubset(nFeat int, cfg TreeConfig) []int {
	k := int(math.Ceil(cfg.FeatureFrac * float64(nFeat)))
	if k >= nFeat || cfg.Rng == nil {
		out := make([]int, nFeat)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return cfg.Rng.Perm(nFeat)[:k]
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

// bestSplit finds the threshold maximising Gini gain for one feature.
func bestSplit(x [][]float64, y []bool, idx []int, f int, parentImp float64, minLeaf int) (float64, float64) {
	type pv struct {
		v   float64
		pos bool
	}
	vals := make([]pv, len(idx))
	total := len(idx)
	totalPos := 0
	for k, i := range idx {
		vals[k] = pv{v: x[i][f], pos: y[i]}
		if y[i] {
			totalPos++
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })

	bestThresh, bestGain := 0.0, 0.0
	leftPos := 0
	for k := 0; k < total-1; k++ {
		if vals[k].pos {
			leftPos++
		}
		if vals[k].v == vals[k+1].v {
			continue
		}
		nL := k + 1
		nR := total - nL
		if nL < minLeaf || nR < minLeaf {
			continue
		}
		pL := float64(leftPos) / float64(nL)
		pR := float64(totalPos-leftPos) / float64(nR)
		imp := (float64(nL)*gini(pL) + float64(nR)*gini(pR)) / float64(total)
		if gain := parentImp - imp; gain > bestGain {
			bestGain = gain
			bestThresh = (vals[k].v + vals[k+1].v) / 2
		}
	}
	return bestThresh, bestGain
}

// PredictProb returns the tree's positive-class probability for a sample.
func (t *Tree) PredictProb(sample []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if sample[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.leafProb
}

// ForestConfig configures a random forest.
type ForestConfig struct {
	// Trees is the ensemble size (0 = 50).
	Trees int
	// Tree bounds each member; FeatureFrac 0 defaults to sqrt(d)/d.
	Tree TreeConfig
	// Seed drives bootstrap sampling and feature subsets.
	Seed int64
}

// Forest is a bagged ensemble of decision trees — the attack model the
// paper uses for DPIA.
type Forest struct {
	trees []*Tree
}

// FitForest trains a random forest with bootstrap sampling.
func FitForest(x [][]float64, y []bool, cfg ForestConfig) *Forest {
	if cfg.Trees == 0 {
		cfg.Trees = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Tree.FeatureFrac == 0 {
		d := float64(len(x[0]))
		cfg.Tree.FeatureFrac = math.Sqrt(d) / d
	}
	f := &Forest{trees: make([]*Tree, cfg.Trees)}
	for t := range f.trees {
		bx := make([][]float64, len(x))
		by := make([]bool, len(y))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i] = x[j]
			by[i] = y[j]
		}
		tc := cfg.Tree
		tc.Rng = rand.New(rand.NewSource(rng.Int63()))
		f.trees[t] = FitTree(bx, by, tc)
	}
	return f
}

// PredictProb averages member probabilities.
func (f *Forest) PredictProb(sample []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.PredictProb(sample)
	}
	return s / float64(len(f.trees))
}

// Logistic is an L2-regularised logistic-regression classifier.
type Logistic struct {
	W []float64
	B float64
}

// LogisticConfig configures training.
type LogisticConfig struct {
	// Epochs of full-batch gradient descent (0 = 200).
	Epochs int
	// LR is the learning rate (0 = 0.1).
	LR float64
	// L2 is the ridge penalty (0 = 1e-3).
	L2 float64
}

// FitLogistic trains on features X and binary labels.
func FitLogistic(x [][]float64, y []bool, cfg LogisticConfig) *Logistic {
	if cfg.Epochs == 0 {
		cfg.Epochs = 200
	}
	if cfg.LR == 0 {
		cfg.LR = 0.1
	}
	if cfg.L2 == 0 {
		cfg.L2 = 1e-3
	}
	d := len(x[0])
	m := &Logistic{W: make([]float64, d)}
	n := float64(len(x))
	for e := 0; e < cfg.Epochs; e++ {
		gw := make([]float64, d)
		gb := 0.0
		for i, row := range x {
			p := m.PredictProb(row)
			t := 0.0
			if y[i] {
				t = 1
			}
			diff := p - t
			for j, v := range row {
				gw[j] += diff * v
			}
			gb += diff
		}
		for j := range m.W {
			m.W[j] -= cfg.LR * (gw[j]/n + cfg.L2*m.W[j])
		}
		m.B -= cfg.LR * gb / n
	}
	return m
}

// PredictProb returns the positive-class probability.
func (m *Logistic) PredictProb(sample []float64) float64 {
	z := m.B
	for j, v := range sample {
		z += m.W[j] * v
	}
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// MeanImpute replaces NaN entries column-wise with the column mean over
// non-missing training values — the paper's strategy for gradient columns
// deleted by TEE protection. It returns the means used (for applying the
// same imputation to validation/test sets via ApplyImpute).
func MeanImpute(x [][]float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	d := len(x[0])
	means := make([]float64, d)
	for j := 0; j < d; j++ {
		sum, cnt := 0.0, 0
		for _, row := range x {
			if !math.IsNaN(row[j]) {
				sum += row[j]
				cnt++
			}
		}
		if cnt > 0 {
			means[j] = sum / float64(cnt)
		}
	}
	ApplyImpute(x, means)
	return means
}

// ApplyImpute replaces NaNs with the provided column means in place.
func ApplyImpute(x [][]float64, means []float64) {
	for _, row := range x {
		for j, v := range row {
			if math.IsNaN(v) {
				row[j] = means[j]
			}
		}
	}
}
