package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutputSizes(t *testing.T) {
	tests := []struct {
		name               string
		h, w, k, stride, p int
		wantH, wantW       int
	}{
		{"lenet-l1", 32, 32, 5, 2, 2, 16, 16},
		{"lenet-l2", 16, 16, 5, 2, 2, 8, 8},
		{"lenet-l3", 8, 8, 5, 1, 2, 8, 8},
		{"alexnet-l1", 32, 32, 3, 2, 1, 16, 16},
		{"same-3x3", 8, 8, 3, 1, 1, 8, 8},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := NewConvGeom(1, 1, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.p)
			if g.OutH != tc.wantH || g.OutW != tc.wantW {
				t.Fatalf("out = %dx%d, want %dx%d", g.OutH, g.OutW, tc.wantH, tc.wantW)
			}
		})
	}
}

func TestConvGeomPanicsOnEmptyOutput(t *testing.T) {
	defer expectPanic(t, "empty output")
	NewConvGeom(1, 1, 2, 2, 5, 5, 1, 0)
}

// A 1x1 kernel, stride 1, no padding im2col is just a reshape.
func TestIm2ColIdentityKernel(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	g := NewConvGeom(1, 1, 2, 2, 1, 1, 1, 0)
	cols := Im2Col(x, g)
	if cols.Shape[0] != 4 || cols.Shape[1] != 1 {
		t.Fatalf("cols shape = %v", cols.Shape)
	}
	for i, v := range cols.Data {
		if v != x.Data[i] {
			t.Fatalf("cols[%d] = %v, want %v", i, v, x.Data[i])
		}
	}
}

// Manual 2x2 convolution on a 3x3 input checked against hand computation.
func TestIm2ColMatMulConvolution(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	g := NewConvGeom(1, 1, 3, 3, 2, 2, 1, 0)
	cols := Im2Col(x, g) // [4, 4]
	w := FromSlice([]float64{1, 0, 0, 1}, 4, 1)
	y := MatMul(cols, w) // x[i,j] + x[i+1,j+1]
	want := []float64{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("conv out[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := Full(1, 1, 1, 2, 2)
	g := NewConvGeom(1, 1, 2, 2, 3, 3, 1, 1)
	cols := Im2Col(x, g)
	// Top-left output window covers padding: its first column entry must be 0.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padded corner = %v, want 0", cols.At(0, 0))
	}
	// Center entries must be 1.
	if cols.At(0, 4) != 1 {
		t.Fatalf("center = %v, want 1", cols.At(0, 4))
	}
}

// Property: Col2Im is the exact adjoint of Im2Col.
func TestIm2ColCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewConvGeom(2, 3, 6, 5, 3, 2, 2, 1)
		x := Randn(r, 1, g.N, g.C, g.H, g.W)
		rows, cols := g.ColShape()
		c := Randn(r, 1, rows, cols)
		lhs := Dot(Im2Col(x, g), c)
		rhs := Dot(x, Col2Im(c, g))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImShapeCheck(t *testing.T) {
	defer expectPanic(t, "bad col shape")
	Col2Im(New(3, 3), NewConvGeom(1, 1, 4, 4, 2, 2, 1, 0))
}

func TestMaxPool2DKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 9, 0,
	}, 1, 1, 4, 4)
	y, arg := MaxPool2D(x, 2, 2)
	want := []float64{4, 8, -1, 9}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("pool out[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
	// Verify argmax routes back to the original positions.
	for i := range want {
		if x.Data[arg[i]] != want[i] {
			t.Fatalf("argmax[%d] points to %v, want %v", i, x.Data[arg[i]], want[i])
		}
	}
}

func TestMaxUnpool2DScatter(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	y, arg := MaxPool2D(x, 2, 2)
	g := Full(5, y.Shape...)
	back := MaxUnpool2D(g, arg, x.Shape)
	// Only the max position (value 4, last slot) receives gradient.
	want := []float64{0, 0, 0, 5}
	for i, v := range want {
		if back.Data[i] != v {
			t.Fatalf("unpool[%d] = %v, want %v", i, back.Data[i], v)
		}
	}
}

// Property: pooling with k=1, stride=1 is the identity.
func TestMaxPoolIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := Randn(r, 1, 1, 2, 3, 3)
		y, _ := MaxPool2D(x, 1, 1)
		return y.EqualApprox(x.Reshape(y.Shape...), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: max-pool output dominates every unpooled gradient position's
// original value... more precisely, each pooled value is >= mean of window.
func TestMaxPoolDominanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := Randn(r, 1, 1, 1, 4, 4)
		y, arg := MaxPool2D(x, 2, 2)
		for i, v := range y.Data {
			if x.Data[arg[i]] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
