package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// over an input of shape [N, C, H, W].
type ConvGeom struct {
	N, C, H, W     int // input batch, channels, height, width
	KH, KW         int // kernel height/width
	Stride, Pad    int
	OutH, OutW     int // derived output spatial size
	outputsPerItem int // OutH*OutW
}

// NewConvGeom computes output dimensions for the given convolution
// parameters, matching the usual floor arithmetic:
// out = (in + 2*pad - k)/stride + 1.
func NewConvGeom(n, c, h, w, kh, kw, stride, pad int) ConvGeom {
	if stride <= 0 {
		panic("tensor: stride must be positive")
	}
	if kh <= 0 || kw <= 0 {
		panic("tensor: kernel dims must be positive")
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry yields empty output (in %dx%d kernel %dx%d stride %d pad %d)", h, w, kh, kw, stride, pad))
	}
	return ConvGeom{N: n, C: c, H: h, W: w, KH: kh, KW: kw, Stride: stride, Pad: pad, OutH: oh, OutW: ow, outputsPerItem: oh * ow}
}

// ColShape returns the shape of the im2col matrix: [N*OutH*OutW, C*KH*KW].
func (g ConvGeom) ColShape() (rows, cols int) {
	return g.N * g.OutH * g.OutW, g.C * g.KH * g.KW
}

// Im2Col unfolds x of shape [N,C,H,W] into a matrix [N*OutH*OutW, C*KH*KW]
// so that convolution with F filters becomes a matmul with a [C*KH*KW, F]
// weight matrix. Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if len(x.Shape) != 4 || x.Shape[0] != g.N || x.Shape[1] != g.C || x.Shape[2] != g.H || x.Shape[3] != g.W {
		panic(fmt.Sprintf("tensor: Im2Col input shape %v does not match geometry %+v", x.Shape, g))
	}
	rows, cols := g.ColShape()
	out := New(rows, cols)
	hw := g.H * g.W
	chw := g.C * hw
	row := 0
	for n := 0; n < g.N; n++ {
		base := n * chw
		for oy := 0; oy < g.OutH; oy++ {
			iy0 := oy*g.Stride - g.Pad
			for ox := 0; ox < g.OutW; ox++ {
				ix0 := ox*g.Stride - g.Pad
				dst := out.Data[row*cols : (row+1)*cols]
				col := 0
				for c := 0; c < g.C; c++ {
					cbase := base + c*hw
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
								dst[col] = x.Data[cbase+iy*g.W+ix]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatter-adds a column matrix of shape
// [N*OutH*OutW, C*KH*KW] back into an input-shaped tensor [N,C,H,W].
// For every x and col matrix c: <Im2Col(x), c> == <x, Col2Im(c)>.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	rows, ncols := g.ColShape()
	if len(cols.Shape) != 2 || cols.Shape[0] != rows || cols.Shape[1] != ncols {
		panic(fmt.Sprintf("tensor: Col2Im input shape %v does not match geometry (want [%d,%d])", cols.Shape, rows, ncols))
	}
	out := New(g.N, g.C, g.H, g.W)
	hw := g.H * g.W
	chw := g.C * hw
	row := 0
	for n := 0; n < g.N; n++ {
		base := n * chw
		for oy := 0; oy < g.OutH; oy++ {
			iy0 := oy*g.Stride - g.Pad
			for ox := 0; ox < g.OutW; ox++ {
				ix0 := ox*g.Stride - g.Pad
				src := cols.Data[row*ncols : (row+1)*ncols]
				col := 0
				for c := 0; c < g.C; c++ {
					cbase := base + c*hw
					for ky := 0; ky < g.KH; ky++ {
						iy := iy0 + ky
						for kx := 0; kx < g.KW; kx++ {
							ix := ix0 + kx
							if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
								out.Data[cbase+iy*g.W+ix] += src[col]
							}
							col++
						}
					}
				}
				row++
			}
		}
	}
	return out
}

// MaxPool2D applies k×k max pooling with the given stride to x [N,C,H,W].
// It returns the pooled tensor [N,C,OutH,OutW] and, for each output
// element, the flat index into x.Data of the selected maximum (used by the
// backward pass to route gradients).
func MaxPool2D(x *Tensor, k, stride int) (*Tensor, []int) {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("tensor: MaxPool2D requires [N,C,H,W], got %v", x.Shape))
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g := NewConvGeom(n, c, h, w, k, k, stride, 0)
	out := New(n, c, g.OutH, g.OutW)
	arg := make([]int, out.Size())
	hw := h * w
	oi := 0
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			cbase := (ni*c + ci) * hw
			for oy := 0; oy < g.OutH; oy++ {
				for ox := 0; ox < g.OutW; ox++ {
					iy0, ix0 := oy*stride, ox*stride
					bestIdx := cbase + iy0*w + ix0
					best := x.Data[bestIdx]
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							idx := cbase + (iy0+ky)*w + (ix0 + kx)
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					arg[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out, arg
}

// MaxUnpool2D scatters grad (shaped like a MaxPool2D output) back to the
// input shape using the argmax indices captured in the forward pass.
func MaxUnpool2D(grad *Tensor, arg []int, inShape []int) *Tensor {
	if grad.Size() != len(arg) {
		panic(fmt.Sprintf("tensor: MaxUnpool2D grad size %d does not match %d argmax entries", grad.Size(), len(arg)))
	}
	out := New(inShape...)
	for i, v := range grad.Data {
		out.Data[arg[i]] += v
	}
	return out
}
