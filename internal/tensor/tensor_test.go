package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSliceBadLength(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major: the last element should be the final data slot.
	if x.Data[23] != 7.5 {
		t.Fatalf("row-major layout broken: Data[23] = %v", x.Data[23])
	}
}

func TestAtOutOfRange(t *testing.T) {
	defer expectPanic(t, "out of range")
	New(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 10
	if x.Data[0] != 10 {
		t.Fatal("Reshape must share data")
	}
	if y.Shape[0] != 3 || y.Shape[1] != 2 {
		t.Fatalf("Reshape shape = %v", y.Shape)
	}
}

func TestReshapeBadCount(t *testing.T) {
	defer expectPanic(t, "element count mismatch")
	New(2, 3).Reshape(4, 2)
}

func TestFullAndFill(t *testing.T) {
	x := Full(3.5, 2, 2)
	for _, v := range x.Data {
		if v != 3.5 {
			t.Fatalf("Full element = %v", v)
		}
	}
	x.Fill(-1)
	if SumAll(x) != -4 {
		t.Fatalf("Fill sum = %v, want -4", SumAll(x))
	}
}

func TestRandnStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 2.0, 10000)
	mean := SumAll(x) / float64(x.Size())
	if math.Abs(mean) > 0.1 {
		t.Fatalf("Randn mean = %v, want ≈0", mean)
	}
	varSum := 0.0
	for _, v := range x.Data {
		varSum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varSum / float64(x.Size()))
	if math.Abs(sd-2.0) > 0.1 {
		t.Fatalf("Randn stddev = %v, want ≈2", sd)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Uniform(rng, -1, 1, 1000)
	for _, v := range x.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Uniform value %v out of [-1,1)", v)
		}
	}
}

func TestEqualApprox(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.0001, 2.0001}, 2)
	if !a.EqualApprox(b, 1e-3) {
		t.Fatal("EqualApprox should accept within tol")
	}
	if a.EqualApprox(b, 1e-6) {
		t.Fatal("EqualApprox should reject outside tol")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if a.EqualApprox(c, 1) {
		t.Fatal("EqualApprox must compare shapes")
	}
}

func TestMaxAbs(t *testing.T) {
	x := FromSlice([]float64{-3, 2, 1}, 3)
	if got := x.MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 {
		t.Fatal("String should not be empty")
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
