package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float64) float64 { return x + y }) }

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float64) float64 { return x - y }) }

// Mul returns the Hadamard (elementwise) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float64) float64 { return x * y }) }

func zip(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i], b.Data[i])
	}
	return out
}

// Scale returns a * s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddInPlace accumulates b into a (a += b). Shapes must match.
func AddInPlace(a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AxPy computes a += alpha*b. Shapes must match.
func AxPy(alpha float64, b, a *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
}

// Apply returns a new tensor with f applied to every element.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor { return Apply(a, math.Exp) }

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor { return Apply(a, math.Log) }

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a viewed as a flat vector.
func Norm2(a *Tensor) float64 { return math.Sqrt(Dot(a, a)) }

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: SqDist length mismatch %d vs %d", len(a.Data), len(b.Data)))
	}
	s := 0.0
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return s
}

// SumAll returns the sum of all elements.
func SumAll(a *Tensor) float64 {
	s := 0.0
	for _, v := range a.Data {
		s += v
	}
	return s
}

// mat2 asserts that a is 2-D and returns its rows and columns.
func mat2(a *Tensor, op string) (rows, cols int) {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires a 2-D tensor, got shape %v", op, a.Shape))
	}
	return a.Shape[0], a.Shape[1]
}

// MatMul returns the matrix product a·b for 2-D tensors [m,k]·[k,n] → [m,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := mat2(a, "MatMul")
	k2, n := mat2(b, "MatMul")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// ikj loop order for cache-friendly access of b and out.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := mat2(a, "Transpose")
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// RowSum reduces a 2-D tensor [r,c] over columns producing [r,1].
func RowSum(a *Tensor) *Tensor {
	r, c := mat2(a, "RowSum")
	out := New(r, 1)
	for i := 0; i < r; i++ {
		s := 0.0
		row := a.Data[i*c : (i+1)*c]
		for _, v := range row {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// ColSum reduces a 2-D tensor [r,c] over rows producing [1,c].
func ColSum(a *Tensor) *Tensor {
	r, c := mat2(a, "ColSum")
	out := New(1, c)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// RowMax reduces a 2-D tensor [r,c] over columns producing the per-row
// maximum as [r,1].
func RowMax(a *Tensor) *Tensor {
	r, c := mat2(a, "RowMax")
	if c == 0 {
		panic("tensor: RowMax of zero-column matrix")
	}
	out := New(r, 1)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		out.Data[i] = m
	}
	return out
}

// BroadcastCol expands a column vector [r,1] to [r,c] by repetition.
func BroadcastCol(v *Tensor, c int) *Tensor {
	r, one := mat2(v, "BroadcastCol")
	if one != 1 {
		panic(fmt.Sprintf("tensor: BroadcastCol requires shape [r,1], got %v", v.Shape))
	}
	out := New(r, c)
	for i := 0; i < r; i++ {
		val := v.Data[i]
		row := out.Data[i*c : (i+1)*c]
		for j := range row {
			row[j] = val
		}
	}
	return out
}

// BroadcastRow expands a row vector [1,c] to [r,c] by repetition.
func BroadcastRow(v *Tensor, r int) *Tensor {
	one, c := mat2(v, "BroadcastRow")
	if one != 1 {
		panic(fmt.Sprintf("tensor: BroadcastRow requires shape [1,c], got %v", v.Shape))
	}
	out := New(r, c)
	for i := 0; i < r; i++ {
		copy(out.Data[i*c:(i+1)*c], v.Data)
	}
	return out
}

// ArgMaxRows returns, for a 2-D tensor [r,c], the column index of the
// maximum element in each row.
func ArgMaxRows(a *Tensor) []int {
	r, c := mat2(a, "ArgMaxRows")
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
