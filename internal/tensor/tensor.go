// Package tensor implements the dense numeric kernel underlying the
// GradSec reproduction: row-major float64 tensors with the linear-algebra
// and convolution primitives (im2col/col2im, max-pooling) needed by the
// neural-network framework and the inference attacks.
//
// Shape errors panic: they are programmer errors, not runtime conditions,
// mirroring the convention of numeric kernels such as gonum.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major float64 tensor. The zero value is an empty
// tensor; use New or FromSlice to create usable instances.
type Tensor struct {
	// Shape holds the extent of each dimension.
	Shape []int
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (without copying) in a tensor of the given shape.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// Uniform returns a tensor with elements drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong arity for shape %v", idx, t.Shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String renders a compact description, truncating large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	limit := len(t.Data)
	if limit > 8 {
		limit = 8
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if len(t.Data) > limit {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}

// EqualApprox reports whether t and u have the same shape and all elements
// within tol of each other.
func (t *Tensor) EqualApprox(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if math.Abs(v-u.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
