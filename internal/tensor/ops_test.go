package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElementwise(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{4, 3, 2, 1}, 2, 2)
	tests := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Add", Add(a, b), []float64{5, 5, 5, 5}},
		{"Sub", Sub(a, b), []float64{-3, -1, 1, 3}},
		{"Mul", Mul(a, b), []float64{4, 6, 6, 4}},
		{"Scale", Scale(a, 2), []float64{2, 4, 6, 8}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.got.EqualApprox(FromSlice(tc.want, 2, 2), 1e-12) {
				t.Fatalf("got %v, want %v", tc.got.Data, tc.want)
			}
		})
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	Add(New(2, 2), New(4))
}

func TestAddInPlaceAndAxPy(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	AddInPlace(a, FromSlice([]float64{2, 3}, 2))
	if a.Data[0] != 3 || a.Data[1] != 4 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	AxPy(0.5, FromSlice([]float64{2, 2}, 2), a)
	if a.Data[0] != 4 || a.Data[1] != 5 {
		t.Fatalf("AxPy = %v", a.Data)
	}
}

func TestApplyExpLog(t *testing.T) {
	a := FromSlice([]float64{0, 1}, 2)
	e := Exp(a)
	if math.Abs(e.Data[1]-math.E) > 1e-12 {
		t.Fatalf("Exp = %v", e.Data)
	}
	l := Log(e)
	if !l.EqualApprox(a, 1e-12) {
		t.Fatalf("Log(Exp(x)) = %v, want %v", l.Data, a.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).EqualApprox(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !MatMul(id, a).EqualApprox(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

// Property: matmul is associative (within floating tolerance).
func TestMatMulAssociativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Randn(r, 1, 3, 4)
		b := Randn(r, 1, 4, 5)
		c := Randn(r, 1, 5, 2)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.EqualApprox(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulInnerMismatch(t *testing.T) {
	defer expectPanic(t, "inner dim")
	MatMul(New(2, 3), New(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 3, 5)
	if !Transpose(Transpose(a)).EqualApprox(a, 0) {
		t.Fatal("(Aᵀ)ᵀ != A")
	}
	at := Transpose(a)
	if at.At(4, 2) != a.At(2, 4) {
		t.Fatal("Transpose element mismatch")
	}
}

// Property: <A·B, C> == <B, Aᵀ·C> (adjoint of left-multiplication).
func TestMatMulAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := Randn(r, 1, 3, 4)
		b := Randn(r, 1, 4, 2)
		c := Randn(r, 1, 3, 2)
		lhs := Dot(MatMul(a, b), c)
		rhs := Dot(b, MatMul(Transpose(a), c))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if rs := RowSum(a); !rs.EqualApprox(FromSlice([]float64{6, 15}, 2, 1), 1e-12) {
		t.Fatalf("RowSum = %v", rs.Data)
	}
	if cs := ColSum(a); !cs.EqualApprox(FromSlice([]float64{5, 7, 9}, 1, 3), 1e-12) {
		t.Fatalf("ColSum = %v", cs.Data)
	}
	if rm := RowMax(a); !rm.EqualApprox(FromSlice([]float64{3, 6}, 2, 1), 1e-12) {
		t.Fatalf("RowMax = %v", rm.Data)
	}
	if s := SumAll(a); s != 21 {
		t.Fatalf("SumAll = %v", s)
	}
}

func TestBroadcast(t *testing.T) {
	col := FromSlice([]float64{1, 2}, 2, 1)
	bc := BroadcastCol(col, 3)
	if !bc.EqualApprox(FromSlice([]float64{1, 1, 1, 2, 2, 2}, 2, 3), 1e-12) {
		t.Fatalf("BroadcastCol = %v", bc.Data)
	}
	row := FromSlice([]float64{1, 2, 3}, 1, 3)
	br := BroadcastRow(row, 2)
	if !br.EqualApprox(FromSlice([]float64{1, 2, 3, 1, 2, 3}, 2, 3), 1e-12) {
		t.Fatalf("BroadcastRow = %v", br.Data)
	}
}

// Property: ColSum is the adjoint of BroadcastRow:
// <BroadcastRow(v,r), M> == <v, ColSum(M)>.
func TestBroadcastAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := Randn(r, 1, 1, 4)
		m := Randn(r, 1, 3, 4)
		lhs := Dot(BroadcastRow(v, 3), m)
		rhs := Dot(v, ColSum(m))
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDotNormSqDist(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	b := FromSlice([]float64{1, 0}, 2)
	if Dot(a, b) != 3 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if SqDist(a, b) != 20 {
		t.Fatalf("SqDist = %v", SqDist(a, b))
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}
