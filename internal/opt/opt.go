// Package opt provides the optimizers used by the GradSec reproduction:
// SGD with momentum and Adam for model training, and a limited-memory
// BFGS minimiser (the optimizer the deep-leakage-from-gradients attack
// uses in the paper) for the DRIA reconstruction.
package opt

import (
	"fmt"
	"math"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Optimizer updates a fixed set of parameter tensors in place from their
// gradients. Implementations keep per-parameter state keyed by position,
// so Step must always be called with the same parameter list.
type Optimizer interface {
	Step(params, grads []*tensor.Tensor)
}

// SGD implements stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity []*tensor.Tensor
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum coefficient (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step applies one SGD update: w ← w − lr·(μ·v + g).
func (s *SGD) Step(params, grads []*tensor.Tensor) {
	checkLens(params, grads)
	if s.Momentum == 0 {
		for i, p := range params {
			tensor.AxPy(-s.LR, grads[i], p)
		}
		return
	}
	if s.velocity == nil {
		s.velocity = zerosLike(params)
	}
	for i, p := range params {
		v := s.velocity[i]
		for j := range v.Data {
			v.Data[j] = s.Momentum*v.Data[j] + grads[i].Data[j]
			p.Data[j] -= s.LR * v.Data[j]
		}
	}
}

// Adam implements the Adam optimizer (Kingma & Ba, 2015) with the usual
// bias-corrected moment estimates.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t    int
	m, v []*tensor.Tensor
}

// NewAdam returns an Adam optimizer with standard defaults for the moment
// decays (0.9, 0.999) and epsilon (1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update.
func (a *Adam) Step(params, grads []*tensor.Tensor) {
	checkLens(params, grads)
	if a.m == nil {
		a.m = zerosLike(params)
		a.v = zerosLike(params)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		m, v, g := a.m[i], a.v[i], grads[i]
		for j := range p.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g.Data[j]
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g.Data[j]*g.Data[j]
			mh := m.Data[j] / c1
			vh := v.Data[j] / c2
			p.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

func checkLens(params, grads []*tensor.Tensor) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("opt: %d params but %d grads", len(params), len(grads)))
	}
}

func zerosLike(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = tensor.New(t.Shape...)
	}
	return out
}
