package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

// quadratic builds f(x) = Σ a_i (x_i − c_i)² with its gradient.
func quadratic(a, c []float64) Objective {
	return func(x []float64) (float64, []float64) {
		f := 0.0
		g := make([]float64, len(x))
		for i := range x {
			d := x[i] - c[i]
			f += a[i] * d * d
			g[i] = 2 * a[i] * d
		}
		return f, g
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := tensor.FromSlice([]float64{5, -3}, 2)
	s := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		g := tensor.Scale(p, 2) // grad of ‖p‖²
		s.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	if tensor.Norm2(p) > 1e-6 {
		t.Fatalf("SGD did not converge: %v", p.Data)
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	run := func(momentum float64) int {
		p := tensor.FromSlice([]float64{10, 10}, 2)
		s := NewSGD(0.02, momentum)
		for i := 0; i < 3000; i++ {
			g := tensor.FromSlice([]float64{2 * p.Data[0], 40 * p.Data[1]}, 2)
			s.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
			if tensor.Norm2(p) < 1e-4 {
				return i
			}
		}
		return 3000
	}
	if plain, mom := run(0), run(0.9); mom >= plain {
		t.Fatalf("momentum (%d iters) should beat plain SGD (%d iters)", mom, plain)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := tensor.FromSlice([]float64{5, -3, 2}, 3)
	a := NewAdam(0.1)
	for i := 0; i < 2000; i++ {
		g := tensor.Scale(p, 2)
		a.Step([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	}
	if tensor.Norm2(p) > 1e-3 {
		t.Fatalf("Adam did not converge: %v", p.Data)
	}
}

func TestStepLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on params/grads length mismatch")
		}
	}()
	NewSGD(0.1, 0).Step([]*tensor.Tensor{tensor.New(1)}, nil)
}

func TestLBFGSQuadratic(t *testing.T) {
	obj := quadratic([]float64{1, 10, 100}, []float64{1, -2, 3})
	res := LBFGS(obj, []float64{0, 0, 0}, LBFGSConfig{MaxIter: 100, GradTol: 1e-10})
	want := []float64{1, -2, 3}
	for i, v := range want {
		if math.Abs(res.X[i]-v) > 1e-6 {
			t.Fatalf("LBFGS x[%d] = %v, want %v (converged=%v iters=%d)", i, res.X[i], v, res.Converged, res.Iters)
		}
	}
	if !res.Converged {
		t.Fatal("LBFGS should report convergence on a quadratic")
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	rosen := func(x []float64) (float64, []float64) {
		a, b := x[0], x[1]
		f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		g := []float64{
			-2*(1-a) - 400*a*(b-a*a),
			200 * (b - a*a),
		}
		return f, g
	}
	res := LBFGS(rosen, []float64{-1.2, 1}, LBFGSConfig{MaxIter: 500, GradTol: 1e-8})
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Fatalf("Rosenbrock minimum not found: %v (f=%v, iters=%d)", res.X, res.F, res.Iters)
	}
}

func TestLBFGSBeatsGradientDescentOnIllConditioned(t *testing.T) {
	a := []float64{1, 1000}
	c := []float64{2, -1}
	obj := quadratic(a, c)

	res := LBFGS(obj, []float64{0, 0}, LBFGSConfig{MaxIter: 50, GradTol: 1e-10})
	if !res.Converged {
		t.Fatalf("LBFGS failed to converge in 50 iters on ill-conditioned quadratic (f=%v)", res.F)
	}
}

// Property: LBFGS never increases the objective between start and finish.
func TestLBFGSMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4
		a := make([]float64, n)
		c := make([]float64, n)
		x0 := make([]float64, n)
		for i := range a {
			a[i] = 0.5 + r.Float64()*10
			c[i] = r.NormFloat64() * 3
			x0[i] = r.NormFloat64() * 3
		}
		obj := quadratic(a, c)
		f0, _ := obj(x0)
		res := LBFGS(obj, x0, LBFGSConfig{MaxIter: 30})
		return res.F <= f0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLBFGSZeroGradientImmediateConvergence(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{5})
	res := LBFGS(obj, []float64{5}, LBFGSConfig{})
	if !res.Converged || res.Iters != 1 {
		t.Fatalf("expected immediate convergence, got iters=%d converged=%v", res.Iters, res.Converged)
	}
}
