package opt

import "math"

// Objective evaluates a scalar function and its gradient at x.
// Implementations must not retain x.
type Objective func(x []float64) (f float64, grad []float64)

// LBFGSConfig configures the limited-memory BFGS minimiser.
type LBFGSConfig struct {
	// History is the number of (s, y) curvature pairs to keep. Zero means 10.
	History int
	// MaxIter bounds the number of outer iterations. Zero means 100.
	MaxIter int
	// GradTol stops when ‖∇f‖∞ falls below it. Zero means 1e-8.
	GradTol float64
	// MaxLineSearch bounds backtracking steps per iteration. Zero means 25.
	MaxLineSearch int
}

// LBFGSResult reports the outcome of a minimisation.
type LBFGSResult struct {
	X         []float64
	F         float64
	Iters     int
	Converged bool
}

// LBFGS minimises obj starting from x0 using L-BFGS with an
// Armijo-backtracking line search. The deep-leakage-from-gradients attack
// of the paper (Zhu et al., 2019) uses exactly this family of optimizer
// for its gradient-matching objective.
func LBFGS(obj Objective, x0 []float64, cfg LBFGSConfig) LBFGSResult {
	if cfg.History == 0 {
		cfg.History = 10
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 100
	}
	if cfg.GradTol == 0 {
		cfg.GradTol = 1e-8
	}
	if cfg.MaxLineSearch == 0 {
		cfg.MaxLineSearch = 25
	}

	n := len(x0)
	x := append([]float64(nil), x0...)
	f, g := obj(x)

	var sHist, yHist [][]float64
	var rhoHist []float64
	alpha := make([]float64, cfg.History)

	res := LBFGSResult{X: x, F: f}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		res.Iters = iter + 1
		if normInf(g) < cfg.GradTol {
			res.Converged = true
			break
		}

		// Two-loop recursion computes d = −H·g.
		d := make([]float64, n)
		for i := range d {
			d[i] = -g[i]
		}
		for i := len(sHist) - 1; i >= 0; i-- {
			alpha[i] = rhoHist[i] * dot(sHist[i], d)
			axpy(-alpha[i], yHist[i], d)
		}
		if m := len(sHist); m > 0 {
			// Scale by the standard γ = sᵀy/yᵀy initial Hessian estimate.
			gamma := dot(sHist[m-1], yHist[m-1]) / dot(yHist[m-1], yHist[m-1])
			if gamma > 0 && !math.IsInf(gamma, 0) && !math.IsNaN(gamma) {
				for i := range d {
					d[i] *= gamma
				}
			}
		}
		for i := 0; i < len(sHist); i++ {
			beta := rhoHist[i] * dot(yHist[i], d)
			axpy(alpha[i]-beta, sHist[i], d)
		}

		// Ensure a descent direction; fall back to steepest descent.
		dg := dot(d, g)
		if dg >= 0 {
			for i := range d {
				d[i] = -g[i]
			}
			dg = -dot(g, g)
		}

		// Weak-Wolfe line search via bisection (Lewis–Overton): the
		// curvature condition keeps the (s, y) pairs well conditioned,
		// which Armijo-only backtracking does not guarantee.
		const (
			c1 = 1e-4
			c2 = 0.9
		)
		step, lo, hi := 1.0, 0.0, math.Inf(1)
		var fNew float64
		var gNew []float64
		xNew := make([]float64, n)
		ok := false
		var fBest float64
		var gBest, xBest []float64
		for ls := 0; ls < cfg.MaxLineSearch; ls++ {
			for i := range xNew {
				xNew[i] = x[i] + step*d[i]
			}
			fNew, gNew = obj(xNew)
			switch {
			case math.IsNaN(fNew) || fNew > f+c1*step*dg: // Armijo fails
				hi = step
				step = (lo + hi) / 2
			case dot(gNew, d) < c2*dg: // curvature fails
				// Remember the Armijo-feasible point in case we give up.
				fBest = fNew
				gBest = append(gBest[:0], gNew...)
				xBest = append(xBest[:0], xNew...)
				lo = step
				if math.IsInf(hi, 1) {
					step *= 2
				} else {
					step = (lo + hi) / 2
				}
			default:
				ok = true
			}
			if ok {
				break
			}
		}
		if !ok {
			if xBest == nil {
				// Not even Armijo progress was possible; stop.
				break
			}
			xNew, fNew, gNew = xBest, fBest, gBest
		}

		s := make([]float64, n)
		y := make([]float64, n)
		for i := range s {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := dot(s, y)
		if sy > 1e-12 {
			sHist = append(sHist, s)
			yHist = append(yHist, y)
			rhoHist = append(rhoHist, 1/sy)
			if len(sHist) > cfg.History {
				sHist = sHist[1:]
				yHist = yHist[1:]
				rhoHist = rhoHist[1:]
			}
		}

		x, f, g = xNew, fNew, gNew
		res.X, res.F = x, f
	}
	return res
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

func normInf(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}
