package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestStaticPlanNonSuccessive(t *testing.T) {
	p, err := NewStaticPlan(4, 1) // L2+L5 in paper naming
	if err != nil {
		t.Fatal(err)
	}
	if p.Layers[0] != 1 || p.Layers[1] != 4 {
		t.Fatalf("layers = %v", p.Layers)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	got := p.ProtectedLayers(7, 5)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("ProtectedLayers = %v", got)
	}
}

func TestStaticPlanErrors(t *testing.T) {
	if _, err := NewStaticPlan(); !errors.Is(err, ErrEmptyPlan) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewStaticPlan(-1); !errors.Is(err, ErrLayerRange) {
		t.Fatalf("negative: %v", err)
	}
	if _, err := NewStaticPlan(2, 2); !errors.Is(err, ErrDuplicateLayer) {
		t.Fatalf("dup: %v", err)
	}
	p, _ := NewStaticPlan(7)
	if err := p.Validate(5); !errors.Is(err, ErrLayerRange) {
		t.Fatalf("range: %v", err)
	}
}

func TestDarkneTZPlanRequiresContiguous(t *testing.T) {
	p, err := NewDarkneTZPlan(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Layers) != 4 {
		t.Fatalf("layers = %v", p.Layers)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	// Manually corrupt to non-contiguous: validation must reject.
	p.Layers = []int{1, 4}
	if err := p.Validate(5); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("non-contiguous: %v", err)
	}
	if _, err := NewDarkneTZPlan(3, 2); err == nil {
		t.Fatal("inverted range must fail")
	}
}

func TestDynamicPlanValidation(t *testing.T) {
	// Paper's DPIA configuration: MW=2 over 5 layers, 4 positions.
	p, err := NewDynamicPlan(2, []float64{0.2, 0.1, 0.6, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(6); !errors.Is(err, ErrVMWLength) {
		t.Fatalf("wrong layer count: %v", err)
	}
	if _, err := NewDynamicPlan(0, []float64{1}); !errors.Is(err, ErrBadWindowSize) {
		t.Fatalf("size 0: %v", err)
	}
	if _, err := NewDynamicPlan(2, []float64{0.5, 0.4}); !errors.Is(err, ErrBadVMW) {
		t.Fatalf("bad sum: %v", err)
	}
	if _, err := NewDynamicPlan(2, []float64{1.5, -0.5}); !errors.Is(err, ErrBadVMW) {
		t.Fatalf("negative: %v", err)
	}
}

func TestWindowPositions(t *testing.T) {
	// Paper §7.2: n − sizeMW + 1; Figure 4's example is 4 for MW=2 in a
	// 5-layer network.
	if got := WindowPositions(5, 2); got != 4 {
		t.Fatalf("positions = %d, want 4", got)
	}
	if got := WindowPositions(8, 3); got != 6 {
		t.Fatalf("positions = %d, want 6", got)
	}
}

func TestUniformDynamicPlan(t *testing.T) {
	p, err := UniformDynamicPlan(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.VMW {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("VMW = %v", p.VMW)
		}
	}
	if _, err := UniformDynamicPlan(6, 5); err == nil {
		t.Fatal("window larger than model must fail")
	}
}

// The deterministic schedule must realise the VMW distribution over any
// horizon: counts within 1 of the ideal share (largest-remainder bound).
func TestDynamicScheduleMatchesVMW(t *testing.T) {
	vmw := []float64{0.2, 0.1, 0.6, 0.1}
	p, err := NewDynamicPlan(2, vmw)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 40
	counts := make([]int, len(vmw))
	for c := 0; c < cycles; c++ {
		pos := p.WindowPosition(c)
		counts[pos]++
		layers := p.ProtectedLayers(c, 5)
		if len(layers) != 2 || layers[1] != layers[0]+1 {
			t.Fatalf("cycle %d: window layers = %v", c, layers)
		}
	}
	for k, share := range vmw {
		ideal := share * cycles
		if math.Abs(float64(counts[k])-ideal) > 1.0+1e-9 {
			t.Fatalf("position %d used %d times, ideal %.1f", k, counts[k], ideal)
		}
	}
}

// Property: for random VMW vectors the schedule stays within the
// largest-remainder bound of the ideal allocation.
func TestDynamicScheduleProportionalProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		w := []float64{float64(a%8) + 1, float64(b%8) + 1, float64(c%8) + 1}
		sum := w[0] + w[1] + w[2]
		for i := range w {
			w[i] /= sum
		}
		p, err := NewDynamicPlan(3, w)
		if err != nil {
			return false
		}
		const cycles = 30
		counts := make([]int, 3)
		for t := 0; t < cycles; t++ {
			counts[p.WindowPosition(t)]++
		}
		for k := range w {
			if math.Abs(float64(counts[k])-w[k]*cycles) > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanEncodeDecodeRoundTrip(t *testing.T) {
	plans := []*Plan{
		mustStatic(t, 1, 4),
		mustDarkneTZ(t, 1, 4),
		mustDynamic(t, 2, []float64{0.2, 0.1, 0.6, 0.1}),
	}
	for _, p := range plans {
		got, err := DecodePlan(p.Encode())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if got.String() != p.String() {
			t.Fatalf("roundtrip %s != %s", got, p)
		}
	}
	if _, err := DecodePlan([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("corrupt plan must fail")
	}
}

func TestPlanString(t *testing.T) {
	p := mustStatic(t, 1, 4)
	if p.String() != "static[L2+L5]" {
		t.Fatalf("String = %s", p.String())
	}
	d := mustDynamic(t, 2, []float64{0.5, 0.5})
	if d.String() == "" || d.Mode.String() != "dynamic" {
		t.Fatal("dynamic String broken")
	}
}

func mustStatic(t *testing.T, layers ...int) *Plan {
	t.Helper()
	p, err := NewStaticPlan(layers...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustDarkneTZ(t *testing.T, first, last int) *Plan {
	t.Helper()
	p, err := NewDarkneTZPlan(first, last)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustDynamic(t *testing.T, size int, vmw []float64) *Plan {
	t.Helper()
	p, err := NewDynamicPlan(size, vmw)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestContiguousRuns(t *testing.T) {
	tests := []struct {
		in   []int
		want int
	}{
		{[]int{1, 4}, 2},    // L2+L5: two runs (the paper's grouped protection)
		{[]int{1, 2, 3}, 1}, // contiguous slice: one run
		{[]int{0}, 1},       // single layer
		{[]int{0, 2, 4}, 3}, // fully scattered
		{nil, 0},            // baseline
	}
	for _, tc := range tests {
		if got := len(contiguousRuns(tc.in)); got != tc.want {
			t.Errorf("contiguousRuns(%v) = %d runs, want %d", tc.in, got, tc.want)
		}
	}
}
