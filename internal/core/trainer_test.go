package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/opt"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// fixedBatches returns a deterministic batch function over pre-generated
// batches (so secure and reference training see identical data).
func fixedBatches(rngSeed int64, n, iters, cells, classes int) (func(cycle, iter int) (*tensor.Tensor, *tensor.Tensor), [][2]*tensor.Tensor) {
	rng := rand.New(rand.NewSource(rngSeed))
	batches := make([][2]*tensor.Tensor, iters*8)
	for i := range batches {
		x := tensor.Randn(rng, 0.5, n, cells)
		y := tensor.New(n, classes)
		for r := 0; r < n; r++ {
			y.Set(1, r, rng.Intn(classes))
		}
		batches[i] = [2]*tensor.Tensor{x, y}
	}
	return func(cycle, iter int) (*tensor.Tensor, *tensor.Tensor) {
		b := batches[(cycle*iters+iter)%len(batches)]
		return b[0].Clone(), b[1].Clone()
	}, batches
}

func tinyNet(seed int64) *nn.Network {
	return nn.NewTinyConvNet(rand.New(rand.NewSource(seed)), 1, 6, 6, 3, nn.ActSigmoid)
}

func tinyBatch(seed int64, iters int) func(cycle, iter int) (*tensor.Tensor, *tensor.Tensor) {
	f, _ := fixedBatches(seed, 4, iters, 36, 3)
	return f
}

// referenceTrain runs plain SGD with the same batches and returns the
// final flat weights.
func referenceTrain(net *nn.Network, batch func(cycle, iter int) (*tensor.Tensor, *tensor.Tensor), cycles, iters int, lr float64) []*tensor.Tensor {
	o := opt.NewSGD(lr, 0)
	for c := 0; c < cycles; c++ {
		for i := 0; i < iters; i++ {
			x, y := batch(c, i)
			net.TrainStep(x, y, o)
		}
	}
	return net.StateDict()
}

// secureTrain runs the same workload through the SecureTrainer and
// reconstructs the full final weights via the (trusted) server view.
func secureTrain(t *testing.T, plan *Plan, cycles, iters int, lr float64) ([]*tensor.Tensor, *SecureTrainer, []*CycleResult) {
	t.Helper()
	net := tinyNet(7)
	dev := tz.NewDevice("sec-train-test")
	st, err := NewSecureTrainer(dev, net, plan, TrainerConfig{
		Iterations: iters, LR: lr, Batch: tinyBatch(99, iters),
	})
	if err != nil {
		t.Fatal(err)
	}
	sv, err := EstablishServerView(st)
	if err != nil {
		t.Fatal(err)
	}
	// Server-side running model: starts from the same init.
	global := tinyNet(7).StateDict()
	var results []*CycleResult
	for c := 0; c < cycles; c++ {
		res, err := st.RunCycle(c)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		full, err := sv.FullUpdate(res)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range full {
			if u == nil {
				t.Fatalf("cycle %d: update %d missing", c, i)
			}
			tensor.AddInPlace(global[i], u)
		}
	}
	return global, st, results
}

// The central correctness property: secure partitioned training computes
// exactly the same weights as plain training, for static (successive and
// non-successive) and dynamic plans.
func TestSecureTrainingEquivalence(t *testing.T) {
	const cycles, iters, lr = 3, 2, 0.05
	ref := referenceTrain(tinyNet(7), tinyBatch(99, iters), cycles, iters, lr)

	plans := map[string]*Plan{
		"static-middle":        mustStatic(t, 1),
		"static-nonsuccessive": mustStatic(t, 0, 2),
		"static-head":          mustStatic(t, 0),
		"static-tail":          mustStatic(t, 2),
		"darknetz-slice":       mustDarkneTZ(t, 1, 2),
		"dynamic-mw2":          mustDynamic(t, 2, []float64{0.5, 0.5}),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			got, _, _ := secureTrain(t, plan, cycles, iters, lr)
			for i := range ref {
				if !got[i].EqualApprox(ref[i], 1e-9) {
					t.Fatalf("weight tensor %d diverged from plain training (max %v vs %v)",
						i, got[i].MaxAbs(), ref[i].MaxAbs())
				}
			}
		})
	}
}

// The attacker's view: protected layers' updates must be nil in
// Observable and their weights zeroed in the normal-world network.
func TestLeakageOracle(t *testing.T) {
	plan := mustStatic(t, 0, 2) // protect first and last of 3 layers
	_, st, results := secureTrain(t, plan, 2, 2, 0.05)

	fr := flatRanges(st.Network())
	for _, res := range results {
		for _, l := range []int{0, 2} {
			for k := fr[l].start; k < fr[l].end; k++ {
				if res.Observable[k] != nil {
					t.Fatalf("cycle %d: protected layer %d leaked observable update", res.Cycle, l)
				}
			}
		}
		for k := fr[1].start; k < fr[1].end; k++ {
			if res.Observable[k] == nil {
				t.Fatalf("cycle %d: unprotected layer update missing", res.Cycle)
			}
		}
		if len(res.SealedUpdate) == 0 {
			t.Fatal("protected updates must travel sealed")
		}
	}
	// Normal-world weights of protected layers are zeroed.
	for _, l := range []int{0, 2} {
		for _, p := range st.Network().Layers[l].Params() {
			if p.MaxAbs() != 0 {
				t.Fatalf("normal world can read protected layer %d weights", l)
			}
		}
	}
	// Unprotected layer weights are present.
	nonzero := false
	for _, p := range st.Network().Layers[1].Params() {
		if p.MaxAbs() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("unprotected layer weights should live in the normal world")
	}
}

// Dynamic plans migrate weights in and out of the enclave between cycles;
// the normal-world zeroing must follow the window.
func TestDynamicWindowMigration(t *testing.T) {
	plan := mustDynamic(t, 1, []float64{0.5, 0.5, 0}) // alternate L1/L2
	_, st, results := secureTrain(t, plan, 2, 1, 0.05)
	if results[0].Protected[0] == results[1].Protected[0] {
		t.Fatalf("window did not move: %v then %v", results[0].Protected, results[1].Protected)
	}
	// After the final cycle, the currently protected layer is zeroed in
	// the normal world and the previous one is declassified.
	last := results[1].Protected[0]
	for _, p := range st.Network().Layers[last].Params() {
		if p.MaxAbs() != 0 {
			t.Fatal("currently protected layer visible in normal world")
		}
	}
	prev := results[0].Protected[0]
	visible := false
	for _, p := range st.Network().Layers[prev].Params() {
		if p.MaxAbs() > 0 {
			visible = true
		}
	}
	if !visible {
		t.Fatal("layer that left the window must be declassified")
	}
}

func TestSecureMemoryAccounting(t *testing.T) {
	plan := mustStatic(t, 1)
	_, st, results := secureTrain(t, plan, 1, 1, 0.05)
	want := TEEMemoryBytes(st.Network().Layers[1], 4, st.Device().Cost().BytesPerCell)
	if results[0].PeakTEEBytes != want {
		t.Fatalf("peak TEE bytes = %d, want %d", results[0].PeakTEEBytes, want)
	}
	if results[0].Cost.Alloc <= 0 || results[0].Cost.Kernel <= 0 || results[0].Cost.User <= 0 {
		t.Fatalf("cost breakdown incomplete: %+v", results[0].Cost)
	}
}

func TestSecureMemoryExhaustion(t *testing.T) {
	net := tinyNet(7)
	dev := tz.NewDevice("tiny-enclave", tz.WithSecureMemory(64)) // absurdly small
	st, err := NewSecureTrainer(dev, net, mustStatic(t, 0), TrainerConfig{
		Iterations: 1, LR: 0.05, Batch: tinyBatch(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstablishServerView(st); err != nil {
		t.Fatal(err)
	}
	_, err = st.RunCycle(0)
	if !errors.Is(err, tz.ErrOutOfSecureMemory) {
		t.Fatalf("err = %v, want out of secure memory", err)
	}
}

func TestRunCycleRequiresBatch(t *testing.T) {
	net := tinyNet(7)
	dev := tz.NewDevice("no-batch")
	st, err := NewSecureTrainer(dev, net, mustStatic(t, 0), TrainerConfig{Iterations: 1, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.RunCycle(0); err == nil {
		t.Fatal("RunCycle without Batch must fail")
	}
}

func TestEndCycleWithoutChannelFails(t *testing.T) {
	net := tinyNet(7)
	dev := tz.NewDevice("no-channel")
	st, err := NewSecureTrainer(dev, net, mustStatic(t, 0), TrainerConfig{
		Iterations: 1, LR: 0.05, Batch: tinyBatch(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.RunCycle(0); err == nil {
		t.Fatal("protected training without a trusted channel must fail")
	}
}

func TestPlanValidatedAtConstruction(t *testing.T) {
	net := tinyNet(7)
	dev := tz.NewDevice("bad-plan")
	if _, err := NewSecureTrainer(dev, net, mustStatic(t, 9), TrainerConfig{}); !errors.Is(err, ErrLayerRange) {
		t.Fatalf("err = %v", err)
	}
}

// Full FL integration: GradSec clients training through the protocol with
// a protecting planner must reach the same global model as plain FedAvg.
func TestFLIntegrationEquivalence(t *testing.T) {
	const rounds, iters, lr = 2, 2, 0.05

	buildClient := func(name string) (*GradSecClient, *tz.Device) {
		net := tinyNet(7)
		// Zero out: weights come from the server each round.
		dev := tz.NewDevice(name)
		st, err := NewSecureTrainer(dev, net, mustStatic(t, 1), TrainerConfig{
			Iterations: iters, LR: lr, Batch: tinyBatch(int64(len(name)), iters),
		})
		if err != nil {
			t.Fatal(err)
		}
		return NewGradSecClient(name, st), dev
	}

	gc1, dev1 := buildClient("alpha")
	gc2, dev2 := buildClient("beta")

	verifier := tz.NewVerifier()
	for _, d := range []*tz.Device{dev1, dev2} {
		verifier.RegisterDevice(d.Identity().ID(), d.Identity().RootKey())
	}
	m1, _ := dev1.Measurement(gc1.Trainer().TAUUID())
	verifier.AllowMeasurement(m1)
	m2, _ := dev2.Measurement(gc2.Trainer().TAUUID())
	verifier.AllowMeasurement(m2)

	globalNet := tinyNet(7)
	plan := mustStatic(t, 1)
	planner := NewPlanner(plan, globalNet, func(layers []int) map[int]bool {
		return FlatIndicesForLayers(globalNet, layers)
	})
	srv := fl.NewServer(globalNet.StateDict(), fl.ServerConfig{
		Rounds: rounds, RequireTEE: true, Verifier: verifier, Planner: planner, MinClients: 2,
	})

	c1Conn, s1Conn := fl.Pipe()
	c2Conn, s2Conn := fl.Pipe()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, pair := range []struct {
		conn fl.Conn
		gc   *GradSecClient
	}{{c1Conn, gc1}, {c2Conn, gc2}} {
		wg.Add(1)
		go func(i int, conn fl.Conn, gc *GradSecClient) {
			defer wg.Done()
			errs[i] = fl.NewClient(conn, gc).Run()
		}(i, pair.conn, pair.gc)
	}
	selected, err := srv.Run([]fl.Conn{s1Conn, s2Conn})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("client %d: %v", i, e)
		}
	}
	if selected != 2 {
		t.Fatalf("selected = %d, want 2", selected)
	}

	// Reference: plain FedAvg with identical batches.
	refGlobal := tinyNet(7).StateDict()
	refA := tinyNet(7)
	refB := tinyNet(7)
	for round := 0; round < rounds; round++ {
		var updates [][]*tensor.Tensor
		for ci, ref := range []*nn.Network{refA, refB} {
			name := []string{"alpha", "beta"}[ci]
			if err := ref.LoadState(refGlobal); err != nil {
				t.Fatal(err)
			}
			before := ref.StateDict()
			batch := tinyBatch(int64(len(name)), iters)
			o := opt.NewSGD(lr, 0)
			for it := 0; it < iters; it++ {
				x, y := batch(round, it)
				ref.TrainStep(x, y, o)
			}
			after := ref.StateDict()
			upd := make([]*tensor.Tensor, len(after))
			for i := range after {
				upd[i] = tensor.Sub(after[i], before[i])
			}
			updates = append(updates, upd)
		}
		fl.ApplyUpdate(refGlobal, fl.FedAvg(updates), 1)
	}

	for i, want := range refGlobal {
		if !srv.State()[i].EqualApprox(want, 1e-9) {
			t.Fatalf("global tensor %d diverged from plain FedAvg", i)
		}
	}
}

func TestFlatIndicesForLayers(t *testing.T) {
	net := tinyNet(7)
	got := FlatIndicesForLayers(net, []int{1})
	// Layer 1 owns flat tensors 2,3 (W,B after layer 0's W,B).
	if !got[2] || !got[3] || got[0] || got[4] {
		t.Fatalf("flat indices = %v", got)
	}
}
