package core

import (
	"errors"
	"fmt"
	"time"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// GradSec TA commands.
const (
	cmdOpenChannel uint32 = iota + 1
	cmdLoadSealedWeights
	cmdBeginCycle
	cmdForwardRun
	cmdBackwardRun
	cmdEndCycle
)

// TrainerConfig parameterises secure local training.
type TrainerConfig struct {
	// Iterations is the number of batch iterations per FL cycle.
	Iterations int
	// LR is the local SGD learning rate.
	LR float64
	// Batch supplies the training batch for (cycle, iteration).
	Batch func(cycle, iter int) (x, y *tensor.Tensor)
}

// CycleResult is what one FL cycle of secure local training exposes.
type CycleResult struct {
	// Cycle is the FL cycle index.
	Cycle int
	// MeanLoss averages the per-iteration training loss.
	MeanLoss float64
	// Protected lists the layers that were shielded this cycle.
	Protected []int
	// Observable holds the model update (W_end − W_start) of every
	// *unprotected* parameter tensor, nil at protected positions — this
	// is exactly the attacker's view of the gradients.
	Observable []*tensor.Tensor
	// SealedUpdate carries the protected updates, sealed for the server
	// through the trusted I/O path. Opaque to the normal world.
	SealedUpdate []byte
	// Cost is the cycle's simulated time breakdown.
	Cost simclock.Breakdown
	// PeakTEEBytes is the secure-memory high-water mark of the cycle.
	PeakTEEBytes int
}

// SecureTrainer executes GradSec local training on one simulated device:
// unprotected layers run in the normal world, protected layers inside the
// gradsec trusted application.
type SecureTrainer struct {
	dev  *tz.Device
	net  *nn.Network // normal-world view; protected layer params are zeroed
	plan *Plan
	cfg  TrainerConfig

	ta   *gradsecTA
	sess *tz.Session

	// startWeights snapshots unprotected weights at cycle start.
	startWeights map[int][]*tensor.Tensor
	curProtected map[int]bool
	// taAuthoritative marks layers whose current weights already live in
	// the TA (loaded sealed through the trusted I/O path), so beginCycle
	// must not overwrite them with the zeroed normal-world copies.
	taAuthoritative map[int]bool
}

// NewSecureTrainer installs the GradSec TA on the device and provisions
// it with a private clone of the model. The passed network remains the
// normal-world view.
func NewSecureTrainer(dev *tz.Device, net *nn.Network, plan *Plan, cfg TrainerConfig) (*SecureTrainer, error) {
	if err := plan.Validate(net.NumLayers()); err != nil {
		return nil, err
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1
	}
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	ta := &gradsecTA{uuid: tz.NameUUID("gradsec"), version: "1.0.0", net: net.Clone(), lr: cfg.LR}
	if err := dev.Install(ta); err != nil {
		return nil, err
	}
	sess, err := dev.OpenSession(ta.UUID())
	if err != nil {
		return nil, err
	}
	return &SecureTrainer{
		dev: dev, net: net, plan: plan, cfg: cfg,
		ta: ta, sess: sess,
		startWeights:    make(map[int][]*tensor.Tensor),
		curProtected:    make(map[int]bool),
		taAuthoritative: make(map[int]bool),
	}, nil
}

// Device returns the underlying simulated device.
func (t *SecureTrainer) Device() *tz.Device { return t.dev }

// TAUUID returns the GradSec TA identity (for attestation policies).
func (t *SecureTrainer) TAUUID() tz.UUID { return t.ta.UUID() }

// Network returns the normal-world model view. Protected layers' weights
// are zeroed there; reading them reveals nothing.
func (t *SecureTrainer) Network() *nn.Network { return t.net }

// OpenServerChannel establishes the TA side of the trusted I/O path.
func (t *SecureTrainer) OpenServerChannel(serverPub []byte) ([]byte, error) {
	resp, err := t.sess.Invoke(cmdOpenChannel, serverPub)
	if err != nil {
		return nil, err
	}
	pub, ok := resp.([]byte)
	if !ok {
		return nil, fmt.Errorf("core: unexpected channel response %T", resp)
	}
	return pub, nil
}

// LoadSealedWeights hands server-sealed protected weights to the TA.
func (t *SecureTrainer) LoadSealedWeights(sealed []byte) error {
	_, err := t.sess.Invoke(cmdLoadSealedWeights, sealed)
	return err
}

// RunCycle executes one FL cycle: local training over cfg.Iterations
// batches with the cycle's protected layers confined to the TEE.
func (t *SecureTrainer) RunCycle(cycle int) (*CycleResult, error) {
	if t.cfg.Batch == nil {
		return nil, errors.New("core: TrainerConfig.Batch is required")
	}
	protected := t.plan.ProtectedLayers(cycle, t.net.NumLayers())
	clock := t.dev.Clock()
	before := clock.Snapshot()
	t.dev.SecureMemory().ResetPeak()
	if err := t.beginCycle(cycle, protected); err != nil {
		return nil, err
	}

	res := &CycleResult{Cycle: cycle, Protected: protected}
	clock.ChargeUser(t.dev.Cost().CycleUserOverhead)
	clock.ChargeKernel(t.dev.Cost().CycleKernelOverhead)

	totalLoss := 0.0
	for iter := 0; iter < t.cfg.Iterations; iter++ {
		x, y := t.cfg.Batch(cycle, iter)
		loss, err := t.trainStep(x, y)
		if err != nil {
			return nil, fmt.Errorf("core: cycle %d iter %d: %w", cycle, iter, err)
		}
		totalLoss += loss
	}
	res.MeanLoss = totalLoss / float64(t.cfg.Iterations)

	if err := t.endCycle(res); err != nil {
		return nil, err
	}
	after := clock.Snapshot()
	res.Cost = simclock.Breakdown{
		User:   after.User - before.User,
		Kernel: after.Kernel - before.Kernel,
		Alloc:  after.Alloc - before.Alloc,
	}
	res.PeakTEEBytes = t.dev.SecureMemory().Peak()
	return res, nil
}

// beginCycle reconfigures protection: the TA allocates enclave regions
// for newly protected layers and declassifies layers leaving the TEE.
func (t *SecureTrainer) beginCycle(cycle int, protected []int) error {
	newProt := make(map[int]bool, len(protected))
	for _, l := range protected {
		newProt[l] = true
	}
	req := &beginCycleReq{cycle: cycle, protected: protected, batch: t.batchSize()}
	// Hand weights of newly protected layers to the TA (they were public
	// until now), then zero the normal-world copies. Layers whose weights
	// already arrived sealed through the trusted I/O path are skipped —
	// the TA copy is authoritative.
	for _, l := range protected {
		if !t.curProtected[l] && !t.taAuthoritative[l] {
			var ws []*tensor.Tensor
			for _, p := range t.net.Layers[l].Params() {
				ws = append(ws, p.Clone())
			}
			req.incoming = append(req.incoming, incomingWeights{layer: l, params: ws})
		}
	}
	t.taAuthoritative = make(map[int]bool)
	resp, err := t.sess.Invoke(cmdBeginCycle, req)
	if err != nil {
		return err
	}
	out, ok := resp.(*beginCycleResp)
	if !ok {
		return fmt.Errorf("core: unexpected beginCycle response %T", resp)
	}
	// Install declassified weights of layers that left the enclave.
	for _, dw := range out.released {
		for j, p := range t.net.Layers[dw.layer].Params() {
			copy(p.Data, dw.params[j].Data)
		}
	}
	// Zero normal-world copies of protected layers.
	for _, l := range protected {
		for _, p := range t.net.Layers[l].Params() {
			p.Fill(0)
		}
	}
	t.curProtected = newProt
	// Snapshot unprotected weights for update computation.
	t.startWeights = make(map[int][]*tensor.Tensor)
	for i, layer := range t.net.Layers {
		if newProt[i] {
			continue
		}
		var ws []*tensor.Tensor
		for _, p := range layer.Params() {
			ws = append(ws, p.Clone())
		}
		t.startWeights[i] = ws
	}
	return nil
}

func (t *SecureTrainer) batchSize() int {
	if t.cfg.Batch == nil {
		return 1
	}
	x, _ := t.cfg.Batch(0, 0)
	return x.Shape[0]
}

// layerFwd caches one layer's forward micro-graph for the backward pass.
type layerFwd struct {
	in     *ad.Node
	out    *ad.Node
	params []*ad.Node
}

// trainStep performs one forward+backward+SGD iteration, crossing into
// the TA for each contiguous protected run.
func (t *SecureTrainer) trainStep(x, y *tensor.Tensor) (float64, error) {
	n := t.net.NumLayers()
	batch := y.Shape[0]
	cost := t.dev.Cost()
	clock := t.dev.Clock()

	fwd := make([]*layerFwd, n)
	cur := x
	var loss float64
	lastProtected := t.curProtected[n-1]

	// Forward pass.
	for i := 0; i < n; i++ {
		if !t.curProtected[i] {
			f := buildLayerFwd(t.net.Layers[i], cur, batch)
			fwd[i] = f
			cur = f.out.Value
			clock.ChargeUser(cost.LayerCompute(LayerMACs(t.net.Layers[i])*int64(batch), false))
			continue
		}
		// Start of a protected run: find its extent.
		j := i
		for j+1 < n && t.curProtected[j+1] {
			j++
		}
		req := &forwardReq{first: i, last: j, input: cur.Clone(), batch: batch}
		if j == n-1 {
			req.labels = y.Clone() // TA computes the loss head internally
		}
		resp, err := t.sess.Invoke(cmdForwardRun, req)
		if err != nil {
			return 0, err
		}
		out := resp.(*forwardResp)
		if j == n-1 {
			loss = out.loss
		} else {
			cur = out.activation
		}
		i = j
	}

	// Loss head in the normal world when the last layer is unprotected.
	var gradOut *tensor.Tensor
	if !lastProtected {
		logits := ad.Var(cur)
		lossNode := ad.SoftmaxCrossEntropy(logits, y)
		loss = ad.Scalar(lossNode)
		gradOut = ad.GradValues(lossNode, []*ad.Node{logits})[0]
	}

	// Backward pass, last layer to first.
	for i := n - 1; i >= 0; {
		if !t.curProtected[i] {
			f := fwd[i]
			layer := t.net.Layers[i]
			gradIn, paramGrads := backwardLayer(f, gradOut)
			d := cost.LayerCompute(LayerMACs(layer)*int64(batch), false)
			clock.ChargeUser(time.Duration(float64(d) * (cost.BackwardFactor - 1)))
			// Immediate SGD step (safe: this layer's backward is done and
			// earlier layers only consume the δ already produced).
			for j, p := range layer.Params() {
				tensor.AxPy(-t.cfg.LR, paramGrads[j], p)
			}
			gradOut = gradIn
			i--
			continue
		}
		j := i // end of protected run (we iterate downward)
		for j-1 >= 0 && t.curProtected[j-1] {
			j--
		}
		req := &backwardReq{first: j, last: i}
		if i != n-1 {
			req.gradOut = gradOut.Clone()
		}
		resp, err := t.sess.Invoke(cmdBackwardRun, req)
		if err != nil {
			return 0, err
		}
		out := resp.(*backwardResp)
		gradOut = out.gradIn // nil when the run starts at layer 0
		i = j - 1
	}
	return loss, nil
}

// endCycle collects the observable updates and the sealed protected
// updates.
func (t *SecureTrainer) endCycle(res *CycleResult) error {
	flat := flatRanges(t.net)
	res.Observable = make([]*tensor.Tensor, flat[len(flat)-1].end)
	for i, layer := range t.net.Layers {
		if t.curProtected[i] {
			continue
		}
		start := t.startWeights[i]
		for j, p := range layer.Params() {
			res.Observable[flat[i].start+j] = tensor.Sub(p, start[j])
		}
	}
	resp, err := t.sess.Invoke(cmdEndCycle, &endCycleReq{flat: flat})
	if err != nil {
		return err
	}
	out, ok := resp.(*endCycleResp)
	if !ok {
		return fmt.Errorf("core: unexpected endCycle response %T", resp)
	}
	res.SealedUpdate = out.sealed
	return nil
}

// buildLayerFwd constructs a single layer's forward micro-graph.
func buildLayerFwd(layer nn.Layer, x *tensor.Tensor, batch int) *layerFwd {
	in := ad.Var(x)
	ps := layer.Params()
	vars := make([]*ad.Node, len(ps))
	for i, p := range ps {
		vars[i] = ad.Var(p)
	}
	out := layer.Build(in, vars, batch)
	return &layerFwd{in: in, out: out, params: vars}
}

// backwardLayer computes the layer's parameter gradients and input
// gradient from the gradient at its output, via the exact VJP
// s = ⟨out, gradOut⟩ ⇒ ∂s/∂θ = Jᵀ·gradOut.
func backwardLayer(f *layerFwd, gradOut *tensor.Tensor) (*tensor.Tensor, []*tensor.Tensor) {
	s := ad.SumAll(ad.Mul(f.out, ad.Const(gradOut.Reshape(f.out.Value.Shape...))))
	wrt := append(append([]*ad.Node(nil), f.params...), f.in)
	gs := ad.GradValues(s, wrt)
	return gs[len(gs)-1], gs[:len(gs)-1]
}

// flatRange maps a layer to its slice of the flat parameter list.
type flatRange struct{ start, end int }

func flatRanges(net *nn.Network) []flatRange {
	out := make([]flatRange, net.NumLayers())
	k := 0
	for i, layer := range net.Layers {
		n := len(layer.Params())
		out[i] = flatRange{start: k, end: k + n}
		k += n
	}
	return out
}

// FlatIndicesForLayers expands 0-based layer indices to flat parameter
// indices (the granularity of the FL protocol's protection sets).
func FlatIndicesForLayers(net *nn.Network, layers []int) map[int]bool {
	fr := flatRanges(net)
	out := make(map[int]bool)
	for _, l := range layers {
		for k := fr[l].start; k < fr[l].end; k++ {
			out[k] = true
		}
	}
	return out
}
