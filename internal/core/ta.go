package core

import (
	"errors"
	"fmt"
	"time"

	ad "github.com/gradsec/gradsec/internal/autodiff"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// Request/response types crossing the world boundary. Inputs may carry
// normal-world tensors; responses are screened by the device against the
// secure registry.

type incomingWeights struct {
	layer  int
	params []*tensor.Tensor
}

type beginCycleReq struct {
	cycle     int
	protected []int
	batch     int
	incoming  []incomingWeights
}

type beginCycleResp struct {
	released []incomingWeights // declassified weights of layers leaving the TEE
}

type forwardReq struct {
	first, last int
	input       *tensor.Tensor
	labels      *tensor.Tensor // set when the run ends at the final layer
	batch       int
}

type forwardResp struct {
	activation *tensor.Tensor // declassified A_last (nil when loss head ran)
	loss       float64
}

type backwardReq struct {
	first, last int
	gradOut     *tensor.Tensor // nil when the run owns the loss head
}

type backwardResp struct {
	gradIn *tensor.Tensor // nil when the run starts at layer 0
}

type endCycleReq struct {
	flat []flatRange
}

type endCycleResp struct {
	sealed []byte
}

// gradsecTA is the trusted application: it owns the authoritative weights
// of protected layers and performs every computation that touches them.
type gradsecTA struct {
	uuid    tz.UUID
	version string
	net     *nn.Network // secure clone of the full architecture
	lr      float64

	protected  map[int]bool
	batch      int
	regions    map[int][]*tz.Region
	channel    *tz.Channel
	cycleStart map[int][]*tensor.Tensor
	fwdCache   map[int]*layerFwd
	lossGrad   *tensor.Tensor // δ at logits when the TA owns the loss head
}

// UUID implements tz.TrustedApp.
func (g *gradsecTA) UUID() tz.UUID { return g.uuid }

// Version implements tz.TrustedApp.
func (g *gradsecTA) Version() string { return g.version }

// OpenSession implements tz.TrustedApp.
func (g *gradsecTA) OpenSession(env *tz.TAEnv) (any, error) {
	g.protected = make(map[int]bool)
	g.regions = make(map[int][]*tz.Region)
	g.cycleStart = make(map[int][]*tensor.Tensor)
	g.fwdCache = make(map[int]*layerFwd)
	return g, nil
}

// CloseSession implements tz.TrustedApp.
func (g *gradsecTA) CloseSession(env *tz.TAEnv, state any) {
	for _, regs := range g.regions {
		for _, r := range regs {
			_ = env.Mem.Free(r)
		}
	}
	g.regions = make(map[int][]*tz.Region)
}

// Invoke implements tz.TrustedApp.
func (g *gradsecTA) Invoke(env *tz.TAEnv, _ any, cmd uint32, req any) (any, error) {
	switch cmd {
	case cmdOpenChannel:
		return g.openChannel(req)
	case cmdLoadSealedWeights:
		return nil, g.loadSealedWeights(req)
	case cmdBeginCycle:
		return g.beginCycle(env, req)
	case cmdForwardRun:
		return g.forwardRun(env, req)
	case cmdBackwardRun:
		return g.backwardRun(env, req)
	case cmdEndCycle:
		return g.endCycle(env, req)
	default:
		return nil, fmt.Errorf("core: gradsec TA: unknown command %d", cmd)
	}
}

func (g *gradsecTA) openChannel(req any) ([]byte, error) {
	serverPub, ok := req.([]byte)
	if !ok {
		return nil, errors.New("core: openChannel expects the server public key")
	}
	offer, err := tz.NewChannelOffer()
	if err != nil {
		return nil, err
	}
	ch, err := offer.Establish(serverPub, false)
	if err != nil {
		return nil, err
	}
	g.channel = ch
	return offer.Public, nil
}

func (g *gradsecTA) loadSealedWeights(req any) error {
	sealed, ok := req.([]byte)
	if !ok {
		return errors.New("core: loadSealedWeights expects a sealed blob")
	}
	if g.channel == nil {
		return errors.New("core: no trusted channel established")
	}
	blob, err := g.channel.Open(sealed)
	if err != nil {
		return err
	}
	idx, ts, err := fl.ParseSealedUpdate(blob)
	if err != nil {
		return err
	}
	fr := flatRanges(g.net)
	for j, flatIdx := range idx {
		layer, pos, err := locateFlat(fr, flatIdx)
		if err != nil {
			return err
		}
		p := g.net.Layers[layer].Params()[pos]
		if !p.SameShape(ts[j]) {
			return fmt.Errorf("core: sealed weight %d shape %v, want %v", flatIdx, ts[j].Shape, p.Shape)
		}
		copy(p.Data, ts[j].Data)
	}
	return nil
}

func locateFlat(fr []flatRange, idx int) (layer, pos int, err error) {
	for l, r := range fr {
		if idx >= r.start && idx < r.end {
			return l, idx - r.start, nil
		}
	}
	return 0, 0, fmt.Errorf("core: flat index %d out of range", idx)
}

func (g *gradsecTA) beginCycle(env *tz.TAEnv, req any) (*beginCycleResp, error) {
	r, ok := req.(*beginCycleReq)
	if !ok {
		return nil, errors.New("core: beginCycle expects *beginCycleReq")
	}
	newProt := make(map[int]bool, len(r.protected))
	for _, l := range r.protected {
		newProt[l] = true
	}
	resp := &beginCycleResp{}

	// Declassify layers leaving the enclave and free their regions.
	for l := range g.protected {
		if newProt[l] {
			continue
		}
		var out []*tensor.Tensor
		for _, p := range g.net.Layers[l].Params() {
			c := p.Clone() // fresh tensor, never registered secure
			out = append(out, c)
		}
		resp.released = append(resp.released, incomingWeights{layer: l, params: out})
		for _, reg := range g.regions[l] {
			if err := env.Mem.Free(reg); err != nil {
				return nil, err
			}
		}
		delete(g.regions, l)
		for _, p := range g.net.Layers[l].Params() {
			env.Mem.UnregisterTensor(p)
		}
	}

	// Install weights for newly protected layers.
	for _, in := range r.incoming {
		ps := g.net.Layers[in.layer].Params()
		if len(in.params) != len(ps) {
			return nil, fmt.Errorf("core: layer %d: %d param tensors, want %d", in.layer, len(in.params), len(ps))
		}
		for j, p := range ps {
			if !p.SameShape(in.params[j]) {
				return nil, fmt.Errorf("core: layer %d param %d shape mismatch", in.layer, j)
			}
			copy(p.Data, in.params[j].Data)
		}
	}

	// Allocate enclave regions for newly protected layers and charge the
	// trusted-I/O-path provisioning time.
	for _, l := range r.protected {
		if g.protected[l] {
			continue
		}
		layer := g.net.Layers[l]
		size := TEEMemoryBytes(layer, r.batch, env.Cost.BytesPerCell)
		reg, err := env.Mem.Alloc(fmt.Sprintf("gradsec/L%d", l+1), size)
		if err != nil {
			return nil, err
		}
		g.regions[l] = []*tz.Region{reg}
		for _, p := range layer.Params() {
			env.Mem.RegisterTensor(p, fmt.Sprintf("gradsec/L%d/params", l+1))
		}
		env.Clock.ChargeAlloc(env.Cost.AllocTime(layer.ParamCount()))
	}

	g.protected = newProt
	g.batch = r.batch
	// Snapshot protected weights for the cycle update.
	g.cycleStart = make(map[int][]*tensor.Tensor)
	for l := range newProt {
		var ws []*tensor.Tensor
		for _, p := range g.net.Layers[l].Params() {
			ws = append(ws, p.Clone())
		}
		g.cycleStart[l] = ws
	}
	return resp, nil
}

func (g *gradsecTA) forwardRun(env *tz.TAEnv, req any) (*forwardResp, error) {
	r, ok := req.(*forwardReq)
	if !ok {
		return nil, errors.New("core: forwardRun expects *forwardReq")
	}
	cur := r.input
	for l := r.first; l <= r.last; l++ {
		if !g.protected[l] {
			return nil, fmt.Errorf("core: forwardRun over unprotected layer %d", l)
		}
		layer := g.net.Layers[l]
		f := buildLayerFwd(layer, cur, r.batch)
		g.fwdCache[l] = f
		cur = f.out.Value
		env.Clock.ChargeKernel(env.Cost.SecureCompute(env.Cost.LayerCompute(LayerMACs(layer)*int64(r.batch), false)))
	}
	resp := &forwardResp{}
	if r.labels != nil {
		logits := ad.Var(cur)
		lossNode := ad.SoftmaxCrossEntropy(logits, r.labels)
		resp.loss = ad.Scalar(lossNode)
		g.lossGrad = ad.GradValues(lossNode, []*ad.Node{logits})[0]
	} else {
		// A_last feeds the next (unprotected) layer: deliberately
		// declassified as a fresh tensor.
		resp.activation = cur.Clone()
	}
	return resp, nil
}

func (g *gradsecTA) backwardRun(env *tz.TAEnv, req any) (*backwardResp, error) {
	r, ok := req.(*backwardReq)
	if !ok {
		return nil, errors.New("core: backwardRun expects *backwardReq")
	}
	gradOut := r.gradOut
	if gradOut == nil {
		if g.lossGrad == nil {
			return nil, errors.New("core: backwardRun without gradient or loss head")
		}
		gradOut = g.lossGrad
		g.lossGrad = nil
	}
	for l := r.last; l >= r.first; l-- {
		f := g.fwdCache[l]
		if f == nil {
			return nil, fmt.Errorf("core: backwardRun before forwardRun for layer %d", l)
		}
		layer := g.net.Layers[l]
		gradIn, paramGrads := backwardLayer(f, gradOut)
		d := env.Cost.LayerCompute(LayerMACs(layer)*int64(g.batch), false)
		env.Clock.ChargeKernel(env.Cost.SecureCompute(time.Duration(float64(d) * (env.Cost.BackwardFactor - 1))))
		for j, p := range layer.Params() {
			tensor.AxPy(-g.lr, paramGrads[j], p)
		}
		gradOut = gradIn
		delete(g.fwdCache, l)
	}
	resp := &backwardResp{}
	if r.first > 0 {
		// δ_{first-1} feeds the preceding unprotected layer's backward:
		// deliberately declassified.
		resp.gradIn = gradOut.Clone()
	}
	return resp, nil
}

func (g *gradsecTA) endCycle(env *tz.TAEnv, req any) (*endCycleResp, error) {
	r, ok := req.(*endCycleReq)
	if !ok {
		return nil, errors.New("core: endCycle expects *endCycleReq")
	}
	if len(g.protected) == 0 {
		return &endCycleResp{}, nil
	}
	if g.channel == nil {
		return nil, errors.New("core: protected updates require a trusted channel")
	}
	var idx []int
	var ts []*tensor.Tensor
	for l, start := range g.cycleStart {
		for j, p := range g.net.Layers[l].Params() {
			idx = append(idx, r.flat[l].start+j)
			ts = append(ts, tensor.Sub(p, start[j]))
		}
	}
	sealed := g.channel.Seal(fl.SealedUpdate(idx, ts))
	return &endCycleResp{sealed: sealed}, nil
}
