// Package core implements GradSec, the paper's contribution: selective
// TEE protection of neural-network layers during federated-learning local
// training.
//
// A Plan describes which layers are shielded. Static plans fix an
// arbitrary — possibly non-successive — layer set for all FL cycles (the
// key capability DarkneTZ lacks; §7.1). Dynamic plans slide a moving
// window of sizeMW successive layers across the model over cycles,
// following the probability distribution VMW (§7.2). The DarkneTZ
// baseline is a static plan constrained to one contiguous slice.
//
// The SecureTrainer executes local training with the protected layers'
// weights, activations, pre-activations, deltas and gradients confined to
// the TrustZone simulator's secure world, closing both gradient-leakage
// flaws of §6. The OverheadSim reproduces the paper's cost accounting
// (Table 6) from the same layer metadata.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/gradsec/gradsec/internal/wire"
)

// Mode selects between GradSec's two execution modes.
type Mode int

// Plan modes. ModeDarkneTZ marks the baseline: semantically a static plan
// whose layer set must be contiguous.
const (
	ModeStatic Mode = iota + 1
	ModeDynamic
	ModeDarkneTZ
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	case ModeDarkneTZ:
		return "darknetz"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Plan validation errors.
var (
	ErrEmptyPlan      = errors.New("core: plan protects no layers")
	ErrLayerRange     = errors.New("core: protected layer out of range")
	ErrNotContiguous  = errors.New("core: DarkneTZ requires successive layers")
	ErrBadVMW         = errors.New("core: VMW must be non-negative and sum to 1")
	ErrBadWindowSize  = errors.New("core: invalid moving-window size")
	ErrVMWLength      = errors.New("core: VMW length must be numLayers-sizeMW+1")
	ErrDuplicateLayer = errors.New("core: duplicate protected layer")
)

// Plan describes a protection schedule over 0-based layer indices.
type Plan struct {
	Mode Mode

	// Layers is the protected set for static/DarkneTZ plans, sorted.
	Layers []int

	// SizeMW and VMW configure dynamic plans. VMW[k] is the fraction of
	// FL cycles the moving window spends at position k (protecting layers
	// k..k+SizeMW-1); its length must be numLayers−SizeMW+1.
	SizeMW int
	VMW    []float64
}

// NewStaticPlan protects an arbitrary set of layers for every cycle —
// non-successive sets are explicitly allowed (GradSec's key capability).
func NewStaticPlan(layers ...int) (*Plan, error) {
	set, err := normalizeLayers(layers)
	if err != nil {
		return nil, err
	}
	return &Plan{Mode: ModeStatic, Layers: set}, nil
}

// NewDarkneTZPlan builds the baseline plan protecting the contiguous
// slice [first, last] (inclusive). It fails if the slice is empty.
func NewDarkneTZPlan(first, last int) (*Plan, error) {
	if first < 0 || last < first {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrNotContiguous, first, last)
	}
	layers := make([]int, 0, last-first+1)
	for l := first; l <= last; l++ {
		layers = append(layers, l)
	}
	return &Plan{Mode: ModeDarkneTZ, Layers: layers}, nil
}

// NewDynamicPlan builds a moving-window plan. VMW must be a probability
// vector; its length fixes the number of window positions and therefore
// implies the model's layer count (len(VMW)+sizeMW−1).
func NewDynamicPlan(sizeMW int, vmw []float64) (*Plan, error) {
	if sizeMW < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadWindowSize, sizeMW)
	}
	if len(vmw) == 0 {
		return nil, ErrBadVMW
	}
	sum := 0.0
	for _, p := range vmw {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("%w: entry %v", ErrBadVMW, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: sum %v", ErrBadVMW, sum)
	}
	return &Plan{Mode: ModeDynamic, SizeMW: sizeMW, VMW: append([]float64(nil), vmw...)}, nil
}

// UniformDynamicPlan is the paper's "round-robin" configuration: a moving
// window visiting all positions of a numLayers-layer model equally often.
func UniformDynamicPlan(sizeMW, numLayers int) (*Plan, error) {
	n := WindowPositions(numLayers, sizeMW)
	if n < 1 {
		return nil, fmt.Errorf("%w: size %d in %d layers", ErrBadWindowSize, sizeMW, numLayers)
	}
	vmw := make([]float64, n)
	for i := range vmw {
		vmw[i] = 1 / float64(n)
	}
	return NewDynamicPlan(sizeMW, vmw)
}

// WindowPositions returns the number of possible moving-window locations:
// numLayers − sizeMW + 1 (§7.2).
func WindowPositions(numLayers, sizeMW int) int { return numLayers - sizeMW + 1 }

func normalizeLayers(layers []int) ([]int, error) {
	if len(layers) == 0 {
		return nil, ErrEmptyPlan
	}
	set := append([]int(nil), layers...)
	sort.Ints(set)
	for i, l := range set {
		if l < 0 {
			return nil, fmt.Errorf("%w: %d", ErrLayerRange, l)
		}
		if i > 0 && set[i-1] == l {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateLayer, l)
		}
	}
	return set, nil
}

// Validate checks the plan against a concrete model size.
func (p *Plan) Validate(numLayers int) error {
	switch p.Mode {
	case ModeStatic, ModeDarkneTZ:
		if len(p.Layers) == 0 {
			return ErrEmptyPlan
		}
		for _, l := range p.Layers {
			if l < 0 || l >= numLayers {
				return fmt.Errorf("%w: %d of %d", ErrLayerRange, l, numLayers)
			}
		}
		if p.Mode == ModeDarkneTZ {
			for i := 1; i < len(p.Layers); i++ {
				if p.Layers[i] != p.Layers[i-1]+1 {
					return fmt.Errorf("%w: %v", ErrNotContiguous, p.Layers)
				}
			}
		}
		return nil
	case ModeDynamic:
		if p.SizeMW < 1 || p.SizeMW > numLayers {
			return fmt.Errorf("%w: %d of %d layers", ErrBadWindowSize, p.SizeMW, numLayers)
		}
		if len(p.VMW) != WindowPositions(numLayers, p.SizeMW) {
			return fmt.Errorf("%w: got %d, want %d", ErrVMWLength, len(p.VMW), WindowPositions(numLayers, p.SizeMW))
		}
		return nil
	default:
		return fmt.Errorf("core: unknown plan mode %d", int(p.Mode))
	}
}

// ProtectedLayers returns the 0-based layers shielded during the given
// cycle. Dynamic plans use a deterministic largest-remainder schedule:
// over any horizon of C cycles, position k is used ≈VMW[k]·C times, with
// positions interleaved as evenly as possible (the paper fixes the
// distribution statically; determinism makes runs reproducible).
func (p *Plan) ProtectedLayers(cycle, numLayers int) []int {
	switch p.Mode {
	case ModeStatic, ModeDarkneTZ:
		return append([]int(nil), p.Layers...)
	case ModeDynamic:
		pos := p.WindowPosition(cycle)
		out := make([]int, p.SizeMW)
		for i := range out {
			out[i] = pos + i
		}
		return out
	default:
		return nil
	}
}

// WindowPosition returns the moving-window position used at the given
// cycle (dynamic plans only).
func (p *Plan) WindowPosition(cycle int) int {
	if p.Mode != ModeDynamic {
		return -1
	}
	// Largest-remainder (Bresenham-style) sequencing: at each cycle pick
	// the position with the greatest deficit VMW[k]·(t+1) − used[k].
	used := make([]int, len(p.VMW))
	pos := 0
	for t := 0; t <= cycle; t++ {
		best, bestDeficit := -1, math.Inf(-1)
		for k, share := range p.VMW {
			deficit := share*float64(t+1) - float64(used[k])
			if deficit > bestDeficit+1e-12 {
				best, bestDeficit = k, deficit
			}
		}
		pos = best
		used[best]++
	}
	return pos
}

// Encode serialises the plan to the opaque blob carried by the FL
// protocol's ModelDown message.
func (p *Plan) Encode() []byte {
	w := wire.NewWriter()
	w.Uvarint(uint64(p.Mode))
	w.Uvarint(uint64(len(p.Layers)))
	for _, l := range p.Layers {
		w.Uvarint(uint64(l))
	}
	w.Uvarint(uint64(p.SizeMW))
	w.Float64s(p.VMW)
	return w.Bytes()
}

// DecodePlan reconstructs a plan encoded with Encode.
func DecodePlan(blob []byte) (*Plan, error) {
	r := wire.NewReader(blob)
	p := &Plan{Mode: Mode(r.Uvarint())}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > len(blob) {
		return nil, fmt.Errorf("core: plan claims %d layers", n)
	}
	for i := 0; i < n; i++ {
		p.Layers = append(p.Layers, int(r.Uvarint()))
	}
	p.SizeMW = int(r.Uvarint())
	p.VMW = r.Float64s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(p.VMW) == 0 {
		p.VMW = nil
	}
	return p, nil
}

// String renders the plan using the paper's 1-based layer naming.
func (p *Plan) String() string {
	switch p.Mode {
	case ModeStatic, ModeDarkneTZ:
		s := p.Mode.String() + "["
		for i, l := range p.Layers {
			if i > 0 {
				s += "+"
			}
			s += fmt.Sprintf("L%d", l+1)
		}
		return s + "]"
	case ModeDynamic:
		return fmt.Sprintf("dynamic[MW=%d VMW=%v]", p.SizeMW, p.VMW)
	default:
		return "invalid-plan"
	}
}
