package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/nn"
)

func lenet(t testing.TB) *nn.Network {
	t.Helper()
	return nn.NewLeNet5(rand.New(rand.NewSource(1)), nn.ActReLU)
}

func TestLayerMACsLeNet(t *testing.T) {
	net := lenet(t)
	// L1–L4 each: out(16·16 or 8·8)·filters·C·5·5 = 230400; L5: 768·100.
	want := []int64{230400, 230400, 230400, 230400, 76800}
	for i, layer := range net.Layers {
		if got := LayerMACs(layer); got != want[i] {
			t.Errorf("L%d MACs = %d, want %d", i+1, got, want[i])
		}
	}
}

// Table 6's per-layer TEE memory (MB): L1 1.127, L2 0.565, L3/L4 0.286,
// L5 0.704. Our analytic model must land within ~15% of each.
func TestTEEMemoryMatchesTable6(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)
	paperMB := []float64{1.127, 0.565, 0.286, 0.286, 0.704}
	for i := range net.Layers {
		gotMB := float64(sim.TEEMemory([]int{i})) / 1e6
		if rel := math.Abs(gotMB-paperMB[i]) / paperMB[i]; rel > 0.15 {
			t.Errorf("L%d TEE memory = %.3f MB, paper %.3f MB (rel err %.0f%%)", i+1, gotMB, paperMB[i], rel*100)
		}
	}
	// Combined configurations are sums (as in the paper): L2+L5 = 1.269.
	combined := float64(sim.TEEMemory([]int{1, 4})) / 1e6
	if math.Abs(combined-1.269)/1.269 > 0.15 {
		t.Errorf("L2+L5 memory = %.3f MB, paper 1.269 MB", combined)
	}
}

// Table 6's training-time rows (user+kernel+alloc seconds). The cost
// model is calibrated, so the totals must track the paper within
// tolerance (DESIGN.md §4.3 documents the known L1 deviation).
func TestCycleCostMatchesTable6(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)

	baseline := sim.CycleCost(nil)
	if math.Abs(baseline.User.Seconds()-2.191) > 0.15 {
		t.Errorf("baseline user = %.3fs, paper 2.191s", baseline.User.Seconds())
	}
	if math.Abs(baseline.Kernel.Seconds()-0.021) > 0.01 {
		t.Errorf("baseline kernel = %.3fs, paper 0.021s", baseline.Kernel.Seconds())
	}

	cases := []struct {
		name      string
		protected []int
		wantTotal float64 // paper user+kernel+alloc
		tol       float64
	}{
		{"L2", []int{1}, 1.672 + 0.652 + 0.34, 0.35},
		{"L3", []int{2}, 1.696 + 0.674 + 0.34, 0.35},
		{"L5", []int{4}, 2.044 + 0.187 + 4.68, 0.55},
		{"L2+L5 grouped", []int{1, 4}, 1.561 + 0.846 + 5.02, 0.75},
		{"MW L1+L2", []int{0, 1}, 1.323 + 1.331 + 0.43, 0.55},
		{"DarkneTZ L2..L5", []int{1, 2, 3, 4}, 0.985 + 1.420 + 5.7, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := sim.CycleCost(tc.protected).Total().Seconds()
			if math.Abs(got-tc.wantTotal) > tc.tol {
				t.Errorf("total = %.3fs, paper %.3fs (±%.2f)", got, tc.wantTotal, tc.tol)
			}
		})
	}
}

// The headline Table 1 claims: static GradSec (L2+L5) beats DarkneTZ
// (L2..L5) on both time and memory; dynamic GradSec (MW=2, best VMW)
// saves ≈56% training time.
func TestGradSecBeatsDarkneTZ(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)

	gradsec := sim.CycleCost([]int{1, 4}).Total()
	darknetz := sim.CycleCost([]int{1, 2, 3, 4}).Total()
	if gradsec >= darknetz {
		t.Fatalf("static GradSec %.3fs must beat DarkneTZ %.3fs", gradsec.Seconds(), darknetz.Seconds())
	}
	timeGain := 1 - gradsec.Seconds()/darknetz.Seconds()
	if timeGain < 0.05 || timeGain > 0.25 {
		t.Errorf("grouped-protection time gain = %.1f%%, paper ≈8.3%%", timeGain*100)
	}

	memGain := 1 - float64(sim.TEEMemory([]int{1, 4}))/float64(sim.TEEMemory([]int{1, 2, 3, 4}))
	if math.Abs(memGain-0.30) > 0.1 {
		t.Errorf("memory gain = %.1f%%, paper ≈30%%", memGain*100)
	}

	plan := mustDynamic(t, 2, []float64{0.2, 0.1, 0.6, 0.1})
	dyn, err := sim.Dynamic(plan)
	if err != nil {
		t.Fatal(err)
	}
	dynGain := 1 - dyn.Average.Total().Seconds()/darknetz.Seconds()
	if math.Abs(dynGain-0.567) > 0.12 {
		t.Errorf("dynamic time gain = %.1f%%, paper ≈56.7%%", dynGain*100)
	}
	dynMemGain := 1 - float64(dyn.MaxMemory)/float64(sim.TEEMemory([]int{1, 2, 3, 4}))
	if math.Abs(dynMemGain-0.08) > 0.08 {
		t.Errorf("dynamic memory gain = %.1f%%, paper ≈8%%", dynMemGain*100)
	}
}

func TestDynamicAverageIsWeighted(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)
	plan := mustDynamic(t, 2, []float64{1, 0, 0, 0})
	dyn, err := sim.Dynamic(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Degenerate VMW: average equals the single position's cost.
	single := sim.CycleCost([]int{0, 1})
	if dyn.Average.Total() != single.Total() {
		t.Fatalf("degenerate average %.3fs != position cost %.3fs", dyn.Average.Total().Seconds(), single.Total().Seconds())
	}
	if dyn.MaxMemory != sim.TEEMemory([]int{0, 1}) {
		t.Fatal("max memory mismatch")
	}
}

func TestDynamicRejectsWrongMode(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)
	if _, err := sim.Dynamic(mustStatic(t, 1)); err == nil {
		t.Fatal("Dynamic on static plan must fail")
	}
	bad := mustDynamic(t, 2, []float64{0.5, 0.5}) // wrong length for 5 layers
	if _, err := sim.Dynamic(bad); err == nil {
		t.Fatal("invalid VMW length must fail")
	}
}

// Non-successive sets pay more world switches than their contiguous hull.
func TestScatteredProtectionCostsMoreSMC(t *testing.T) {
	net := lenet(t)
	sim := NewOverheadSim(net)
	scattered := sim.CycleCost([]int{0, 2, 4})
	// Compare SMC overhead indirectly: same layers protected but
	// contiguous (hypothetical) — compute kernel difference.
	contiguous := sim.CycleCost([]int{0, 1, 2})
	_ = contiguous
	runsScattered := len(contiguousRuns([]int{0, 2, 4}))
	runsContig := len(contiguousRuns([]int{0, 1, 2}))
	if runsScattered != 3 || runsContig != 1 {
		t.Fatalf("runs = %d/%d", runsScattered, runsContig)
	}
	if scattered.Kernel <= 0 {
		t.Fatal("scattered kernel time must be positive")
	}
}
