package core

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// Planner adapts a GradSec plan to the FL server's RoundPlanner: layer
// indices expand to flat parameter indices and the plan itself travels to
// clients as an encoded blob.
type Planner struct {
	Plan      *Plan
	NumLayers int
	// Flat maps layers to flat indices; built by NewPlanner.
	flat func(layers []int) map[int]bool
}

// NewPlanner builds a planner for the given network structure.
func NewPlanner(plan *Plan, netLike interface{ NumLayers() int }, flatten func(layers []int) map[int]bool) *Planner {
	return &Planner{Plan: plan, NumLayers: netLike.NumLayers(), flat: flatten}
}

// PlanRound implements fl.RoundPlanner.
func (p *Planner) PlanRound(round int) (map[int]bool, []byte) {
	layers := p.Plan.ProtectedLayers(round, p.NumLayers)
	return p.flat(layers), p.Plan.Encode()
}

// GradSecClient implements fl.Trainer on top of a SecureTrainer: the
// device side of the paper's Figure 2 workflow.
type GradSecClient struct {
	trainer *SecureTrainer
	id      string
}

// NewGradSecClient wraps a secure trainer as an FL client trainer.
func NewGradSecClient(id string, trainer *SecureTrainer) *GradSecClient {
	return &GradSecClient{trainer: trainer, id: id}
}

// DeviceID implements fl.Trainer.
func (c *GradSecClient) DeviceID() string { return c.id }

// HasTEE implements fl.Trainer.
func (c *GradSecClient) HasTEE() bool { return true }

// Attest implements fl.Trainer.
func (c *GradSecClient) Attest(nonce []byte) (tz.Quote, error) {
	return c.trainer.Device().Attest(c.trainer.TAUUID(), nonce)
}

// OpenChannel implements fl.Trainer.
func (c *GradSecClient) OpenChannel(serverPub []byte) ([]byte, error) {
	return c.trainer.OpenServerChannel(serverPub)
}

// TrainRound implements fl.Trainer: install the distributed weights
// (plain ones directly, protected ones through the TA), run one secure
// cycle, and return the split update.
func (c *GradSecClient) TrainRound(round int, plain []*tensor.Tensor, sealed []byte, planBlob []byte) ([]*tensor.Tensor, []byte, error) {
	// Install plain weights into the normal-world view.
	flat := c.trainer.net.FlatParams()
	if len(plain) != len(flat) {
		return nil, nil, fmt.Errorf("core: server sent %d tensors, model has %d", len(plain), len(flat))
	}
	for i, p := range plain {
		if p == nil {
			continue
		}
		if !p.SameShape(flat[i]) {
			return nil, nil, fmt.Errorf("core: distributed tensor %d shape %v, want %v", i, p.Shape, flat[i].Shape)
		}
		copy(flat[i].Data, p.Data)
	}
	// Adopt the server's plan for this round.
	if len(planBlob) > 0 {
		plan, err := DecodePlan(planBlob)
		if err != nil {
			return nil, nil, fmt.Errorf("core: decoding plan: %w", err)
		}
		if err := plan.Validate(c.trainer.net.NumLayers()); err != nil {
			return nil, nil, fmt.Errorf("core: validating plan: %w", err)
		}
		c.trainer.plan = plan
	}
	// Load protected weights into the TA first; RunCycle's beginCycle
	// must then treat those layers' TA copies as authoritative.
	if len(sealed) > 0 {
		if err := c.trainer.LoadSealedWeights(sealed); err != nil {
			return nil, nil, err
		}
		for i, p := range plain {
			if p != nil {
				continue
			}
			layer, _, err := locateFlat(flatRanges(c.trainer.net), i)
			if err != nil {
				return nil, nil, err
			}
			c.trainer.taAuthoritative[layer] = true
		}
	}
	res, err := c.trainer.RunCycle(round)
	if err != nil {
		return nil, nil, err
	}
	return res.Observable, res.SealedUpdate, nil
}

// LastResultHook exposes per-cycle results for observation in examples
// and tests (not part of the fl.Trainer contract).
func (c *GradSecClient) Trainer() *SecureTrainer { return c.trainer }

// ServerView stands in for the trusted FL server in standalone (non
// networked) experiments: it owns the server end of the trusted I/O path
// and can unseal protected updates — exactly what the client-side
// attacker cannot do.
type ServerView struct {
	channel *tz.Channel
}

// EstablishServerView creates the server end of the TIOP and connects the
// trainer's TA to it.
func EstablishServerView(t *SecureTrainer) (*ServerView, error) {
	offer, err := tz.NewChannelOffer()
	if err != nil {
		return nil, err
	}
	taPub, err := t.OpenServerChannel(offer.Public)
	if err != nil {
		return nil, err
	}
	ch, err := offer.Establish(taPub, true)
	if err != nil {
		return nil, err
	}
	return &ServerView{channel: ch}, nil
}

// UnsealUpdate recovers the protected updates from a cycle result,
// returning flat-index/tensor pairs.
func (v *ServerView) UnsealUpdate(sealed []byte) (map[int]*tensor.Tensor, error) {
	if len(sealed) == 0 {
		return nil, nil
	}
	blob, err := v.channel.Open(sealed)
	if err != nil {
		return nil, err
	}
	idx, ts, err := fl.ParseSealedUpdate(blob)
	if err != nil {
		return nil, err
	}
	out := make(map[int]*tensor.Tensor, len(idx))
	for i, id := range idx {
		out[id] = ts[i]
	}
	return out, nil
}

// FullUpdate merges a cycle's observable updates with the unsealed
// protected ones into the complete flat update (the server's view).
func (v *ServerView) FullUpdate(res *CycleResult) ([]*tensor.Tensor, error) {
	sealedParts, err := v.UnsealUpdate(res.SealedUpdate)
	if err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(res.Observable))
	copy(out, res.Observable)
	for id, t := range sealedParts {
		if id < 0 || id >= len(out) {
			return nil, fmt.Errorf("core: sealed index %d out of range", id)
		}
		out[id] = t
	}
	return out, nil
}
