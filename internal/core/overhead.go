package core

import (
	"fmt"
	"time"

	"github.com/gradsec/gradsec/internal/nn"
	"github.com/gradsec/gradsec/internal/simclock"
)

// LayerMACs returns the multiply-accumulate count of one forward pass of
// the layer for a single sample: the cost driver of the overhead model.
func LayerMACs(l nn.Layer) int64 {
	switch t := l.(type) {
	case *nn.Conv2D:
		oh, ow := t.ConvOutHW()
		return int64(oh) * int64(ow) * int64(t.Filters) * int64(t.InC) * int64(t.KH) * int64(t.KW)
	case *nn.Dense:
		return int64(t.In) * int64(t.Out)
	default:
		panic(fmt.Sprintf("core: unknown layer type %T", l))
	}
}

// TEEMemoryBytes returns the secure-memory footprint of protecting one
// layer: weights and their gradients (2·P) plus the per-sample buffers
// the paper's Figure 3 places in the enclave — the input A_{l−1}, the
// pre-activation Z_l and the error δ_l (DESIGN.md §4.3; reproduces the
// paper's per-layer megabytes within ≈10%).
func TEEMemoryBytes(l nn.Layer, batch, bytesPerCell int) int {
	return bytesPerCell * (2*l.ParamCount() + batch*(l.InCells()+2*l.OutCells()))
}

// contiguousRuns splits a sorted protected set into runs of successive
// layers; each run costs one TA invocation per pass (the SMC-crossing
// advantage contiguous protection has over scattered sets).
func contiguousRuns(protected []int) [][]int {
	var runs [][]int
	for i := 0; i < len(protected); {
		j := i + 1
		for j < len(protected) && protected[j] == protected[j-1]+1 {
			j++
		}
		runs = append(runs, protected[i:j])
		i = j
	}
	return runs
}

// OverheadSim reproduces the paper's Table 6 accounting analytically from
// layer metadata — deterministic and machine-independent (DESIGN.md §1).
type OverheadSim struct {
	// Net supplies layer geometry (weights are not touched).
	Net *nn.Network
	// Cost is the device cost model.
	Cost simclock.CostModel
	// Batch is the training batch size (the paper uses 32).
	Batch int
	// Iterations is the number of local batch iterations per FL cycle
	// (10 in the calibration fit).
	Iterations int
}

// NewOverheadSim returns a simulator with the paper's defaults: Pi-3B+
// cost model, batch 32, 10 iterations per cycle.
func NewOverheadSim(net *nn.Network) *OverheadSim {
	return &OverheadSim{Net: net, Cost: simclock.Pi3B(), Batch: 32, Iterations: 10}
}

// CycleCost returns the simulated one-cycle training-time breakdown for
// the given protected layer set (empty set = baseline).
func (s *OverheadSim) CycleCost(protected []int) simclock.Breakdown {
	prot := make(map[int]bool, len(protected))
	for _, l := range protected {
		prot[l] = true
	}
	var b simclock.Breakdown
	b.User = s.Cost.CycleUserOverhead
	b.Kernel = s.Cost.CycleKernelOverhead
	for i, layer := range s.Net.Layers {
		macs := LayerMACs(layer) * int64(s.Batch) * int64(s.Iterations)
		d := s.Cost.LayerCompute(macs, true)
		if prot[i] {
			b.Kernel += s.Cost.SecureCompute(d)
			b.Alloc += s.Cost.AllocTime(layer.ParamCount())
		} else {
			b.User += d
		}
	}
	// World switches: each contiguous protected run costs one TA
	// invocation (2 SMCs) for the forward and one for the backward pass,
	// per iteration.
	runs := len(contiguousRuns(protected))
	b.Kernel += time.Duration(4*runs*s.Iterations) * s.Cost.WorldSwitch
	return b
}

// TEEMemory returns the peak secure-memory bytes of the configuration.
func (s *OverheadSim) TEEMemory(protected []int) int {
	total := 0
	for _, l := range protected {
		total += TEEMemoryBytes(s.Net.Layers[l], s.Batch, s.Cost.BytesPerCell)
	}
	return total
}

// DynamicResult summarises a dynamic plan's simulated overhead the way
// Table 6 reports it.
type DynamicResult struct {
	// PerPosition holds the cycle cost of each window position.
	PerPosition []simclock.Breakdown
	// Average is the VMW-weighted average cycle cost.
	Average simclock.Breakdown
	// MaxMemory is the worst-case secure-memory footprint across
	// positions (the paper's reported "TEE Memory Usage").
	MaxMemory int
	// AvgMemory is the VMW-weighted expected footprint (the paper's
	// parenthetical "AVG=…" value).
	AvgMemory float64
}

// Dynamic simulates every window position of a dynamic plan and the
// VMW-weighted averages.
func (s *OverheadSim) Dynamic(plan *Plan) (DynamicResult, error) {
	n := s.Net.NumLayers()
	if err := plan.Validate(n); err != nil {
		return DynamicResult{}, err
	}
	if plan.Mode != ModeDynamic {
		return DynamicResult{}, fmt.Errorf("core: Dynamic called on %s plan", plan.Mode)
	}
	var res DynamicResult
	for pos, share := range plan.VMW {
		layers := make([]int, plan.SizeMW)
		for i := range layers {
			layers[i] = pos + i
		}
		cost := s.CycleCost(layers)
		mem := s.TEEMemory(layers)
		res.PerPosition = append(res.PerPosition, cost)
		res.Average = res.Average.Add(cost.Scale(share))
		res.AvgMemory += share * float64(mem)
		if mem > res.MaxMemory {
			res.MaxMemory = mem
		}
	}
	return res, nil
}
