package repro

import (
	"fmt"
	"math/rand"

	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/nn"
)

// paperTable6 holds the published per-configuration values: user, kernel
// and allocation seconds plus TEE memory MB (Table 6 of the paper).
type paperRow struct {
	label                    string
	protected                []int // 0-based
	user, kernel, alloc, mem float64
}

var paperTable6Static = []paperRow{
	{"Baseline (no protection)", nil, 2.191, 0.021, 0, 0},
	{"L1", []int{0}, 1.886, 0.738, 0.09, 1.127},
	{"L2 (vs DRIA)", []int{1}, 1.672, 0.652, 0.34, 0.565},
	{"L3", []int{2}, 1.696, 0.674, 0.34, 0.286},
	{"L4", []int{3}, 1.691, 0.673, 0.34, 0.286},
	{"L5 (vs MIA)", []int{4}, 2.044, 0.187, 4.68, 0.704},
	{"L2+L5 (vs DRIA+MIA)", []int{1, 4}, 1.561, 0.846, 5.02, 1.269},
}

var paperTable6MW2 = []paperRow{
	{"MW2 L1+L2", []int{0, 1}, 1.323, 1.331, 0.43, 1.692},
	{"MW2 L2+L3", []int{1, 2}, 1.139, 1.275, 0.68, 0.851},
	{"MW2 L3+L4", []int{2, 3}, 1.134, 1.269, 0.68, 0.572},
	{"MW2 L4+L5", []int{3, 4}, 1.507, 0.808, 5.02, 0.99},
}

// Table6 reproduces the paper's Table 6: CPU time (user+kernel+alloc) and
// TEE memory per protected configuration of LeNet-5 (batch 32), static
// and dynamic, through the calibrated Pi-3B+ cost model.
func Table6() *Table {
	sim := lenetSim()
	t := &Table{
		ID:     "table6",
		Title:  "CPU time and TEE memory of GradSec (LeNet-5, batch 32, Pi-3B+ model)",
		Header: []string{"Configuration", "paper total", "measured total", "paper mem", "measured mem"},
		Notes: []string{
			"totals are user+kernel+alloc seconds for one FL cycle",
			"per-layer user shares deviate for L1 (paper's L1 runs anomalously fast); sums calibrated — DESIGN.md §4.3",
		},
	}
	addRows := func(rows []paperRow) {
		for _, r := range rows {
			cost := sim.CycleCost(r.protected)
			t.Rows = append(t.Rows, []string{
				r.label,
				sec(r.user + r.kernel + r.alloc),
				sec(cost.Total().Seconds()),
				fmt.Sprintf("%.3fMB", r.mem),
				mb(sim.TEEMemory(r.protected)),
			})
		}
	}
	addRows(paperTable6Static)
	addRows(paperTable6MW2)

	// Dynamic averages, exactly the VMW rows the paper reports.
	dynRows := []struct {
		label                string
		size                 int
		vmw                  []float64
		paperTotal, paperMem float64
	}{
		{"AVG MW=2 VMW=[.2 .1 .6 .1] (vs DPIA)", 2, []float64{0.2, 0.1, 0.6, 0.1}, 1.21 + 1.236 + 1.064, 1.692},
		{"AVG MW=3 VMW=[.1 .1 .8]", 3, []float64{0.1, 0.1, 0.8}, 0.964 + 1.517 + 4.467, 1.978},
		{"AVG MW=4 VMW=[.1 .9]", 4, []float64{0.1, 0.9}, 0.904 + 1.553 + 5.241, 2.264},
	}
	for _, d := range dynRows {
		plan, err := core.NewDynamicPlan(d.size, d.vmw)
		if err != nil {
			panic(err)
		}
		res, err := sim.Dynamic(plan)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			d.label,
			sec(d.paperTotal),
			sec(res.Average.Total().Seconds()),
			fmt.Sprintf("%.3fMB", d.paperMem),
			mb(res.MaxMemory),
		})
	}
	return t
}

func lenetSim() *core.OverheadSim {
	return core.NewOverheadSim(nn.NewLeNet5(rand.New(rand.NewSource(1)), nn.ActReLU))
}

// Figure7 reproduces the paper's Figure 7: per-configuration training
// time breakdown and TEE memory bars for static GradSec (panels A, B) and
// dynamic GradSec with sizeMW=2 (panels C, D).
func Figure7() *Table {
	sim := lenetSim()
	t := &Table{
		ID:     "fig7",
		Title:  "Training time breakdown and TEE memory (static panels A/B, dynamic MW=2 panels C/D)",
		Header: []string{"Bars", "user", "kernel", "alloc", "TEE mem"},
	}
	configs := []paperRow{
		{"A/B L1", []int{0}, 0, 0, 0, 0},
		{"A/B L2 (vs DRIA)", []int{1}, 0, 0, 0, 0},
		{"A/B L3", []int{2}, 0, 0, 0, 0},
		{"A/B L4", []int{3}, 0, 0, 0, 0},
		{"A/B L5 (vs MIA)", []int{4}, 0, 0, 0, 0},
		{"A/B L2+L5", []int{1, 4}, 0, 0, 0, 0},
		{"C/D L1+L2", []int{0, 1}, 0, 0, 0, 0},
		{"C/D L2+L3", []int{1, 2}, 0, 0, 0, 0},
		{"C/D L3+L4", []int{2, 3}, 0, 0, 0, 0},
		{"C/D L4+L5", []int{3, 4}, 0, 0, 0, 0},
	}
	for _, cfgRow := range configs {
		cost := sim.CycleCost(cfgRow.protected)
		t.Rows = append(t.Rows, []string{
			cfgRow.label,
			sec(cost.User.Seconds()),
			sec(cost.Kernel.Seconds()),
			sec(cost.Alloc.Seconds()),
			mb(sim.TEEMemory(cfgRow.protected)),
		})
	}
	base := sim.CycleCost(nil)
	t.Notes = append(t.Notes, fmt.Sprintf("baseline (no protection): %s", base))
	return t
}

// Figure8 reproduces the paper's Figure 8: GradSec vs DarkneTZ for
// grouped protection (DRIA+MIA, panels A/B) and for DPIA (dynamic MW=2
// vs DarkneTZ L2..L5, panels C/D).
func Figure8() *Table {
	sim := lenetSim()
	gradsecStatic := sim.CycleCost([]int{1, 4})
	darknetz := sim.CycleCost([]int{1, 2, 3, 4})
	plan, err := core.NewDynamicPlan(2, []float64{0.2, 0.1, 0.6, 0.1})
	if err != nil {
		panic(err)
	}
	dyn, err := sim.Dynamic(plan)
	if err != nil {
		panic(err)
	}
	memGS := sim.TEEMemory([]int{1, 4})
	memDZ := sim.TEEMemory([]int{1, 2, 3, 4})

	gain := func(a, b float64) string { return fmt.Sprintf("%.1f%%", (1-a/b)*100) }
	t := &Table{
		ID:     "fig8",
		Title:  "GradSec vs DarkneTZ (A/B grouped protection, C/D dynamic vs DPIA)",
		Header: []string{"Configuration", "total time", "TEE mem", "gain vs DarkneTZ (time)", "gain (mem)"},
		Notes: []string{
			"paper gains: static −8.3% time / −30% mem; dynamic −56.7% time / −8% mem (Table 1)",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"Static GradSec (L2+L5)", sec(gradsecStatic.Total().Seconds()), mb(memGS),
			gain(gradsecStatic.Total().Seconds(), darknetz.Total().Seconds()),
			gain(float64(memGS), float64(memDZ))},
		[]string{"DarkneTZ (L2+L3+L4+L5)", sec(darknetz.Total().Seconds()), mb(memDZ), "-", "-"},
		[]string{"Dynamic GradSec (MW=2, VMW=[.2 .1 .6 .1])", sec(dyn.Average.Total().Seconds()), mb(dyn.MaxMemory),
			gain(dyn.Average.Total().Seconds(), darknetz.Total().Seconds()),
			gain(float64(dyn.MaxMemory), float64(memDZ))},
	)
	return t
}
