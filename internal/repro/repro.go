// Package repro regenerates every table and figure of the paper's
// evaluation (§8): one function per artefact, each returning a Table that
// prints the paper's published value next to the value measured by this
// reproduction. EXPERIMENTS.md records the comparison.
//
// Scale note (DESIGN.md §1, §3): the overhead artefacts (Table 6,
// Figures 7–8) run the calibrated Pi-3B+ cost model over the *full*
// LeNet-5 of Table 4 and are exact-scale. The security artefacts
// (Figures 5–6, Table 5) run the real attacks against reduced-scale
// models (LeNet-5-mini, AlexNet-S) on synthetic corpora — the laptop-run
// substitution for the authors' CIFAR-100/LFW GPU training — so their
// numbers match the paper in *shape* (which protections defeat which
// attacks), not in absolute value.
package repro

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced artefact.
type Table struct {
	ID     string // e.g. "table6", "fig5a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// All runs every experiment. Names follow the paper's artefact numbering.
func All() []*Table {
	return []*Table{
		Table6(),
		Figure7(),
		Figure8(),
		Figure5a(),
		Figure5b(),
		Figure6a(),
		Figure6b(),
		Table5(),
		Table1(),
		AblationSMC(),
		AblationEnclaveSize(),
	}
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Table {
	switch strings.ToLower(id) {
	case "table1":
		return Table1()
	case "table5":
		return Table5()
	case "table6":
		return Table6()
	case "fig5a", "figure5a":
		return Figure5a()
	case "fig5b", "figure5b":
		return Figure5b()
	case "fig6a", "figure6a":
		return Figure6a()
	case "fig6b", "figure6b":
		return Figure6b()
	case "fig7", "figure7":
		return Figure7()
	case "ablation-smc":
		return AblationSMC()
	case "ablation-enclave":
		return AblationEnclaveSize()
	case "fig8", "figure8":
		return Figure8()
	default:
		return nil
	}
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func sec(v float64) string { return fmt.Sprintf("%.3fs", v) }
func mb(bytes int) string  { return fmt.Sprintf("%.3fMB", float64(bytes)/1e6) }
