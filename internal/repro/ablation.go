package repro

import (
	"fmt"
	"time"
)

// AblationSMC quantifies the design trade-off behind GradSec's headline
// feature: protecting non-successive layers saves the memory and compute
// of the skipped middle layers but pays extra SMC world switches per
// pass. This table sweeps the world-switch cost and reports when the
// scattered set (L2+L5) stops beating its contiguous hull (L2..L5) —
// on the real Pi (≈0.3 ms/switch) the answer is "never", which is why
// the paper's result holds.
func AblationSMC() *Table {
	t := &Table{
		ID:     "ablation-smc",
		Title:  "Ablation: non-successive protection vs SMC world-switch cost (LeNet-5)",
		Header: []string{"world switch", "L2+L5 total", "L2..L5 total", "scattered wins by"},
		Notes: []string{
			"L2+L5 pays 2 TA invocation pairs per pass; the hull pays 1 but shields 2 extra layers",
			"Raspberry Pi 3B+/OP-TEE world switches are ≈0.3 ms — far below the crossover",
		},
	}
	for _, sw := range []time.Duration{
		100 * time.Microsecond,
		300 * time.Microsecond, // calibrated Pi value
		1 * time.Millisecond,
		10 * time.Millisecond,
		50 * time.Millisecond,
		200 * time.Millisecond,
	} {
		sim := lenetSim()
		sim.Cost.WorldSwitch = sw
		scattered := sim.CycleCost([]int{1, 4}).Total()
		hull := sim.CycleCost([]int{1, 2, 3, 4}).Total()
		t.Rows = append(t.Rows, []string{
			sw.String(),
			sec(scattered.Seconds()),
			sec(hull.Seconds()),
			fmt.Sprintf("%+.1f%%", (1-scattered.Seconds()/hull.Seconds())*100),
		})
	}
	return t
}

// AblationEnclaveSize sweeps the secure-memory capacity and reports which
// protection plans still fit — the constraint (§3.3: 3–5 MB of TrustZone
// secure RAM) that motivates selective protection in the first place.
func AblationEnclaveSize() *Table {
	t := &Table{
		ID:     "ablation-enclave",
		Title:  "Ablation: which plans fit a given enclave size (LeNet-5, batch 32)",
		Header: []string{"Plan", "TEE memory", "fits 1MB", "fits 2MB", "fits 4MB"},
	}
	sim := lenetSim()
	plans := []struct {
		label string
		prot  []int
	}{
		{"L2 (vs DRIA)", []int{1}},
		{"L5 (vs MIA)", []int{4}},
		{"GradSec L2+L5", []int{1, 4}},
		{"dynamic MW=2 worst (L1+L2)", []int{0, 1}},
		{"DarkneTZ L2..L5", []int{1, 2, 3, 4}},
		{"all layers", []int{0, 1, 2, 3, 4}},
	}
	fits := func(bytes, capMB int) string {
		if bytes <= capMB<<20 {
			return "yes"
		}
		return "NO"
	}
	for _, p := range plans {
		m := sim.TEEMemory(p.prot)
		t.Rows = append(t.Rows, []string{p.label, mb(m), fits(m, 1), fits(m, 2), fits(m, 4)})
	}
	return t
}
