package repro

import (
	"fmt"
	"math/rand"

	"github.com/gradsec/gradsec/internal/attack"
	"github.com/gradsec/gradsec/internal/core"
	"github.com/gradsec/gradsec/internal/dataset"
	"github.com/gradsec/gradsec/internal/nn"
)

// SecurityScale tunes the security experiments' cost. Benchmarks may
// lower it; the defaults finish in a couple of minutes on a laptop core.
type SecurityScale struct {
	DRIAIters  int
	MIASamples int
	DPIACycles int
}

// DefaultScale is used by the CLI and benchmarks.
var DefaultScale = SecurityScale{DRIAIters: 120, MIASamples: 72, DPIACycles: 140}

// miaGen builds the CIFAR-100-like corpus at mini scale.
func miaGen(seed int64) *dataset.Generator {
	g := dataset.NewGenerator(rand.New(rand.NewSource(seed)), 10, 1, 16, 16, 1.0)
	g.ScaleJitter = 0.5
	g.Diversity = 0.5
	return g
}

// Figure5a reproduces the DRIA sweep on LeNet-5(-mini): ImageLoss of the
// reconstruction for no protection and for each single protected layer,
// for two different images ("person" ≈ a face sample, "table" ≈ a
// procedural object image), as in the paper's Figure 5a.
func Figure5a() *Table {
	t := &Table{
		ID:     "fig5a",
		Title:  "DRIA ImageLoss vs protected layer (LeNet-5-mini, sigmoid, L-BFGS)",
		Header: []string{"Protected", "ImageLoss(person)", "ImageLoss(table)"},
		Notes: []string{
			"paper shape: unprotected ⇒ ImageLoss < 1 (reconstruction succeeds);",
			"protecting an early conv layer (esp. L2) ⇒ loss explodes (attack fails)",
		},
	}
	net := nn.NewLeNet5Mini(rand.New(rand.NewSource(3)), nn.ActSigmoid)
	faces := dataset.NewFaceGenerator(rand.New(rand.NewSource(4)), 10, 1, 16, 16, 0.02)
	things := dataset.NewGenerator(rand.New(rand.NewSource(5)), 10, 1, 16, 16, 0.02)
	person := faces.Sample(rand.New(rand.NewSource(6)), 0, false).Reshape(1, 1, 16, 16)
	table := things.Sample(rand.New(rand.NewSource(7)), 3).Reshape(1, 1, 16, 16)
	y := dataset.OneHot([]int{0}, 10)
	y2 := dataset.OneHot([]int{3}, 10)

	cfg := attack.DRIAConfig{Iterations: DefaultScale.DRIAIters, Seed: 8}
	for layer := 0; layer <= net.NumLayers(); layer++ {
		var prot []int
		label := "None"
		if layer > 0 {
			prot = []int{layer - 1}
			label = fmt.Sprintf("L%d", layer)
		}
		rp := attack.DRIA(net, person, y, prot, cfg)
		rt := attack.DRIA(net, table, y2, prot, cfg)
		t.Rows = append(t.Rows, []string{label, f3(rp.ImageLoss), f3(rt.ImageLoss)})
	}
	return t
}

// Figure5b reproduces the DRIA sweep on AlexNet(-S): the paper could not
// obtain a clear reconstruction even unprotected (max-pooling destroys
// gradient invertibility), and protection makes it strictly worse.
func Figure5b() *Table {
	t := &Table{
		ID:     "fig5b",
		Title:  "DRIA ImageLoss vs protected layer (AlexNet-S, Adam)",
		Header: []string{"Protected", "ImageLoss"},
		Notes: []string{
			"paper: no clear image even unprotected; protection (esp. L1/L2) makes DRIA worse",
			"AlexNet-S is the channel-scaled Table-4 architecture (DESIGN.md substitution)",
		},
	}
	net := nn.NewAlexNetS(rand.New(rand.NewSource(9)), 32, nn.ActSigmoid)
	things := dataset.NewGenerator(rand.New(rand.NewSource(10)), 10, 3, 32, 32, 0.02)
	x := things.Sample(rand.New(rand.NewSource(11)), 2).Reshape(1, 3, 32, 32)
	y := dataset.OneHot([]int{2}, 100)
	cfg := attack.DRIAConfig{Iterations: DefaultScale.DRIAIters / 2, UseAdam: true, AdamLR: 0.1, Seed: 12}
	for layer := 0; layer <= net.NumLayers(); layer++ {
		var prot []int
		label := "None"
		if layer > 0 {
			prot = []int{layer - 1}
			label = fmt.Sprintf("L%d", layer)
		}
		r := attack.DRIA(net, x, y, prot, cfg)
		t.Rows = append(t.Rows, []string{label, f3(r.ImageLoss)})
	}
	return t
}

// Figure6a reproduces the MIA sweep on LeNet-5(-mini): AUC with
// none/L5/L5+L4/…/L5..L2 protected, as in the paper's Figure 6a.
func Figure6a() *Table {
	t := &Table{
		ID:     "fig6a",
		Title:  "MIA AUC vs protected tail layers (LeNet-5-mini)",
		Header: []string{"Protected", "paper AUC", "measured AUC"},
		Notes: []string{
			"shape: unprotected high; protection never helps the attacker; full protection ⇒ 0.5",
			"intermediate decline is flatter than the paper's at mini scale (EXPERIMENTS.md)",
		},
	}
	net := nn.NewLeNet5Mini(rand.New(rand.NewSource(13)), nn.ActReLU)
	d, _ := attack.BuildMIADataset(net, miaGen(14), attack.MIAConfig{
		VictimSteps: 600, MembersPerClass: 2, VictimLR: 0.03,
		AttackSamples: DefaultScale.MIASamples, Seed: 15,
	})
	configs := []struct {
		label string
		paper string
		prot  []int
	}{
		{"None", "0.95", nil},
		{"L5", "0.85", []int{4}},
		{"L5+L4", "0.84", []int{3, 4}},
		{"L5+L4+L3", "0.82", []int{2, 3, 4}},
		{"L5+L4+L3+L2", "0.80", []int{1, 2, 3, 4}},
		{"all layers", "-", []int{0, 1, 2, 3, 4}},
	}
	for _, c := range configs {
		auc := d.EvalStatic(c.prot, attack.LogisticAttack, 16)
		t.Rows = append(t.Rows, []string{c.label, c.paper, f3(auc)})
	}
	return t
}

// Figure6b reproduces the MIA sweep on AlexNet(-S): none / convolutional
// part / dense part / L6 protected.
func Figure6b() *Table {
	t := &Table{
		ID:     "fig6b",
		Title:  "MIA AUC vs protected parts (AlexNet-S)",
		Header: []string{"Protected", "paper AUC", "measured AUC"},
	}
	// 8-layer AlexNet-mini: the Table-4 depth and layer structure with a
	// 10-class head (full 100-class CIFAR training is out of budget; the
	// conv/dense split the experiment varies is preserved).
	arng := rand.New(rand.NewSource(17))
	net := &nn.Network{
		Label: "AlexNet-mini",
		Layers: []nn.Layer{
			nn.NewConv2D(arng, 3, 32, 32, 4, 3, 2, 1, 2, nn.ActReLU),
			nn.NewConv2D(arng, 4, 8, 8, 6, 3, 1, 1, 2, nn.ActReLU),
			nn.NewConv2D(arng, 6, 4, 4, 12, 3, 1, 1, 0, nn.ActReLU),
			nn.NewConv2D(arng, 12, 4, 4, 8, 3, 1, 1, 0, nn.ActReLU),
			nn.NewConv2D(arng, 8, 4, 4, 8, 3, 1, 1, 2, nn.ActReLU),
			nn.NewDense(arng, 32, 128, nn.ActReLU),
			nn.NewDense(arng, 128, 128, nn.ActReLU),
			nn.NewDense(arng, 128, 10, nn.ActNone),
		},
	}
	g := dataset.NewGenerator(rand.New(rand.NewSource(18)), 10, 3, 32, 32, 1.0)
	g.ScaleJitter = 0.5
	g.Diversity = 0.5
	d, _ := attack.BuildMIADataset(net, g, attack.MIAConfig{
		VictimSteps: 600, MembersPerClass: 2, VictimLR: 0.03, BatchSize: 8,
		AttackSamples: DefaultScale.MIASamples / 2, Seed: 19,
	})
	configs := []struct {
		label string
		paper string
		prot  []int
	}{
		{"None", "0.85", nil},
		{"convolutional (L1..L5)", "0.79", []int{0, 1, 2, 3, 4}},
		{"dense (L6+L7+L8)", "0.59", []int{5, 6, 7}},
		{"L6", "0.56", []int{5}},
		{"all layers", "-", []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}
	for _, c := range configs {
		auc := d.EvalStatic(c.prot, attack.LogisticAttack, 20)
		t.Rows = append(t.Rows, []string{c.label, c.paper, f3(auc)})
	}
	return t
}

// Table5 reproduces the DPIA results: static protection is ineffective
// (AUC stays high until most layers are shielded) while dynamic GradSec
// reaches a lower AUC with only sizeMW layers resident.
func Table5() *Table {
	t := &Table{
		ID:     "table5",
		Title:  "AUC of DPIA under GradSec (LeNet-5-mini, LFW-like, random forest)",
		Header: []string{"Configuration", "paper AUC", "measured AUC"},
	}
	// 5-layer LeNet-5-mini with a binary head: the DPIA main task is a
	// 2-class face problem (as LFW attribute tasks are), keeping the
	// property signal from being diluted across many classes.
	zrng := rand.New(rand.NewSource(21))
	net := &nn.Network{
		Label: "LeNet-5-mini-2c",
		Layers: []nn.Layer{
			nn.NewConv2D(zrng, 1, 16, 16, 6, 5, 2, 2, 0, nn.ActReLU),
			nn.NewConv2D(zrng, 6, 8, 8, 6, 5, 2, 2, 0, nn.ActReLU),
			nn.NewConv2D(zrng, 6, 4, 4, 6, 5, 1, 2, 0, nn.ActReLU),
			nn.NewConv2D(zrng, 6, 4, 4, 6, 5, 1, 2, 0, nn.ActReLU),
			nn.NewDense(zrng, 96, 2, nn.ActNone),
		},
	}
	faces := dataset.NewFaceGenerator(rand.New(rand.NewSource(22)), 2, 1, 16, 16, 0.05)
	d := attack.BuildDPIADataset(net, faces, attack.DPIAConfig{
		Cycles: DefaultScale.DPIACycles, ItersPerCycle: 2, BatchSize: 12, LR: 0.05, Seed: 23,
	})
	fit := attack.ForestAttack(24)

	static := []struct {
		label string
		paper string
		prot  []int
	}{
		{"None", "0.99", nil},
		{"static L4", "0.99", []int{3}},
		{"static L3+L4", "0.99", []int{2, 3}},
		{"static L3+L4+L5", "0.95", []int{2, 3, 4}},
		{"static L2+L3+L4+L5", "0.85", []int{1, 2, 3, 4}},
	}
	for _, c := range static {
		t.Rows = append(t.Rows, []string{c.label, c.paper, f3(d.EvalStatic(c.prot, fit, 25))})
	}

	dynCases := []struct {
		label string
		paper string
		size  int
		vmw   []float64
	}{
		{"dynamic MW=2 VMW=[.2 .1 .6 .1]", "0.78", 2, []float64{0.2, 0.1, 0.6, 0.1}},
		{"dynamic MW=3 VMW=[.1 .1 .8]", "0.77", 3, []float64{0.1, 0.1, 0.8}},
		{"dynamic MW=4 VMW=[.1 .9]", "0.80", 4, []float64{0.1, 0.9}},
	}
	for _, c := range dynCases {
		plan, err := core.NewDynamicPlan(c.size, c.vmw)
		if err != nil {
			panic(err)
		}
		auc := d.EvalSchedule(func(row int) map[int]bool {
			return attack.ProtectedSet(plan.ProtectedLayers(row, net.NumLayers()))
		}, fit, 26)
		t.Rows = append(t.Rows, []string{c.label, c.paper, f3(auc)})
	}

	// The paper's VMW selection loop (§8.2): pick the distribution that
	// minimises validation AUC for MW=2.
	candidates := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.2, 0.1, 0.6, 0.1},
		{0.4, 0.1, 0.4, 0.1},
		{0.1, 0.4, 0.4, 0.1},
		{0.5, 0, 0.5, 0},
	}
	best, bestAUC := attack.SelectVMW(candidates, func(vmw []float64) float64 {
		plan, err := core.NewDynamicPlan(2, vmw)
		if err != nil {
			return 2
		}
		return d.EvalSchedule(func(row int) map[int]bool {
			return attack.ProtectedSet(plan.ProtectedLayers(row, net.NumLayers()))
		}, fit, 27)
	})
	t.Notes = append(t.Notes, fmt.Sprintf("VMW search (MW=2): best %v at AUC %.3f", best, bestAUC))
	return t
}

// Table1 reassembles the paper's headline summary from the other
// experiments: attack success unprotected, the layers each defence needs,
// and GradSec's gains over DarkneTZ.
func Table1() *Table {
	sim := lenetSim()
	gradsec := sim.CycleCost([]int{1, 4}).Total().Seconds()
	darknetz := sim.CycleCost([]int{1, 2, 3, 4}).Total().Seconds()
	plan, err := core.NewDynamicPlan(2, []float64{0.2, 0.1, 0.6, 0.1})
	if err != nil {
		panic(err)
	}
	dyn, err := sim.Dynamic(plan)
	if err != nil {
		panic(err)
	}
	memGS := float64(sim.TEEMemory([]int{1, 4}))
	memDZ := float64(sim.TEEMemory([]int{1, 2, 3, 4}))

	t := &Table{
		ID:     "table1",
		Title:  "Headline comparison (paper Table 1)",
		Header: []string{"Row", "DRIA", "MIA", "DRIA+MIA", "DPIA"},
	}
	t.Rows = append(t.Rows,
		[]string{"Attack success unprotected", "ImageLoss<1", "AUC≈0.95", "-", "AUC≈0.99"},
		[]string{"TEE layers (DarkneTZ)", "L2", "L5", "L2-L3-L4-L5", "L2-L3-L4-L5"},
		[]string{"TEE layers (GradSec)", "L2", "L5", "L2 and L5", "MW=2 sliding"},
		[]string{"GradSec training-time gain", "≡", "≡",
			fmt.Sprintf("%.1f%% (paper 8.3%%)", (1-gradsec/darknetz)*100),
			fmt.Sprintf("%.1f%% (paper 56.7%%)", (1-dyn.Average.Total().Seconds()/darknetz)*100)},
		[]string{"GradSec TCB-size gain", "≡", "≡",
			fmt.Sprintf("%.1f%% (paper 30%%)", (1-memGS/memDZ)*100),
			fmt.Sprintf("%.1f%% (paper 8%%)", (1-float64(dyn.MaxMemory)/memDZ)*100)},
	)
	return t
}
