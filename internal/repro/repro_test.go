package repro

import (
	"strconv"
	"strings"
	"testing"
)

// parse a "1.234s" / "1.234MB" / "0.123" cell back to a float.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "MB"), "s")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

func TestTable6TracksPaper(t *testing.T) {
	tab := Table6()
	if len(tab.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		paper, measured := cell(t, row[1]), cell(t, row[2])
		if paper == 0 {
			continue
		}
		if rel := abs(measured-paper) / paper; rel > 0.12 {
			t.Errorf("%s: measured %.3f vs paper %.3f (rel %.0f%%)", row[0], measured, paper, rel*100)
		}
		pm, mm := cell(t, row[3]), cell(t, row[4])
		if pm > 0 {
			if rel := abs(mm-pm) / pm; rel > 0.15 {
				t.Errorf("%s memory: measured %.3f vs paper %.3f", row[0], mm, pm)
			}
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestFigure7And8Shapes(t *testing.T) {
	f7 := Figure7()
	if len(f7.Rows) != 10 {
		t.Fatalf("fig7 rows = %d", len(f7.Rows))
	}
	f8 := Figure8()
	if len(f8.Rows) != 3 {
		t.Fatalf("fig8 rows = %d", len(f8.Rows))
	}
	// GradSec static must be cheaper than DarkneTZ in both time and memory.
	gs, dz := cell(t, f8.Rows[0][1]), cell(t, f8.Rows[1][1])
	if gs >= dz {
		t.Fatalf("static GradSec %.3f must beat DarkneTZ %.3f", gs, dz)
	}
	dyn := cell(t, f8.Rows[2][1])
	if dyn >= gs {
		t.Fatalf("dynamic average %.3f must beat static %.3f", dyn, gs)
	}
}

func TestTable1Assembles(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 5 {
		t.Fatalf("table1 rows = %d", len(tab.Rows))
	}
	// The gains row must contain percentages near the paper's claims.
	if !strings.Contains(tab.Rows[3][4], "%") {
		t.Fatalf("gain cell = %q", tab.Rows[3][4])
	}
}

func TestByIDCoversAllArtefacts(t *testing.T) {
	for _, id := range []string{"table6", "fig7", "fig8", "table1"} {
		if ByID(id) == nil {
			t.Fatalf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id must be nil")
	}
}

func TestSecurityArtefactShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("attack experiments are slow in -short mode")
	}
	old := DefaultScale
	DefaultScale = SecurityScale{DRIAIters: 40, MIASamples: 32, DPIACycles: 60}
	defer func() { DefaultScale = old }()

	f5 := Figure5a()
	// Unprotected reconstruction must beat the L2-protected one.
	open, l2 := cell(t, f5.Rows[0][1]), cell(t, f5.Rows[2][1])
	if open >= l2 {
		t.Fatalf("fig5a: open %.3f must beat L2-protected %.3f", open, l2)
	}

	f6 := Figure6a()
	openAUC := cell(t, f6.Rows[0][2])
	allAUC := cell(t, f6.Rows[len(f6.Rows)-1][2])
	if openAUC < 0.7 {
		t.Fatalf("fig6a open AUC = %.3f", openAUC)
	}
	if abs(allAUC-0.5) > 0.15 {
		t.Fatalf("fig6a full-protection AUC = %.3f", allAUC)
	}

	t5 := Table5()
	openDPIA := cell(t, t5.Rows[0][2])
	if openDPIA < 0.7 {
		t.Fatalf("table5 open AUC = %.3f", openDPIA)
	}
}

func TestAblations(t *testing.T) {
	smc := AblationSMC()
	if len(smc.Rows) != 6 {
		t.Fatalf("smc rows = %d", len(smc.Rows))
	}
	// At the calibrated Pi switch cost, scattered must win.
	if !strings.HasPrefix(smc.Rows[1][3], "+") {
		t.Fatalf("scattered should win at 300µs: %v", smc.Rows[1])
	}
	enc := AblationEnclaveSize()
	for _, row := range enc.Rows {
		if row[4] != "yes" && row[0] != "all layers" {
			t.Errorf("%s should fit a 4MB enclave", row[0])
		}
	}
}

func TestPrintRendersEveryColumn(t *testing.T) {
	tab := Table6()
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "table6") || !strings.Contains(out, "L2+L5") {
		t.Fatalf("print output incomplete:\n%s", out)
	}
}
