// Package secagg implements secure aggregation for the FL round engine:
// the server learns only the cohort's aggregate update, never any
// individual client's gradients — extending GradSec's client-side
// TrustZone shielding (conf_middleware_MessaoudMNS22) to an untrusted
// aggregator.
//
// Two complementary mechanisms cover the two halves of a GradSec
// update:
//
//   - Pairwise additive masking for the plaintext (unprotected-layer)
//     half. Updates are quantised to fixed point and shifted into the
//     ring ℤ/2⁶⁴; masking pairs (i,j) derive a shared secret from the
//     mask keys exchanged during the attestation handshake and add
//     ±PRG(secret) to their levels. Summed over the cohort the masks
//     cancel exactly (ring arithmetic — no floating-point residue), so
//     the server folds masked updates it cannot read and still recovers
//     the exact aggregate. In the default k-regular mode (Graph) each
//     client masks only against its ~log₂ n graph neighbours — O(k·n)
//     keystream fleet-wide instead of O(n²) — and additionally adds a
//     self-mask whose seed is Shamir-shared among those neighbours
//     (double masking, Bonawitz CCS'17 / Bell CCS'20). Reconciliation
//     then asks each survivor, per neighbour, for either the pairwise
//     round seed (neighbour dropped) or the neighbour's self-seed share
//     (neighbour folded) — never both (ErrRoleConflict) — and the
//     server subtracts exactly the dangling pair masks plus each folded
//     client's reconstructed self-mask. Deterministic reconciliation,
//     not a best-effort approximation. degree 0 preserves the legacy
//     full-pairwise wire behaviour for old cohorts.
//
//   - Enclave aggregation for the sealed (protected-layer) half.
//     Sealed blobs are folded inside a simulated server-side enclave
//     (Enclave, built on the internal/tz TA framework): trusted-channel
//     keys live only in the enclave, unsealing and accumulation happen
//     behind the world boundary, and only the per-round aggregate mean
//     crosses back — the tz leak screen panics if an individual tensor
//     ever would.
//
// # Exactness
//
// Quantisation maps v to round(v·2^ScaleBits) in two's complement.
// Values that are dyadic rationals with ≤ ScaleBits fractional bits
// (the flsim simulator's update model) quantise without error, and the
// unmasked ring sum converts back through an exact power-of-two
// division — so a masked session's aggregate is bit-identical to the
// plaintext FedAvg aggregate, which the flsim secagg scenarios assert.
// For general values the quantisation error is ≤ 2^-(ScaleBits+1) per
// element per client.
//
// # Threat model and caveats
//
// The server is honest-but-curious: it follows the protocol but reads
// everything it can. Pair seeds revealed during reconciliation are
// round-scoped (derived as H(pair secret ‖ round)), so a revealed seed
// unmasks nothing in any other round. In the legacy full-pairwise mode
// (degree 0) a malicious server that falsely reports a client as
// dropped can collect its round seeds and unmask a *late* update from
// that client if one arrives. Double masking (degree > 0) closes that
// window by construction: a late update additionally carries its
// self-mask, whose seed only ≥ Threshold neighbours acting in the
// survivor role can reconstruct — and every honest neighbour refuses
// to play both roles for one peer (ErrRoleConflict), so the server
// must choose, per client, between the dropout path and the survivor
// path. Residual caveat: a survivor that vanishes *during*
// reconciliation while its dropped neighbours' pair seeds are still
// unrevealed fails the round (only its own self-seed, not its pair
// seeds, is recoverable from shares — pair secrets are session-long
// here, unlike full Bonawitz, and are deliberately never shared). See
// docs/SECAGG.md.
package secagg

import (
	"math"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// DefaultScaleBits is the default fixed-point precision: 24 fractional
// bits keep the exact-conversion envelope (|Σ wᵢuᵢ|·2^bits < 2⁵³) with
// room for 2¹⁰ clients at weight 2¹⁶ and unit-scale updates.
const DefaultScaleBits = 24

// MaxScaleBits bounds the negotiated precision so the scale stays an
// exact power of two well inside float64 range.
const MaxScaleBits = 48

// ScaleFor returns the fixed-point scale 2^bits as a float64.
func ScaleFor(bits int) float64 { return math.Ldexp(1, bits) }

// Quantise maps a float tensor to fixed-point ring levels:
// level = round(v·scale) as int64, reinterpreted in ℤ/2⁶⁴. The result
// is multiplied by weight in the ring, so a client's contribution
// carries its FedAvg weight before masking.
func Quantise(t *tensor.Tensor, scale float64, weight uint64) *wire.U64Tensor {
	levels := make([]uint64, len(t.Data))
	for i, v := range t.Data {
		levels[i] = uint64(int64(math.Round(v*scale))) * weight
	}
	shape := make([]int, len(t.Shape))
	copy(shape, t.Shape)
	return &wire.U64Tensor{Shape: shape, Levels: levels}
}

// Dequantise converts an unmasked ring sum back to float64 values:
// float64(int64(level)) / scale. The division is by a power of two and
// therefore exact; the int64→float64 conversion is exact while the
// aggregate magnitude stays below 2⁵³·2^-ScaleBits.
func Dequantise(levels []uint64, scale float64, dst []float64) {
	inv := 1 / scale // exact: scale is a power of two
	for i, l := range levels {
		dst[i] = float64(int64(l)) * inv
	}
}
