package secagg

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// dyadic returns a deterministic multiple of 1/256 in [-1, 1).
func dyadic(seed, i int) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return float64(int64(h%512)-256) / 256
}

func testCohort(t *testing.T, n int) ([]*ClientSession, []Peer) {
	t.Helper()
	sessions := make([]*ClientSession, n)
	cohort := make([]Peer, n)
	for i := range sessions {
		device := fmt.Sprintf("dev-%03d", i)
		s, err := NewClientSession(device, []byte(device), DefaultScaleBits)
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		cohort[i] = Peer{Device: device, Pub: s.MaskPub()}
	}
	return sessions, cohort
}

func dyadicUpdate(seed int, shapes [][]int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(shapes))
	k := 0
	for i, shape := range shapes {
		tt := tensor.New(shape...)
		for j := range tt.Data {
			tt.Data[j] = dyadic(seed, k)
			k++
		}
		out[i] = tt
	}
	return out
}

// plainWeightedMean reproduces the fl.Aggregator arithmetic exactly:
// AxPy folds in order, then one multiply by 1/Σw.
func plainWeightedMean(updates [][]*tensor.Tensor, weights []float64, ref []*tensor.Tensor) []*tensor.Tensor {
	sum := make([]*tensor.Tensor, len(ref))
	for i, r := range ref {
		sum[i] = tensor.New(r.Shape...)
	}
	var w float64
	for c, upd := range updates {
		for i := range sum {
			tensor.AxPy(weights[c], upd[i], sum[i])
		}
		w += weights[c]
	}
	inv := 1 / w
	out := make([]*tensor.Tensor, len(sum))
	for i, s := range sum {
		out[i] = tensor.Scale(s, inv)
	}
	return out
}

// TestMaskedAggregateBitIdentical: a full cohort's pairwise masks
// cancel exactly in the ring and the dequantised mean is bit-identical
// to the plaintext weighted FedAvg of the same dyadic updates.
func TestMaskedAggregateBitIdentical(t *testing.T) {
	const n, round = 7, 3
	ref := []*tensor.Tensor{tensor.New(4, 3), tensor.New(5)}
	shapes := [][]int{{4, 3}, {5}}
	sessions, cohort := testCohort(t, n)

	msum := NewMaskedSum(ref, nil, DefaultScaleBits)
	var updates [][]*tensor.Tensor
	var weights []float64
	for i, s := range sessions {
		upd := dyadicUpdate(i, shapes)
		w := uint64(1 + i%4)
		masked, _, err := s.MaskedUpdate(round, cohort, 0, upd, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := msum.Add(masked, w); err != nil {
			t.Fatal(err)
		}
		updates = append(updates, upd)
		weights = append(weights, float64(w))
	}
	got, err := msum.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := plainWeightedMean(updates, weights, ref)
	for i := range ref {
		for j := range want[i].Data {
			if got[i].Data[j] != want[i].Data[j] {
				t.Fatalf("tensor %d elem %d: masked %v != plaintext %v", i, j, got[i].Data[j], want[i].Data[j])
			}
		}
	}
	if msum.Count() != n {
		t.Fatalf("count = %d", msum.Count())
	}
}

// TestMaskReconciliationAfterDropout: when some cohort members never
// fold, survivor-revealed round seeds let the server subtract exactly
// the unpaired residue — recovering the plaintext mean over survivors.
func TestMaskReconciliationAfterDropout(t *testing.T) {
	const n, round = 6, 1
	ref := []*tensor.Tensor{tensor.New(3, 3), tensor.New(2)}
	shapes := [][]int{{3, 3}, {2}}
	sessions, cohort := testCohort(t, n)
	droppedSet := map[int]bool{1: true, 4: true}
	var droppedIDs []string
	for i := range sessions {
		if droppedSet[i] {
			droppedIDs = append(droppedIDs, cohort[i].Device)
		}
	}

	msum := NewMaskedSum(ref, nil, DefaultScaleBits)
	var updates [][]*tensor.Tensor
	var weights []float64
	for i, s := range sessions {
		upd := dyadicUpdate(100+i, shapes)
		masked, _, err := s.MaskedUpdate(round, cohort, 0, upd, 1)
		if err != nil {
			t.Fatal(err)
		}
		if droppedSet[i] {
			continue // straggled: masked update never folds
		}
		if err := msum.Add(masked, 1); err != nil {
			t.Fatal(err)
		}
		updates = append(updates, upd)
		weights = append(weights, 1)
	}

	// Reconciliation: every survivor reveals its round seeds with the
	// dropped peers; the server subtracts each survivor-side residue.
	for i, s := range sessions {
		if droppedSet[i] {
			continue
		}
		shares, err := s.Shares(round, cohort, droppedIDs)
		if err != nil {
			t.Fatal(err)
		}
		for _, share := range shares {
			mask := MaskLevels(share.Seed, msum.ActiveSizes())
			sign := PairSign(cohort[i].Device, share.Device)
			if err := msum.ApplyMask(mask, -sign); err != nil {
				t.Fatal(err)
			}
		}
	}

	got, err := msum.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := plainWeightedMean(updates, weights, ref)
	for i := range ref {
		for j := range want[i].Data {
			if got[i].Data[j] != want[i].Data[j] {
				t.Fatalf("tensor %d elem %d: reconciled %v != plaintext %v", i, j, got[i].Data[j], want[i].Data[j])
			}
		}
	}
}

// TestRoundSeedsAgreeAndScope: both ends of a pair derive the same
// round seed, and different rounds yield different seeds.
func TestRoundSeedsAgreeAndScope(t *testing.T) {
	sessions, cohort := testCohort(t, 2)
	a, err := sessions[0].Shares(5, cohort, []string{cohort[1].Device})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sessions[1].Shares(5, cohort, []string{cohort[0].Device})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Seed != b[0].Seed {
		t.Fatal("pair ends derived different round seeds")
	}
	c, err := sessions[0].Shares(6, cohort, []string{cohort[1].Device})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Seed == c[0].Seed {
		t.Fatal("round seeds must differ across rounds")
	}
}

// TestMaskedUpdateValidation covers the cohort sanity checks.
func TestMaskedUpdateValidation(t *testing.T) {
	sessions, cohort := testCohort(t, 3)
	upd := dyadicUpdate(1, [][]int{{2}})
	if _, _, err := sessions[0].MaskedUpdate(0, cohort[1:], 0, upd, 1); err == nil {
		t.Fatal("cohort without self must fail")
	}
	dup := append(append([]Peer(nil), cohort...), cohort[1])
	if _, _, err := sessions[0].MaskedUpdate(0, dup, 0, upd, 1); err == nil {
		t.Fatal("duplicate cohort device must fail")
	}
	if _, _, err := sessions[0].MaskedUpdate(0, cohort, 0, upd, 0); err == nil {
		t.Fatal("zero weight must fail")
	}
	if _, err := sessions[0].Shares(0, cohort, []string{"dev-000"}); err == nil {
		t.Fatal("revealing own seed must fail")
	}
	if _, err := sessions[0].Shares(0, cohort, []string{"ghost"}); err == nil {
		t.Fatal("unknown dropped peer must fail")
	}
}

// TestMaskedSumValidation covers the layout checks.
func TestMaskedSumValidation(t *testing.T) {
	ref := []*tensor.Tensor{tensor.New(2, 2), tensor.New(3)}
	m := NewMaskedSum(ref, map[int]bool{0: true}, DefaultScaleBits)
	if got := m.ActiveSizes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("active sizes = %v", got)
	}
	ok := []*wire.U64Tensor{nil, {Shape: []int{3}, Levels: make([]uint64, 3)}}
	if err := m.Add(ok, 1); err != nil {
		t.Fatal(err)
	}
	bad := []*wire.U64Tensor{{Shape: []int{2, 2}, Levels: make([]uint64, 4)}, {Shape: []int{3}, Levels: make([]uint64, 3)}}
	if err := m.Add(bad, 1); err == nil {
		t.Fatal("levels at a protected position must fail")
	}
	short := []*wire.U64Tensor{nil, {Shape: []int{2}, Levels: make([]uint64, 2)}}
	if err := m.Add(short, 1); err == nil {
		t.Fatal("misshapen levels must fail")
	}
	if err := m.Add(ok, 0); err == nil {
		t.Fatal("zero weight must fail")
	}
	if err := m.ApplyMask([][]uint64{{1, 2}}, 1); err == nil {
		t.Fatal("misshapen mask must fail")
	}
}

// TestMaskedSumAddFailClosed: Add must refuse a mismatched update in
// full — even one whose leading tensors are individually foldable —
// leaving the accumulator byte-identical. The check must hold against
// the accumulator itself, independent of Validate, so a caller that
// skipped Validate (or validated against a desynced layout) still
// cannot corrupt the ring sum partially.
func TestMaskedSumAddFailClosed(t *testing.T) {
	ref := []*tensor.Tensor{tensor.New(4), tensor.New(2, 3), tensor.New(5)}
	lv := func(n int, fill uint64) *wire.U64Tensor {
		u := &wire.U64Tensor{Shape: []int{n}, Levels: make([]uint64, n)}
		for i := range u.Levels {
			u.Levels[i] = fill
		}
		return u
	}
	cases := []struct {
		name string
		up   []*wire.U64Tensor
	}{
		{"too few tensors", []*wire.U64Tensor{lv(4, 1), lv(6, 1)}},
		{"too many tensors", []*wire.U64Tensor{lv(4, 1), lv(6, 1), lv(5, 1), lv(1, 1)}},
		{"nil at active position", []*wire.U64Tensor{lv(4, 1), nil, lv(5, 1)}},
		{"levels at protected position", []*wire.U64Tensor{lv(4, 1), lv(6, 1), lv(5, 1)}},
		{"good prefix, short tail", []*wire.U64Tensor{lv(4, 1), lv(6, 1), lv(3, 1)}},
		{"good prefix, long tail", []*wire.U64Tensor{lv(4, 1), lv(6, 1), lv(9, 1)}},
		{"shape/levels mismatch", []*wire.U64Tensor{lv(4, 1), lv(6, 1), {Shape: []int{5}, Levels: make([]uint64, 3)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			protected := map[int]bool{}
			if tc.name == "levels at protected position" {
				protected[2] = true
			}
			m := NewMaskedSum(ref, protected, DefaultScaleBits)
			good := []*wire.U64Tensor{lv(4, 7), lv(6, 7), lv(5, 7)}
			if protected[2] {
				good[2] = nil
			}
			if err := m.Add(good, 2); err != nil {
				t.Fatal(err)
			}
			if err := m.Add(tc.up, 1); err == nil {
				t.Fatal("mismatched update must be refused")
			}
			// Fail-closed means fully closed: nothing folded, no weight
			// or count drift — the prior fold is still intact verbatim.
			if m.Count() != 1 || m.Weight() != 2 {
				t.Fatalf("accumulator drifted: count=%d weight=%v", m.Count(), m.Weight())
			}
			for i, s := range m.Levels() {
				if s == nil {
					continue
				}
				for j, l := range s.Levels {
					if l != 7 {
						t.Fatalf("tensor %d elem %d = %d: rejected update partially folded", i, j, l)
					}
				}
			}
		})
	}
}

// TestQuantisationErrorBound: arbitrary floats survive the fixed-point
// round trip within 2^-(bits+1) per element.
func TestQuantisationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const bits = 24
	scale := ScaleFor(bits)
	tt := tensor.New(64)
	for i := range tt.Data {
		tt.Data[i] = rng.NormFloat64()
	}
	q := Quantise(tt, scale, 1)
	back := make([]float64, len(q.Levels))
	Dequantise(q.Levels, scale, back)
	bound := math.Ldexp(1, -(bits + 1))
	for i, v := range tt.Data {
		if diff := math.Abs(back[i] - v); diff > bound {
			t.Fatalf("elem %d: error %v exceeds %v", i, diff, bound)
		}
	}
	// Dyadic values with ≤ bits fractional bits are exact.
	for i := range tt.Data {
		tt.Data[i] = dyadic(7, i)
	}
	q = Quantise(tt, scale, 3)
	Dequantise(q.Levels, scale, back)
	for i, v := range tt.Data {
		if back[i] != 3*v {
			t.Fatalf("dyadic elem %d: %v != %v", i, back[i], 3*v)
		}
	}
}

// TestEnclaveAggregatesSealedUpdates: sealed updates fold inside the
// enclave; only the aggregate mean crosses the world boundary and it
// matches the plaintext weighted mean bit for bit.
func TestEnclaveAggregatesSealedUpdates(t *testing.T) {
	enc, err := NewEnclave("agg-test")
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()

	const n, round = 3, 0
	idx := []int{1, 4}
	shapes := [][]int{{2, 2}, {3}}
	type client struct {
		ch  *tz.Channel
		upd []*tensor.Tensor
	}
	clients := make([]client, n)
	var updates [][]*tensor.Tensor
	var weights []float64
	for i := range clients {
		offerID, pub, err := enc.NewOffer()
		if err != nil {
			t.Fatal(err)
		}
		clientOffer, err := tz.NewChannelOffer()
		if err != nil {
			t.Fatal(err)
		}
		ch, err := clientOffer.Establish(pub, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Establish(offerID, fmt.Sprintf("c%d", i), clientOffer.Public); err != nil {
			t.Fatal(err)
		}
		clients[i] = client{ch: ch, upd: dyadicUpdate(i, shapes)}
		updates = append(updates, clients[i].upd)
		weights = append(weights, float64(i+1))
	}

	if err := enc.Begin(round, idx, shapes); err != nil {
		t.Fatal(err)
	}
	before := enc.Device().SecureMemory().InUse()
	if before == 0 {
		t.Fatal("round accumulator not charged to secure memory")
	}
	for i, c := range clients {
		sealed := c.ch.Seal(wire.EncodeSealedUpdate(idx, c.upd))
		if err := enc.Fold(fmt.Sprintf("c%d", i), round, sealed, weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Double fold must be rejected atomically.
	sealed := clients[0].ch.Seal(wire.EncodeSealedUpdate(idx, clients[0].upd))
	if err := enc.Fold("c0", round, sealed, 1); err == nil {
		t.Fatal("double fold must fail")
	}
	if _, err := enc.Finish(round, n+1); err == nil {
		t.Fatal("count mismatch must fail")
	}
	mean, err := enc.Finish(round, n)
	if err != nil {
		t.Fatal(err)
	}
	ref := []*tensor.Tensor{tensor.New(2, 2), tensor.New(3)}
	want := plainWeightedMean(updates, weights, ref)
	for k := range mean {
		for j := range mean[k].Data {
			if mean[k].Data[j] != want[k].Data[j] {
				t.Fatalf("tensor %d elem %d: enclave %v != plaintext %v", k, j, mean[k].Data[j], want[k].Data[j])
			}
		}
	}
	if after := enc.Device().SecureMemory().InUse(); after != 0 {
		t.Fatalf("secure memory not released: %d bytes in use", after)
	}
	if enc.Device().SMCCount() == 0 {
		t.Fatal("enclave work must cross the world boundary")
	}
}

// TestEnclaveRejectsBadFolds: validation failures leave the round
// accumulator untouched and further folds still work.
func TestEnclaveRejectsBadFolds(t *testing.T) {
	enc, err := NewEnclave("agg-bad")
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()

	offerID, pub, err := enc.NewOffer()
	if err != nil {
		t.Fatal(err)
	}
	clientOffer, err := tz.NewChannelOffer()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := clientOffer.Establish(pub, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Establish(offerID, "c0", clientOffer.Public); err != nil {
		t.Fatal(err)
	}

	idx := []int{0}
	shapes := [][]int{{2}}
	if err := enc.Begin(1, idx, shapes); err != nil {
		t.Fatal(err)
	}
	if err := enc.Fold("ghost", 1, nil, 1); err == nil {
		t.Fatal("unknown device must fail")
	}
	if err := enc.Fold("c0", 1, []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("garbage seal must fail")
	}
	wrongIdx := ch.Seal(wire.EncodeSealedUpdate([]int{5}, []*tensor.Tensor{tensor.Full(1, 2)}))
	if err := enc.Fold("c0", 1, wrongIdx, 1); err == nil {
		t.Fatal("wrong protected index must fail")
	}
	good := ch.Seal(wire.EncodeSealedUpdate(idx, []*tensor.Tensor{tensor.Full(0.5, 2)}))
	if err := enc.Fold("c0", 1, good, 1); err != nil {
		t.Fatal(err)
	}
	mean, err := enc.Finish(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0].Data[0] != 0.5 {
		t.Fatalf("mean = %v", mean[0].Data)
	}
	// A sealed update may list the protected tensors in any order: the
	// real GradSec trainer does not sort its layer enumeration.
	if err := enc.Begin(3, []int{2, 7}, [][]int{{2}, {3}}); err != nil {
		t.Fatal(err)
	}
	permuted := ch.Seal(wire.EncodeSealedUpdate([]int{7, 2},
		[]*tensor.Tensor{tensor.Full(3, 3), tensor.Full(1, 2)}))
	if err := enc.Fold("c0", 3, permuted, 1); err != nil {
		t.Fatal(err)
	}
	mean, err = enc.Finish(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0].Data[0] != 1 || mean[1].Data[0] != 3 {
		t.Fatalf("permuted fold landed wrong: %v / %v", mean[0].Data, mean[1].Data)
	}
	// Duplicate coverage of one protected index must still be rejected.
	if err := enc.Begin(4, []int{2, 7}, [][]int{{2}, {3}}); err != nil {
		t.Fatal(err)
	}
	dup := ch.Seal(wire.EncodeSealedUpdate([]int{2, 2},
		[]*tensor.Tensor{tensor.Full(1, 2), tensor.Full(1, 2)}))
	if err := enc.Fold("c0", 4, dup, 1); err == nil {
		t.Fatal("duplicate protected index must fail")
	}
	enc.Abort(4)
	enc.Abort(2) // aborting an unknown round is a no-op
	if got := enc.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("secure memory leaked: %d", got)
	}
}

// TestEnclaveMinReleaseFloor: the count-capped release policy lives in
// TA state — Finish refuses to publish below the floor, the floor can
// only be raised, and an under-floor round's accumulator survives so
// further folds can still reach the floor.
func TestEnclaveMinReleaseFloor(t *testing.T) {
	enc, err := NewEnclave("agg-floor")
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	if got := enc.SetMinRelease(3); got != 3 {
		t.Fatalf("floor = %d, want 3", got)
	}
	// The floor is monotonic: an attempt to loosen it is ignored.
	if got := enc.SetMinRelease(1); got != 3 {
		t.Fatalf("floor lowered to %d — the policy must be monotonic", got)
	}

	const round = 0
	idx := []int{0}
	shapes := [][]int{{2}}
	seal := func(i int) []byte {
		offerID, pub, err := enc.NewOffer()
		if err != nil {
			t.Fatal(err)
		}
		clientOffer, err := tz.NewChannelOffer()
		if err != nil {
			t.Fatal(err)
		}
		ch, err := clientOffer.Establish(pub, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Establish(offerID, fmt.Sprintf("f%d", i), clientOffer.Public); err != nil {
			t.Fatal(err)
		}
		return ch.Seal(wire.EncodeSealedUpdate(idx, []*tensor.Tensor{tensor.Full(0.5, 2)}))
	}
	if err := enc.Begin(round, idx, shapes); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := enc.Fold(fmt.Sprintf("f%d", i), round, seal(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := enc.Finish(round, 2); !errors.Is(err, ErrCohortTooSmall) {
		t.Fatalf("Finish below the floor = %v, want ErrCohortTooSmall", err)
	}
	// The refused round is still open: one more fold reaches the floor
	// and the aggregate releases.
	if err := enc.Fold("f2", round, seal(2), 1); err != nil {
		t.Fatal(err)
	}
	mean, err := enc.Finish(round, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mean[0].Data[0] != 0.5 {
		t.Fatalf("mean = %v, want 0.5", mean[0].Data[0])
	}
	if got := enc.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("secure memory leaked: %d", got)
	}
}
