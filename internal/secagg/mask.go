package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Masking errors.
var (
	ErrNoPair      = errors.New("secagg: peer not in cohort")
	ErrBadMaskKey  = errors.New("secagg: bad mask key material")
	ErrSelfInPairs = errors.New("secagg: cohort pairs a client with itself")
)

// Peer is one cohort member's masking identity, distributed to the
// whole cohort by the server with each round's model: the device name
// and the mask public key it presented during the attestation
// handshake.
type Peer struct {
	Device string
	Pub    []byte
}

// MaskKey is a client's per-session X25519 keypair for pairwise mask
// agreement. The public half rides the Attest message; the private half
// never leaves the client.
type MaskKey struct {
	priv *ecdh.PrivateKey

	// pairs memoises pairSecret by peer public key. The secret is
	// session-long and X25519 is deterministic, so the first derivation
	// per peer is authoritative; without the cache a k-regular round
	// pays up to three ECDH per edge (mask, share wrap, reconcile) and
	// the scalar multiplications dominate the round at fleet scale.
	mu    sync.Mutex
	pairs map[string][32]byte
}

// NewMaskKey generates a mask keypair from crypto/rand.
func NewMaskKey() (*MaskKey, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: generating mask key: %w", err)
	}
	return &MaskKey{priv: priv}, nil
}

// MaskKeyFromSeed derives a deterministic mask keypair from arbitrary
// seed bytes — used by simulations and tests that need reproducible
// handshakes. Production clients use NewMaskKey.
func MaskKeyFromSeed(seed []byte) (*MaskKey, error) {
	sum := sha256.Sum256(append([]byte("secagg-mask-key:"), seed...))
	priv, err := ecdh.X25519().NewPrivateKey(sum[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMaskKey, err)
	}
	return &MaskKey{priv: priv}, nil
}

// Public returns the key's public half for the Attest message.
func (k *MaskKey) Public() []byte { return k.priv.PublicKey().Bytes() }

// ValidateMaskPub checks that pub parses as an X25519 public key. The
// server runs this at selection: one client presenting a garbage key
// would otherwise be admitted into the roster and abort every honest
// peer's masking instead of only itself.
func ValidateMaskPub(pub []byte) error {
	if _, err := ecdh.X25519().NewPublicKey(pub); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMaskKey, err)
	}
	return nil
}

// pairSecret computes the session-long shared secret with a peer's
// mask public key, memoised per peer for the life of the key. Both
// orders of the pair derive the same secret (X25519 commutativity).
func (k *MaskKey) pairSecret(peerPub []byte) ([32]byte, error) {
	k.mu.Lock()
	cached, ok := k.pairs[string(peerPub)]
	k.mu.Unlock()
	if ok {
		return cached, nil
	}
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("%w: %v", ErrBadMaskKey, err)
	}
	shared, err := k.priv.ECDH(pub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: pair ECDH: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("secagg-pair-secret"))
	h.Write(shared)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	k.mu.Lock()
	if k.pairs == nil {
		k.pairs = make(map[string][32]byte)
	}
	k.pairs[string(peerPub)] = out
	k.mu.Unlock()
	return out, nil
}

// AggQuoteNonce derives the nonce an aggregation-enclave quote must
// cover: the challenge nonce bound to the offered trusted-channel
// public key. Without the binding a quote would only prove the enclave
// exists — a dishonest server could attest the enclave while offering
// its own channel key and unseal protected updates itself.
func AggQuoteNonce(nonce, serverPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("secagg-agg-quote"))
	h.Write(nonce)
	h.Write([]byte{0})
	h.Write(serverPub)
	return h.Sum(nil)
}

// RoundSeed narrows a session-long pair secret to one round. Only the
// round seed is ever revealed during reconciliation, so a revealed
// seed unmasks nothing in any other round.
func RoundSeed(pair [32]byte, round int) [32]byte {
	h := sha256.New()
	h.Write([]byte("secagg-round-seed"))
	h.Write(pair[:])
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(round))
	h.Write(rb[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// PairSign orients a pair's mask: the lexicographically smaller device
// adds the expansion, the larger subtracts it, so the pair contributes
// net zero to the cohort sum. self == peer is not a pair — two equal
// names would derive identical seeds with symmetric signs and nothing
// would cancel — so the tie returns 0, which no masking path accepts.
// Every caller rejects duplicate device names before deriving masks:
// the server at selection (fl.Server.Open), and both NewGraph and
// ClientSession.MaskedUpdate on the roster they are handed.
func PairSign(self, peer string) int {
	switch {
	case self < peer:
		return 1
	case self > peer:
		return -1
	}
	return 0
}

// maskCipher keys the mask-expansion PRG from a round seed: AES-128
// over the seed's first half. A 128-bit PRG key is the standard
// secure-aggregation choice (Bonawitz et al., CCS'17, expand with
// AES-128), and the four fewer AES rounds versus AES-256 shave ~30%
// off the fleet's keystream wall — the dominant masking cost. The
// discarded half keeps round seeds 32 bytes on the wire and in the
// Shamir layer, so only the expansion is affected.
func maskCipher(seed [32]byte) cipher.Block {
	block, err := aes.NewCipher(seed[:16])
	if err != nil {
		panic("secagg: AES key size invariant violated: " + err.Error())
	}
	return block
}

// MaskLevels expands a round seed into mask level tensors of the given
// sizes using AES-CTR as the PRG (see maskCipher). The expansion is
// deterministic in (seed, sizes), so the masker and a reconciling
// server derive the same stream.
func MaskLevels(seed [32]byte, sizes []int) [][]uint64 {
	block := maskCipher(seed)
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	out := make([][]uint64, len(sizes))
	for i, n := range sizes {
		buf := make([]byte, 8*n)
		stream.XORKeyStream(buf, buf)
		levels := make([]uint64, n)
		for j := range levels {
			levels[j] = binary.LittleEndian.Uint64(buf[8*j:])
		}
		out[i] = levels
	}
	return out
}

// applyMask adds (sign=+1) or subtracts (sign=-1) mask levels onto a
// level vector in the ring.
func applyMask(dst []uint64, mask []uint64, sign int) {
	if sign >= 0 {
		for i, m := range mask {
			dst[i] += m
		}
	} else {
		for i, m := range mask {
			dst[i] -= m
		}
	}
}

// maskChunk sizes the streaming expansion buffer (bytes): large
// enough that per-call CTR setup is noise, small enough that the
// scratch and zero buffers stay cache-resident (larger chunks
// measured slower at fleet scale).
const maskChunk = 1 << 16

// zeroChunk is the shared all-zero keystream source: XORKeyStream over
// a zero source writes the raw keystream into the scratch buffer, so
// the expansion loop never has to re-clear it. The buffer is read-only
// by contract — nothing may write through it.
var zeroChunk [maskChunk]byte

// streamMask applies ±PRG(seed) over the destination vectors in order
// without materialising the whole expansion: the keystream is produced
// chunk by chunk into one scratch buffer. The stream consumed is
// byte-identical to MaskLevels', so the two application paths cancel
// each other exactly — clients mask with this, the reconciling server
// may subtract with either.
func streamMask(seed [32]byte, sign int, dsts [][]uint64) {
	block := maskCipher(seed)
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	var buf [maskChunk]byte
	for _, dst := range dsts {
		for off := 0; off < len(dst); {
			n := min(len(dst)-off, maskChunk/8)
			chunk := buf[:8*n]
			stream.XORKeyStream(chunk, zeroChunk[:8*n])
			d := dst[off : off+n]
			if sign >= 0 {
				for i := range d {
					d[i] += binary.LittleEndian.Uint64(chunk[8*i : 8*i+8])
				}
			} else {
				for i := range d {
					d[i] -= binary.LittleEndian.Uint64(chunk[8*i : 8*i+8])
				}
			}
			off += n
		}
	}
}

// PairShare is one revealed round seed during reconciliation: the
// dropped peer's device name and the survivor's round seed with it.
type PairShare struct {
	Device string
	Seed   [32]byte
}
