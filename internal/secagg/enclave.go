package secagg

import (
	"errors"
	"fmt"
	"sync"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// Enclave errors.
var (
	ErrNoChannel     = errors.New("secagg: no trusted channel for device")
	ErrUnknownOffer  = errors.New("secagg: unknown channel offer")
	ErrRoundMismatch = errors.New("secagg: enclave round state mismatch")
	ErrAlreadyFolded = errors.New("secagg: device already folded this round")
	// ErrCohortTooSmall rejects an aggregate release below the
	// configured cohort floor: a "sum" over one or two updates is
	// barely an aggregate at all, so the count-capped release policy
	// refuses to publish it.
	ErrCohortTooSmall = errors.New("secagg: cohort below release floor")
)

// DefaultEnclaveMemory sizes the aggregation enclave: server-grade TEEs
// are far roomier than the 3–5 MB client TrustZone carve-out, and the
// accumulator needs one model worth of tensors plus channel state.
const DefaultEnclaveMemory = 64 << 20

// Enclave is a simulated server-side aggregation enclave built on the
// internal/tz TA framework. Trusted-channel keys are generated and held
// inside the TA; sealed protected-layer updates are opened and folded
// behind the world boundary; only the per-round aggregate mean crosses
// back (the tz leak screen panics if TA-resident tensors ever would).
// The enclave device attests like any client TEE, so clients can verify
// the aggregator's TA measurement during the handshake.
type Enclave struct {
	// mu serialises TA invocations: the tz device (virtual clock, SMC
	// accounting) assumes single-threaded entry, while the FL server
	// seals model payloads from its parallel distribution goroutines.
	mu   sync.Mutex
	dev  *tz.Device
	app  *aggTA
	sess *tz.Session
}

// invoke enters the TA under the enclave lock.
func (e *Enclave) invoke(cmd uint32, req any) (any, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sess.Invoke(cmd, req)
}

// aggTA is the aggregation trusted application.
type aggTA struct{}

// AggTAUUID identifies the aggregation TA for attestation policy.
var AggTAUUID = tz.NameUUID("secagg-aggregator-ta")

func (*aggTA) UUID() tz.UUID   { return AggTAUUID }
func (*aggTA) Version() string { return "secagg-1" }

func (*aggTA) OpenSession(*tz.TAEnv) (any, error) {
	return &aggState{
		offers:   make(map[uint64]*tz.ChannelOffer),
		channels: make(map[string]*tz.Channel),
		rounds:   make(map[int]*enclaveRound),
	}, nil
}

func (*aggTA) CloseSession(*tz.TAEnv, any) {}

// aggState is the TA's secure-world session state. Nothing in it is
// ever returned across the boundary.
type aggState struct {
	mu        sync.Mutex
	nextOffer uint64
	offers    map[uint64]*tz.ChannelOffer
	channels  map[string]*tz.Channel
	rounds    map[int]*enclaveRound
	// minRelease is the count-capped release policy: Finish refuses to
	// publish an aggregate folded from fewer updates. The floor lives
	// in TA state and can only ever be raised, so the untrusted server
	// cannot loosen the policy after arming it.
	minRelease int
}

// enclaveRound is one round's in-enclave accumulator.
type enclaveRound struct {
	idx    []int
	sum    []*tensor.Tensor
	region *tz.Region
	weight float64
	count  int
	folded map[string]bool
}

// TA commands.
const (
	cmdOffer uint32 = iota + 1
	cmdEstablish
	cmdDiscardOffer
	cmdSeal
	cmdBegin
	cmdFold
	cmdFinish
	cmdAbort
	cmdSetFloor
	cmdRelease
	cmdChannelCount
	cmdOfferCount
)

type offerResp struct {
	id  uint64
	pub []byte
}

type establishReq struct {
	offerID   uint64
	device    string
	clientPub []byte
}

type sealReq struct {
	device    string
	plaintext []byte
}

type beginReq struct {
	round  int
	idx    []int
	shapes [][]int
}

type foldReq struct {
	device string
	round  int
	sealed []byte
	weight float64
}

type finishReq struct {
	round int
	count int
}

func (*aggTA) Invoke(env *tz.TAEnv, state any, cmd uint32, req any) (any, error) {
	st := state.(*aggState)
	st.mu.Lock()
	defer st.mu.Unlock()
	switch cmd {
	case cmdOffer:
		offer, err := tz.NewChannelOffer()
		if err != nil {
			return nil, err
		}
		st.nextOffer++
		st.offers[st.nextOffer] = offer
		return offerResp{id: st.nextOffer, pub: offer.Public}, nil
	case cmdEstablish:
		r := req.(establishReq)
		offer, ok := st.offers[r.offerID]
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownOffer, r.offerID)
		}
		delete(st.offers, r.offerID)
		// One channel per device name, first establisher wins: a
		// duplicate-named client must not clobber the kept client's
		// channel keys (selection rejects the loser).
		if _, exists := st.channels[r.device]; exists {
			return nil, fmt.Errorf("secagg: device %q already holds an enclave channel", r.device)
		}
		ch, err := offer.Establish(r.clientPub, true)
		if err != nil {
			return nil, err
		}
		st.channels[r.device] = ch
		return nil, nil
	case cmdDiscardOffer:
		delete(st.offers, req.(uint64))
		return nil, nil
	case cmdSeal:
		r := req.(sealReq)
		ch, ok := st.channels[r.device]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoChannel, r.device)
		}
		return ch.Seal(r.plaintext), nil
	case cmdBegin:
		r := req.(beginReq)
		if _, ok := st.rounds[r.round]; ok {
			return nil, fmt.Errorf("%w: round %d already begun", ErrRoundMismatch, r.round)
		}
		if len(r.idx) != len(r.shapes) {
			return nil, fmt.Errorf("secagg: %d protected indices but %d shapes", len(r.idx), len(r.shapes))
		}
		er := &enclaveRound{
			idx:    append([]int(nil), r.idx...),
			folded: make(map[string]bool),
		}
		// Build the accumulator with secure-memory accounting: the region
		// models the enclave RAM the sums occupy, and registering the
		// tensors arms the world-boundary leak screen on them.
		tensors := make([]*tensor.Tensor, len(r.shapes))
		bytes := 0
		for k, shape := range r.shapes {
			tensors[k] = tensor.New(shape...)
			bytes += 8 * tensors[k].Size()
		}
		region, err := env.Mem.Alloc(fmt.Sprintf("secagg-round-%d", r.round), bytes)
		if err != nil {
			return nil, err
		}
		er.region = region
		for k, t := range tensors {
			env.Mem.RegisterTensor(t, fmt.Sprintf("secagg-round-%d-sum-%d", r.round, k))
		}
		er.sum = tensors
		st.rounds[r.round] = er
		return nil, nil
	case cmdFold:
		r := req.(foldReq)
		er, ok := st.rounds[r.round]
		if !ok {
			return nil, fmt.Errorf("%w: round %d not begun", ErrRoundMismatch, r.round)
		}
		ch, ok := st.channels[r.device]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoChannel, r.device)
		}
		if er.folded[r.device] {
			return nil, fmt.Errorf("%w: %q", ErrAlreadyFolded, r.device)
		}
		if r.weight <= 0 {
			return nil, fmt.Errorf("secagg: non-positive fold weight %v", r.weight)
		}
		blob, err := ch.Open(r.sealed)
		if err != nil {
			return nil, fmt.Errorf("secagg: unsealing update from %q: %w", r.device, err)
		}
		idx, ts, err := wire.DecodeSealedUpdate(blob)
		if err != nil {
			return nil, fmt.Errorf("secagg: parsing sealed update from %q: %w", r.device, err)
		}
		if len(idx) != len(er.idx) {
			return nil, fmt.Errorf("secagg: sealed update covers %d tensors, round protects %d", len(idx), len(er.idx))
		}
		// The update may list the protected tensors in any order (the
		// plaintext merge path is order-insensitive too) but must cover
		// the protected set exactly once.
		pos := make(map[int]int, len(er.idx))
		for k, id := range er.idx {
			pos[id] = k
		}
		slot := make([]int, len(idx))
		seen := make(map[int]bool, len(idx))
		for k, id := range idx {
			p, ok := pos[id]
			if !ok || seen[id] {
				return nil, fmt.Errorf("secagg: sealed update index %d outside the round's protected set", id)
			}
			seen[id] = true
			slot[k] = p
			if !ts[k].SameShape(er.sum[p]) {
				return nil, fmt.Errorf("secagg: sealed tensor %d has shape %v, want %v", id, ts[k].Shape, er.sum[p].Shape)
			}
		}
		// All validation passed: fold atomically, mirroring the
		// fl.Aggregator arithmetic (Σ wᵢuᵢ, then 1/Σ wᵢ at Finish).
		for k := range idx {
			tensor.AxPy(r.weight, ts[k], er.sum[slot[k]])
		}
		er.weight += r.weight
		er.count++
		er.folded[r.device] = true
		return nil, nil
	case cmdFinish:
		r := req.(finishReq)
		er, ok := st.rounds[r.round]
		if !ok {
			return nil, fmt.Errorf("%w: round %d not begun", ErrRoundMismatch, r.round)
		}
		if er.count != r.count {
			return nil, fmt.Errorf("%w: enclave folded %d updates, server folded %d", ErrRoundMismatch, er.count, r.count)
		}
		if er.count == 0 {
			return nil, errors.New("secagg: enclave aggregating zero updates")
		}
		if er.count < st.minRelease {
			// The accumulator is kept: the server may fold more updates
			// and retry, but nothing below the floor ever crosses back.
			return nil, fmt.Errorf("%w: enclave folded %d updates, release floor is %d", ErrCohortTooSmall, er.count, st.minRelease)
		}
		mean := make([]*tensor.Tensor, len(er.sum))
		inv := 1 / er.weight
		for k, s := range er.sum {
			mean[k] = tensor.Scale(s, inv) // fresh, non-secure tensors
		}
		releaseRound(env, st, r.round, er)
		return mean, nil
	case cmdAbort:
		round := req.(int)
		if er, ok := st.rounds[round]; ok {
			releaseRound(env, st, round, er)
		}
		return nil, nil
	case cmdSetFloor:
		floor := req.(int)
		if floor > st.minRelease {
			st.minRelease = floor
		}
		return st.minRelease, nil
	case cmdRelease:
		for _, device := range req.([]string) {
			delete(st.channels, device)
		}
		return nil, nil
	case cmdChannelCount:
		return len(st.channels), nil
	case cmdOfferCount:
		return len(st.offers), nil
	default:
		return nil, fmt.Errorf("secagg: unknown enclave command %d", cmd)
	}
}

// releaseRound frees a round's secure accumulator. Callers hold st.mu.
func releaseRound(env *tz.TAEnv, st *aggState, round int, er *enclaveRound) {
	for _, t := range er.sum {
		env.Mem.UnregisterTensor(t)
	}
	if er.region != nil {
		_ = env.Mem.Free(er.region)
	}
	delete(st.rounds, round)
}

// NewEnclave boots an aggregation enclave: a tz device named name with
// server-grade secure memory, the aggregation TA installed, and an open
// TA session. Pass tz.DeviceOption values to override the device
// configuration.
func NewEnclave(name string, opts ...tz.DeviceOption) (*Enclave, error) {
	all := append([]tz.DeviceOption{tz.WithSecureMemory(DefaultEnclaveMemory)}, opts...)
	dev := tz.NewDevice(name, all...)
	app := &aggTA{}
	if err := dev.Install(app); err != nil {
		return nil, err
	}
	sess, err := dev.OpenSession(app.UUID())
	if err != nil {
		return nil, err
	}
	return &Enclave{dev: dev, app: app, sess: sess}, nil
}

// Device returns the enclave's tz device (attestation provisioning,
// SMC accounting).
func (e *Enclave) Device() *tz.Device { return e.dev }

// Measurement returns the aggregation TA's attestation measurement.
func (e *Enclave) Measurement() ([32]byte, error) { return e.dev.Measurement(AggTAUUID) }

// Attest produces a quote over the aggregation TA for the given nonce.
func (e *Enclave) Attest(nonce []byte) (tz.Quote, error) { return e.dev.Attest(AggTAUUID, nonce) }

// NewOffer generates a trusted-channel offer inside the enclave and
// returns its handle and public key. The private half never leaves.
func (e *Enclave) NewOffer() (id uint64, pub []byte, err error) {
	resp, err := e.invoke(cmdOffer, nil)
	if err != nil {
		return 0, nil, err
	}
	r := resp.(offerResp)
	return r.id, r.pub, nil
}

// Establish completes a channel handshake inside the enclave, binding
// the resulting channel to the device name. It fails when the device
// already holds a channel — first establisher wins, so a duplicate
// name cannot clobber an honest client's keys.
func (e *Enclave) Establish(offerID uint64, device string, clientPub []byte) error {
	_, err := e.invoke(cmdEstablish, establishReq{offerID: offerID, device: device, clientPub: clientPub})
	return err
}

// DiscardOffer releases an unconsumed channel offer: a failed
// handshake must not leak offer state in the enclave for the life of
// the process.
func (e *Enclave) DiscardOffer(offerID uint64) {
	_, _ = e.invoke(cmdDiscardOffer, offerID)
}

// Seal encrypts plaintext for the named device's TA on its trusted
// channel (model distribution of protected tensors).
func (e *Enclave) Seal(device string, plaintext []byte) ([]byte, error) {
	resp, err := e.invoke(cmdSeal, sealReq{device: device, plaintext: plaintext})
	if err != nil {
		return nil, err
	}
	return resp.([]byte), nil
}

// Begin opens a round's accumulator for the given protected layout
// (sorted flat indices and their shapes).
func (e *Enclave) Begin(round int, idx []int, shapes [][]int) error {
	_, err := e.invoke(cmdBegin, beginReq{round: round, idx: idx, shapes: shapes})
	return err
}

// Fold validates and folds one client's sealed protected-layer update
// into the round accumulator with the given FedAvg weight. Validation
// is atomic: a rejected update leaves the accumulator untouched.
func (e *Enclave) Fold(device string, round int, sealed []byte, weight float64) error {
	_, err := e.invoke(cmdFold, foldReq{device: device, round: round, sealed: sealed, weight: weight})
	return err
}

// Finish closes a round and returns the weighted-mean protected update
// (aligned with the Begin indices) as fresh, non-secure tensors —
// the only data that ever leaves the enclave. count cross-checks the
// server's fold count against the enclave's.
func (e *Enclave) Finish(round int, count int) ([]*tensor.Tensor, error) {
	resp, err := e.invoke(cmdFinish, finishReq{round: round, count: count})
	if err != nil {
		return nil, err
	}
	return resp.([]*tensor.Tensor), nil
}

// Abort discards a round's accumulator (failed rounds).
func (e *Enclave) Abort(round int) {
	_, _ = e.invoke(cmdAbort, round)
}

// SetMinRelease arms the count-capped release policy: Finish refuses to
// publish an aggregate folded from fewer than floor updates
// (ErrCohortTooSmall). The floor is monotonic — a later call can raise
// it but never lower it, so once armed the policy outlives any
// misbehaviour of the untrusted server. It returns the effective floor.
func (e *Enclave) SetMinRelease(floor int) int {
	resp, err := e.invoke(cmdSetFloor, floor)
	if err != nil {
		return 0
	}
	return resp.(int)
}

// ReleaseChannels drops the per-device trusted channels the enclave
// holds for the given devices. Channels are session state: the engine
// releases them when a session closes or aborts, so the TA does not
// accumulate channel keys for the life of the process (and so the same
// devices can re-establish in a later session).
func (e *Enclave) ReleaseChannels(devices []string) {
	_, _ = e.invoke(cmdRelease, devices)
}

// ChannelCount reports the number of per-device trusted channels the
// enclave currently holds — leak accounting for tests and operators.
func (e *Enclave) ChannelCount() int {
	resp, err := e.invoke(cmdChannelCount, nil)
	if err != nil {
		return 0
	}
	return resp.(int)
}

// OfferCount reports the number of un-established channel offers the
// enclave currently holds.
func (e *Enclave) OfferCount() int {
	resp, err := e.invoke(cmdOfferCount, nil)
	if err != nil {
		return 0
	}
	return resp.(int)
}

// Close tears down the enclave session.
func (e *Enclave) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sess != nil {
		e.sess.Close()
		e.sess = nil
	}
}
