package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// AutoDegree, as a mask-degree configuration value, selects
// DegreeFor(n) per round: the CCS'20 ⌈log₂ n⌉ regime, the sweet spot
// between mask cost (O(k·n·model) fleet-wide) and dropout tolerance
// (⌊(k−1)/2⌋ arbitrary dropouts per round, see Graph).
const AutoDegree = -1

// degreeFloor is the minimum automatic degree. ⌈log₂ n⌉ alone leaves
// small cohorts with almost no worst-case dropout tolerance (k = 4 at
// n = 16 tolerates a single arbitrary dropout), so the automatic
// degree never drops below 6 edges — any 2 arbitrary mid-round
// dropouts — before the complete-graph cap takes over. Deployments
// expecting heavier churn pin a larger degree (MaskDegree > 0).
const degreeFloor = 6

// DegreeFor returns the automatic mask degree for an n-member cohort:
// ⌈log₂ n⌉ rounded up to even (the graph is a circulant of ±offsets,
// so effective degrees are even until the complete-graph cap), floored
// at degreeFloor. At n = 1024 this is k = 10: any 4 concurrent
// dropouts are survivable in the worst case, and the random-dropout
// tolerance (≥ k/2+1 of k neighbours must fold) is far higher. The
// result may exceed n−1 for tiny cohorts; NewGraph caps it.
func DegreeFor(n int) int {
	if n < 2 {
		return 0
	}
	k := bits.Len(uint(n - 1)) // = ⌈log₂ n⌉
	k = (k + 1) / 2 * 2
	return max(k, degreeFloor)
}

// Graph is one round's deterministic masking graph: the cohort is
// shuffled onto a ring by a PRG seeded from (round, member names), and
// each member pairs with the k/2 members on either side. Server and
// every client derive the identical graph from the roster alone — no
// extra protocol messages.
//
// The offsets ±1..±h make this a Harary-style circulant: it is
// h-connected, and after removing any ⌊(k−1)/2⌋ = h−1 vertices every
// surviving vertex still has ≥ h+1 = Threshold surviving neighbours —
// exactly enough to reconstruct its Shamir-shared self-mask seed.
type Graph struct {
	ring []string       // shuffled cohort; neighbours are ring offsets
	pos  map[string]int // device → ring position
	half int            // neighbours at circular distance 1..half
}

// NewGraph derives the round's masking graph over the cohort's device
// names. Duplicate names are rejected here — before any mask is
// derived — because PairSign cannot orient a pair of equal names (see
// PairSign). degree ≤ 0 selects DegreeFor(len(devices)); any degree is
// capped at the complete graph.
func NewGraph(round int, devices []string, degree int) (*Graph, error) {
	n := len(devices)
	sorted := make([]string, n)
	copy(sorted, devices)
	sort.Strings(sorted)
	pos := make(map[string]int, n)
	for i, d := range sorted {
		if _, dup := pos[d]; dup {
			return nil, fmt.Errorf("%w: duplicate device %q in cohort", ErrSelfInPairs, d)
		}
		pos[d] = i
	}
	if degree <= 0 {
		degree = DegreeFor(n)
	}
	h := (degree + 1) / 2
	if n > 0 && 2*h > n-1 {
		h = n / 2 // complete graph: circular distance ≤ ⌊n/2⌋ reaches everyone
	}

	// Seeded Fisher–Yates: the ring order is unpredictable without the
	// roster but identical for every party that has it.
	hsh := sha256.New()
	hsh.Write([]byte("secagg-mask-graph"))
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(round))
	hsh.Write(rb[:])
	for _, d := range sorted {
		binary.BigEndian.PutUint64(rb[:], uint64(len(d)))
		hsh.Write(rb[:])
		hsh.Write([]byte(d))
	}
	var seed [32]byte
	copy(seed[:], hsh.Sum(nil))
	prg := newPRG(seed)
	for i := n - 1; i > 0; i-- {
		j := int(prg.uint64() % uint64(i+1))
		sorted[i], sorted[j] = sorted[j], sorted[i]
	}
	for i, d := range sorted {
		pos[d] = i
	}
	return &Graph{ring: sorted, pos: pos, half: h}, nil
}

// prg draws deterministic uint64s from an AES-256-CTR keystream — the
// same primitive family the mask expansion uses (which keys AES-128
// for speed on its much larger volume), so graph derivation adds no
// new cryptographic assumptions.
type prg struct {
	stream cipher.Stream
	buf    [64]byte
	off    int
}

func newPRG(seed [32]byte) *prg {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		panic("secagg: AES key size invariant violated: " + err.Error())
	}
	var iv [aes.BlockSize]byte
	p := &prg{stream: cipher.NewCTR(block, iv[:])}
	p.off = len(p.buf)
	return p
}

func (p *prg) uint64() uint64 {
	if p.off == len(p.buf) {
		clear(p.buf[:])
		p.stream.XORKeyStream(p.buf[:], p.buf[:])
		p.off = 0
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return v
}

// Size returns the cohort size.
func (g *Graph) Size() int { return len(g.ring) }

// Degree returns the effective per-member degree: min(2·half, n−1).
func (g *Graph) Degree() int {
	n := len(g.ring)
	if n == 0 {
		return 0
	}
	return min(2*g.half, n-1)
}

// Threshold returns the Shamir threshold for self-mask seed shares:
// k/2 + 1 of the k neighbours must survive (and respond) to
// reconstruct a seed. 0 when the graph has no edges.
func (g *Graph) Threshold() int {
	d := g.Degree()
	if d == 0 {
		return 0
	}
	return d/2 + 1
}

// Contains reports cohort membership.
func (g *Graph) Contains(device string) bool {
	_, ok := g.pos[device]
	return ok
}

// Neighbors returns a member's masking partners in sorted name order —
// the canonical order both sides use to assign Shamir share indices
// (ShareIndex). It returns nil for devices outside the cohort.
func (g *Graph) Neighbors(device string) []string {
	i, ok := g.pos[device]
	if !ok {
		return nil
	}
	n := len(g.ring)
	out := make([]string, 0, g.Degree())
	for d := 1; d <= g.half; d++ {
		lo, hi := (i-d+n)%n, (i+d)%n
		out = append(out, g.ring[hi])
		if lo != hi && lo != i {
			out = append(out, g.ring[lo])
		}
	}
	sort.Strings(out)
	return out
}

// ShareIndex returns the 1-based Shamir x-coordinate assigned to
// holder for owner's self-mask seed: holder's position in owner's
// sorted neighbour list. Both the owner (splitting) and the server
// (combining) derive it from the graph, so a share arriving with any
// other x is a protocol fault, not an interpolation surprise. Returns
// 0 when holder is not a neighbour of owner.
func (g *Graph) ShareIndex(owner, holder string) int {
	for i, d := range g.Neighbors(owner) {
		if d == holder {
			return i + 1
		}
	}
	return 0
}
