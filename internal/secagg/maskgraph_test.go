package secagg

import (
	"errors"
	"fmt"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

func graphDevices(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dev-%04d", i)
	}
	return out
}

// TestPairSignTies: self == peer is not a pair — the sign is 0, which
// no masking path accepts. Duplicate device IDs must be rejected
// before any mask is derived: by NewGraph and by MaskedUpdate on the
// roster (the server additionally dedups at selection).
func TestPairSignTies(t *testing.T) {
	if got := PairSign("a", "b"); got != 1 {
		t.Fatalf("PairSign(a,b) = %d", got)
	}
	if got := PairSign("b", "a"); got != -1 {
		t.Fatalf("PairSign(b,a) = %d", got)
	}
	if got := PairSign("twin", "twin"); got != 0 {
		t.Fatalf("PairSign(twin,twin) = %d, want 0 (not a pair)", got)
	}
	if PairSign("a", "b") != -PairSign("b", "a") {
		t.Fatal("pair signs must be antisymmetric")
	}
	if _, err := NewGraph(0, []string{"a", "b", "a"}, 2); err == nil {
		t.Fatal("NewGraph must reject duplicate devices before mask derivation")
	}
}

// TestGraphDeterministicAndSymmetric: every party derives the same
// graph from the roster regardless of input order; the neighbour
// relation is symmetric; different rounds shuffle differently.
func TestGraphDeterministicAndSymmetric(t *testing.T) {
	devs := graphDevices(37)
	g1, err := NewGraph(5, devs, 6)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]string, len(devs))
	for i, d := range devs {
		rev[len(devs)-1-i] = d
	}
	g2, err := NewGraph(5, rev, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		n1, n2 := g1.Neighbors(d), g2.Neighbors(d)
		if len(n1) != len(n2) {
			t.Fatalf("roster order changed the graph for %s", d)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("roster order changed the graph for %s", d)
			}
		}
		for _, p := range n1 {
			found := false
			for _, q := range g1.Neighbors(p) {
				if q == d {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric edge %s→%s", d, p)
			}
		}
	}
	g3, err := NewGraph(6, devs, 6)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for _, d := range devs {
		a, b := g1.Neighbors(d), g3.Neighbors(d)
		for i := range a {
			if a[i] != b[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different rounds must derive different graphs")
	}
}

// connectedAfter reports whether the survivors of the graph stay
// connected once the dropped set is removed (BFS over neighbour sets).
func connectedAfter(g *Graph, devs []string, dropped map[string]bool) bool {
	var start string
	alive := 0
	for _, d := range devs {
		if !dropped[d] {
			alive++
			if start == "" {
				start = d
			}
		}
	}
	if alive == 0 {
		return true
	}
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for _, p := range g.Neighbors(d) {
			if !dropped[p] && !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	return len(seen) == alive
}

// TestGraphConnectivityAndDropoutRecovery: the property test from the
// issue. For cohort sizes across [2, 4096] the auto-degree graph is
// connected, the degree and threshold match the spec, and after
// ⌊(k−1)/2⌋ dropouts — both an adversarial consecutive block and a
// pseudo-random set — the survivor graph stays connected and every
// survivor keeps ≥ Threshold surviving neighbours, so every folded
// client's Shamir-shared self seed remains reconstructible (asserted
// end to end through SplitSeed/CombineSeed).
func TestGraphConnectivityAndDropoutRecovery(t *testing.T) {
	sizes := []int{}
	limit := 512
	if testing.Short() {
		limit = 96
	}
	for n := 2; n <= limit; n++ {
		sizes = append(sizes, n)
	}
	if !testing.Short() {
		sizes = append(sizes, 600, 777, 1024, 1500, 2048, 3000, 4095, 4096)
	}
	for _, n := range sizes {
		devs := graphDevices(n)
		k := DegreeFor(n)
		g, err := NewGraph(n, devs, k)
		if err != nil {
			t.Fatal(err)
		}
		wantDeg := min(k, n-1)
		for _, d := range devs {
			if got := len(g.Neighbors(d)); got != g.Degree() {
				t.Fatalf("n=%d: %s has %d neighbours, graph degree %d", n, d, got, g.Degree())
			}
		}
		if g.Degree() < min(wantDeg-1, n-1) || g.Degree() > wantDeg {
			t.Fatalf("n=%d: degree %d, want ≈%d", n, g.Degree(), wantDeg)
		}
		if th := g.Threshold(); th != g.Degree()/2+1 {
			t.Fatalf("n=%d: threshold %d for degree %d", n, th, g.Degree())
		}
		if !connectedAfter(g, devs, nil) {
			t.Fatalf("n=%d: graph not connected", n)
		}

		drops := (g.Degree() - 1) / 2
		// Adversarial: a consecutive ring block around one member's
		// neighbourhood is the worst case for that member.
		block := map[string]bool{}
		for i := 0; i < drops; i++ {
			block[g.ring[(1+i)%n]] = true
		}
		// Pseudo-random: spread across the ring.
		spread := map[string]bool{}
		for i := 0; i < drops; i++ {
			spread[g.ring[(i*7+3)%n]] = true
		}
		for name, dropped := range map[string]map[string]bool{"block": block, "spread": spread} {
			if !connectedAfter(g, devs, dropped) {
				t.Fatalf("n=%d: %s dropout of %d disconnected the graph", n, name, drops)
			}
			for _, d := range devs {
				if dropped[d] {
					continue
				}
				alive := 0
				for _, p := range g.Neighbors(d) {
					if !dropped[p] {
						alive++
					}
				}
				if alive < g.Threshold() {
					t.Fatalf("n=%d: %s dropout leaves %s with %d of %d threshold holders",
						n, name, d, alive, g.Threshold())
				}
			}
		}

		// End-to-end seed recovery for one survivor under the block
		// dropout: split among its neighbours, lose the dropped ones,
		// reconstruct from the rest.
		if g.Degree() == 0 {
			continue
		}
		owner := g.ring[0]
		neigh := g.Neighbors(owner)
		xs := make([]uint8, len(neigh))
		for i := range neigh {
			xs[i] = uint8(i + 1)
		}
		seed := [32]byte{1, 2, 3, byte(n)}
		shares, err := SplitSeed(seed, xs, g.Threshold(), owner)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var kept []Share
		for i, d := range neigh {
			if !block[d] {
				kept = append(kept, shares[i])
			}
		}
		got, err := CombineSeed(kept, g.Threshold())
		if err != nil {
			t.Fatalf("n=%d: combining %d shares: %v", n, len(kept), err)
		}
		if got != seed {
			t.Fatalf("n=%d: reconstructed seed differs", n)
		}
	}
}

// TestShamirThreshold: t−1 shares reveal nothing usable — CombineSeed
// refuses below the threshold, and interpolating a wrong subset yields
// a different value than the secret (sanity, not a secrecy proof).
func TestShamirThreshold(t *testing.T) {
	seed := [32]byte{9, 8, 7, 6, 5}
	xs := []uint8{1, 2, 3, 4, 5, 6}
	shares, err := SplitSeed(seed, xs, 4, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineSeed(shares[:3], 4); !errors.Is(err, ErrShareCount) {
		t.Fatalf("below-threshold combine = %v, want ErrShareCount", err)
	}
	// Any t-subset reconstructs.
	for _, pick := range [][]int{{0, 1, 2, 3}, {2, 3, 4, 5}, {0, 2, 4, 5}} {
		sub := make([]Share, len(pick))
		for i, j := range pick {
			sub[i] = shares[j]
		}
		got, err := CombineSeed(sub, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got != seed {
			t.Fatalf("subset %v reconstructed a different seed", pick)
		}
	}
	// Deterministic: the same (seed, context) re-splits identically.
	again, err := SplitSeed(seed, xs, 4, "owner")
	if err != nil {
		t.Fatal(err)
	}
	for i := range shares {
		if string(shares[i].Data) != string(again[i].Data) {
			t.Fatal("re-split diverged — flsim reproducibility broken")
		}
	}
	other, err := SplitSeed(seed, xs, 4, "other-owner")
	if err != nil {
		t.Fatal(err)
	}
	if string(other[0].Data) == string(shares[0].Data) {
		t.Fatal("context must separate sharings")
	}
	// Hostile shares fail loudly.
	if _, err := CombineSeed([]Share{{X: 0, Data: make([]byte, 32)}}, 1); err == nil {
		t.Fatal("zero x must fail")
	}
	if _, err := CombineSeed([]Share{shares[0], shares[0], shares[1], shares[2]}, 4); err == nil {
		t.Fatal("duplicate x must fail")
	}
	if _, err := CombineSeed([]Share{{X: 1, Data: []byte{1}}}, 1); err == nil {
		t.Fatal("short share data must fail")
	}
	if _, err := SplitSeed(seed, []uint8{1, 1}, 2, "o"); err == nil {
		t.Fatal("duplicate x-coordinates must fail at split")
	}
	if _, err := SplitSeed(seed, xs, 7, "o"); err == nil {
		t.Fatal("t > n must fail")
	}
}

// TestWrappedShareTransport: wrap/unwrap round-trips under the
// direction-scoped key; any bit flip, truncation, wrong direction,
// wrong round or wrong pair key fails authentication.
func TestWrappedShareTransport(t *testing.T) {
	var pair, otherPair [32]byte
	pair[0], otherPair[0] = 1, 2
	sh := Share{X: 3, Data: make([]byte, SeedShareLen)}
	for i := range sh.Data {
		sh.Data[i] = byte(i * 7)
	}
	key := shareWrapKey(pair, 4, "alice")
	blob := wrapShare(key, sh)
	if len(blob) != WrappedShareLen {
		t.Fatalf("blob is %d bytes, want %d", len(blob), WrappedShareLen)
	}
	got, err := unwrapShare(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.X != sh.X || string(got.Data) != string(sh.Data) {
		t.Fatal("round trip corrupted the share")
	}
	bad := append([]byte(nil), blob...)
	bad[5] ^= 1
	if _, err := unwrapShare(key, bad); !errors.Is(err, ErrShareBlob) {
		t.Fatalf("tampered blob = %v, want ErrShareBlob", err)
	}
	if _, err := unwrapShare(key, blob[:10]); !errors.Is(err, ErrShareBlob) {
		t.Fatal("truncated blob must fail")
	}
	for name, wrong := range map[string][32]byte{
		"other direction": shareWrapKey(pair, 4, "bob"),
		"other round":     shareWrapKey(pair, 5, "alice"),
		"other pair":      shareWrapKey(otherPair, 4, "alice"),
	} {
		if _, err := unwrapShare(wrong, blob); err == nil {
			t.Fatalf("%s key must not authenticate", name)
		}
	}
	if shareWrapKey(pair, 4, "alice") == shareWrapKey(pair, 4, "bob") {
		t.Fatal("wrap keys must separate the two directions of a pair")
	}
}

// TestDoubleMaskedAggregation drives the full k-regular double-masking
// data path at the secagg layer: cohort masks with MaskedUpdate
// (degree > 0), some clients straggle, the server-side reconciliation
// removes dangling pair masks via revealed pair seeds and every folded
// self-mask via shares reconstructed from Reconcile answers — and the
// mean is bit-identical to the plaintext weighted mean of the folded
// updates.
func TestDoubleMaskedAggregation(t *testing.T) {
	const n, round = 12, 2
	ref := dyadicUpdate(0, [][]int{{4, 3}, {5}})
	shapes := [][]int{{4, 3}, {5}}
	sessions, cohort := testCohort(t, n)
	degree := DegreeFor(n)
	names := make([]string, n)
	for i, p := range cohort {
		names[i] = p.Device
	}
	graph, err := NewGraph(round, names, degree)
	if err != nil {
		t.Fatal(err)
	}

	droppedSet := map[string]bool{}
	allowed := (graph.Degree() - 1) / 2
	for i := 0; i < allowed; i++ {
		droppedSet[cohort[2+i].Device] = true
	}

	msum := NewMaskedSum(ref, nil, DefaultScaleBits)
	wrapped := map[string]map[string][]byte{} // owner → holder → blob
	foldedSet := map[string]bool{}
	byDevice := map[string]*ClientSession{}
	var updates [][]*tensor.Tensor
	var weights []float64
	for i, s := range sessions {
		byDevice[cohort[i].Device] = s
		upd := dyadicUpdate(10+i, shapes)
		w := uint64(1 + i%3)
		masked, shares, err := s.MaskedUpdate(round, cohort, degree, upd, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != graph.Degree() {
			t.Fatalf("client %d sent %d shares, want %d", i, len(shares), graph.Degree())
		}
		if droppedSet[cohort[i].Device] {
			continue // straggled: nothing reaches the server
		}
		if err := msum.Add(masked, w); err != nil {
			t.Fatal(err)
		}
		foldedSet[cohort[i].Device] = true
		m := map[string][]byte{}
		for _, ws := range shares {
			m[ws.To] = ws.Blob
		}
		wrapped[cohort[i].Device] = m
		updates = append(updates, upd)
		weights = append(weights, float64(w))
	}

	// Server-side reconciliation: per folded survivor, request pair
	// seeds for dropped neighbours and self-seed shares for folded ones.
	seedShares := map[string][]Share{}
	for d, folded := range foldedSet {
		if !folded {
			continue
		}
		var dropped []string
		var envs []SeedEnvelope
		for _, p := range graph.Neighbors(d) {
			if droppedSet[p] {
				dropped = append(dropped, p)
			} else if foldedSet[p] {
				envs = append(envs, SeedEnvelope{Owner: p, Blob: wrapped[p][d]})
			}
		}
		ans, err := byDevice[d].Reconcile(round, dropped, envs)
		if err != nil {
			t.Fatal(err)
		}
		for _, ps := range ans.Pairs {
			msum.ApplySeedMask(ps.Seed, -PairSign(d, ps.Device))
		}
		for _, ss := range ans.Seeds {
			if want := graph.ShareIndex(ss.Owner, d); int(ss.X) != want {
				t.Fatalf("share x=%d from %s for %s, want %d", ss.X, d, ss.Owner, want)
			}
			seedShares[ss.Owner] = append(seedShares[ss.Owner], Share{X: ss.X, Data: ss.Data})
		}
	}
	for owner := range foldedSet {
		seed, err := CombineSeed(seedShares[owner], graph.Threshold())
		if err != nil {
			t.Fatalf("self seed of %s: %v", owner, err)
		}
		msum.ApplySeedMask(seed, -1)
	}

	got, err := msum.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := plainWeightedMean(updates, weights, ref)
	for i := range ref {
		for j := range want[i].Data {
			if got[i].Data[j] != want[i].Data[j] {
				t.Fatalf("tensor %d elem %d: double-masked %v != plaintext %v", i, j, got[i].Data[j], want[i].Data[j])
			}
		}
	}
}

// TestReconcileRoleExclusivity: the client-side invariant that closes
// the late-update unmasking window — one peer, one role per round.
func TestReconcileRoleExclusivity(t *testing.T) {
	const n, round = 8, 1
	sessions, cohort := testCohort(t, n)
	degree := DegreeFor(n)
	upd := dyadicUpdate(1, [][]int{{3}})
	wrapped := map[string]map[string][]byte{}
	for i, s := range sessions {
		_, shares, err := s.MaskedUpdate(round, cohort, degree, upd, 1)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string][]byte{}
		for _, ws := range shares {
			m[ws.To] = ws.Blob
		}
		wrapped[cohort[i].Device] = m
	}
	names := make([]string, n)
	for i, p := range cohort {
		names[i] = p.Device
	}
	graph, err := NewGraph(round, names, degree)
	if err != nil {
		t.Fatal(err)
	}
	self := cohort[0].Device
	neigh := graph.Neighbors(self)
	peer := neigh[0]

	// Both roles in one request must fail.
	if _, err := sessions[0].Reconcile(round, []string{peer},
		[]SeedEnvelope{{Owner: peer, Blob: wrapped[peer][self]}}); !errors.Is(err, ErrRoleConflict) {
		t.Fatalf("dual-role request = %v, want ErrRoleConflict", err)
	}
	// Role flip across requests of the same round must fail too — roles
	// are sticky even when the request that set them later errored.
	flip := neigh[2]
	if _, err := sessions[0].Reconcile(round, nil,
		[]SeedEnvelope{{Owner: flip, Blob: wrapped[flip][self]}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sessions[0].Reconcile(round, []string{flip}, nil); !errors.Is(err, ErrRoleConflict) {
		t.Fatalf("role flip = %v, want ErrRoleConflict", err)
	}
	// Own name is refused in either list.
	if _, err := sessions[0].Reconcile(round, []string{self}, nil); !errors.Is(err, ErrSelfInPairs) {
		t.Fatalf("self as dropped = %v, want ErrSelfInPairs", err)
	}
	if _, err := sessions[0].Reconcile(round, nil,
		[]SeedEnvelope{{Owner: self, Blob: wrapped[self][peer]}}); !errors.Is(err, ErrSelfInPairs) {
		t.Fatalf("self as survivor = %v, want ErrSelfInPairs", err)
	}
	// Non-neighbours are refused; unknown rounds are refused.
	var far string
	nm := map[string]bool{self: true}
	for _, d := range neigh {
		nm[d] = true
	}
	for _, d := range names {
		if !nm[d] {
			far = d
			break
		}
	}
	if far != "" {
		if _, err := sessions[0].Reconcile(round, []string{far}, nil); !errors.Is(err, ErrNoPair) {
			t.Fatalf("non-neighbour = %v, want ErrNoPair", err)
		}
	}
	if _, err := sessions[0].Reconcile(round+1, nil, nil); !errors.Is(err, ErrNoRoundState) {
		t.Fatalf("unknown round = %v, want ErrNoRoundState", err)
	}
	// A corrupted envelope is skipped, not fatal, and reveals nothing.
	bad := append([]byte(nil), wrapped[neigh[1]][self]...)
	bad[0] ^= 0xff
	ans, err := sessions[0].Reconcile(round, nil, []SeedEnvelope{{Owner: neigh[1], Blob: bad}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Seeds) != 0 {
		t.Fatal("corrupt blob must not yield a share")
	}
}

// FuzzMaskShares feeds hostile wrapped-share blobs and share material
// through the unwrap and combine paths: they must never panic, never
// accept a forged MAC, and never reconstruct from hostile shares
// without the threshold being met.
func FuzzMaskShares(f *testing.F) {
	var pair [32]byte
	pair[0] = 7
	key := shareWrapKey(pair, 3, "owner")
	good := wrapShare(key, Share{X: 5, Data: make([]byte, SeedShareLen)})
	f.Add(good, uint8(1), []byte{})
	f.Add([]byte{}, uint8(0), make([]byte, SeedShareLen))
	f.Add(good[:20], uint8(9), make([]byte, 40))
	f.Add(append(append([]byte{}, good...), 1), uint8(255), make([]byte, 31))
	f.Fuzz(func(t *testing.T, blob []byte, x uint8, data []byte) {
		sh, err := unwrapShare(key, blob)
		if err == nil {
			// Only an authentic blob may unwrap — for a fuzzed mutation
			// that means bit-identity with the good blob.
			if string(blob) != string(good) {
				t.Fatalf("forged blob authenticated: %x", blob)
			}
			if sh.X != 5 {
				t.Fatalf("authentic blob unwrapped wrong share: %+v", sh)
			}
		}
		shares := []Share{{X: x, Data: data}, {X: x + 1, Data: data}}
		if _, err := CombineSeed(shares, 3); !errors.Is(err, ErrShareParams) && !errors.Is(err, ErrShareCount) {
			if len(data) != SeedShareLen || x == 0 || x+1 == 0 {
				t.Fatalf("hostile shares combined: x=%d len=%d err=%v", x, len(data), err)
			}
		}
	})
}
