package secagg

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// Shamir sharing over GF(2⁸) for self-mask seeds (double masking).
// Each byte of the 32-byte seed is the constant term of an independent
// degree-(t−1) polynomial; a holder's share is the polynomials
// evaluated at its x-coordinate. Any t shares reconstruct the seed by
// Lagrange interpolation at x=0; t−1 reveal nothing.

// Sharing errors.
var (
	ErrShareParams = errors.New("secagg: invalid sharing parameters")
	ErrShareCount  = errors.New("secagg: not enough seed shares")
	ErrShareBlob   = errors.New("secagg: bad wrapped share blob")
)

// SeedShareLen is the byte length of one share's data: one evaluation
// per seed byte.
const SeedShareLen = 32

// Share is one Shamir share of a 32-byte self-mask seed: the holder's
// x-coordinate (1-based, assigned by Graph.ShareIndex) and the
// per-byte polynomial evaluations.
type Share struct {
	X    uint8
	Data []byte
}

// GF(2⁸) log/exp tables over the AES polynomial x⁸+x⁴+x³+x+1,
// generator 3. exp is doubled so gfMul needs no modular reduction of
// the log sum.
var (
	gfExp [510]uint8
	gfLog [256]uint8
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = uint8(x)
		gfLog[x] = uint8(i)
		// multiply by the generator 3 = x+1: shift-and-add with reduction
		x = x<<1 ^ x
		if x&0x100 != 0 {
			x ^= 0x11b
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b uint8) uint8 {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b uint8) uint8 {
	if b == 0 {
		panic("secagg: GF(2⁸) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// SplitSeed shares a 32-byte seed among holders at the given 1-based
// x-coordinates with reconstruction threshold t. The polynomial
// coefficients are drawn deterministically from a PRG keyed by the
// seed itself and the context string, so the same (seed, context)
// always yields the same shares — required for flsim reproducibility —
// while remaining unpredictable to anyone without the seed.
func SplitSeed(seed [32]byte, xs []uint8, t int, context string) ([]Share, error) {
	n := len(xs)
	if t < 1 || t > n || n > 255 {
		return nil, fmt.Errorf("%w: t=%d over %d holders", ErrShareParams, t, n)
	}
	seen := make(map[uint8]bool, n)
	for _, x := range xs {
		if x == 0 || seen[x] {
			return nil, fmt.Errorf("%w: bad x-coordinate %d", ErrShareParams, x)
		}
		seen[x] = true
	}
	h := sha256.New()
	h.Write([]byte("secagg-shamir-coef"))
	h.Write(seed[:])
	h.Write([]byte(context))
	var ck [32]byte
	copy(ck[:], h.Sum(nil))
	prg := newPRG(ck)

	// coef[b][j] is the x^(j+1) coefficient of byte b's polynomial; the
	// constant term is the seed byte itself.
	coef := make([][]uint8, SeedShareLen)
	for b := range coef {
		c := make([]uint8, t-1)
		for j := range c {
			c[j] = uint8(prg.uint64())
		}
		coef[b] = c
	}
	out := make([]Share, n)
	for i, x := range xs {
		data := make([]byte, SeedShareLen)
		for b := 0; b < SeedShareLen; b++ {
			// Horner, highest coefficient first, constant term last.
			acc := uint8(0)
			for j := t - 2; j >= 0; j-- {
				acc = gfMul(acc, x) ^ coef[b][j]
			}
			data[b] = gfMul(acc, x) ^ seed[b]
		}
		out[i] = Share{X: x, Data: data}
	}
	return out, nil
}

// CombineSeed reconstructs a seed from ≥ t shares (extra shares are
// ignored; the first t distinct x-coordinates are used). It fails on
// duplicate or zero x-coordinates and on short share data — garbage in
// must fail loudly, never interpolate quietly into a wrong seed.
func CombineSeed(shares []Share, t int) ([32]byte, error) {
	var seed [32]byte
	if t < 1 {
		return seed, ErrShareParams
	}
	use := make([]Share, 0, t)
	seen := make(map[uint8]bool, t)
	for _, sh := range shares {
		if sh.X == 0 || seen[sh.X] || len(sh.Data) != SeedShareLen {
			return seed, fmt.Errorf("%w: x=%d data=%dB", ErrShareParams, sh.X, len(sh.Data))
		}
		seen[sh.X] = true
		use = append(use, sh)
		if len(use) == t {
			break
		}
	}
	if len(use) < t {
		return seed, fmt.Errorf("%w: %d of %d", ErrShareCount, len(use), t)
	}
	for i, si := range use {
		// Lagrange basis at x=0: Π_{j≠i} x_j / (x_j ⊕ x_i).
		li := uint8(1)
		for j, sj := range use {
			if j == i {
				continue
			}
			li = gfMul(li, gfDiv(sj.X, sj.X^si.X))
		}
		for b := 0; b < SeedShareLen; b++ {
			seed[b] ^= gfMul(li, si.Data[b])
		}
	}
	return seed, nil
}

// Wrapped-share transport. A client Shamir-shares its self-mask seed
// and sends each share to the server wrapped (encrypted + MAC'd) for
// one neighbour, riding the MaskedUp upload. During reconciliation the
// server forwards the blob to the holder, which unwraps it and — only
// in the survivor role — reveals the inner share. The wrap key is
// derived from the pair secret, the round, and the share owner's name:
// including the owner separates the two directions of a pair (each
// wraps shares for the other in the same round), so the AES-CTR
// keystream is never reused.

const (
	wrappedPlainLen = 1 + SeedShareLen // x-coordinate ‖ share data
	wrapMACLen      = 16
	// WrappedShareLen is the exact on-wire size of a wrapped share
	// blob; the server rejects any other length before storing it.
	WrappedShareLen = wrappedPlainLen + wrapMACLen
)

// WrappedShare is one wrapped self-mask seed share riding a MaskedUp:
// addressed to the neighbour that can unwrap it.
type WrappedShare struct {
	To   string
	Blob []byte
}

// SeedEnvelope is a server→survivor forward during reconciliation: the
// share owner's name and the blob that owner wrapped for the
// recipient.
type SeedEnvelope struct {
	Owner string
	Blob  []byte
}

// SeedShare is a survivor→server revelation: one unwrapped Shamir
// share of the named owner's self-mask seed.
type SeedShare struct {
	Owner string
	X     uint8
	Data  []byte
}

// shareWrapKey derives the direction-scoped wrapping key for
// transporting owner's seed shares in one round.
func shareWrapKey(pair [32]byte, round int, owner string) [32]byte {
	h := sha256.New()
	h.Write([]byte("secagg-share-wrap"))
	h.Write(pair[:])
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(round))
	h.Write(rb[:])
	h.Write([]byte(owner))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func wrapMAC(key [32]byte, ct []byte) []byte {
	h := sha256.New()
	h.Write([]byte("secagg-share-mac"))
	h.Write(key[:])
	h.Write(ct)
	return h.Sum(nil)[:wrapMACLen]
}

// wrapShare encrypts-then-MACs one share under the direction key.
func wrapShare(key [32]byte, sh Share) []byte {
	pt := make([]byte, wrappedPlainLen)
	pt[0] = sh.X
	copy(pt[1:], sh.Data)
	ct := make([]byte, wrappedPlainLen, WrappedShareLen)
	streamXOR(key, pt, ct)
	return append(ct, wrapMAC(key, ct)...)
}

// unwrapShare verifies and decrypts a wrapped share blob. Tampered or
// truncated blobs fail loudly (ErrShareBlob) — a quietly-wrong share
// would corrupt the reconstructed seed and so the published aggregate.
func unwrapShare(key [32]byte, blob []byte) (Share, error) {
	if len(blob) != WrappedShareLen {
		return Share{}, fmt.Errorf("%w: %d bytes", ErrShareBlob, len(blob))
	}
	ct, mac := blob[:wrappedPlainLen], blob[wrappedPlainLen:]
	if subtle.ConstantTimeCompare(mac, wrapMAC(key, ct)) != 1 {
		return Share{}, fmt.Errorf("%w: MAC mismatch", ErrShareBlob)
	}
	pt := make([]byte, wrappedPlainLen)
	streamXOR(key, ct, pt)
	sh := Share{X: pt[0], Data: pt[1:]}
	if sh.X == 0 {
		return Share{}, fmt.Errorf("%w: zero x-coordinate", ErrShareBlob)
	}
	return sh, nil
}

// streamXOR applies the AES-256-CTR keystream for key over src into
// dst (same primitive as the mask expansion).
func streamXOR(key [32]byte, src, dst []byte) {
	p := newPRG(key)
	for i := range src {
		dst[i] = src[i] ^ byte(p.uint64())
	}
}
