package secagg

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// Reconciliation-role errors (k-regular double masking).
var (
	// ErrRoleConflict is returned when the server asks this client to
	// treat one peer as both dropped (reveal the pair seed) and
	// surviving (reveal its self-seed share) in the same round. Honouring
	// both would hand the server everything it needs to unmask that
	// peer's late update — the exact hole double masking closes — so the
	// client refuses and the round fails instead.
	ErrRoleConflict = errors.New("secagg: peer claimed both dropped and surviving in one round")
	// ErrNoRoundState is returned when a reconciliation request arrives
	// for a round this client never masked an update for.
	ErrNoRoundState = errors.New("secagg: no masking state for round")
)

// ClientSession is the device side of the masking protocol for one FL
// session: it owns the mask keypair announced during the handshake and
// turns local updates into masked ring-level tensors.
type ClientSession struct {
	device    string
	key       *MaskKey
	scaleBits int

	// Per-round reconciliation state (k-regular mode): the graph the
	// update was masked under and the roles already conceded per peer.
	// A peer may be treated as dropped or as surviving in a round —
	// never both (ErrRoleConflict).
	round  int
	graph  *Graph
	peers  map[string]Peer
	roles  map[string]int
}

const (
	roleDropped  = 1
	roleSurvivor = 2
)

// NewClientSession creates the masking state for one session. A nil
// maskSeed draws the keypair from crypto/rand; a non-nil seed derives
// it deterministically (simulations, tests). scaleBits ≤ 0 selects
// DefaultScaleBits.
func NewClientSession(device string, maskSeed []byte, scaleBits int) (*ClientSession, error) {
	var key *MaskKey
	var err error
	if maskSeed != nil {
		key, err = MaskKeyFromSeed(maskSeed)
	} else {
		key, err = NewMaskKey()
	}
	if err != nil {
		return nil, err
	}
	if scaleBits <= 0 {
		scaleBits = DefaultScaleBits
	}
	if scaleBits > MaxScaleBits {
		return nil, fmt.Errorf("secagg: scale bits %d exceed maximum %d", scaleBits, MaxScaleBits)
	}
	return &ClientSession{device: device, key: key, scaleBits: scaleBits}, nil
}

// MaskPub returns the mask public key for the Attest message.
func (s *ClientSession) MaskPub() []byte { return s.key.Public() }

// ScaleBits returns the session's fixed-point precision.
func (s *ClientSession) ScaleBits() int { return s.scaleBits }

// roundSeedWith derives the round-scoped pair seed with one peer.
func (s *ClientSession) roundSeedWith(peer Peer, round int) ([32]byte, error) {
	pair, err := s.key.pairSecret(peer.Pub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: pairing with %s: %w", peer.Device, err)
	}
	return RoundSeed(pair, round), nil
}

// selfSeed derives the round-scoped double-masking self seed: secret
// (bound to the private mask key) but deterministic per round, so
// simulated sessions reproduce exactly.
func (s *ClientSession) selfSeed(round int) [32]byte {
	h := sha256.New()
	h.Write([]byte("secagg-self-seed"))
	h.Write(s.key.priv.Bytes())
	var rb [8]byte
	binary.BigEndian.PutUint64(rb[:], uint64(round))
	h.Write(rb[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// MaskedUpdate quantises the update (nil entries mark protected
// positions travelling through the sealed path), multiplies by the
// client's FedAvg weight in the ring, and masks it. The cohort must
// contain this client exactly once and no name twice.
//
// degree 0 is the legacy full-pairwise mode: one mask per cohort peer,
// no self-mask, no shares — byte-compatible with pre-double-masking
// cohorts. degree > 0 masks only against the k-regular graph
// neighbours, adds the self-mask PRG(selfSeed), and returns the
// Shamir shares of that seed wrapped for each neighbour (threshold
// Graph.Threshold), which ride the MaskedUp upload.
func (s *ClientSession) MaskedUpdate(round int, cohort []Peer, degree int, upd []*tensor.Tensor, weight uint64) ([]*wire.U64Tensor, []WrappedShare, error) {
	if weight == 0 {
		return nil, nil, fmt.Errorf("secagg: zero update weight")
	}
	out := make([]*wire.U64Tensor, len(upd))
	var active [][]uint64
	for i, t := range upd {
		if t == nil {
			continue
		}
		q := Quantise(t, ScaleFor(s.scaleBits), weight)
		out[i] = q
		active = append(active, q.Levels)
	}

	self := 0
	peers := make(map[string]Peer, len(cohort))
	for _, peer := range cohort {
		if _, dup := peers[peer.Device]; dup {
			return nil, nil, fmt.Errorf("secagg: duplicate device %q in cohort", peer.Device)
		}
		peers[peer.Device] = peer
		if peer.Device == s.device {
			self++
		}
	}
	if self != 1 {
		return nil, nil, fmt.Errorf("secagg: client %q appears %d times in cohort", s.device, self)
	}

	if degree == 0 {
		s.round, s.graph, s.peers, s.roles = round, nil, nil, nil
		for _, peer := range cohort {
			if peer.Device == s.device {
				continue
			}
			seed, err := s.roundSeedWith(peer, round)
			if err != nil {
				return nil, nil, err
			}
			streamMask(seed, PairSign(s.device, peer.Device), active)
		}
		return out, nil, nil
	}

	names := make([]string, len(cohort))
	for i, p := range cohort {
		names[i] = p.Device
	}
	graph, err := NewGraph(round, names, degree)
	if err != nil {
		return nil, nil, err
	}
	neigh := graph.Neighbors(s.device)
	for _, d := range neigh {
		seed, err := s.roundSeedWith(peers[d], round)
		if err != nil {
			return nil, nil, err
		}
		streamMask(seed, PairSign(s.device, d), active)
	}

	var shares []WrappedShare
	if len(neigh) > 0 {
		// Double mask: the self-mask stays on the update until the server
		// reconstructs its seed from ≥ threshold neighbour shares — so a
		// straggler's masks can be reconciled without ever exposing a
		// folded update, and a late update stays masked by construction.
		seed := s.selfSeed(round)
		streamMask(seed, 1, active)
		xs := make([]uint8, len(neigh))
		for i := range neigh {
			xs[i] = uint8(i + 1) // == graph.ShareIndex(s.device, neigh[i])
		}
		split, err := SplitSeed(seed, xs, graph.Threshold(), s.device)
		if err != nil {
			return nil, nil, fmt.Errorf("secagg: sharing self seed: %w", err)
		}
		shares = make([]WrappedShare, len(neigh))
		for i, d := range neigh {
			pair, err := s.key.pairSecret(peers[d].Pub)
			if err != nil {
				return nil, nil, fmt.Errorf("secagg: pairing with %s: %w", d, err)
			}
			shares[i] = WrappedShare{To: d, Blob: wrapShare(shareWrapKey(pair, round, s.device), split[i])}
		}
	}
	s.round, s.graph, s.peers, s.roles = round, graph, peers, make(map[string]int)
	return out, shares, nil
}

// Shares reveals this client's round seeds with the listed dropped
// peers — the legacy (degree 0) reconciliation path. Only the named
// round's seeds are derivable from the result.
func (s *ClientSession) Shares(round int, cohort []Peer, dropped []string) ([]PairShare, error) {
	byDevice := make(map[string]Peer, len(cohort))
	for _, p := range cohort {
		byDevice[p.Device] = p
	}
	out := make([]PairShare, 0, len(dropped))
	for _, d := range dropped {
		if d == s.device {
			return nil, fmt.Errorf("%w: asked to reveal own seed", ErrSelfInPairs)
		}
		peer, ok := byDevice[d]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoPair, d)
		}
		seed, err := s.roundSeedWith(peer, round)
		if err != nil {
			return nil, err
		}
		out = append(out, PairShare{Device: d, Seed: seed})
	}
	return out, nil
}

// ReconAnswer is this client's reply to a k-regular reconciliation
// request: pair seeds for its dropped neighbours and unwrapped
// self-seed shares for its folded neighbours.
type ReconAnswer struct {
	Pairs []PairShare
	Seeds []SeedShare
}

// Reconcile answers a double-masking reconciliation request against
// the state MaskedUpdate stored for the round. Per neighbour it
// concedes exactly one role, across every request of the round:
//
//   - dropped → reveal the pairwise round seed (the peer's update
//     never folded; its pair masks must come off the sum);
//   - surviving → unwrap and reveal the peer's self-seed share (its
//     update folded; its self-mask must come off the sum).
//
// A request naming a peer in both roles — or flipping a role conceded
// earlier in the round — fails with ErrRoleConflict: holding the pair
// seeds AND the self-seed shares for one peer is exactly what a
// malicious server needs to unmask that peer's late update. The
// client's own name is refused in either list: its pair seeds would
// unmask itself, and its self seed travels only as shares held by
// neighbours. Wrapped blobs that fail authentication are skipped (the
// server needs only Threshold of the k shares), never guessed at.
func (s *ClientSession) Reconcile(round int, dropped []string, survivors []SeedEnvelope) (*ReconAnswer, error) {
	if s.graph == nil || round != s.round {
		return nil, fmt.Errorf("%w %d", ErrNoRoundState, round)
	}
	neigh := make(map[string]bool)
	for _, d := range s.graph.Neighbors(s.device) {
		neigh[d] = true
	}
	ans := &ReconAnswer{}
	for _, d := range dropped {
		if d == s.device {
			return nil, fmt.Errorf("%w: asked to reveal own seed", ErrSelfInPairs)
		}
		if !neigh[d] {
			return nil, fmt.Errorf("%w: %q is not a mask neighbour", ErrNoPair, d)
		}
		if s.roles[d] == roleSurvivor {
			return nil, fmt.Errorf("%w: %q", ErrRoleConflict, d)
		}
		s.roles[d] = roleDropped
		seed, err := s.roundSeedWith(s.peers[d], round)
		if err != nil {
			return nil, err
		}
		ans.Pairs = append(ans.Pairs, PairShare{Device: d, Seed: seed})
	}
	for _, env := range survivors {
		if env.Owner == s.device {
			return nil, fmt.Errorf("%w: asked to reveal own seed", ErrSelfInPairs)
		}
		if !neigh[env.Owner] {
			return nil, fmt.Errorf("%w: %q is not a mask neighbour", ErrNoPair, env.Owner)
		}
		if s.roles[env.Owner] == roleDropped {
			return nil, fmt.Errorf("%w: %q", ErrRoleConflict, env.Owner)
		}
		s.roles[env.Owner] = roleSurvivor
		pair, err := s.key.pairSecret(s.peers[env.Owner].Pub)
		if err != nil {
			return nil, fmt.Errorf("secagg: pairing with %s: %w", env.Owner, err)
		}
		sh, err := unwrapShare(shareWrapKey(pair, round, env.Owner), env.Blob)
		if err != nil {
			continue // corrupt blob: withhold this share, not the round
		}
		ans.Seeds = append(ans.Seeds, SeedShare{Owner: env.Owner, X: sh.X, Data: sh.Data})
	}
	return ans, nil
}
