package secagg

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// ClientSession is the device side of the masking protocol for one FL
// session: it owns the mask keypair announced during the handshake and
// turns local updates into masked ring-level tensors.
type ClientSession struct {
	device    string
	key       *MaskKey
	scaleBits int
}

// NewClientSession creates the masking state for one session. A nil
// maskSeed draws the keypair from crypto/rand; a non-nil seed derives
// it deterministically (simulations, tests). scaleBits ≤ 0 selects
// DefaultScaleBits.
func NewClientSession(device string, maskSeed []byte, scaleBits int) (*ClientSession, error) {
	var key *MaskKey
	var err error
	if maskSeed != nil {
		key, err = MaskKeyFromSeed(maskSeed)
	} else {
		key, err = NewMaskKey()
	}
	if err != nil {
		return nil, err
	}
	if scaleBits <= 0 {
		scaleBits = DefaultScaleBits
	}
	if scaleBits > MaxScaleBits {
		return nil, fmt.Errorf("secagg: scale bits %d exceed maximum %d", scaleBits, MaxScaleBits)
	}
	return &ClientSession{device: device, key: key, scaleBits: scaleBits}, nil
}

// MaskPub returns the mask public key for the Attest message.
func (s *ClientSession) MaskPub() []byte { return s.key.Public() }

// ScaleBits returns the session's fixed-point precision.
func (s *ClientSession) ScaleBits() int { return s.scaleBits }

// roundSeedWith derives the round-scoped pair seed with one peer.
func (s *ClientSession) roundSeedWith(peer Peer, round int) ([32]byte, error) {
	pair, err := s.key.pairSecret(peer.Pub)
	if err != nil {
		return [32]byte{}, fmt.Errorf("secagg: pairing with %s: %w", peer.Device, err)
	}
	return RoundSeed(pair, round), nil
}

// MaskedUpdate quantises the update (nil entries mark protected
// positions travelling through the sealed path), multiplies by the
// client's FedAvg weight in the ring, and adds the pairwise masks for
// every cohort peer. The cohort must contain this client exactly once;
// masks cover the non-nil positions in order, matching the layout every
// cohort member derives from the same round plan.
func (s *ClientSession) MaskedUpdate(round int, cohort []Peer, upd []*tensor.Tensor, weight uint64) ([]*wire.U64Tensor, error) {
	if weight == 0 {
		return nil, fmt.Errorf("secagg: zero update weight")
	}
	out := make([]*wire.U64Tensor, len(upd))
	var active [][]uint64
	for i, t := range upd {
		if t == nil {
			continue
		}
		q := Quantise(t, ScaleFor(s.scaleBits), weight)
		out[i] = q
		active = append(active, q.Levels)
	}
	self := 0
	seen := make(map[string]bool, len(cohort))
	for _, peer := range cohort {
		if seen[peer.Device] {
			return nil, fmt.Errorf("secagg: duplicate device %q in cohort", peer.Device)
		}
		seen[peer.Device] = true
		if peer.Device == s.device {
			self++
			continue
		}
		seed, err := s.roundSeedWith(peer, round)
		if err != nil {
			return nil, err
		}
		streamMask(seed, PairSign(s.device, peer.Device), active)
	}
	if self != 1 {
		return nil, fmt.Errorf("secagg: client %q appears %d times in cohort", s.device, self)
	}
	return out, nil
}

// Shares reveals this client's round seeds with the listed dropped
// peers, so the server can subtract the unpaired mask residue. Only the
// named round's seeds are derivable from the result.
func (s *ClientSession) Shares(round int, cohort []Peer, dropped []string) ([]PairShare, error) {
	byDevice := make(map[string]Peer, len(cohort))
	for _, p := range cohort {
		byDevice[p.Device] = p
	}
	out := make([]PairShare, 0, len(dropped))
	for _, d := range dropped {
		if d == s.device {
			return nil, fmt.Errorf("%w: asked to reveal own seed", ErrSelfInPairs)
		}
		peer, ok := byDevice[d]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoPair, d)
		}
		seed, err := s.roundSeedWith(peer, round)
		if err != nil {
			return nil, err
		}
		out = append(out, PairShare{Device: d, Seed: seed})
	}
	return out, nil
}
