package secagg

import (
	"errors"
	"fmt"
	"time"

	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// MaskedSum is the server's streaming aggregator for masked updates:
// the ring analogue of fl.Aggregator. Each client's masked level
// tensors are folded into a running sum in ℤ/2⁶⁴ the moment they
// arrive; pairwise masks cancel as both halves of each pair fold (or
// are subtracted during reconciliation), and Mean converts the clean
// ring sum back to float64 tensors. Memory stays O(model).
type MaskedSum struct {
	ref    []*tensor.Tensor
	active []bool
	scale  float64
	sum    [][]uint64 // nil at inactive (protected) positions
	weight float64
	count  int

	// expandNS, when attached, times seed-mask keystream expansion.
	// CPU work measured on the real clock — it never feeds the trace
	// sink, so simulated-time determinism is unaffected.
	expandNS *obs.Histogram
}

// Instrument attaches a histogram timing ApplySeedMask's keystream
// expansion. A nil histogram (or never calling Instrument) keeps the
// path untimed.
func (m *MaskedSum) Instrument(expandNS *obs.Histogram) {
	m.expandNS = expandNS
}

// NewMaskedSum creates a masked aggregator for updates shaped like ref,
// with the protected positions (travelling sealed, aggregated in the
// enclave) excluded from the masked layout.
func NewMaskedSum(ref []*tensor.Tensor, protected map[int]bool, scaleBits int) *MaskedSum {
	if scaleBits <= 0 {
		scaleBits = DefaultScaleBits
	}
	m := &MaskedSum{
		ref:    ref,
		active: make([]bool, len(ref)),
		scale:  ScaleFor(scaleBits),
		sum:    make([][]uint64, len(ref)),
	}
	for i, r := range ref {
		if protected[i] {
			continue
		}
		m.active[i] = true
		m.sum[i] = make([]uint64, r.Size())
	}
	return m
}

// ActiveSizes returns the element counts of the masked positions in
// layout order — the sizes a mask expansion must cover.
func (m *MaskedSum) ActiveSizes() []int {
	var sizes []int
	for i, on := range m.active {
		if on {
			sizes = append(sizes, m.ref[i].Size())
		}
	}
	return sizes
}

// Validate checks a masked update against the layout without folding
// it: exactly one level tensor per active position, shapes matching the
// reference model.
func (m *MaskedSum) Validate(up []*wire.U64Tensor) error {
	if len(up) != len(m.ref) {
		return fmt.Errorf("secagg: update has %d tensors, model has %d", len(up), len(m.ref))
	}
	for i, t := range up {
		if !m.active[i] {
			if t != nil {
				return fmt.Errorf("secagg: levels present at protected position %d", i)
			}
			continue
		}
		if t == nil {
			return fmt.Errorf("secagg: update missing levels for tensor %d", i)
		}
		if len(t.Levels) != m.ref[i].Size() || t.Size() != m.ref[i].Size() {
			return fmt.Errorf("secagg: levels for tensor %d have %d elements, want %d", i, len(t.Levels), m.ref[i].Size())
		}
	}
	return nil
}

// Add validates and folds one masked update carrying the given FedAvg
// weight (the client already multiplied its levels by it in the ring;
// here it only accumulates the denominator). Add is fail-closed: every
// shape is re-checked inline against the accumulator before the first
// element is folded, independently of Validate — so even a caller that
// skipped Validate (or validated against a stale layout) cannot fold a
// mismatched update into the ring sum, partially or at all.
func (m *MaskedSum) Add(up []*wire.U64Tensor, weight uint64) error {
	if weight == 0 {
		return errors.New("secagg: zero update weight")
	}
	if err := m.Validate(up); err != nil {
		return err
	}
	// Defensive re-check directly against the destination slices: the
	// whole update must be provably foldable before any element lands,
	// or a hostile edge whose update passed a skipped/desynced Validate
	// would corrupt the sum mid-fold.
	if len(up) != len(m.sum) {
		return fmt.Errorf("secagg: update has %d tensors, accumulator has %d", len(up), len(m.sum))
	}
	for i, t := range up {
		if t == nil {
			if m.sum[i] != nil {
				return fmt.Errorf("secagg: update missing levels for tensor %d", i)
			}
			continue
		}
		if m.sum[i] == nil {
			return fmt.Errorf("secagg: levels present at protected position %d", i)
		}
		if len(t.Levels) != len(m.sum[i]) {
			return fmt.Errorf("secagg: levels for tensor %d have %d elements, want %d", i, len(t.Levels), len(m.sum[i]))
		}
	}
	for i, t := range up {
		if t == nil {
			continue
		}
		dst := m.sum[i]
		for j, l := range t.Levels {
			dst[j] += l
		}
	}
	m.weight += float64(weight)
	m.count++
	return nil
}

// ApplyMask adds (sign=+1) or subtracts (sign=-1) a mask expansion —
// one level vector per active position — from the running sum. Used
// during reconciliation to remove the unpaired residue left by dropped
// clients.
func (m *MaskedSum) ApplyMask(mask [][]uint64, sign int) error {
	sizes := m.ActiveSizes()
	if len(mask) != len(sizes) {
		return fmt.Errorf("secagg: mask covers %d tensors, layout has %d", len(mask), len(sizes))
	}
	k := 0
	for i, on := range m.active {
		if !on {
			continue
		}
		if len(mask[k]) != len(m.sum[i]) {
			return fmt.Errorf("secagg: mask tensor %d has %d elements, want %d", k, len(mask[k]), len(m.sum[i]))
		}
		applyMask(m.sum[i], mask[k], sign)
		k++
	}
	return nil
}

// ApplySeedMask expands a revealed round seed and adds (sign=+1) or
// subtracts (sign=-1) it from the running sum, streaming the keystream
// instead of materialising the full expansion — the reconciliation hot
// path for large models.
func (m *MaskedSum) ApplySeedMask(seed [32]byte, sign int) {
	var active [][]uint64
	for i, on := range m.active {
		if on {
			active = append(active, m.sum[i])
		}
	}
	var start time.Time
	if m.expandNS != nil {
		start = time.Now()
	}
	streamMask(seed, sign, active)
	if m.expandNS != nil {
		m.expandNS.Observe(time.Since(start).Nanoseconds())
	}
}

// Levels returns the ring sums as level tensors aligned with the
// reference model (nil at protected positions) — the shard partial a
// hierarchical edge forwards upstream once its masks have cancelled
// (full fold) or been reconciled. The level slices alias the
// accumulator: callers hand them to the wire encoder and discard the
// MaskedSum, so no copy is made.
func (m *MaskedSum) Levels() []*wire.U64Tensor {
	out := make([]*wire.U64Tensor, len(m.ref))
	for i, on := range m.active {
		if !on {
			continue
		}
		shape := make([]int, len(m.ref[i].Shape))
		copy(shape, m.ref[i].Shape)
		out[i] = &wire.U64Tensor{Shape: shape, Levels: m.sum[i]}
	}
	return out
}

// Count returns the number of folded updates.
func (m *MaskedSum) Count() int { return m.count }

// Weight returns the summed FedAvg weight of the folded updates.
func (m *MaskedSum) Weight() float64 { return m.weight }

// Mean converts the (reconciled) ring sum to the weighted-average
// update: nil at protected positions, fresh tensors elsewhere. The
// arithmetic mirrors fl.Aggregator.Mean — dequantise to the exact
// float sum, then scale by 1/weight — so dyadic inputs reproduce the
// plaintext aggregate bit for bit.
func (m *MaskedSum) Mean() ([]*tensor.Tensor, error) {
	if m.count == 0 {
		return nil, errors.New("secagg: aggregating zero updates")
	}
	out := make([]*tensor.Tensor, len(m.ref))
	inv := 1 / m.weight
	for i, on := range m.active {
		if !on {
			continue
		}
		t := tensor.New(m.ref[i].Shape...)
		Dequantise(m.sum[i], m.scale, t.Data)
		out[i] = tensor.Scale(t, inv)
	}
	return out, nil
}
