package flsim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

func requireSameModel(t *testing.T, what string, a, b []*tensor.Tensor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d tensors vs %d", what, len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("%s: tensor %d[%d] = %v, want %v", what, i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// TestCrashRecoverBitIdenticalFlat: a flat session killed mid-way and
// recovered from its journal finishes with the same trace and the same
// model, bit for bit, as a session that never crashed — at a round
// boundary, mid-round after some folds were journaled, under client
// failures committed before the crash, under cohort sampling (the RNG
// fast-forward), and under secure aggregation (fresh mask keys on
// rejoin are invisible to the aggregate).
func TestCrashRecoverBitIdenticalFlat(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
		spec   CrashSpec
	}{
		{"round-boundary", func(sc *Scenario) { sc.FailureFraction = 0.2 }, CrashSpec{Round: 3}},
		{"mid-round", func(sc *Scenario) { sc.FailureFraction = 0.2 }, CrashSpec{Round: 2, Folds: 3}},
		{"sampled", func(sc *Scenario) { sc.SampleFraction = 0.5; sc.MinClients = 2 }, CrashSpec{Round: 3}},
		{"masked", func(sc *Scenario) { sc.SecAgg = true }, CrashSpec{Round: 3}},
		{"masked-mid-round", func(sc *Scenario) { sc.SecAgg = true }, CrashSpec{Round: 4, Folds: 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := Scenario{Clients: 18, Rounds: 6, MinClients: 4, Seed: 11}
			tc.mutate(&base)
			crashed := base // same scenario, independent default models
			baseline, err := Run(base)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			recovered, err := RunWithCrash(crashed, tc.spec, t.TempDir()+"/flat.journal")
			if err != nil {
				t.Fatalf("RunWithCrash: %v", err)
			}
			if !reflect.DeepEqual(baseline.Trace, recovered.Trace) {
				t.Fatalf("trace diverged\nbaseline:  %+v\nrecovered: %+v", baseline.Trace, recovered.Trace)
			}
			requireSameModel(t, "final model", recovered.Final, baseline.Final)
		})
	}
}

// TestCrashRecoverBitIdenticalHier: the root process dies mid-session
// and the whole tree — root, every edge, a fresh fleet — recovers from
// its journals; the completed run is bit-identical to one that never
// crashed, plain and masked.
func TestCrashRecoverBitIdenticalHier(t *testing.T) {
	for _, secAgg := range []bool{false, true} {
		name := "plain"
		if secAgg {
			name = "masked"
		}
		t.Run(name, func(t *testing.T) {
			base := Scenario{Clients: 12, Rounds: 6, MinClients: 1, Shards: 3, Seed: 7, SecAgg: secAgg}
			crashed := base
			baseline, err := Run(base)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			recovered, err := RunHierWithRootCrash(crashed, 3, t.TempDir())
			if err != nil {
				t.Fatalf("RunHierWithRootCrash: %v", err)
			}
			if !reflect.DeepEqual(baseline.Trace, recovered.Trace) {
				t.Fatalf("trace diverged\nbaseline:  %+v\nrecovered: %+v", baseline.Trace, recovered.Trace)
			}
			requireSameModel(t, "final model", recovered.Final, baseline.Final)
		})
	}
}

// shardOf returns the shard owning client i under the contiguous
// partition of shardRange.
func shardOf(i, clients, shards int) int {
	for s := 0; s < shards; s++ {
		if lo, hi := shardRange(clients, shards, s); i >= lo && i < hi {
			return s
		}
	}
	return -1
}

// expectedHierFinal recomputes the final model value of a degraded
// plain hierarchical run coordinate-exactly: per round, the dyadic sum
// of every client in an alive shard, normalised by one multiply —
// operation-for-operation what the root does, so the comparison is
// bitwise.
func expectedHierFinal(sc Scenario, alive func(shard, round int) bool) float64 {
	var state float64
	for r := 0; r < sc.Rounds; r++ {
		var sum float64
		n := 0
		for i := 0; i < sc.Clients; i++ {
			if !alive(shardOf(i, sc.Clients, sc.Shards), r) {
				continue
			}
			sum += dyadicDelta(sc.Seed, i, r)
			n++
		}
		state += sum * (1 / float64(n))
	}
	return state
}

// TestEdgeCrashDegradesAndRejoins: one edge dies mid-session, the root
// degrades to the surviving shards for three rounds, then the edge
// recovers from its journal and rejoins with its clients — and the
// final model matches the coordinate-exact recomputation of exactly
// that degraded-then-restored participation.
func TestEdgeCrashDegradesAndRejoins(t *testing.T) {
	sc := Scenario{Clients: 12, Rounds: 8, MinClients: 1, Shards: 4, MinShards: 2, Seed: 5}
	const crashShard, crashRound, rejoinRound = 1, 2, 5
	res, err := RunHierWithEdgeCrash(sc, crashShard, crashRound, rejoinRound, t.TempDir())
	if err != nil {
		t.Fatalf("RunHierWithEdgeCrash: %v", err)
	}
	if len(res.Trace) != sc.Rounds {
		t.Fatalf("trace has %d rounds, want %d", len(res.Trace), sc.Rounds)
	}
	for r, st := range res.Trace {
		want := sc.Shards
		if r >= crashRound && r < rejoinRound {
			want = sc.Shards - 1
		}
		if st.Shards != want {
			t.Fatalf("round %d folded %d shards, want %d", r, st.Shards, want)
		}
	}
	want := expectedHierFinal(sc, func(shard, round int) bool {
		return !(shard == crashShard && round >= crashRound && round < rejoinRound)
	})
	for i, ten := range res.Final {
		for j, v := range ten.Data {
			if v != want {
				t.Fatalf("final[%d][%d] = %v, want %v", i, j, v, want)
			}
		}
	}
}

// TestPartitionDegradesGracefully: severing a shard's uplink drops it
// for the rest of the session; the root keeps closing rounds over the
// survivors, deterministically.
func TestPartitionDegradesGracefully(t *testing.T) {
	sc := Scenario{Clients: 12, Rounds: 6, MinClients: 1, Shards: 4, MinShards: 2, Seed: 9}
	const severShard, severRound = 2, 3
	res, err := RunHierWithPartition(sc, severShard, severRound)
	if err != nil {
		t.Fatalf("RunHierWithPartition: %v", err)
	}
	for r, st := range res.Trace {
		want := sc.Shards
		if r >= severRound {
			want = sc.Shards - 1
		}
		if st.Shards != want {
			t.Fatalf("round %d folded %d shards, want %d", r, st.Shards, want)
		}
	}
	want := expectedHierFinal(sc, func(shard, round int) bool {
		return !(shard == severShard && round >= severRound)
	})
	for i, ten := range res.Final {
		for j, v := range ten.Data {
			if v != want {
				t.Fatalf("final[%d][%d] = %v, want %v", i, j, v, want)
			}
		}
	}
	again, err := RunHierWithPartition(sc, severShard, severRound)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	requireSameModel(t, "determinism", again.Final, res.Final)
}

// TestDisconnectsQuarantinedSessionContinues: clients that go dark
// mid-session surface as transport-error quarantines in the round they
// drop; the session keeps running over the remaining fleet.
func TestDisconnectsQuarantinedSessionContinues(t *testing.T) {
	sc := Scenario{Clients: 12, Rounds: 5, MinClients: 4, DisconnectFraction: 0.25, DisconnectRound: 2, Seed: 3}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	droppers := 0
	for _, p := range res.Profiles {
		if p.DropRound >= 0 {
			droppers++
		}
	}
	if droppers != 3 {
		t.Fatalf("25%% of 12 clients = 3 droppers, got %d", droppers)
	}
	if len(res.Quarantined) != droppers {
		t.Fatalf("quarantined %v, want the %d droppers", res.Quarantined, droppers)
	}
	if st := res.Trace[sc.DisconnectRound]; st.Sampled != 12 || st.Quarantined != 3 || st.Responded != 9 {
		t.Fatalf("drop round stats = %+v, want Sampled 12 / Quarantined 3 / Responded 9", st)
	}
	if st := res.Trace[len(res.Trace)-1]; st.Sampled != 9 || st.Quarantined != 0 {
		t.Fatalf("final round stats = %+v, want the 9 survivors and no new quarantines", st)
	}
	again, err := Run(sc)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	requireSameModel(t, "determinism", again.Final, res.Final)
}

// TestFaultHarnessValidation: the harnesses reject specs that cannot
// produce the fault they claim to study.
func TestFaultHarnessValidation(t *testing.T) {
	flat := Scenario{Clients: 8, Rounds: 3, MinClients: 2, Seed: 1}
	if _, err := RunWithCrash(flat, CrashSpec{Round: 7}, t.TempDir()+"/j"); err == nil {
		t.Fatal("crash round past the session end must be rejected")
	}
	sharded := Scenario{Clients: 8, Rounds: 4, MinClients: 1, Shards: 2, Seed: 1}
	if _, err := RunWithCrash(sharded, CrashSpec{Round: 1}, t.TempDir()+"/j"); err == nil {
		t.Fatal("RunWithCrash must reject hierarchical scenarios")
	}
	// MinShards defaults to "every shard" — no headroom to lose one.
	noHeadroom := Scenario{Clients: 8, Rounds: 6, MinClients: 1, Shards: 2, Seed: 1}
	if _, err := RunHierWithEdgeCrash(noHeadroom, 0, 2, 4, t.TempDir()); err == nil {
		t.Fatal("edge crash without MinShards headroom must be rejected")
	}
	dirty := Scenario{Clients: 8, Rounds: 6, MinClients: 1, Shards: 2, MinShards: 1, FailureFraction: 0.5, Seed: 1}
	if _, err := RunHierWithPartition(dirty, 0, 2); err == nil {
		t.Fatal("hier fault scenarios must reject a dirty fleet")
	}
	if !errors.Is(ErrSimCrash, ErrSimCrash) {
		t.Fatal("sentinel sanity")
	}
}
