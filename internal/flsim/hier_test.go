package flsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
)

// assertTraceMatchesFlat compares a hierarchical trace against the
// flat trace of the same fleet: every fleet-wide statistic must agree
// (Shards is the hierarchy's own bookkeeping and is checked
// separately; Elapsed may differ — shard deadlines can fire in
// several virtual steps).
func assertTraceMatchesFlat(t *testing.T, hierTrace, flatTrace []fl.RoundStats, shards int) {
	t.Helper()
	if len(hierTrace) != len(flatTrace) {
		t.Fatalf("trace lengths differ: hier %d vs flat %d", len(hierTrace), len(flatTrace))
	}
	for r := range hierTrace {
		h, f := hierTrace[r], flatTrace[r]
		if h.Shards != shards {
			t.Fatalf("round %d folded %d shards, want %d", r, h.Shards, shards)
		}
		h.Shards = 0
		if !reflect.DeepEqual(h, f) {
			t.Fatalf("round %d diverged:\n  hier: %+v\n  flat: %+v", r, hierTrace[r], f)
		}
	}
}

// TestHierScenarioMatchesFlatPlain: a full-participation hierarchical
// session — weighted updates, training failures, probation — produces
// a final model and trace bit-identical to the flat session over the
// same fleet: partial sums compose exactly.
func TestHierScenarioMatchesFlatPlain(t *testing.T) {
	base := Scenario{
		Clients:          64,
		Rounds:           5,
		WeightedExamples: true,
		FailureFraction:  0.125,
		QuarantineRounds: 1,
		Seed:             42,
	}
	flat, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hierSc := base
	hierSc.Shards = 8
	hier, err := Run(hierSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "plain hierarchy", flat, hier)
	assertTraceMatchesFlat(t, hier.Trace, flat.Trace, 8)
	if !reflect.DeepEqual(flat.Quarantined, hier.Quarantined) {
		t.Fatalf("quarantine sets diverged: flat %v vs hier %v", flat.Quarantined, hier.Quarantined)
	}
	// And the hierarchical run is itself reproducible.
	again, err := Run(hierSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "hier reruns", hier, again)
	if !reflect.DeepEqual(hier.Trace, again.Trace) {
		t.Fatalf("hier traces differ between runs:\n  %+v\n  %+v", hier.Trace, again.Trace)
	}
}

// TestHierScenarioMatchesFlatMasked: the secagg-masked hierarchy —
// shard-scoped mask rosters, ring-sum partials — reproduces both the
// flat masked session and the flat plaintext session bit for bit.
func TestHierScenarioMatchesFlatMasked(t *testing.T) {
	base := Scenario{
		Clients:          48,
		Rounds:           4,
		WeightedExamples: true,
		Seed:             11,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	flatMaskedSc := base
	flatMaskedSc.SecAgg = true
	flatMasked, err := Run(flatMaskedSc)
	if err != nil {
		t.Fatal(err)
	}
	hierSc := flatMaskedSc
	hierSc.Shards = 6
	hierMasked, err := Run(hierSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "flat masked vs plain", plain, flatMasked)
	assertSameFinal(t, "hier masked vs plain", plain, hierMasked)
	assertTraceMatchesFlat(t, hierMasked.Trace, flatMasked.Trace, 6)
}

// TestHierScenarioStragglerDropout: stragglers are dropped at each
// shard's own deadline and — under secure aggregation — each shard
// reconciles its dropped members' masks locally; the hierarchical
// aggregate still equals the flat session (which dropped the very same
// devices) bit for bit. This is the shard-level straggler-dropout
// acceptance round.
func TestHierScenarioStragglerDropout(t *testing.T) {
	base := Scenario{
		Clients:           40,
		Rounds:            4,
		Deadline:          time.Second,
		StragglerFraction: 0.2,
		Seed:              7,
	}
	for _, secAgg := range []bool{false, true} {
		name := "plain"
		if secAgg {
			name = "masked"
		}
		flatSc := base
		flatSc.SecAgg = secAgg
		flat, err := Run(flatSc)
		if err != nil {
			t.Fatalf("%s flat: %v", name, err)
		}
		hierSc := flatSc
		hierSc.Shards = 5
		hier, err := Run(hierSc)
		if err != nil {
			t.Fatalf("%s hier: %v", name, err)
		}
		assertSameFinal(t, name+" dropout", flat, hier)
		assertTraceMatchesFlat(t, hier.Trace, flat.Trace, 5)
		for r, st := range hier.Trace {
			if st.Dropped != 8 {
				t.Fatalf("%s round %d dropped %d, want 8", name, r, st.Dropped)
			}
			if secAgg && st.Reconciled != 8 {
				t.Fatalf("%s round %d reconciled %d, want 8", name, r, st.Reconciled)
			}
		}
	}
}

// TestHierScenarioShardDegradation: a shard whose clients all straggle
// never contributes a partial; with MinShards below the shard count
// the fleet's rounds degrade to the healthy shards instead of failing.
func TestHierScenarioShardDegradation(t *testing.T) {
	sc := Scenario{
		Clients:         32,
		Rounds:          3,
		Shards:          4,
		MinShards:       3,
		Deadline:        time.Second,
		ShardStragglers: []float64{0, 0, 0, 1}, // one fully congested edge
		Seed:            3,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("session should degrade, not fail: %v", err)
	}
	for r, st := range res.Trace {
		if st.Shards != 3 {
			t.Fatalf("round %d folded %d shards, want 3", r, st.Shards)
		}
		if st.Responded != 24 || st.Dropped != 8 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
	}
	// Reproducible, like every scenario.
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trace, again.Trace) {
		t.Fatalf("degraded traces differ between runs:\n  %+v\n  %+v", res.Trace, again.Trace)
	}
}

// TestHierScenarioLargeFleet: the fleet-scale smoke — 4096 clients
// over 16 edges, still bit-identical to the flat run. (16384 clients ×
// 64 shards is exercised by BenchmarkHierRound.)
func TestHierScenarioLargeFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("large fleet in -short mode")
	}
	base := Scenario{
		Clients:          4096,
		Rounds:           2,
		WeightedExamples: true,
		Seed:             9,
	}
	flat, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	hierSc := base
	hierSc.Shards = 16
	hier, err := Run(hierSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "large fleet", flat, hier)
	assertTraceMatchesFlat(t, hier.Trace, flat.Trace, 16)
	for r, st := range hier.Trace {
		if st.Responded != 4096 {
			t.Fatalf("round %d responded %d, want 4096", r, st.Responded)
		}
	}
}

// TestHierScenarioValidation covers the hierarchy scenario checks.
func TestHierScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Clients: 8, Shards: 2, SecAgg: true, Protect: []int{0}}); err == nil {
		t.Fatal("hierarchical secagg with protected tensors must fail")
	}
	if _, err := Run(Scenario{Clients: 8, Shards: 2, ShardStragglers: []float64{0.5}}); err == nil {
		t.Fatal("mis-sized per-shard fractions must fail")
	}
	if _, err := Run(Scenario{Clients: 8, ShardFailures: []float64{0.5}}); err == nil {
		t.Fatal("per-shard fractions without shards must fail")
	}
	if _, err := Run(Scenario{Clients: 4, Shards: 8}); err == nil {
		t.Fatal("more shards than clients must fail")
	}
	if _, err := Run(Scenario{Clients: 8, Shards: 2, MinShards: 3}); err == nil {
		t.Fatal("MinShards above Shards must fail")
	}
}
