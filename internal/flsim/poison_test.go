package flsim

import (
	"errors"
	"testing"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/tensor"
)

// modelSum totals every model coordinate — with PositiveDeltas the
// honest fleet pushes it strictly up, so its sign and magnitude tell
// whether an attack won.
func modelSum(model []*tensor.Tensor) float64 {
	var s float64
	for _, t := range model {
		for _, v := range t.Data {
			s += v
		}
	}
	return s
}

func poisonScenario(agg string, trim, poison float64) Scenario {
	return Scenario{
		Clients:        20,
		Rounds:         5,
		MinClients:     5,
		PositiveDeltas: true, // honest fleet: every update coordinate > 0
		PoisonFraction: poison,
		PoisonMode:     "signflip",
		Aggregation:    agg,
		TrimFraction:   trim,
		Seed:           42,
	}
}

// TestSignFlipDefeatsFedAvg: 30% sign-flip poisoners at γ=4 drag the
// plain average negative — the model moves opposite the honest
// direction — while trimmed-mean and median shrug the attack off and
// keep the model climbing.
func TestSignFlipDefeatsFedAvgNotRobust(t *testing.T) {
	clean, err := Run(poisonScenario("fedavg", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	cleanSum := modelSum(clean.Final)
	if cleanSum <= 0 {
		t.Fatalf("clean positive-delta fleet should grow the model, sum = %v", cleanSum)
	}

	poisonedAvg, err := Run(poisonScenario("fedavg", 0, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if got := modelSum(poisonedAvg.Final); got >= 0 {
		t.Fatalf("FedAvg under 30%% sign-flip at γ=4 should be dragged negative, sum = %v", got)
	}

	for _, tc := range []struct {
		agg  string
		trim float64
	}{{"trimmed-mean", 0.3}, {"median", 0}} {
		res, err := Run(poisonScenario(tc.agg, tc.trim, 0.3))
		if err != nil {
			t.Fatalf("%s: %v", tc.agg, err)
		}
		got := modelSum(res.Final)
		if got <= 0 {
			t.Fatalf("%s under 30%% sign-flip should keep growing the model, sum = %v", tc.agg, got)
		}
		// The robust aggregate of the honest majority tracks the clean
		// run's direction within a factor — the attack changed the
		// estimator, not the sign or scale of progress.
		if got < cleanSum/4 || got > cleanSum*4 {
			t.Fatalf("%s poisoned sum %v implausibly far from clean %v", tc.agg, got, cleanSum)
		}
	}
}

// TestScalePoisonInflatesFedAvgOnly: γ-scaled poisoners inflate the
// plain average's magnitude; the median stays at honest scale.
func TestScalePoisonInflatesFedAvgOnly(t *testing.T) {
	clean, err := Run(poisonScenario("fedavg", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	sc := poisonScenario("fedavg", 0, 0.3)
	sc.PoisonMode = "scale"
	inflated, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc = poisonScenario("median", 0, 0.3)
	sc.PoisonMode = "scale"
	robust, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	cleanSum, inflatedSum, robustSum := modelSum(clean.Final), modelSum(inflated.Final), modelSum(robust.Final)
	if inflatedSum < cleanSum*1.5 {
		t.Fatalf("scaled poison should inflate FedAvg: poisoned %v vs clean %v", inflatedSum, cleanSum)
	}
	if robustSum > cleanSum*1.5 {
		t.Fatalf("median should hold honest scale: %v vs clean %v", robustSum, cleanSum)
	}
}

// TestPoisonedRunsAreDeterministic: the Byzantine roles ride the same
// seeded shuffle as every other role — two runs agree bitwise.
func TestPoisonedRunsAreDeterministic(t *testing.T) {
	a, err := Run(poisonScenario("median", 0, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(poisonScenario("median", 0, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Final {
		for j := range a.Final[i].Data {
			if a.Final[i].Data[j] != b.Final[i].Data[j] {
				t.Fatalf("final[%d][%d] differs across identical runs", i, j)
			}
		}
	}
	poisoners := 0
	for _, p := range a.Profiles {
		if p.Poison != "" {
			poisoners++
		}
	}
	if poisoners != 6 {
		t.Fatalf("30%% of 20 clients = 6 poisoners, got %d", poisoners)
	}
}

// TestRobustSecAggRejected: the composition is structurally impossible
// and must fail loudly at open, not silently fall back.
func TestRobustSecAggRejected(t *testing.T) {
	sc := poisonScenario("median", 0, 0.3)
	sc.SecAgg = true
	_, err := Run(sc)
	if !errors.Is(err, fl.ErrRobustSecAgg) {
		t.Fatalf("err = %v, want ErrRobustSecAgg", err)
	}
}
