package flsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/tensor"
)

// asyncBase is the shared fleet for the asynchronous scenarios: a
// quarter of the clients are slow (the synchronous run drops them at
// every deadline; the asynchronous run folds them discounted), and
// updates are positive dyadics so the model norm grows monotonically —
// comparable across pacing modes.
func asyncBase() Scenario {
	return Scenario{
		Clients: 8, Rounds: 6, MinClients: 1,
		StragglerFraction: 0.25, Deadline: time.Second,
		PositiveDeltas: true, Seed: 42,
	}
}

// modelEqual reports bitwise equality of two models.
func modelEqual(a, b []*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// TestAsyncScenarioDeterministic: two runs of the same asynchronous
// scenario produce identical traces, identical virtual elapsed time,
// and a bitwise-identical final model — the async analogue of the
// synchronous reproducibility guarantee.
func TestAsyncScenarioDeterministic(t *testing.T) {
	sc := func() AsyncScenario {
		return AsyncScenario{Scenario: asyncBase(), Versions: 12, GoalUpdates: 6}
	}
	a, err := RunAsync(sc())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAsync(sc())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("traces diverge:\n%+v\n%+v", a.Trace, b.Trace)
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("elapsed diverges: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if !modelEqual(a.Final, b.Final) {
		t.Fatal("final models diverge")
	}
	if len(a.Trace) != 12 {
		t.Fatalf("trace has %d versions, want 12", len(a.Trace))
	}
	for v, st := range a.Trace {
		if st.Responded != 6 {
			t.Fatalf("version %d stats = %+v, want 6 folds", v, st)
		}
	}
	if a.Pushes != a.Folds || a.Stale != 0 || a.Duplicates != 0 {
		t.Fatalf("pushes %d folds %d stale %d dup %d: healthy fleet must fold every push",
			a.Pushes, a.Folds, a.Stale, a.Duplicates)
	}
}

// TestSyncVsAsyncSameFleet replays the same seeded fleet under both
// pacing modes — the paper-style comparison the async tier exists for:
//
//   - each mode's trace is bit-reproducible (asserted per mode),
//   - the asynchronous run reaches (and passes) the synchronous run's
//     final-norm target,
//   - it does so with zero fleet-idle time, against the hours the
//     synchronous barrier burns waiting out straggler deadlines
//     (Deadline × responders for every round that dropped someone),
//     and in far less virtual wall time.
func TestSyncVsAsyncSameFleet(t *testing.T) {
	syncA, err := Run(asyncBase())
	if err != nil {
		t.Fatal(err)
	}
	syncB, err := Run(asyncBase())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(syncA.Trace, syncB.Trace) || !modelEqual(syncA.Final, syncB.Final) {
		t.Fatal("synchronous replay is not reproducible")
	}

	async, err := RunAsync(AsyncScenario{Scenario: asyncBase(), Versions: 12, GoalUpdates: 6})
	if err != nil {
		t.Fatal(err)
	}

	// The same profiles were dealt to both modes from the same seed.
	if !reflect.DeepEqual(syncA.Profiles, async.Profiles) {
		t.Fatal("fleet profiles diverge between modes")
	}

	// Every synchronous round dropped the two stragglers, so each of
	// its six responders idled out the full deadline every round.
	wantIdle := 6 * 6 * time.Second
	if syncA.Idle != wantIdle {
		t.Fatalf("sync idle = %v, want %v", syncA.Idle, wantIdle)
	}

	syncNorm := fl.UpdateNorm(syncA.Final)
	asyncNorm := fl.UpdateNorm(async.Final)
	if asyncNorm < syncNorm {
		t.Fatalf("async norm %v below the sync target %v", asyncNorm, syncNorm)
	}
	if async.Idle != 0 || async.Idle >= syncA.Idle {
		t.Fatalf("async idle = %v, want 0 (< sync %v)", async.Idle, syncA.Idle)
	}
	if async.Elapsed >= syncA.Elapsed {
		t.Fatalf("async elapsed %v not below sync %v", async.Elapsed, syncA.Elapsed)
	}
}

// TestAsyncScenarioValidation: the async harness rejects scenario
// shapes it cannot replay deterministically.
func TestAsyncScenarioValidation(t *testing.T) {
	bad := AsyncScenario{Scenario: asyncBase()}
	bad.FailureFraction = 0.5
	if _, err := RunAsync(bad); err == nil {
		t.Fatal("FailureFraction must be rejected")
	}
	bad = AsyncScenario{Scenario: asyncBase()}
	bad.SecAgg = true
	if _, err := RunAsync(bad); err == nil {
		t.Fatal("SecAgg must be rejected")
	}
	bad = AsyncScenario{Scenario: asyncBase()}
	bad.FastLatency = 1500 * time.Microsecond
	if _, err := RunAsync(bad); err == nil {
		t.Fatal("sub-millisecond latency granularity must be rejected")
	}
}
