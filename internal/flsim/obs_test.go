package flsim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/obs"
)

func obsScenario() Scenario {
	return Scenario{
		Clients:           32,
		Rounds:            4,
		MinClients:        4,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.20,
		Seed:              42,
	}
}

// TestSpansDeterministicAndNonPerturbing: enabling span export must not
// change the trace (telemetry never feeds back into the protocol), and
// two runs of the same scenario must write byte-identical JSONL —
// spans are timed on the virtual clock, not the wall clock.
func TestSpansDeterministicAndNonPerturbing(t *testing.T) {
	plain, err := Run(obsScenario())
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	scA := obsScenario()
	scA.Spans = &bufA
	a, err := Run(scA)
	if err != nil {
		t.Fatal(err)
	}
	scB := obsScenario()
	scB.Spans = &bufB
	if _, err := Run(scB); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(a.Trace, plain.Trace) {
		t.Fatalf("span export perturbed the trace:\n  plain: %+v\n  spans: %+v", plain.Trace, a.Trace)
	}
	if bufA.Len() == 0 {
		t.Fatal("span export wrote nothing")
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("span streams differ between identical runs:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}

	// Every line is a well-formed span record on the expected schema.
	lines := strings.Split(strings.TrimRight(bufA.String(), "\n"), "\n")
	rounds := 0
	for _, line := range lines {
		var rec struct {
			Span    string `json:"span"`
			Round   int    `json:"round"`
			StartUS int64  `json:"start_us"`
			DurUS   int64  `json:"dur_us"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if rec.Span == "" || rec.StartUS < 0 || rec.DurUS < 0 {
			t.Fatalf("implausible span record %q", line)
		}
		if rec.Span == "round" {
			rounds++
		}
	}
	if rounds != 4 {
		t.Fatalf("got %d round spans, want 4", rounds)
	}
}

// TestMetricsDeterministicAndAccounted: a metrics-enabled run reports
// the same trace as a plain run (modulo the byte counters only a meter
// can fill), and the registry's round and byte totals agree with the
// trace.
func TestMetricsDeterministicAndAccounted(t *testing.T) {
	plain, err := Run(obsScenario())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := obsScenario()
	sc.Metrics = reg
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	var upTotal, downTotal uint64
	stripped := make([]fl.RoundStats, len(res.Trace))
	for i, st := range res.Trace {
		if st.BytesUp == 0 || st.BytesDown == 0 {
			t.Fatalf("round %d has no wire accounting: %+v", st.Round, st)
		}
		upTotal += st.BytesUp
		downTotal += st.BytesDown
		st.BytesUp, st.BytesDown = 0, 0
		stripped[i] = st
	}
	if !reflect.DeepEqual(stripped, plain.Trace) {
		t.Fatalf("metrics perturbed the trace:\n  plain:   %+v\n  metrics: %+v", plain.Trace, stripped)
	}

	if got := reg.Counter("gradsec_rounds_total", "", "mode", "sync", "result", "ok").Value(); got != uint64(len(res.Trace)) {
		t.Fatalf("rounds_total{ok} = %d, want %d", got, len(res.Trace))
	}
	if got := reg.Counter("gradsec_wire_bytes_total", "", "direction", "up").Value(); got != upTotal {
		t.Fatalf("wire_bytes_total{up} = %d, trace sums to %d", got, upTotal)
	}
	if got := reg.Counter("gradsec_wire_bytes_total", "", "direction", "down").Value(); got != downTotal {
		t.Fatalf("wire_bytes_total{down} = %d, trace sums to %d", got, downTotal)
	}
	for _, phase := range []string{"sample", "broadcast", "collect", "close", "round"} {
		if got := reg.Histogram("gradsec_phase_ns", "", "phase", phase).Count(); got != uint64(len(res.Trace)) {
			t.Fatalf("phase_ns{%s} count = %d, want %d", phase, got, len(res.Trace))
		}
	}
}

// TestHierMetricsAndSpans: the hierarchical tier reports root fan-in
// telemetry and deterministic spans on the same virtual clock.
func TestHierMetricsAndSpans(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Clients:    24,
			Rounds:     3,
			MinClients: 2,
			Shards:     4,
			Seed:       9,
		}
	}
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	reg := obs.NewRegistry()
	scA := base()
	scA.Metrics = reg
	scA.Spans = &bufA
	res, err := Run(scA)
	if err != nil {
		t.Fatal(err)
	}
	scB := base()
	scB.Spans = &bufB
	if _, err := Run(scB); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Trace, plain.Trace) {
		t.Fatalf("hier telemetry perturbed the trace:\n  plain: %+v\n  obs:   %+v", plain.Trace, res.Trace)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("hier span streams differ between identical runs:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	if got := reg.Counter("gradsec_hier_rounds_total", "", "result", "ok").Value(); got != 3 {
		t.Fatalf("hier_rounds_total{ok} = %d, want 3", got)
	}
	if got := reg.Histogram("gradsec_hier_fanin_ns", "").Count(); got != 3 {
		t.Fatalf("hier_fanin_ns count = %d, want 3", got)
	}
	if got := reg.Histogram("gradsec_hier_partial_ns", "").Count(); got != 3*4 {
		t.Fatalf("hier_partial_ns count = %d, want %d", got, 3*4)
	}
}
