package flsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/obs"
)

func obsScenario() Scenario {
	return Scenario{
		Clients:           32,
		Rounds:            4,
		MinClients:        4,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.20,
		Seed:              42,
	}
}

// TestSpansDeterministicAndNonPerturbing: enabling span export must not
// change the trace (telemetry never feeds back into the protocol), and
// two runs of the same scenario must write byte-identical JSONL —
// spans are timed on the virtual clock, not the wall clock.
func TestSpansDeterministicAndNonPerturbing(t *testing.T) {
	plain, err := Run(obsScenario())
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	scA := obsScenario()
	scA.Spans = &bufA
	a, err := Run(scA)
	if err != nil {
		t.Fatal(err)
	}
	scB := obsScenario()
	scB.Spans = &bufB
	if _, err := Run(scB); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(a.Trace, plain.Trace) {
		t.Fatalf("span export perturbed the trace:\n  plain: %+v\n  spans: %+v", plain.Trace, a.Trace)
	}
	if bufA.Len() == 0 {
		t.Fatal("span export wrote nothing")
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("span streams differ between identical runs:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}

	// Every line is a well-formed span record on the expected schema.
	lines := strings.Split(strings.TrimRight(bufA.String(), "\n"), "\n")
	rounds := 0
	for _, line := range lines {
		var rec struct {
			Span    string `json:"span"`
			Round   int    `json:"round"`
			StartUS int64  `json:"start_us"`
			DurUS   int64  `json:"dur_us"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if rec.Span == "" || rec.StartUS < 0 || rec.DurUS < 0 {
			t.Fatalf("implausible span record %q", line)
		}
		if rec.Span == "round" {
			rounds++
		}
	}
	if rounds != 4 {
		t.Fatalf("got %d round spans, want 4", rounds)
	}
}

// TestMetricsDeterministicAndAccounted: a metrics-enabled run reports
// the same trace as a plain run (modulo the byte counters only a meter
// can fill), and the registry's round and byte totals agree with the
// trace.
func TestMetricsDeterministicAndAccounted(t *testing.T) {
	plain, err := Run(obsScenario())
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sc := obsScenario()
	sc.Metrics = reg
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	var upTotal, downTotal uint64
	stripped := make([]fl.RoundStats, len(res.Trace))
	for i, st := range res.Trace {
		if st.BytesUp == 0 || st.BytesDown == 0 {
			t.Fatalf("round %d has no wire accounting: %+v", st.Round, st)
		}
		upTotal += st.BytesUp
		downTotal += st.BytesDown
		st.BytesUp, st.BytesDown = 0, 0
		stripped[i] = st
	}
	if !reflect.DeepEqual(stripped, plain.Trace) {
		t.Fatalf("metrics perturbed the trace:\n  plain:   %+v\n  metrics: %+v", plain.Trace, stripped)
	}

	if got := reg.Counter("gradsec_rounds_total", "", "mode", "sync", "result", "ok").Value(); got != uint64(len(res.Trace)) {
		t.Fatalf("rounds_total{ok} = %d, want %d", got, len(res.Trace))
	}
	if got := reg.Counter("gradsec_wire_bytes_total", "", "direction", "up").Value(); got != upTotal {
		t.Fatalf("wire_bytes_total{up} = %d, trace sums to %d", got, upTotal)
	}
	if got := reg.Counter("gradsec_wire_bytes_total", "", "direction", "down").Value(); got != downTotal {
		t.Fatalf("wire_bytes_total{down} = %d, trace sums to %d", got, downTotal)
	}
	for _, phase := range []string{"sample", "broadcast", "collect", "close", "round"} {
		if got := reg.Histogram("gradsec_phase_ns", "", "phase", phase).Count(); got != uint64(len(res.Trace)) {
			t.Fatalf("phase_ns{%s} count = %d, want %d", phase, got, len(res.Trace))
		}
	}
}

// TestHierMetricsAndSpans: the hierarchical tier reports root fan-in
// telemetry and deterministic spans on the same virtual clock.
func TestHierMetricsAndSpans(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Clients:    24,
			Rounds:     3,
			MinClients: 2,
			Shards:     4,
			Seed:       9,
		}
	}
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	var bufA, bufB bytes.Buffer
	reg := obs.NewRegistry()
	scA := base()
	scA.Metrics = reg
	scA.Spans = &bufA
	res, err := Run(scA)
	if err != nil {
		t.Fatal(err)
	}
	scB := base()
	scB.Spans = &bufB
	if _, err := Run(scB); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(res.Trace, plain.Trace) {
		t.Fatalf("hier telemetry perturbed the trace:\n  plain: %+v\n  obs:   %+v", plain.Trace, res.Trace)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("hier span streams differ between identical runs:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	if got := reg.Counter("gradsec_hier_rounds_total", "", "result", "ok").Value(); got != 3 {
		t.Fatalf("hier_rounds_total{ok} = %d, want 3", got)
	}
	if got := reg.Histogram("gradsec_hier_fanin_ns", "").Count(); got != 3 {
		t.Fatalf("hier_fanin_ns count = %d, want 3", got)
	}
	if got := reg.Histogram("gradsec_hier_partial_ns", "").Count(); got != 3*4 {
		t.Fatalf("hier_partial_ns count = %d, want %d", got, 3*4)
	}
}

// snapInstrument finds one instrument in a snapshot by family name and
// exact label values.
func snapInstrument(s *obs.Snapshot, family string, vals ...string) *obs.SnapInstrument {
	for fi := range s.Families {
		f := &s.Families[fi]
		if f.Name != family {
			continue
		}
		for ii := range f.Instruments {
			if reflect.DeepEqual(f.Instruments[ii].LabelVals, vals) {
				return &f.Instruments[ii]
			}
		}
	}
	return nil
}

// TestFleetTelemetryPlane: the in-band telemetry plane end to end.
// Each edge's registry deltas ride its PartialUps into the root's
// fleet registry under tier/shard labels; the merged histograms must
// reconcile bucket for bucket with the per-edge registries, the trace
// must be unperturbed, and the stitched cross-tier span timeline must
// be byte-identical across reruns on the virtual clock.
func TestFleetTelemetryPlane(t *testing.T) {
	const shards, rounds = 4, 3
	base := func() Scenario {
		return Scenario{Clients: 24, Rounds: rounds, MinClients: 2, Shards: shards, Seed: 9}
	}
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}

	run := func() (*Result, *obs.Registry, string) {
		reg := obs.NewRegistry()
		sc := base()
		sc.Metrics = reg
		sc.FleetTelemetry = true
		var rootSpans bytes.Buffer
		sc.Spans = &rootSpans
		edgeBufs := make([]*bytes.Buffer, shards)
		sc.EdgeSpans = make([]io.Writer, shards)
		for i := range edgeBufs {
			edgeBufs[i] = &bytes.Buffer{}
			sc.EdgeSpans[i] = edgeBufs[i]
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		srcs := []obs.SpanSource{{Name: "root", R: bytes.NewReader(rootSpans.Bytes())}}
		for i, buf := range edgeBufs {
			srcs = append(srcs, obs.SpanSource{Name: fmt.Sprintf("edge-%03d", i), R: bytes.NewReader(buf.Bytes())})
		}
		var stitched bytes.Buffer
		if err := obs.StitchSpans(&stitched, srcs...); err != nil {
			t.Fatal(err)
		}
		return res, reg, stitched.String()
	}
	res, reg, stitched := run()
	_, _, stitchedB := run()

	if !reflect.DeepEqual(res.Trace, plain.Trace) {
		t.Fatalf("fleet telemetry perturbed the trace:\n  plain: %+v\n  fleet: %+v", plain.Trace, res.Trace)
	}
	if stitched != stitchedB {
		t.Fatalf("stitched timelines differ across reruns:\n%s\nvs\n%s", stitched, stitchedB)
	}
	lines := strings.Split(strings.TrimSuffix(stitched, "\n"), "\n")
	// One hier_round span per round plus 6 shard-phase spans per shard
	// round (sample/broadcast/collect/close/round and the per-shard
	// engine's own round phases overlap: exact composition is pinned by
	// the obs unit tests; here every line must parse and carry a trace).
	if len(lines) < rounds*(1+shards) {
		t.Fatalf("stitched timeline implausibly short (%d lines):\n%s", len(lines), stitched)
	}
	for _, line := range lines {
		if !strings.Contains(line, `"trace":"`) {
			t.Fatalf("stitched span without a trace ID: %s", line)
		}
	}

	// Reconciliation: every root-merged shard histogram equals the
	// edge's own registry bucket for bucket, and the fleet-wide family
	// is exactly the per-shard sum.
	if len(res.EdgeMetrics) != shards {
		t.Fatalf("EdgeMetrics has %d registries, want %d", len(res.EdgeMetrics), shards)
	}
	rootSnap := obs.TakeSnapshot(reg)
	phases := []string{"sample", "broadcast", "collect", "close", "round"}
	for s, ereg := range res.EdgeMetrics {
		shard := fmt.Sprintf("edge-%03d", s)
		edgeSnap := obs.TakeSnapshot(ereg)
		for _, phase := range phases {
			want := snapInstrument(edgeSnap, "gradsec_phase_ns", phase)
			got := snapInstrument(rootSnap, "gradsec_phase_ns", phase, "edge", shard)
			if want == nil || got == nil {
				t.Fatalf("shard %s phase %s missing from a snapshot (edge %v, root %v)", shard, phase, want != nil, got != nil)
			}
			if !reflect.DeepEqual(got.BucketIdx, want.BucketIdx) || !reflect.DeepEqual(got.BucketN, want.BucketN) ||
				got.Count != want.Count || got.Sum != want.Sum {
				t.Fatalf("shard %s phase %s: root-merged buckets diverge from the edge registry:\nroot: %+v\nedge: %+v",
					shard, phase, got, want)
			}
			if want.Count != rounds {
				t.Fatalf("shard %s phase %s observed %d rounds, want %d", shard, phase, want.Count, rounds)
			}
		}
		if got := reg.Counter("gradsec_rounds_total", "", "mode", "sync", "result", "ok", "tier", "edge", "shard", shard).Value(); got != rounds {
			t.Fatalf("rounds_total{%s} = %d, want %d", shard, got, rounds)
		}
	}

	// Fleet-wide exposition: the merged family renders per-shard
	// quantile-ready histograms with the tier/shard label scheme.
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for s := 0; s < shards; s++ {
		probe := fmt.Sprintf(`gradsec_phase_ns_count{phase="round",tier="edge",shard="edge-%03d"}`, s)
		if !strings.Contains(expo, probe) {
			t.Fatalf("fleet exposition misses %s:\n%s", probe, expo)
		}
	}
}
