// Package flsim is a deterministic scenario-simulation harness for the
// FL round engine: it spins up N in-memory clients over fl.Pipe with
// per-client latency/failure/no-TEE profiles drawn from a seeded RNG,
// drives the engine's round deadlines through a virtual clock, and
// returns a round-by-round trace (participation, drops, quarantines,
// aggregate update norm).
//
// Determinism: the cohort sampler, profile assignment, and failure
// schedule all derive from Scenario.Seed; deadlines only fire when the
// harness advances the virtual clock (after every on-time response has
// been folded); and simulated updates are dyadic rationals, so their
// sums are exact in float64 and independent of goroutine arrival order.
// Two runs of the same scenario therefore produce identical traces and
// bitwise-identical final models.
package flsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/attack"
	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// Profile describes one simulated client.
type Profile struct {
	// Device is the client's device ID.
	Device string
	// Straggler marks a client that never answers a round inside the
	// deadline: it is dropped every round it is sampled in, but not
	// quarantined. (Latency is modelled as binary relative to the
	// scenario deadline, not as a graded delay.)
	Straggler bool
	// FailRound, when ≥ 0, makes the client report a training failure
	// the first time it is sampled in a round ≥ FailRound (it is then
	// quarantined by the engine).
	FailRound int
	// NoTEE marks a device without a TEE; under RequireTEE it is
	// rejected at selection.
	NoTEE bool
	// Examples is the client's simulated local-example count; when
	// positive it rides GradUp and weights the server's FedAvg.
	Examples int
	// Poison marks a Byzantine client: "signflip" negates-and-scales
	// its honest update before pushing, "scale" inflates it. Empty is
	// honest.
	Poison string
	// DropRound, when ≥ 0, makes the client sever its connection
	// mid-session the first time it is addressed in a round ≥
	// DropRound — a device going dark, not a protocol fault. The
	// engine quarantines it on the transport error.
	DropRound int
}

// Scenario parameterises a simulated fleet session.
type Scenario struct {
	// Clients is the fleet size.
	Clients int
	// Rounds is the number of FL cycles.
	Rounds int
	// MinClients is the per-round responder floor (engine semantics).
	MinClients int
	// SampleCount / SampleFraction configure per-round cohort sampling,
	// forwarded to the engine.
	SampleCount    int
	SampleFraction float64
	// Deadline is the per-round straggler cutoff. Required when
	// StragglerFraction > 0.
	Deadline time.Duration
	// StragglerFraction of the fleet gets a latency beyond Deadline.
	StragglerFraction float64
	// FailureFraction of the fleet fails training at some round and is
	// quarantined.
	FailureFraction float64
	// NoTEEFraction of the fleet has no TEE.
	NoTEEFraction float64
	// RequireTEE enables attested selection: no-TEE devices are
	// rejected, the rest attest against an auto-provisioned verifier.
	RequireTEE bool
	// Codec is the tensor wire codec the server offers the fleet
	// (f64/f32/q8); every simulated client accepts the offer. Simulated
	// updates are constant tensors, which all three codecs round-trip
	// exactly, so traces stay bit-reproducible under any codec.
	Codec wire.Codec
	// WeightedExamples assigns each client a deterministic local-example
	// count in [1,16] from the seed; GradUp carries it and the engine
	// weights FedAvg by it. Off = uniform (unit) weights.
	WeightedExamples bool
	// SecAgg runs the session under secure aggregation: clients send
	// pairwise-masked fixed-point updates, stragglers' masks are
	// reconciled from survivor shares, and (with Protect) sealed
	// updates aggregate inside a simulated server enclave. Simulated
	// updates are dyadic, so the masked aggregate is bit-identical to
	// the plaintext aggregate of the same scenario.
	SecAgg bool
	// MaskDegree selects the SecAgg masking topology, forwarded to
	// fl.ServerConfig.MaskDegree: 0 = legacy full pairwise,
	// secagg.AutoDegree = per-round k-regular graph with double
	// masking, >0 = fixed graph degree. Masks (and the k-regular self
	// masks) cancel exactly in the ring, so every mode reproduces the
	// plaintext aggregate bit for bit.
	MaskDegree int
	// Protect lists flat tensor indices shielded every round: they
	// travel sealed through each client's trusted channel. Under SecAgg
	// an aggregation enclave is created to fold them; without SecAgg
	// the server unseals them itself (the plaintext baseline).
	Protect []int
	// QuarantineRounds forwards the probation re-admission policy to
	// the engine: failed clients sit out that many rounds instead of
	// being excluded for the session.
	QuarantineRounds int
	// Shards, when > 1, runs the scenario through the hierarchical
	// aggregation tier (internal/hier): the fleet is partitioned into
	// that many contiguous shards, each served by an edge aggregator
	// running the full round protocol, and the root folds one partial
	// per shard per round. Client indices, device names, profiles, and
	// weights are assigned exactly as in the flat run of the same
	// scenario, so a full-participation hierarchical trace is
	// bit-identical to the flat trace (asserted by the hier scenarios).
	// Sampling, MinClients, and Deadline apply per shard. SecAgg
	// composes (shard-scoped mask rosters); Protect does not (sealed
	// aggregation needs the root's enclave).
	Shards int
	// MinShards is the root's per-round partial floor in hierarchical
	// scenarios: rounds succeed while at least this many shards
	// contribute. 0 requires every shard.
	MinShards int
	// ShardStragglers / ShardFailures, when non-empty (length must
	// equal Shards), give each shard its own straggler/failure
	// fraction, overriding the fleet-wide fractions — heterogeneous
	// edge profiles (a congested cell, a flaky region) for hierarchy
	// scenarios. Assignment stays seed-deterministic per shard.
	ShardStragglers []float64
	ShardFailures   []float64
	// PositiveDeltas draws simulated updates from (0, 1] instead of
	// [-1, 1): every fold strictly grows the model norm, so runs of the
	// same fleet under different pacing (sync vs async) can be compared
	// by the virtual time each takes to push the norm past a target.
	PositiveDeltas bool
	// PoisonFraction of the fleet is Byzantine: compromised clients
	// transform their honest update (PoisonMode) before pushing.
	// Poisoners are drawn disjoint from stragglers and failers — an
	// attacker wants its update folded.
	PoisonFraction float64
	// PoisonMode picks the transformation: "signflip" (default) pushes
	// -γ× the honest update, "scale" pushes +γ×.
	PoisonMode string
	// PoisonGamma is the attack amplification γ; 0 defaults to 4
	// (dyadic, so poisoned updates stay exactly summable).
	PoisonGamma float64
	// Aggregation selects the server's aggregation strategy ("fedavg",
	// "trimmed-mean", "median"; see fl.ParseAggMethod). Robust methods
	// are how a scenario survives PoisonFraction > 0.
	Aggregation string
	// TrimFraction parameterises "trimmed-mean".
	TrimFraction float64
	// DisconnectFraction of the fleet goes dark mid-session: those
	// clients close their connections when addressed in a round ≥
	// DisconnectRound. Disjoint from the other roles.
	DisconnectFraction float64
	// DisconnectRound is the round the disconnecting clients drop at.
	DisconnectRound int
	// Seed drives every random choice in the scenario.
	Seed int64
	// Model is the initial global model; a small two-tensor model is
	// used when nil. The slice is updated in place round by round.
	Model []*tensor.Tensor
	// Planner forwards a protection plan to the engine (default: none).
	Planner fl.RoundPlanner
	// Metrics, when set, receives the engine's fleet telemetry: the
	// flat server's registry, or the root's in hierarchical scenarios.
	// Metrics never feed back into the protocol, so traces are
	// unchanged by enabling them.
	Metrics *obs.Registry
	// Spans, when set, receives round spans as JSONL timed on the
	// simulation's virtual clock: two runs of the same scenario write
	// byte-identical span streams (asserted by the determinism tests).
	Spans io.Writer
	// FleetTelemetry, in hierarchical scenarios, gives every edge a
	// private metrics registry whose per-round deltas ride upstream on
	// each PartialUp and fold into Metrics at the root under
	// tier/shard labels — the in-band telemetry plane. The per-edge
	// registries are exposed on Result.EdgeMetrics so tests can
	// reconcile the fleet view against its shards exactly. Telemetry
	// never feeds back into the protocol, so traces are unchanged.
	FleetTelemetry bool
	// EdgeSpans, when non-nil with one writer per shard, receives each
	// edge engine's span stream (JSONL on the shared virtual clock),
	// stamped with the root-minted round trace IDs — the inputs to a
	// cross-tier obs.StitchSpans timeline.
	EdgeSpans []io.Writer
}

// Result is a completed (or aborted) simulation.
type Result struct {
	// Selected is the number of clients that passed selection.
	Selected int
	// Rejected is the number turned away at selection.
	Rejected int
	// Trace holds one entry per started round.
	Trace []fl.RoundStats
	// Final is the global model after the last round (aliases the
	// scenario's Model slice).
	Final []*tensor.Tensor
	// Profiles are the assigned per-client profiles, in client order.
	Profiles []Profile
	// Quarantined lists devices the engine excluded (permanently or on
	// probation), in quarantine order.
	Quarantined []string
	// Elapsed is the total virtual time consumed by deadline waits.
	Elapsed time.Duration
	// Idle is the virtual fleet-idle time implied by the trace: in a
	// synchronous round that waited out its deadline (Dropped > 0),
	// every on-time responder sat idle from its fold to the deadline —
	// accounted here as Deadline per responder. Async sessions have no
	// round barrier, so their Idle is 0.
	Idle time.Duration
	// EnclaveSMCs counts world switches of the aggregation enclave
	// (0 when the scenario ran without one).
	EnclaveSMCs int64
	// EdgeMetrics holds each edge's private registry in shard order when
	// the scenario ran with FleetTelemetry; nil otherwise.
	EdgeMetrics []*obs.Registry
}

// splitmix64 is a tiny deterministic mixer for per-client/per-round
// values that must not depend on shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dyadicDelta returns client i's update value for a round: a multiple
// of 1/256 in [-1, 1), so any summation order is exact in float64.
func dyadicDelta(seed int64, client, round int) float64 {
	h := splitmix64(uint64(seed)*0x100000001b3 ^ uint64(client)<<20 ^ uint64(round))
	return float64(int64(h%512)-256) / 256
}

// posDyadicDelta is the PositiveDeltas variant: a multiple of 1/256 in
// (0, 1], so every fold strictly grows the model norm while sums stay
// exact in float64.
func posDyadicDelta(seed int64, client, round int) float64 {
	h := splitmix64(uint64(seed)*0x100000001b3 ^ uint64(client)<<20 ^ uint64(round))
	return float64(h%256+1) / 256
}

// idleFromTrace derives the fleet-idle accounting for a synchronous
// trace: every round that waited out the deadline (some sampled client
// dropped) held each on-time responder at the barrier for up to the
// full deadline after its fold.
func idleFromTrace(trace []fl.RoundStats, deadline time.Duration) time.Duration {
	var idle time.Duration
	for _, st := range trace {
		if st.Dropped > 0 {
			idle += deadline * time.Duration(st.Responded)
		}
	}
	return idle
}

// Validate checks scenario consistency and applies defaults.
func (sc *Scenario) Validate() error {
	if sc.Clients <= 0 {
		return errors.New("flsim: scenario needs at least one client")
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 1
	}
	if sc.MinClients <= 0 {
		sc.MinClients = 1
	}
	if sc.StragglerFraction < 0 || sc.StragglerFraction > 1 ||
		sc.FailureFraction < 0 || sc.FailureFraction > 1 ||
		sc.NoTEEFraction < 0 || sc.NoTEEFraction > 1 ||
		sc.PoisonFraction < 0 || sc.PoisonFraction > 1 ||
		sc.DisconnectFraction < 0 || sc.DisconnectFraction > 1 {
		return errors.New("flsim: fractions must be within [0,1]")
	}
	if sc.PoisonFraction > 0 {
		switch sc.PoisonMode {
		case "":
			sc.PoisonMode = "signflip"
		case "signflip", "scale":
		default:
			return fmt.Errorf("flsim: unknown poison mode %q", sc.PoisonMode)
		}
		if sc.PoisonGamma == 0 {
			sc.PoisonGamma = 4
		}
	}
	if _, err := fl.ParseAggMethod(sc.Aggregation); err != nil {
		return err
	}
	if sc.StragglerFraction > 0 && sc.Deadline <= 0 {
		return errors.New("flsim: StragglerFraction needs a Deadline")
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if !sc.Codec.Valid() {
		return fmt.Errorf("flsim: unknown codec %s", sc.Codec)
	}
	if sc.Model == nil {
		sc.Model = []*tensor.Tensor{tensor.New(8, 8), tensor.New(8)}
	}
	seen := make(map[int]bool)
	for _, id := range sc.Protect {
		if id < 0 || id >= len(sc.Model) {
			return fmt.Errorf("flsim: protected index %d outside the %d-tensor model", id, len(sc.Model))
		}
		if seen[id] {
			return fmt.Errorf("flsim: protected index %d listed twice", id)
		}
		seen[id] = true
	}
	if len(sc.Protect) > 0 && sc.NoTEEFraction > 0 {
		return errors.New("flsim: protected tensors need a full-TEE fleet (NoTEEFraction must be 0)")
	}
	if sc.Shards < 0 || sc.Shards > sc.Clients {
		return fmt.Errorf("flsim: %d shards for %d clients", sc.Shards, sc.Clients)
	}
	if sc.Shards > 1 {
		if len(sc.Protect) > 0 && sc.SecAgg {
			return errors.New("flsim: hierarchical secure aggregation cannot protect tensors (the sealed path needs the root's enclave)")
		}
		if sc.MinShards < 0 || sc.MinShards > sc.Shards {
			return fmt.Errorf("flsim: MinShards %d outside [0,%d]", sc.MinShards, sc.Shards)
		}
		if sc.MinShards == 0 {
			sc.MinShards = sc.Shards
		}
		checkFractions := func(name string, fs []float64) error {
			if len(fs) == 0 {
				return nil
			}
			if len(fs) != sc.Shards {
				return fmt.Errorf("flsim: %s covers %d shards, scenario has %d", name, len(fs), sc.Shards)
			}
			for _, f := range fs {
				if f < 0 || f > 1 {
					return fmt.Errorf("flsim: %s fractions must be within [0,1]", name)
				}
			}
			return nil
		}
		if err := checkFractions("ShardStragglers", sc.ShardStragglers); err != nil {
			return err
		}
		if err := checkFractions("ShardFailures", sc.ShardFailures); err != nil {
			return err
		}
		if len(sc.EdgeSpans) > 0 && len(sc.EdgeSpans) != sc.Shards {
			return fmt.Errorf("flsim: EdgeSpans covers %d shards, scenario has %d", len(sc.EdgeSpans), sc.Shards)
		}
		for _, f := range sc.ShardStragglers {
			if f > 0 && sc.Deadline <= 0 {
				return errors.New("flsim: ShardStragglers needs a Deadline")
			}
		}
	} else if len(sc.ShardStragglers) > 0 || len(sc.ShardFailures) > 0 {
		return errors.New("flsim: per-shard fractions need Shards > 1")
	} else if sc.FleetTelemetry || len(sc.EdgeSpans) > 0 {
		return errors.New("flsim: fleet telemetry needs Shards > 1")
	}
	return nil
}

// assignProfiles deals straggler/failure/no-TEE roles across the fleet
// from the scenario seed. Roles are disjoint: a straggler never also
// fails (its failure would be unobservable anyway).
func assignProfiles(sc *Scenario) []Profile {
	rng := rand.New(rand.NewSource(sc.Seed))
	n := sc.Clients
	order := rng.Perm(n)
	stragglers := int(float64(n)*sc.StragglerFraction + 0.5)
	failers := int(float64(n)*sc.FailureFraction + 0.5)
	if stragglers+failers > n {
		failers = n - stragglers
	}
	noTEE := int(float64(n)*sc.NoTEEFraction + 0.5)

	profiles := make([]Profile, n)
	for i := range profiles {
		profiles[i] = Profile{
			Device:    fmt.Sprintf("sim-%04d", i),
			FailRound: -1,
			DropRound: -1,
		}
		if sc.WeightedExamples {
			h := splitmix64(uint64(sc.Seed)*0x9e3779b9 ^ uint64(i)<<24 ^ 0x5eed)
			profiles[i].Examples = 1 + int(h%16)
		}
	}
	for k := 0; k < stragglers; k++ {
		profiles[order[k]].Straggler = true
	}
	for k := stragglers; k < stragglers+failers; k++ {
		profiles[order[k]].FailRound = rng.Intn(sc.Rounds)
	}
	// Poisoners follow stragglers and failers in the shuffle — disjoint
	// roles, because an attacker wants its update folded every round.
	poisoners := int(float64(n)*sc.PoisonFraction + 0.5)
	if stragglers+failers+poisoners > n {
		poisoners = n - stragglers - failers
	}
	for k := stragglers + failers; k < stragglers+failers+poisoners; k++ {
		profiles[order[k]].Poison = sc.PoisonMode
	}
	// Disconnectors are next in the shuffle: a client that goes dark
	// mid-session (connection severed, engine quarantines on the
	// transport error).
	taken := stragglers + failers + poisoners
	drops := int(float64(n)*sc.DisconnectFraction + 0.5)
	if taken+drops > n {
		drops = n - taken
	}
	for k := taken; k < taken+drops; k++ {
		profiles[order[k]].DropRound = sc.DisconnectRound
	}
	// No-TEE devices are drawn from the back of the shuffle, keeping the
	// role disjoint from stragglers/failers while fractions sum to ≤ 1.
	for k := 0; k < noTEE; k++ {
		profiles[order[n-1-k]].NoTEE = true
	}
	return profiles
}

// simTA is the minimal trusted app simulated devices attest with.
type simTA struct{ uuid tz.UUID }

func (t *simTA) UUID() tz.UUID                                   { return t.uuid }
func (t *simTA) Version() string                                 { return "flsim-1" }
func (t *simTA) OpenSession(*tz.TAEnv) (any, error)              { return nil, nil }
func (t *simTA) Invoke(*tz.TAEnv, any, uint32, any) (any, error) { return nil, nil }
func (t *simTA) CloseSession(*tz.TAEnv, any)                     {}

// simClient is one in-memory fleet member.
type simClient struct {
	index    int
	profile  Profile
	conn     fl.Conn
	dev      *tz.Device // nil for no-TEE devices
	app      *simTA
	shapes   [][]int
	seed     int64
	positive bool    // PositiveDeltas scenarios draw from posDyadicDelta
	gamma    float64 // poison amplification for Byzantine profiles
	failed   bool

	channel *tz.Channel           // trusted I/O path, when the device has a TEE
	mask    *secagg.ClientSession // masking state in secagg sessions
	cohort  []secagg.Peer         // roster of the round in flight
	round   int
	degree  int // resolved mask-graph degree of the roster (0 = full pairwise)
}

// run speaks the client side of the FL protocol: attest, then answer
// (or straggle / fail) every round addressed to it until Done. In
// secure-aggregation sessions updates travel masked and the client
// answers mask-reconciliation requests for dropped peers.
func (c *simClient) run() {
	defer c.conn.Close()
	msg, err := c.conn.Recv()
	if err != nil {
		return
	}
	ch, ok := msg.(*fl.Challenge)
	if !ok {
		return
	}
	// Accept the server's codec offer wholesale: the negotiated codec
	// governs every tensor this connection carries from here on.
	att := &fl.Attest{DeviceID: c.profile.Device, HasTEE: c.dev != nil, Codec: ch.Codec}
	if c.dev != nil {
		quote, err := c.dev.Attest(c.app.UUID(), ch.Nonce)
		if err != nil {
			return
		}
		att.Quote = quote
		offer, err := tz.NewChannelOffer()
		if err != nil {
			return
		}
		c.channel, err = offer.Establish(ch.ServerPub, false)
		if err != nil {
			return
		}
		att.ClientPub = offer.Public
	}
	if ch.SecAgg {
		mask, err := secagg.NewClientSession(c.profile.Device, nil, int(ch.ScaleBits))
		if err != nil {
			return
		}
		c.mask = mask
		att.MaskPub = mask.MaskPub()
	}
	if err := c.conn.Send(att); err != nil {
		return
	}
	c.conn.SetCodec(ch.Codec)
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			return // rejection close, quarantine close, or session end
		}
		switch m := msg.(type) {
		case *fl.Reject, *fl.Done:
			return
		case *fl.ModelDown:
			if c.profile.DropRound >= 0 && m.Round >= c.profile.DropRound {
				return // goes dark: the deferred Close severs the pipe
			}
			if c.profile.Straggler {
				continue // never answers inside the deadline
			}
			if !c.failed && c.profile.FailRound >= 0 && m.Round >= c.profile.FailRound {
				c.failed = true
				_ = c.conn.Send(&fl.ErrorMsg{Text: fmt.Sprintf("simulated training failure (round %d)", m.Round)})
				continue // the engine quarantines (or probations) the client
			}
			if err := c.answerRound(m); err != nil {
				return
			}
		case *fl.MaskRecon:
			if c.mask == nil || m.Round != c.round {
				return
			}
			if c.degree > 0 {
				ans, err := c.mask.Reconcile(m.Round, m.Dropped, m.Survivors)
				if err != nil {
					return
				}
				if err := c.conn.Send(&fl.MaskShares{Round: m.Round, Shares: ans.Pairs, SeedShares: ans.Seeds}); err != nil {
					return
				}
				continue
			}
			shares, err := c.mask.Shares(m.Round, c.cohort, m.Dropped)
			if err != nil {
				return
			}
			if err := c.conn.Send(&fl.MaskShares{Round: m.Round, Shares: shares}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// answerRound builds the round's dyadic update and sends it plain or
// masked, splitting protected tensors onto the sealed path.
func (c *simClient) answerRound(m *fl.ModelDown) error {
	delta := dyadicDelta(c.seed, c.index, m.Round)
	if c.positive {
		delta = posDyadicDelta(c.seed, c.index, m.Round)
	}
	examples := uint64(max(c.profile.Examples, 0))

	// Protected positions are those the server sealed away from the
	// plain view; the sealed blob names them.
	var protIdx []int
	if len(m.Sealed) > 0 {
		if c.channel == nil {
			return fmt.Errorf("sealed payload without a channel")
		}
		blob, err := c.channel.Open(m.Sealed)
		if err != nil {
			return err
		}
		if protIdx, _, err = fl.ParseSealedUpdate(blob); err != nil {
			return err
		}
	}
	protected := make(map[int]bool, len(protIdx))
	for _, id := range protIdx {
		protected[id] = true
	}
	plainUpd := make([]*tensor.Tensor, len(c.shapes))
	protTs := make([]*tensor.Tensor, 0, len(protIdx))
	for i, shape := range c.shapes {
		upd := tensor.Full(delta, shape...)
		if protected[i] {
			protTs = append(protTs, upd)
		} else {
			plainUpd[i] = upd
		}
	}
	// Byzantine clients transform the honest update before it leaves
	// the device — the server sees a well-formed push.
	switch c.profile.Poison {
	case "signflip":
		attack.SignFlip(plainUpd, c.gamma)
		attack.SignFlip(protTs, c.gamma)
	case "scale":
		attack.ScalePoison(plainUpd, c.gamma)
		attack.ScalePoison(protTs, c.gamma)
	}
	var sealedUpd []byte
	if len(protIdx) > 0 {
		sealedUpd = c.channel.Seal(fl.SealedUpdate(protIdx, protTs))
	}

	if c.mask == nil {
		return c.conn.Send(&fl.GradUp{Round: m.Round, Plain: plainUpd, Sealed: sealedUpd, Examples: examples, Version: m.Version})
	}
	c.cohort = m.Cohort
	c.round = m.Round
	c.degree = m.MaskDegree
	weight := uint64(1)
	if examples > 0 {
		weight = min(examples, fl.MaxExampleWeight)
	}
	levels, shares, err := c.mask.MaskedUpdate(m.Round, m.Cohort, m.MaskDegree, plainUpd, weight)
	if err != nil {
		return err
	}
	return c.conn.Send(&fl.MaskedUp{Round: m.Round, Levels: levels, Sealed: sealedUpd, Examples: examples, Shares: shares})
}

// staticProtect shields a fixed flat-index set every round.
type staticProtect map[int]bool

// PlanRound implements fl.RoundPlanner.
func (p staticProtect) PlanRound(int) (map[int]bool, []byte) { return p, nil }

// buildClient provisions one simulated client — TEE device, TA install,
// verifier registration — and returns it with the server side of its
// transport pipe. Shared by the flat and hierarchical harnesses.
func buildClient(i int, profile Profile, shapes [][]int, seed int64, verifier *tz.Verifier) (*simClient, fl.Conn, error) {
	serverConn, clientConn := fl.Pipe()
	c := &simClient{
		index:   i,
		profile: profile,
		conn:    clientConn,
		shapes:  shapes,
		seed:    seed,
	}
	if !profile.NoTEE {
		c.dev = tz.NewDevice(profile.Device)
		c.app = &simTA{uuid: tz.NameUUID("flsim-ta")}
		if err := c.dev.Install(c.app); err != nil {
			return nil, nil, fmt.Errorf("flsim: installing TA on %s: %w", profile.Device, err)
		}
		verifier.RegisterDevice(c.dev.Identity().ID(), c.dev.Identity().RootKey())
		m, err := c.dev.Measurement(c.app.UUID())
		if err != nil {
			return nil, nil, fmt.Errorf("flsim: measuring TA on %s: %w", profile.Device, err)
		}
		verifier.AllowMeasurement(m)
	}
	return c, serverConn, nil
}

// Run executes the scenario and returns its trace. The trace and final
// model are identical across runs of the same scenario — including
// under SecAgg, where the pairwise masks differ between runs but cancel
// exactly in the ring.
func Run(sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	profiles := assignProfiles(&sc)
	if sc.Shards > 1 {
		overrideShardProfiles(&sc, profiles)
		return runHier(sc, profiles)
	}
	return runFlat(sc, profiles, flatOpts{})
}

// flatOpts are the fault-injection hooks of the flat harness: a
// write-ahead journal for the engine, a crash trigger, and a journal
// path to recover from. Zero opts run the scenario plainly.
type flatOpts struct {
	// journal, when set, is handed to the engine (write-through WAL).
	journal *journal.Journal
	// recoverPath, when non-empty, rebuilds the server with fl.Recover
	// from that journal instead of opening a fresh session; the fleet
	// then rejoins via Resume.
	recoverPath string
	// crash, when set, panics out of the engine's round goroutine at
	// the configured point; runFlat recovers the panic, aborts the
	// session, and returns ErrSimCrash.
	crash *CrashSpec
}

// runFlat executes a validated flat scenario over the given profiles.
func runFlat(sc Scenario, profiles []Profile, opt flatOpts) (*Result, error) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	start := clk.Now()

	planner := sc.Planner
	if planner == nil && len(sc.Protect) > 0 {
		pm := make(staticProtect, len(sc.Protect))
		for _, id := range sc.Protect {
			pm[id] = true
		}
		planner = pm
	}
	var enclave *secagg.Enclave
	if sc.SecAgg && len(sc.Protect) > 0 {
		var err error
		enclave, err = secagg.NewEnclave("flsim-aggregator")
		if err != nil {
			return nil, fmt.Errorf("flsim: booting aggregation enclave: %w", err)
		}
		defer enclave.Close()
	}

	verifier := tz.NewVerifier()
	clients := make([]*simClient, sc.Clients)
	serverConns := make([]fl.Conn, sc.Clients)
	shapes := make([][]int, len(sc.Model))
	for i, t := range sc.Model {
		shapes[i] = t.Shape
	}
	for i := range clients {
		c, serverConn, err := buildClient(i, profiles[i], shapes, sc.Seed, verifier)
		if err != nil {
			return nil, err
		}
		c.positive = sc.PositiveDeltas
		c.gamma = sc.PoisonGamma
		clients[i] = c
		serverConns[i] = serverConn
	}

	// The harness rides the engine hooks (all fired from the round
	// goroutine): once every on-time cohort member has either folded or
	// been quarantined, only stragglers remain and the deadline may
	// fire, so advance the virtual clock. Roles are seed-deterministic,
	// hence so is every advance — and the whole trace.
	type roundWait struct {
		outstanding int // sampled clients that will answer (fold or fail)
		stragglers  int // sampled clients that never answer
	}
	var wait roundWait
	byDevice := make(map[string]*simClient, len(clients))
	for _, c := range clients {
		byDevice[c.profile.Device] = c
	}
	var quarantined []string
	hooks := fl.Hooks{
		RoundStarted: func(round int, sampled []string) {
			wait = roundWait{}
			for _, d := range sampled {
				if byDevice[d].profile.Straggler {
					wait.stragglers++
				} else {
					wait.outstanding++
				}
			}
			if wait.outstanding == 0 && wait.stragglers > 0 {
				clk.Advance(sc.Deadline)
			}
		},
		UpdateFolded: func(int, string) {
			wait.outstanding--
			if wait.outstanding == 0 && wait.stragglers > 0 {
				clk.Advance(sc.Deadline)
			}
		},
		ClientQuarantined: func(device string, _ error) {
			quarantined = append(quarantined, device)
			wait.outstanding--
			if wait.outstanding == 0 && wait.stragglers > 0 {
				clk.Advance(sc.Deadline)
			}
		},
		ClientProbationed: func(device string, _ error) {
			quarantined = append(quarantined, device)
			wait.outstanding--
			if wait.outstanding == 0 && wait.stragglers > 0 {
				clk.Advance(sc.Deadline)
			}
		},
	}

	if opt.crash != nil {
		hooks = installCrash(hooks, *opt.crash)
	}

	aggMethod, _ := fl.ParseAggMethod(sc.Aggregation) // validated
	cfg := fl.ServerConfig{
		Rounds:           sc.Rounds,
		MinClients:       sc.MinClients,
		SampleCount:      sc.SampleCount,
		SampleFraction:   sc.SampleFraction,
		SampleSeed:       sc.Seed,
		RoundDeadline:    sc.Deadline,
		RequireTEE:       sc.RequireTEE,
		Codec:            sc.Codec,
		SecAgg:           sc.SecAgg,
		MaskDegree:       sc.MaskDegree,
		Enclave:          enclave,
		QuarantineRounds: sc.QuarantineRounds,
		Aggregation:      aggMethod,
		TrimFraction:     sc.TrimFraction,
		Verifier:         verifier,
		Planner:          planner,
		Clock:            clk,
		Hooks:            hooks,
		Journal:          opt.journal,
		Metrics:          sc.Metrics,
		Spans:            obs.NewTraceSink(sc.Spans, clk),
	}
	var srv *fl.Server
	if opt.recoverPath != "" {
		var err error
		srv, err = fl.Recover(opt.recoverPath, sc.Model, cfg)
		if err != nil {
			for _, conn := range serverConns {
				_ = conn.Close()
			}
			return nil, err
		}
	} else {
		srv = fl.NewServer(sc.Model, cfg)
	}

	var fleet sync.WaitGroup
	for _, c := range clients {
		fleet.Add(1)
		go func(c *simClient) {
			defer fleet.Done()
			c.run()
		}(c)
	}
	selected, runErr := runOrCrash(srv, serverConns)
	// A run that failed before selection (config validation) never
	// touched the conns; close them so the fleet unblocks.
	for _, conn := range serverConns {
		_ = conn.Close()
	}
	fleet.Wait()

	sort.Strings(quarantined) // arrival order within a round can race; the set cannot

	res := &Result{
		Selected:    selected,
		Rejected:    sc.Clients - selected,
		Trace:       srv.Trace(),
		Final:       sc.Model,
		Profiles:    profiles,
		Quarantined: quarantined,
		Elapsed:     clk.Now().Sub(start),
		Idle:        idleFromTrace(srv.Trace(), sc.Deadline),
	}
	if enclave != nil {
		res.EnclaveSMCs = enclave.Device().SMCCount()
	}
	return res, runErr
}
