package flsim

import (
	"reflect"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/secagg"
)

// assertSameFinal fails unless the two results hold bitwise-identical
// final models.
func assertSameFinal(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Final) != len(b.Final) {
		t.Fatalf("%s: model tensor counts differ", label)
	}
	for i := range a.Final {
		for j := range a.Final[i].Data {
			if a.Final[i].Data[j] != b.Final[i].Data[j] {
				t.Fatalf("%s: final models differ at tensor %d elem %d: %v != %v",
					label, i, j, a.Final[i].Data[j], b.Final[i].Data[j])
			}
		}
	}
}

// TestSecAggMatchesPlaintextFullCohort: with every sampled client
// responding, the masked session's trace and final model are
// bit-identical to the plaintext session — the acceptance criterion of
// the secure-aggregation subsystem.
func TestSecAggMatchesPlaintextFullCohort(t *testing.T) {
	base := Scenario{
		Clients:          48,
		Rounds:           5,
		MinClients:       4,
		SampleFraction:   0.5,
		WeightedExamples: true,
		Seed:             42,
	}
	plainSc := base
	plain, err := Run(plainSc)
	if err != nil {
		t.Fatal(err)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "full cohort", plain, masked)
	for r := range plain.Trace {
		p, m := plain.Trace[r], masked.Trace[r]
		m.Reconciled = 0
		if !reflect.DeepEqual(p, m) {
			t.Fatalf("round %d trace diverged:\n  plain:  %+v\n  masked: %+v", r, p, masked.Trace[r])
		}
	}
	// And the masked run itself is reproducible: masks differ between
	// runs but cancel exactly, so the trace is bit-stable.
	again, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(masked.Trace, again.Trace) {
		t.Fatalf("masked traces differ between runs:\n  %+v\n  %+v", masked.Trace, again.Trace)
	}
	assertSameFinal(t, "masked reruns", masked, again)
}

// TestSecAggStragglerDropoutReconciled: stragglers are dropped at the
// deadline every round; mask reconciliation recovers exactly the
// plaintext aggregate over the survivors, deterministically across
// runs — the documented reproducible dropout trace.
func TestSecAggStragglerDropoutReconciled(t *testing.T) {
	base := Scenario{
		Clients:           20,
		Rounds:            4,
		Deadline:          time.Second,
		StragglerFraction: 0.25,
		Seed:              7,
	}
	plainSc := base
	plain, err := Run(plainSc)
	if err != nil {
		t.Fatal(err)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "straggler dropout", plain, masked)
	for r, st := range masked.Trace {
		if st.Sampled != 20 || st.Responded != 15 || st.Dropped != 5 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
		if st.Reconciled != 5 {
			t.Fatalf("round %d reconciled %d masks, want 5 (one per dropped client)", r, st.Reconciled)
		}
		if plain.Trace[r].UpdateNorm != st.UpdateNorm {
			t.Fatalf("round %d aggregate norm diverged: plain %v, masked %v",
				r, plain.Trace[r].UpdateNorm, st.UpdateNorm)
		}
	}
	again, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(masked.Trace, again.Trace) {
		t.Fatalf("dropout traces differ between runs:\n  %+v\n  %+v", masked.Trace, again.Trace)
	}
	assertSameFinal(t, "dropout reruns", masked, again)
}

// TestSecAggKRegularMatchesPlaintextFullCohort: the k-regular graph
// plus double masking must preserve the subsystem's acceptance
// criterion — a full-cohort masked fleet lands bit-identically on the
// plaintext trace and final model, with the self masks removed via
// Shamir reconstruction rather than counted as reconciled dropouts.
func TestSecAggKRegularMatchesPlaintextFullCohort(t *testing.T) {
	base := Scenario{
		Clients:          48,
		Rounds:           5,
		MinClients:       4,
		SampleFraction:   0.5,
		WeightedExamples: true,
		Seed:             42,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	maskedSc.MaskDegree = secagg.AutoDegree // ⌈log₂ 24⌉+slack = 10 of 23 possible edges
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "k-regular full cohort", plain, masked)
	for r := range plain.Trace {
		p, m := plain.Trace[r], masked.Trace[r]
		if m.Reconciled != 0 {
			t.Fatalf("round %d: full k-regular fold reported %d reconciled dropouts", r, m.Reconciled)
		}
		if !reflect.DeepEqual(p, m) {
			t.Fatalf("round %d trace diverged:\n  plain:  %+v\n  masked: %+v", r, p, m)
		}
	}
	again, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(masked.Trace, again.Trace) {
		t.Fatalf("k-regular traces differ between runs:\n  %+v\n  %+v", masked.Trace, again.Trace)
	}
	assertSameFinal(t, "k-regular reruns", masked, again)
}

// TestSecAggKRegularStragglerDropoutReconciled: dropping 5 of 20
// clients per round under a degree-12 graph stays within the
// worst-case tolerance (threshold 7 ≤ 12−5 surviving neighbours), so
// two-phase reconciliation — pair seeds for the dropped, Shamir
// shares for the survivors' self masks — recovers exactly the
// plaintext aggregate, deterministically across runs.
func TestSecAggKRegularStragglerDropoutReconciled(t *testing.T) {
	base := Scenario{
		Clients:           20,
		Rounds:            4,
		Deadline:          time.Second,
		StragglerFraction: 0.25,
		Seed:              7,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	maskedSc.MaskDegree = 12
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "k-regular straggler dropout", plain, masked)
	for r, st := range masked.Trace {
		if st.Sampled != 20 || st.Responded != 15 || st.Dropped != 5 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
		if st.Reconciled != 5 {
			t.Fatalf("round %d reconciled %d, want 5 (one per dropped client)", r, st.Reconciled)
		}
		if plain.Trace[r].UpdateNorm != st.UpdateNorm {
			t.Fatalf("round %d aggregate norm diverged: plain %v, masked %v",
				r, plain.Trace[r].UpdateNorm, st.UpdateNorm)
		}
	}
	again, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(masked.Trace, again.Trace) {
		t.Fatalf("k-regular dropout traces differ between runs:\n  %+v\n  %+v", masked.Trace, again.Trace)
	}
	assertSameFinal(t, "k-regular dropout reruns", masked, again)
}

// TestSecAggEnclaveProtectedTensors: protected tensors ride the sealed
// path into the aggregation enclave; the combined masked+enclave
// aggregate still equals the plaintext TEE session bit for bit, and the
// enclave demonstrably did the sealed-path work.
func TestSecAggEnclaveProtectedTensors(t *testing.T) {
	base := Scenario{
		Clients:          16,
		Rounds:           3,
		Protect:          []int{0},
		WeightedExamples: true,
		RequireTEE:       true,
		Seed:             11,
	}
	plainSc := base
	plain, err := Run(plainSc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.EnclaveSMCs != 0 {
		t.Fatalf("plaintext session used the enclave: %d SMCs", plain.EnclaveSMCs)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "enclave protected", plain, masked)
	if masked.EnclaveSMCs == 0 {
		t.Fatal("secagg session never crossed the enclave boundary")
	}
	for r, st := range masked.Trace {
		if st.Responded != 16 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
	}
}

// TestSecAggStragglersWithEnclave: dropout reconciliation and enclave
// aggregation compose — the enclave folds exactly the survivors and the
// masked plain half reconciles to match the plaintext baseline.
func TestSecAggStragglersWithEnclave(t *testing.T) {
	base := Scenario{
		Clients:           12,
		Rounds:            3,
		Deadline:          time.Second,
		StragglerFraction: 0.25,
		Protect:           []int{1},
		RequireTEE:        true,
		Seed:              5,
	}
	plainSc := base
	plain, err := Run(plainSc)
	if err != nil {
		t.Fatal(err)
	}
	maskedSc := base
	maskedSc.SecAgg = true
	masked, err := Run(maskedSc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameFinal(t, "straggler enclave", plain, masked)
	for r, st := range masked.Trace {
		if st.Dropped != 3 || st.Reconciled != 3 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
	}
}

// TestQuarantineProbationScenario: failed clients re-enter the fleet
// after their probation window instead of disappearing for the session.
func TestQuarantineProbationScenario(t *testing.T) {
	sc := Scenario{
		Clients:          12,
		Rounds:           6,
		FailureFraction:  0.25,
		QuarantineRounds: 1,
		Seed:             3,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Every failer fails exactly once (simClients recover), so the
	// quarantine log matches the permanent-exclusion scenario…
	if len(res.Quarantined) != 3 {
		t.Fatalf("quarantined %v, want 3 devices", res.Quarantined)
	}
	// …and the fleet heals on schedule. With no sampling limits a
	// failer fails exactly in its FailRound, sits out the next round,
	// and participates again from FailRound+2 — so each round's books
	// are fully predictable from the assigned profiles.
	failedAt := func(r int) int {
		if r < 0 {
			return 0
		}
		n := 0
		for _, p := range res.Profiles {
			if p.FailRound == r {
				n++
			}
		}
		return n
	}
	for r, st := range res.Trace {
		wantSampled := 12 - failedAt(r-1) // last round's failers are on probation
		wantResponded := wantSampled - failedAt(r)
		if st.Sampled != wantSampled || st.Responded != wantResponded || st.Probation != failedAt(r) || st.Quarantined != 0 {
			t.Fatalf("round %d stats = %+v, want sampled %d responded %d", r, st, wantSampled, wantResponded)
		}
	}
	// Contrast with permanent quarantine under the same seed: once all
	// three failers have tripped, the fleet stays shrunken.
	sc.QuarantineRounds = 0
	perm, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	permLast := perm.Trace[len(perm.Trace)-1]
	healedLast := res.Trace[len(res.Trace)-1]
	if permLast.Sampled >= healedLast.Sampled {
		t.Fatalf("probation gave no re-admission benefit: permanent %+v vs probation %+v", permLast, healedLast)
	}
}

// TestSecAggScenarioValidation covers the new scenario checks.
func TestSecAggScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Clients: 2, Protect: []int{9}}); err == nil {
		t.Fatal("out-of-range protected index must fail")
	}
	if _, err := Run(Scenario{Clients: 2, Protect: []int{0, 0}}); err == nil {
		t.Fatal("duplicate protected index must fail")
	}
	if _, err := Run(Scenario{Clients: 4, Protect: []int{0}, NoTEEFraction: 0.5}); err == nil {
		t.Fatal("protected tensors with a partial-TEE fleet must fail")
	}
}
