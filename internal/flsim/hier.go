package flsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/hier"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// shardRange returns shard s's contiguous client range [lo, hi): the
// fleet is partitioned in index order, so device names, profiles, and
// update values line up exactly with the flat run of the same
// scenario.
func shardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// overrideShardProfiles applies per-shard straggler/failure fractions
// on top of the fleet-wide assignment: each overridden shard redraws
// its roles from a per-shard seeded RNG, so heterogeneous edge
// profiles stay deterministic.
func overrideShardProfiles(sc *Scenario, profiles []Profile) {
	if len(sc.ShardStragglers) == 0 && len(sc.ShardFailures) == 0 {
		return
	}
	for s := 0; s < sc.Shards; s++ {
		lo, hi := shardRange(sc.Clients, sc.Shards, s)
		size := hi - lo
		sf := sc.StragglerFraction
		if len(sc.ShardStragglers) > 0 {
			sf = sc.ShardStragglers[s]
		}
		ff := sc.FailureFraction
		if len(sc.ShardFailures) > 0 {
			ff = sc.ShardFailures[s]
		}
		for i := lo; i < hi; i++ {
			profiles[i].Straggler = false
			profiles[i].FailRound = -1
		}
		rng := rand.New(rand.NewSource(sc.Seed ^ (int64(s)+1)*0x9e3779b9))
		order := rng.Perm(size)
		stragglers := int(float64(size)*sf + 0.5)
		failers := int(float64(size)*ff + 0.5)
		if stragglers+failers > size {
			failers = size - stragglers
		}
		for k := 0; k < stragglers; k++ {
			profiles[lo+order[k]].Straggler = true
		}
		for k := stragglers; k < stragglers+failers; k++ {
			profiles[lo+order[k]].FailRound = rng.Intn(sc.Rounds)
		}
	}
}

// hierWait advances the shared virtual clock once every answering
// sampled client across all shards has folded (or been quarantined)
// and at least one sampled straggler is blocking a shard deadline —
// the multi-shard generalisation of the flat harness's wait
// accounting. Hooks fire from every edge's round goroutine, so the
// state is mutex-guarded; a shard that starts its round after an
// advance simply triggers the next one when its own answering cohort
// drains, which fires its (later-armed) deadline timer.
type hierWait struct {
	mu          sync.Mutex
	clk         *simclock.Virtual
	deadline    time.Duration
	outstanding int
	stragglers  int
}

func (w *hierWait) maybeAdvance() {
	if w.outstanding == 0 && w.stragglers > 0 {
		w.stragglers = 0
		w.clk.Advance(w.deadline)
	}
}

func (w *hierWait) roundStarted(stragglers, answering int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.outstanding += answering
	w.stragglers += stragglers
	w.maybeAdvance()
}

func (w *hierWait) drained() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.outstanding--
	w.maybeAdvance()
}

// runHier executes a multi-tier scenario: the fleet is partitioned
// into sc.Shards contiguous shards, each served by a hier.Edge running
// the full round protocol over fl.Pipe, and a hier.Root folds one
// partial per shard per round. Called by Run when sc.Shards > 1.
func runHier(sc Scenario, profiles []Profile) (*Result, error) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	start := clk.Now()

	var planner fl.RoundPlanner = sc.Planner
	if planner == nil && len(sc.Protect) > 0 {
		pm := make(staticProtect, len(sc.Protect))
		for _, id := range sc.Protect {
			pm[id] = true
		}
		planner = pm
	}

	verifier := tz.NewVerifier()
	shapes := make([][]int, len(sc.Model))
	for i, t := range sc.Model {
		shapes[i] = t.Shape
	}

	wait := &hierWait{clk: clk, deadline: sc.Deadline}
	byDevice := make(map[string]*simClient, sc.Clients)
	var mu sync.Mutex
	var quarantined []string
	hooks := fl.Hooks{
		RoundStarted: func(round int, sampled []string) {
			stragglers, answering := 0, 0
			for _, d := range sampled {
				if byDevice[d].profile.Straggler {
					stragglers++
				} else {
					answering++
				}
			}
			wait.roundStarted(stragglers, answering)
		},
		UpdateFolded: func(int, string) { wait.drained() },
		ClientQuarantined: func(device string, _ error) {
			mu.Lock()
			quarantined = append(quarantined, device)
			mu.Unlock()
			wait.drained()
		},
		ClientProbationed: func(device string, _ error) {
			mu.Lock()
			quarantined = append(quarantined, device)
			mu.Unlock()
			wait.drained()
		},
	}

	edges := make([]*hier.Edge, sc.Shards)
	edgeConns := make([]fl.Conn, sc.Shards)
	var edgeMetrics []*obs.Registry
	if sc.FleetTelemetry {
		edgeMetrics = make([]*obs.Registry, sc.Shards)
	}
	var fleet sync.WaitGroup
	for s := 0; s < sc.Shards; s++ {
		lo, hi := shardRange(sc.Clients, sc.Shards, s)
		clientConns := make([]fl.Conn, 0, hi-lo)
		for i := lo; i < hi; i++ {
			c, serverConn, err := buildClient(i, profiles[i], shapes, sc.Seed, verifier)
			if err != nil {
				return nil, err
			}
			c.positive = sc.PositiveDeltas
			byDevice[c.profile.Device] = c
			clientConns = append(clientConns, serverConn)
			fleet.Add(1)
			go func(c *simClient) {
				defer fleet.Done()
				c.run()
			}(c)
		}
		// The edge owns a model-shaped scratch state; values are
		// overwritten by the root's broadcast every round.
		edgeState := make([]*tensor.Tensor, len(sc.Model))
		for i, t := range sc.Model {
			edgeState[i] = tensor.New(t.Shape...)
		}
		scfg := fl.ServerConfig{
			MinClients:       sc.MinClients,
			SampleCount:      sc.SampleCount,
			SampleFraction:   sc.SampleFraction,
			SampleSeed:       sc.Seed + int64(s) + 1,
			RoundDeadline:    sc.Deadline,
			RequireTEE:       sc.RequireTEE,
			Verifier:         verifier,
			Codec:            sc.Codec,
			QuarantineRounds: sc.QuarantineRounds,
			Planner:          planner,
			Clock:            clk,
			Hooks:            hooks,
		}
		if sc.FleetTelemetry {
			// A private per-shard registry: its deltas ride each PartialUp
			// upstream and fold into sc.Metrics at the root.
			edgeMetrics[s] = obs.NewRegistry()
			scfg.Metrics = edgeMetrics[s]
		}
		if len(sc.EdgeSpans) > 0 {
			scfg.Spans = obs.NewTraceSink(sc.EdgeSpans[s], clk)
		}
		edge := hier.NewEdge(edgeState, hier.EdgeConfig{
			Name:     fmt.Sprintf("edge-%03d", s),
			MaxCodec: sc.Codec,
			Server:   scfg,
		})
		edges[s] = edge
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		fleet.Add(1)
		go func(edge *hier.Edge, upstream fl.Conn, clients []fl.Conn) {
			defer fleet.Done()
			_ = edge.Run(upstream, clients) // shard loss degrades the root, never the harness
		}(edge, edgeSide, clientConns)
	}

	root := hier.NewRoot(sc.Model, hier.RootConfig{
		Rounds:    sc.Rounds,
		MinShards: sc.MinShards,
		SecAgg:    sc.SecAgg,
		Codec:     sc.Codec,
		Clock:     clk,
		Metrics:   sc.Metrics,
		Spans:     obs.NewTraceSink(sc.Spans, clk),
	})
	_, runErr := root.Run(edgeConns)
	fleet.Wait()

	sort.Strings(quarantined) // arrival order within a round can race; the set cannot

	selected := 0
	for _, e := range edges {
		selected += e.Selected
	}
	res := &Result{
		Selected:    selected,
		Rejected:    sc.Clients - selected,
		Trace:       root.Trace(),
		Final:       sc.Model,
		Profiles:    profiles,
		Quarantined: quarantined,
		Elapsed:     clk.Now().Sub(start),
		Idle:        idleFromTrace(root.Trace(), sc.Deadline),
		EdgeMetrics: edgeMetrics,
	}
	return res, runErr
}
