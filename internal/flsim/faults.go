package flsim

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/hier"
	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// This file is the fault-injection suite: harnesses that kill a tier of
// the federation mid-round — flat server, hierarchy root, one edge — or
// sever a shard's network link, then recover the dead process from its
// write-ahead journal and drive the session to completion. Simulated
// clients are memoryless (updates are pure functions of seed, client
// index, and round), so a fleet that rejoins after a crash pushes
// exactly the updates the dead process would have folded — which is
// what lets the tests assert the recovered run bit-identical to an
// uncrashed one.

// ErrSimCrash is the error a fault harness phase returns when the
// injected crash fired (the simulated process died as scheduled).
var ErrSimCrash = errors.New("flsim: simulated crash")

// simCrash is the panic payload of an injected crash; anything else
// escaping an engine goroutine is a real bug and re-panics.
type simCrash struct{ round int }

// CrashSpec places a crash inside a flat session: at the start of Round
// (Folds == 0), or after the Folds-th client update of Round has been
// folded — and journaled — mid-round.
type CrashSpec struct {
	Round int
	Folds int
}

// installCrash arms a CrashSpec on the harness hooks. Both hooks fire
// on the engine's round goroutine, so the panic unwinds srv.Run exactly
// where a real process would die: after the round's write-ahead open
// (RoundStarted fires past the journal append) or after a fold's
// journal record.
func installCrash(hooks fl.Hooks, spec CrashSpec) fl.Hooks {
	prevStart, prevFold := hooks.RoundStarted, hooks.UpdateFolded
	folds := 0
	hooks.RoundStarted = func(round int, sampled []string) {
		if spec.Folds <= 0 && round == spec.Round {
			panic(simCrash{round})
		}
		if prevStart != nil {
			prevStart(round, sampled)
		}
	}
	hooks.UpdateFolded = func(round int, device string) {
		if spec.Folds > 0 && round == spec.Round {
			folds++
			if folds == spec.Folds {
				panic(simCrash{round})
			}
		}
		if prevFold != nil {
			prevFold(round, device)
		}
	}
	return hooks
}

// runOrCrash runs the flat engine, converting an injected crash panic
// into ErrSimCrash after aborting the session (readers drained, conns
// closed, journal synced — the moral equivalent of the process dying).
func runOrCrash(srv *fl.Server, conns []fl.Conn) (n int, err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(simCrash); !ok {
				panic(p)
			}
			srv.Abort()
			err = ErrSimCrash
		}
	}()
	return srv.Run(conns)
}

// cloneModel deep-copies a model (the doomed phase of a crash scenario
// works on scratch values so recovery can replay onto the originals).
func cloneModel(model []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(model))
	for i, t := range model {
		c := tensor.New(t.Shape...)
		copy(c.Data, t.Data)
		out[i] = c
	}
	return out
}

// scratchModel allocates a zero model of the same shapes (edge
// aggregators own shape-matched scratch state).
func scratchModel(model []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(model))
	for i, t := range model {
		out[i] = tensor.New(t.Shape...)
	}
	return out
}

func shapesOf(model []*tensor.Tensor) [][]int {
	shapes := make([][]int, len(model))
	for i, t := range model {
		shapes[i] = t.Shape
	}
	return shapes
}

// RunWithCrash executes a flat scenario twice around an injected crash:
// phase one journals through journalPath and dies at spec's crash
// point; phase two recovers the server from the journal onto the
// scenario's initial model, resumes with a fresh fleet of the same
// profiles, and finishes the session. The returned result is the
// recovered process's — its trace and final model are bit-identical to
// an uncrashed run of the same scenario (committed rounds replay from
// the journal, re-run rounds refold the same memoryless updates).
func RunWithCrash(sc Scenario, spec CrashSpec, journalPath string) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Shards > 1 {
		return nil, errors.New("flsim: RunWithCrash drives the flat engine; use the RunHier* fault harnesses for hierarchy crashes")
	}
	if spec.Round < 0 || spec.Round >= sc.Rounds {
		return nil, fmt.Errorf("flsim: crash round %d outside [0,%d)", spec.Round, sc.Rounds)
	}
	profiles := assignProfiles(&sc)

	// Phase 1 — the doomed process: runs on scratch model values so
	// sc.Model keeps the initial state recovery replays onto.
	j, err := journal.Create(journalPath)
	if err != nil {
		return nil, err
	}
	doomed := sc
	doomed.Model = cloneModel(sc.Model)
	_, runErr := runFlat(doomed, profiles, flatOpts{journal: j, crash: &spec})
	_ = j.Close()
	if !errors.Is(runErr, ErrSimCrash) {
		return nil, fmt.Errorf("flsim: session ended without reaching the crash point (round %d, fold %d): %v", spec.Round, spec.Folds, runErr)
	}

	// Phase 2 — the recovered process: rebuilt from the journal, same
	// config, fresh fleet, same profiles. Committed rounds are already
	// applied by Recover; the engine resumes at the crashed round.
	j2, err := journal.Append(journalPath)
	if err != nil {
		return nil, err
	}
	res, err := runFlat(sc, profiles, flatOpts{journal: j2, recoverPath: journalPath})
	_ = j2.Close()
	return res, err
}

// validateHierFault validates a scenario for the hierarchy fault
// harnesses, which study crash and partition behaviour in isolation:
// full participation, no deadlines, no Byzantine or failing clients.
func validateHierFault(sc *Scenario) error {
	if sc.Shards < 2 {
		return errors.New("flsim: hierarchy fault scenarios need Shards > 1")
	}
	if err := sc.Validate(); err != nil {
		return err
	}
	if sc.StragglerFraction > 0 || sc.FailureFraction > 0 || sc.NoTEEFraction > 0 ||
		sc.PoisonFraction > 0 || sc.DisconnectFraction > 0 ||
		len(sc.ShardStragglers) > 0 || len(sc.ShardFailures) > 0 ||
		len(sc.Protect) > 0 || sc.Deadline > 0 {
		return errors.New("flsim: hierarchy fault scenarios need a clean full-participation fleet (the crash is the fault under study)")
	}
	return nil
}

func shardName(s int) string { return fmt.Sprintf("edge-%03d", s) }

// shardServerCfg is the shard engine configuration the fault harnesses
// hand to edges — identical across the doomed and recovered phases so
// the journal fingerprint validates.
func shardServerCfg(sc *Scenario, s int, verifier *tz.Verifier, j *journal.Journal) fl.ServerConfig {
	cfg := fl.ServerConfig{
		MinClients: sc.MinClients,
		SampleSeed: sc.Seed + int64(s) + 1,
		RequireTEE: sc.RequireTEE,
		Verifier:   verifier,
		Codec:      sc.Codec,
		SecAgg:     sc.SecAgg,
		Journal:    j,
	}
	if sc.SecAgg {
		cfg.SecAggScaleBits = secagg.DefaultScaleBits
	}
	return cfg
}

// startShardClients builds and starts shard s's simulated clients,
// returning the server-side conns in client-index order.
func startShardClients(sc *Scenario, profiles []Profile, shapes [][]int, verifier *tz.Verifier, fleet *sync.WaitGroup, s int) ([]fl.Conn, error) {
	lo, hi := shardRange(sc.Clients, sc.Shards, s)
	conns := make([]fl.Conn, 0, hi-lo)
	for i := lo; i < hi; i++ {
		c, serverConn, err := buildClient(i, profiles[i], shapes, sc.Seed, verifier)
		if err != nil {
			return nil, err
		}
		c.positive = sc.PositiveDeltas
		conns = append(conns, serverConn)
		fleet.Add(1)
		go func(c *simClient) {
			defer fleet.Done()
			c.run()
		}(c)
	}
	return conns, nil
}

// runEdgeRecovering runs one edge, swallowing an injected shard crash
// (Edge.Run's deferred Abort and upstream Close have already run during
// the unwind — the shard process is dead and its link to the root is
// severed) and invoking crashed, if set, once the teardown is complete.
func runEdgeRecovering(edge *hier.Edge, upstream fl.Conn, clients []fl.Conn, crashed func()) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(simCrash); !ok {
				panic(p)
			}
			if crashed != nil {
				crashed()
			}
		}
	}()
	_ = edge.Run(upstream, clients) // shard loss degrades the root, never the harness
}

// runRootOrCrash mirrors runOrCrash for the hierarchy root.
func runRootOrCrash(r *hier.Root, conns []fl.Conn) (err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(simCrash); !ok {
				panic(p)
			}
			r.Abort()
			err = ErrSimCrash
		}
	}()
	_, err = r.Run(conns)
	return err
}

// RunHierWithRootCrash runs a hierarchical scenario in which the root
// process dies at the start of round crashRound — taking every edge and
// client down with it, since the whole tree hangs off its connections —
// and is then recovered, together with all of its edges, from the
// write-ahead journals in dir (root.journal plus one edge journal per
// shard). The recovered tiers resume with a fresh fleet at the crashed
// round; the result is the recovered root's and is bit-identical to an
// uncrashed run of the same scenario.
func RunHierWithRootCrash(sc Scenario, crashRound int, dir string) (*Result, error) {
	if err := validateHierFault(&sc); err != nil {
		return nil, err
	}
	if crashRound < 0 || crashRound >= sc.Rounds {
		return nil, fmt.Errorf("flsim: root crash round %d outside [0,%d)", crashRound, sc.Rounds)
	}
	profiles := assignProfiles(&sc)
	shapes := shapesOf(sc.Model)
	rootPath := filepath.Join(dir, "root.journal")
	edgePath := func(s int) string { return filepath.Join(dir, shardName(s)+".journal") }

	// Phase 1 — every tier journals; the root dies pre-broadcast at
	// crashRound. Its round is open-but-uncommitted in root.journal,
	// and no edge has seen the round, so all three tiers agree on the
	// resume point.
	rootJ, err := journal.Create(rootPath)
	if err != nil {
		return nil, err
	}
	verifier := tz.NewVerifier()
	var fleet sync.WaitGroup
	edgeConns := make([]fl.Conn, sc.Shards)
	edgeJs := make([]*journal.Journal, sc.Shards)
	for s := 0; s < sc.Shards; s++ {
		ej, err := journal.Create(edgePath(s))
		if err != nil {
			return nil, err
		}
		edgeJs[s] = ej
		clientConns, err := startShardClients(&sc, profiles, shapes, verifier, &fleet, s)
		if err != nil {
			return nil, err
		}
		edge := hier.NewEdge(scratchModel(sc.Model), hier.EdgeConfig{
			Name:     shardName(s),
			MaxCodec: sc.Codec,
			Server:   shardServerCfg(&sc, s, verifier, ej),
		})
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		fleet.Add(1)
		go func(edge *hier.Edge, up fl.Conn, cs []fl.Conn) {
			defer fleet.Done()
			runEdgeRecovering(edge, up, cs, nil)
		}(edge, edgeSide, clientConns)
	}
	doomed := hier.NewRoot(cloneModel(sc.Model), hier.RootConfig{
		Rounds:    sc.Rounds,
		MinShards: sc.MinShards,
		SecAgg:    sc.SecAgg,
		Codec:     sc.Codec,
		Journal:   rootJ,
		Hooks: hier.Hooks{RoundStarted: func(round int, _ []string) {
			if round == crashRound {
				panic(simCrash{round})
			}
		}},
	})
	if err := runRootOrCrash(doomed, edgeConns); !errors.Is(err, ErrSimCrash) {
		return nil, fmt.Errorf("flsim: hierarchy session ended without reaching the crash point (round %d): %v", crashRound, err)
	}
	fleet.Wait()
	_ = rootJ.Close()
	for _, ej := range edgeJs {
		_ = ej.Close()
	}

	// Phase 2 — recover all three tiers: the root from its journal
	// onto the pristine initial model, each edge from its shard
	// journal (roster and standing intact, clients matched without
	// re-attestation), and a fresh fleet rejoining underneath.
	rootJ2, err := journal.Append(rootPath)
	if err != nil {
		return nil, err
	}
	rootCfg := hier.RootConfig{
		Rounds:    sc.Rounds,
		MinShards: sc.MinShards,
		SecAgg:    sc.SecAgg,
		Codec:     sc.Codec,
		Journal:   rootJ2,
	}
	root, err := hier.RecoverRoot(rootPath, sc.Model, rootCfg)
	if err != nil {
		_ = rootJ2.Close()
		return nil, err
	}
	verifier2 := tz.NewVerifier()
	var fleet2 sync.WaitGroup
	conns2 := make([]fl.Conn, sc.Shards)
	edges := make([]*hier.Edge, sc.Shards)
	edgeJ2s := make([]*journal.Journal, sc.Shards)
	for s := 0; s < sc.Shards; s++ {
		ej2, err := journal.Append(edgePath(s))
		if err != nil {
			return nil, err
		}
		edgeJ2s[s] = ej2
		edge, err := hier.RecoverEdge(edgePath(s), scratchModel(sc.Model), hier.EdgeConfig{
			Name:     shardName(s),
			MaxCodec: sc.Codec,
			Server:   shardServerCfg(&sc, s, verifier2, ej2),
		})
		if err != nil {
			return nil, fmt.Errorf("flsim: recovering shard %d: %w", s, err)
		}
		edges[s] = edge
		clientConns, err := startShardClients(&sc, profiles, shapes, verifier2, &fleet2, s)
		if err != nil {
			return nil, err
		}
		rootSide, edgeSide := fl.Pipe()
		conns2[s] = rootSide
		fleet2.Add(1)
		go func(edge *hier.Edge, up fl.Conn, cs []fl.Conn) {
			defer fleet2.Done()
			runEdgeRecovering(edge, up, cs, nil)
		}(edge, edgeSide, clientConns)
	}
	_, runErr := root.Run(conns2)
	fleet2.Wait()
	_ = rootJ2.Close()
	for _, ej := range edgeJ2s {
		_ = ej.Close()
	}

	selected := 0
	for _, e := range edges {
		selected += e.Selected
	}
	return &Result{
		Selected: selected,
		Rejected: sc.Clients - selected,
		Trace:    root.Trace(),
		Final:    sc.Model,
		Profiles: profiles,
	}, runErr
}

// RunHierWithEdgeCrash runs a hierarchical scenario in which one edge
// process dies at the start of its shard round crashRound while the
// root stays up: the root degrades to the surviving shards (MinShards
// must leave headroom), and at round rejoinRound the edge is recovered
// from its journal in dir and readmitted through the root's rejoin
// path, bringing its shard's clients back with it. The trace shows the
// shard count dip between crashRound and rejoinRound.
func RunHierWithEdgeCrash(sc Scenario, shard, crashRound, rejoinRound int, dir string) (*Result, error) {
	if err := validateHierFault(&sc); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= sc.Shards {
		return nil, fmt.Errorf("flsim: crash shard %d outside [0,%d)", shard, sc.Shards)
	}
	if crashRound <= 0 || crashRound >= rejoinRound || rejoinRound >= sc.Rounds {
		return nil, fmt.Errorf("flsim: need 0 < crashRound(%d) < rejoinRound(%d) < Rounds(%d)", crashRound, rejoinRound, sc.Rounds)
	}
	if sc.MinShards > sc.Shards-1 {
		return nil, errors.New("flsim: an edge crash needs MinShards headroom (MinShards <= Shards-1)")
	}
	profiles := assignProfiles(&sc)
	shapes := shapesOf(sc.Model)
	path := filepath.Join(dir, shardName(shard)+".journal")
	ej, err := journal.Create(path)
	if err != nil {
		return nil, err
	}

	verifier := tz.NewVerifier()
	var fleet sync.WaitGroup
	edgeConns := make([]fl.Conn, sc.Shards)
	edges := make([]*hier.Edge, sc.Shards)
	crashedDown := make(chan struct{}) // closed once the dead edge's teardown and journal flush finish
	for s := 0; s < sc.Shards; s++ {
		clientConns, err := startShardClients(&sc, profiles, shapes, verifier, &fleet, s)
		if err != nil {
			return nil, err
		}
		var scfg fl.ServerConfig
		var onCrash func()
		if s == shard {
			scfg = shardServerCfg(&sc, s, verifier, ej)
			scfg.Hooks = fl.Hooks{RoundStarted: func(round int, _ []string) {
				if round == crashRound {
					panic(simCrash{round})
				}
			}}
			onCrash = func() {
				_ = ej.Close()
				close(crashedDown)
			}
		} else {
			scfg = shardServerCfg(&sc, s, verifier, nil)
		}
		edge := hier.NewEdge(scratchModel(sc.Model), hier.EdgeConfig{
			Name:     shardName(s),
			MaxCodec: sc.Codec,
			Server:   scfg,
		})
		edges[s] = edge
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		fleet.Add(1)
		go func(edge *hier.Edge, up fl.Conn, cs []fl.Conn, onCrash func()) {
			defer fleet.Done()
			runEdgeRecovering(edge, up, cs, onCrash)
		}(edge, edgeSide, clientConns, onCrash)
	}

	var rejoined *hier.Edge
	var rejoinErr error
	root := hier.NewRoot(sc.Model, hier.RootConfig{
		Rounds:    sc.Rounds,
		MinShards: sc.MinShards,
		SecAgg:    sc.SecAgg,
		Codec:     sc.Codec,
		// Rejoin runs on the root's round goroutine and blocks until
		// the crashed edge is rebuilt — which is exactly what makes the
		// rejoin round deterministic.
		Rejoin: func(round int) []fl.Conn {
			if round != rejoinRound || rejoined != nil || rejoinErr != nil {
				return nil
			}
			<-crashedDown
			ej2, err := journal.Append(path)
			if err != nil {
				rejoinErr = err
				return nil
			}
			edge, err := hier.RecoverEdge(path, scratchModel(sc.Model), hier.EdgeConfig{
				Name:     shardName(shard),
				MaxCodec: sc.Codec,
				Server:   shardServerCfg(&sc, shard, verifier, ej2),
			})
			if err != nil {
				rejoinErr = err
				_ = ej2.Close()
				return nil
			}
			clientConns, err := startShardClients(&sc, profiles, shapes, verifier, &fleet, shard)
			if err != nil {
				rejoinErr = err
				_ = ej2.Close()
				return nil
			}
			rejoined = edge
			rootSide, edgeSide := fl.Pipe()
			fleet.Add(1)
			go func() {
				defer fleet.Done()
				defer ej2.Close()
				runEdgeRecovering(edge, edgeSide, clientConns, nil)
			}()
			return []fl.Conn{rootSide}
		},
	})
	_, runErr := root.Run(edgeConns)
	fleet.Wait()
	if runErr == nil && rejoinErr != nil {
		runErr = fmt.Errorf("flsim: rejoining crashed shard: %w", rejoinErr)
	}
	if runErr == nil && rejoined == nil {
		runErr = errors.New("flsim: crashed shard never rejoined")
	}

	selected := 0
	for _, e := range edges {
		selected += e.Selected
	}
	return &Result{
		Selected: selected,
		Rejected: sc.Clients - selected,
		Trace:    root.Trace(),
		Final:    sc.Model,
		Profiles: profiles,
	}, runErr
}

// RunHierWithPartition runs a hierarchical scenario in which shard's
// link to the root is severed just before round severRound's broadcast
// — a network partition, not a process crash: the edge and its clients
// are healthy but unreachable, the root drops the shard and degrades to
// the survivors for the rest of the session (MinShards must leave
// headroom). No journals are involved; this scenario is about graceful
// degradation, not durability.
func RunHierWithPartition(sc Scenario, shard, severRound int) (*Result, error) {
	if err := validateHierFault(&sc); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= sc.Shards {
		return nil, fmt.Errorf("flsim: severed shard %d outside [0,%d)", shard, sc.Shards)
	}
	if severRound <= 0 || severRound >= sc.Rounds {
		return nil, fmt.Errorf("flsim: sever round %d outside (0,%d)", severRound, sc.Rounds)
	}
	if sc.MinShards > sc.Shards-1 {
		return nil, errors.New("flsim: a partition needs MinShards headroom (MinShards <= Shards-1)")
	}
	profiles := assignProfiles(&sc)
	shapes := shapesOf(sc.Model)

	verifier := tz.NewVerifier()
	var fleet sync.WaitGroup
	edgeConns := make([]fl.Conn, sc.Shards)
	edges := make([]*hier.Edge, sc.Shards)
	for s := 0; s < sc.Shards; s++ {
		clientConns, err := startShardClients(&sc, profiles, shapes, verifier, &fleet, s)
		if err != nil {
			return nil, err
		}
		edge := hier.NewEdge(scratchModel(sc.Model), hier.EdgeConfig{
			Name:     shardName(s),
			MaxCodec: sc.Codec,
			Server:   shardServerCfg(&sc, s, verifier, nil),
		})
		edges[s] = edge
		rootSide, edgeSide := fl.Pipe()
		edgeConns[s] = rootSide
		fleet.Add(1)
		go func(edge *hier.Edge, up fl.Conn, cs []fl.Conn) {
			defer fleet.Done()
			runEdgeRecovering(edge, up, cs, nil)
		}(edge, edgeSide, clientConns)
	}

	root := hier.NewRoot(sc.Model, hier.RootConfig{
		Rounds:    sc.Rounds,
		MinShards: sc.MinShards,
		SecAgg:    sc.SecAgg,
		Codec:     sc.Codec,
		Hooks: hier.Hooks{RoundStarted: func(round int, _ []string) {
			if round == severRound {
				// The partition: the link drops before the broadcast,
				// so the send fails and the root drops the shard.
				_ = edgeConns[shard].Close()
			}
		}},
	})
	_, runErr := root.Run(edgeConns)
	fleet.Wait()

	selected := 0
	for _, e := range edges {
		selected += e.Selected
	}
	return &Result{
		Selected: selected,
		Rejected: sc.Clients - selected,
		Trace:    root.Trace(),
		Final:    sc.Model,
		Profiles: profiles,
	}, runErr
}
