package flsim

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/wire"
)

// acceptance scenario from the issue: 256 clients, 10% stragglers,
// half-fleet sampling, fully deterministic.
func acceptanceScenario() Scenario {
	return Scenario{
		Clients:           256,
		Rounds:            6,
		MinClients:        8,
		SampleFraction:    0.5,
		Deadline:          2 * time.Second,
		StragglerFraction: 0.10,
		Seed:              42,
	}
}

func TestScenarioDeterminism256(t *testing.T) {
	first, err := Run(acceptanceScenario())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(acceptanceScenario())
	if err != nil {
		t.Fatal(err)
	}

	if len(first.Trace) != 6 {
		t.Fatalf("trace has %d rounds, want 6", len(first.Trace))
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Fatalf("traces differ:\n  run 1: %+v\n  run 2: %+v", first.Trace, second.Trace)
	}
	if first.Selected != 256 || second.Selected != 256 {
		t.Fatalf("selected %d / %d, want 256", first.Selected, second.Selected)
	}
	for i := range first.Final {
		for j := range first.Final[i].Data {
			if first.Final[i].Data[j] != second.Final[i].Data[j] {
				t.Fatalf("final models differ at tensor %d elem %d", i, j)
			}
		}
	}
	for _, st := range first.Trace {
		if st.Sampled != 128 { // ceil(0.5 × 256)
			t.Fatalf("round %d sampled %d, want 128", st.Round, st.Sampled)
		}
		if st.Responded+st.Dropped != st.Sampled {
			t.Fatalf("round %d books don't balance: %+v", st.Round, st)
		}
		if st.Responded < 8 {
			t.Fatalf("round %d under MinClients: %+v", st.Round, st)
		}
		if st.Quarantined != 0 {
			t.Fatalf("stragglers must be dropped, not quarantined: %+v", st)
		}
		if st.UpdateNorm <= 0 {
			t.Fatalf("round %d has zero aggregate norm", st.Round)
		}
	}
}

func TestStragglersAreDroppedEveryRound(t *testing.T) {
	res, err := Run(Scenario{
		Clients:           20,
		Rounds:            4,
		Deadline:          time.Second,
		StragglerFraction: 0.25,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	stragglers := 0
	for _, p := range res.Profiles {
		if p.Straggler {
			stragglers++
		}
	}
	if stragglers != 5 {
		t.Fatalf("assigned %d stragglers, want 5", stragglers)
	}
	// No sampling: all 20 participate, the 5 stragglers drop each round.
	for _, st := range res.Trace {
		if st.Sampled != 20 || st.Responded != 15 || st.Dropped != 5 {
			t.Fatalf("round %d stats = %+v", st.Round, st)
		}
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("quarantined %v, want none", res.Quarantined)
	}
	// Each deadline wait advances virtual time by the full deadline.
	if res.Elapsed != 4*time.Second {
		t.Fatalf("elapsed virtual time = %v, want 4s", res.Elapsed)
	}
}

func TestFailingClientsAreQuarantined(t *testing.T) {
	res, err := Run(Scenario{
		Clients:         12,
		Rounds:          5,
		FailureFraction: 0.25,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 3 {
		t.Fatalf("quarantined %v, want 3 devices", res.Quarantined)
	}
	totalQuarantined := 0
	for _, st := range res.Trace {
		totalQuarantined += st.Quarantined
	}
	if totalQuarantined != 3 {
		t.Fatalf("trace quarantine total = %d", totalQuarantined)
	}
	// The last round's cohort can only draw from the survivors.
	last := res.Trace[len(res.Trace)-1]
	if last.Sampled > 12-len(res.Quarantined) {
		t.Fatalf("last round sampled %d of %d survivors", last.Sampled, 12-len(res.Quarantined))
	}
}

func TestRequireTEERejectsNoTEEDevices(t *testing.T) {
	res, err := Run(Scenario{
		Clients:       16,
		Rounds:        2,
		NoTEEFraction: 0.25,
		RequireTEE:    true,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 12 || res.Rejected != 4 {
		t.Fatalf("selected %d / rejected %d, want 12 / 4", res.Selected, res.Rejected)
	}
	for _, st := range res.Trace {
		if st.Sampled != 12 {
			t.Fatalf("round %d sampled %d, want 12", st.Round, st.Sampled)
		}
	}
}

func TestAllStraggleFailsWithNotEnoughClients(t *testing.T) {
	_, err := Run(Scenario{
		Clients:           4,
		Rounds:            2,
		Deadline:          time.Second,
		StragglerFraction: 1.0,
		Seed:              5,
	})
	if !errors.Is(err, fl.ErrNotEnoughClients) {
		t.Fatalf("err = %v, want ErrNotEnoughClients", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Clients: 0}); err == nil {
		t.Fatal("zero clients must fail")
	}
	if _, err := Run(Scenario{Clients: 2, StragglerFraction: 0.5}); err == nil {
		t.Fatal("stragglers without a deadline must fail")
	}
	if _, err := Run(Scenario{Clients: 2, FailureFraction: 1.5}); err == nil {
		t.Fatal("fraction out of range must fail")
	}
}

func TestDyadicDeltasAreExact(t *testing.T) {
	// Every simulated update value is a multiple of 1/256 so sums are
	// exact in float64 in any order — the basis of trace determinism.
	for c := 0; c < 64; c++ {
		for r := 0; r < 8; r++ {
			v := dyadicDelta(1, c, r)
			scaled := v * 256
			if scaled != float64(int64(scaled)) {
				t.Fatalf("delta %v is not a multiple of 1/256", v)
			}
			if v < -1 || v >= 1 {
				t.Fatalf("delta %v out of range", v)
			}
		}
	}
}

// TestCodecTraceInvariance: simulated updates are constant tensors,
// which every codec round-trips exactly, so the same scenario must
// produce bitwise-identical traces and final models under f64, f32 and
// q8 — while actually exercising the quantised wire path end to end.
func TestCodecTraceInvariance(t *testing.T) {
	run := func(codec wire.Codec) *Result {
		sc := acceptanceScenario()
		sc.Codec = codec
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		return res
	}
	ref := run(wire.CodecF64)
	for _, codec := range []wire.Codec{wire.CodecF32, wire.CodecQ8} {
		got := run(codec)
		if !reflect.DeepEqual(ref.Trace, got.Trace) {
			t.Fatalf("%s trace diverged:\n  f64: %+v\n  %s: %+v", codec, ref.Trace, codec, got.Trace)
		}
		for i := range ref.Final {
			for j := range ref.Final[i].Data {
				if ref.Final[i].Data[j] != got.Final[i].Data[j] {
					t.Fatalf("%s final model differs at tensor %d elem %d", codec, i, j)
				}
			}
		}
	}
}

func TestUnknownCodecRejected(t *testing.T) {
	sc := Scenario{Clients: 1, Codec: wire.Codec(99)}
	if _, err := Run(sc); err == nil {
		t.Fatal("unknown codec must fail validation")
	}
}

// TestWeightedExamples: with WeightedExamples on, the folded aggregate
// is the example-weighted mean of the per-client dyadic deltas. The
// expected value is recomputed here with the same exact arithmetic the
// engine uses (integer-weighted dyadic sums commute in float64).
func TestWeightedExamples(t *testing.T) {
	sc := Scenario{Clients: 24, Rounds: 1, WeightedExamples: true, Seed: 9}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var sum, weight float64
	for i, p := range res.Profiles {
		if p.Examples < 1 || p.Examples > 16 {
			t.Fatalf("client %d examples = %d, want [1,16]", i, p.Examples)
		}
		sum += float64(p.Examples) * dyadicDelta(sc.Seed, i, 0)
		weight += float64(p.Examples)
	}
	want := sum * (1 / weight)
	if got := res.Final[0].Data[0]; got != want {
		t.Fatalf("weighted aggregate = %v, want %v", got, want)
	}
	if res.Trace[0].WeightTotal != weight {
		t.Fatalf("WeightTotal = %v, want %v", res.Trace[0].WeightTotal, weight)
	}
	// And without weighting the same fleet lands on the plain mean.
	sc2 := sc
	sc2.WeightedExamples = false
	res2, err := Run(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace[0].WeightTotal != 24 {
		t.Fatalf("unweighted WeightTotal = %v, want 24", res2.Trace[0].WeightTotal)
	}
}
