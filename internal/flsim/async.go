package flsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/fl"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
)

// AsyncScenario replays a seeded fleet through the asynchronous
// buffered-federation mode (fl.Server.RunAsync) instead of synchronous
// rounds. The embedded Scenario supplies the fleet — size, seed,
// profiles, model, codec — exactly as the synchronous Run of the same
// scenario would assign them, so the two modes are directly
// comparable: a client the synchronous run drops at every deadline
// (Profile.Straggler) becomes a slow-but-contributing device here,
// pushing on its own (longer) training cadence.
//
// Time is a shared virtual clock. Each simulated client models local
// training as a timer of its per-device latency; the harness advances
// the clock one timer event at a time (see RunAsync), so the arrival
// order at the server — and with it the whole trace — is a pure
// function of the scenario.
type AsyncScenario struct {
	Scenario

	// Versions is the session's buffered-application budget (the async
	// analogue of Rounds). Defaults to Scenario.Rounds.
	Versions int
	// GoalUpdates is the buffer goal K forwarded to the engine
	// (defaults to MinClients there).
	GoalUpdates int
	// MaxStaleness forwards the engine's staleness cut-off (0 = fold
	// any staleness, discounted).
	MaxStaleness int
	// Buffer forwards the arrival fan-in capacity (0 = engine default).
	Buffer int
	// MinPushInterval forwards the per-device fold rate limit.
	MinPushInterval time.Duration
	// FastLatency is the per-push training latency of ordinary clients;
	// SlowLatency the latency of Straggler-profiled clients. Both must
	// be whole milliseconds (the lockstep driver phase-offsets clients
	// by microseconds to keep timer events collision-free). Defaults:
	// 10ms and 100ms.
	FastLatency time.Duration
	SlowLatency time.Duration
}

// AsyncResult is a completed asynchronous simulation.
type AsyncResult struct {
	// Selected / Rejected mirror the synchronous Result.
	Selected int
	Rejected int
	// Trace holds one entry per applied model version.
	Trace []fl.RoundStats
	// Final is the model after the last application (aliases the
	// scenario's Model slice).
	Final []*tensor.Tensor
	// Profiles are the assigned per-client profiles, in client order.
	Profiles []Profile
	// Elapsed is the virtual time the session consumed.
	Elapsed time.Duration
	// Idle is always 0: with no round barrier, no device ever waits on
	// another's deadline. Compare with the synchronous Result.Idle of
	// the same scenario.
	Idle time.Duration
	// Pushes / Folds / Stale / Duplicates aggregate the trace: total
	// updates pushed, folded into applications, discarded over-stale,
	// and discarded as duplicates or rate-limited.
	Pushes     int
	Folds      int
	Stale      int
	Duplicates int
}

// validate checks the async scenario and applies defaults.
func (sc *AsyncScenario) validate() error {
	if err := sc.Scenario.Validate(); err != nil {
		return err
	}
	if sc.FailureFraction > 0 {
		return errors.New("flsim: async scenarios model slowness, not failure (FailureFraction must be 0)")
	}
	if sc.SecAgg || len(sc.Protect) > 0 || sc.Shards > 1 {
		return errors.New("flsim: async mode is plaintext and flat (no SecAgg, Protect, or Shards)")
	}
	if sc.Clients > 999 {
		return errors.New("flsim: async lockstep supports at most 999 clients (microsecond phase offsets)")
	}
	if sc.Versions <= 0 {
		sc.Versions = sc.Rounds
	}
	if sc.FastLatency == 0 {
		sc.FastLatency = 10 * time.Millisecond
	}
	if sc.SlowLatency == 0 {
		sc.SlowLatency = 100 * time.Millisecond
	}
	if sc.FastLatency <= 0 || sc.FastLatency%time.Millisecond != 0 ||
		sc.SlowLatency <= 0 || sc.SlowLatency%time.Millisecond != 0 {
		return errors.New("flsim: async latencies must be positive whole milliseconds")
	}
	return nil
}

// asyncSimClient is one fleet member of an asynchronous simulation: it
// adopts every model the server hands it, "trains" for its latency on
// the virtual clock, and pushes the update tagged with the version it
// trained on.
type asyncSimClient struct {
	index    int
	profile  Profile
	conn     fl.Conn
	clk      *simclock.Virtual
	latency  time.Duration
	seed     int64
	positive bool
	shapes   [][]int
	active   *atomic.Int64
}

func (c *asyncSimClient) run() {
	defer c.active.Add(-1)
	defer c.conn.Close()
	msg, err := c.conn.Recv()
	if err != nil {
		return
	}
	ch, ok := msg.(*fl.Challenge)
	if !ok {
		return
	}
	if err := c.conn.Send(&fl.Attest{DeviceID: c.profile.Device, Codec: ch.Codec}); err != nil {
		return
	}
	c.conn.SetCodec(ch.Codec)
	first := true
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *fl.Reject, *fl.Done:
			return
		case *fl.ModelDown:
			d := c.latency
			if first {
				// Phase-offset the first deadline by (index+1)µs. Every
				// later latency is a whole number of milliseconds, so this
				// client's timers always fire at instants ≡ (index+1)µs
				// (mod 1ms): no two clients ever share a fire time, and
				// the lockstep driver advances to exactly one event at a
				// time — the arrival order is deterministic.
				d += time.Duration(c.index+1) * time.Microsecond
				first = false
			}
			t := c.clk.NewTimer(d)
			<-t.C
			delta := dyadicDelta(c.seed, c.index, int(m.Version))
			if c.positive {
				delta = posDyadicDelta(c.seed, c.index, int(m.Version))
			}
			upd := make([]*tensor.Tensor, len(c.shapes))
			for i, shape := range c.shapes {
				upd[i] = tensor.Full(delta, shape...)
			}
			examples := uint64(max(c.profile.Examples, 0))
			if err := c.conn.Send(&fl.GradUp{Round: m.Round, Plain: upd, Examples: examples, Version: m.Version}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// RunAsync executes an asynchronous scenario and returns its trace,
// deterministic for a given scenario.
//
// The lockstep driver: every live client is either parked on its
// training timer or in the middle of a push/reply exchange with the
// server (the engine's event loop processes one arrival at a time and
// re-arms the pusher synchronously). The driver advances the virtual
// clock only when every live client is parked — then jumps to exactly
// the next timer event, waking exactly one client. At most one message
// is therefore in flight at any instant, making the server's arrival
// order (and the trace) a pure function of the scenario.
func RunAsync(sc AsyncScenario) (*AsyncResult, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	profiles := assignProfiles(&sc.Scenario)
	clk := simclock.NewVirtual(time.Unix(0, 0))
	start := clk.Now()

	shapes := make([][]int, len(sc.Model))
	for i, t := range sc.Model {
		shapes[i] = t.Shape
	}
	var active atomic.Int64
	active.Store(int64(sc.Clients))
	clients := make([]*asyncSimClient, sc.Clients)
	conns := make([]fl.Conn, sc.Clients)
	for i := range clients {
		serverConn, clientConn := fl.Pipe()
		latency := sc.FastLatency
		if profiles[i].Straggler {
			latency = sc.SlowLatency
		}
		clients[i] = &asyncSimClient{
			index:    i,
			profile:  profiles[i],
			conn:     clientConn,
			clk:      clk,
			latency:  latency,
			seed:     sc.Seed,
			positive: sc.PositiveDeltas,
			shapes:   shapes,
			active:   &active,
		}
		conns[i] = serverConn
	}
	var fleet sync.WaitGroup
	for _, c := range clients {
		fleet.Add(1)
		go func(c *asyncSimClient) {
			defer fleet.Done()
			c.run()
		}(c)
	}

	srv := fl.NewServer(sc.Model, fl.ServerConfig{
		Rounds:     sc.Versions,
		MinClients: sc.MinClients,
		SampleSeed: sc.Seed,
		Codec:      sc.Codec,
		Clock:      clk,
		Metrics:    sc.Metrics,
		Spans:      obs.NewTraceSink(sc.Spans, clk),
		Async: fl.AsyncConfig{
			Enabled:         true,
			GoalUpdates:     sc.GoalUpdates,
			MaxStaleness:    sc.MaxStaleness,
			Buffer:          sc.Buffer,
			MinPushInterval: sc.MinPushInterval,
		},
	})
	type srvOut struct {
		n   int
		err error
	}
	done := make(chan srvOut, 1)
	go func() {
		n, err := srv.RunAsync(conns)
		done <- srvOut{n, err}
	}()

	// Lockstep loop: advance to the single next timer event once every
	// live client is parked on one. The stall guard catches a fleet
	// that can never park again (e.g. a client wedged awaiting a reply
	// the engine will not send) instead of spinning forever.
	stalled := 0
	for active.Load() > 0 {
		if int64(clk.Waiters()) == active.Load() {
			if at, ok := clk.NextAt(); ok {
				clk.Set(at)
				stalled = 0
				continue
			}
		}
		if stalled++; stalled > 200000 {
			return nil, errors.New("flsim: async lockstep stalled (a client is neither parked nor exiting)")
		}
		time.Sleep(50 * time.Microsecond)
	}
	fleet.Wait()
	out := <-done

	res := &AsyncResult{
		Selected: out.n,
		Rejected: sc.Clients - out.n,
		Trace:    srv.Trace(),
		Final:    sc.Model,
		Profiles: profiles,
		Elapsed:  clk.Now().Sub(start),
	}
	for _, st := range res.Trace {
		res.Folds += st.Responded
		res.Stale += st.LateDiscarded
		res.Duplicates += st.Duplicates
	}
	res.Pushes = res.Folds + res.Stale + res.Duplicates
	if out.err != nil {
		return res, fmt.Errorf("flsim: async session: %w", out.err)
	}
	return res, nil
}
