package dataset

import (
	"math"
	"math/rand"

	"github.com/gradsec/gradsec/internal/tensor"
)

// FaceGenerator produces LFW-like face images for the data-property
// inference attack (DPIA). The main classification task distinguishes
// two face prototypes; the private binary property overlays an
// independent striped pattern (standing in for e.g. gender/eyewear in
// LFW), so that property presence perturbs gradients across many layers —
// the diffusion that makes static single-layer protection ineffective in
// the paper (Table 5).
type FaceGenerator struct {
	C, H, W int
	Noise   float64

	prototypes []*tensor.Tensor // main-task class prototypes
	propSig    *tensor.Tensor   // property overlay
}

// NewFaceGenerator creates a generator with the given geometry and the
// given number of main-task classes.
func NewFaceGenerator(rng *rand.Rand, classes, c, h, w int, noise float64) *FaceGenerator {
	f := &FaceGenerator{C: c, H: h, W: w, Noise: noise}
	f.prototypes = make([]*tensor.Tensor, classes)
	for i := range f.prototypes {
		f.prototypes[i] = faceImage(rng, c, h, w)
	}
	f.propSig = propertyOverlay(c, h, w)
	return f
}

// Classes returns the number of main-task classes.
func (f *FaceGenerator) Classes() int { return len(f.prototypes) }

// faceImage renders an oval "head" with random feature blobs.
func faceImage(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	img := tensor.New(c, h, w)
	cy, cx := float64(h)/2, float64(w)/2
	ry, rx := float64(h)*0.4, float64(w)*0.35
	// Random eye/mouth offsets make each prototype distinct.
	eyeY := int(float64(h) * (0.3 + rng.Float64()*0.15))
	eyeDX := int(float64(w) * (0.12 + rng.Float64()*0.1))
	mouthY := int(float64(h) * (0.65 + rng.Float64()*0.1))
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dy := (float64(y) - cy) / ry
				dx := (float64(x) - cx) / rx
				v := -0.5
				if dy*dy+dx*dx <= 1 {
					v = 0.6 // inside the head oval
				}
				img.Set(v, ci, y, x)
			}
		}
		// Eyes and mouth as dark spots/strip.
		for _, ex := range []int{int(cx) - eyeDX, int(cx) + eyeDX} {
			stamp(img, ci, eyeY, ex, 1, -0.8)
		}
		for x := int(cx) - 2; x <= int(cx)+2; x++ {
			stamp(img, ci, mouthY, x, 0, -0.6)
		}
	}
	return img
}

func stamp(img *tensor.Tensor, c, y, x, r int, v float64) {
	h, w := img.Shape[1], img.Shape[2]
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			yy, xx := y+dy, x+dx
			if yy >= 0 && yy < h && xx >= 0 && xx < w {
				img.Set(v, c, yy, xx)
			}
		}
	}
}

// propertyOverlay is a diagonal stripe pattern covering the whole image —
// the spatial spread is what diffuses the property signal across network
// layers.
func propertyOverlay(c, h, w int) *tensor.Tensor {
	img := tensor.New(c, h, w)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				img.Set(0.35*math.Sin(float64(x+y)*math.Pi/3), ci, y, x)
			}
		}
	}
	return img
}

// Sample draws one image of the given main-task class, optionally
// carrying the private property.
func (f *FaceGenerator) Sample(rng *rand.Rand, class int, withProp bool) *tensor.Tensor {
	img := f.prototypes[class].Clone()
	if withProp {
		tensor.AddInPlace(img, f.propSig)
	}
	for i := range img.Data {
		img.Data[i] = clamp(img.Data[i]+rng.NormFloat64()*f.Noise, -1.5, 1.5)
	}
	return img
}

// Batch generates n labelled samples; when withProp is true, propFrac of
// them carry the property overlay. Returns (x [n,C,H,W], y one-hot).
func (f *FaceGenerator) Batch(rng *rand.Rand, n int, withProp bool, propFrac float64) (*tensor.Tensor, *tensor.Tensor) {
	x := tensor.New(n, f.C, f.H, f.W)
	y := tensor.New(n, f.Classes())
	cells := f.C * f.H * f.W
	nProp := 0
	if withProp {
		nProp = int(math.Round(propFrac * float64(n)))
		if nProp == 0 {
			nProp = 1
		}
	}
	for i := 0; i < n; i++ {
		class := rng.Intn(f.Classes())
		img := f.Sample(rng, class, i < nProp)
		copy(x.Data[i*cells:(i+1)*cells], img.Data)
		y.Set(1, i, class)
	}
	return x, y
}
