// Package dataset provides the synthetic stand-ins for the paper's
// datasets. CIFAR-100 and LFW are not shipped with this repository (and
// the attacks exploit structure, not specific pixels), so we generate:
//
//   - a CIFAR-100-like corpus: 100 classes of 32×32×3 images, each class
//     defined by a smooth procedural signature (mixture of 2-D sinusoids)
//     plus per-sample Gaussian noise — giving early convolutional layers
//     genuine low-level visual structure to leak (DRIA) and a controllable
//     member/non-member gap (MIA);
//   - an LFW-like corpus: face-ish images where a binary property (the
//     paper's example is gender; ours is a synthetic band pattern) overlays
//     a secondary signal on a fraction of samples, which is what the
//     data-property inference attack (DPIA) detects.
//
// DESIGN.md §1 documents these substitutions.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Generator produces class-conditional synthetic images.
type Generator struct {
	C, H, W int
	Classes int
	// Noise is the stddev of per-sample Gaussian noise.
	Noise float64
	// ScaleJitter, when non-zero, multiplies each sample by a random gain
	// in [1−ScaleJitter, 1+ScaleJitter]. Real images vary in exposure and
	// contrast; this keeps early-layer gradient magnitudes from acting as
	// a clean loss proxy (matters for the MIA experiments).
	ScaleJitter float64
	// Diversity ∈ [0,1) mixes a fresh random procedural image into every
	// sample: x = (1−Diversity)·signature + Diversity·fresh + noise.
	// Real photo corpora have high intra-class structural diversity, which
	// makes early convolutional gradients content-dominated rather than
	// loss-dominated — the property behind the paper's Figure 6 layer
	// hierarchy (dense layers leak membership; conv layers much less).
	Diversity float64

	signatures []*tensor.Tensor // per class, [C,H,W]
}

// NewGenerator creates a generator with the given image geometry and
// number of classes. Class signatures are fixed at construction from rng.
func NewGenerator(rng *rand.Rand, classes, c, h, w int, noise float64) *Generator {
	g := &Generator{C: c, H: h, W: w, Classes: classes, Noise: noise}
	g.signatures = make([]*tensor.Tensor, classes)
	for k := range g.signatures {
		g.signatures[k] = proceduralImage(rng, c, h, w)
	}
	return g
}

// proceduralImage builds a smooth image from a small random mixture of 2-D
// sinusoids plus a random bright block, normalised to roughly [-1, 1].
func proceduralImage(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	img := tensor.New(c, h, w)
	type wave struct{ fx, fy, phase, amp float64 }
	waves := make([]wave, 3)
	for i := range waves {
		waves[i] = wave{
			fx:    (rng.Float64() + 0.2) * 2 * math.Pi / float64(w) * 3,
			fy:    (rng.Float64() + 0.2) * 2 * math.Pi / float64(h) * 3,
			phase: rng.Float64() * 2 * math.Pi,
			amp:   0.3 + rng.Float64()*0.4,
		}
	}
	bx, by := rng.Intn(w), rng.Intn(h)
	bs := 3 + rng.Intn(5)
	for ci := 0; ci < c; ci++ {
		chanShift := float64(ci) * 0.7
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := 0.0
				for _, wv := range waves {
					v += wv.amp * math.Sin(wv.fx*float64(x)+wv.fy*float64(y)+wv.phase+chanShift)
				}
				if x >= bx && x < bx+bs && y >= by && y < by+bs {
					v += 0.8
				}
				img.Set(clamp(v, -1, 1), ci, y, x)
			}
		}
	}
	return img
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sample draws one fresh image of the given class: signature + noise.
func (g *Generator) Sample(rng *rand.Rand, class int) *tensor.Tensor {
	if class < 0 || class >= g.Classes {
		panic(fmt.Sprintf("dataset: class %d out of range [0,%d)", class, g.Classes))
	}
	img := g.signatures[class].Clone()
	if g.Diversity > 0 {
		fresh := proceduralImage(rng, g.C, g.H, g.W)
		for i := range img.Data {
			img.Data[i] = (1-g.Diversity)*img.Data[i] + g.Diversity*fresh.Data[i]
		}
	}
	gain := 1.0
	if g.ScaleJitter > 0 {
		gain = 1 + (rng.Float64()*2-1)*g.ScaleJitter
	}
	for i := range img.Data {
		img.Data[i] = clamp(img.Data[i]*gain+rng.NormFloat64()*g.Noise, -1.5, 1.5)
	}
	return img
}

// Signature returns the noiseless class prototype (useful as a DRIA
// reconstruction target reference).
func (g *Generator) Signature(class int) *tensor.Tensor { return g.signatures[class] }

// Dataset is a fixed set of labelled images.
type Dataset struct {
	// X has shape [N, C, H, W].
	X *tensor.Tensor
	// Labels holds the class index of each sample.
	Labels  []int
	Classes int
}

// FixedSet materialises perClass samples of each class into a Dataset.
func (g *Generator) FixedSet(rng *rand.Rand, perClass int) *Dataset {
	n := perClass * g.Classes
	d := &Dataset{
		X:       tensor.New(n, g.C, g.H, g.W),
		Labels:  make([]int, n),
		Classes: g.Classes,
	}
	cells := g.C * g.H * g.W
	i := 0
	for class := 0; class < g.Classes; class++ {
		for s := 0; s < perClass; s++ {
			img := g.Sample(rng, class)
			copy(d.X.Data[i*cells:(i+1)*cells], img.Data)
			d.Labels[i] = class
			i++
		}
	}
	return d
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Sample returns the i-th image (a copy, shaped [1,C,H,W]) and its label.
func (d *Dataset) Sample(i int) (*tensor.Tensor, int) {
	cells := d.X.Size() / d.Len()
	img := tensor.New(1, d.X.Shape[1], d.X.Shape[2], d.X.Shape[3])
	copy(img.Data, d.X.Data[i*cells:(i+1)*cells])
	return img, d.Labels[i]
}

// Batch gathers the samples at idx into (x [n,C,H,W], y one-hot [n,classes]).
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, *tensor.Tensor) {
	cells := d.X.Size() / d.Len()
	x := tensor.New(len(idx), d.X.Shape[1], d.X.Shape[2], d.X.Shape[3])
	y := tensor.New(len(idx), d.Classes)
	for bi, i := range idx {
		copy(x.Data[bi*cells:(bi+1)*cells], d.X.Data[i*cells:(i+1)*cells])
		y.Set(1, bi, d.Labels[i])
	}
	return x, y
}

// RandomBatch samples n indices without replacement (or with replacement
// when n exceeds the dataset size) and returns their batch.
func (d *Dataset) RandomBatch(rng *rand.Rand, n int) (*tensor.Tensor, *tensor.Tensor) {
	idx := make([]int, n)
	if n <= d.Len() {
		perm := rng.Perm(d.Len())
		copy(idx, perm[:n])
	} else {
		for i := range idx {
			idx[i] = rng.Intn(d.Len())
		}
	}
	return d.Batch(idx)
}

// OneHot encodes labels into an [n, classes] matrix.
func OneHot(labels []int, classes int) *tensor.Tensor {
	y := tensor.New(len(labels), classes)
	for i, l := range labels {
		y.Set(1, i, l)
	}
	return y
}
