package dataset

import (
	"math/rand"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestGeneratorShapesAndDeterminism(t *testing.T) {
	g1 := NewGenerator(rand.New(rand.NewSource(1)), 5, 3, 8, 8, 0.1)
	g2 := NewGenerator(rand.New(rand.NewSource(1)), 5, 3, 8, 8, 0.1)
	for k := 0; k < 5; k++ {
		if !g1.Signature(k).EqualApprox(g2.Signature(k), 0) {
			t.Fatal("same seed must give identical signatures")
		}
	}
	s := g1.Sample(rand.New(rand.NewSource(2)), 0)
	if s.Shape[0] != 3 || s.Shape[1] != 8 || s.Shape[2] != 8 {
		t.Fatalf("sample shape = %v", s.Shape)
	}
}

func TestSampleOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range class")
		}
	}()
	g := NewGenerator(rand.New(rand.NewSource(1)), 2, 1, 4, 4, 0.1)
	g.Sample(rand.New(rand.NewSource(2)), 2)
}

func TestClassesAreDistinguishable(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(3)), 4, 3, 16, 16, 0.05)
	rng := rand.New(rand.NewSource(4))
	// Samples of the same class must be closer to their own signature
	// than to other signatures (the classification signal).
	for class := 0; class < 4; class++ {
		s := g.Sample(rng, class)
		own := tensor.SqDist(s, g.Signature(class))
		for other := 0; other < 4; other++ {
			if other == class {
				continue
			}
			if d := tensor.SqDist(s, g.Signature(other)); d <= own {
				t.Fatalf("class %d sample closer to signature %d (%v <= %v)", class, other, d, own)
			}
		}
	}
}

func TestFixedSetAndBatch(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(5)), 3, 1, 4, 4, 0.1)
	d := g.FixedSet(rand.New(rand.NewSource(6)), 4)
	if d.Len() != 12 {
		t.Fatalf("Len = %d, want 12", d.Len())
	}
	x, y := d.Batch([]int{0, 4, 8})
	if x.Shape[0] != 3 || y.Shape[0] != 3 || y.Shape[1] != 3 {
		t.Fatalf("batch shapes x=%v y=%v", x.Shape, y.Shape)
	}
	// Samples 0,4,8 have labels 0,1,2 (4 per class).
	for i := 0; i < 3; i++ {
		if y.At(i, i) != 1 {
			t.Fatalf("one-hot row %d = %v", i, y.Data[i*3:(i+1)*3])
		}
	}
}

func TestSampleCopyIsolation(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(7)), 2, 1, 4, 4, 0.1)
	d := g.FixedSet(rand.New(rand.NewSource(8)), 2)
	img, _ := d.Sample(0)
	img.Data[0] += 100
	img2, _ := d.Sample(0)
	if img2.Data[0] == img.Data[0] {
		t.Fatal("Sample must copy")
	}
}

func TestRandomBatchWithReplacement(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(9)), 2, 1, 4, 4, 0.1)
	d := g.FixedSet(rand.New(rand.NewSource(10)), 1)
	x, y := d.RandomBatch(rand.New(rand.NewSource(11)), 10) // > Len
	if x.Shape[0] != 10 || y.Shape[0] != 10 {
		t.Fatalf("oversized batch shapes x=%v y=%v", x.Shape, y.Shape)
	}
}

func TestOneHot(t *testing.T) {
	y := OneHot([]int{2, 0}, 3)
	want := tensor.FromSlice([]float64{0, 0, 1, 1, 0, 0}, 2, 3)
	if !y.EqualApprox(want, 0) {
		t.Fatalf("OneHot = %v", y.Data)
	}
}

func TestFaceGeneratorPropertyShiftsDistribution(t *testing.T) {
	f := NewFaceGenerator(rand.New(rand.NewSource(12)), 2, 1, 16, 16, 0.05)
	rng := rand.New(rand.NewSource(13))
	with := f.Sample(rng, 0, true)
	without := f.Sample(rng, 0, false)
	if tensor.SqDist(with, without) < 1 {
		t.Fatal("property overlay must measurably change the image")
	}
}

func TestFaceBatchFractions(t *testing.T) {
	f := NewFaceGenerator(rand.New(rand.NewSource(14)), 2, 1, 8, 8, 0.01)
	rng := rand.New(rand.NewSource(15))
	x, y := f.Batch(rng, 6, true, 0.5)
	if x.Shape[0] != 6 || y.Shape[0] != 6 || y.Shape[1] != 2 {
		t.Fatalf("face batch shapes x=%v y=%v", x.Shape, y.Shape)
	}
	// Every row must be one-hot.
	for i := 0; i < 6; i++ {
		sum := y.At(i, 0) + y.At(i, 1)
		if sum != 1 {
			t.Fatalf("row %d not one-hot: %v", i, y.Data[i*2:(i+1)*2])
		}
	}
}

func TestFaceBatchWithPropAlwaysHasAtLeastOne(t *testing.T) {
	f := NewFaceGenerator(rand.New(rand.NewSource(16)), 2, 1, 8, 8, 0)
	rng := rand.New(rand.NewSource(17))
	// propFrac so small it would round to zero — must still include one.
	x1, _ := f.Batch(rng, 4, true, 0.01)
	x2, _ := f.Batch(rng, 4, false, 0)
	if x1.EqualApprox(x2, 1e-9) {
		t.Fatal("withProp batch should differ from clean batch")
	}
}
