package wire

import (
	"sync"
	"testing"
)

func TestMeterCounts(t *testing.T) {
	m := &Meter{}
	m.CountTx(CodecF64, 100)
	m.CountTx(CodecQ8, 25)
	m.CountRx(CodecF32, 60)
	m.CountRx(Codec(200), 5) // out-of-range codec: bytes counted, frame dropped

	s := m.Snapshot()
	if s.TxBytes != 125 || s.RxBytes != 65 {
		t.Fatalf("byte totals wrong: tx=%d rx=%d", s.TxBytes, s.RxBytes)
	}
	if s.TxFrames[CodecF64] != 1 || s.TxFrames[CodecQ8] != 1 || s.TxFrames[CodecF32] != 0 {
		t.Fatalf("tx frame counts wrong: %v", s.TxFrames)
	}
	if s.RxFrames[CodecF32] != 1 {
		t.Fatalf("rx frame counts wrong: %v", s.RxFrames)
	}
}

func TestMeterNilAndConcurrent(t *testing.T) {
	var nilM *Meter
	nilM.CountTx(CodecF64, 10)
	nilM.CountRx(CodecF64, 10)
	if s := nilM.Snapshot(); s.TxBytes != 0 || s.RxBytes != 0 {
		t.Fatal("nil meter must snapshot to zeros")
	}

	m := &Meter{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.CountTx(CodecF32, 3)
				m.CountRx(CodecQ8, 7)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.TxBytes != 8*1000*3 || s.RxBytes != 8*1000*7 {
		t.Fatalf("concurrent totals wrong: tx=%d rx=%d", s.TxBytes, s.RxBytes)
	}
	if s.TxFrames[CodecF32] != 8000 || s.RxFrames[CodecQ8] != 8000 {
		t.Fatalf("concurrent frame counts wrong")
	}
}
