package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

// FuzzReadFrame hammers the frame decoder with arbitrary bytes: it must
// never panic, never allocate more than the input justifies, and every
// successfully parsed frame must re-encode to the bytes consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, 3, []byte("hello"))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF})          // oversized claim
	f.Add([]byte{9, 0, 0, 1, 0, 42})                  // truncated payload
	f.Add(append([]byte{7, 0, 0, 0, 2, 'h', 'i'}, 9)) // trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		mt, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := WriteFrame(&out, mt, payload); werr != nil {
			t.Fatalf("re-encoding a parsed frame failed: %v", werr)
		}
		consumed := len(data) - r.Len()
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("frame did not round-trip: %x != %x", out.Bytes(), data[:consumed])
		}
	})
}

// FuzzTensorDecode feeds arbitrary bytes to the tensor decoder under
// every codec: decoding must never panic, and any tensor it accepts
// must re-encode and re-decode to the same values.
func FuzzTensorDecode(f *testing.F) {
	for _, c := range []Codec{CodecF64, CodecF32, CodecQ8} {
		w := NewWriter()
		w.Codec = c
		w.Tensor(tensor.FromSlice([]float64{1, -2, 0.5, 1e9}, 2, 2))
		f.Add(uint8(c), w.Bytes())
	}
	hostile := NewWriter()
	hostile.Uvarint(8)
	for i := 0; i < 8; i++ {
		hostile.Uvarint(1 << 24)
	}
	f.Add(uint8(CodecQ8), hostile.Bytes())
	f.Add(uint8(CodecF64), binary.AppendUvarint(nil, 0xFF)) // nil marker

	f.Fuzz(func(t *testing.T, codec uint8, data []byte) {
		c := Codec(codec % uint8(codecCount))
		r := NewReader(data)
		r.Codec = c
		got := r.Tensor()
		if r.Err() != nil || got == nil {
			return
		}
		w := NewWriter()
		w.Codec = c
		w.Tensor(got)
		r2 := NewReader(w.Bytes())
		r2.Codec = c
		again := r2.Tensor()
		if r2.Err() != nil || again == nil || !again.SameShape(got) {
			t.Fatalf("accepted tensor failed to re-decode: %v", r2.Err())
		}
		// f64 and f32 re-encode losslessly from the decoded values; q8
		// requantises over the decoded range, still within one level.
		for i := range got.Data {
			a, b := got.Data[i], again.Data[i]
			if a != b && !(a != a && b != b) { // NaN == NaN for this purpose
				if c == CodecF64 || c == CodecF32 {
					t.Fatalf("%s elem %d drifted: %v -> %v", c, i, a, b)
				}
			}
		}
	})
}
