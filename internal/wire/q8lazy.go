package wire

import (
	"github.com/gradsec/gradsec/internal/tensor"
)

// Q8Tensor is the lazy (non-materialised) form of a CodecQ8 tensor:
// the quantisation header plus the raw level bytes. It lets consumers
// fold quantised updates directly into an accumulator without ever
// allocating the per-client float64 tensor (fl.Aggregator.AccumulateQ8)
// — the allocation floor of the 1024-client fleet benchmark.
type Q8Tensor struct {
	Shape []int
	// Lo and Scale are the per-tensor quantisation header: an element
	// with level q dequantises to Lo + q·Scale.
	Lo, Scale float64
	// Levels holds one quantised byte per element.
	Levels []byte
}

// Size returns the element count of the tensor.
func (t *Q8Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// SameShape reports whether t matches the reference tensor's shape.
func (t *Q8Tensor) SameShape(ref *tensor.Tensor) bool {
	if len(t.Shape) != len(ref.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if d != ref.Shape[i] {
			return false
		}
	}
	return true
}

// Materialise dequantises into a fresh float64 tensor, with arithmetic
// identical to the eager q8 decode path (Reader.Tensor under CodecQ8).
func (t *Q8Tensor) Materialise() *tensor.Tensor {
	data := make([]float64, len(t.Levels))
	half := t.Scale / 2
	for i, b := range t.Levels {
		q := float64(b)
		data[i] = t.Lo + q*half + q*half
	}
	return tensor.FromSlice(data, t.Shape...)
}

// Q8Tensor reads one CodecQ8 tensor without dequantising; returns nil
// for the nil marker. Level bytes are copied out, so the payload may be
// reused by the caller immediately after.
func (r *Reader) Q8Tensor() *Q8Tensor {
	size, shape := r.tensorHeader()
	if r.err != nil || shape == nil {
		return nil
	}
	if q8Header+size > len(r.buf)-r.off {
		r.fail("q8 tensor size")
		return nil
	}
	lo := r.Float64()
	scale := r.Float64()
	levels := make([]byte, size)
	copy(levels, r.buf[r.off:r.off+size])
	r.off += size
	return &Q8Tensor{Shape: shape, Lo: lo, Scale: scale, Levels: levels}
}

// Q8TensorList reads a tensor list written with CodecQ8 lazily.
func (r *Reader) Q8TensorList() []*Q8Tensor {
	return readList(r, "q8 tensor list length", (*Reader).Q8Tensor)
}

// Q8TensorRaw re-encodes a lazily decoded q8 tensor verbatim (header
// and level bytes unchanged). The writer's codec must be CodecQ8 —
// levels are meaningless under any other encoding.
func (w *Writer) Q8TensorRaw(t *Q8Tensor) {
	if t == nil {
		w.Uvarint(0xFF)
		return
	}
	w.Uvarint(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		w.Uvarint(uint64(d))
	}
	w.Float64(t.Lo)
	w.Float64(t.Scale)
	w.buf = append(w.buf, t.Levels...)
}

// Q8TensorListRaw re-encodes a lazily decoded q8 tensor list verbatim.
func (w *Writer) Q8TensorListRaw(ts []*Q8Tensor) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.Q8TensorRaw(t)
	}
}
