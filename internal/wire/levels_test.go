package wire

import (
	"math"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestU64TensorRoundTrip(t *testing.T) {
	ts := []*U64Tensor{
		{Shape: []int{2, 3}, Levels: []uint64{0, 1, math.MaxUint64, 1 << 40, 7, 9}},
		nil,
		{Shape: []int{1}, Levels: []uint64{42}},
	}
	w := NewWriter()
	w.U64TensorList(ts)
	r := NewReader(w.Bytes())
	got := r.U64TensorList()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != nil {
		t.Fatalf("list = %v", got)
	}
	for i, want := range ts {
		if want == nil {
			continue
		}
		if got[i].Size() != want.Size() {
			t.Fatalf("tensor %d size %d != %d", i, got[i].Size(), want.Size())
		}
		for j, v := range want.Levels {
			if got[i].Levels[j] != v {
				t.Fatalf("tensor %d level %d: %d != %d", i, j, got[i].Levels[j], v)
			}
		}
	}
}

func TestU64TensorCorruptInputs(t *testing.T) {
	// Truncated payload after a valid header.
	w := NewWriter()
	w.U64Tensor(&U64Tensor{Shape: []int{4}, Levels: []uint64{1, 2, 3, 4}})
	r := NewReader(w.Bytes()[:8])
	if r.U64Tensor(); r.Err() == nil {
		t.Fatal("truncated u64 tensor must fail")
	}
	// Hostile list length.
	r = NewReader([]byte{0xFF, 0xFF, 0xFF, 0x01})
	if r.U64TensorList(); r.Err() == nil {
		t.Fatal("hostile list length must fail")
	}
	// Oversized claimed dims.
	w2 := NewWriter()
	w2.Uvarint(1)
	w2.Uvarint(1 << 30)
	r = NewReader(w2.Bytes())
	if r.U64Tensor(); r.Err() == nil {
		t.Fatal("oversized u64 tensor must fail")
	}
}

// TestQ8LazyMatchesEagerDecode: the lazy Q8Tensor representation must
// materialise to exactly the tensor the eager q8 decode produces, and
// its verbatim re-encode must be byte-identical.
func TestQ8LazyMatchesEagerDecode(t *testing.T) {
	src := []*tensor.Tensor{
		tensor.FromSlice([]float64{-1.5, 0, 0.25, 3.75, 2, 2}, 2, 3),
		nil,
		tensor.FromSlice([]float64{7, 7, 7}, 3), // constant: exact under q8
	}
	w := NewWriter()
	w.Codec = CodecQ8
	w.TensorList(src)
	encoded := append([]byte(nil), w.Bytes()...)

	eager := NewReader(encoded)
	eager.Codec = CodecQ8
	want := eager.TensorList()
	if err := eager.Err(); err != nil {
		t.Fatal(err)
	}

	lazy := NewReader(encoded)
	lazy.Codec = CodecQ8
	got := lazy.Q8TensorList()
	if err := lazy.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || got[1] != nil {
		t.Fatalf("lazy list = %v", got)
	}
	for i, qt := range got {
		if qt == nil {
			continue
		}
		if !qt.SameShape(want[i]) {
			t.Fatalf("tensor %d shape %v != %v", i, qt.Shape, want[i].Shape)
		}
		m := qt.Materialise()
		for j := range want[i].Data {
			if m.Data[j] != want[i].Data[j] {
				t.Fatalf("tensor %d elem %d: lazy %v != eager %v", i, j, m.Data[j], want[i].Data[j])
			}
		}
	}

	w2 := NewWriter()
	w2.Codec = CodecQ8
	w2.Q8TensorListRaw(got)
	if string(w2.Bytes()) != string(encoded) {
		t.Fatal("verbatim re-encode diverged from the original bytes")
	}
}

func TestQ8LazyCorruptInputs(t *testing.T) {
	r := NewReader([]byte{1, 2, 0, 0}) // rank 1, dim 2, truncated header
	if r.Q8Tensor(); r.Err() == nil {
		t.Fatal("truncated q8 tensor must fail")
	}
}
