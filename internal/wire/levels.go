package wire

import (
	"encoding/binary"
)

// U64Tensor is a tensor of raw 64-bit levels — the wire form of a
// fixed-point, pairwise-masked model update (internal/secagg). Levels
// are transported verbatim (8 B/element, little-endian) regardless of
// the negotiated tensor codec: masked levels are computationally
// indistinguishable from uniform noise, so no lossy codec may touch
// them and no generic compressor would shrink them.
type U64Tensor struct {
	Shape  []int
	Levels []uint64
}

// Size returns the element count of the tensor.
func (t *U64Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// U64Tensor appends a level tensor (nil allowed: encoded as the 0xFF
// rank marker, mirroring Writer.Tensor).
func (w *Writer) U64Tensor(t *U64Tensor) {
	if t == nil {
		w.Uvarint(0xFF)
		return
	}
	w.Uvarint(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		w.Uvarint(uint64(d))
	}
	dst := w.grow(8 * len(t.Levels))
	for i, v := range t.Levels {
		binary.LittleEndian.PutUint64(dst[8*i:8*i+8], v)
	}
}

// U64TensorList appends a length-prefixed list of (possibly nil) level
// tensors.
func (w *Writer) U64TensorList(ts []*U64Tensor) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.U64Tensor(t)
	}
}

// U64Tensor reads a level tensor; returns nil for the nil marker.
func (r *Reader) U64Tensor() *U64Tensor {
	size, shape := r.tensorHeader()
	if r.err != nil || shape == nil {
		return nil
	}
	need := 8 * size
	if need > len(r.buf)-r.off {
		r.fail("u64 tensor size")
		return nil
	}
	levels := make([]uint64, size)
	src := r.buf[r.off : r.off+need]
	for i := range levels {
		levels[i] = binary.LittleEndian.Uint64(src[8*i : 8*i+8])
	}
	r.off += need
	return &U64Tensor{Shape: shape, Levels: levels}
}

// U64TensorList reads a list written by Writer.U64TensorList.
func (r *Reader) U64TensorList() []*U64Tensor {
	return readList(r, "u64 tensor list length", (*Reader).U64Tensor)
}
