package wire

import "github.com/gradsec/gradsec/internal/tensor"

// Partial-sum frame encoding for the hierarchical aggregation tier.
//
// An edge aggregator forwards its shard's folded weighted sum upstream
// as one PartialUp frame. Partial sums must compose exactly at the
// root — the hierarchy's correctness claim is bit-identity with flat
// FedAvg — so their tensors always travel at full precision, pinned to
// the f64 element encoding regardless of the session's negotiated
// codec (exactly as masked ring levels always travel as raw 64-bit
// words). Only the per-round model broadcast downstream is
// codec-compressed.

// ExactTensor appends a tensor with the exact f64 element encoding,
// ignoring the writer's negotiated codec.
func (w *Writer) ExactTensor(t *tensor.Tensor) {
	saved := w.Codec
	w.Codec = CodecF64
	w.Tensor(t)
	w.Codec = saved
}

// ExactTensorList appends a length-prefixed tensor list with the exact
// f64 element encoding, ignoring the writer's negotiated codec.
func (w *Writer) ExactTensorList(ts []*tensor.Tensor) {
	saved := w.Codec
	w.Codec = CodecF64
	w.TensorList(ts)
	w.Codec = saved
}

// ExactTensor reads a tensor written by Writer.ExactTensor.
func (r *Reader) ExactTensor() *tensor.Tensor {
	saved := r.Codec
	r.Codec = CodecF64
	t := r.Tensor()
	r.Codec = saved
	return t
}

// ExactTensorList reads a list written by Writer.ExactTensorList.
func (r *Reader) ExactTensorList() []*tensor.Tensor {
	saved := r.Codec
	r.Codec = CodecF64
	ts := r.TensorList()
	r.Codec = saved
	return ts
}
