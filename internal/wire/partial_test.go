package wire

import (
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
)

// TestExactTensorListIgnoresCodec: partial-sum tensors round-trip bit
// for bit under every negotiated codec — the exact encoding must not
// inherit the session's lossy compression.
func TestExactTensorListIgnoresCodec(t *testing.T) {
	ts := []*tensor.Tensor{
		tensor.FromSlice([]float64{1.0 / 3, -2.718281828, 1e-300, 42}, 2, 2),
		nil,
		tensor.FromSlice([]float64{0.1, 0.2, 0.3}, 3),
	}
	for _, codec := range []Codec{CodecF64, CodecF32, CodecQ8} {
		w := NewWriter()
		w.Codec = codec
		w.ExactTensorList(ts)
		if w.Codec != codec {
			t.Fatalf("codec %s: writer codec clobbered to %s", codec, w.Codec)
		}
		r := NewReader(w.Bytes())
		r.Codec = codec
		got := r.ExactTensorList()
		if err := r.Err(); err != nil {
			t.Fatalf("codec %s: decode: %v", codec, err)
		}
		if r.Codec != codec {
			t.Fatalf("codec %s: reader codec clobbered to %s", codec, r.Codec)
		}
		if len(got) != len(ts) {
			t.Fatalf("codec %s: got %d tensors, want %d", codec, len(got), len(ts))
		}
		for i, want := range ts {
			if want == nil {
				if got[i] != nil {
					t.Fatalf("codec %s: tensor %d should be nil", codec, i)
				}
				continue
			}
			for j, v := range want.Data {
				if got[i].Data[j] != v {
					t.Fatalf("codec %s: tensor %d elem %d = %v, want %v (exact)", codec, i, j, got[i].Data[j], v)
				}
			}
		}
	}
}

// TestExactTensorMatchesF64Encoding: under CodecF64 the exact encoding
// is byte-identical to the regular tensor encoding, so pre-hierarchy
// decoders could read it.
func TestExactTensorMatchesF64Encoding(t *testing.T) {
	ts := tensor.FromSlice([]float64{1, 2, 3.5}, 3)
	a, b := NewWriter(), NewWriter()
	a.ExactTensor(ts)
	b.Tensor(ts)
	if string(a.Bytes()) != string(b.Bytes()) {
		t.Fatal("exact encoding diverges from the f64 tensor encoding")
	}
}
