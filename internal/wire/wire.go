// Package wire implements the length-prefixed binary encoding used by the
// federated-learning protocol: primitive values, tensors, tensor lists
// and framed messages. It is hand-rolled over encoding/binary so the FL
// stack has no reflection in its hot path and malformed input fails with
// explicit errors and bounded allocations.
//
// # Tensor codecs
//
// Tensor payloads support three negotiated encodings (see Codec):
//
//   - CodecF64 — 8 bytes/element IEEE-754, bit-exact; the tensor
//     encoding is byte-for-byte the original protocol's. (Handshake and
//     update messages themselves carry new optional trailing fields, so
//     whole frames are wire-compatible rather than byte-identical.)
//   - CodecF32 — 4 bytes/element; each value is rounded to float32, a
//     relative error of at most 2⁻²⁴ for values in float32 range.
//   - CodecQ8 — 1 byte/element plus a 16-byte (min, scale) header per
//     tensor; values quantise to 256 levels over the tensor's own value
//     range, so the absolute dequantisation error is at most
//     scale/2 = (max−min)/510 < (max−min)/255. Constant tensors
//     (max == min) round-trip exactly. Non-finite values are not
//     representable and collapse to the nearest level.
//
// The codec is carried as a field on Writer and Reader — both sides of a
// connection must agree (the FL handshake negotiates it) because the
// tensor encoding is not self-describing; that keeps CodecF64 output
// bit-identical to the pre-codec protocol.
//
// # Buffer reuse
//
// Writers are poolable: GetWriter/PutWriter recycle encode buffers, and
// Writer.Detach hands off an encoded payload while returning the Writer
// to the pool. ReadFrameInto decodes frames into a caller-owned scratch
// buffer so a long-lived connection performs no per-frame allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Limits protect decoders against malicious lengths.
const (
	// MaxFrame is the largest accepted frame payload (128 MiB —
	// AlexNet-sized state fits comfortably).
	MaxFrame = 128 << 20
	// MaxDims is the largest accepted tensor rank.
	MaxDims = 8
)

// Decoding errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrCorrupt       = errors.New("wire: corrupt input")
)

// Writer serialises values into a growing buffer. Codec selects the
// tensor encoding; the zero value writes the uncompressed f64 protocol.
type Writer struct {
	buf []byte
	// Codec is the tensor encoding applied by Tensor/TensorList.
	Codec Codec
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// writerPool recycles Writers (and their buffers) across messages.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledBuf caps the buffer capacity retained by the pool so one huge
// frame does not pin memory forever.
const maxPooledBuf = 8 << 20

// GetWriter returns a reset Writer from the pool.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns a Writer to the pool. The caller must not touch the
// Writer (or any non-detached Bytes view) afterwards.
func PutWriter(w *Writer) {
	if cap(w.buf) > maxPooledBuf {
		w.buf = nil
	}
	writerPool.Put(w)
}

// Reset empties the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.Codec = CodecF64
}

// Bytes returns the accumulated encoding. The slice aliases the writer's
// buffer and is invalidated by Reset/PutWriter.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Detach returns the accumulated encoding and releases it from the
// writer, so the bytes stay valid after the writer is pooled.
func (w *Writer) Detach() []byte {
	b := w.buf
	w.buf = nil
	return b
}

// grow extends the buffer by n bytes in one step and returns the newly
// appended region, amortising capacity doubling across bulk writes.
func (w *Writer) grow(n int) []byte {
	if cap(w.buf)-len(w.buf) < n {
		nb := make([]byte, len(w.buf), max(2*cap(w.buf), len(w.buf)+n))
		copy(nb, w.buf)
		w.buf = nb
	}
	off := len(w.buf)
	w.buf = w.buf[:off+n]
	return w.buf[off:]
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Bool appends a boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.Blob([]byte(s)) }

// Float64 appends one IEEE-754 value.
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Float64s appends a length-prefixed float64 slice (always full
// precision, independent of Codec).
func (w *Writer) Float64s(fs []float64) {
	w.Uvarint(uint64(len(fs)))
	w.appendFloat64s(fs)
}

// appendFloat64s bulk-appends raw little-endian float64 values with a
// single buffer growth.
func (w *Writer) appendFloat64s(fs []float64) {
	dst := w.grow(8 * len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(f))
	}
}

// Tensor appends a tensor (nil allowed: encoded as rank 0xFF marker)
// using the writer's Codec for the element payload.
func (w *Writer) Tensor(t *tensor.Tensor) {
	if t == nil {
		w.Uvarint(0xFF)
		return
	}
	w.Uvarint(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		w.Uvarint(uint64(d))
	}
	switch w.Codec {
	case CodecF32:
		w.appendFloat32s(t.Data)
	case CodecQ8:
		w.appendQ8(t.Data)
	default:
		w.appendFloat64s(t.Data)
	}
}

// TensorList appends a length-prefixed list of (possibly nil) tensors.
func (w *Writer) TensorList(ts []*tensor.Tensor) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.Tensor(t)
	}
}

// BeginFrame starts encoding a framed message in place: the message type
// byte and a 4-byte length placeholder, patched by Frame. The writer
// must be empty (freshly reset).
func (w *Writer) BeginFrame(msgType byte) {
	w.buf = append(w.buf[:0], msgType, 0, 0, 0, 0)
}

// Frame finalises a frame started with BeginFrame and returns the
// complete wire bytes (header + payload), ready for a single Write.
func (w *Writer) Frame() ([]byte, error) {
	if len(w.buf) < 5 {
		return nil, errors.New("wire: Frame without BeginFrame")
	}
	payload := len(w.buf) - 5
	if payload > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, payload)
	}
	binary.BigEndian.PutUint32(w.buf[1:5], uint32(payload))
	return w.buf, nil
}

// Reader decodes values from a byte slice with a sticky error. Codec
// selects the tensor decoding and must match the writer's.
type Reader struct {
	buf []byte
	off int
	err error
	// decoded tracks the cumulative bytes of tensor data materialised
	// from this reader; capped at MaxFrame so compressed codecs cannot
	// amplify a frame into more memory than an f64 frame could carry.
	decoded int
	// Codec is the tensor encoding expected by Tensor/TensorList.
	Codec Codec
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of undecoded bytes (0 after an error).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// Fail marks the input corrupt with a sticky error — for consumers
// whose message-level invariants (fixed-size fields, structural
// checks) go beyond what the primitive readers can see.
func (r *Reader) Fail(what string) { r.fail(what) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	return b != 0
}

// Blob reads a length-prefixed byte slice (copied).
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob length")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }

// BlobBytes reads a length-prefixed byte slice as a direct view into
// the frame buffer — no copy, no per-blob allocation. The view dies
// with the frame, so only decoders that copy or transform the bytes
// before the frame is released may use it; anything that retains the
// result wants Blob.
func (r *Reader) BlobBytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob length")
		return nil
	}
	out := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return out
}

// Float64 reads one IEEE-754 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Float64s reads a length-prefixed float64 slice.
func (r *Reader) Float64s() []float64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		r.fail("float64s length")
		return nil
	}
	out := make([]float64, n)
	r.float64sInto(out)
	if r.err != nil {
		return nil
	}
	return out
}

// float64sInto bulk-decodes len(dst) raw little-endian float64 values.
func (r *Reader) float64sInto(dst []float64) {
	if r.err != nil {
		return
	}
	need := 8 * len(dst)
	if len(r.buf)-r.off < need {
		r.fail("float64s payload")
		return
	}
	src := r.buf[r.off : r.off+need]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
	r.off += need
}

// tensorHeader reads the shared tensor prelude — rank and dims — and
// charges the decode-amplification budget. It returns (0, nil) with no
// error for the nil-tensor marker, and a nil shape with a sticky error
// on corrupt input.
func (r *Reader) tensorHeader() (size int, shape []int) {
	rank := r.Uvarint()
	if r.err != nil {
		return 0, nil
	}
	if rank == 0xFF {
		return 0, nil
	}
	if rank == 0 || rank > MaxDims {
		r.fail("tensor rank")
		return 0, nil
	}
	shape = make([]int, rank)
	// Accumulate the element count in uint64 with a per-step cap: each
	// dim is ≤ 2²⁷ and the running product is re-checked after every
	// multiply, so the product never exceeds 2⁵⁴ — no overflow even
	// where int is 32 bits, and no hostile size can wrap past the
	// budget checks below.
	size64 := uint64(1)
	for i := range shape {
		d := r.Uvarint()
		if r.err != nil {
			return 0, nil
		}
		if d > uint64(MaxFrame) {
			r.fail("tensor dim")
			return 0, nil
		}
		shape[i] = int(d)
		size64 *= d
		if size64 > MaxFrame {
			r.fail("tensor size")
			return 0, nil
		}
	}
	size = int(size64)
	// Decode-amplification budget: q8 spends 1 payload byte per 8-byte
	// float64, so payload-proportional checks alone would let a 128 MiB
	// frame materialise ~1 GiB. Cap the total decoded tensor data per
	// reader at MaxFrame — exactly what an uncompressed frame could
	// carry (no new restriction for f64).
	r.decoded += 8 * size
	if r.decoded > MaxFrame {
		r.fail("tensor size")
		return 0, nil
	}
	return size, shape
}

// Tensor reads a tensor; returns nil for the nil marker. The reader's
// Codec must match the encoding.
func (r *Reader) Tensor() *tensor.Tensor {
	size, shape := r.tensorHeader()
	if r.err != nil || shape == nil {
		return nil
	}
	// Payload-size check per codec before any allocation.
	var need int
	switch r.Codec {
	case CodecF32:
		need = 4 * size
	case CodecQ8:
		need = q8Header + size
	default:
		need = 8 * size
	}
	if need > len(r.buf)-r.off {
		r.fail("tensor size")
		return nil
	}
	data := make([]float64, size)
	switch r.Codec {
	case CodecF32:
		r.float32sInto(data)
	case CodecQ8:
		r.q8Into(data)
	default:
		r.float64sInto(data)
	}
	if r.err != nil {
		return nil
	}
	return tensor.FromSlice(data, shape...)
}

// readList decodes a length-prefixed list of elements, each costing at
// least one encoded byte: the count claim is checked against the
// remaining payload, the initial allocation is capped so a hostile
// claim alone cannot force a large allocation, and decoding stops with
// the reader's sticky error at the first corrupt element. Shared by
// every list decoder in the package.
func readList[T any](r *Reader, what string, elem func(*Reader) T) []T {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(what)
		return nil
	}
	out := make([]T, 0, min(n, 4096))
	for i := uint64(0); i < n; i++ {
		e := elem(r)
		if r.err != nil {
			return nil
		}
		out = append(out, e)
	}
	return out
}

// TensorList reads a list written by Writer.TensorList.
func (r *Reader) TensorList() []*tensor.Tensor {
	return readList(r, "tensor list length", (*Reader).Tensor)
}

// WriteFrame writes a framed message: type byte, 4-byte big-endian
// length, payload.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := [5]byte{msgType}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message written by WriteFrame.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	return ReadFrameInto(r, nil)
}

// frameChunk bounds the allocation made on the strength of a claimed
// frame length alone: payload buffers grow as bytes actually arrive, so
// a hostile header costs at most one chunk.
const frameChunk = 1 << 20

// ReadFrameInto reads one framed message, reusing buf's capacity for the
// payload when possible (pass the previous payload to amortise per-frame
// allocation on a long-lived connection). The returned payload aliases
// buf when it fits.
func ReadFrameInto(r io.Reader, buf []byte) (msgType byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF passes through for clean shutdown
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload = buf[:0]
	for remaining := n; remaining > 0; {
		step := min(remaining, frameChunk)
		start := len(payload)
		if cap(payload)-start < step {
			nb := make([]byte, start, max(2*cap(payload), start+step))
			copy(nb, payload)
			payload = nb
		}
		payload = payload[:start+step]
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
		}
		remaining -= step
	}
	return hdr[0], payload, nil
}
