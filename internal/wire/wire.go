// Package wire implements the length-prefixed binary encoding used by the
// federated-learning protocol: primitive values, tensors, tensor lists
// and framed messages. It is hand-rolled over encoding/binary so the FL
// stack has no reflection in its hot path and malformed input fails with
// explicit errors and bounded allocations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/gradsec/gradsec/internal/tensor"
)

// Limits protect decoders against malicious lengths.
const (
	// MaxFrame is the largest accepted frame payload (128 MiB —
	// AlexNet-sized state fits comfortably).
	MaxFrame = 128 << 20
	// MaxDims is the largest accepted tensor rank.
	MaxDims = 8
)

// Decoding errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrCorrupt       = errors.New("wire: corrupt input")
)

// Writer serialises values into a growing buffer with a sticky error.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Bool appends a boolean byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.Blob([]byte(s)) }

// Float64 appends one IEEE-754 value.
func (w *Writer) Float64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

// Float64s appends a length-prefixed float64 slice.
func (w *Writer) Float64s(fs []float64) {
	w.Uvarint(uint64(len(fs)))
	for _, f := range fs {
		w.Float64(f)
	}
}

// Tensor appends a tensor (nil allowed: encoded as rank 0xFF marker).
func (w *Writer) Tensor(t *tensor.Tensor) {
	if t == nil {
		w.Uvarint(0xFF)
		return
	}
	w.Uvarint(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		w.Uvarint(uint64(d))
	}
	for _, f := range t.Data {
		w.Float64(f)
	}
}

// TensorList appends a length-prefixed list of (possibly nil) tensors.
func (w *Writer) TensorList(ts []*tensor.Tensor) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		w.Tensor(t)
	}
}

// Reader decodes values from a byte slice with a sticky error.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads a boolean byte.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("bool")
		return false
	}
	b := r.buf[r.off]
	r.off++
	return b != 0
}

// Blob reads a length-prefixed byte slice (copied).
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob length")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }

// Float64 reads one IEEE-754 value.
func (r *Reader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Float64s reads a length-prefixed float64 slice.
func (r *Reader) Float64s() []float64 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off)/8 {
		r.fail("float64s length")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Tensor reads a tensor; returns nil for the nil marker.
func (r *Reader) Tensor() *tensor.Tensor {
	rank := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if rank == 0xFF {
		return nil
	}
	if rank == 0 || rank > MaxDims {
		r.fail("tensor rank")
		return nil
	}
	shape := make([]int, rank)
	size := 1
	for i := range shape {
		d := r.Uvarint()
		if r.err != nil {
			return nil
		}
		if d > uint64(MaxFrame) {
			r.fail("tensor dim")
			return nil
		}
		shape[i] = int(d)
		size *= int(d)
	}
	if size < 0 || uint64(size) > uint64(len(r.buf)-r.off)/8 {
		r.fail("tensor size")
		return nil
	}
	data := make([]float64, size)
	for i := range data {
		data[i] = r.Float64()
	}
	if r.err != nil {
		return nil
	}
	return tensor.FromSlice(data, shape...)
}

// TensorList reads a list written by Writer.TensorList.
func (r *Reader) TensorList() []*tensor.Tensor {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) { // each tensor costs ≥1 byte
		r.fail("tensor list length")
		return nil
	}
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = r.Tensor()
		if r.err != nil {
			return nil
		}
	}
	return out
}

// WriteFrame writes a framed message: type byte, 4-byte big-endian
// length, payload.
func WriteFrame(w io.Writer, msgType byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := [5]byte{msgType}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: writing frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one framed message written by WriteFrame.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return hdr[0], payload, nil
}
