package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestCodecNames(t *testing.T) {
	for _, c := range []Codec{CodecF64, CodecF32, CodecQ8} {
		if !c.Valid() {
			t.Fatalf("%s must be valid", c)
		}
		parsed, err := ParseCodec(c.String())
		if err != nil || parsed != c {
			t.Fatalf("ParseCodec(%q) = %v, %v", c.String(), parsed, err)
		}
	}
	if Codec(200).Valid() {
		t.Fatal("codec 200 must be invalid")
	}
	if _, err := ParseCodec("gzip"); err == nil {
		t.Fatal("unknown codec name must fail")
	}
}

// roundTrip encodes and decodes one tensor under the given codec.
func roundTrip(t *testing.T, c Codec, orig *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	w := NewWriter()
	w.Codec = c
	w.Tensor(orig)
	r := NewReader(w.Bytes())
	r.Codec = c
	got := r.Tensor()
	if r.Err() != nil {
		t.Fatalf("%s decode: %v", c, r.Err())
	}
	if got == nil || !got.SameShape(orig) {
		t.Fatalf("%s shape mismatch", c)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%s left %d undecoded bytes", c, r.Remaining())
	}
	return got
}

// TestF64CodecBitIdentical pins the f64 tensor encoding to the seed
// protocol's exact bytes: rank, dims (uvarints), then raw little-endian
// IEEE-754 — no codec marker, no header.
func TestF64CodecBitIdentical(t *testing.T) {
	orig := tensor.FromSlice([]float64{1.5, -2.25, math.Pi, 0}, 2, 2)
	w := NewWriter()
	w.Tensor(orig)

	var want []byte
	want = binary.AppendUvarint(want, 2)
	want = binary.AppendUvarint(want, 2)
	want = binary.AppendUvarint(want, 2)
	for _, f := range orig.Data {
		want = binary.LittleEndian.AppendUint64(want, math.Float64bits(f))
	}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("f64 encoding drifted from the seed protocol:\n got %x\nwant %x", w.Bytes(), want)
	}
	got := roundTrip(t, CodecF64, orig)
	for i := range orig.Data {
		if got.Data[i] != orig.Data[i] {
			t.Fatalf("f64 elem %d: %v != %v", i, got.Data[i], orig.Data[i])
		}
	}
}

func TestF32CodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := tensor.Randn(rng, 1, 4, 5)
	got := roundTrip(t, CodecF32, orig)
	for i, v := range orig.Data {
		if got.Data[i] != float64(float32(v)) {
			t.Fatalf("f32 elem %d: %v != %v", i, got.Data[i], float64(float32(v)))
		}
	}
}

// TestQ8ErrorBoundProperty asserts the headline q8 guarantee: every
// element dequantises within 1/255 of the tensor's own value range.
func TestQ8ErrorBoundProperty(t *testing.T) {
	f := func(seed int64, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := float64(spread%100) + 0.01
		orig := tensor.Uniform(rng, -scale, scale, 3, 1+rng.Intn(40))
		lo, hi := orig.Data[0], orig.Data[0]
		for _, v := range orig.Data {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		got := roundTrip(t, CodecQ8, orig)
		bound := (hi - lo) / 255
		for i := range orig.Data {
			if math.Abs(got.Data[i]-orig.Data[i]) > bound+1e-12 {
				t.Logf("elem %d: %v -> %v (bound %v)", i, orig.Data[i], got.Data[i], bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQ8ConstantTensorExact: constant tensors (the flsim update shape)
// must survive q8 bit-exactly — scale collapses to 0 and every element
// decodes to the shared value.
func TestQ8ConstantTensorExact(t *testing.T) {
	for _, v := range []float64{0, 1, -3.75, 1.0 / 256} {
		orig := tensor.Full(v, 4, 4)
		got := roundTrip(t, CodecQ8, orig)
		for i := range got.Data {
			if got.Data[i] != v {
				t.Fatalf("constant %v decoded to %v", v, got.Data[i])
			}
		}
	}
}

// TestQ8Endpoints: the range endpoints map to levels 0 and 255; the
// minimum reconstructs exactly, the maximum within float rounding.
func TestQ8Endpoints(t *testing.T) {
	orig := tensor.FromSlice([]float64{-2, 0.3, 7}, 3)
	got := roundTrip(t, CodecQ8, orig)
	if got.Data[0] != -2 {
		t.Fatalf("min endpoint: %v", got.Data[0])
	}
	if math.Abs(got.Data[2]-7) > 1e-12 {
		t.Fatalf("max endpoint: %v, want ≈7", got.Data[2])
	}
}

// TestQ8FullFloatRange: a tensor spanning more than MaxFloat64 (so
// hi−lo overflows) must still quantise across levels instead of
// collapsing to a constant, and decode to finite values near the
// originals.
func TestQ8FullFloatRange(t *testing.T) {
	orig := tensor.FromSlice([]float64{-1.6e308, 0, 1.6e308}, 3)
	got := roundTrip(t, CodecQ8, orig)
	bound := 1.6e308/255 + 1.6e308/255 // one level of the full range
	for i, v := range got.Data {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("elem %d decoded non-finite: %v", i, v)
		}
		if math.Abs(v-orig.Data[i]) > bound {
			t.Fatalf("elem %d: %v strayed more than one level from %v", i, v, orig.Data[i])
		}
	}
	if got.Data[0] == got.Data[2] {
		t.Fatal("full-range tensor collapsed to a constant")
	}
}

func TestQ8NonFiniteClamps(t *testing.T) {
	orig := tensor.FromSlice([]float64{math.Inf(1), math.NaN(), 1}, 3)
	got := roundTrip(t, CodecQ8, orig)
	for i, v := range got.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("elem %d decoded non-finite: %v", i, v)
		}
	}
}

// TestQuantisedTensorHostileInputs covers truncated and oversized
// quantised payloads for every codec.
func TestQuantisedTensorHostileInputs(t *testing.T) {
	encode := func(c Codec, tr *tensor.Tensor) []byte {
		w := NewWriter()
		w.Codec = c
		w.Tensor(tr)
		return w.Bytes()
	}
	small := tensor.Full(1, 4)
	cases := []struct {
		name  string
		codec Codec
		data  []byte
	}{
		{"f64-truncated-payload", CodecF64, encode(CodecF64, small)[:9]},
		{"f32-truncated-payload", CodecF32, encode(CodecF32, small)[:7]},
		{"q8-truncated-header", CodecQ8, encode(CodecQ8, small)[:10]},
		{"q8-truncated-levels", CodecQ8, encode(CodecQ8, small)[:len(encode(CodecQ8, small))-2]},
		{"q8-bytes-read-as-f64", CodecF64, encode(CodecQ8, small)},
		{"f64-bytes-read-as-q8-oversized-dim", CodecQ8, func() []byte {
			// Claims 1<<20 elements with a 20-byte payload.
			w := NewWriter()
			w.Uvarint(1)
			w.Uvarint(1 << 20)
			w.Float64(0)
			w.Float64(1)
			w.buf = append(w.buf, 1, 2, 3, 4)
			return w.Bytes()
		}()},
		{"q8-amplification-over-budget", CodecQ8, func() []byte {
			// ~17M claimed elements with full payload backing: the q8
			// bytes are all present, but decoding would materialise
			// >128 MiB of float64 — the cumulative budget must refuse.
			elems := MaxFrame/8 + 1024
			w := NewWriter()
			w.Uvarint(1)
			w.Uvarint(uint64(elems))
			w.Float64(0)
			w.Float64(1)
			w.buf = append(w.buf, make([]byte, elems)...)
			return w.Bytes()
		}()},
		{"q8-overflowing-dims", CodecQ8, func() []byte {
			// Eight dims of 2^24: the element count overflows any naive
			// int accumulation but must fail at the per-step cap.
			w := NewWriter()
			w.Uvarint(8)
			for i := 0; i < 8; i++ {
				w.Uvarint(1 << 24)
			}
			return w.Bytes()
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(tc.data)
			r.Codec = tc.codec
			if got := r.Tensor(); got != nil || !errors.Is(r.Err(), ErrCorrupt) {
				t.Fatalf("hostile input decoded: %v / %v", got, r.Err())
			}
		})
	}
}

// TestTensorListRoundTripAllCodecs re-runs the list property under every
// codec (approximate equality for the lossy ones).
func TestTensorListRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := []*tensor.Tensor{nil, tensor.Uniform(rng, -1, 1, 2, 3), nil, tensor.Full(0.5, 4)}
	for _, c := range []Codec{CodecF64, CodecF32, CodecQ8} {
		w := NewWriter()
		w.Codec = c
		w.TensorList(ts)
		r := NewReader(w.Bytes())
		r.Codec = c
		got := r.TensorList()
		if r.Err() != nil || len(got) != len(ts) {
			t.Fatalf("%s: %v (%d tensors)", c, r.Err(), len(got))
		}
		for i := range ts {
			if (ts[i] == nil) != (got[i] == nil) {
				t.Fatalf("%s: nil mismatch at %d", c, i)
			}
			if ts[i] != nil && !ts[i].EqualApprox(got[i], 2.0/255) {
				t.Fatalf("%s: tensor %d out of tolerance", c, i)
			}
		}
	}
}

func TestWriterFrameHelpers(t *testing.T) {
	w := GetWriter()
	w.BeginFrame(42)
	w.String("payload")
	buf, err := w.Frame()
	if err != nil {
		t.Fatal(err)
	}
	mt, payload, err := ReadFrame(bytes.NewReader(buf))
	if err != nil || mt != 42 {
		t.Fatalf("frame readback: %d %v", mt, err)
	}
	r := NewReader(payload)
	if s := r.String(); s != "payload" {
		t.Fatalf("payload = %q", s)
	}
	PutWriter(w)

	w2 := NewWriter()
	if _, err := w2.Frame(); err == nil {
		t.Fatal("Frame without BeginFrame must fail")
	}
}

func TestReadFrameIntoReusesBuffer(t *testing.T) {
	var net bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&net, 1, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	var lastPtr *byte
	for i := 0; i < 3; i++ {
		_, payload, err := ReadFrameInto(&net, scratch)
		if err != nil || len(payload) != 100 || payload[0] != byte(i) {
			t.Fatalf("frame %d: %v len %d", i, err, len(payload))
		}
		if i > 0 && &payload[0] != lastPtr {
			t.Fatal("scratch buffer was not reused")
		}
		lastPtr = &payload[0]
		scratch = payload
	}
}

func TestWriterDetachSurvivesPooling(t *testing.T) {
	w := GetWriter()
	w.String("keep me")
	b := w.Detach()
	PutWriter(w)
	w2 := GetWriter() // may be the same Writer
	w2.String("overwrite attempt")
	r := NewReader(b)
	if s := r.String(); s != "keep me" {
		t.Fatalf("detached bytes corrupted: %q", s)
	}
	PutWriter(w2)
}
