package wire

import "sync/atomic"

// NumCodecs is the number of defined codecs — the length of the
// per-codec dimension in MeterSnapshot.
const NumCodecs = int(codecCount)

// Meter counts wire traffic: bytes and frames per direction, with
// frames broken out by the codec active when they were sent or
// received. One Meter is typically shared by every connection of a
// session, so its totals are the session's wire footprint; the FL
// server snapshots it at round boundaries to derive per-round
// RoundStats.BytesUp/BytesDown deltas.
//
// All methods are atomic and nil-safe: transports call Count* on the
// hot send/receive path, and a nil Meter (observability disabled) costs
// one predictable branch.
type Meter struct {
	txBytes atomic.Uint64
	rxBytes atomic.Uint64

	txFrames [NumCodecs]atomic.Uint64
	rxFrames [NumCodecs]atomic.Uint64
}

// CountTx records an outbound frame of n wire bytes (header included)
// sent under codec c.
func (m *Meter) CountTx(c Codec, n int) {
	if m == nil {
		return
	}
	m.txBytes.Add(uint64(n))
	if int(c) < NumCodecs {
		m.txFrames[c].Add(1)
	}
}

// CountRx records an inbound frame of n wire bytes received under
// codec c.
func (m *Meter) CountRx(c Codec, n int) {
	if m == nil {
		return
	}
	m.rxBytes.Add(uint64(n))
	if int(c) < NumCodecs {
		m.rxFrames[c].Add(1)
	}
}

// MeterSnapshot is a point-in-time copy of a Meter's totals. Subtract
// two snapshots field-wise for interval deltas.
type MeterSnapshot struct {
	TxBytes, RxBytes   uint64
	TxFrames, RxFrames [NumCodecs]uint64
}

// Snapshot atomically-enough copies the current totals (each field is
// individually atomic; the set is not a consistent cut, which is fine
// for monotone counters). A nil Meter snapshots to zeros.
func (m *Meter) Snapshot() MeterSnapshot {
	var s MeterSnapshot
	if m == nil {
		return s
	}
	s.TxBytes = m.txBytes.Load()
	s.RxBytes = m.rxBytes.Load()
	for i := 0; i < NumCodecs; i++ {
		s.TxFrames[i] = m.txFrames[i].Load()
		s.RxFrames[i] = m.rxFrames[i].Load()
	}
	return s
}
