package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gradsec/gradsec/internal/tensor"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uvarint(12345)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.Blob([]byte{1, 2, 3})
	w.Float64(math.Pi)
	w.Float64s([]float64{1, -2, 3.5})

	r := NewReader(w.Bytes())
	if v := r.Uvarint(); v != 12345 {
		t.Fatalf("Uvarint = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool roundtrip failed")
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if b := r.Blob(); !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", b)
	}
	if f := r.Float64(); f != math.Pi {
		t.Fatalf("Float64 = %v", f)
	}
	fs := r.Float64s()
	if len(fs) != 3 || fs[1] != -2 {
		t.Fatalf("Float64s = %v", fs)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := tensor.Randn(rng, 1, 2, 3, 4)
	w := NewWriter()
	w.Tensor(orig)
	got := NewReader(w.Bytes()).Tensor()
	if !got.EqualApprox(orig, 0) {
		t.Fatal("tensor roundtrip mismatch")
	}
}

func TestNilTensorRoundTrip(t *testing.T) {
	w := NewWriter()
	w.TensorList([]*tensor.Tensor{nil, tensor.Full(1, 2), nil})
	r := NewReader(w.Bytes())
	ts := r.TensorList()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if len(ts) != 3 || ts[0] != nil || ts[2] != nil || ts[1] == nil {
		t.Fatalf("TensorList = %v", ts)
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := map[string]func(r *Reader){
		"uvarint-empty":   func(r *Reader) { r.Uvarint() },
		"bool-empty":      func(r *Reader) { r.Bool() },
		"float64-short":   func(r *Reader) { r.Float64() },
		"blob-overlength": func(r *Reader) { r.Blob() },
	}
	for name, read := range cases {
		t.Run(name, func(t *testing.T) {
			var data []byte
			if name == "blob-overlength" {
				w := NewWriter()
				w.Uvarint(1000) // claims 1000 bytes, provides none
				data = w.Bytes()
			}
			r := NewReader(data)
			read(r)
			if !errors.Is(r.Err(), ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", r.Err())
			}
		})
	}
}

func TestTensorDecodeHostileLengths(t *testing.T) {
	// Claimed huge dimension must not allocate.
	w := NewWriter()
	w.Uvarint(2)
	w.Uvarint(1 << 40)
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if got := r.Tensor(); got != nil || !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("hostile tensor: %v / %v", got, r.Err())
	}

	// Excessive rank.
	w2 := NewWriter()
	w2.Uvarint(MaxDims + 1)
	r2 := NewReader(w2.Bytes())
	if got := r2.Tensor(); got != nil || !errors.Is(r2.Err(), ErrCorrupt) {
		t.Fatalf("hostile rank: %v / %v", got, r2.Err())
	}

	// Hostile list length.
	w3 := NewWriter()
	w3.Uvarint(1 << 50)
	r3 := NewReader(w3.Bytes())
	if got := r3.TensorList(); got != nil || !errors.Is(r3.Err(), ErrCorrupt) {
		t.Fatalf("hostile list: %v / %v", got, r3.Err())
	}
}

func TestStickyErrorStopsDecoding(t *testing.T) {
	r := NewReader(nil)
	r.Uvarint() // fails
	if r.Float64() != 0 || r.Bool() || r.Blob() != nil {
		t.Fatal("reads after error must return zero values")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, 8, nil); err != nil {
		t.Fatal(err)
	}
	mt, p, err := ReadFrame(&buf)
	if err != nil || mt != 7 || string(p) != "payload" {
		t.Fatalf("frame 1 = %d %q %v", mt, p, err)
	}
	mt, p, err = ReadFrame(&buf)
	if err != nil || mt != 8 || len(p) != 0 {
		t.Fatalf("frame 2 = %d %q %v", mt, p, err)
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("EOF = %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:8]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame must fail")
	}
}

func TestFrameHostileLength(t *testing.T) {
	hdr := []byte{1, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile frame length: %v", err)
	}
}

// Property: any tensor list round-trips exactly.
func TestTensorListRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n % 5)
		ts := make([]*tensor.Tensor, count)
		for i := range ts {
			if rng.Intn(4) == 0 {
				continue // nil entry
			}
			ts[i] = tensor.Randn(rng, 1, 1+rng.Intn(3), 1+rng.Intn(3))
		}
		w := NewWriter()
		w.TensorList(ts)
		r := NewReader(w.Bytes())
		got := r.TensorList()
		if r.Err() != nil || len(got) != len(ts) {
			return false
		}
		for i := range ts {
			switch {
			case ts[i] == nil && got[i] != nil, ts[i] != nil && got[i] == nil:
				return false
			case ts[i] != nil && !ts[i].EqualApprox(got[i], 0):
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
