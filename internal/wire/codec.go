package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Codec identifies a negotiated tensor element encoding. Codecs are
// ordered by compression: a peer that caps the codec at c accepts any
// codec ≤ c, so negotiation is min(offered, cap). CodecF64 — the zero
// value — is byte-for-byte the original uncompressed protocol.
type Codec uint8

// Tensor codecs, in increasing compression order.
const (
	// CodecF64 is full-precision IEEE-754 (8 B/element), bit-exact.
	CodecF64 Codec = iota
	// CodecF32 rounds each element to float32 (4 B/element).
	CodecF32
	// CodecQ8 quantises each tensor to 256 levels over its own value
	// range (1 B/element + 16 B header): absolute error ≤ (max−min)/510.
	CodecQ8

	codecCount // sentinel
)

// q8Header is the per-tensor overhead of CodecQ8: min and scale, each a
// little-endian float64.
const q8Header = 16

// Valid reports whether c names a known codec.
func (c Codec) Valid() bool { return c < codecCount }

// String returns the codec's protocol name.
func (c Codec) String() string {
	switch c {
	case CodecF64:
		return "f64"
	case CodecF32:
		return "f32"
	case CodecQ8:
		return "q8"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec maps a protocol name ("f64", "f32", "q8") to its Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "f64":
		return CodecF64, nil
	case "f32":
		return CodecF32, nil
	case "q8":
		return CodecQ8, nil
	default:
		return CodecF64, fmt.Errorf("wire: unknown codec %q", s)
	}
}

// appendFloat32s bulk-appends elements rounded to little-endian float32.
func (w *Writer) appendFloat32s(fs []float64) {
	dst := w.grow(4 * len(fs))
	for i, f := range fs {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(float32(f)))
	}
}

// float32sInto bulk-decodes len(dst) little-endian float32 values.
func (r *Reader) float32sInto(dst []float64) {
	if r.err != nil {
		return
	}
	need := 4 * len(dst)
	if len(r.buf)-r.off < need {
		r.fail("float32s payload")
		return
	}
	src := r.buf[r.off : r.off+need]
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:])))
	}
	r.off += need
}

// appendQ8 appends the q8 encoding of fs: min, scale, then one level
// byte per element where v ≈ min + level·scale. The scale spans the
// tensor's own value range, so constant tensors encode exactly and the
// worst-case dequantisation error is scale/2. Non-finite inputs are not
// representable: they clamp to the nearest level.
func (w *Writer) appendQ8(fs []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, f := range fs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	// Divide before subtracting: hi−lo overflows to +Inf for tensors
	// spanning more than MaxFloat64 (e.g. ±1.6e308), which would
	// otherwise collapse the whole tensor to a constant.
	scale := hi/255 - lo/255
	if !(scale > 0) || math.IsInf(scale, 0) { // empty, constant, or non-finite range
		scale = 0
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) || lo > hi {
		lo = 0
	}
	w.Float64(lo)
	w.Float64(scale)
	dst := w.grow(len(fs))
	inv := 0.0
	if scale > 0 {
		inv = 1 / scale
	}
	for i, f := range fs {
		q := math.Round((f - lo) * inv)
		if !(q > 0) { // also catches NaN
			q = 0
		} else if q > 255 {
			q = 255
		}
		dst[i] = byte(q)
	}
}

// q8Into decodes len(dst) q8 levels written by appendQ8.
func (r *Reader) q8Into(dst []float64) {
	if r.err != nil {
		return
	}
	need := q8Header + len(dst)
	if len(r.buf)-r.off < need {
		r.fail("q8 payload")
		return
	}
	lo := r.Float64()
	// Reconstruct in two half-steps: for full-range tensors q·scale can
	// overflow even though lo + q·scale is finite, while every partial
	// sum of lo + q·half + q·half stays within [lo, hi].
	half := r.Float64() / 2
	src := r.buf[r.off : r.off+len(dst)]
	for i := range dst {
		q := float64(src[i])
		dst[i] = lo + q*half + q*half
	}
	r.off += len(dst)
}
