package wire

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/tensor"
)

// EncodeSealedUpdate encodes indexed tensors for transport inside a
// trusted channel: count, then (flatIndex, tensor) pairs. The sealed
// path always uses the exact f64 encoding — protected tensors are never
// quantised. (fl.SealedUpdate wraps this; it also lives here so the
// server-side aggregation enclave (internal/secagg) can parse sealed
// blobs without depending on the protocol package.)
func EncodeSealedUpdate(idx []int, ts []*tensor.Tensor) []byte {
	w := NewWriter()
	w.Uvarint(uint64(len(idx)))
	for i, id := range idx {
		w.Uvarint(uint64(id))
		w.Tensor(ts[i])
	}
	return w.Bytes()
}

// DecodeSealedUpdate decodes a blob produced by EncodeSealedUpdate.
func DecodeSealedUpdate(blob []byte) (idx []int, ts []*tensor.Tensor, err error) {
	r := NewReader(blob)
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if n < 0 || n > len(blob) {
		return nil, nil, fmt.Errorf("wire: sealed update claims %d entries", n)
	}
	idx = make([]int, 0, n)
	ts = make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, int(r.Uvarint()))
		ts = append(ts, r.Tensor())
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
	}
	return idx, ts, nil
}
