package fl

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// AsyncConfig parameterises the asynchronous buffered-federation mode
// (ServerConfig.Async, driven by Server.RunAsync). The design follows
// FedBuff: there is no round barrier — every client always holds a
// model tagged with the version it was cut from, trains at its own
// pace, and pushes its update whenever ready; the server folds arrivals
// into a staleness-weighted buffer and applies the buffered aggregate
// as soon as GoalUpdates have accumulated, which bumps the model
// version. A device is re-armed with the then-current model the moment
// its push is processed, so fast devices contribute often and slow
// devices contribute late-but-discounted instead of idling the fleet
// behind a deadline.
type AsyncConfig struct {
	// Enabled turns the asynchronous mode on; ServerConfig.Rounds then
	// counts buffered applications (model versions) instead of
	// synchronous cycles. Run/StepRound ignore it — use RunAsync.
	Enabled bool
	// GoalUpdates (K) is the buffer goal: the buffered aggregate is
	// applied once this many updates have been folded since the last
	// application. Defaults to MinClients.
	GoalUpdates int
	// MaxStaleness, when positive, discards updates trained on a model
	// more than this many versions behind the current one
	// (RoundStats.LateDiscarded); the pushing device is immediately
	// re-armed with a fresh model and stays healthy. 0 folds any
	// staleness, discounted.
	MaxStaleness int
	// Buffer caps the arrival fan-in channel shared by the
	// per-connection readers. When the server falls behind, readers
	// block — backpressure reaches the transports instead of growing
	// server memory. Defaults to 2×GoalUpdates; values above the fleet
	// size are clamped to it.
	Buffer int
	// MinPushInterval, when positive, rate-limits folds per device: a
	// push arriving within the interval of the device's previous
	// accepted fold is discarded (RoundStats.Duplicates) though the
	// device is still re-armed, so one fast device cannot flood the
	// buffer and crowd out the rest of the fleet.
	MinPushInterval time.Duration
	// MaxViolations is the per-device health budget: this many
	// consecutive protocol violations (duplicate pushes without an
	// outstanding model) quarantine the device — probation under
	// QuarantineRounds, permanent otherwise. Defaults to 3; a folded
	// update resets the count.
	MaxViolations int
	// Discount maps an update's staleness s (current version minus the
	// version it trained on, ≥0) to a weight multiplier in (0,1]. The
	// folded weight is the FedAvg example weight times this. Defaults
	// to DefaultStalenessDiscount.
	Discount func(staleness int) float64
}

// DefaultStalenessDiscount is the polynomial staleness discount
// 1/√(1+s) (FedBuff's choice with a=½): a fresh update folds at full
// weight, one trained 3 versions back at half.
func DefaultStalenessDiscount(s int) float64 {
	return 1 / math.Sqrt(1+float64(s))
}

// asyncClient is the server-side health/book-keeping record for one
// device in an asynchronous session, owned by the RunAsync goroutine.
type asyncClient struct {
	// sentVersion is the model version most recently sent; a valid push
	// must echo it (GradUp.Version).
	sentVersion int
	// awaiting is set while a model is outstanding — exactly one push
	// is owed. A push without it is a duplicate.
	awaiting bool
	// lastFold is the time of the last accepted fold (rate limiting).
	lastFold time.Time
	// strikes counts consecutive protocol violations.
	strikes int
	// doneSent marks a delivered end-of-session Done.
	doneSent bool
}

// RunAsync executes selection followed by an asynchronous buffered
// federation session over the given client connections: cfg.Rounds
// buffered applications of cfg.Async.GoalUpdates staleness-discounted
// updates each. It returns the number of selected clients. The round
// trace holds one entry per applied version: Responded counts folded
// updates, LateDiscarded over-stale pushes, Duplicates duplicate or
// rate-limited ones, and WeightTotal the discounted weight actually
// applied.
//
// Asynchronous sessions are plaintext-only for now: SecAgg and Partials
// are rejected (a masked cohort needs a round barrier for its masks to
// cancel), and the protection Planner and AdaptiveCodec are ignored.
func (s *Server) RunAsync(conns []Conn) (int, error) {
	if !s.cfg.Async.Enabled {
		return 0, errors.New("fl: RunAsync without Async.Enabled")
	}
	if s.cfg.SecAgg || s.cfg.Partials {
		return 0, errors.New("fl: asynchronous mode does not compose with SecAgg or Partials")
	}
	open := s.Open
	if s.Resumable() {
		// Journal-recovered session: rejoin the roster and continue at
		// the first unwatermarked version.
		open = s.Resume
	}
	n, err := open(conns)
	if err != nil {
		return n, err
	}
	if err := s.runAsync(); err != nil {
		s.Abort()
		return n, fmt.Errorf("fl: async: %w", err)
	}
	// Every surviving client has already received its Done; Abort just
	// tears down the readers and connections.
	s.Abort()
	return n, nil
}

// runAsync is the buffered-federation event loop. Single-goroutine by
// design: arrivals from every connection reader funnel through the
// bounded channel, so folds, version bumps and replies are totally
// ordered and the trace is deterministic for a deterministic arrival
// order.
func (s *Server) runAsync() error {
	cfg := s.cfg.Async
	clients := make(map[*session]*asyncClient, len(s.sessions))
	for _, sess := range s.sessions {
		clients[sess] = &asyncClient{}
	}

	version := s.nextRound                // 0 fresh; the first unwatermarked version after recovery
	frames := make(map[wire.Codec][]byte) // current version, per codec
	agg := NewAggregator(s.state)
	stats := RoundStats{Round: version, Sampled: len(s.sessions)}
	var reasons []string

	s.asyncRoundStarted(version)
	// One span per buffered version window (async has no sync phases).
	// The version-scoped trace ID correlates this window's spans with
	// the ModelDown frames cut from it across the fleet.
	s.ob.setTrace(obs.RoundTrace(version))
	verSpan := s.ob.spanStart("version", version)

	// Initial distribution: every selected client gets version 0,
	// encoded once per negotiated codec, sent in parallel.
	sendErrs := make([]error, len(s.sessions))
	var sends sync.WaitGroup
	for i, sess := range s.sessions {
		payload := s.asyncFrame(frames, version, sess.codec)
		sends.Add(1)
		go func(i int, sess *session, payload []byte) {
			defer sends.Done()
			sendErrs[i] = sess.conn.SendFrame(MsgModelDown, payload)
		}(i, sess, payload)
	}
	sends.Wait()
	for i, sess := range s.sessions {
		if sendErrs[i] != nil {
			s.quarantineAt(sess, version, false, fmt.Errorf("sending model: %w", sendErrs[i]), &stats, &reasons)
			continue
		}
		ac := clients[sess]
		ac.sentVersion = version
		ac.awaiting = true
	}

	for version < s.cfg.Rounds {
		if err := s.asyncCheckLiveness(clients, &reasons); err != nil {
			s.closeRound(stats, false, nil)
			return err
		}
		a := <-s.arrivals
		pushStart := s.ob.now()
		sess := a.sess
		if sess.quarantined {
			continue // residue from an already-closed connection
		}
		ac := clients[sess]
		if a.err != nil {
			ac.awaiting = false
			s.quarantineAt(sess, version, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), &stats, &reasons)
			continue
		}
		switch m := a.msg.(type) {
		case *CodecSwitch:
			continue // ack, nothing to fold
		case *GradUp:
			if !ac.awaiting {
				// Duplicate push: nothing is outstanding for this device.
				// Discard without a reply (none is owed) and strike its
				// health budget.
				stats.Duplicates++
				ac.strikes++
				if s.cfg.Hooks.UpdatePushed != nil {
					s.cfg.Hooks.UpdatePushed(version, sess.device, false)
				}
				if ac.strikes >= cfg.MaxViolations {
					s.ob.observeStrikes(ac.strikes)
					s.quarantineAt(sess, version, true, fmt.Errorf("%d consecutive duplicate pushes", ac.strikes), &stats, &reasons)
				}
				continue
			}
			ac.awaiting = false
			if int(m.Version) != ac.sentVersion {
				s.quarantineAt(sess, version, true, fmt.Errorf("update for version %d, expected %d", m.Version, ac.sentVersion), &stats, &reasons)
				if s.cfg.Hooks.UpdatePushed != nil {
					s.cfg.Hooks.UpdatePushed(version, sess.device, false)
				}
				continue
			}
			staleness := version - int(m.Version)
			s.ob.observeStaleness(staleness)
			now := s.cfg.Clock.Now()
			folded := false
			switch {
			case cfg.MaxStaleness > 0 && staleness > cfg.MaxStaleness:
				stats.LateDiscarded++
			case cfg.MinPushInterval > 0 && !ac.lastFold.IsZero() && now.Sub(ac.lastFold) < cfg.MinPushInterval:
				stats.Duplicates++
			default:
				weight := 1.0
				if m.Examples > 0 {
					weight = float64(min(m.Examples, MaxExampleWeight))
				}
				weight *= cfg.Discount(staleness)
				var err error
				if m.Q8 != nil && len(m.Sealed) == 0 {
					err = agg.AccumulateQ8(m.Q8, weight)
				} else {
					var update []*tensor.Tensor
					if update, err = s.mergeUpdate(sess, m); err == nil {
						err = agg.Add(update, weight)
					}
				}
				if err != nil {
					s.quarantineAt(sess, version, true, err, &stats, &reasons)
					if s.cfg.Hooks.UpdatePushed != nil {
						s.cfg.Hooks.UpdatePushed(version, sess.device, false)
					}
					continue
				}
				folded = true
				ac.strikes = 0
				ac.lastFold = now
				if s.cfg.Hooks.UpdateFolded != nil {
					s.cfg.Hooks.UpdateFolded(version, sess.device)
				}
			}
			if s.cfg.Hooks.UpdatePushed != nil {
				s.cfg.Hooks.UpdatePushed(version, sess.device, folded)
			}
			if folded && agg.Count() >= cfg.GoalUpdates {
				// Goal reached: apply the buffered aggregate, bump the
				// version, open the next window.
				stats.Responded = agg.Count()
				stats.WeightTotal = agg.Weight()
				mean, err := agg.Mean()
				if err != nil {
					s.closeRound(stats, false, nil)
					return err
				}
				stats.UpdateNorm = UpdateNorm(mean)
				ApplyUpdate(s.state, mean, 1.0)
				s.closeRound(stats, true, mean)
				verSpan.End()
				version++
				if version >= s.cfg.Rounds {
					break
				}
				agg = NewAggregator(s.state)
				stats = RoundStats{Round: version, Sampled: s.asyncLive(version)}
				reasons = nil
				frames = make(map[wire.Codec][]byte)
				s.asyncRoundStarted(version)
				s.ob.setTrace(obs.RoundTrace(version))
				verSpan = s.ob.spanStart("version", version)
				// Devices whose probation window just elapsed rejoin here:
				// they hold no model (their last interaction was a failure),
				// so hand them the fresh version.
				s.asyncReengage(version, clients, frames, &stats, &reasons)
			}
			// Re-arm the pusher with the current model — fresh if its fold
			// just triggered the application.
			s.asyncReply(sess, ac, version, frames, &stats, &reasons)
			s.ob.observePush(pushStart)
		case *ErrorMsg:
			ac.awaiting = false
			s.quarantineAt(sess, version, true, fmt.Errorf("client error: %s", m.Text), &stats, &reasons)
		default:
			ac.awaiting = false
			s.quarantineAt(sess, version, true, fmt.Errorf("unexpected %T in async session", a.msg), &stats, &reasons)
		}
	}
	return s.asyncDrain(clients)
}

// asyncRoundStarted journals the version boundary and fires the
// RoundStarted hook with the devices eligible at the given version.
func (s *Server) asyncRoundStarted(version int) {
	s.journalAppend(&journal.Record{Type: journal.RecRoundOpen, Round: version})
	if s.cfg.Hooks.RoundStarted == nil {
		return
	}
	var names []string
	for _, sess := range s.sessions {
		if sess.eligible(version) {
			names = append(names, sess.device)
		}
	}
	s.cfg.Hooks.RoundStarted(version, names)
}

// asyncLive counts sessions eligible at the version.
func (s *Server) asyncLive(version int) int {
	n := 0
	for _, sess := range s.sessions {
		if sess.eligible(version) {
			n++
		}
	}
	return n
}

// asyncFrame returns the encode-once ModelDown frame for a version and
// codec.
func (s *Server) asyncFrame(frames map[wire.Codec][]byte, version int, codec wire.Codec) []byte {
	payload, ok := frames[codec]
	if !ok {
		down := &ModelDown{Round: version, Plain: s.state, Version: uint64(version), Trace: obs.RoundTrace(version)}
		payload = EncodeMessageCodec(down, codec)
		frames[codec] = payload
	}
	return payload
}

// asyncReply re-arms one device with the current model version (or a
// Done once the session's version budget is exhausted).
func (s *Server) asyncReply(sess *session, ac *asyncClient, version int, frames map[wire.Codec][]byte, stats *RoundStats, reasons *[]string) {
	if sess.quarantined || !sess.eligible(version) {
		return // a probationed device is re-engaged when its window ends
	}
	if ac.awaiting {
		return // already armed (e.g. by the reengage sweep): one push owed
	}
	if version >= s.cfg.Rounds {
		s.asyncSendDone(sess, ac)
		return
	}
	if err := sess.conn.SendFrame(MsgModelDown, s.asyncFrame(frames, version, sess.codec)); err != nil {
		s.quarantineAt(sess, version, false, fmt.Errorf("sending model: %w", err), stats, reasons)
		return
	}
	ac.sentVersion = version
	ac.awaiting = true
}

// asyncReengage hands the current model to every eligible device with
// no model outstanding — devices returning from probation.
func (s *Server) asyncReengage(version int, clients map[*session]*asyncClient, frames map[wire.Codec][]byte, stats *RoundStats, reasons *[]string) {
	for _, sess := range s.sessions {
		ac := clients[sess]
		if sess.quarantined || ac.awaiting || !sess.eligible(version) {
			continue
		}
		s.asyncReply(sess, ac, version, frames, stats, reasons)
	}
}

// asyncCheckLiveness fails the session when it can no longer make
// progress: fewer surviving devices than MinClients, or no device owes
// a push (every survivor idle or stuck on probation) so the buffer can
// never fill.
func (s *Server) asyncCheckLiveness(clients map[*session]*asyncClient, reasons *[]string) error {
	surviving, awaiting := 0, 0
	for _, sess := range s.sessions {
		if sess.quarantined {
			continue
		}
		surviving++
		if clients[sess].awaiting {
			awaiting++
		}
	}
	if surviving < s.cfg.MinClients {
		return fmt.Errorf("%w: %d surviving clients, need %d (%s)", ErrNotEnoughClients, surviving, s.cfg.MinClients, joinReasons(*reasons))
	}
	if awaiting == 0 {
		return fmt.Errorf("%w: no client owes an update (%s)", ErrNotEnoughClients, joinReasons(*reasons))
	}
	return nil
}

func joinReasons(reasons []string) string {
	if len(reasons) == 0 {
		return "no failures recorded"
	}
	out := reasons[0]
	for _, r := range reasons[1:] {
		out += "; " + r
	}
	return out
}

// asyncSendDone delivers the end-of-session Done with the final model,
// best effort, at most once per device.
func (s *Server) asyncSendDone(sess *session, ac *asyncClient) {
	if ac.doneSent || sess.quarantined {
		return
	}
	ac.doneSent = true
	ac.awaiting = false
	_ = sess.conn.Send(&Done{Final: s.state})
}

// asyncDrain finishes the session after the last application: idle
// devices get their Done immediately; devices still training get it as
// the reply to their final push. The wait for in-flight trainers is
// bounded by RoundDeadline when one is configured.
func (s *Server) asyncDrain(clients map[*session]*asyncClient) error {
	// Drain-time failures go through the same quarantine path as
	// mid-session ones, so the ClientQuarantined hook, the journal
	// record and the device history all still happen — a device that
	// dies while we wait for its last push must not silently vanish.
	// The accounting lands in a local stats block: the final version's
	// trace entry is already committed.
	var drainStats RoundStats
	var drainReasons []string
	outstanding := 0
	for _, sess := range s.sessions {
		ac := clients[sess]
		if sess.quarantined {
			continue
		}
		if ac.awaiting {
			outstanding++
			continue
		}
		s.asyncSendDone(sess, ac)
	}
	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}
	for outstanding > 0 {
		select {
		case a := <-s.arrivals:
			sess := a.sess
			ac := clients[sess]
			if sess.quarantined {
				continue
			}
			if a.err != nil {
				if ac.awaiting {
					ac.awaiting = false
					outstanding--
				}
				s.quarantineAt(sess, s.cfg.Rounds, false, fmt.Errorf("transport during drain: %w", a.err), &drainStats, &drainReasons)
				continue
			}
			if !ac.awaiting {
				continue // duplicate or ack during drain: ignore
			}
			ac.awaiting = false
			outstanding--
			s.asyncSendDone(sess, ac)
		case <-deadlineC:
			// In-flight trainers past the drain deadline are abandoned;
			// Abort will close their connections.
			return nil
		}
	}
	return nil
}
