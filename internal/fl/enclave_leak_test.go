package fl

import (
	"errors"
	"testing"

	"github.com/gradsec/gradsec/internal/secagg"
)

// TestEnclaveChannelsReleasedOnAbort: an enclave-backed protected
// session that dies mid-round must not leak TA state — the per-device
// trusted channels, any unconsumed offers, and the round accumulator's
// secure memory are all released by the abort, and the same devices can
// re-establish on the same enclave in a later session.
func TestEnclaveChannelsReleasedOnAbort(t *testing.T) {
	enclave, err := secagg.NewEnclave("leak-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()

	build := func() []*testTrainer {
		return []*testTrainer{
			newTestTrainer("tee-a", true, 2),
			newTestTrainer("tee-b", true, 6),
		}
	}
	trainers := build()
	liveChannels := 0
	cfg := ServerConfig{
		Rounds: 3, RequireTEE: true, Verifier: setupVerifier(trainers...),
		Planner: staticPlanner{0: true}, SecAgg: true, Enclave: enclave,
		Hooks: Hooks{UpdateFolded: func(round int, _ string) {
			if round == 1 {
				// Snapshot before the "crash" so the post-abort zero
				// provably released something.
				liveChannels = enclave.ChannelCount()
				panic(crashSentinel{round})
			}
		}},
	}
	srv := NewServer(newState(5, 50), cfg)
	runUntilCrash(t, srv, trainers)

	if liveChannels != 2 {
		t.Fatalf("mid-session enclave held %d channels, want 2", liveChannels)
	}
	if got := enclave.ChannelCount(); got != 0 {
		t.Fatalf("abort leaked %d enclave channels", got)
	}
	if got := enclave.OfferCount(); got != 0 {
		t.Fatalf("abort leaked %d enclave channel offers", got)
	}
	if got := enclave.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("abort leaked %d bytes of enclave secure memory (round accumulator)", got)
	}

	// The released names must be free for a later session on the same
	// enclave process — establishment would fail if the abort had kept
	// the old channels.
	again := build()
	cfg2 := ServerConfig{
		Rounds: 1, RequireTEE: true, Verifier: setupVerifier(again...),
		Planner: staticPlanner{0: true}, SecAgg: true, Enclave: enclave,
	}
	srv2 := NewServer(newState(5, 50), cfg2)
	if _, err := runSession(t, srv2, again); err != nil {
		t.Fatalf("re-establishment after abort: %v", err)
	}
	if got := enclave.ChannelCount(); got != 0 {
		t.Fatalf("clean close leaked %d enclave channels", got)
	}
	if got := enclave.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("clean close leaked %d bytes of enclave secure memory", got)
	}
}

// TestEnclaveCohortFloorBlocksRelease: with the count-capped release
// policy armed above the cohort size, the enclave refuses to publish
// the aggregate (ErrCohortTooSmall), the round fails — and the failed
// session still tears down without leaking channels or the blocked
// round's accumulator.
func TestEnclaveCohortFloorBlocksRelease(t *testing.T) {
	enclave, err := secagg.NewEnclave("floor-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()

	trainers := []*testTrainer{
		newTestTrainer("tee-a", true, 2),
		newTestTrainer("tee-b", true, 6),
	}
	srv := NewServer(newState(5, 50), ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(trainers...),
		Planner: staticPlanner{0: true}, SecAgg: true, Enclave: enclave,
		MinRelease: 3, // two devices can never satisfy the floor
	})
	_, err = runSession(t, srv, trainers)
	if !errors.Is(err, secagg.ErrCohortTooSmall) {
		t.Fatalf("err = %v, want ErrCohortTooSmall", err)
	}
	if got := enclave.ChannelCount(); got != 0 {
		t.Fatalf("failed session leaked %d enclave channels", got)
	}
	if got := enclave.OfferCount(); got != 0 {
		t.Fatalf("failed session leaked %d enclave channel offers", got)
	}
	if got := enclave.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("blocked release leaked %d bytes of enclave secure memory", got)
	}
}
