// Package fl implements the federated-learning orchestration of the
// paper's Figure 2: TEE-aware client selection with remote attestation,
// model + training-plan distribution (protected weights travel sealed
// through the trusted I/O path), secure local training on the client, and
// FedAvg aggregation of the returned updates on the server.
//
// The package is substrate-generic: protection scheduling and secure
// training are injected through the RoundPlanner and Trainer interfaces,
// implemented by internal/core (GradSec).
package fl

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// MsgType discriminates protocol messages.
type MsgType byte

// Protocol message types.
const (
	MsgChallenge MsgType = iota + 1
	MsgAttest
	MsgReject
	MsgModelDown
	MsgGradUp
	MsgDone
	MsgError
)

// Message is one protocol unit.
type Message interface {
	// Kind returns the message discriminator.
	Kind() MsgType
	encode(w *wire.Writer)
	decode(r *wire.Reader)
}

// Challenge opens selection for a training session: the server sends a
// fresh attestation nonce, its trusted-channel public key, and the
// tensor codec it offers for the session.
type Challenge struct {
	Nonce      []byte
	ServerPub  []byte
	RequireTEE bool
	// Codec is the server's offered tensor codec; the client answers
	// with min(offer, its own cap) in Attest.Codec. Absent (pre-codec
	// peers) means CodecF64.
	Codec wire.Codec
}

// Kind implements Message.
func (*Challenge) Kind() MsgType { return MsgChallenge }

func (m *Challenge) encode(w *wire.Writer) {
	w.Blob(m.Nonce)
	w.Blob(m.ServerPub)
	w.Bool(m.RequireTEE)
	w.Uvarint(uint64(m.Codec))
}

func (m *Challenge) decode(r *wire.Reader) {
	m.Nonce = r.Blob()
	m.ServerPub = r.Blob()
	m.RequireTEE = r.Bool()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Codec = wire.Codec(r.Uvarint())
	}
}

// Attest is the client's selection response: device capability, an
// attestation quote over its GradSec TA, and the TA's channel public key.
type Attest struct {
	DeviceID  string
	HasTEE    bool
	Quote     tz.Quote
	ClientPub []byte
	// Codec is the tensor codec the client will speak for the rest of
	// the session: at most the server's offer (the server rejects a
	// client that answers above it). Absent means CodecF64.
	Codec wire.Codec
}

// Kind implements Message.
func (*Attest) Kind() MsgType { return MsgAttest }

func (m *Attest) encode(w *wire.Writer) {
	w.String(m.DeviceID)
	w.Bool(m.HasTEE)
	w.String(m.Quote.DeviceID)
	w.Blob(m.Quote.Measurement[:])
	w.Blob(m.Quote.Nonce)
	w.Blob(m.Quote.MAC)
	w.Blob(m.ClientPub)
	w.Uvarint(uint64(m.Codec))
}

func (m *Attest) decode(r *wire.Reader) {
	m.DeviceID = r.String()
	m.HasTEE = r.Bool()
	m.Quote.DeviceID = r.String()
	copy(m.Quote.Measurement[:], r.Blob())
	m.Quote.Nonce = r.Blob()
	m.Quote.MAC = r.Blob()
	m.ClientPub = r.Blob()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Codec = wire.Codec(r.Uvarint())
	}
}

// Reject tells a client it was not selected.
type Reject struct {
	Reason string
}

// Kind implements Message.
func (*Reject) Kind() MsgType { return MsgReject }

func (m *Reject) encode(w *wire.Writer) { w.String(m.Reason) }
func (m *Reject) decode(r *wire.Reader) { m.Reason = r.String() }

// ModelDown distributes the round's model: unprotected parameter tensors
// travel in the clear (nil at protected positions); protected tensors are
// sealed for the TA through the trusted I/O path. Plan carries the
// round's protection plan blob.
type ModelDown struct {
	Round  int
	Plain  []*tensor.Tensor
	Sealed []byte
	Plan   []byte
}

// Kind implements Message.
func (*ModelDown) Kind() MsgType { return MsgModelDown }

func (m *ModelDown) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.TensorList(m.Plain)
	w.Blob(m.Sealed)
	w.Blob(m.Plan)
}

func (m *ModelDown) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Plain = r.TensorList()
	m.Sealed = r.Blob()
	m.Plan = r.Blob()
}

// GradUp returns the client's model update: unprotected update tensors in
// the clear, protected ones sealed. Examples carries the size of the
// client's local training set; when positive the server uses it as the
// FedAvg weight (0 — including pre-codec peers — means unit weight).
type GradUp struct {
	Round    int
	Plain    []*tensor.Tensor
	Sealed   []byte
	Examples uint64
}

// Kind implements Message.
func (*GradUp) Kind() MsgType { return MsgGradUp }

func (m *GradUp) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.TensorList(m.Plain)
	w.Blob(m.Sealed)
	w.Uvarint(m.Examples)
}

func (m *GradUp) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Plain = r.TensorList()
	m.Sealed = r.Blob()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Examples = r.Uvarint()
	}
}

// Done ends a session, optionally delivering the final global model.
type Done struct {
	Final []*tensor.Tensor
}

// Kind implements Message.
func (*Done) Kind() MsgType { return MsgDone }

func (m *Done) encode(w *wire.Writer) { w.TensorList(m.Final) }
func (m *Done) decode(r *wire.Reader) { m.Final = r.TensorList() }

// ErrorMsg reports a protocol failure to the peer.
type ErrorMsg struct {
	Text string
}

// Kind implements Message.
func (*ErrorMsg) Kind() MsgType { return MsgError }

func (m *ErrorMsg) encode(w *wire.Writer) { w.String(m.Text) }
func (m *ErrorMsg) decode(r *wire.Reader) { m.Text = r.String() }

// EncodeMessage serialises a message to a framed-payload byte slice
// with the uncompressed f64 tensor codec.
func EncodeMessage(m Message) []byte { return EncodeMessageCodec(m, wire.CodecF64) }

// EncodeMessageCodec serialises a message with the given tensor codec.
// The payload escapes to the caller (pipe frames, broadcast caches), so
// a fresh buffer is allocated rather than draining the writer pool —
// pooled buffer reuse belongs to the TCP send path, where frames are
// written out and released immediately.
func EncodeMessageCodec(m Message, codec wire.Codec) []byte {
	w := wire.NewWriter()
	w.Codec = codec
	m.encode(w)
	return w.Bytes()
}

// DecodeMessage reconstructs a message from its type and payload,
// expecting the uncompressed f64 tensor codec.
func DecodeMessage(mt MsgType, payload []byte) (Message, error) {
	return DecodeMessageCodec(mt, payload, wire.CodecF64)
}

// DecodeMessageCodec reconstructs a message whose tensors were encoded
// with the given codec. The payload is fully copied out: it may be
// reused by the caller immediately after.
func DecodeMessageCodec(mt MsgType, payload []byte, codec wire.Codec) (Message, error) {
	var m Message
	switch mt {
	case MsgChallenge:
		m = &Challenge{}
	case MsgAttest:
		m = &Attest{}
	case MsgReject:
		m = &Reject{}
	case MsgModelDown:
		m = &ModelDown{}
	case MsgGradUp:
		m = &GradUp{}
	case MsgDone:
		m = &Done{}
	case MsgError:
		m = &ErrorMsg{}
	default:
		return nil, fmt.Errorf("fl: unknown message type %d", mt)
	}
	r := wire.NewReader(payload)
	r.Codec = codec
	m.decode(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fl: decoding %T: %w", m, err)
	}
	return m, nil
}

// SealedUpdate encodes indexed tensors for transport inside a trusted
// channel: count, then (flatIndex, tensor) pairs. The sealed path always
// uses the exact f64 encoding — protected tensors are never quantised.
func SealedUpdate(idx []int, ts []*tensor.Tensor) []byte {
	w := wire.NewWriter()
	w.Uvarint(uint64(len(idx)))
	for i, id := range idx {
		w.Uvarint(uint64(id))
		w.Tensor(ts[i])
	}
	return w.Bytes()
}

// ParseSealedUpdate decodes a blob produced by SealedUpdate.
func ParseSealedUpdate(blob []byte) (idx []int, ts []*tensor.Tensor, err error) {
	r := wire.NewReader(blob)
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if n < 0 || n > len(blob) {
		return nil, nil, fmt.Errorf("fl: sealed update claims %d entries", n)
	}
	idx = make([]int, 0, n)
	ts = make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		idx = append(idx, int(r.Uvarint()))
		ts = append(ts, r.Tensor())
		if err := r.Err(); err != nil {
			return nil, nil, err
		}
	}
	return idx, ts, nil
}
