// Package fl implements the federated-learning orchestration of the
// paper's Figure 2: TEE-aware client selection with remote attestation,
// model + training-plan distribution (protected weights travel sealed
// through the trusted I/O path), secure local training on the client, and
// FedAvg aggregation of the returned updates on the server.
//
// The package is substrate-generic: protection scheduling and secure
// training are injected through the RoundPlanner and Trainer interfaces,
// implemented by internal/core (GradSec).
package fl

import (
	"fmt"

	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// MsgType discriminates protocol messages.
type MsgType byte

// Protocol message types.
const (
	MsgChallenge MsgType = iota + 1
	MsgAttest
	MsgReject
	MsgModelDown
	MsgGradUp
	MsgDone
	MsgError
	MsgMaskedUp
	MsgMaskRecon
	MsgMaskShares
	MsgShardDown
	MsgPartialUp
	MsgCodecSwitch
)

// Message is one protocol unit.
type Message interface {
	// Kind returns the message discriminator.
	Kind() MsgType
	encode(w *wire.Writer)
	decode(r *wire.Reader)
}

// Challenge opens selection for a training session: the server sends a
// fresh attestation nonce, its trusted-channel public key, and the
// tensor codec it offers for the session.
type Challenge struct {
	Nonce      []byte
	ServerPub  []byte
	RequireTEE bool
	// Codec is the server's offered tensor codec; the client answers
	// with min(offer, its own cap) in Attest.Codec. Absent (pre-codec
	// peers) means CodecF64.
	Codec wire.Codec
	// SecAgg announces masked secure aggregation for the session: the
	// client must answer with a mask public key and send MaskedUp
	// instead of GradUp each round.
	SecAgg bool
	// ScaleBits is the fixed-point precision for masked updates
	// (secagg.DefaultScaleBits when the server leaves it zero).
	ScaleBits uint8
	// MaskDegree announces the session's masking topology: 0 is the
	// legacy full-pairwise mode (also what pre-double-masking peers
	// assume), secagg.AutoDegree (-1) sizes the k-regular graph per
	// round from the cohort, and a positive value fixes the degree.
	// The resolved per-round degree rides ModelDown.MaskDegree.
	// Trailing field; on the wire 0→0, auto→1, fixed k→k+1, so absent
	// decodes as legacy.
	MaskDegree int
	// AggQuote, when non-empty (detected via AggQuote.DeviceID), attests
	// the server-side aggregation enclave over
	// secagg.AggQuoteNonce(Nonce, ServerPub) — binding the enclave's TA
	// identity to the trusted-channel key clients seal against. The
	// challenge nonce is server-chosen, so the quote proves identity
	// and key custody, not freshness — see the secagg package notes.
	AggQuote tz.Quote
}

// Kind implements Message.
func (*Challenge) Kind() MsgType { return MsgChallenge }

func (m *Challenge) encode(w *wire.Writer) {
	w.Blob(m.Nonce)
	w.Blob(m.ServerPub)
	w.Bool(m.RequireTEE)
	w.Uvarint(uint64(m.Codec))
	w.Bool(m.SecAgg)
	w.Uvarint(uint64(m.ScaleBits))
	w.String(m.AggQuote.DeviceID)
	w.Blob(m.AggQuote.Measurement[:])
	w.Blob(m.AggQuote.Nonce)
	w.Blob(m.AggQuote.MAC)
	w.Uvarint(encodeMaskDegree(m.MaskDegree))
}

// encodeMaskDegree / decodeMaskDegree map the MaskDegree config onto an
// unsigned trailing wire field: 0 (legacy full pairwise) → 0, auto (-1)
// → 1, fixed degree k → k+1. An absent field therefore reads back as
// legacy, keeping old peers' wire behaviour byte-for-byte.
func encodeMaskDegree(d int) uint64 {
	switch {
	case d < 0:
		return 1
	case d == 0:
		return 0
	default:
		return uint64(d) + 1
	}
}

func decodeMaskDegree(v uint64) int {
	switch v {
	case 0:
		return 0
	case 1:
		return secagg.AutoDegree
	default:
		return int(v) - 1
	}
}

func (m *Challenge) decode(r *wire.Reader) {
	m.Nonce = r.Blob()
	m.ServerPub = r.Blob()
	m.RequireTEE = r.Bool()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Codec = wire.Codec(r.Uvarint())
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.SecAgg = r.Bool()
		m.ScaleBits = uint8(r.Uvarint())
		m.AggQuote.DeviceID = r.String()
		copy(m.AggQuote.Measurement[:], r.Blob())
		m.AggQuote.Nonce = r.Blob()
		m.AggQuote.MAC = r.Blob()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.MaskDegree = decodeMaskDegree(r.Uvarint())
	}
}

// Attest is the client's selection response: device capability, an
// attestation quote over its GradSec TA, and the TA's channel public key.
type Attest struct {
	DeviceID  string
	HasTEE    bool
	Quote     tz.Quote
	ClientPub []byte
	// Codec is the tensor codec the client will speak for the rest of
	// the session: at most the server's offer (the server rejects a
	// client that answers above it). Absent means CodecF64.
	Codec wire.Codec
	// MaskPub is the client's pairwise-masking public key, required
	// when the challenge announced SecAgg.
	MaskPub []byte
	// Cap is the client's true maximum codec, which may exceed the
	// negotiated Codec when the server opened with a conservative offer.
	// It lets an adaptive server upgrade the session codec later
	// (CodecSwitch) without renegotiating. Absent (pre-adaptive peers)
	// means the negotiated codec is also the cap.
	Cap wire.Codec
}

// Kind implements Message.
func (*Attest) Kind() MsgType { return MsgAttest }

func (m *Attest) encode(w *wire.Writer) {
	w.String(m.DeviceID)
	w.Bool(m.HasTEE)
	w.String(m.Quote.DeviceID)
	w.Blob(m.Quote.Measurement[:])
	w.Blob(m.Quote.Nonce)
	w.Blob(m.Quote.MAC)
	w.Blob(m.ClientPub)
	w.Uvarint(uint64(m.Codec))
	w.Blob(m.MaskPub)
	w.Uvarint(uint64(m.Cap))
}

func (m *Attest) decode(r *wire.Reader) {
	m.DeviceID = r.String()
	m.HasTEE = r.Bool()
	m.Quote.DeviceID = r.String()
	copy(m.Quote.Measurement[:], r.Blob())
	m.Quote.Nonce = r.Blob()
	m.Quote.MAC = r.Blob()
	m.ClientPub = r.Blob()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Codec = wire.Codec(r.Uvarint())
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.MaskPub = r.Blob()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Cap = wire.Codec(r.Uvarint())
	}
	if m.Cap < m.Codec {
		m.Cap = m.Codec // absent or stale cap: the spoken codec is proof
	}
}

// Reject tells a client it was not selected.
type Reject struct {
	Reason string
}

// Kind implements Message.
func (*Reject) Kind() MsgType { return MsgReject }

func (m *Reject) encode(w *wire.Writer) { w.String(m.Reason) }
func (m *Reject) decode(r *wire.Reader) { m.Reason = r.String() }

// ModelDown distributes the round's model: unprotected parameter tensors
// travel in the clear (nil at protected positions); protected tensors are
// sealed for the TA through the trusted I/O path. Plan carries the
// round's protection plan blob. In secure-aggregation sessions Cohort
// lists the round's sampled peers (device + mask public key) so every
// member can derive its pairwise masks. Version tags the model state the
// tensors were taken from — in round-synchronous sessions it equals
// Round, in asynchronous sessions it counts buffered applications — and
// the client echoes it back in GradUp.Version so the server can compute
// the update's staleness.
type ModelDown struct {
	Round   int
	Plain   []*tensor.Tensor
	Sealed  []byte
	Plan    []byte
	Cohort  []secagg.Peer
	Version uint64
	// Trace is the round-scoped trace ID the serving tier stamps on its
	// spans (minted at the hierarchy root, or by the flat server). The
	// client adopts it for its own spans so a stitched timeline
	// correlates all tiers of one round. Trailing field: absent (0) on
	// pre-telemetry peers.
	Trace uint64
	// MaskDegree is the round's resolved mask-graph degree: 0 means full
	// pairwise masking over the cohort (legacy), k > 0 means the client
	// masks only against its neighbours in the deterministic k-regular
	// graph derived from (Round, Cohort) and double-masks with a
	// Shamir-shared self seed. Trailing field: absent (0) keeps the
	// legacy behaviour.
	MaskDegree int
}

// Kind implements Message.
func (*ModelDown) Kind() MsgType { return MsgModelDown }

func (m *ModelDown) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.TensorList(m.Plain)
	w.Blob(m.Sealed)
	w.Blob(m.Plan)
	w.Uvarint(uint64(len(m.Cohort)))
	for _, p := range m.Cohort {
		w.String(p.Device)
		w.Blob(p.Pub)
	}
	w.Uvarint(m.Version)
	w.Uvarint(m.Trace)
	w.Uvarint(uint64(m.MaskDegree))
}

func (m *ModelDown) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Plain = r.TensorList()
	m.Sealed = r.Blob()
	m.Plan = r.Blob()
	if r.Err() != nil || r.Remaining() == 0 {
		return
	}
	m.Cohort = decodePeerList(r)
	if r.Err() == nil && r.Remaining() > 0 {
		m.Version = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.MaskDegree = int(r.Uvarint())
	}
}

// decodeBoundedList reads a length-prefixed list of elements, each
// costing at least one encoded byte: a hostile count claim is rejected
// against the remaining payload, the initial allocation is capped so
// the claim alone cannot force a large allocation, and decoding stops
// (returning nil, with the reader's sticky error set by the element
// decoder) at the first corrupt element.
func decodeBoundedList[T any](r *wire.Reader, elem func(*wire.Reader) T) []T {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	out := make([]T, 0, min(n, 1024))
	for i := uint64(0); i < n; i++ {
		e := elem(r)
		if r.Err() != nil {
			return nil
		}
		out = append(out, e)
	}
	return out
}

// decodePeerList reads the cohort roster into two shared backing
// slabs — one string carrying every device name, one byte slice
// carrying every mask pub — instead of two heap objects per peer. The
// roster rides every ModelDown, so at fleet scale a cohort of n costs
// n·cohort decoded peers per round and the per-peer garbage was
// costing the collector more than the decode itself. Bounds mirror
// decodeBoundedList: the count claim is checked against the remaining
// payload and decoding stops at the first corrupt element.
func decodePeerList(r *wire.Reader) []secagg.Peer {
	n := r.Uvarint()
	if r.Err() != nil || n > uint64(r.Remaining()) {
		return nil
	}
	lens := make([][2]int, 0, min(n, 1024))
	var names, pubs []byte
	for i := uint64(0); i < n; i++ {
		name := r.BlobBytes()
		pub := r.BlobBytes()
		if r.Err() != nil {
			return nil
		}
		names = append(names, name...)
		pubs = append(pubs, pub...)
		lens = append(lens, [2]int{len(name), len(pub)})
	}
	shared := string(names)
	out := make([]secagg.Peer, len(lens))
	no, po := 0, 0
	for i, l := range lens {
		out[i] = secagg.Peer{
			Device: shared[no : no+l[0]],
			Pub:    pubs[po : po+l[1] : po+l[1]],
		}
		no += l[0]
		po += l[1]
	}
	return out
}

// GradUp returns the client's model update: unprotected update tensors in
// the clear, protected ones sealed. Examples carries the size of the
// client's local training set; when positive the server uses it as the
// FedAvg weight (0 — including pre-codec peers — means unit weight).
//
// Under CodecQ8 the decode is lazy: the update arrives as Q8 (raw
// quantisation levels, Plain nil) so the aggregator can fold levels
// directly (Aggregator.AccumulateQ8) without materialising a per-client
// float64 model. Tensors() converts on demand.
// Version echoes the ModelDown.Version the update was trained against.
// The asynchronous engine derives the update's staleness from it (the
// difference against the current model version); the round-synchronous
// engine ignores it.
type GradUp struct {
	Round    int
	Plain    []*tensor.Tensor
	Q8       []*wire.Q8Tensor
	Sealed   []byte
	Examples uint64
	Version  uint64
	// Telemetry is an optional obs.Snapshot delta of the client's own
	// metric registry (training step timing, SMC cost), folded into the
	// server's fleet view when ServerConfig.ClientTelemetry is on.
	// Trailing field: absent (empty) on pre-telemetry peers and when the
	// client has no registry.
	Telemetry []byte
}

// Kind implements Message.
func (*GradUp) Kind() MsgType { return MsgGradUp }

// Tensors returns the plain update tensors, materialising the lazy q8
// form if that is what arrived.
func (m *GradUp) Tensors() []*tensor.Tensor {
	if m.Plain != nil || m.Q8 == nil {
		return m.Plain
	}
	out := make([]*tensor.Tensor, len(m.Q8))
	for i, q := range m.Q8 {
		if q != nil {
			out[i] = q.Materialise()
		}
	}
	return out
}

func (m *GradUp) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	if m.Plain == nil && m.Q8 != nil {
		// Re-encoding a lazily decoded update: emit the levels verbatim.
		w.Q8TensorListRaw(m.Q8)
	} else {
		w.TensorList(m.Plain)
	}
	w.Blob(m.Sealed)
	w.Uvarint(m.Examples)
	w.Uvarint(m.Version)
	w.Blob(m.Telemetry)
}

func (m *GradUp) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	if r.Codec == wire.CodecQ8 {
		m.Q8 = r.Q8TensorList()
	} else {
		m.Plain = r.TensorList()
	}
	m.Sealed = r.Blob()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Examples = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Version = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Telemetry = r.Blob()
	}
}

// Done ends a session, optionally delivering the final global model.
type Done struct {
	Final []*tensor.Tensor
}

// Kind implements Message.
func (*Done) Kind() MsgType { return MsgDone }

func (m *Done) encode(w *wire.Writer) { w.TensorList(m.Final) }
func (m *Done) decode(r *wire.Reader) { m.Final = r.TensorList() }

// ErrorMsg reports a protocol failure to the peer.
type ErrorMsg struct {
	Text string
}

// Kind implements Message.
func (*ErrorMsg) Kind() MsgType { return MsgError }

func (m *ErrorMsg) encode(w *wire.Writer) { w.String(m.Text) }
func (m *ErrorMsg) decode(r *wire.Reader) { m.Text = r.String() }

// MaskedUp is the secure-aggregation counterpart of GradUp: the
// unprotected update travels as fixed-point ring levels with the
// cohort's pairwise masks added (nil at protected positions), opaque to
// the server until the cohort sum cancels the masks. Protected tensors
// still ride the sealed path (aggregated inside the server enclave).
// Levels always travel as raw 64-bit words regardless of the session
// codec — masked data is incompressible by construction.
type MaskedUp struct {
	Round    int
	Levels   []*wire.U64Tensor
	Sealed   []byte
	Examples uint64
	// Shares carries the client's wrapped Shamir shares of its
	// double-masking self seed, one per mask-graph neighbour, in
	// k-regular rounds (ModelDown.MaskDegree > 0). Each blob is
	// encrypted and authenticated under the owner→holder pair key; the
	// server stores them opaquely and forwards the relevant ones inside
	// MaskRecon.Survivors. Trailing field: absent (nil) in legacy
	// full-pairwise rounds.
	Shares []secagg.WrappedShare
}

// Kind implements Message.
func (*MaskedUp) Kind() MsgType { return MsgMaskedUp }

func (m *MaskedUp) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.U64TensorList(m.Levels)
	w.Blob(m.Sealed)
	w.Uvarint(m.Examples)
	w.Uvarint(uint64(len(m.Shares)))
	for _, s := range m.Shares {
		w.String(s.To)
		w.Blob(s.Blob)
	}
}

func (m *MaskedUp) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Levels = r.U64TensorList()
	m.Sealed = r.Blob()
	m.Examples = r.Uvarint()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Shares = decodeBoundedList(r, func(r *wire.Reader) secagg.WrappedShare {
			s := secagg.WrappedShare{To: r.String(), Blob: r.Blob()}
			// A wrapped share has exactly one valid length; anything else
			// is hostile or corrupt and must fail the frame, not linger
			// until reconciliation.
			if r.Err() == nil && len(s.Blob) != secagg.WrappedShareLen {
				r.Fail("wrapped share size")
			}
			return s
		})
	}
}

// MaskRecon asks a surviving cohort member to reconcile the round's
// masks. In legacy full-pairwise rounds the frame is broadcast and
// Dropped lists every straggler: the survivor reveals its pair seeds
// with them. In k-regular rounds the frame is per-recipient: Dropped
// lists only the recipient's dropped neighbours, and Survivors carries
// the wrapped self-seed shares of its folded neighbours for it to
// unwrap — per peer the server sends one of the two, never both (the
// client enforces this with ErrRoleConflict).
type MaskRecon struct {
	Round   int
	Dropped []string
	// Survivors is the k-regular survivor path: each envelope holds a
	// folded neighbour's wrapped self-seed share addressed to this
	// recipient. Trailing field: absent (nil) in legacy rounds.
	Survivors []secagg.SeedEnvelope
}

// Kind implements Message.
func (*MaskRecon) Kind() MsgType { return MsgMaskRecon }

func (m *MaskRecon) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.Uvarint(uint64(len(m.Dropped)))
	for _, d := range m.Dropped {
		w.String(d)
	}
	w.Uvarint(uint64(len(m.Survivors)))
	for _, s := range m.Survivors {
		w.String(s.Owner)
		w.Blob(s.Blob)
	}
}

func (m *MaskRecon) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Dropped = decodeBoundedList(r, func(r *wire.Reader) string { return r.String() })
	if r.Err() == nil && r.Remaining() > 0 {
		m.Survivors = decodeBoundedList(r, func(r *wire.Reader) secagg.SeedEnvelope {
			s := secagg.SeedEnvelope{Owner: r.String(), Blob: r.Blob()}
			if r.Err() == nil && len(s.Blob) != secagg.WrappedShareLen {
				r.Fail("wrapped share size")
			}
			return s
		})
	}
}

// MaskShares answers a MaskRecon: one round-scoped pair seed per
// dropped peer, and — in k-regular rounds — one unwrapped self-seed
// share per folded neighbour the request carried an envelope for. Only
// the named round's masks are derivable from the seeds, so the
// revelation burns nothing beyond the failed pairs.
type MaskShares struct {
	Round  int
	Shares []secagg.PairShare
	// SeedShares are the unwrapped Shamir shares answering
	// MaskRecon.Survivors. A corrupt envelope yields no share (the
	// server needs only the threshold), so len(SeedShares) may be less
	// than len(Survivors). Trailing field: absent (nil) in legacy
	// rounds.
	SeedShares []secagg.SeedShare
}

// Kind implements Message.
func (*MaskShares) Kind() MsgType { return MsgMaskShares }

func (m *MaskShares) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.Uvarint(uint64(len(m.Shares)))
	for _, s := range m.Shares {
		w.String(s.Device)
		w.Blob(s.Seed[:])
	}
	w.Uvarint(uint64(len(m.SeedShares)))
	for _, s := range m.SeedShares {
		w.String(s.Owner)
		w.Uvarint(uint64(s.X))
		w.Blob(s.Data)
	}
}

func (m *MaskShares) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Shares = decodeBoundedList(r, func(r *wire.Reader) secagg.PairShare {
		var s secagg.PairShare
		s.Device = r.String()
		seed := r.Blob()
		// A short seed would zero-pad and silently subtract the wrong
		// mask during reconciliation — corrupting the published
		// aggregate instead of failing the round. Fail-stop instead.
		if r.Err() == nil && len(seed) != len(s.Seed) {
			r.Fail("mask share seed size")
			return s
		}
		copy(s.Seed[:], seed)
		return s
	})
	if r.Err() == nil && r.Remaining() > 0 {
		m.SeedShares = decodeBoundedList(r, func(r *wire.Reader) secagg.SeedShare {
			var s secagg.SeedShare
			s.Owner = r.String()
			x := r.Uvarint()
			s.Data = r.Blob()
			if r.Err() != nil {
				return s
			}
			// A Shamir share has a fixed body and a nonzero x-coordinate
			// below the field order; anything else would corrupt the
			// reconstructed self seed — and thereby the published
			// aggregate — instead of failing the round. Fail-stop.
			if x == 0 || x > 255 || len(s.Data) != secagg.SeedShareLen {
				r.Fail("seed share shape")
				return s
			}
			s.X = uint8(x)
			return s
		})
	}
}

// ShardDown distributes one round's global model from the hierarchy
// root to an edge aggregator, which redistributes it to its shard of
// clients under the edge's own downstream codec. Model tensors are
// encoded with the root↔edge negotiated codec (the root serialises the
// frame once per codec and broadcasts it — encode-once, like
// ModelDown).
type ShardDown struct {
	Round int
	Model []*tensor.Tensor
	// Trace is the root-minted round trace ID; the edge stamps it on its
	// own spans and forwards it to clients via ModelDown.Trace. Trailing
	// field: absent (0) on pre-telemetry peers.
	Trace uint64
}

// Kind implements Message.
func (*ShardDown) Kind() MsgType { return MsgShardDown }

func (m *ShardDown) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.TensorList(m.Model)
	w.Uvarint(m.Trace)
}

func (m *ShardDown) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Model = r.TensorList()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Trace = r.Uvarint()
	}
}

// PartialUp carries one shard's folded round aggregate upstream: the
// un-normalised weighted sum Σ wᵢuᵢ (plain sessions) or the per-tensor
// ring sums of the shard's cancelled masked updates (secure
// aggregation), plus the summed FedAvg weight and the shard's round
// accounting. Partial sums always travel exactly — f64 tensors or raw
// 64-bit ring words — regardless of the negotiated codec, because the
// root's fold must be bit-identical to a flat aggregation of the same
// fleet. Count 0 reports a shard round that failed (e.g. too few
// responders): the root drops the shard for the round instead of the
// session.
type PartialUp struct {
	Round int
	// Sum is the plain weighted sum (nil in secure-aggregation mode).
	Sum []*tensor.Tensor
	// Levels are the shard's ring sums (nil in plain mode). Within the
	// shard the pairwise masks have already cancelled (or been
	// reconciled), so these compose additively in ℤ/2⁶⁴ at the root.
	Levels []*wire.U64Tensor
	// ScaleBits is the fixed-point precision of Levels.
	ScaleBits uint8
	// Weight is the shard's summed FedAvg weight (integer-valued in
	// masked mode).
	Weight float64
	// Count is the number of client updates folded into the partial.
	Count uint64
	// Shard round accounting, folded into the root's RoundStats.
	Sampled       uint64
	Dropped       uint64
	Quarantined   uint64
	LateDiscarded uint64
	Reconciled    uint64
	// Probation counts the shard's clients placed on temporary probation
	// this round (trailing field: absent on pre-probation peers, which
	// folded probation into Quarantined).
	Probation uint64
	// Telemetry is an optional obs.Snapshot delta of the edge's metric
	// registry, folded into the root's fleet-wide families under
	// tier/shard labels. Trailing field: absent (empty) on pre-telemetry
	// peers and when the edge runs without a registry. Degraded shard
	// rounds (Count 0) still carry telemetry — a struggling shard is
	// exactly the one whose latency distributions matter.
	Telemetry []byte
}

// Kind implements Message.
func (*PartialUp) Kind() MsgType { return MsgPartialUp }

func (m *PartialUp) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Round))
	w.ExactTensorList(m.Sum)
	w.U64TensorList(m.Levels)
	w.Uvarint(uint64(m.ScaleBits))
	w.Float64(m.Weight)
	w.Uvarint(m.Count)
	w.Uvarint(m.Sampled)
	w.Uvarint(m.Dropped)
	w.Uvarint(m.Quarantined)
	w.Uvarint(m.LateDiscarded)
	w.Uvarint(m.Reconciled)
	w.Uvarint(m.Probation)
	w.Blob(m.Telemetry)
}

func (m *PartialUp) decode(r *wire.Reader) {
	m.Round = int(r.Uvarint())
	m.Sum = r.ExactTensorList()
	m.Levels = r.U64TensorList()
	m.ScaleBits = uint8(r.Uvarint())
	m.Weight = r.Float64()
	m.Count = r.Uvarint()
	m.Sampled = r.Uvarint()
	m.Dropped = r.Uvarint()
	m.Quarantined = r.Uvarint()
	m.LateDiscarded = r.Uvarint()
	m.Reconciled = r.Uvarint()
	if r.Err() == nil && r.Remaining() > 0 {
		m.Probation = r.Uvarint()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.Telemetry = r.Blob()
	}
}

// CodecSwitch retunes the session's tensor codec mid-session (adaptive
// per-round codec downgrade). The ordering rule that keeps the switch
// race-free on a full-duplex connection:
//
//   - Server → client: the server flips its *send* codec the moment the
//     CodecSwitch is written, so everything after it on the downstream
//     leg (including the very next ModelDown) is new-codec.
//   - Client → server: on receipt the client flips both directions and
//     echoes the CodecSwitch back as an ack. Frames the client wrote
//     before the ack are old-codec, frames after it are new-codec.
//   - The server flips its *receive* codec only when the ack arrives
//     (in the connection's read loop, before the next frame is read).
//     FIFO framing therefore guarantees every upstream frame decodes
//     under the codec it was encoded with — a straggler's in-flight
//     old-codec update that races the switch still decodes and is
//     handled by the normal late/stale path instead of poisoning the
//     stream.
//
// The server only switches a client whose Attest.Cap covers the target.
// The CodecSwitch payload itself is codec-independent, so the ack
// decodes correctly under either codec. Should a post-switch frame
// nevertheless fail to decode, the failure surfaces as ErrDecode and is
// probationable — never a silent permanent quarantine.
type CodecSwitch struct {
	Codec wire.Codec
}

// Kind implements Message.
func (*CodecSwitch) Kind() MsgType { return MsgCodecSwitch }

func (m *CodecSwitch) encode(w *wire.Writer) { w.Uvarint(uint64(m.Codec)) }
func (m *CodecSwitch) decode(r *wire.Reader) { m.Codec = wire.Codec(r.Uvarint()) }

// EncodeMessage serialises a message to a framed-payload byte slice
// with the uncompressed f64 tensor codec.
func EncodeMessage(m Message) []byte { return EncodeMessageCodec(m, wire.CodecF64) }

// EncodeMessageCodec serialises a message with the given tensor codec.
// The payload escapes to the caller (pipe frames, broadcast caches), so
// a fresh buffer is allocated rather than draining the writer pool —
// pooled buffer reuse belongs to the TCP send path, where frames are
// written out and released immediately.
func EncodeMessageCodec(m Message, codec wire.Codec) []byte {
	w := wire.NewWriter()
	w.Codec = codec
	m.encode(w)
	return w.Bytes()
}

// DecodeMessage reconstructs a message from its type and payload,
// expecting the uncompressed f64 tensor codec.
func DecodeMessage(mt MsgType, payload []byte) (Message, error) {
	return DecodeMessageCodec(mt, payload, wire.CodecF64)
}

// DecodeMessageCodec reconstructs a message whose tensors were encoded
// with the given codec. The payload is fully copied out: it may be
// reused by the caller immediately after.
func DecodeMessageCodec(mt MsgType, payload []byte, codec wire.Codec) (Message, error) {
	var m Message
	switch mt {
	case MsgChallenge:
		m = &Challenge{}
	case MsgAttest:
		m = &Attest{}
	case MsgReject:
		m = &Reject{}
	case MsgModelDown:
		m = &ModelDown{}
	case MsgGradUp:
		m = &GradUp{}
	case MsgDone:
		m = &Done{}
	case MsgError:
		m = &ErrorMsg{}
	case MsgMaskedUp:
		m = &MaskedUp{}
	case MsgMaskRecon:
		m = &MaskRecon{}
	case MsgMaskShares:
		m = &MaskShares{}
	case MsgShardDown:
		m = &ShardDown{}
	case MsgPartialUp:
		m = &PartialUp{}
	case MsgCodecSwitch:
		m = &CodecSwitch{}
	default:
		return nil, fmt.Errorf("fl: unknown message type %d", mt)
	}
	r := wire.NewReader(payload)
	r.Codec = codec
	m.decode(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fl: decoding %T: %w", m, err)
	}
	return m, nil
}

// SealedUpdate encodes indexed tensors for transport inside a trusted
// channel: count, then (flatIndex, tensor) pairs. The sealed path always
// uses the exact f64 encoding — protected tensors are never quantised.
// (The codec lives in wire so the aggregation enclave can parse sealed
// blobs without importing this package.)
func SealedUpdate(idx []int, ts []*tensor.Tensor) []byte {
	return wire.EncodeSealedUpdate(idx, ts)
}

// ParseSealedUpdate decodes a blob produced by SealedUpdate.
func ParseSealedUpdate(blob []byte) (idx []int, ts []*tensor.Tensor, err error) {
	return wire.DecodeSealedUpdate(blob)
}
