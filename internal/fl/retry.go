package fl

import (
	"fmt"
	"math/rand"
	"time"
)

// RetryConfig governs DialRetry's backoff schedule. The zero value
// means a single attempt with no waiting — identical to Dial.
type RetryConfig struct {
	// Attempts is the total number of dial attempts, including the
	// first. Values below 1 are treated as 1.
	Attempts int

	// Base is the delay before the first retry; each subsequent delay
	// doubles until it reaches Max. Defaults to 250ms when Attempts > 1.
	Base time.Duration

	// Max caps the exponential growth. Defaults to 8s.
	Max time.Duration

	// Jitter is the fraction of each delay drawn uniformly at random
	// and added on top, decorrelating a fleet of clients that all lost
	// the same server at the same moment. 0.2 means "up to +20%".
	// Negative disables jitter; 0 defaults to 0.2.
	Jitter float64

	// Seed seeds the jitter RNG. 0 seeds from the wall clock, which is
	// what production wants; tests pin it for reproducible schedules.
	Seed int64

	// Sleep and Dial are test seams; nil means time.Sleep and Dial.
	Sleep func(time.Duration)
	Dial  func(addr string) (Conn, error)
}

func (cfg *RetryConfig) fill() {
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	if cfg.Base <= 0 {
		cfg.Base = 250 * time.Millisecond
	}
	if cfg.Max <= 0 {
		cfg.Max = 8 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if cfg.Dial == nil {
		cfg.Dial = Dial
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
}

// DialRetry connects to an FL server at addr, retrying transient dial
// failures with jittered exponential backoff. A device fleet rebooting
// after a server crash all reconnect through this path: the backoff
// keeps the recovering server from being flattened by a synchronized
// thundering herd, and the jitter spreads the herd out. It returns the
// last dial error once the attempt budget is spent.
func DialRetry(addr string, cfg RetryConfig) (Conn, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	delay := cfg.Base
	var lastErr error
	for attempt := 1; ; attempt++ {
		conn, err := cfg.Dial(addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if attempt >= cfg.Attempts {
			break
		}
		wait := delay
		if cfg.Jitter > 0 {
			wait += time.Duration(rng.Float64() * cfg.Jitter * float64(delay))
		}
		cfg.Sleep(wait)
		if delay < cfg.Max {
			delay *= 2
			if delay > cfg.Max {
				delay = cfg.Max
			}
		}
	}
	return nil, fmt.Errorf("fl: dialing %s: %d attempts exhausted: %w", addr, cfg.Attempts, lastErr)
}
