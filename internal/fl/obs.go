package fl

import (
	"time"

	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/wire"
)

// serverObs holds the server's pre-resolved telemetry handles. It is
// nil when observability is disabled (no Metrics and no Spans in the
// config), and every method is nil-receiver-safe, so the hot path pays
// one predictable branch — no allocation, no clock read, no atomics —
// when the subsystem is off. BenchmarkObsRound proves the property.
type serverObs struct {
	clock simclock.WallClock
	spans *obs.TraceSink

	// meter is shared by every connection of the session; lastSnap is
	// the meter reading at the previous round boundary, owned by the
	// round goroutine (closeRound is the only reader/writer).
	meter    *wire.Meter
	lastSnap wire.MeterSnapshot

	roundsOK     *obs.Counter
	roundsFailed *obs.Counter

	phaseSample    *obs.Histogram
	phaseBroadcast *obs.Histogram
	phaseCollect   *obs.Histogram
	phaseReconcile *obs.Histogram
	phaseClose     *obs.Histogram
	phaseRound     *obs.Histogram

	// pushNS times the async push→fold→reply cycle; staleness and
	// strikes are the per-device health distributions.
	pushNS    *obs.Histogram
	staleness *obs.Histogram
	strikes   *obs.Histogram

	// maskExpand times secure-aggregation seed-mask expansion (CPU
	// work on the real clock, like journal I/O).
	maskExpand *obs.Histogram

	sampled     *obs.Counter
	responded   *obs.Counter
	dropped     *obs.Counter
	late        *obs.Counter
	duplicates  *obs.Counter
	quarantines *obs.Counter
	probations  *obs.Counter
	reconciled  *obs.Counter

	bytesUp   *obs.Counter
	bytesDown *obs.Counter
	txFrames  [wire.NumCodecs]*obs.Counter
	rxFrames  [wire.NumCodecs]*obs.Counter
}

// newServerObs resolves every instrument once. mode labels the session
// flavour on the round counter ("sync", "async", "secagg"). Returns nil
// when both surfaces are disabled.
func newServerObs(cfg *ServerConfig) *serverObs {
	if cfg.Metrics == nil && cfg.Spans == nil {
		return nil
	}
	r := cfg.Metrics // nil registry hands out nil (no-op) instruments
	mode := "sync"
	switch {
	case cfg.Async.Enabled:
		mode = "async"
	case cfg.SecAgg:
		mode = "secagg"
	}
	o := &serverObs{
		clock: cfg.Clock,
		spans: cfg.Spans,

		roundsOK:     r.Counter("gradsec_rounds_total", "FL rounds closed by mode and result", "mode", mode, "result", "ok"),
		roundsFailed: r.Counter("gradsec_rounds_total", "FL rounds closed by mode and result", "mode", mode, "result", "failed"),

		phaseSample:    r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "sample"),
		phaseBroadcast: r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "broadcast"),
		phaseCollect:   r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "collect"),
		phaseReconcile: r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "reconcile"),
		phaseClose:     r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "close"),
		phaseRound:     r.Histogram("gradsec_phase_ns", "per-phase round latency in nanoseconds", "phase", "round"),

		pushNS:    r.Histogram("gradsec_push_ns", "async push→fold→reply latency in nanoseconds"),
		staleness: r.Histogram("gradsec_staleness", "async update staleness in model versions"),
		strikes:   r.Histogram("gradsec_strikes", "violation strikes at async quarantine time"),

		maskExpand: r.Histogram("gradsec_secagg_ns", "secure-aggregation mask work in nanoseconds", "op", "expand"),

		sampled:     r.Counter("gradsec_clients_total", "per-client round events", "event", "sampled"),
		responded:   r.Counter("gradsec_clients_total", "per-client round events", "event", "responded"),
		dropped:     r.Counter("gradsec_clients_total", "per-client round events", "event", "dropped"),
		late:        r.Counter("gradsec_clients_total", "per-client round events", "event", "late"),
		duplicates:  r.Counter("gradsec_clients_total", "per-client round events", "event", "duplicate"),
		quarantines: r.Counter("gradsec_clients_total", "per-client round events", "event", "quarantined"),
		probations:  r.Counter("gradsec_clients_total", "per-client round events", "event", "probation"),
		reconciled:  r.Counter("gradsec_clients_total", "per-client round events", "event", "reconciled"),

		bytesUp:   r.Counter("gradsec_wire_bytes_total", "wire bytes by direction (up = client→server)", "direction", "up"),
		bytesDown: r.Counter("gradsec_wire_bytes_total", "wire bytes by direction (up = client→server)", "direction", "down"),
	}
	if o.clock == nil {
		o.clock = simclock.Real()
	}
	if r != nil {
		o.meter = &wire.Meter{}
		for c := 0; c < wire.NumCodecs; c++ {
			name := wire.Codec(c).String()
			o.txFrames[c] = r.Counter("gradsec_wire_frames_total", "wire frames by direction and codec", "direction", "down", "codec", name)
			o.rxFrames[c] = r.Counter("gradsec_wire_frames_total", "wire frames by direction and codec", "direction", "up", "codec", name)
		}
	}
	return o
}

// wireMeter returns the session's shared traffic meter (nil when
// disabled); transports treat a nil meter as a no-op.
func (o *serverObs) wireMeter() *wire.Meter {
	if o == nil {
		return nil
	}
	return o.meter
}

// resetMeterBase rebases the per-round byte-delta window to the meter's
// current totals (called when a session opens, so selection handshake
// traffic is excluded from round 0).
func (o *serverObs) resetMeterBase() {
	if o == nil || o.meter == nil {
		return
	}
	o.lastSnap = o.meter.Snapshot()
}

// phaseTimer is one in-flight phase measurement. It is a value type so
// the enabled path allocates nothing beyond the optional span.
type phaseTimer struct {
	o     *serverObs
	h     *obs.Histogram
	sp    *obs.Span
	round int
	start time.Time
}

// startPhase opens a phase: a histogram sample and, when a trace sink
// is attached, a span named after the phase. The histogram is resolved
// from the name here (not at the call site) so callers stay a single
// nil-safe expression with no field access on a possibly-nil receiver.
func (o *serverObs) startPhase(name string, round int) phaseTimer {
	if o == nil {
		return phaseTimer{}
	}
	var h *obs.Histogram
	switch name {
	case "sample":
		h = o.phaseSample
	case "broadcast":
		h = o.phaseBroadcast
	case "collect":
		h = o.phaseCollect
	case "reconcile":
		h = o.phaseReconcile
	case "close":
		h = o.phaseClose
	case "round":
		h = o.phaseRound
	}
	return phaseTimer{o: o, h: h, sp: o.spans.Start(name, round), round: round, start: o.clock.Now()}
}

// end closes the phase measurement. The round lands as the bucket's
// exemplar, so a latency spike in the exposition names the round that
// caused it.
func (t phaseTimer) end() {
	if t.o == nil {
		return
	}
	t.h.ObserveEx(t.o.clock.Now().Sub(t.start).Nanoseconds(), t.round)
	t.sp.End()
}

// setTrace stamps the round-scoped trace ID on spans started from now
// on (0 clears it). Forwarded to the sink; nil-safe end to end.
func (o *serverObs) setTrace(id uint64) {
	if o == nil {
		return
	}
	o.spans.SetTrace(id)
}

// now reads the observability clock; zero time when disabled.
func (o *serverObs) now() time.Time {
	if o == nil {
		return time.Time{}
	}
	return o.clock.Now()
}

// spanStart opens a bare span (no histogram) on the trace sink.
func (o *serverObs) spanStart(name string, round int) *obs.Span {
	if o == nil {
		return nil
	}
	return o.spans.Start(name, round)
}

// observePush records one async push→fold→reply cycle.
func (o *serverObs) observePush(start time.Time) {
	if o == nil {
		return
	}
	o.pushNS.Observe(o.clock.Now().Sub(start).Nanoseconds())
}

// observeStaleness records one async push's staleness in versions.
func (o *serverObs) observeStaleness(v int) {
	if o == nil {
		return
	}
	o.staleness.Observe(int64(v))
}

// instrumentMaskedSum attaches the mask-expansion histogram to a
// round's masked aggregator.
func (o *serverObs) instrumentMaskedSum(msum *secagg.MaskedSum) {
	if o == nil {
		return
	}
	msum.Instrument(o.maskExpand)
}

// observeStrikes records a device's strike count when it crosses the
// async violation threshold.
func (o *serverObs) observeStrikes(n int) {
	if o == nil {
		return
	}
	o.strikes.Observe(int64(n))
}

// noteClose folds one closed round into the counters and stamps the
// round's wire byte deltas into the stats. Called from closeRound — the
// single commit point every mode funnels through — so per-event
// counters derive from the round's accounting without touching the
// per-arrival hot path.
func (o *serverObs) noteClose(stats *RoundStats, ok bool) {
	if o == nil {
		return
	}
	if o.meter != nil {
		snap := o.meter.Snapshot()
		stats.BytesUp = snap.RxBytes - o.lastSnap.RxBytes
		stats.BytesDown = snap.TxBytes - o.lastSnap.TxBytes
		o.bytesUp.Add(stats.BytesUp)
		o.bytesDown.Add(stats.BytesDown)
		for c := 0; c < wire.NumCodecs; c++ {
			o.txFrames[c].Add(snap.TxFrames[c] - o.lastSnap.TxFrames[c])
			o.rxFrames[c].Add(snap.RxFrames[c] - o.lastSnap.RxFrames[c])
		}
		o.lastSnap = snap
	}
	if ok {
		o.roundsOK.Inc()
	} else {
		o.roundsFailed.Inc()
	}
	o.sampled.Add(uint64(stats.Sampled))
	o.responded.Add(uint64(stats.Responded))
	o.dropped.Add(uint64(stats.Dropped))
	o.late.Add(uint64(stats.LateDiscarded))
	o.duplicates.Add(uint64(stats.Duplicates))
	o.quarantines.Add(uint64(stats.Quarantined))
	o.probations.Add(uint64(stats.Probation))
	o.reconciled.Add(uint64(stats.Reconciled))
}
