package fl

import (
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// e2eConfig is the shared session shape for the transport-equivalence
// test: every client participates in every round, so the only variable
// between the two runs is the transport itself.
func e2eConfig(codec wire.Codec) ServerConfig {
	return ServerConfig{Rounds: 3, MinClients: 3, Codec: codec}
}

// e2eDeltas are exact dyadic values: their sums and means are exact in
// float64 regardless of client arrival order, so the final model is
// bitwise reproducible across transports.
var e2eDeltas = []float64{1, 2, 4}

func e2eState() []*tensor.Tensor { return newState(0, 8) }

// runPipeE2E runs the session over in-memory pipes.
func runPipeE2E(t *testing.T, codec wire.Codec) []*tensor.Tensor {
	t.Helper()
	state := e2eState()
	srv := NewServer(state, e2eConfig(codec))
	trainers := make([]*testTrainer, len(e2eDeltas))
	for i, d := range e2eDeltas {
		trainers[i] = newTestTrainer("mem", false, d)
		trainers[i].maxCodec = codec
	}
	if _, err := runSession(t, srv, trainers); err != nil {
		t.Fatal(err)
	}
	return state
}

// runTCPE2E runs the same session over real TCP on loopback: the server
// accepts in-process connections from concurrently dialling clients.
func runTCPE2E(t *testing.T, codec wire.Codec) []*tensor.Tensor {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	clientErrs := make([]error, len(e2eDeltas))
	for i, d := range e2eDeltas {
		wg.Add(1)
		go func(i int, d float64) {
			defer wg.Done()
			conn, err := Dial(l.Addr())
			if err != nil {
				clientErrs[i] = err
				return
			}
			defer conn.Close()
			tr := newTestTrainer("tcp", false, d)
			tr.maxCodec = codec
			client := NewClient(conn, tr)
			client.MaxCodec = codec
			clientErrs[i] = client.Run()
		}(i, d)
	}

	conns := make([]Conn, 0, len(e2eDeltas))
	for len(conns) < len(e2eDeltas) {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	state := e2eState()
	srv := NewServer(state, e2eConfig(codec))
	if _, err := srv.Run(conns); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("tcp client %d: %v", i, err)
		}
	}
	return state
}

// TestTCPSessionMatchesInMemorySession runs one multi-client session
// over fl.Pipe and one over real loopback TCP — under every codec — and
// asserts the final global models are bitwise identical between the two
// transports. For f64 this also pins the exact pre-codec arithmetic;
// the deltas are constant tensors, so q8/f32 sessions stay exact too.
func TestTCPSessionMatchesInMemorySession(t *testing.T) {
	for _, codec := range []wire.Codec{wire.CodecF64, wire.CodecF32, wire.CodecQ8} {
		t.Run(codec.String(), func(t *testing.T) {
			viaPipe := runPipeE2E(t, codec)
			viaTCP := runTCPE2E(t, codec)

			if len(viaPipe) != len(viaTCP) {
				t.Fatalf("tensor counts differ: %d vs %d", len(viaPipe), len(viaTCP))
			}
			for i := range viaPipe {
				if !viaPipe[i].SameShape(viaTCP[i]) {
					t.Fatalf("tensor %d shapes differ", i)
				}
				for j := range viaPipe[i].Data {
					if viaPipe[i].Data[j] != viaTCP[i].Data[j] {
						t.Fatalf("tensor %d elem %d: pipe %v != tcp %v",
							i, j, viaPipe[i].Data[j], viaTCP[i].Data[j])
					}
				}
			}
			// Sanity: 3 rounds of mean(1,2,4) each, accumulated with the
			// exact float operations the engine uses (reciprocal multiply,
			// repeated add).
			sum, n := 7.0, 3.0 // variables: Go folds constant float math exactly
			mean := sum * (1.0 / n)
			want := 0.0
			for r := 0; r < 3; r++ {
				want += mean
			}
			if got := viaPipe[0].Data[0]; got != want {
				t.Fatalf("final state = %v, want %v", got, want)
			}
		})
	}
}
