package fl

import (
	"strings"
	"sync"
	"testing"
)

// hookRecorder counts hook firings by name, from any goroutine.
type hookRecorder struct {
	mu    sync.Mutex
	fired map[string]int
}

func newHookRecorder() *hookRecorder {
	return &hookRecorder{fired: make(map[string]int)}
}

func (h *hookRecorder) note(name string) {
	h.mu.Lock()
	h.fired[name]++
	h.mu.Unlock()
}

func (h *hookRecorder) count(name string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.fired[name]
}

func (h *hookRecorder) hooks() Hooks {
	return Hooks{
		RoundStarted:      func(int, []string) { h.note("RoundStarted") },
		UpdateFolded:      func(int, string) { h.note("UpdateFolded") },
		UpdatePushed:      func(int, string, bool) { h.note("UpdatePushed") },
		ClientQuarantined: func(string, error) { h.note("ClientQuarantined") },
		ClientProbationed: func(string, error) { h.note("ClientProbationed") },
		RoundClosed:       func(RoundStats) { h.note("RoundClosed") },
	}
}

// TestHookParitySyncVsAsync: the two session modes surface the same
// lifecycle through the same hooks. Each case runs a fleet with one
// failing device and asserts exactly the expected hook set fires —
// UpdatePushed is the one deliberate asymmetry (async only), and
// probation replaces quarantine under QuarantineRounds in both modes.
func TestHookParitySyncVsAsync(t *testing.T) {
	cases := []struct {
		name             string
		async            bool
		quarantineRounds int
		want             []string // hooks that must fire at least once
		never            []string // hooks that must not fire
	}{
		{
			name:  "sync quarantine",
			want:  []string{"RoundStarted", "UpdateFolded", "ClientQuarantined", "RoundClosed"},
			never: []string{"UpdatePushed", "ClientProbationed"},
		},
		{
			name:             "sync probation",
			quarantineRounds: 1,
			want:             []string{"RoundStarted", "UpdateFolded", "ClientProbationed", "RoundClosed"},
			never:            []string{"UpdatePushed", "ClientQuarantined"},
		},
		{
			name:  "async quarantine",
			async: true,
			want:  []string{"RoundStarted", "UpdateFolded", "UpdatePushed", "ClientQuarantined", "RoundClosed"},
			never: []string{"ClientProbationed"},
		},
		{
			name:             "async probation",
			async:            true,
			quarantineRounds: 1,
			want:             []string{"RoundStarted", "UpdateFolded", "UpdatePushed", "ClientProbationed", "RoundClosed"},
			never:            []string{"ClientQuarantined"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := newHookRecorder()
			if tc.async {
				runAsyncParityFleet(t, rec, tc.quarantineRounds)
			} else {
				runSyncParityFleet(t, rec, tc.quarantineRounds)
			}
			for _, name := range tc.want {
				if rec.count(name) == 0 {
					t.Errorf("%s never fired (fired: %v)", name, rec.fired)
				}
			}
			for _, name := range tc.never {
				if n := rec.count(name); n != 0 {
					t.Errorf("%s fired %d times, want 0", name, n)
				}
			}
		})
	}
}

// runSyncParityFleet drives a synchronous fleet with one device that
// fails training at round 1.
func runSyncParityFleet(t *testing.T, rec *hookRecorder, quarantineRounds int) {
	t.Helper()
	bad := newTestTrainer("bad", false, 1)
	bad.failOnRound = 1
	trainers := []Trainer{
		newTestTrainer("a", false, 1),
		newTestTrainer("b", false, 2),
		bad,
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds:           3,
		MinClients:       1,
		QuarantineRounds: quarantineRounds,
		Hooks:            rec.hooks(),
	})
	serverErr, _, _, wg := startSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// runAsyncParityFleet drives an asynchronous session with hand-driven
// peers so the failure ordering is deterministic: bad reports a client
// error after the initial broadcast, then a pushes the session to its
// version goal.
func runAsyncParityFleet(t *testing.T, rec *hookRecorder, quarantineRounds int) {
	t.Helper()
	benched := make(chan struct{}, 1)
	hooks := rec.hooks()
	hooks.ClientQuarantined = func(string, error) {
		rec.note("ClientQuarantined")
		benched <- struct{}{}
	}
	hooks.ClientProbationed = func(string, error) {
		rec.note("ClientProbationed")
		benched <- struct{}{}
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds:           2,
		MinClients:       2,
		QuarantineRounds: quarantineRounds,
		Hooks:            hooks,
		Async:            AsyncConfig{Enabled: true, GoalUpdates: 1},
	})
	connA, peerA := Pipe()
	connB, peerB := Pipe()
	connBad, peerBad := Pipe()
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{connA, connB, connBad})
		serverErr <- err
	}()
	a := dialAsyncPeer(t, "a", peerA)
	b := dialAsyncPeer(t, "b", peerB)
	bad := dialAsyncPeer(t, "bad", peerBad)
	ma := a.recvModel()
	mb := b.recvModel()
	_ = bad.recvModel()

	// bad reports a training failure; wait for the bench hook so its
	// standing is settled before the session advances.
	if err := peerBad.Send(&ErrorMsg{Text: "injected failure"}); err != nil {
		t.Fatal(err)
	}
	<-benched

	// a's pushes close both version windows; b's single (possibly
	// stale-folded) push is absorbed by whichever window or drain state
	// it lands in. Every surviving peer then receives Done.
	a.push(ma, 0.5)
	ma2 := a.recvModel()
	a.push(ma2, 0.5)
	b.push(mb, 0.25)
	a.recvDone()
	b.recvDone()
	if quarantineRounds > 0 {
		bad.recvDone() // probation keeps the connection open
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	_ = peerA.Close()
	_ = peerB.Close()
	_ = peerBad.Close()
}

// TestAsyncDrainQuarantineHook: a device whose connection dies while
// the server drains the final version goes through the full quarantine
// path — hook, journal, history — instead of silently vanishing.
// Regression test for the drain path short-circuiting quarantineAt.
func TestAsyncDrainQuarantineHook(t *testing.T) {
	rec := newHookRecorder()
	var quarantinedDev string
	var reasonText string
	var mu sync.Mutex
	hooks := rec.hooks()
	hooks.ClientQuarantined = func(device string, reason error) {
		rec.note("ClientQuarantined")
		mu.Lock()
		quarantinedDev = device
		reasonText = reason.Error()
		mu.Unlock()
	}
	// The final version's close marks the start of the drain: only a
	// failure after this point exercises the drain path.
	closed := make(chan struct{}, 1)
	hooks.RoundClosed = func(RoundStats) {
		rec.note("RoundClosed")
		closed <- struct{}{}
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds:     1,
		MinClients: 2,
		Hooks:      hooks,
		Async:      AsyncConfig{Enabled: true, GoalUpdates: 1},
	})
	connA, peerA := Pipe()
	connB, peerB := Pipe()
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{connA, connB})
		serverErr <- err
	}()
	a := dialAsyncPeer(t, "a", peerA)
	b := dialAsyncPeer(t, "b", peerB)
	ma := a.recvModel()
	_ = b.recvModel()

	// a's push reaches the goal and ends the session; b dies while the
	// server waits out the drain for its outstanding push.
	a.push(ma, 0.5)
	<-closed
	_ = peerB.Close()

	a.recvDone()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	if rec.count("ClientQuarantined") != 1 {
		t.Fatalf("ClientQuarantined fired %d times, want 1", rec.count("ClientQuarantined"))
	}
	mu.Lock()
	defer mu.Unlock()
	if quarantinedDev != "b" {
		t.Fatalf("quarantined %q, want b", quarantinedDev)
	}
	if !strings.Contains(reasonText, "drain") {
		t.Fatalf("quarantine reason %q does not mention the drain", reasonText)
	}
	// The history must record the loss like any other quarantine.
	if h := srv.history["b"]; h == nil || !h.quarantined {
		t.Fatal("device history does not record the drain-time quarantine")
	}
}
