package fl

import (
	"path/filepath"
	"testing"

	"github.com/gradsec/gradsec/internal/journal"
)

// startAsyncUntilCrash runs RunAsync on a goroutine that converts a
// crashSentinel panic into an Abort — the async sibling of
// runUntilCrash, but hand-driven: the caller owns the client conns and
// decides exactly when each push happens.
func startAsyncUntilCrash(srv *Server, conns []Conn) chan any {
	out := make(chan any, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				if c, ok := p.(crashSentinel); ok {
					srv.Abort()
					out <- c
					return
				}
				panic(p)
			}
		}()
		_, err := srv.RunAsync(conns)
		out <- err
	}()
	return out
}

// TestAsyncWatermarkRecovery: an asynchronous session crashes after a
// fold of version 2 was journaled but before the version watermarked;
// recovery replays the two committed watermarks bit-exactly, resumes at
// version 2, and the rejoined fleet finishes the remaining versions.
// GoalUpdates is 1, so every applied version equals exactly one pushed
// update and the whole model history is integer-exact.
func TestAsyncWatermarkRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "async.journal")
	cfg := ServerConfig{
		Rounds:     4, // model versions in async mode
		MinClients: 2,
		Async:      AsyncConfig{Enabled: true, GoalUpdates: 1},
	}

	// Phase 1 — the doomed process: versions 0 and 1 watermark (one
	// push each), then a's fold for version 2 triggers the crash before
	// the version commits.
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.Journal = j
	ccfg.Hooks = Hooks{UpdateFolded: func(version int, _ string) {
		if version == 2 {
			panic(crashSentinel{version})
		}
	}}
	srv := NewServer(newState(0), ccfg)
	sa, ca := Pipe()
	sb, cb := Pipe()
	crashed := startAsyncUntilCrash(srv, []Conn{sa, sb})
	a := dialAsyncPeer(t, "a", ca)
	b := dialAsyncPeer(t, "b", cb)
	ma := a.recvModel() // version 0
	mb := b.recvModel() // version 0
	a.push(ma, 1)       // watermarks version 0: state = 1
	ma = a.recvModel()  // re-armed with version 1
	b.push(mb, 2)       // watermarks version 1: state = 3
	_ = b.recvModel()   // re-armed with version 2
	a.push(ma, 4)       // folds into version 2 — crash fires here
	if c, ok := (<-crashed).(crashSentinel); !ok || c.round != 2 {
		t.Fatalf("session ended without crashing at version 2: %v", c)
	}
	_ = j.Close()

	// Phase 2 — recovery: committed watermarks rebuild the model, the
	// uncommitted version-2 fold is discarded, and the session resumes
	// at version 2.
	j2, err := journal.Append(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Journal = j2
	srv2, err := Recover(jpath, newState(0), rcfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := srv2.NextRound(); got != 2 {
		t.Fatalf("NextRound = %d, want 2 (the unwatermarked version)", got)
	}
	if got := len(srv2.Trace()); got != 2 {
		t.Fatalf("recovered trace has %d versions, want 2", got)
	}

	sa2, ca2 := Pipe()
	sb2, cb2 := Pipe()
	done := startAsyncUntilCrash(srv2, []Conn{sa2, sb2})
	a2 := dialAsyncPeer(t, "a", ca2)
	b2 := dialAsyncPeer(t, "b", cb2)
	ma2 := a2.recvModel()
	if int(ma2.Version) != 2 {
		t.Fatalf("resumed distribution at version %d, want 2", ma2.Version)
	}
	for _, ten := range ma2.Plain {
		for _, v := range ten.Data {
			if v != 3 {
				t.Fatalf("recovered model value %v, want 3 (the two committed watermarks)", v)
			}
		}
	}
	mb2 := b2.recvModel() // version 2, from the resumed distribution
	a2.push(ma2, 8)       // watermarks version 2: state = 11
	ma2 = a2.recvModel()  // version 3
	a2.push(ma2, 16)      // watermarks version 3: state = 27 — session complete
	final := a2.recvDone()
	// a's Done proves the last version applied and the drain began;
	// b's late push is now deterministically acknowledged, not folded.
	b2.push(mb2, 32)
	for _, ten := range final.Final {
		for _, v := range ten.Data {
			if v != 27 {
				t.Fatalf("final value %v, want 27", v)
			}
		}
	}
	_ = b2.recvDone()
	if err, ok := (<-done).(error); ok && err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	trace := srv2.Trace()
	if len(trace) != 4 {
		t.Fatalf("trace has %d versions, want 4", len(trace))
	}
	for i, st := range trace {
		if st.Round != i {
			t.Fatalf("trace[%d].Round = %d", i, st.Round)
		}
	}
	_ = j2.Close()
}
