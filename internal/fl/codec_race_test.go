package fl

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/wire"
)

// runCodecSwitchRace drives the adaptive-downgrade race against a
// straggling-but-healthy client over the given pair of transports:
//
//   - round 0: the fast client responds (tiny update → the norm falls
//     below the adaptive threshold), the straggler blocks in training,
//     and the deadline drops it. Closing the round emits CodecSwitch to
//     both q8-capable clients.
//   - the straggler is then released: its round-0 GradUp — encoded in
//     the pre-switch f64 codec — is already in flight when the server
//     has switched its send side to q8. The server's receive side must
//     keep decoding f64 until the straggler's CodecSwitch ack arrives,
//     so the stale update decodes cleanly and is discarded as late
//     (never a decode failure, never a quarantine).
//   - round 1: the straggler answers in q8 and folds normally.
//
// Regression: the server used to flip both codec directions the moment
// it emitted CodecSwitch, so the racing f64 frame was decoded as q8 —
// a transport error that permanently quarantined a healthy device.
func runCodecSwitchRace(t *testing.T, fastConns, slowConns func() (server, client Conn)) {
	t.Helper()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)

	fast := newTestTrainer("fast", false, 0.25)
	slow := newGateTrainer("slow", 0.75, 0)
	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second,
		AdaptiveCodec: 10, QuarantineRounds: 2,
		Clock: clk, Hooks: eventHooks(events),
	})

	fastSrv, fastCli := fastConns()
	slowSrv, slowCli := slowConns()
	clients := []*Client{NewClient(fastCli, fast), NewClient(slowCli, slow)}
	clientErrs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range clients {
		clients[i].MaxCodec = wire.CodecQ8
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = clients[i].Run()
		}(i)
	}
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run([]Conn{fastSrv, slowSrv})
		serverErr <- err
	}()

	// Round 0: fast folds, slow blocks; fire the deadline.
	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}

	// Round 1 has started, so the CodecSwitch is on the wire while the
	// straggler still owes its f64 round-0 update. Release it: the stale
	// update must decode and be discarded — then it answers round 1 in
	// the new codec.
	waitEvent(t, events, "started")
	slow.release(0)
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 2 || closed.stats.LateDiscarded != 1 {
		t.Fatalf("round 1 stats = %+v, want 2 responders and 1 late discard", closed.stats)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for r, st := range srv.Trace() {
		if st.Quarantined != 0 || st.Probation != 0 {
			t.Fatalf("round %d stats = %+v: the healthy straggler was benched", r, st)
		}
	}
	for i, c := range clients {
		if c.CodecSwitches != 1 || c.NegotiatedCodec != wire.CodecQ8 {
			t.Fatalf("client %d ended on %s after %d switches, want q8 after 1", i, c.NegotiatedCodec, c.CodecSwitches)
		}
	}
	if clients[1].Rounds != 2 {
		t.Fatalf("straggler trained %d rounds, want 2 (survived the downgrade)", clients[1].Rounds)
	}
	// Round 0 applied fast's +0.25 alone; round 1 mean(0.25, 0.75) =
	// +0.5. Both values are q8-exact.
	if got := state[0].Data[0]; got != 0.75 {
		t.Fatalf("state = %v, want 0.75", got)
	}
}

// TestCodecSwitchRaceStragglerSurvives runs the downgrade race over
// in-memory pipes.
func TestCodecSwitchRaceStragglerSurvives(t *testing.T) {
	pipe := func() (Conn, Conn) { return Pipe() }
	runCodecSwitchRace(t, pipe, pipe)
}

// TestCodecSwitchRaceTCP runs the same race over real loopback TCP —
// the transport where an in-flight old-codec frame is genuinely
// buffered in the kernel when the switch is emitted.
func TestCodecSwitchRaceTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tcp := func() (Conn, Conn) {
		type dialRes struct {
			conn Conn
			err  error
		}
		dialed := make(chan dialRes, 1)
		go func() {
			c, err := Dial(l.Addr())
			dialed <- dialRes{c, err}
		}()
		server, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		d := <-dialed
		if d.err != nil {
			t.Fatal(d.err)
		}
		return server, d.conn
	}
	runCodecSwitchRace(t, tcp, tcp)
}

// TestSampleCohortsInvariantToProbation: the per-round sample draw
// consumes a full-roster permutation no matter how many clients are
// live, so a probation excursion must not shift any later round's
// cohort.
//
// Regression: sampling used to permute only the live subset, so one
// probationed round changed the RNG consumption and every cohort after
// it diverged from the healthy run of the same seed.
func TestSampleCohortsInvariantToProbation(t *testing.T) {
	run := func(failDevice string) ([][]string, error) {
		var cohorts [][]string
		srv := NewServer(newState(0), ServerConfig{
			Rounds: 6, SampleCount: 2, SampleSeed: 11, QuarantineRounds: 1,
			Hooks: Hooks{RoundStarted: func(_ int, sampled []string) {
				cohorts = append(cohorts, append([]string(nil), sampled...))
			}},
		})
		trainers := make([]Trainer, 4)
		for i := range trainers {
			tr := newTestTrainer([]string{"c0", "c1", "c2", "c3"}[i], false, float64(i+1))
			if tr.id == failDevice {
				tr.failOnRound = 0
			}
			trainers[i] = tr
		}
		serverErr, _, _, wg := startSession(srv, trainers)
		err := <-serverErr
		wg.Wait()
		return cohorts, err
	}

	healthy, err := run("")
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy) != 6 {
		t.Fatalf("healthy run sampled %d rounds, want 6", len(healthy))
	}
	// Fail a device the healthy run sampled in round 0: sampling is
	// seed-deterministic, so the rerun samples it there too and benches
	// it for round 1.
	failer := healthy[0][0]
	benched, err := run(failer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(benched[0], healthy[0]) {
		t.Fatalf("round 0 cohorts diverged before any failure: %v vs %v", benched[0], healthy[0])
	}
	for _, d := range benched[1] {
		if d == failer {
			t.Fatalf("round 1 sampled %s while on probation", failer)
		}
	}
	// From re-admission on, the live set matches the healthy run again —
	// and so must every cohort.
	for r := 2; r < 6; r++ {
		if !reflect.DeepEqual(benched[r], healthy[r]) {
			t.Fatalf("round %d cohort %v diverged from healthy %v after probation ended", r, benched[r], healthy[r])
		}
	}
}
