package fl

import (
	"testing"

	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// FuzzDecodeMessage throws arbitrary payloads at the protocol decoder
// under every message type and codec: it must never panic, and any
// message it accepts must survive a re-encode/re-decode cycle.
func FuzzDecodeMessage(f *testing.F) {
	seeds := []Message{
		&Challenge{Nonce: []byte{1, 2}, ServerPub: []byte{3}, RequireTEE: true, Codec: wire.CodecQ8},
		&Attest{DeviceID: "d", HasTEE: true, ClientPub: []byte{9}, Codec: wire.CodecF32},
		&Reject{Reason: "no"},
		&ModelDown{Round: 2, Plain: []*tensor.Tensor{nil, tensor.Full(1.5, 2, 2)}, Plan: []byte{1}},
		&GradUp{Round: 2, Plain: []*tensor.Tensor{tensor.Full(-0.25, 3)}, Examples: 7},
		&Done{Final: []*tensor.Tensor{tensor.Full(2, 1)}},
		&ErrorMsg{Text: "boom"},
		&MaskedUp{Round: 1, Levels: []*wire.U64Tensor{nil, {Shape: []int{2}, Levels: []uint64{1, 1 << 63}}}, Examples: 3},
		&MaskRecon{Round: 1, Dropped: []string{"d1", "d2"}},
		&MaskShares{Round: 1, Shares: []secagg.PairShare{{Device: "d1", Seed: [32]byte{7}}}},
	}
	for _, m := range seeds {
		for _, c := range []wire.Codec{wire.CodecF64, wire.CodecF32, wire.CodecQ8} {
			f.Add(byte(m.Kind()), uint8(c), EncodeMessageCodec(m, c))
		}
	}
	f.Add(byte(MsgModelDown), uint8(wire.CodecF64), []byte{0xFF})
	f.Add(byte(200), uint8(wire.CodecF64), []byte{})

	f.Fuzz(func(t *testing.T, mt byte, codec uint8, payload []byte) {
		c := wire.Codec(codec % 3)
		m, err := DecodeMessageCodec(MsgType(mt), payload, c)
		if err != nil {
			return
		}
		re := EncodeMessageCodec(m, c)
		m2, err := DecodeMessageCodec(MsgType(mt), re, c)
		if err != nil {
			t.Fatalf("accepted %T failed to re-decode: %v", m, err)
		}
		if m2.Kind() != m.Kind() {
			t.Fatalf("kind drifted: %v -> %v", m.Kind(), m2.Kind())
		}
	})
}
