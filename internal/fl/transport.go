package fl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/wire"
)

// Conn is a bidirectional, message-oriented connection between an FL
// server and one client. Send and SendFrame are safe for concurrent use;
// Recv must be called from a single goroutine at a time.
type Conn interface {
	// Send transmits one message, encoding tensors with the connection's
	// negotiated codec.
	Send(m Message) error
	// SendFrame transmits a message payload that was already encoded
	// (with EncodeMessageCodec and this connection's codec). The payload
	// is not copied and must not be mutated afterwards — broadcast
	// senders share one buffer across many connections.
	SendFrame(mt MsgType, payload []byte) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes. A frame that arrives intact but fails to decode is
	// reported wrapped in ErrDecode; the stream's length-prefixed
	// framing survives such a failure, so Recv may be called again.
	Recv() (Message, error)
	// SetCodec installs the tensor codec negotiated during the handshake
	// for all subsequent Send/SendFrame/Recv. Connections start at the
	// uncompressed CodecF64. Equivalent to SetSendCodec + SetRecvCodec.
	SetCodec(c wire.Codec)
	// SetSendCodec switches only the encoding codec for subsequent
	// Send/SendFrame calls, leaving Recv untouched. An adaptive server
	// flips its send side the moment it issues a CodecSwitch…
	SetSendCodec(c wire.Codec)
	// SetRecvCodec switches only the decoding codec for subsequent Recv
	// calls. …and flips its receive side only when the client's
	// CodecSwitch ack arrives, so in-flight frames encoded under the old
	// codec still decode correctly (see the CodecSwitch ordering rule in
	// messages.go).
	SetRecvCodec(c wire.Codec)
	// Close releases the connection; it is safe to call twice.
	Close() error
}

// DeadlineConn is implemented by connections with enforceable per-
// operation I/O deadlines (the TCP transport). A read timeout bounds
// each Recv, a write timeout each Send/SendFrame; 0 disables either.
type DeadlineConn interface {
	Conn
	SetReadTimeout(d time.Duration)
	SetWriteTimeout(d time.Duration)
}

// ErrConnClosed is returned by Send after Close.
var ErrConnClosed = errors.New("fl: connection closed")

// ErrDecode marks a Recv failure where the frame arrived intact but its
// payload would not decode (codec mismatch, malformed message). Unlike
// transport errors the connection is still usable — framing is length-
// prefixed — so the engine treats these as client protocol faults
// (probationable) rather than a lost transport (permanent).
var ErrDecode = errors.New("fl: frame decode failed")

// meteredConn is the optional interface transports implement to accept
// a wire.Meter for byte/frame accounting. Meters attach per connection
// but are typically shared session-wide.
type meteredConn interface {
	setMeter(m *wire.Meter)
}

// SetMeter attaches a traffic meter to a connection. Transports that do
// not support metering (external Conn implementations, recovery
// placeholders) silently ignore it — metering is observability, never a
// protocol requirement. A nil meter detaches.
func SetMeter(c Conn, m *wire.Meter) {
	if mc, ok := c.(meteredConn); ok {
		mc.setMeter(m)
	}
}

// decodeFrame decodes one received frame, tagging failures with
// ErrDecode so callers can distinguish a poisoned payload from a dead
// transport.
func decodeFrame(mt MsgType, payload []byte, codec wire.Codec) (Message, error) {
	m, err := DecodeMessageCodec(mt, payload, codec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}
	return m, nil
}

// maxReadScratch caps the per-connection receive buffer retained across
// frames (larger payloads are read fine, just not kept).
const maxReadScratch = 8 << 20

// pipeConn is an in-memory Conn built on channels. Messages still pass
// through the full wire codec so in-process tests exercise encoding.
type pipeConn struct {
	send      chan<- frame
	recv      <-chan frame
	closeOnce sync.Once
	closed    chan struct{}
	peerDone  <-chan struct{}
	sendCodec atomic.Uint32
	recvCodec atomic.Uint32
	meter     atomic.Pointer[wire.Meter]
}

type frame struct {
	mt      MsgType
	payload []byte
}

// Pipe returns a connected in-memory transport pair.
func Pipe() (Conn, Conn) {
	ab := make(chan frame, 16)
	ba := make(chan frame, 16)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	a := &pipeConn{send: ab, recv: ba, closed: aClosed, peerDone: bClosed}
	b := &pipeConn{send: ba, recv: ab, closed: bClosed, peerDone: aClosed}
	return a, b
}

// SetCodec implements Conn.
func (c *pipeConn) SetCodec(codec wire.Codec) {
	c.sendCodec.Store(uint32(codec))
	c.recvCodec.Store(uint32(codec))
}

// SetSendCodec implements Conn.
func (c *pipeConn) SetSendCodec(codec wire.Codec) { c.sendCodec.Store(uint32(codec)) }

// SetRecvCodec implements Conn.
func (c *pipeConn) SetRecvCodec(codec wire.Codec) { c.recvCodec.Store(uint32(codec)) }

// setMeter implements meteredConn.
func (c *pipeConn) setMeter(m *wire.Meter) { c.meter.Store(m) }

// Send implements Conn.
func (c *pipeConn) Send(m Message) error {
	return c.SendFrame(m.Kind(), EncodeMessageCodec(m, wire.Codec(c.sendCodec.Load())))
}

// SendFrame implements Conn. The payload travels by reference: the
// receiver's decode copies everything out, so sharing one payload
// across many pipes is safe as long as no sender mutates it.
func (c *pipeConn) SendFrame(mt MsgType, payload []byte) error {
	// Check for closure first: the select below would otherwise pick the
	// (buffered) send case at random even when already closed.
	select {
	case <-c.closed:
		return ErrConnClosed
	case <-c.peerDone:
		return ErrConnClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrConnClosed
	case <-c.peerDone:
		return ErrConnClosed
	case c.send <- frame{mt: mt, payload: payload}:
		if m := c.meter.Load(); m != nil {
			// 5 = header parity with the TCP framing (1 type + 4 length).
			m.CountTx(wire.Codec(c.sendCodec.Load()), 5+len(payload))
		}
		return nil
	}
}

// recvFrame decodes one frame, metering it first.
func (c *pipeConn) recvFrame(f frame) (Message, error) {
	codec := wire.Codec(c.recvCodec.Load())
	if m := c.meter.Load(); m != nil {
		m.CountRx(codec, 5+len(f.payload))
	}
	return decodeFrame(f.mt, f.payload, codec)
}

// Recv implements Conn.
func (c *pipeConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case f := <-c.recv:
		return c.recvFrame(f)
	case <-c.peerDone:
		// Drain anything already queued before reporting EOF.
		select {
		case f := <-c.recv:
			return c.recvFrame(f)
		default:
			return nil, io.EOF
		}
	}
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// tcpConn adapts a net.Conn to the Message framing. Outgoing messages
// are encoded into a pooled buffer and written with a single Write;
// incoming frames decode from a per-connection scratch buffer, so a
// steady session allocates only the decoded messages themselves.
type tcpConn struct {
	nc        net.Conn
	writeMu   sync.Mutex
	closeOnce sync.Once
	sendCodec atomic.Uint32
	recvCodec atomic.Uint32
	readTO    atomic.Int64 // read timeout, ns; 0 = none
	writeTO   atomic.Int64 // write timeout, ns; 0 = none
	meter     atomic.Pointer[wire.Meter]
	readBuf   []byte // frame scratch, owned by the single Recv caller
}

// NewNetConn wraps an established net.Conn (TCP or otherwise). The
// returned Conn also implements DeadlineConn.
func NewNetConn(nc net.Conn) Conn { return &tcpConn{nc: nc} }

// Dial connects to an FL server at addr over TCP.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	return NewNetConn(nc), nil
}

// SetCodec implements Conn.
func (c *tcpConn) SetCodec(codec wire.Codec) {
	c.sendCodec.Store(uint32(codec))
	c.recvCodec.Store(uint32(codec))
}

// SetSendCodec implements Conn.
func (c *tcpConn) SetSendCodec(codec wire.Codec) { c.sendCodec.Store(uint32(codec)) }

// SetRecvCodec implements Conn.
func (c *tcpConn) SetRecvCodec(codec wire.Codec) { c.recvCodec.Store(uint32(codec)) }

// setMeter implements meteredConn.
func (c *tcpConn) setMeter(m *wire.Meter) { c.meter.Store(m) }

// SetReadTimeout implements DeadlineConn.
func (c *tcpConn) SetReadTimeout(d time.Duration) { c.readTO.Store(int64(d)) }

// SetWriteTimeout implements DeadlineConn.
func (c *tcpConn) SetWriteTimeout(d time.Duration) { c.writeTO.Store(int64(d)) }

// armWriteDeadline applies (or clears) the write deadline for one write.
// Callers hold writeMu.
func (c *tcpConn) armWriteDeadline() {
	if d := time.Duration(c.writeTO.Load()); d > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(d))
	} else {
		_ = c.nc.SetWriteDeadline(time.Time{})
	}
}

// Send implements Conn: encode into a pooled frame buffer, one Write.
func (c *tcpConn) Send(m Message) error {
	w := wire.GetWriter()
	w.BeginFrame(byte(m.Kind()))
	w.Codec = wire.Codec(c.sendCodec.Load())
	m.encode(w)
	buf, err := w.Frame()
	if err == nil {
		c.writeMu.Lock()
		c.armWriteDeadline()
		_, err = c.nc.Write(buf)
		c.writeMu.Unlock()
		if err != nil {
			err = fmt.Errorf("wire: writing frame: %w", err)
		} else if mtr := c.meter.Load(); mtr != nil {
			mtr.CountTx(w.Codec, len(buf))
		}
	}
	wire.PutWriter(w)
	return err
}

// SendFrame implements Conn: header + shared payload go out in a single
// writev, so broadcasts neither copy the payload nor split the header
// into its own packet.
func (c *tcpConn) SendFrame(mt MsgType, payload []byte) error {
	if len(payload) > wire.MaxFrame {
		return fmt.Errorf("%w: %d bytes", wire.ErrFrameTooLarge, len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(mt)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	bufs := net.Buffers{hdr[:], payload}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.armWriteDeadline()
	if _, err := bufs.WriteTo(c.nc); err != nil {
		return fmt.Errorf("wire: writing frame: %w", err)
	}
	if m := c.meter.Load(); m != nil {
		m.CountTx(wire.Codec(c.sendCodec.Load()), 5+len(payload))
	}
	return nil
}

// Recv implements Conn.
func (c *tcpConn) Recv() (Message, error) {
	if d := time.Duration(c.readTO.Load()); d > 0 {
		_ = c.nc.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = c.nc.SetReadDeadline(time.Time{})
	}
	mt, payload, err := wire.ReadFrameInto(c.nc, c.readBuf)
	if err != nil {
		return nil, err
	}
	// Keep the grown scratch for the next frame, but never pin more
	// than maxReadScratch per connection: one huge frame must not hold
	// its capacity for the connection's lifetime.
	if cap(payload) > cap(c.readBuf) && cap(payload) <= maxReadScratch {
		c.readBuf = payload
	}
	codec := wire.Codec(c.recvCodec.Load())
	if m := c.meter.Load(); m != nil {
		m.CountRx(codec, 5+len(payload))
	}
	return decodeFrame(MsgType(mt), payload, codec)
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.nc.Close() })
	return err
}

// Listener accepts FL client connections over TCP.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener on addr ("host:port"; ":0" for ephemeral).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listening on %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next client connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(nc), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
