package fl

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/gradsec/gradsec/internal/wire"
)

// Conn is a bidirectional, message-oriented connection between an FL
// server and one client.
type Conn interface {
	// Send transmits one message.
	Send(m Message) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes.
	Recv() (Message, error)
	// Close releases the connection; it is safe to call twice.
	Close() error
}

// ErrConnClosed is returned by Send after Close.
var ErrConnClosed = errors.New("fl: connection closed")

// pipeConn is an in-memory Conn built on channels. Messages still pass
// through the full wire codec so in-process tests exercise encoding.
type pipeConn struct {
	send      chan<- frame
	recv      <-chan frame
	closeOnce sync.Once
	closed    chan struct{}
	peerDone  <-chan struct{}
}

type frame struct {
	mt      MsgType
	payload []byte
}

// Pipe returns a connected in-memory transport pair.
func Pipe() (Conn, Conn) {
	ab := make(chan frame, 16)
	ba := make(chan frame, 16)
	aClosed := make(chan struct{})
	bClosed := make(chan struct{})
	a := &pipeConn{send: ab, recv: ba, closed: aClosed, peerDone: bClosed}
	b := &pipeConn{send: ba, recv: ab, closed: bClosed, peerDone: aClosed}
	return a, b
}

// Send implements Conn.
func (c *pipeConn) Send(m Message) error {
	// Check for closure first: the select below would otherwise pick the
	// (buffered) send case at random even when already closed.
	select {
	case <-c.closed:
		return ErrConnClosed
	case <-c.peerDone:
		return ErrConnClosed
	default:
	}
	f := frame{mt: m.Kind(), payload: EncodeMessage(m)}
	select {
	case <-c.closed:
		return ErrConnClosed
	case <-c.peerDone:
		return ErrConnClosed
	case c.send <- f:
		return nil
	}
}

// Recv implements Conn.
func (c *pipeConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return nil, io.EOF
	case f := <-c.recv:
		return DecodeMessage(f.mt, f.payload)
	case <-c.peerDone:
		// Drain anything already queued before reporting EOF.
		select {
		case f := <-c.recv:
			return DecodeMessage(f.mt, f.payload)
		default:
			return nil, io.EOF
		}
	}
}

// Close implements Conn.
func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// tcpConn adapts a net.Conn to the Message framing.
type tcpConn struct {
	nc        net.Conn
	writeMu   sync.Mutex
	closeOnce sync.Once
}

// NewNetConn wraps an established net.Conn (TCP or otherwise).
func NewNetConn(nc net.Conn) Conn { return &tcpConn{nc: nc} }

// Dial connects to an FL server at addr over TCP.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: dialing %s: %w", addr, err)
	}
	return NewNetConn(nc), nil
}

// Send implements Conn.
func (c *tcpConn) Send(m Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return wire.WriteFrame(c.nc, byte(m.Kind()), EncodeMessage(m))
}

// Recv implements Conn.
func (c *tcpConn) Recv() (Message, error) {
	mt, payload, err := wire.ReadFrame(c.nc)
	if err != nil {
		return nil, err
	}
	return DecodeMessage(MsgType(mt), payload)
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	var err error
	c.closeOnce.Do(func() { err = c.nc.Close() })
	return err
}

// Listener accepts FL client connections over TCP.
type Listener struct {
	l net.Listener
}

// Listen opens a TCP listener on addr ("host:port"; ":0" for ephemeral).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fl: listening on %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next client connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewNetConn(nc), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
