package fl

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/tensor"
)

// cloneState deep-copies a model so a recovery run can replay onto the
// same initial values the crashed run started from.
func cloneState(state []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(state))
	for i, ts := range state {
		out[i] = tensor.FromSlice(append([]float64(nil), ts.Data...), ts.Shape...)
	}
	return out
}

// crashSentinel is the panic value the crash hook throws to simulate a
// process dying mid-session.
type crashSentinel struct{ round int }

// runUntilCrash drives a session whose server "crashes" (panics out of
// Run, then aborts without closing) when the configured hook fires.
// Client errors are expected — their process outlived the server's.
func runUntilCrash(t *testing.T, srv *Server, trainers []*testTrainer) {
	t.Helper()
	serverConns := make([]Conn, len(trainers))
	var wg sync.WaitGroup
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		cl := NewClient(cc, tr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run() // dies with the server; errors are the point
		}()
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSentinel); !ok {
					panic(r)
				}
				srv.Abort()
				return
			}
			t.Fatal("session finished without crashing")
		}()
		_, _ = srv.Run(serverConns)
	}()
	wg.Wait()
}

func recoverTrainers(deltas ...float64) []*testTrainer {
	out := make([]*testTrainer, len(deltas))
	for i, d := range deltas {
		out[i] = newTestTrainer(string(rune('a'+i)), false, d)
	}
	return out
}

// TestRecoverBitIdentical is the core crash-durability property: a
// session that crashes mid-round and recovers from its journal produces
// the same final model, bit for bit, as one that never crashed — same
// cohort sequence, same trace.
func TestRecoverBitIdentical(t *testing.T) {
	deltas := []float64{1, 2, 4, 8, 16} // dyadic: means are exact
	baseCfg := ServerConfig{
		Rounds:         4,
		MinClients:     2,
		SampleFraction: 0.6, // exercises the RNG fast-forward
		SampleSeed:     7,
	}
	dir := t.TempDir()

	// Uncrashed baseline.
	j1, err := journal.Create(filepath.Join(dir, "base.j"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg
	cfg.Journal = j1
	baseState := newState(1, 10)
	base := NewServer(baseState, cfg)
	if _, err := runSession(t, base, recoverTrainers(deltas...)); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	// Crashing run: same config, dies inside round 2 after the
	// write-ahead open — the round is uncommitted and must re-run.
	jpath := filepath.Join(dir, "crash.j")
	j2, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseCfg
	cfg.Journal = j2
	cfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 2 {
			panic(crashSentinel{round})
		}
	}}
	crashState := newState(1, 10)
	crashed := NewServer(crashState, cfg)
	runUntilCrash(t, crashed, recoverTrainers(deltas...))
	j2.Close()

	// Recover from the journal onto the initial model and resume with a
	// fresh set of client processes.
	j3, err := journal.Append(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg = baseCfg
	cfg.Journal = j3
	resumed, err := Recover(jpath, newState(1, 10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.NextRound(); got != 2 {
		t.Fatalf("NextRound = %d, want 2 (rounds 0 and 1 committed)", got)
	}
	if len(resumed.Trace()) != 2 {
		t.Fatalf("recovered trace has %d rounds, want 2", len(resumed.Trace()))
	}
	if !resumed.Resumable() {
		t.Fatal("recovered server is not Resumable")
	}
	if _, err := runSession(t, resumed, recoverTrainers(deltas...)); err != nil {
		t.Fatal(err)
	}
	j3.Close()

	for i := range baseState {
		for j := range baseState[i].Data {
			if resumed.state[i].Data[j] != baseState[i].Data[j] {
				t.Fatalf("state[%d][%d]: recovered %v, baseline %v",
					i, j, resumed.state[i].Data[j], baseState[i].Data[j])
			}
		}
	}
	bt, rt := base.Trace(), resumed.Trace()
	if len(bt) != len(rt) {
		t.Fatalf("trace length: recovered %d, baseline %d", len(rt), len(bt))
	}
	for i := range bt {
		if bt[i].Round != rt[i].Round || bt[i].Sampled != rt[i].Sampled ||
			bt[i].Responded != rt[i].Responded || bt[i].UpdateNorm != rt[i].UpdateNorm {
			t.Fatalf("trace[%d]: recovered %+v, baseline %+v", i, rt[i], bt[i])
		}
	}
}

// TestRecoverPartialRejoin: roster members that do not come back keep
// their slots as dead placeholders, so the sampling permutation indexes
// the same space; the session continues as long as MinClients rejoin.
func TestRecoverPartialRejoin(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 3, MinClients: 2, SampleSeed: 3, Journal: j}
	cfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 1 {
			panic(crashSentinel{round})
		}
	}}
	srv := NewServer(newState(5), cfg)
	runUntilCrash(t, srv, recoverTrainers(1, 2, 4, 8))
	j.Close()

	j2, err := journal.Append(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := ServerConfig{Rounds: 3, MinClients: 2, SampleSeed: 3, Journal: j2}
	resumed, err := Recover(jpath, newState(5), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Only devices "a" and "b" rejoin; "c" and "d" stay dead.
	if _, err := runSession(t, resumed, recoverTrainers(1, 2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	// Dyadic throughout: round 0 folds {1,2,4,8} → +15/4; rounds 1,2
	// fold {1,2} → +3/2 each. All exact in float64.
	want := 5 + 15.0/4 + 1.5 + 1.5
	if got := resumed.state[0].Data[0]; got != want {
		t.Fatalf("state = %v, want %v", got, want)
	}
	tr := resumed.Trace()
	if len(tr) != 3 || tr[1].Sampled != 2 || tr[1].Responded != 2 {
		t.Fatalf("trace = %+v", tr)
	}
}

// TestRecoverTooFewRejoin: a resumed session still enforces MinClients.
func TestRecoverTooFewRejoin(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 3, MinClients: 2, Journal: j}
	cfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 1 {
			panic(crashSentinel{round})
		}
	}}
	srv := NewServer(newState(5), cfg)
	runUntilCrash(t, srv, recoverTrainers(1, 2, 4))
	j.Close()

	resumed, err := Recover(jpath, newState(5), ServerConfig{Rounds: 3, MinClients: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runSession(t, resumed, recoverTrainers(1))
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("err = %v, want ErrNotEnoughClients", err)
	}
}

// TestRecoverRejectsStrangers: a device absent from the journaled
// roster cannot join a resumed session — resumption trusts the roster,
// not a fresh attestation.
func TestRecoverRejectsStrangers(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 3, MinClients: 2, Journal: j}
	cfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 1 {
			panic(crashSentinel{round})
		}
	}}
	srv := NewServer(newState(5), cfg)
	runUntilCrash(t, srv, recoverTrainers(1, 2, 4, 8))
	j.Close()

	resumed, err := Recover(jpath, newState(5), ServerConfig{Rounds: 3, MinClients: 2})
	if err != nil {
		t.Fatal(err)
	}
	// "a" and "b" rejoin; "zz" was never admitted. The stranger's
	// client errors on rejection, so drive the session tolerantly.
	trainers := recoverTrainers(1, 2)
	trainers = append(trainers, newTestTrainer("zz", false, 64))
	serverConns := make([]Conn, len(trainers))
	var wg sync.WaitGroup
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		cl := NewClient(cc, tr)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = cl.Run()
		}()
	}
	if _, err := resumed.Run(serverConns); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Two rounds of mean(1,2)=1.5 on top of round 0's mean(1,2,4,8)
	// = 15/4; the stranger's 64s never fold. All dyadic, hence exact.
	want := 5 + 15.0/4 + 1.5 + 1.5
	if got := resumed.state[0].Data[0]; got != want {
		t.Fatalf("state = %v, want %v (stranger's update folded?)", got, want)
	}
}

// TestRecoverConfigMismatch: a journal replayed into a server whose
// fingerprint disagrees is rejected rather than silently corrupting.
func TestRecoverConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 3, MinClients: 2, SampleSeed: 11, Journal: j}
	cfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 1 {
			panic(crashSentinel{round})
		}
	}}
	srv := NewServer(newState(5), cfg)
	runUntilCrash(t, srv, recoverTrainers(1, 2))
	j.Close()

	bad := []ServerConfig{
		{Rounds: 3, MinClients: 2, SampleSeed: 12},               // wrong seed
		{Rounds: 9, MinClients: 2, SampleSeed: 11},               // wrong horizon
		{Rounds: 3, MinClients: 2, SampleSeed: 11, SecAgg: true}, // wrong mode
	}
	for i, cfg := range bad {
		if _, err := Recover(jpath, newState(5), cfg); !errors.Is(err, ErrJournalMismatch) {
			t.Fatalf("config %d: err = %v, want ErrJournalMismatch", i, err)
		}
	}
	if _, err := Recover(jpath, newState(5), ServerConfig{Rounds: 3, MinClients: 2, SampleSeed: 11}); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
}

// TestResumeRequiresRecovery: Resume on a fresh server is an error, and
// a recovered server refuses robust aggregation it was not journaled
// with... (the validation path is shared with Open).
func TestResumeRequiresRecovery(t *testing.T) {
	srv := NewServer(newState(1), ServerConfig{})
	if _, err := srv.Resume(nil); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("err = %v, want ErrNotRecovered", err)
	}
}
