package fl

import (
	"errors"
	"fmt"
	"time"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// Errors surfaced by journal recovery.
var (
	// ErrJournalMismatch rejects a journal whose session fingerprint
	// disagrees with the configuration handed to Recover — replaying,
	// say, a masked session into a plaintext server would corrupt
	// state silently.
	ErrJournalMismatch = errors.New("fl: journal does not match session config")
	// ErrNotRecovered rejects Resume on a server that was not built by
	// Recover.
	ErrNotRecovered = errors.New("fl: Resume requires a journal-recovered server")
)

// Recover rebuilds a crashed session from its journal: same round
// number, same roster, same quarantine/probation standing, same
// release floor, and — because committed rounds carry their applied
// mean updates — the same model, bit for bit. state must hold the
// *initial* model (the values the crashed server was constructed
// with); Recover replays the committed updates onto it. cfg must match
// the crashed session's configuration; the journaled fingerprint is
// validated against it.
//
// The returned server is not yet serving: call Resume (or Run, which
// resumes automatically) with the rejoining client connections.
func Recover(path string, state []*tensor.Tensor, cfg ServerConfig) (*Server, error) {
	// Replay duration is real I/O plus model reconstruction, so it is
	// measured on the wall clock regardless of any simulated cfg.Clock.
	var replayStart time.Time
	if cfg.Metrics != nil {
		replayStart = time.Now()
	}
	recs, err := journal.Replay(path)
	if err != nil {
		return nil, err
	}
	st := journal.Commit(recs)
	if st.Session == nil {
		return nil, fmt.Errorf("%w: journal has no session record", ErrJournalMismatch)
	}
	s := NewServer(state, cfg) // applies config defaults first

	var flags uint64
	if s.cfg.SecAgg {
		flags |= journal.FlagSecAgg
	}
	if s.cfg.Partials {
		flags |= journal.FlagPartials
	}
	if s.cfg.Async.Enabled {
		flags |= journal.FlagAsync
	}
	if s.cfg.RequireTEE {
		flags |= journal.FlagRequireTEE
	}
	switch {
	case st.Session.Flags != flags:
		return nil, fmt.Errorf("%w: journal mode flags %#x, config %#x", ErrJournalMismatch, st.Session.Flags, flags)
	case st.Session.Seed != s.cfg.SampleSeed:
		return nil, fmt.Errorf("%w: journal sample seed %d, config %d", ErrJournalMismatch, st.Session.Seed, s.cfg.SampleSeed)
	case st.Session.Rounds != s.cfg.Rounds:
		return nil, fmt.Errorf("%w: journal plans %d rounds, config %d", ErrJournalMismatch, st.Session.Rounds, s.cfg.Rounds)
	case s.cfg.SecAgg && st.Session.Scale != s.cfg.SecAggScaleBits:
		return nil, fmt.Errorf("%w: journal scale bits %d, config %d", ErrJournalMismatch, st.Session.Scale, s.cfg.SecAggScaleBits)
	}

	// The release floor is monotonic: adopt the highest committed
	// value, and re-arm the enclave with it (a recovered process has a
	// fresh enclave whose floor starts at the config value).
	if st.Floor > s.cfg.MinRelease {
		s.cfg.MinRelease = st.Floor
		if s.cfg.Enclave != nil {
			s.cfg.Enclave.SetMinRelease(st.Floor)
		}
	}

	s.roster = st.Roster
	for device := range st.Quarantined {
		s.noteHistory(device).quarantined = true
	}
	for device, until := range st.Probation {
		if h := s.noteHistory(device); until > h.probationUntil {
			h.probationUntil = until
		}
	}

	// Replay the committed rounds: trace entries always, model updates
	// for the rounds that applied one. ApplyUpdate is deterministic
	// float addition in commit order, so the recovered model is
	// bit-identical to the crashed process's.
	for _, c := range st.Closes {
		s.trace = append(s.trace, fromJournalStats(c.Stats))
		if !c.OK || c.Update == nil {
			continue
		}
		if len(c.Update) != len(s.state) {
			return nil, fmt.Errorf("%w: round %d update has %d tensors, model has %d", ErrJournalMismatch, c.Round, len(c.Update), len(s.state))
		}
		for i, u := range c.Update {
			if !u.SameShape(s.state[i]) {
				return nil, fmt.Errorf("%w: round %d update tensor %d shape %v, model %v", ErrJournalMismatch, c.Round, i, u.Shape, s.state[i].Shape)
			}
		}
		ApplyUpdate(s.state, c.Update, 1.0)
	}
	s.nextRound = st.NextRound

	// Fast-forward the sampling RNG: the crashed process drew one
	// roster-sized permutation per committed synchronous round
	// (sampling is always over the full roster — see sample). The
	// in-flight round's draw was never committed, so the re-run of
	// that round draws exactly the permutation the crashed process
	// used, and the cohort sequence continues unchanged.
	for i := 0; i < st.Draws; i++ {
		s.rng.Perm(len(s.roster))
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Histogram("gradsec_journal_ns", "journal I/O latency in nanoseconds", "op", "replay").
			Observe(time.Since(replayStart).Nanoseconds())
	}
	return s, nil
}

// Resumable reports whether the server was rebuilt from a journal and
// has not yet reopened its session (Run will call Resume, not Open).
func (s *Server) Resumable() bool { return s.roster != nil && !s.opened }

// rosterEntry looks a device up in the recovered roster.
func (s *Server) rosterEntry(device string) *journal.Record {
	for _, ent := range s.roster {
		if ent.Device == device {
			return ent
		}
	}
	return nil
}

// Resume reopens a recovered session over the rejoining client
// connections. The handshake runs as usual except that devices are
// matched against the journaled roster instead of being re-attested
// (the crashed session already verified them — that admission is what
// the roster records). Sessions are rebuilt in roster order; a roster
// member that does not rejoin keeps its slot as a dead placeholder so
// the roster-sized sampling permutation is applied to the same index
// space as before the crash. It returns the number of rejoined
// clients.
//
// Secure-aggregation clients present fresh mask keys on rejoin — masks
// are round-scoped, so a key change between rounds is invisible to the
// protocol.
func (s *Server) Resume(conns []Conn) (int, error) {
	if s.roster == nil {
		return 0, ErrNotRecovered
	}
	if s.opened {
		return 0, errors.New("fl: session already open")
	}
	if err := s.validateAggregation(); err != nil {
		return 0, err
	}
	s.resuming = true
	selected := s.selectClients(conns)
	s.resuming = false

	byName := make(map[string]*session, len(selected))
	for _, sess := range selected {
		if byName[sess.device] != nil {
			s.reject(sess.conn, fmt.Sprintf("duplicate device name %q on resume", sess.device))
			continue
		}
		byName[sess.device] = sess
	}

	sessions := make([]*session, 0, len(s.roster))
	returning := 0
	for _, ent := range s.roster {
		sess := byName[ent.Device]
		if sess == nil {
			// Keep the slot: quarantined placeholders are invisible to
			// live() and Close, but preserve roster size and order for
			// the sampling permutation.
			sessions = append(sessions, &session{conn: deadConn{}, device: ent.Device, quarantined: true})
			continue
		}
		if h := s.history[ent.Device]; h != nil {
			sess.probationUntil = h.probationUntil
		}
		sessions = append(sessions, sess)
		returning++
	}
	if returning < s.cfg.MinClients {
		for _, sess := range sessions {
			if !sess.quarantined {
				s.reject(sess.conn, "not enough clients rejoined the resumed session")
			}
		}
		return returning, fmt.Errorf("%w: %d of %d roster members rejoined, need %d",
			ErrNotEnoughClients, returning, len(s.roster), s.cfg.MinClients)
	}

	buffer := len(sessions)
	if s.cfg.Async.Enabled && s.cfg.Async.Buffer < buffer {
		buffer = s.cfg.Async.Buffer
	}
	s.sessions = sessions
	s.arrivals = make(chan arrival, buffer)
	s.done = make(chan struct{})
	for _, sess := range sessions {
		if sess.quarantined {
			continue
		}
		s.readers.Add(1)
		go func(sess *session) {
			defer s.readers.Done()
			readLoop(sess, s.arrivals, s.done)
		}(sess)
	}
	s.opened = true
	s.shut = false
	return returning, nil
}

// NextRound returns the first round index the server will run: 0 for a
// fresh server, one past the last committed round after recovery.
func (s *Server) NextRound() int { return s.nextRound }

// deadConn fills the roster slot of a device that did not rejoin a
// resumed session: every operation fails, so any accidental use
// surfaces as a transport error rather than a hang.
type deadConn struct{}

var errDeadConn = errors.New("fl: device did not rejoin the resumed session")

func (deadConn) Send(Message) error              { return errDeadConn }
func (deadConn) SendFrame(MsgType, []byte) error { return errDeadConn }
func (deadConn) Recv() (Message, error)          { return nil, errDeadConn }
func (deadConn) SetCodec(wire.Codec)             {}
func (deadConn) SetSendCodec(wire.Codec)         {}
func (deadConn) SetRecvCodec(wire.Codec)         {}
func (deadConn) Close() error                    { return nil }
