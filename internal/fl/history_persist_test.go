package fl

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/journal"
)

// startClients wires fresh pipes for the trainers and runs each client
// on its own goroutine. Client errors are swallowed rather than failing
// the session — a rejected or quarantined client's error is the point
// of these tests.
func startClients(trainers []*testTrainer) (serverConns []Conn, clients []*Client, wait func()) {
	serverConns = make([]Conn, len(trainers))
	clients = make([]*Client, len(trainers))
	var wg sync.WaitGroup
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		clients[i] = NewClient(cc, tr)
		wg.Add(1)
		go func(i int) { defer wg.Done(); _ = clients[i].Run() }(i)
	}
	return serverConns, clients, wg.Wait
}

// TestQuarantinePersistsAcrossSessions: a device quarantined in one
// session of a server stays excluded when the same name reconnects to a
// later session of that server — standing is durable state, not round
// state.
func TestQuarantinePersistsAcrossSessions(t *testing.T) {
	srv := NewServer(newState(0), ServerConfig{Rounds: 2, MinClients: 1})
	bad := newTestTrainer("bad", false, 8)
	bad.failOnRound = 0 // QuarantineRounds is 0: permanent exclusion
	conns, _, wait := startClients([]*testTrainer{newTestTrainer("good", false, 2), bad})
	if _, err := srv.Run(conns); err != nil {
		t.Fatal(err)
	}
	wait()
	if got := srv.Trace()[0].Quarantined; got != 1 {
		t.Fatalf("round 0 quarantined %d, want 1", got)
	}

	// Session 2 on the same server: selection still runs, and the
	// quarantined name must be turned away at the door.
	conns2, clients2, wait2 := startClients([]*testTrainer{
		newTestTrainer("good", false, 2), newTestTrainer("bad", false, 8),
	})
	n, err := srv.Run(conns2)
	if err != nil {
		t.Fatalf("second session: %v", err)
	}
	wait2()
	if n != 1 {
		t.Fatalf("second session selected %d clients, want 1", n)
	}
	if got := clients2[1].RejectedReason; !strings.Contains(got, "quarantined in an earlier session") {
		t.Fatalf("readmitted device rejection = %q", got)
	}
	if clients2[0].RejectedReason != "" {
		t.Fatalf("clean device rejected: %q", clients2[0].RejectedReason)
	}
}

// TestProbationWindowSpansSessions: an unserved probation window booked
// in one session is still honoured when the device reconnects to the
// next — the window is measured in global rounds, so closing and
// reopening the session cannot launder a misbehaving device back in
// early.
func TestProbationWindowSpansSessions(t *testing.T) {
	srv := NewServer(newState(0), ServerConfig{Rounds: 6, MinClients: 1, QuarantineRounds: 3})
	flaky := newTestTrainer("flaky", false, 4)
	flaky.failOnRound = 0 // probation until round 4
	conns, _, wait := startClients([]*testTrainer{newTestTrainer("steady", false, 2), flaky})
	if _, err := srv.Open(conns); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		if _, err := srv.StepRound(r); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if err := srv.Close(nil); err != nil {
		t.Fatal(err)
	}
	wait()
	trace := srv.Trace()
	if trace[0].Sampled != 2 || trace[0].Probation != 1 || trace[0].Quarantined != 0 {
		t.Fatalf("round 0 stats = %+v, want a probation booking", trace[0])
	}
	if trace[1].Sampled != 1 {
		t.Fatalf("round 1 sampled %d, want the steady client alone", trace[1].Sampled)
	}

	// Session 2 picks the round clock up mid-window: rounds 2–3 still
	// exclude the flaky device, round 4 re-admits it.
	conns2, _, wait2 := startClients([]*testTrainer{
		newTestTrainer("steady", false, 2), newTestTrainer("flaky", false, 4),
	})
	if _, err := srv.Open(conns2); err != nil {
		t.Fatalf("second session: %v", err)
	}
	for r := 2; r < 6; r++ {
		if _, err := srv.StepRound(r); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if err := srv.Close(nil); err != nil {
		t.Fatal(err)
	}
	wait2()
	trace = srv.Trace()
	for r := 2; r < 4; r++ {
		if trace[r].Sampled != 1 {
			t.Fatalf("round %d sampled %d, probation window not honoured across sessions", r, trace[r].Sampled)
		}
	}
	for r := 4; r < 6; r++ {
		if trace[r].Sampled != 2 || trace[r].Responded != 2 {
			t.Fatalf("round %d stats = %+v, served window must re-admit", r, trace[r])
		}
	}
}

// TestRecoverRejectsPreCrashQuarantine: a quarantine committed before a
// crash survives journal recovery — the device is matched against the
// journaled roster at resume and refused, and the resumed session
// closes on the surviving fleet alone.
func TestRecoverRejectsPreCrashQuarantine(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "quarantine.journal")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 3, MinClients: 1}
	ccfg := cfg
	ccfg.Journal = j
	ccfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 1 {
			panic(crashSentinel{round})
		}
	}}
	bad := newTestTrainer("bad", false, 8)
	bad.failOnRound = 0 // quarantined in round 0, which commits
	srv := NewServer(newState(0), ccfg)
	runUntilCrash(t, srv, []*testTrainer{newTestTrainer("good", false, 2), bad})
	_ = j.Close()

	j2, err := journal.Append(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Journal = j2
	srv2, err := Recover(jpath, newState(0), rcfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	conns, clients, wait := startClients([]*testTrainer{
		newTestTrainer("good", false, 2), newTestTrainer("bad", false, 8),
	})
	if _, err := srv2.Run(conns); err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	wait()
	_ = j2.Close()
	if got := clients[1].RejectedReason; !strings.Contains(got, "quarantined before the crash") {
		t.Fatalf("pre-crash quarantine rejection = %q", got)
	}
	// Round 0 folded only good's +2 (bad failed); rounds 1–2 are good
	// alone: the recovered model must show exactly three +2 steps.
	if got := srv2.State()[0].Data[0]; got != 6 {
		t.Fatalf("recovered final state %v, want 6", got)
	}
	if got := len(srv2.Trace()); got != 3 {
		t.Fatalf("recovered trace has %d rounds, want 3", got)
	}
}

// TestRecoverRestoresProbationWindow: a probation window committed
// before a crash is restored by recovery — the device resumes its
// connection but stays ineligible until the journaled round, then
// rejoins the cohort.
func TestRecoverRestoresProbationWindow(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "probation.journal")
	j, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{Rounds: 6, MinClients: 1, QuarantineRounds: 3}
	ccfg := cfg
	ccfg.Journal = j
	ccfg.Hooks = Hooks{RoundStarted: func(round int, _ []string) {
		if round == 2 {
			panic(crashSentinel{round})
		}
	}}
	flaky := newTestTrainer("flaky", false, 4)
	flaky.failOnRound = 0 // probation until round 4, committed with round 0
	srv := NewServer(newState(0), ccfg)
	runUntilCrash(t, srv, []*testTrainer{newTestTrainer("steady", false, 2), flaky})
	_ = j.Close()

	j2, err := journal.Append(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Journal = j2
	srv2, err := Recover(jpath, newState(0), rcfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	conns, _, wait := startClients([]*testTrainer{
		newTestTrainer("steady", false, 2), newTestTrainer("flaky", false, 4),
	})
	if _, err := srv2.Run(conns); err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	wait()
	_ = j2.Close()
	trace := srv2.Trace()
	if len(trace) != 6 {
		t.Fatalf("trace has %d rounds, want 6", len(trace))
	}
	for r := 2; r < 4; r++ {
		if trace[r].Sampled != 1 {
			t.Fatalf("round %d sampled %d, probation window not restored by recovery", r, trace[r].Sampled)
		}
	}
	for r := 4; r < 6; r++ {
		if trace[r].Sampled != 2 || trace[r].Responded != 2 {
			t.Fatalf("round %d stats = %+v, served window must re-admit", r, trace[r])
		}
	}
	// Rounds 0–3 folded steady's +2 alone; rounds 4–5 fold mean(2,4)=3.
	if got := srv2.State()[0].Data[0]; got != 14 {
		t.Fatalf("recovered final state %v, want 14", got)
	}
}
