package fl

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"github.com/gradsec/gradsec/internal/obs"
)

// TestAdminScrapeMidSession is the end-to-end acceptance check for the
// admin surface: while a session is running, a plain HTTP GET against
// /metrics (what Prometheus does) returns text exposition carrying the
// round counters, phase histograms, and wire byte totals, and /healthz
// reports the session open at the right round.
func TestAdminScrapeMidSession(t *testing.T) {
	trainers := []Trainer{
		newTestTrainer("a", false, 1),
		newTestTrainer("b", false, 2),
		newTestTrainer("c", false, 3),
	}
	reg := obs.NewRegistry()

	// The hook runs on the round goroutine, so the scrape below is
	// genuinely mid-session: rounds still to go, connections open.
	var adminURL string
	type scrape struct{ metrics, health string }
	scraped := make(chan scrape, 1)
	cfg := ServerConfig{
		Rounds:     4,
		MinClients: 3,
		Metrics:    reg,
		Hooks: Hooks{
			RoundClosed: func(st RoundStats) {
				if st.Round != 1 {
					return
				}
				scraped <- scrape{
					metrics: httpGetBody(t, adminURL+"/metrics"),
					health:  httpGetBody(t, adminURL+"/healthz"),
				}
			},
		},
	}
	srv := NewServer(newState(0), cfg)
	admin, err := obs.ServeAdmin("127.0.0.1:0", reg, srv.Health)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	adminURL = "http://" + admin.Addr()

	serverErr, _, _, wg := startSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	got := <-scraped
	if !strings.Contains(got.health, `"open":true`) {
		t.Errorf("mid-session /healthz does not report the session open: %s", got.health)
	}
	// Two rounds closed at scrape time (rounds 0 and 1).
	if v := sampleValue(t, got.metrics, `gradsec_rounds_total{mode="sync",result="ok"}`); v != 2 {
		t.Errorf("mid-session rounds_total{ok} = %v, want 2", v)
	}
	// The end-to-end round observation lands after the RoundClosed hook
	// returns, so at scrape time only round 0's is visible.
	if v := sampleValue(t, got.metrics, `gradsec_phase_ns_count{phase="round"}`); v != 1 {
		t.Errorf("mid-session phase_ns_count{round} = %v, want 1", v)
	}
	for _, dir := range []string{"up", "down"} {
		if v := sampleValue(t, got.metrics, fmt.Sprintf("gradsec_wire_bytes_total{direction=%q}", dir)); v <= 0 {
			t.Errorf("mid-session wire_bytes_total{%s} = %v, want > 0", dir, v)
		}
	}
	if !strings.Contains(got.metrics, "# TYPE gradsec_phase_ns histogram") {
		t.Error("phase histogram family missing from exposition")
	}
}

// httpGetBody fetches a URL, failing the test on any error.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	return string(body)
}

// sampleValue extracts the value of one exposition sample by its full
// name-plus-labels prefix.
func sampleValue(t *testing.T, exposition, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("bad sample line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %q not found in exposition:\n%s", sample, exposition)
	return 0
}
