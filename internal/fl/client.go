package fl

import (
	"fmt"
	"io"
	"time"

	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// Trainer is the device-side behaviour the FL client delegates to. The
// GradSec secure trainer (internal/core) implements it; tests provide
// plain in-memory trainers.
type Trainer interface {
	// DeviceID identifies the device to the server.
	DeviceID() string
	// HasTEE reports whether the device offers a TEE.
	HasTEE() bool
	// Attest produces a quote over the training TA for the given nonce.
	// Only called when HasTEE.
	Attest(nonce []byte) (tz.Quote, error)
	// OpenChannel establishes the TA side of the trusted I/O path against
	// the server's public key and returns the TA's public key. Only
	// called when HasTEE.
	OpenChannel(serverPub []byte) (clientPub []byte, err error)
	// TrainRound performs one cycle of secure local training. plain holds
	// the unprotected global parameters (nil at protected positions);
	// sealed carries the protected parameters for the TA; plan is the
	// round's protection plan blob. It returns the unprotected updates
	// (nil at protected positions) and the sealed protected updates.
	TrainRound(round int, plain []*tensor.Tensor, sealed []byte, plan []byte) (plainUpd []*tensor.Tensor, sealedUpd []byte, err error)
}

// ExampleCounter is an optional Trainer extension reporting the size of
// the device's local training set. When implemented (and positive), the
// count rides each GradUp and the server weights FedAvg by it.
type ExampleCounter interface {
	NumExamples() int
}

// Client runs the device side of the FL protocol over one connection.
type Client struct {
	conn    Conn
	trainer Trainer

	// MaxCodec caps the tensor codec this client accepts from the
	// server's offer (codecs are ordered by compression; negotiation
	// settles on min(offer, cap)). The zero value pins the exact
	// uncompressed f64 protocol.
	MaxCodec wire.Codec

	// MaskSeed, when non-nil, derives the secure-aggregation mask
	// keypair deterministically (simulations, tests). Production
	// clients leave it nil and draw from crypto/rand.
	MaskSeed []byte
	// EnclaveVerifier, when set, requires a secure-aggregation server
	// to present a valid aggregation-enclave quote in its Challenge
	// (verified against this verifier's registered devices and TA
	// measurements); the session is refused otherwise.
	EnclaveVerifier *tz.Verifier

	// Metrics, when non-nil, collects device-side training metrics
	// (gradsec_client_* families) and — this is the opt-in — piggybacks
	// a delta snapshot of the registry on every plaintext GradUp, so a
	// ClientTelemetry-enabled server folds the device's view into the
	// fleet-wide plane. Masked updates never carry telemetry: a SecAgg
	// round reveals nothing per-device and the side channel would.
	Metrics *obs.Registry
	// Spans, when non-nil, receives device-side spans stamped with the
	// round trace ID carried on ModelDown, correlating local training
	// with the server's round timeline.
	Spans *obs.TraceSink
	// Clock drives the training histogram; defaults to the wall clock.
	// Simulations share their virtual clock here.
	Clock simclock.WallClock

	// Rounds counts completed training cycles.
	Rounds int
	// Final holds the global model delivered with Done, if any.
	Final []*tensor.Tensor
	// RejectedReason is set when the server refused this client.
	RejectedReason string
	// NegotiatedCodec records the session's tensor codec after the
	// handshake, tracking later adaptive switches (CodecSwitch).
	NegotiatedCodec wire.Codec
	// CodecSwitches counts mid-session codec switches applied by an
	// adaptive server.
	CodecSwitches int
	// SecAgg records whether the session ran under secure aggregation.
	SecAgg bool

	// secagg session state.
	mask   *secagg.ClientSession
	cohort []secagg.Peer // roster of the round in flight
	round  int           // round of the roster
	degree int           // resolved mask-graph degree of the roster (0 = full pairwise)

	// lastTrainErr remembers a reported training failure: the client
	// stays in the protocol afterwards (the server decides between
	// probation and permanent quarantine), and if the server hangs up
	// the failure is surfaced as the session error.
	lastTrainErr error

	// snap cuts per-round telemetry deltas from Metrics (lazily built so
	// a zero-value Client stays telemetry-free).
	snap *obs.Snapshotter
}

// NewClient pairs a connection with a trainer.
func NewClient(conn Conn, trainer Trainer) *Client {
	return &Client{conn: conn, trainer: trainer}
}

// Run participates in a full training session: selection, then rounds
// until the server sends Done (or Reject). It returns nil on a clean
// finish or rejection; RejectedReason distinguishes the two.
func (c *Client) Run() error {
	msg, err := c.conn.Recv()
	if err != nil {
		return fmt.Errorf("fl: awaiting challenge: %w", err)
	}
	ch, ok := msg.(*Challenge)
	if !ok {
		return fmt.Errorf("fl: expected Challenge, got %T", msg)
	}

	codec := ch.Codec
	if codec > c.MaxCodec {
		codec = c.MaxCodec
	}
	// The true cap rides alongside the negotiated codec so an adaptive
	// server can upgrade the session later without renegotiating.
	att := &Attest{DeviceID: c.trainer.DeviceID(), HasTEE: c.trainer.HasTEE(), Codec: codec, Cap: c.MaxCodec}
	if ch.SecAgg {
		if c.EnclaveVerifier != nil {
			if ch.AggQuote.DeviceID == "" {
				return fmt.Errorf("fl: server announced secure aggregation without an enclave quote")
			}
			// The quote must cover the offered channel key: an enclave
			// quote alone would not prove ServerPub belongs to it.
			if err := c.EnclaveVerifier.Verify(ch.AggQuote, secagg.AggQuoteNonce(ch.Nonce, ch.ServerPub)); err != nil {
				return fmt.Errorf("fl: aggregation enclave attestation: %w", err)
			}
		}
		mask, err := secagg.NewClientSession(c.trainer.DeviceID(), c.MaskSeed, int(ch.ScaleBits))
		if err != nil {
			return fmt.Errorf("fl: secagg setup: %w", err)
		}
		c.mask = mask
		c.SecAgg = true
		att.MaskPub = mask.MaskPub()
	}
	if c.trainer.HasTEE() {
		quote, err := c.trainer.Attest(ch.Nonce)
		if err != nil {
			return fmt.Errorf("fl: attestation: %w", err)
		}
		att.Quote = quote
		pub, err := c.trainer.OpenChannel(ch.ServerPub)
		if err != nil {
			return fmt.Errorf("fl: opening trusted channel: %w", err)
		}
		att.ClientPub = pub
	}
	if err := c.conn.Send(att); err != nil {
		return fmt.Errorf("fl: sending attestation: %w", err)
	}
	c.conn.SetCodec(codec)
	c.NegotiatedCodec = codec

	for {
		msg, err := c.conn.Recv()
		if err != nil {
			if c.lastTrainErr != nil {
				// The server hung up after we reported a training
				// failure: surface the root cause, not the EOF.
				return fmt.Errorf("fl: local training: %w", c.lastTrainErr)
			}
			if err == io.EOF {
				return fmt.Errorf("fl: server closed mid-session: %w", err)
			}
			return fmt.Errorf("fl: receiving: %w", err)
		}
		switch m := msg.(type) {
		case *Reject:
			c.RejectedReason = m.Reason
			return nil
		case *Done:
			c.Final = m.Final
			return nil
		case *ModelDown:
			if err := c.handleModelDown(m); err != nil {
				return err
			}
		case *MaskRecon:
			if err := c.handleMaskRecon(m); err != nil {
				return err
			}
		case *CodecSwitch:
			// Adaptive downgrade: every message from here on — in both
			// directions — speaks the new codec.
			if !m.Codec.Valid() || m.Codec > c.MaxCodec {
				return fmt.Errorf("fl: server switched to codec %s beyond cap %s", m.Codec, c.MaxCodec)
			}
			c.conn.SetCodec(m.Codec)
			c.NegotiatedCodec = m.Codec
			c.CodecSwitches++
			// Ack the switch so the server flips its receive codec only
			// after every frame this client wrote pre-switch (old codec)
			// has been consumed — the FIFO ordering rule on CodecSwitch
			// in messages.go. The ack's payload is codec-independent.
			if err := c.conn.Send(&CodecSwitch{Codec: m.Codec}); err != nil {
				return fmt.Errorf("fl: acking codec switch: %w", err)
			}
		case *ErrorMsg:
			return fmt.Errorf("fl: server error: %s", m.Text)
		default:
			return fmt.Errorf("fl: unexpected message %T", msg)
		}
	}
}

// handleModelDown trains one round and answers with the update — plain
// (GradUp) or masked (MaskedUp) depending on the session mode. Training
// failures are reported to the server and the client stays in the
// protocol: under a probation policy it will be sampled again later.
func (c *Client) handleModelDown(m *ModelDown) error {
	// Stamp the server-minted round trace on every span this round emits
	// so a cross-tier stitch joins this device's timeline to the fleet's.
	c.Spans.SetTrace(m.Trace)
	sp := c.Spans.Start("train", m.Round)
	start := c.now()
	plainUpd, sealedUpd, err := c.trainer.TrainRound(m.Round, m.Plain, m.Sealed, m.Plan)
	if c.Metrics != nil {
		c.Metrics.Histogram("gradsec_client_train_ns", "device-side local training latency in nanoseconds").
			ObserveEx(c.now().Sub(start).Nanoseconds(), m.Round)
		result := "ok"
		if err != nil {
			result = "failed"
		}
		c.Metrics.Counter("gradsec_client_rounds_total", "device-side training rounds by result", "result", result).Inc()
	}
	sp.End()
	if err != nil {
		c.lastTrainErr = fmt.Errorf("round %d: %w", m.Round, err)
		if sendErr := c.conn.Send(&ErrorMsg{Text: err.Error()}); sendErr != nil {
			return fmt.Errorf("fl: local training round %d: %w", m.Round, err)
		}
		return nil
	}
	examples := uint64(0)
	if ec, ok := c.trainer.(ExampleCounter); ok {
		if n := ec.NumExamples(); n > 0 {
			examples = uint64(n)
		}
	}
	if c.mask != nil {
		if len(m.Cohort) == 0 {
			return fmt.Errorf("fl: secagg round %d arrived without a cohort roster", m.Round)
		}
		c.cohort = m.Cohort
		c.round = m.Round
		c.degree = m.MaskDegree
		// The FedAvg weight is applied in the ring before masking; it
		// must equal the weight the server derives from Examples, so the
		// clamp is mirrored here.
		weight := uint64(1)
		if examples > 0 {
			weight = min(examples, MaxExampleWeight)
		}
		levels, shares, err := c.mask.MaskedUpdate(m.Round, m.Cohort, m.MaskDegree, plainUpd, weight)
		if err != nil {
			return fmt.Errorf("fl: masking round %d update: %w", m.Round, err)
		}
		up := &MaskedUp{Round: m.Round, Levels: levels, Sealed: sealedUpd, Examples: examples, Shares: shares}
		if err := c.conn.Send(up); err != nil {
			return fmt.Errorf("fl: sending masked update: %w", err)
		}
	} else {
		// Version echoes the model version this update was trained
		// against; the async server derives staleness from it.
		up := &GradUp{Round: m.Round, Plain: plainUpd, Sealed: sealedUpd, Examples: examples, Version: m.Version, Telemetry: c.telemetryDelta()}
		if err := c.conn.Send(up); err != nil {
			return fmt.Errorf("fl: sending update: %w", err)
		}
	}
	c.Rounds++
	// A completed round supersedes any earlier reported failure: a
	// later hang-up should not be misattributed to it.
	c.lastTrainErr = nil
	return nil
}

// now reads the client's clock, defaulting to the wall clock.
func (c *Client) now() (t time.Time) {
	if c.Metrics == nil && c.Spans == nil {
		return
	}
	if c.Clock == nil {
		c.Clock = simclock.Real()
	}
	return c.Clock.Now()
}

// telemetryDelta cuts the registry delta accumulated since the previous
// upload; nil when telemetry is off or nothing changed.
func (c *Client) telemetryDelta() []byte {
	if c.Metrics == nil {
		return nil
	}
	if c.snap == nil {
		c.snap = obs.NewSnapshotter(c.Metrics)
	}
	return c.snap.Delta()
}

// handleMaskRecon answers the server's reconciliation request. In
// legacy rounds (degree 0) it reveals this client's round seeds with
// the dropped cohort members; in k-regular rounds it routes through
// ClientSession.Reconcile, which enforces the one-role-per-peer
// invariant (ErrRoleConflict) and unwraps survivor self-seed shares.
func (c *Client) handleMaskRecon(m *MaskRecon) error {
	if c.mask == nil {
		return fmt.Errorf("fl: mask reconciliation outside a secagg session")
	}
	if m.Round != c.round || len(c.cohort) == 0 {
		return fmt.Errorf("fl: mask reconciliation for round %d, last roster is round %d", m.Round, c.round)
	}
	if c.degree > 0 {
		ans, err := c.mask.Reconcile(m.Round, m.Dropped, m.Survivors)
		if err != nil {
			return fmt.Errorf("fl: reconciling masks: %w", err)
		}
		if err := c.conn.Send(&MaskShares{Round: m.Round, Shares: ans.Pairs, SeedShares: ans.Seeds}); err != nil {
			return fmt.Errorf("fl: sending mask shares: %w", err)
		}
		return nil
	}
	shares, err := c.mask.Shares(m.Round, c.cohort, m.Dropped)
	if err != nil {
		return fmt.Errorf("fl: deriving mask shares: %w", err)
	}
	if err := c.conn.Send(&MaskShares{Round: m.Round, Shares: shares}); err != nil {
		return fmt.Errorf("fl: sending mask shares: %w", err)
	}
	return nil
}
