package fl

import (
	"fmt"
	"io"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// Trainer is the device-side behaviour the FL client delegates to. The
// GradSec secure trainer (internal/core) implements it; tests provide
// plain in-memory trainers.
type Trainer interface {
	// DeviceID identifies the device to the server.
	DeviceID() string
	// HasTEE reports whether the device offers a TEE.
	HasTEE() bool
	// Attest produces a quote over the training TA for the given nonce.
	// Only called when HasTEE.
	Attest(nonce []byte) (tz.Quote, error)
	// OpenChannel establishes the TA side of the trusted I/O path against
	// the server's public key and returns the TA's public key. Only
	// called when HasTEE.
	OpenChannel(serverPub []byte) (clientPub []byte, err error)
	// TrainRound performs one cycle of secure local training. plain holds
	// the unprotected global parameters (nil at protected positions);
	// sealed carries the protected parameters for the TA; plan is the
	// round's protection plan blob. It returns the unprotected updates
	// (nil at protected positions) and the sealed protected updates.
	TrainRound(round int, plain []*tensor.Tensor, sealed []byte, plan []byte) (plainUpd []*tensor.Tensor, sealedUpd []byte, err error)
}

// ExampleCounter is an optional Trainer extension reporting the size of
// the device's local training set. When implemented (and positive), the
// count rides each GradUp and the server weights FedAvg by it.
type ExampleCounter interface {
	NumExamples() int
}

// Client runs the device side of the FL protocol over one connection.
type Client struct {
	conn    Conn
	trainer Trainer

	// MaxCodec caps the tensor codec this client accepts from the
	// server's offer (codecs are ordered by compression; negotiation
	// settles on min(offer, cap)). The zero value pins the exact
	// uncompressed f64 protocol.
	MaxCodec wire.Codec

	// Rounds counts completed training cycles.
	Rounds int
	// Final holds the global model delivered with Done, if any.
	Final []*tensor.Tensor
	// RejectedReason is set when the server refused this client.
	RejectedReason string
	// NegotiatedCodec records the session's tensor codec after the
	// handshake.
	NegotiatedCodec wire.Codec
}

// NewClient pairs a connection with a trainer.
func NewClient(conn Conn, trainer Trainer) *Client {
	return &Client{conn: conn, trainer: trainer}
}

// Run participates in a full training session: selection, then rounds
// until the server sends Done (or Reject). It returns nil on a clean
// finish or rejection; RejectedReason distinguishes the two.
func (c *Client) Run() error {
	msg, err := c.conn.Recv()
	if err != nil {
		return fmt.Errorf("fl: awaiting challenge: %w", err)
	}
	ch, ok := msg.(*Challenge)
	if !ok {
		return fmt.Errorf("fl: expected Challenge, got %T", msg)
	}

	codec := ch.Codec
	if codec > c.MaxCodec {
		codec = c.MaxCodec
	}
	att := &Attest{DeviceID: c.trainer.DeviceID(), HasTEE: c.trainer.HasTEE(), Codec: codec}
	if c.trainer.HasTEE() {
		quote, err := c.trainer.Attest(ch.Nonce)
		if err != nil {
			return fmt.Errorf("fl: attestation: %w", err)
		}
		att.Quote = quote
		pub, err := c.trainer.OpenChannel(ch.ServerPub)
		if err != nil {
			return fmt.Errorf("fl: opening trusted channel: %w", err)
		}
		att.ClientPub = pub
	}
	if err := c.conn.Send(att); err != nil {
		return fmt.Errorf("fl: sending attestation: %w", err)
	}
	c.conn.SetCodec(codec)
	c.NegotiatedCodec = codec

	for {
		msg, err := c.conn.Recv()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("fl: server closed mid-session: %w", err)
			}
			return fmt.Errorf("fl: receiving: %w", err)
		}
		switch m := msg.(type) {
		case *Reject:
			c.RejectedReason = m.Reason
			return nil
		case *Done:
			c.Final = m.Final
			return nil
		case *ModelDown:
			plainUpd, sealedUpd, err := c.trainer.TrainRound(m.Round, m.Plain, m.Sealed, m.Plan)
			if err != nil {
				_ = c.conn.Send(&ErrorMsg{Text: err.Error()})
				return fmt.Errorf("fl: local training round %d: %w", m.Round, err)
			}
			up := &GradUp{Round: m.Round, Plain: plainUpd, Sealed: sealedUpd}
			if ec, ok := c.trainer.(ExampleCounter); ok {
				if n := ec.NumExamples(); n > 0 {
					up.Examples = uint64(n)
				}
			}
			if err := c.conn.Send(up); err != nil {
				return fmt.Errorf("fl: sending update: %w", err)
			}
			c.Rounds++
		case *ErrorMsg:
			return fmt.Errorf("fl: server error: %s", m.Text)
		default:
			return fmt.Errorf("fl: unexpected message %T", msg)
		}
	}
}
