package fl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// testTA is the minimal trusted app used for attestation in tests.
type testTA struct{ uuid tz.UUID }

func (t *testTA) UUID() tz.UUID                                   { return t.uuid }
func (t *testTA) Version() string                                 { return "test-1" }
func (t *testTA) OpenSession(*tz.TAEnv) (any, error)              { return nil, nil }
func (t *testTA) Invoke(*tz.TAEnv, any, uint32, any) (any, error) { return nil, nil }
func (t *testTA) CloseSession(*tz.TAEnv, any)                     {}

// testTrainer implements Trainer with a constant additive update.
type testTrainer struct {
	id     string
	hasTEE bool
	delta  float64

	dev  *tz.Device
	app  *testTA
	chMu sync.Mutex
	ch   *tz.Channel

	// sawNilAt records which plain positions arrived nil per round.
	sawNilAt map[int]bool
	// openedBlobs records the plaintext of every sealed model payload
	// this trainer opened, in round order.
	openedBlobs [][]byte
	// sentBlobs records the plaintext of every sealed update this
	// trainer produced, in round order.
	sentBlobs [][]byte
	// failOnRound injects a training failure.
	failOnRound int
	// examples is reported through the ExampleCounter extension; 0
	// leaves the update unit-weighted.
	examples int
	// maxCodec caps the client's codec negotiation (default f64).
	maxCodec wire.Codec
}

// NumExamples implements the optional ExampleCounter extension.
func (t *testTrainer) NumExamples() int { return t.examples }

func newTestTrainer(id string, hasTEE bool, delta float64) *testTrainer {
	t := &testTrainer{id: id, hasTEE: hasTEE, delta: delta, sawNilAt: map[int]bool{}, failOnRound: -1}
	if hasTEE {
		t.dev = tz.NewDevice(id)
		t.app = &testTA{uuid: tz.NameUUID("trainer-ta")}
		if err := t.dev.Install(t.app); err != nil {
			panic(err)
		}
	}
	return t
}

func (t *testTrainer) DeviceID() string { return t.id }
func (t *testTrainer) HasTEE() bool     { return t.hasTEE }

func (t *testTrainer) Attest(nonce []byte) (tz.Quote, error) {
	return t.dev.Attest(t.app.UUID(), nonce)
}

func (t *testTrainer) OpenChannel(serverPub []byte) ([]byte, error) {
	offer, err := tz.NewChannelOffer()
	if err != nil {
		return nil, err
	}
	ch, err := offer.Establish(serverPub, false)
	if err != nil {
		return nil, err
	}
	t.chMu.Lock()
	t.ch = ch
	t.chMu.Unlock()
	return offer.Public, nil
}

func (t *testTrainer) TrainRound(round int, plain []*tensor.Tensor, sealed []byte, plan []byte) ([]*tensor.Tensor, []byte, error) {
	if round == t.failOnRound {
		return nil, nil, errors.New("injected failure")
	}
	full := make([]*tensor.Tensor, len(plain))
	copy(full, plain)
	var protIdx []int
	if len(sealed) > 0 {
		blob, err := t.ch.Open(sealed)
		if err != nil {
			return nil, nil, err
		}
		t.openedBlobs = append(t.openedBlobs, append([]byte(nil), blob...))
		idx, ts, err := ParseSealedUpdate(blob)
		if err != nil {
			return nil, nil, err
		}
		for j, id := range idx {
			full[id] = ts[j]
			protIdx = append(protIdx, id)
		}
	}
	for i, p := range plain {
		if p == nil {
			t.sawNilAt[i] = true
		}
	}
	plainUpd := make([]*tensor.Tensor, len(full))
	var secretTs []*tensor.Tensor
	prot := map[int]bool{}
	for _, id := range protIdx {
		prot[id] = true
	}
	for i, w := range full {
		if w == nil {
			return nil, nil, fmt.Errorf("missing weights for %d", i)
		}
		upd := tensor.Full(t.delta, w.Shape...)
		if prot[i] {
			secretTs = append(secretTs, upd)
		} else {
			plainUpd[i] = upd
		}
	}
	var sealedUpd []byte
	if len(protIdx) > 0 {
		blob := SealedUpdate(protIdx, secretTs)
		t.sentBlobs = append(t.sentBlobs, blob)
		sealedUpd = t.ch.Seal(blob)
	}
	return plainUpd, sealedUpd, nil
}

func newState(vals ...float64) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(vals))
	for i, v := range vals {
		out[i] = tensor.Full(v, 2, 2)
	}
	return out
}

// runSession wires n trainers to a server over in-memory pipes.
func runSession(t *testing.T, srv *Server, trainers []*testTrainer) ([]*Client, error) {
	t.Helper()
	serverConns := make([]Conn, len(trainers))
	clients := make([]*Client, len(trainers))
	var wg sync.WaitGroup
	cErrs := make([]error, len(trainers))
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		clients[i] = NewClient(cc, tr)
		clients[i].MaxCodec = tr.maxCodec
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cErrs[i] = clients[i].Run()
		}(i)
	}
	_, sErr := srv.Run(serverConns)
	wg.Wait()
	for i, err := range cErrs {
		if err != nil && sErr == nil {
			return clients, fmt.Errorf("client %d: %w", i, err)
		}
	}
	return clients, sErr
}

func TestSessionNoTEE(t *testing.T) {
	state := newState(1, 10)
	srv := NewServer(state, ServerConfig{Rounds: 3})
	trainers := []*testTrainer{
		newTestTrainer("c1", false, 1),
		newTestTrainer("c2", false, 3),
	}
	clients, err := runSession(t, srv, trainers)
	if err != nil {
		t.Fatal(err)
	}
	// avg delta = 2 per round, 3 rounds → +6 on every element.
	if got := state[0].Data[0]; got != 7 {
		t.Fatalf("state[0] = %v, want 7", got)
	}
	if got := state[1].Data[0]; got != 16 {
		t.Fatalf("state[1] = %v, want 16", got)
	}
	for i, c := range clients {
		if c.Rounds != 3 {
			t.Fatalf("client %d rounds = %d", i, c.Rounds)
		}
		if len(c.Final) != 2 || c.Final[0].Data[0] != 7 {
			t.Fatalf("client %d final = %v", i, c.Final)
		}
	}
}

func setupVerifier(trainers ...*testTrainer) *tz.Verifier {
	v := tz.NewVerifier()
	for _, tr := range trainers {
		if tr.hasTEE {
			v.RegisterDevice(tr.dev.Identity().ID(), tr.dev.Identity().RootKey())
			m, _ := tr.dev.Measurement(tr.app.UUID())
			v.AllowMeasurement(m)
		}
	}
	return v
}

func TestSelectionRejectsNonTEE(t *testing.T) {
	tee := newTestTrainer("tee", true, 1)
	plain := newTestTrainer("plain", false, 1)
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 1, RequireTEE: true, Verifier: setupVerifier(tee, plain),
	})
	clients, err := runSession(t, srv, []*testTrainer{tee, plain})
	if err != nil {
		t.Fatal(err)
	}
	if clients[0].RejectedReason != "" {
		t.Fatalf("TEE client rejected: %s", clients[0].RejectedReason)
	}
	if clients[1].RejectedReason == "" {
		t.Fatal("non-TEE client must be rejected when RequireTEE")
	}
}

func TestSelectionRejectsUnknownDevice(t *testing.T) {
	good := newTestTrainer("good", true, 1)
	rogue := newTestTrainer("rogue", true, 1)
	v := setupVerifier(good) // rogue not registered
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, RequireTEE: true, Verifier: v})
	clients, err := runSession(t, srv, []*testTrainer{good, rogue})
	if err != nil {
		t.Fatal(err)
	}
	if clients[1].RejectedReason == "" {
		t.Fatal("unregistered device must be rejected")
	}
	if !strings.Contains(clients[1].RejectedReason, "attestation failed") {
		t.Fatalf("reason = %q", clients[1].RejectedReason)
	}
}

func TestNotEnoughClients(t *testing.T) {
	plain := newTestTrainer("plain", false, 1)
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 1, RequireTEE: true, Verifier: tz.NewVerifier(), MinClients: 1,
	})
	_, err := runSession(t, srv, []*testTrainer{plain})
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("err = %v", err)
	}
}

// staticPlanner protects a fixed set of flat indices every round.
type staticPlanner map[int]bool

func (p staticPlanner) PlanRound(int) (map[int]bool, []byte) { return p, []byte("plan") }

func TestSealedPathProtectsTensors(t *testing.T) {
	tee := newTestTrainer("tee", true, 2)
	state := newState(5, 50)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(tee),
		Planner: staticPlanner{0: true},
	})
	if _, err := runSession(t, srv, []*testTrainer{tee}); err != nil {
		t.Fatal(err)
	}
	// Protected tensor 0 must have arrived nil in the clear.
	if !tee.sawNilAt[0] {
		t.Fatal("protected tensor 0 was sent in the clear")
	}
	if tee.sawNilAt[1] {
		t.Fatal("unprotected tensor 1 went missing")
	}
	// Updates must still be applied to both tensors: +2 × 2 rounds.
	if state[0].Data[0] != 9 || state[1].Data[0] != 54 {
		t.Fatalf("state = %v / %v", state[0].Data[0], state[1].Data[0])
	}
}

func TestClientTrainingFailurePropagates(t *testing.T) {
	bad := newTestTrainer("bad", false, 1)
	bad.failOnRound = 1
	srv := NewServer(newState(0), ServerConfig{Rounds: 3})
	_, err := runSession(t, srv, []*testTrainer{bad})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPTransportSession(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	state := newState(1)
	srv := NewServer(state, ServerConfig{Rounds: 2})

	var wg sync.WaitGroup
	wg.Add(1)
	var clientErr error
	go func() {
		defer wg.Done()
		conn, err := Dial(l.Addr())
		if err != nil {
			clientErr = err
			return
		}
		defer conn.Close()
		clientErr = NewClient(conn, newTestTrainer("tcp-client", false, 5)).Run()
	}()

	sc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := srv.Run([]Conn{sc}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	if state[0].Data[0] != 11 {
		t.Fatalf("state = %v, want 11", state[0].Data[0])
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		&Challenge{Nonce: []byte{1, 2}, ServerPub: []byte{3}, RequireTEE: true},
		&Attest{DeviceID: "d", HasTEE: true, ClientPub: []byte{9},
			Quote: tz.Quote{DeviceID: "d", Nonce: []byte{1}, MAC: []byte{2}}},
		&Reject{Reason: "no TEE"},
		&ModelDown{Round: 3, Plain: []*tensor.Tensor{nil, tensor.Full(1, 2)}, Sealed: []byte{7}, Plan: []byte{8}},
		&GradUp{Round: 3, Plain: []*tensor.Tensor{tensor.Full(2, 2), nil}, Sealed: []byte{6}},
		&Done{Final: []*tensor.Tensor{tensor.Full(3, 1)}},
		&ErrorMsg{Text: "boom"},
	}
	for _, m := range msgs {
		got, err := DecodeMessage(m.Kind(), EncodeMessage(m))
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if got.Kind() != m.Kind() {
			t.Fatalf("%T kind mismatch", m)
		}
	}
	if _, err := DecodeMessage(200, nil); err == nil {
		t.Fatal("unknown message type must fail")
	}
	if _, err := DecodeMessage(MsgModelDown, []byte{0xFF}); err == nil {
		t.Fatal("corrupt payload must fail")
	}
}

func TestFedAvgMath(t *testing.T) {
	u1 := []*tensor.Tensor{tensor.Full(1, 2), tensor.Full(10, 2)}
	u2 := []*tensor.Tensor{tensor.Full(3, 2), tensor.Full(30, 2)}
	avg := FedAvg([][]*tensor.Tensor{u1, u2})
	if avg[0].Data[0] != 2 || avg[1].Data[0] != 20 {
		t.Fatalf("FedAvg = %v / %v", avg[0].Data, avg[1].Data)
	}
	if FedAvg(nil) != nil {
		t.Fatal("FedAvg of nothing must be nil")
	}
	state := newStateScalar(100, 2)
	ApplyUpdate(state, avg, 0.5)
	if state[0].Data[0] != 101 {
		t.Fatalf("ApplyUpdate = %v", state[0].Data[0])
	}
}

func newStateScalar(v float64, n int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = tensor.Full(v, 2)
	}
	return out
}

func TestSealedUpdateRoundTrip(t *testing.T) {
	idx := []int{2, 5}
	ts := []*tensor.Tensor{tensor.Full(1, 2), tensor.Full(2, 3)}
	blob := SealedUpdate(idx, ts)
	gotIdx, gotTs, err := ParseSealedUpdate(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIdx) != 2 || gotIdx[0] != 2 || gotIdx[1] != 5 {
		t.Fatalf("idx = %v", gotIdx)
	}
	if !gotTs[1].EqualApprox(ts[1], 0) {
		t.Fatal("tensor mismatch")
	}
	if _, _, err := ParseSealedUpdate([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("corrupt sealed update must fail")
	}
}

func TestPipeCloseSemantics(t *testing.T) {
	a, b := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&Reject{}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv from closed peer must fail")
	}
}
