package fl

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// TestCodecNegotiationCaps: the server offers q8; clients settle on
// min(offer, own cap) and the session still converges exactly (constant
// updates survive every codec bit-for-bit).
func TestCodecNegotiationCaps(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 2, Codec: wire.CodecQ8})
	t1 := newTestTrainer("full", false, 1)
	t1.maxCodec = wire.CodecQ8
	t2 := newTestTrainer("half", false, 3)
	t2.maxCodec = wire.CodecF32
	t3 := newTestTrainer("legacy", false, 5) // cap f64 (zero value)
	clients, err := runSession(t, srv, []*testTrainer{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []wire.Codec{wire.CodecQ8, wire.CodecF32, wire.CodecF64} {
		if got := clients[i].NegotiatedCodec; got != want {
			t.Fatalf("client %d negotiated %s, want %s", i, got, want)
		}
	}
	// mean delta = 3 per round, 2 rounds; constant tensors are exact
	// under q8 and f32, so the aggregate is identical to an f64 session.
	if got := state[0].Data[0]; got != 6 {
		t.Fatalf("state = %v, want 6", got)
	}
}

// TestCodecAboveOfferRejected: a client answering with more compression
// than the server offered is a protocol violation and is turned away.
func TestCodecAboveOfferRejected(t *testing.T) {
	sc, cc := Pipe()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, Codec: wire.CodecF32})

	var rejected string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cc.Close()
		msg, err := cc.Recv()
		if err != nil {
			return
		}
		if _, ok := msg.(*Challenge); !ok {
			return
		}
		_ = cc.Send(&Attest{DeviceID: "greedy", Codec: wire.CodecQ8})
		if m, err := cc.Recv(); err == nil {
			if rej, ok := m.(*Reject); ok {
				rejected = rej.Reason
			}
		}
	}()
	_, err := srv.Run([]Conn{sc})
	wg.Wait()
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", err)
	}
	if !strings.Contains(rejected, "codec") {
		t.Fatalf("rejection reason = %q", rejected)
	}
}

// TestWeightedFedAvgOnTheWire: GradUp example counts weight the
// aggregate — (1·2 + 3·6)/4 = 5 — and surface in the round trace.
func TestWeightedFedAvgOnTheWire(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1})
	small := newTestTrainer("small", false, 2)
	small.examples = 1
	big := newTestTrainer("big", false, 6)
	big.examples = 3
	if _, err := runSession(t, srv, []*testTrainer{small, big}); err != nil {
		t.Fatal(err)
	}
	if got := state[0].Data[0]; got != 5 {
		t.Fatalf("weighted state = %v, want 5", got)
	}
	stats := srv.Trace()[0]
	if stats.WeightTotal != 4 || stats.Responded != 2 {
		t.Fatalf("stats = %+v, want weight 4 over 2 responders", stats)
	}
}

// TestUnweightedStaysUnitWeight: clients that do not report examples
// keep the plain FedAvg semantics (WeightTotal == Responded).
func TestUnweightedStaysUnitWeight(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1})
	if _, err := runSession(t, srv, []*testTrainer{
		newTestTrainer("a", false, 2), newTestTrainer("b", false, 6),
	}); err != nil {
		t.Fatal(err)
	}
	if got := state[0].Data[0]; got != 4 {
		t.Fatalf("state = %v, want plain mean 4", got)
	}
	if stats := srv.Trace()[0]; stats.WeightTotal != 2 {
		t.Fatalf("WeightTotal = %v, want 2", stats.WeightTotal)
	}
}

// TestExampleWeightClamped: a client claiming an absurd example count
// is folded at MaxExampleWeight, not at its claimed weight, so it
// cannot fully drown out the cohort.
func TestExampleWeightClamped(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1})
	greedy := newTestTrainer("greedy", false, 2)
	greedy.examples = 1 << 40
	honest := newTestTrainer("honest", false, 6)
	honest.examples = 1
	if _, err := runSession(t, srv, []*testTrainer{greedy, honest}); err != nil {
		t.Fatal(err)
	}
	if got, want := srv.Trace()[0].WeightTotal, float64(MaxExampleWeight+1); got != want {
		t.Fatalf("WeightTotal = %v, want clamped %v", got, want)
	}
	// The aggregate is still dominated by the clamped client, but the
	// honest update measurably participates (it would not at 2^40).
	got := state[0].Data[0]
	want := (float64(MaxExampleWeight)*2 + 6) * (1 / float64(MaxExampleWeight+1))
	if got != want {
		t.Fatalf("weighted state = %v, want %v", got, want)
	}
}

// TestSealedPathUnderQ8: quantised sessions must leave the sealed
// (trusted-channel) tensors at full precision and still fold exactly.
func TestSealedPathUnderQ8(t *testing.T) {
	tee := newTestTrainer("tee", true, 2)
	tee.maxCodec = wire.CodecQ8
	state := newState(5, 50)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(tee),
		Planner: staticPlanner{0: true}, Codec: wire.CodecQ8,
	})
	if _, err := runSession(t, srv, []*testTrainer{tee}); err != nil {
		t.Fatal(err)
	}
	if !tee.sawNilAt[0] || tee.sawNilAt[1] {
		t.Fatalf("protection split wrong: %v", tee.sawNilAt)
	}
	if state[0].Data[0] != 9 || state[1].Data[0] != 54 {
		t.Fatalf("state = %v / %v, want 9 / 54", state[0].Data[0], state[1].Data[0])
	}
}

// TestSealedPayloadsByteIdenticalAcrossCodecs: whatever codec the
// session negotiates, the sealed (trusted-channel) payloads in both
// directions must stay on the exact f64 encoding — the inner plaintext
// blobs are byte-identical across f64/f32/q8 sessions and decode to the
// exact tensors.
func TestSealedPayloadsByteIdenticalAcrossCodecs(t *testing.T) {
	type capture struct {
		opened [][]byte // server→client sealed model payloads (plaintext)
		sent   [][]byte // client→server sealed update payloads (plaintext)
	}
	run := func(codec wire.Codec) capture {
		tee := newTestTrainer("tee", true, 2)
		tee.maxCodec = codec
		state := newState(5, 50)
		srv := NewServer(state, ServerConfig{
			Rounds: 2, RequireTEE: true, Verifier: setupVerifier(tee),
			Planner: staticPlanner{0: true}, Codec: codec,
		})
		if _, err := runSession(t, srv, []*testTrainer{tee}); err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if state[0].Data[0] != 9 || state[1].Data[0] != 54 {
			t.Fatalf("%s: state = %v / %v", codec, state[0].Data[0], state[1].Data[0])
		}
		return capture{opened: tee.openedBlobs, sent: tee.sentBlobs}
	}

	ref := run(wire.CodecF64)
	if len(ref.opened) != 2 || len(ref.sent) != 2 {
		t.Fatalf("f64 session sealed %d down / %d up payloads, want 2 / 2", len(ref.opened), len(ref.sent))
	}
	// The sealed model payload must carry the exact f64 state (5 in
	// round 0), not a quantised copy.
	idx, ts, err := ParseSealedUpdate(ref.opened[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != 0 || ts[0].Data[0] != 5 {
		t.Fatalf("sealed round-0 model = idx %v, value %v", idx, ts[0].Data)
	}

	for _, codec := range []wire.Codec{wire.CodecF32, wire.CodecQ8} {
		got := run(codec)
		for r := range ref.opened {
			if string(got.opened[r]) != string(ref.opened[r]) {
				t.Fatalf("%s: sealed model payload for round %d differs from the f64 session", codec, r)
			}
			if string(got.sent[r]) != string(ref.sent[r]) {
				t.Fatalf("%s: sealed update payload for round %d differs from the f64 session", codec, r)
			}
		}
	}
}

// TestAccumulateQ8MatchesMaterialisedFold: folding raw q8 levels must
// be bit-for-bit the arithmetic of materialising the tensors and
// calling Add.
func TestAccumulateQ8MatchesMaterialisedFold(t *testing.T) {
	ref := []*tensor.Tensor{tensor.New(3, 4), tensor.New(7)}
	encode := func(seed int64) []*wire.Q8Tensor {
		rng := rand.New(rand.NewSource(seed))
		upd := make([]*tensor.Tensor, len(ref))
		for i, r := range ref {
			upd[i] = tensor.Randn(rng, 1.0, r.Shape...)
		}
		w := wire.NewWriter()
		w.Codec = wire.CodecQ8
		w.TensorList(upd)
		r := wire.NewReader(w.Bytes())
		r.Codec = wire.CodecQ8
		return r.Q8TensorList()
	}

	lazy := NewAggregator(ref)
	eager := NewAggregator(ref)
	for seed := int64(1); seed <= 5; seed++ {
		q8 := encode(seed)
		weight := float64(seed)
		if err := lazy.AccumulateQ8(q8, weight); err != nil {
			t.Fatal(err)
		}
		mat := make([]*tensor.Tensor, len(q8))
		for i, q := range q8 {
			mat[i] = q.Materialise()
		}
		if err := eager.Add(mat, weight); err != nil {
			t.Fatal(err)
		}
	}
	lm, err := lazy.Mean()
	if err != nil {
		t.Fatal(err)
	}
	em, err := eager.Mean()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range lm[i].Data {
			if lm[i].Data[j] != em[i].Data[j] {
				t.Fatalf("tensor %d elem %d: lazy %v != eager %v", i, j, lm[i].Data[j], em[i].Data[j])
			}
		}
	}
	// Validation parity with Add.
	if err := lazy.AccumulateQ8(encode(9)[:1], 1); err == nil {
		t.Fatal("short q8 update must be rejected")
	}
	if err := lazy.AccumulateQ8(encode(9), 0); err == nil {
		t.Fatal("zero weight must be rejected")
	}
	bad := encode(9)
	bad[0] = nil
	if err := lazy.AccumulateQ8(bad, 1); err == nil {
		t.Fatal("nil q8 tensor must be rejected")
	}
}

// TestIOTimeoutUnblocksSelection: a TCP client that connects and then
// goes silent can no longer stall selection — the handshake read
// deadline expires and the session proceeds with the healthy cohort.
func TestIOTimeoutUnblocksSelection(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Healthy participant.
	var wg sync.WaitGroup
	wg.Add(1)
	var clientErr error
	go func() {
		defer wg.Done()
		conn, err := Dial(l.Addr())
		if err != nil {
			clientErr = err
			return
		}
		defer conn.Close()
		clientErr = NewClient(conn, newTestTrainer("healthy", false, 3)).Run()
	}()
	// Dead weight: dials, then never reads or writes.
	dead, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()

	conns := make([]Conn, 0, 2)
	for len(conns) < 2 {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1, MinClients: 1, IOTimeout: 150 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := srv.Run(conns)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("selection still stalled despite IOTimeout")
	}
	wg.Wait()
	if clientErr != nil {
		t.Fatal(clientErr)
	}
	if got := state[0].Data[0]; got != 3 {
		t.Fatalf("state = %v, want 3", got)
	}
}

// TestWriteTimeoutUnblocksStalledSend: a peer that stops reading cannot
// block Send forever once a write timeout is armed (net.Pipe is fully
// synchronous, so the very first unread byte stalls the writer).
func TestWriteTimeoutUnblocksStalledSend(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	conn := NewNetConn(p1)
	dc := conn.(DeadlineConn)
	dc.SetWriteTimeout(100 * time.Millisecond)

	errc := make(chan error, 1)
	go func() { errc <- conn.Send(&ModelDown{Round: 0, Plain: newState(1, 2)}) }()
	select {
	case err := <-errc:
		var nerr net.Error
		if err == nil || !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("err = %v, want a net timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Send still blocked despite write timeout")
	}
}
