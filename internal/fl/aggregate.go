package fl

import (
	"errors"
	"fmt"
	"math"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// Aggregator performs streaming (one-pass) federated averaging: each
// client update is folded into a running weighted sum the moment it
// arrives, so server memory stays O(model) instead of O(clients × model)
// as in the buffered FedAvg path. Folding u with weight w and finishing
// with Mean() computes Σ wᵢuᵢ / Σ wᵢ — for unit weights, exactly the
// arithmetic of FedAvg applied in arrival order.
type Aggregator struct {
	ref    []*tensor.Tensor
	sum    []*tensor.Tensor
	weight float64
	count  int
}

// NewAggregator creates an aggregator for updates shaped like ref (the
// global model's flat parameter tensors). No per-client storage is
// allocated — only one model-sized accumulator.
func NewAggregator(ref []*tensor.Tensor) *Aggregator {
	sum := make([]*tensor.Tensor, len(ref))
	for i, r := range ref {
		sum[i] = tensor.New(r.Shape...)
	}
	return &Aggregator{ref: ref, sum: sum}
}

// Add folds one complete client update into the running sum with the
// given weight (use 1 for plain FedAvg). The update must match the
// reference shapes; it may be released by the caller immediately after.
func (a *Aggregator) Add(update []*tensor.Tensor, weight float64) error {
	if len(update) != len(a.ref) {
		return fmt.Errorf("fl: update has %d tensors, model has %d", len(update), len(a.ref))
	}
	if weight <= 0 {
		return fmt.Errorf("fl: non-positive update weight %v", weight)
	}
	for i, u := range update {
		if u == nil {
			return fmt.Errorf("fl: update missing tensor %d", i)
		}
		if !u.SameShape(a.ref[i]) {
			return fmt.Errorf("fl: update tensor %d has shape %v, want %v", i, u.Shape, a.ref[i].Shape)
		}
	}
	for i, u := range update {
		tensor.AxPy(weight, u, a.sum[i])
	}
	a.weight += weight
	a.count++
	return nil
}

// AccumulateQ8 folds one complete client update that arrived in the
// lazy q8 wire form, dequantising each element straight into the
// running sum — no per-client float64 tensors are materialised, which
// removes the remaining allocation floor of large quantised fleets.
// The arithmetic is element-for-element identical to materialising the
// tensors and calling Add: v = lo + q·(scale/2) + q·(scale/2), then
// sum += weight·v.
func (a *Aggregator) AccumulateQ8(update []*wire.Q8Tensor, weight float64) error {
	if len(update) != len(a.ref) {
		return fmt.Errorf("fl: update has %d tensors, model has %d", len(update), len(a.ref))
	}
	if weight <= 0 {
		return fmt.Errorf("fl: non-positive update weight %v", weight)
	}
	for i, q := range update {
		if q == nil {
			return fmt.Errorf("fl: update missing tensor %d", i)
		}
		if !q.SameShape(a.ref[i]) || len(q.Levels) != a.ref[i].Size() {
			return fmt.Errorf("fl: update tensor %d has shape %v, want %v", i, q.Shape, a.ref[i].Shape)
		}
	}
	for i, q := range update {
		dst := a.sum[i].Data
		half := q.Scale / 2
		lo := q.Lo
		for j, b := range q.Levels {
			lvl := float64(b)
			dst[j] += weight * (lo + lvl*half + lvl*half)
		}
	}
	a.weight += weight
	a.count++
	return nil
}

// Count returns the number of folded updates.
func (a *Aggregator) Count() int { return a.count }

// Sum returns the raw weighted sum Σ wᵢuᵢ of the folded updates. The
// tensors alias the accumulator: hierarchical edges hand them straight
// to the wire encoder and discard the aggregator, so no copy is made —
// callers must not Add afterwards while still holding the slice.
func (a *Aggregator) Sum() []*tensor.Tensor { return a.sum }

// Weight returns the summed weight of the folded updates.
func (a *Aggregator) Weight() float64 { return a.weight }

// Mean returns the weighted average of the folded updates as freshly
// allocated tensors, or an error when nothing was folded. The
// accumulator is left intact, so further Adds remain valid.
func (a *Aggregator) Mean() ([]*tensor.Tensor, error) {
	if a.count == 0 {
		return nil, errors.New("fl: aggregating zero updates")
	}
	out := make([]*tensor.Tensor, len(a.sum))
	inv := 1 / a.weight
	for i, s := range a.sum {
		out[i] = tensor.Scale(s, inv)
	}
	return out, nil
}

// UpdateNorm returns the L2 norm of a flat update (the concatenation of
// its tensors) — the per-round aggregate magnitude reported in traces.
func UpdateNorm(update []*tensor.Tensor) float64 {
	var ss float64
	for _, u := range update {
		for _, x := range u.Data {
			ss += x * x
		}
	}
	return math.Sqrt(ss)
}
