package fl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// Secure-aggregation errors.
var (
	// ErrSecAggNeedsEnclave is returned when the planner protects
	// tensors in a SecAgg session but no aggregation enclave is
	// configured — the server must never unseal protected updates into
	// plaintext itself.
	ErrSecAggNeedsEnclave = errors.New("fl: protection plan requires an aggregation enclave in secure-aggregation mode")
	// ErrSecAggRecon is returned when mask reconciliation cannot
	// complete: a surviving cohort member failed to reveal its round
	// seeds with the dropped clients, leaving the folded sum masked.
	ErrSecAggRecon = errors.New("fl: secure-aggregation mask reconciliation failed")
	// ErrPartialProtected is returned when a hierarchical edge in
	// secure-aggregation mode is given a protecting planner: sealed
	// halves aggregate inside the root's enclave, which a shard partial
	// cannot carry.
	ErrPartialProtected = errors.New("fl: hierarchical secure-aggregation partials cannot carry protected tensors")
	// ErrLateAfterRecon is returned (through the quarantine/probation
	// machinery) when a device delivers an update for a round whose
	// masks were already reconciled with that device counted as dropped.
	// The survivors revealed their pair seeds with it for that round, so
	// a server holding this update could strip its masks and read it —
	// the exact hole silent discarding left open. The update is refused
	// and the device sanctioned (probation under QuarantineRounds,
	// permanent quarantine otherwise).
	ErrLateAfterRecon = errors.New("fl: update arrived after its round's masks were reconciled")
)

// resolveMaskDegree turns the configured MaskDegree into the round's
// concrete graph degree for a cohort of n: 0 keeps legacy full-pairwise
// masking, negative (secagg.AutoDegree) sizes the graph from the
// cohort, positive fixes it.
func resolveMaskDegree(cfg, n int) int {
	if cfg < 0 {
		return secagg.DegreeFor(n)
	}
	return cfg
}

// secAggRoundState bundles one secure-aggregation round's mutable fold
// state so the arrival handler and the reconciliation phase share one
// view of it.
type secAggRoundState struct {
	degree       int           // resolved mask-graph degree (0 = full pairwise)
	graph        *secagg.Graph // nil in legacy mode
	msum         *secagg.MaskedSum
	hasProtected bool
	pending      map[*session]bool
	folded       map[*session]bool
	// wrapped stores each folded client's wrapped self-seed shares,
	// owner → holder → blob, opaque to the server until reconciliation
	// forwards them to their holders.
	wrapped map[string]map[string][]byte
}

// runSecAggRound executes one secure-aggregation FL cycle. It mirrors
// runRound's lifecycle — sample, distribute, fold until the deadline —
// but the server folds pairwise-masked ring levels it cannot read, the
// sealed half of each update is aggregated inside the enclave, and a
// round that drops stragglers runs a reconciliation phase where the
// survivors reveal their round-scoped pair seeds with the dropped
// clients so the unpaired mask residue can be subtracted. In partial
// mode the cancelled ring sums are returned instead of being
// dequantised and applied.
func (s *Server) runSecAggRound(round int, sessions []*session, arrivals <-chan arrival) (*Partial, error) {
	alive := live(sessions, round)
	if len(alive) < s.cfg.MinClients {
		return nil, fmt.Errorf("%w: %d live clients, need %d", ErrNotEnoughClients, len(alive), s.cfg.MinClients)
	}
	s.curTrace = s.roundTrace
	if s.curTrace == 0 {
		s.curTrace = obs.RoundTrace(round)
	}
	s.ob.setTrace(s.curTrace)
	ptRound := s.ob.startPhase("round", round)
	defer ptRound.end()
	ptSample := s.ob.startPhase("sample", round)
	sampled := s.sample(alive)

	stats := RoundStats{Round: round, Sampled: len(sampled)}
	var reasons []string

	// Arm the deadline before any model leaves the server, exactly as
	// in the plaintext round.
	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}

	if s.cfg.Hooks.RoundStarted != nil {
		names := make([]string, len(sampled))
		for i, sess := range sampled {
			names[i] = sess.device
		}
		s.cfg.Hooks.RoundStarted(round, names)
	}

	protected, planBlob := s.cfg.Planner.PlanRound(round)
	var protIdx []int
	protectedMap := make(map[int]bool)
	for i := range s.state {
		if protected[i] {
			protIdx = append(protIdx, i)
			protectedMap[i] = true
		}
	}
	hasProtected := len(protIdx) > 0
	if hasProtected && s.cfg.Partials {
		s.closeRound(stats, false, nil)
		return nil, ErrPartialProtected
	}
	if hasProtected && s.cfg.Enclave == nil {
		s.closeRound(stats, false, nil)
		return nil, ErrSecAggNeedsEnclave
	}
	if hasProtected {
		shapes := make([][]int, len(protIdx))
		for k, id := range protIdx {
			shapes[k] = s.state[id].Shape
		}
		if err := s.cfg.Enclave.Begin(round, protIdx, shapes); err != nil {
			s.closeRound(stats, false, nil)
			return nil, fmt.Errorf("fl: enclave round begin: %w", err)
		}
	}
	finished := false
	defer func() {
		if hasProtected && !finished {
			s.cfg.Enclave.Abort(round)
		}
	}()

	// The cohort roster travels with every ModelDown so each member can
	// derive its pairwise masks. It is identical for the whole cohort,
	// so the no-sealing broadcast stays encode-once per codec.
	cohort := make([]secagg.Peer, len(sampled))
	names := make([]string, len(sampled))
	for i, sess := range sampled {
		cohort[i] = secagg.Peer{Device: sess.device, Pub: sess.maskPub}
		names[i] = sess.device
	}

	// Resolve the round's masking topology. With a degree the server
	// derives the same deterministic graph every cohort member derives
	// from (round, roster) — no extra negotiation on the wire, only the
	// resolved degree riding ModelDown.
	degree := resolveMaskDegree(s.cfg.MaskDegree, len(sampled))
	var graph *secagg.Graph
	if degree > 0 {
		var err error
		if graph, err = secagg.NewGraph(round, names, degree); err != nil {
			s.closeRound(stats, false, nil)
			return nil, fmt.Errorf("fl: deriving mask graph: %w", err)
		}
		if graph.Degree() == 0 {
			// A one-member cohort has no pairs and needs no self mask.
			degree, graph = 0, nil
		}
	}

	// Distribute: without a protection plan every client receives the
	// shared frame; with one, each client's protected tensors are sealed
	// by the enclave on its own trusted channel.
	plain := make([]*tensor.Tensor, len(s.state))
	for i, p := range s.state {
		if !protectedMap[i] {
			plain[i] = p
		}
	}
	var sealedBlob []byte
	if hasProtected {
		sealedBlob = wire.EncodeSealedUpdate(protIdx, protTensors(s.state, protIdx))
	}
	shared := make(map[wire.Codec][]byte)
	if !hasProtected {
		for _, sess := range sampled {
			if _, ok := shared[sess.codec]; !ok {
				down := &ModelDown{Round: round, Plain: plain, Plan: planBlob, Cohort: cohort, Trace: s.curTrace, MaskDegree: degree}
				shared[sess.codec] = EncodeMessageCodec(down, sess.codec)
			}
		}
	}
	ptSample.end()
	ptBroadcast := s.ob.startPhase("broadcast", round)
	sendErrs := make([]error, len(sampled))
	var sends sync.WaitGroup
	for i, sess := range sampled {
		sends.Add(1)
		go func(i int, sess *session) {
			defer sends.Done()
			if !hasProtected {
				sendErrs[i] = sess.conn.SendFrame(MsgModelDown, shared[sess.codec])
				return
			}
			sealed, err := s.cfg.Enclave.Seal(sess.device, sealedBlob)
			if err == nil {
				down := &ModelDown{Round: round, Plain: plain, Sealed: sealed, Plan: planBlob, Cohort: cohort, Trace: s.curTrace, MaskDegree: degree}
				err = sess.conn.Send(down)
			}
			sendErrs[i] = err
		}(i, sess)
	}
	sends.Wait()
	ptBroadcast.end()

	pending := make(map[*session]bool, len(sampled))
	for i, sess := range sampled {
		if sendErrs[i] != nil {
			s.quarantineAt(sess, round, false, fmt.Errorf("sending model: %w", sendErrs[i]), &stats, &reasons)
			continue
		}
		pending[sess] = true
	}

	msum := secagg.NewMaskedSum(s.state, protectedMap, s.cfg.SecAggScaleBits)
	s.ob.instrumentMaskedSum(msum)
	st := &secAggRoundState{
		degree:       degree,
		graph:        graph,
		msum:         msum,
		hasProtected: hasProtected,
		pending:      pending,
		folded:       make(map[*session]bool, len(sampled)),
		wrapped:      make(map[string]map[string][]byte),
	}
	ptCollect := s.ob.startPhase("collect", round)
collect:
	for len(pending) > 0 {
		select {
		case a := <-arrivals:
			s.handleSecAggArrival(round, a, st, &stats, &reasons)
		case <-deadlineC:
			// Drain updates that raced the deadline, then drop the rest.
			for {
				select {
				case a := <-arrivals:
					s.handleSecAggArrival(round, a, st, &stats, &reasons)
				default:
					break collect
				}
			}
		}
	}
	ptCollect.end()
	folded := st.folded
	stats.Dropped = len(pending)
	stats.Responded = msum.Count()
	stats.WeightTotal = msum.Weight()

	if msum.Count() < s.cfg.MinClients {
		detail := ""
		if len(reasons) > 0 {
			detail = " (" + strings.Join(reasons, "; ") + ")"
		}
		err := fmt.Errorf("%w: %d of %d sampled clients responded, need %d%s",
			ErrNotEnoughClients, msum.Count(), stats.Sampled, s.cfg.MinClients, detail)
		s.closeRound(stats, false, nil)
		return nil, err
	}
	if s.cfg.MinRelease > 0 && msum.Count() < s.cfg.MinRelease {
		// Below the release floor the aggregate approaches an individual
		// update; the round fails before anything is dequantised. The
		// enclave enforces the same floor independently at Finish.
		err := fmt.Errorf("%w: %d of %d required for release", secagg.ErrCohortTooSmall, msum.Count(), s.cfg.MinRelease)
		s.closeRound(stats, false, nil)
		return nil, err
	}

	// Every cohort member that did not fold — straggler, quarantined or
	// unreachable — left its pairwise masks with the survivors dangling;
	// reconcile before the sum is readable. In k-regular mode the phase
	// always runs: every folded update additionally carries a self mask
	// that only the cohort's Shamir shares can remove.
	var unfolded []string
	var unfoldedSess []*session
	for _, sess := range sampled {
		if !folded[sess] {
			unfolded = append(unfolded, sess.device)
			unfoldedSess = append(unfoldedSess, sess)
		}
	}
	sort.Strings(unfolded)
	if graph != nil || len(unfolded) > 0 {
		ptRecon := s.ob.startPhase("reconcile", round)
		// From here the survivors reveal seeds for this round with the
		// unfolded members counted as dropped: any later update from
		// them for this round is refusable as unmaskable-by-the-server
		// (ErrLateAfterRecon), never silently discarded.
		for _, sess := range unfoldedSess {
			sess.reconDoneRound = round + 1
		}
		var err error
		if graph != nil {
			err = s.reconcileDouble(round, st, unfolded, arrivals, &stats, &reasons)
		} else {
			err = s.reconcileMasks(round, unfolded, folded, msum, arrivals, &stats, &reasons)
		}
		ptRecon.end()
		if err != nil {
			s.closeRound(stats, false, nil)
			return nil, err
		}
		// Reconciled counts reconciled dropouts in both modes — a full
		// k-regular fold reports 0 even though its self masks were
		// removed, keeping round traces comparable with plaintext runs.
		stats.Reconciled = len(unfolded)
	}

	if s.cfg.Partials {
		// Hierarchical edge: the shard's masks have cancelled (or been
		// reconciled), so the ring sums are clean partials that compose
		// additively in ℤ/2⁶⁴ at the root — which dequantises exactly
		// once over the whole fleet.
		s.closeRound(stats, true, nil)
		return &Partial{Round: round, Levels: msum.Levels(), ScaleBits: s.cfg.SecAggScaleBits,
			Weight: msum.Weight(), Count: msum.Count(), Stats: stats}, nil
	}

	ptClose := s.ob.startPhase("close", round)
	defer ptClose.end()
	mean, err := msum.Mean()
	if err != nil {
		s.closeRound(stats, false, nil)
		return nil, err
	}
	if hasProtected {
		encMean, err := s.cfg.Enclave.Finish(round, msum.Count())
		if err != nil {
			s.closeRound(stats, false, nil)
			return nil, fmt.Errorf("fl: enclave round finish: %w", err)
		}
		finished = true
		for k, id := range protIdx {
			mean[id] = encMean[k]
		}
	}
	stats.UpdateNorm = UpdateNorm(mean)
	ApplyUpdate(s.state, mean, 1.0)
	s.closeRound(stats, true, mean)
	return nil, nil
}

// protTensors selects the protected tensors in index order.
func protTensors(state []*tensor.Tensor, idx []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(idx))
	for k, id := range idx {
		out[k] = state[id]
	}
	return out
}

// handleSecAggArrival routes one client message during the fold phase
// of a secure-aggregation round.
func (s *Server) handleSecAggArrival(round int, a arrival, st *secAggRoundState, stats *RoundStats, reasons *[]string) {
	sess := a.sess
	if sess.quarantined {
		return // residue from an already-closed connection
	}
	if a.err != nil {
		delete(st.pending, sess)
		s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
		return
	}
	switch m := a.msg.(type) {
	case *CodecSwitch:
		// Ack of an adaptive downgrade; the receive codec already
		// flipped in the read loop.
		return
	case *MaskedUp:
		if m.Round < round {
			if m.Round < sess.reconDoneRound {
				// The target round's masks were already reconciled with
				// this device counted as dropped; the survivors' revealed
				// seeds would strip this very update.
				delete(st.pending, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("%w: masked update for round %d", ErrLateAfterRecon, m.Round), stats, reasons)
				return
			}
			stats.LateDiscarded++
			return
		}
		if m.Round > round || !st.pending[sess] {
			delete(st.pending, sess)
			s.quarantineAt(sess, round, true, fmt.Errorf("unexpected masked update for round %d during round %d", m.Round, round), stats, reasons)
			return
		}
		weight := uint64(1)
		if m.Examples > 0 {
			weight = min(m.Examples, MaxExampleWeight)
		}
		if err := s.foldMasked(sess, round, m, weight, st); err != nil {
			delete(st.pending, sess)
			s.quarantineAt(sess, round, true, err, stats, reasons)
			return
		}
		delete(st.pending, sess)
		st.folded[sess] = true
		s.journalAppend(&journal.Record{Type: journal.RecFold, Round: round, Device: sess.device})
		if s.cfg.Hooks.UpdateFolded != nil {
			s.cfg.Hooks.UpdateFolded(round, sess.device)
		}
	case *GradUp:
		// A plaintext update has no business in a secure-aggregation
		// session; one for an already-reconciled round is additionally
		// the unmasking hazard and carries the typed error.
		delete(st.pending, sess)
		if m.Round < sess.reconDoneRound {
			s.quarantineAt(sess, round, true, fmt.Errorf("%w: plaintext update for round %d", ErrLateAfterRecon, m.Round), stats, reasons)
			return
		}
		s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T mid-round", a.msg), stats, reasons)
	case *ErrorMsg:
		delete(st.pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
	default:
		delete(st.pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T mid-round", a.msg), stats, reasons)
	}
}

// foldMasked validates and folds one masked update: levels into the
// masked sum, the sealed half into the enclave, the wrapped self-seed
// shares into the round's escrow. Validation precedes every mutation so
// a rejected update leaves all accumulators untouched and consistent
// with each other.
func (s *Server) foldMasked(sess *session, round int, m *MaskedUp, weight uint64, st *secAggRoundState) error {
	wrapped, err := validateShares(sess.device, m.Shares, st.graph)
	if err != nil {
		return err
	}
	if !st.hasProtected {
		if len(m.Sealed) > 0 {
			return errors.New("sealed payload in a round without protected tensors")
		}
		if err := st.msum.Add(m.Levels, weight); err != nil { // Add validates atomically
			return err
		}
		if wrapped != nil {
			st.wrapped[sess.device] = wrapped
		}
		return nil
	}
	// The level check must pass before the enclave folds, or the two
	// accumulators drift apart on a rejected update. Add's own repeat
	// of the validation cannot fail after this.
	if err := st.msum.Validate(m.Levels); err != nil {
		return err
	}
	if len(m.Sealed) == 0 {
		return errors.New("masked update missing its sealed protected half")
	}
	if err := s.cfg.Enclave.Fold(sess.device, round, m.Sealed, float64(weight)); err != nil {
		return err
	}
	if err := st.msum.Add(m.Levels, weight); err != nil {
		return err
	}
	if wrapped != nil {
		st.wrapped[sess.device] = wrapped
	}
	return nil
}

// validateShares checks a masked update's wrapped self-seed shares
// against the round's mask graph before anything is folded: exactly one
// share per graph neighbour, none elsewhere, every blob the single
// valid length. Legacy rounds (nil graph) must carry none. Returns the
// shares keyed by holder.
func validateShares(device string, shares []secagg.WrappedShare, graph *secagg.Graph) (map[string][]byte, error) {
	if graph == nil {
		if len(shares) > 0 {
			return nil, errors.New("self-seed shares in a full-pairwise round")
		}
		return nil, nil
	}
	neigh := graph.Neighbors(device)
	if len(shares) != len(neigh) {
		return nil, fmt.Errorf("masked update carries %d self-seed shares, graph degree is %d", len(shares), len(neigh))
	}
	allowed := make(map[string]bool, len(neigh))
	for _, d := range neigh {
		allowed[d] = true
	}
	out := make(map[string][]byte, len(shares))
	for _, ws := range shares {
		if !allowed[ws.To] || out[ws.To] != nil {
			return nil, fmt.Errorf("self-seed share addressed to %q outside the mask neighbourhood", ws.To)
		}
		if len(ws.Blob) != secagg.WrappedShareLen {
			return nil, fmt.Errorf("self-seed share for %q is %d bytes, want %d", ws.To, len(ws.Blob), secagg.WrappedShareLen)
		}
		out[ws.To] = ws.Blob
	}
	return out, nil
}

// reconcileMasks runs the post-deadline reconciliation phase: every
// folded survivor is asked for its round seeds with the unfolded cohort
// members, and each revealed seed's mask expansion is subtracted from
// the folded sum. The phase is bounded by RoundDeadline (when set); any
// survivor that cannot answer leaves the sum unreadable, which fails
// the round.
func (s *Server) reconcileMasks(round int, unfolded []string, folded map[*session]bool, msum *secagg.MaskedSum, arrivals <-chan arrival, stats *RoundStats, reasons *[]string) error {
	need := make(map[*session]bool, len(folded))
	for sess := range folded {
		if sess.quarantined {
			return fmt.Errorf("%w: survivor %s lost before revealing shares", ErrSecAggRecon, sess.device)
		}
		need[sess] = true
	}
	req := &MaskRecon{Round: round, Dropped: unfolded}
	frames := make(map[wire.Codec][]byte)
	for sess := range need {
		payload, ok := frames[sess.codec]
		if !ok {
			payload = EncodeMessageCodec(req, sess.codec)
			frames[sess.codec] = payload
		}
		if err := sess.conn.SendFrame(MsgMaskRecon, payload); err != nil {
			return fmt.Errorf("%w: requesting shares from %s: %v", ErrSecAggRecon, sess.device, err)
		}
	}

	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}
	droppedSet := make(map[string]bool, len(unfolded))
	for _, d := range unfolded {
		droppedSet[d] = true
	}
	for len(need) > 0 {
		select {
		case a := <-arrivals:
			sess := a.sess
			if sess.quarantined {
				continue
			}
			if a.err != nil {
				if need[sess] {
					return fmt.Errorf("%w: survivor %s lost before revealing shares: %v", ErrSecAggRecon, sess.device, a.err)
				}
				s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
				continue
			}
			switch m := a.msg.(type) {
			case *CodecSwitch:
				continue // ack of an adaptive downgrade, handled in the read loop
			case *MaskShares:
				if m.Round != round || !need[sess] {
					s.quarantineAt(sess, round, true, fmt.Errorf("unexpected mask shares for round %d", m.Round), stats, reasons)
					if need[sess] {
						return fmt.Errorf("%w: survivor %s answered out of protocol", ErrSecAggRecon, sess.device)
					}
					continue
				}
				if err := applyShares(sess.device, m.Shares, droppedSet, msum); err != nil {
					s.quarantineAt(sess, round, true, err, stats, reasons)
					return fmt.Errorf("%w: shares from %s: %v", ErrSecAggRecon, sess.device, err)
				}
				delete(need, sess)
			case *MaskedUp:
				// A dropped straggler racing the reconciliation phase: the
				// survivors are revealing (or already revealed) their pair
				// seeds with it for this round, so accepting — or even
				// silently keeping — its update is the unmasking window.
				// Refuse it with the typed error; duplicates from folded
				// members remain plain late discards.
				if m.Round < sess.reconDoneRound {
					s.quarantineAt(sess, round, true, fmt.Errorf("%w: masked update for round %d", ErrLateAfterRecon, m.Round), stats, reasons)
					continue
				}
				if m.Round <= round {
					stats.LateDiscarded++
					continue
				}
				s.quarantineAt(sess, round, true, fmt.Errorf("masked update for future round %d", m.Round), stats, reasons)
			case *ErrorMsg:
				wasNeeded := need[sess]
				delete(need, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
				if wasNeeded {
					return fmt.Errorf("%w: survivor %s failed during reconciliation", ErrSecAggRecon, sess.device)
				}
			default:
				wasNeeded := need[sess]
				delete(need, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T during reconciliation", a.msg), stats, reasons)
				if wasNeeded {
					return fmt.Errorf("%w: survivor %s answered out of protocol", ErrSecAggRecon, sess.device)
				}
			}
		case <-deadlineC:
			var missing []string
			for sess := range need {
				missing = append(missing, sess.device)
			}
			sort.Strings(missing)
			return fmt.Errorf("%w: timed out waiting for shares from %s", ErrSecAggRecon, strings.Join(missing, ", "))
		}
	}
	return nil
}

// applyShares validates one survivor's revealed seeds — exactly one per
// dropped peer — and subtracts the corresponding mask expansions.
func applyShares(survivor string, shares []secagg.PairShare, droppedSet map[string]bool, msum *secagg.MaskedSum) error {
	if len(shares) != len(droppedSet) {
		return fmt.Errorf("revealed %d shares, want %d", len(shares), len(droppedSet))
	}
	seen := make(map[string]bool, len(shares))
	for _, share := range shares {
		if !droppedSet[share.Device] || seen[share.Device] {
			return fmt.Errorf("share for unexpected peer %q", share.Device)
		}
		seen[share.Device] = true
	}
	for _, share := range shares {
		msum.ApplySeedMask(share.Seed, -secagg.PairSign(survivor, share.Device))
	}
	return nil
}

// reconExpect tracks what one folded survivor was asked for during
// k-regular reconciliation.
type reconExpect struct {
	dropped map[string]bool // dropped neighbours whose pair seeds it must reveal
	owners  map[string]bool // folded neighbours whose self-seed shares it may reveal
}

// reconcileDouble runs the k-regular double-masking reconciliation.
// Per folded survivor the server sends one MaskRecon naming, among the
// survivor's graph neighbours only, (a) the dropped ones — their
// dangling pair masks must come off via revealed pair seeds — and (b)
// the folded ones, each with its wrapped self-seed share — their self
// masks must come off via Shamir reconstruction. Per peer a neighbour
// is asked for exactly one of the two (the client enforces the same
// exclusivity with ErrRoleConflict). The phase tolerates survivors
// vanishing mid-reconciliation as long as (a) they owed no pair seeds
// and (b) every folded member still reaches its Shamir threshold;
// otherwise the round fails with ErrSecAggRecon and nothing is
// published.
func (s *Server) reconcileDouble(round int, st *secAggRoundState, unfolded []string, arrivals <-chan arrival, stats *RoundStats, reasons *[]string) error {
	graph := st.graph
	droppedSet := make(map[string]bool, len(unfolded))
	for _, d := range unfolded {
		droppedSet[d] = true
	}

	need := make(map[*session]*reconExpect, len(st.folded))
	threshold := graph.Threshold()
	seedShares := make(map[string][]secagg.Share, len(st.folded))
	for sess := range st.folded {
		if sess.quarantined {
			return fmt.Errorf("%w: survivor %s lost before reconciliation", ErrSecAggRecon, sess.device)
		}
		exp := &reconExpect{dropped: make(map[string]bool), owners: make(map[string]bool)}
		req := &MaskRecon{Round: round}
		for _, p := range graph.Neighbors(sess.device) {
			if droppedSet[p] {
				exp.dropped[p] = true
				req.Dropped = append(req.Dropped, p)
				continue
			}
			if blob, ok := st.wrapped[p][sess.device]; ok {
				exp.owners[p] = true
				req.Survivors = append(req.Survivors, secagg.SeedEnvelope{Owner: p, Blob: blob})
			}
		}
		if len(req.Dropped) == 0 && len(req.Survivors) == 0 {
			continue // nothing to ask this survivor
		}
		if err := sess.conn.Send(req); err != nil {
			if len(exp.dropped) > 0 {
				return fmt.Errorf("%w: requesting shares from %s: %v", ErrSecAggRecon, sess.device, err)
			}
			s.quarantineAt(sess, round, false, fmt.Errorf("transport: %w", err), stats, reasons)
			continue // only owed seed shares; the threshold check decides
		}
		need[sess] = exp
	}

	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}
	// lose drops a needed survivor: fatal while it still owes pair
	// seeds (they are held by nobody else), survivable when it only
	// owed self-seed shares (threshold check at the end decides).
	lose := func(sess *session, cause error) error {
		exp := need[sess]
		delete(need, sess)
		if exp != nil && len(exp.dropped) > 0 {
			return fmt.Errorf("%w: survivor %s lost before revealing pair seeds: %v", ErrSecAggRecon, sess.device, cause)
		}
		return nil
	}
	for len(need) > 0 {
		select {
		case a := <-arrivals:
			sess := a.sess
			if sess.quarantined {
				continue
			}
			if a.err != nil {
				err := lose(sess, a.err)
				s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
				if err != nil {
					return err
				}
				continue
			}
			switch m := a.msg.(type) {
			case *CodecSwitch:
				continue // ack of an adaptive downgrade, handled in the read loop
			case *MaskShares:
				exp := need[sess]
				if m.Round != round || exp == nil {
					err := lose(sess, errors.New("out-of-protocol shares"))
					s.quarantineAt(sess, round, true, fmt.Errorf("unexpected mask shares for round %d", m.Round), stats, reasons)
					if err != nil {
						return err
					}
					continue
				}
				if err := s.applyDoubleShares(sess, m, exp, graph, st.msum, seedShares); err != nil {
					delete(need, sess)
					s.quarantineAt(sess, round, true, err, stats, reasons)
					return fmt.Errorf("%w: shares from %s: %v", ErrSecAggRecon, sess.device, err)
				}
				delete(need, sess)
			case *MaskedUp:
				// A dropped straggler racing the reconciliation: its
				// neighbours are revealing pair seeds for this round right
				// now, so its update must be refused with the typed error —
				// a curious server could unmask it. Folded members' stale
				// duplicates stay plain late discards.
				if m.Round < sess.reconDoneRound {
					s.quarantineAt(sess, round, true, fmt.Errorf("%w: masked update for round %d", ErrLateAfterRecon, m.Round), stats, reasons)
					continue
				}
				if m.Round <= round {
					stats.LateDiscarded++
					continue
				}
				s.quarantineAt(sess, round, true, fmt.Errorf("masked update for future round %d", m.Round), stats, reasons)
			case *ErrorMsg:
				err := lose(sess, fmt.Errorf("client error: %s", m.Text))
				s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
				if err != nil {
					return err
				}
			default:
				err := lose(sess, fmt.Errorf("unexpected %T", a.msg))
				s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T during reconciliation", a.msg), stats, reasons)
				if err != nil {
					return err
				}
			}
		case <-deadlineC:
			var missing []string
			mustFail := false
			for sess, exp := range need {
				missing = append(missing, sess.device)
				if len(exp.dropped) > 0 {
					mustFail = true
				}
			}
			sort.Strings(missing)
			if mustFail {
				return fmt.Errorf("%w: timed out waiting for shares from %s", ErrSecAggRecon, strings.Join(missing, ", "))
			}
			// Every missing answer only carried self-seed shares; fall
			// through to the threshold check with what arrived.
			need = nil
		}
		if need == nil {
			break
		}
	}

	// Second half of the double mask: reconstruct every folded member's
	// self seed from ≥ threshold neighbour shares and subtract its
	// expansion. Short of threshold the sum stays opaque — fail the
	// round rather than publish masked data.
	for sess := range st.folded {
		owner := sess.device
		seed, err := secagg.CombineSeed(seedShares[owner], threshold)
		if err != nil {
			return fmt.Errorf("%w: reconstructing self seed of %s from %d shares (threshold %d): %v",
				ErrSecAggRecon, owner, len(seedShares[owner]), threshold, err)
		}
		st.msum.ApplySeedMask(seed, -1)
	}
	return nil
}

// applyDoubleShares validates and applies one survivor's MaskShares
// answer during k-regular reconciliation: pair seeds exactly covering
// its dropped neighbours are subtracted immediately; self-seed shares —
// at most one per folded neighbour it was sent an envelope for, with
// the x-coordinate pinned to the owner's share index for this holder —
// are banked for reconstruction. A client may return fewer seed shares
// than envelopes (corrupt blobs are withheld), never more.
func (s *Server) applyDoubleShares(sess *session, m *MaskShares, exp *reconExpect, graph *secagg.Graph, msum *secagg.MaskedSum, seedShares map[string][]secagg.Share) error {
	if len(m.Shares) != len(exp.dropped) {
		return fmt.Errorf("revealed %d pair seeds, want %d", len(m.Shares), len(exp.dropped))
	}
	seenPair := make(map[string]bool, len(m.Shares))
	for _, share := range m.Shares {
		if !exp.dropped[share.Device] || seenPair[share.Device] {
			return fmt.Errorf("pair seed for unexpected peer %q", share.Device)
		}
		seenPair[share.Device] = true
	}
	seenOwner := make(map[string]bool, len(m.SeedShares))
	for _, ss := range m.SeedShares {
		if !exp.owners[ss.Owner] || seenOwner[ss.Owner] {
			return fmt.Errorf("self-seed share for unexpected owner %q", ss.Owner)
		}
		seenOwner[ss.Owner] = true
		// The x-coordinate is not holder-chosen: it is the holder's index
		// in the owner's neighbour list, fixed by the graph. A swapped or
		// invented x would poison the Lagrange interpolation with a valid-
		// looking share — reject it as a protocol fault instead.
		if want := graph.ShareIndex(ss.Owner, sess.device); int(ss.X) != want {
			return fmt.Errorf("self-seed share for %q carries x=%d, holder index is %d", ss.Owner, ss.X, want)
		}
		if len(ss.Data) != secagg.SeedShareLen {
			return fmt.Errorf("self-seed share for %q has %d data bytes", ss.Owner, len(ss.Data))
		}
	}
	for _, share := range m.Shares {
		msum.ApplySeedMask(share.Seed, -secagg.PairSign(sess.device, share.Device))
	}
	for _, ss := range m.SeedShares {
		seedShares[ss.Owner] = append(seedShares[ss.Owner], secagg.Share{X: ss.X, Data: ss.Data})
	}
	return nil
}
