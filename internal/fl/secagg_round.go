package fl

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// Secure-aggregation errors.
var (
	// ErrSecAggNeedsEnclave is returned when the planner protects
	// tensors in a SecAgg session but no aggregation enclave is
	// configured — the server must never unseal protected updates into
	// plaintext itself.
	ErrSecAggNeedsEnclave = errors.New("fl: protection plan requires an aggregation enclave in secure-aggregation mode")
	// ErrSecAggRecon is returned when mask reconciliation cannot
	// complete: a surviving cohort member failed to reveal its round
	// seeds with the dropped clients, leaving the folded sum masked.
	ErrSecAggRecon = errors.New("fl: secure-aggregation mask reconciliation failed")
	// ErrPartialProtected is returned when a hierarchical edge in
	// secure-aggregation mode is given a protecting planner: sealed
	// halves aggregate inside the root's enclave, which a shard partial
	// cannot carry.
	ErrPartialProtected = errors.New("fl: hierarchical secure-aggregation partials cannot carry protected tensors")
)

// runSecAggRound executes one secure-aggregation FL cycle. It mirrors
// runRound's lifecycle — sample, distribute, fold until the deadline —
// but the server folds pairwise-masked ring levels it cannot read, the
// sealed half of each update is aggregated inside the enclave, and a
// round that drops stragglers runs a reconciliation phase where the
// survivors reveal their round-scoped pair seeds with the dropped
// clients so the unpaired mask residue can be subtracted. In partial
// mode the cancelled ring sums are returned instead of being
// dequantised and applied.
func (s *Server) runSecAggRound(round int, sessions []*session, arrivals <-chan arrival) (*Partial, error) {
	alive := live(sessions, round)
	if len(alive) < s.cfg.MinClients {
		return nil, fmt.Errorf("%w: %d live clients, need %d", ErrNotEnoughClients, len(alive), s.cfg.MinClients)
	}
	s.curTrace = s.roundTrace
	if s.curTrace == 0 {
		s.curTrace = obs.RoundTrace(round)
	}
	s.ob.setTrace(s.curTrace)
	ptRound := s.ob.startPhase("round", round)
	defer ptRound.end()
	ptSample := s.ob.startPhase("sample", round)
	sampled := s.sample(alive)

	stats := RoundStats{Round: round, Sampled: len(sampled)}
	var reasons []string

	// Arm the deadline before any model leaves the server, exactly as
	// in the plaintext round.
	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}

	if s.cfg.Hooks.RoundStarted != nil {
		names := make([]string, len(sampled))
		for i, sess := range sampled {
			names[i] = sess.device
		}
		s.cfg.Hooks.RoundStarted(round, names)
	}

	protected, planBlob := s.cfg.Planner.PlanRound(round)
	var protIdx []int
	protectedMap := make(map[int]bool)
	for i := range s.state {
		if protected[i] {
			protIdx = append(protIdx, i)
			protectedMap[i] = true
		}
	}
	hasProtected := len(protIdx) > 0
	if hasProtected && s.cfg.Partials {
		s.closeRound(stats, false, nil)
		return nil, ErrPartialProtected
	}
	if hasProtected && s.cfg.Enclave == nil {
		s.closeRound(stats, false, nil)
		return nil, ErrSecAggNeedsEnclave
	}
	if hasProtected {
		shapes := make([][]int, len(protIdx))
		for k, id := range protIdx {
			shapes[k] = s.state[id].Shape
		}
		if err := s.cfg.Enclave.Begin(round, protIdx, shapes); err != nil {
			s.closeRound(stats, false, nil)
			return nil, fmt.Errorf("fl: enclave round begin: %w", err)
		}
	}
	finished := false
	defer func() {
		if hasProtected && !finished {
			s.cfg.Enclave.Abort(round)
		}
	}()

	// The cohort roster travels with every ModelDown so each member can
	// derive its pairwise masks. It is identical for the whole cohort,
	// so the no-sealing broadcast stays encode-once per codec.
	cohort := make([]secagg.Peer, len(sampled))
	for i, sess := range sampled {
		cohort[i] = secagg.Peer{Device: sess.device, Pub: sess.maskPub}
	}

	// Distribute: without a protection plan every client receives the
	// shared frame; with one, each client's protected tensors are sealed
	// by the enclave on its own trusted channel.
	plain := make([]*tensor.Tensor, len(s.state))
	for i, p := range s.state {
		if !protectedMap[i] {
			plain[i] = p
		}
	}
	var sealedBlob []byte
	if hasProtected {
		sealedBlob = wire.EncodeSealedUpdate(protIdx, protTensors(s.state, protIdx))
	}
	shared := make(map[wire.Codec][]byte)
	if !hasProtected {
		for _, sess := range sampled {
			if _, ok := shared[sess.codec]; !ok {
				down := &ModelDown{Round: round, Plain: plain, Plan: planBlob, Cohort: cohort, Trace: s.curTrace}
				shared[sess.codec] = EncodeMessageCodec(down, sess.codec)
			}
		}
	}
	ptSample.end()
	ptBroadcast := s.ob.startPhase("broadcast", round)
	sendErrs := make([]error, len(sampled))
	var sends sync.WaitGroup
	for i, sess := range sampled {
		sends.Add(1)
		go func(i int, sess *session) {
			defer sends.Done()
			if !hasProtected {
				sendErrs[i] = sess.conn.SendFrame(MsgModelDown, shared[sess.codec])
				return
			}
			sealed, err := s.cfg.Enclave.Seal(sess.device, sealedBlob)
			if err == nil {
				down := &ModelDown{Round: round, Plain: plain, Sealed: sealed, Plan: planBlob, Cohort: cohort, Trace: s.curTrace}
				err = sess.conn.Send(down)
			}
			sendErrs[i] = err
		}(i, sess)
	}
	sends.Wait()
	ptBroadcast.end()

	pending := make(map[*session]bool, len(sampled))
	for i, sess := range sampled {
		if sendErrs[i] != nil {
			s.quarantineAt(sess, round, false, fmt.Errorf("sending model: %w", sendErrs[i]), &stats, &reasons)
			continue
		}
		pending[sess] = true
	}

	msum := secagg.NewMaskedSum(s.state, protectedMap, s.cfg.SecAggScaleBits)
	s.ob.instrumentMaskedSum(msum)
	folded := make(map[*session]bool, len(sampled))
	ptCollect := s.ob.startPhase("collect", round)
collect:
	for len(pending) > 0 {
		select {
		case a := <-arrivals:
			s.handleSecAggArrival(round, a, pending, folded, msum, hasProtected, &stats, &reasons)
		case <-deadlineC:
			// Drain updates that raced the deadline, then drop the rest.
			for {
				select {
				case a := <-arrivals:
					s.handleSecAggArrival(round, a, pending, folded, msum, hasProtected, &stats, &reasons)
				default:
					break collect
				}
			}
		}
	}
	ptCollect.end()
	stats.Dropped = len(pending)
	stats.Responded = msum.Count()
	stats.WeightTotal = msum.Weight()

	if msum.Count() < s.cfg.MinClients {
		detail := ""
		if len(reasons) > 0 {
			detail = " (" + strings.Join(reasons, "; ") + ")"
		}
		err := fmt.Errorf("%w: %d of %d sampled clients responded, need %d%s",
			ErrNotEnoughClients, msum.Count(), stats.Sampled, s.cfg.MinClients, detail)
		s.closeRound(stats, false, nil)
		return nil, err
	}
	if s.cfg.MinRelease > 0 && msum.Count() < s.cfg.MinRelease {
		// Below the release floor the aggregate approaches an individual
		// update; the round fails before anything is dequantised. The
		// enclave enforces the same floor independently at Finish.
		err := fmt.Errorf("%w: %d of %d required for release", secagg.ErrCohortTooSmall, msum.Count(), s.cfg.MinRelease)
		s.closeRound(stats, false, nil)
		return nil, err
	}

	// Every cohort member that did not fold — straggler, quarantined or
	// unreachable — left its pairwise masks with the survivors dangling;
	// reconcile before the sum is readable.
	var unfolded []string
	for _, sess := range sampled {
		if !folded[sess] {
			unfolded = append(unfolded, sess.device)
		}
	}
	sort.Strings(unfolded)
	if len(unfolded) > 0 {
		ptRecon := s.ob.startPhase("reconcile", round)
		err := s.reconcileMasks(round, unfolded, folded, msum, arrivals, &stats, &reasons)
		ptRecon.end()
		if err != nil {
			s.closeRound(stats, false, nil)
			return nil, err
		}
		stats.Reconciled = len(unfolded)
	}

	if s.cfg.Partials {
		// Hierarchical edge: the shard's masks have cancelled (or been
		// reconciled), so the ring sums are clean partials that compose
		// additively in ℤ/2⁶⁴ at the root — which dequantises exactly
		// once over the whole fleet.
		s.closeRound(stats, true, nil)
		return &Partial{Round: round, Levels: msum.Levels(), ScaleBits: s.cfg.SecAggScaleBits,
			Weight: msum.Weight(), Count: msum.Count(), Stats: stats}, nil
	}

	ptClose := s.ob.startPhase("close", round)
	defer ptClose.end()
	mean, err := msum.Mean()
	if err != nil {
		s.closeRound(stats, false, nil)
		return nil, err
	}
	if hasProtected {
		encMean, err := s.cfg.Enclave.Finish(round, msum.Count())
		if err != nil {
			s.closeRound(stats, false, nil)
			return nil, fmt.Errorf("fl: enclave round finish: %w", err)
		}
		finished = true
		for k, id := range protIdx {
			mean[id] = encMean[k]
		}
	}
	stats.UpdateNorm = UpdateNorm(mean)
	ApplyUpdate(s.state, mean, 1.0)
	s.closeRound(stats, true, mean)
	return nil, nil
}

// protTensors selects the protected tensors in index order.
func protTensors(state []*tensor.Tensor, idx []int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(idx))
	for k, id := range idx {
		out[k] = state[id]
	}
	return out
}

// handleSecAggArrival routes one client message during the fold phase
// of a secure-aggregation round.
func (s *Server) handleSecAggArrival(round int, a arrival, pending, folded map[*session]bool, msum *secagg.MaskedSum, hasProtected bool, stats *RoundStats, reasons *[]string) {
	sess := a.sess
	if sess.quarantined {
		return // residue from an already-closed connection
	}
	if a.err != nil {
		delete(pending, sess)
		s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
		return
	}
	switch m := a.msg.(type) {
	case *CodecSwitch:
		// Ack of an adaptive downgrade; the receive codec already
		// flipped in the read loop.
		return
	case *MaskedUp:
		if m.Round < round {
			stats.LateDiscarded++
			return
		}
		if m.Round > round || !pending[sess] {
			delete(pending, sess)
			s.quarantineAt(sess, round, true, fmt.Errorf("unexpected masked update for round %d during round %d", m.Round, round), stats, reasons)
			return
		}
		weight := uint64(1)
		if m.Examples > 0 {
			weight = min(m.Examples, MaxExampleWeight)
		}
		if err := s.foldMasked(sess, round, m, weight, msum, hasProtected); err != nil {
			delete(pending, sess)
			s.quarantineAt(sess, round, true, err, stats, reasons)
			return
		}
		delete(pending, sess)
		folded[sess] = true
		s.journalAppend(&journal.Record{Type: journal.RecFold, Round: round, Device: sess.device})
		if s.cfg.Hooks.UpdateFolded != nil {
			s.cfg.Hooks.UpdateFolded(round, sess.device)
		}
	case *ErrorMsg:
		delete(pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
	default:
		delete(pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T mid-round", a.msg), stats, reasons)
	}
}

// foldMasked validates and folds one masked update: levels into the
// masked sum, the sealed half into the enclave. Validation precedes
// every mutation so a rejected update leaves both accumulators
// untouched and consistent with each other.
func (s *Server) foldMasked(sess *session, round int, m *MaskedUp, weight uint64, msum *secagg.MaskedSum, hasProtected bool) error {
	if !hasProtected {
		if len(m.Sealed) > 0 {
			return errors.New("sealed payload in a round without protected tensors")
		}
		return msum.Add(m.Levels, weight) // Add validates atomically
	}
	// The level check must pass before the enclave folds, or the two
	// accumulators drift apart on a rejected update. Add's own repeat
	// of the validation cannot fail after this.
	if err := msum.Validate(m.Levels); err != nil {
		return err
	}
	if len(m.Sealed) == 0 {
		return errors.New("masked update missing its sealed protected half")
	}
	if err := s.cfg.Enclave.Fold(sess.device, round, m.Sealed, float64(weight)); err != nil {
		return err
	}
	return msum.Add(m.Levels, weight)
}

// reconcileMasks runs the post-deadline reconciliation phase: every
// folded survivor is asked for its round seeds with the unfolded cohort
// members, and each revealed seed's mask expansion is subtracted from
// the folded sum. The phase is bounded by RoundDeadline (when set); any
// survivor that cannot answer leaves the sum unreadable, which fails
// the round.
func (s *Server) reconcileMasks(round int, unfolded []string, folded map[*session]bool, msum *secagg.MaskedSum, arrivals <-chan arrival, stats *RoundStats, reasons *[]string) error {
	need := make(map[*session]bool, len(folded))
	for sess := range folded {
		if sess.quarantined {
			return fmt.Errorf("%w: survivor %s lost before revealing shares", ErrSecAggRecon, sess.device)
		}
		need[sess] = true
	}
	req := &MaskRecon{Round: round, Dropped: unfolded}
	frames := make(map[wire.Codec][]byte)
	for sess := range need {
		payload, ok := frames[sess.codec]
		if !ok {
			payload = EncodeMessageCodec(req, sess.codec)
			frames[sess.codec] = payload
		}
		if err := sess.conn.SendFrame(MsgMaskRecon, payload); err != nil {
			return fmt.Errorf("%w: requesting shares from %s: %v", ErrSecAggRecon, sess.device, err)
		}
	}

	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}
	droppedSet := make(map[string]bool, len(unfolded))
	for _, d := range unfolded {
		droppedSet[d] = true
	}
	for len(need) > 0 {
		select {
		case a := <-arrivals:
			sess := a.sess
			if sess.quarantined {
				continue
			}
			if a.err != nil {
				if need[sess] {
					return fmt.Errorf("%w: survivor %s lost before revealing shares: %v", ErrSecAggRecon, sess.device, a.err)
				}
				s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
				continue
			}
			switch m := a.msg.(type) {
			case *CodecSwitch:
				continue // ack of an adaptive downgrade, handled in the read loop
			case *MaskShares:
				if m.Round != round || !need[sess] {
					s.quarantineAt(sess, round, true, fmt.Errorf("unexpected mask shares for round %d", m.Round), stats, reasons)
					if need[sess] {
						return fmt.Errorf("%w: survivor %s answered out of protocol", ErrSecAggRecon, sess.device)
					}
					continue
				}
				if err := applyShares(sess.device, m.Shares, droppedSet, msum); err != nil {
					s.quarantineAt(sess, round, true, err, stats, reasons)
					return fmt.Errorf("%w: shares from %s: %v", ErrSecAggRecon, sess.device, err)
				}
				delete(need, sess)
			case *MaskedUp:
				// A dropped straggler racing the reconciliation phase:
				// its update can no longer fold (the cohort is being
				// reconciled without it) and is discarded.
				if m.Round <= round {
					stats.LateDiscarded++
					continue
				}
				s.quarantineAt(sess, round, true, fmt.Errorf("masked update for future round %d", m.Round), stats, reasons)
			case *ErrorMsg:
				wasNeeded := need[sess]
				delete(need, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
				if wasNeeded {
					return fmt.Errorf("%w: survivor %s failed during reconciliation", ErrSecAggRecon, sess.device)
				}
			default:
				wasNeeded := need[sess]
				delete(need, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T during reconciliation", a.msg), stats, reasons)
				if wasNeeded {
					return fmt.Errorf("%w: survivor %s answered out of protocol", ErrSecAggRecon, sess.device)
				}
			}
		case <-deadlineC:
			var missing []string
			for sess := range need {
				missing = append(missing, sess.device)
			}
			sort.Strings(missing)
			return fmt.Errorf("%w: timed out waiting for shares from %s", ErrSecAggRecon, strings.Join(missing, ", "))
		}
	}
	return nil
}

// applyShares validates one survivor's revealed seeds — exactly one per
// dropped peer — and subtracts the corresponding mask expansions.
func applyShares(survivor string, shares []secagg.PairShare, droppedSet map[string]bool, msum *secagg.MaskedSum) error {
	if len(shares) != len(droppedSet) {
		return fmt.Errorf("revealed %d shares, want %d", len(shares), len(droppedSet))
	}
	seen := make(map[string]bool, len(shares))
	for _, share := range shares {
		if !droppedSet[share.Device] || seen[share.Device] {
			return fmt.Errorf("share for unexpected peer %q", share.Device)
		}
		seen[share.Device] = true
	}
	for _, share := range shares {
		msum.ApplySeedMask(share.Seed, -secagg.PairSign(survivor, share.Device))
	}
	return nil
}
