package fl

import (
	"errors"
	"testing"

	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/wire"
)

// Tests for the PR 4 policy surfaces: the count-capped secure-
// aggregation release floor (ServerConfig.MinRelease), the adaptive
// per-round codec downgrade (ServerConfig.AdaptiveCodec), and the
// interaction of quarantine probation with cohort sampling.

// TestSecAggMinReleaseFloor: a masked round whose folded cohort is
// smaller than MinRelease never publishes its aggregate — the session
// fails with ErrCohortTooSmall and the state stays untouched.
func TestSecAggMinReleaseFloor(t *testing.T) {
	build := func() []*testTrainer {
		return []*testTrainer{
			newTestTrainer("a", false, 2),
			newTestTrainer("b", false, 4),
			newTestTrainer("c", false, 6),
		}
	}

	state := newState(1)
	srv := NewServer(state, ServerConfig{Rounds: 1, SecAgg: true, MinRelease: 4})
	_, err := runSession(t, srv, build())
	if !errors.Is(err, secagg.ErrCohortTooSmall) {
		t.Fatalf("err = %v, want ErrCohortTooSmall", err)
	}
	if state[0].Data[0] != 1 {
		t.Fatalf("state mutated to %v despite a refused release", state[0].Data[0])
	}

	// At exactly the floor the round releases normally.
	okState := newState(1)
	okSrv := NewServer(okState, ServerConfig{Rounds: 1, SecAgg: true, MinRelease: 3})
	if _, err := runSession(t, okSrv, build()); err != nil {
		t.Fatal(err)
	}
	if okState[0].Data[0] != 5 { // 1 + mean(2,4,6)
		t.Fatalf("state = %v, want 5", okState[0].Data[0])
	}
}

// TestAdaptiveCodecDowngrade: with AdaptiveCodec set the session opens
// at f64 and, once the applied update norm falls below the threshold,
// every client whose cap allows it is switched to q8 — while a client
// capped at f64 keeps the exact protocol to the end.
func TestAdaptiveCodecDowngrade(t *testing.T) {
	capped := newTestTrainer("capped", false, 0.25)
	roomy := newTestTrainer("roomy", false, 0.25)
	roomy.maxCodec = wire.CodecQ8

	state := newState(0)
	// The constant 0.25 update has norm 0.5 over the 2×2 tensor; any
	// threshold above it triggers the switch after round 0.
	srv := NewServer(state, ServerConfig{Rounds: 3, Codec: wire.CodecQ8, AdaptiveCodec: 10})
	clients, err := runSession(t, srv, []*testTrainer{capped, roomy})
	if err != nil {
		t.Fatal(err)
	}

	if got := clients[0].NegotiatedCodec; got != wire.CodecF64 {
		t.Fatalf("capped client ended on %s, want f64", got)
	}
	if clients[0].CodecSwitches != 0 {
		t.Fatalf("capped client saw %d switches, want 0", clients[0].CodecSwitches)
	}
	if got := clients[1].NegotiatedCodec; got != wire.CodecQ8 {
		t.Fatalf("roomy client ended on %s, want q8", got)
	}
	if clients[1].CodecSwitches != 1 {
		t.Fatalf("roomy client saw %d switches, want 1", clients[1].CodecSwitches)
	}
	// Every round folded both updates; the q8 rounds quantise the
	// constant tensors exactly, so the model still lands on the exact
	// value.
	for r, st := range srv.Trace() {
		if st.Responded != 2 {
			t.Fatalf("round %d responded %d, want 2", r, st.Responded)
		}
	}
	if got := state[0].Data[0]; got != 0.75 {
		t.Fatalf("state = %v, want 0.75", got)
	}
}

// TestAdaptiveCodecHoldsAboveThreshold: updates whose norm stays above
// the threshold never trigger the downgrade.
func TestAdaptiveCodecHoldsAboveThreshold(t *testing.T) {
	tr := newTestTrainer("big-updates", false, 8)
	tr.maxCodec = wire.CodecQ8
	srv := NewServer(newState(0), ServerConfig{Rounds: 2, AdaptiveCodec: 0.01})
	clients, err := runSession(t, srv, []*testTrainer{tr})
	if err != nil {
		t.Fatal(err)
	}
	if clients[0].CodecSwitches != 0 || clients[0].NegotiatedCodec != wire.CodecF64 {
		t.Fatalf("client switched to %s after %d switches, want none",
			clients[0].NegotiatedCodec, clients[0].CodecSwitches)
	}
}

// TestProbationReadmissionSampling: a client re-admitted after its
// probation window must be eligible for the very next sample draw —
// even when sampling is cohort-limited — and its failure round must
// not leak a roster slot to later rounds.
func TestProbationReadmissionSampling(t *testing.T) {
	flaky := newTestTrainer("flaky", false, 2)
	flaky.failOnRound = 0 // fails round 0 only, healthy afterwards
	steady1 := newTestTrainer("steady1", false, 2)
	steady2 := newTestTrainer("steady2", false, 2)

	var sampledPerRound [][]string
	srv := NewServer(newState(0), ServerConfig{
		Rounds:           4,
		QuarantineRounds: 1,
		// SampleCount equal to the full fleet: the draw must include
		// every eligible client, so the sampled list is exactly the
		// eligibility set — cohort-limited sampling still draws from
		// re-admitted clients because sample() clamps to the live set.
		SampleCount: 3,
		Hooks: Hooks{
			RoundStarted: func(_ int, sampled []string) {
				sampledPerRound = append(sampledPerRound, append([]string(nil), sampled...))
			},
		},
	})
	if _, err := runSession(t, srv, []*testTrainer{flaky, steady1, steady2}); err != nil {
		t.Fatal(err)
	}

	contains := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	// Round 0: flaky sampled, fails, goes on probation for 1 round.
	if !contains(sampledPerRound[0], "flaky") {
		t.Fatalf("round 0 sample %v misses flaky", sampledPerRound[0])
	}
	// Round 1: on probation — excluded from the draw.
	if contains(sampledPerRound[1], "flaky") {
		t.Fatalf("round 1 sample %v includes a client on probation", sampledPerRound[1])
	}
	// Round 2: probation over — MUST be in the very next draw.
	if !contains(sampledPerRound[2], "flaky") {
		t.Fatalf("round 2 sample %v misses the re-admitted client", sampledPerRound[2])
	}
	trace := srv.Trace()
	wantSampled := []int{3, 2, 3, 3}
	wantResponded := []int{2, 2, 3, 3}
	for r := range trace {
		if trace[r].Sampled != wantSampled[r] || trace[r].Responded != wantResponded[r] {
			t.Fatalf("round %d stats = %+v, want sampled %d responded %d",
				r, trace[r], wantSampled[r], wantResponded[r])
		}
	}
}

// TestRepeatedFailureReQuarantine: a chronically failing client is
// re-quarantined on every re-admission — sampled, failing, benched, in
// a steady cycle — without ever shrinking the roster for the healthy
// cohort or leaking a slot.
func TestRepeatedFailureReQuarantine(t *testing.T) {
	chronic := &alwaysFailTrainer{newTestTrainer("chronic", false, 1)}
	steady := newTestTrainer("steady", false, 2)

	var sampledPerRound [][]string
	srv := NewServer(newState(0), ServerConfig{
		Rounds:           6,
		QuarantineRounds: 1,
		Hooks: Hooks{
			RoundStarted: func(_ int, sampled []string) {
				sampledPerRound = append(sampledPerRound, append([]string(nil), sampled...))
			},
		},
	})
	serverErr, _, _, wg := startSession(srv, []Trainer{steady, chronic})
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	trace := srv.Trace()
	for r := 0; r < 6; r++ {
		// Even rounds: chronic is eligible, sampled, fails, re-benched.
		// Odd rounds: chronic sits out; the roster holds exactly the
		// steady client — no slot leaks in either direction.
		wantSampled, wantProbation := 2, 1
		if r%2 == 1 {
			wantSampled, wantProbation = 1, 0
		}
		if trace[r].Sampled != wantSampled || trace[r].Probation != wantProbation || trace[r].Quarantined != 0 || trace[r].Responded != 1 {
			t.Fatalf("round %d stats = %+v, want sampled %d probation %d responded 1",
				r, trace[r], wantSampled, wantProbation)
		}
		if got := len(sampledPerRound[r]); got != wantSampled {
			t.Fatalf("round %d drew %d clients, want %d", r, got, wantSampled)
		}
	}
}
