package fl

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
)

// startAsyncSession wires trainers to a server over pipes and drives
// RunAsync — the asynchronous sibling of startSession.
func startAsyncSession(srv *Server, trainers []Trainer) (serverErr chan error, clients []*Client, clientErrs []error, wg *sync.WaitGroup) {
	serverConns := make([]Conn, len(trainers))
	clients = make([]*Client, len(trainers))
	clientErrs = make([]error, len(trainers))
	wg = &sync.WaitGroup{}
	for i, tr := range trainers {
		sc, cc := Pipe()
		serverConns[i] = sc
		clients[i] = NewClient(cc, tr)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clientErrs[i] = clients[i].Run()
		}(i)
	}
	serverErr = make(chan error, 1)
	go func() {
		_, err := srv.RunAsync(serverConns)
		serverErr <- err
	}()
	return serverErr, clients, clientErrs, wg
}

// asyncPeer is a hand-driven async client for deterministic protocol
// tests: the test decides exactly when each push happens, so arrival
// order — and with it staleness — is fully controlled.
type asyncPeer struct {
	t    *testing.T
	conn Conn
	name string
}

func dialAsyncPeer(t *testing.T, name string, conn Conn) *asyncPeer {
	t.Helper()
	p := &asyncPeer{t: t, conn: conn, name: name}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatalf("%s: awaiting challenge: %v", name, err)
	}
	ch, ok := msg.(*Challenge)
	if !ok {
		t.Fatalf("%s: expected Challenge, got %T", name, msg)
	}
	if err := conn.Send(&Attest{DeviceID: name, Codec: ch.Codec}); err != nil {
		t.Fatalf("%s: attesting: %v", name, err)
	}
	conn.SetCodec(ch.Codec)
	return p
}

// recvModel expects the next message to be a ModelDown and returns it.
func (p *asyncPeer) recvModel() *ModelDown {
	p.t.Helper()
	msg, err := p.conn.Recv()
	if err != nil {
		p.t.Fatalf("%s: receiving model: %v", p.name, err)
	}
	m, ok := msg.(*ModelDown)
	if !ok {
		p.t.Fatalf("%s: expected ModelDown, got %T", p.name, msg)
	}
	return m
}

// push answers the given model with a constant update trained on it.
func (p *asyncPeer) push(m *ModelDown, delta float64) {
	p.t.Helper()
	upd := make([]*tensor.Tensor, len(m.Plain))
	for i, w := range m.Plain {
		upd[i] = tensor.Full(delta, w.Shape...)
	}
	if err := p.conn.Send(&GradUp{Round: m.Round, Plain: upd, Version: m.Version}); err != nil {
		p.t.Fatalf("%s: pushing: %v", p.name, err)
	}
}

// recvDone expects the next message to be the session's Done.
func (p *asyncPeer) recvDone() *Done {
	p.t.Helper()
	msg, err := p.conn.Recv()
	if err != nil {
		p.t.Fatalf("%s: receiving done: %v", p.name, err)
	}
	d, ok := msg.(*Done)
	if !ok {
		p.t.Fatalf("%s: expected Done, got %T", p.name, msg)
	}
	return d
}

// TestAsyncSessionBasic: a healthy fleet of protocol clients completes
// an asynchronous session — every version window folds exactly
// GoalUpdates updates and every client receives the final model.
func TestAsyncSessionBasic(t *testing.T) {
	trainers := []Trainer{
		newTestTrainer("a", false, 1),
		newTestTrainer("b", false, 2),
		newTestTrainer("c", false, 3),
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 4, MinClients: 3,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 3},
	})
	serverErr, clients, clientErrs, wg := startAsyncSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	trace := srv.Trace()
	if len(trace) != 4 {
		t.Fatalf("trace has %d versions, want 4", len(trace))
	}
	for v, st := range trace {
		if st.Round != v || st.Responded != 3 {
			t.Fatalf("version %d stats = %+v, want 3 folds", v, st)
		}
	}
	for i, c := range clients {
		if clientErrs[i] != nil {
			t.Fatalf("client %d: %v", i, clientErrs[i])
		}
		if len(c.Final) == 0 {
			t.Fatalf("client %d missed the final model", i)
		}
	}
}

// TestAsyncStalenessDiscount: a fast device drives the version forward
// while a slow one still trains on version 0; the slow push folds at
// the 1/√(1+s) discount and its GradUp.Version echo is what the server
// derives the staleness from.
func TestAsyncStalenessDiscount(t *testing.T) {
	fastConn, fastClient := Pipe()
	slowConn, slowClient := Pipe()
	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 3, MinClients: 2,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 1},
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{fastConn, slowConn})
		serverErr <- err
	}()

	var fast, slow *asyncPeer
	var handshake sync.WaitGroup
	handshake.Add(2)
	go func() { defer handshake.Done(); fast = dialAsyncPeer(t, "fast", fastClient) }()
	go func() { defer handshake.Done(); slow = dialAsyncPeer(t, "slow", slowClient) }()
	handshake.Wait()

	m0 := fast.recvModel()
	slowM0 := slow.recvModel()
	if m0.Version != 0 || slowM0.Version != 0 {
		t.Fatalf("initial versions = %d, %d, want 0", m0.Version, slowM0.Version)
	}

	// Fast pushes twice; with K=1 each fold applies immediately, so the
	// version advances to 2 while slow still holds version 0.
	fast.push(m0, 1)
	m1 := fast.recvModel()
	if m1.Version != 1 {
		t.Fatalf("fast re-armed with version %d, want 1", m1.Version)
	}
	fast.push(m1, 1)
	m2 := fast.recvModel()
	if m2.Version != 2 {
		t.Fatalf("fast re-armed with version %d, want 2", m2.Version)
	}

	// Slow's version-0 update arrives at version 2: staleness 2, folded
	// at 1/√3 weight. K=1 makes it the third application, which exhausts
	// the version budget — slow's reply is the Done.
	slow.push(slowM0, 1)
	slowDone := slow.recvDone()
	if len(slowDone.Final) == 0 {
		t.Fatal("slow missed the final model")
	}
	// Fast still owes a push for version 2; the drain answers it with
	// Done.
	fast.push(m2, 1)
	fastDone := fast.recvDone()
	if len(fastDone.Final) == 0 {
		t.Fatal("fast missed the final model")
	}
	fastClient.Close()
	slowClient.Close()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}

	trace := srv.Trace()
	if len(trace) != 3 {
		t.Fatalf("trace has %d versions, want 3", len(trace))
	}
	for v, st := range trace {
		if st.Responded != 1 {
			t.Fatalf("version %d stats = %+v, want 1 fold", v, st)
		}
		wantWeight := 1.0
		if v == 2 {
			wantWeight = 1 / math.Sqrt(3) // slow's staleness-2 fold
		}
		if st.WeightTotal != wantWeight {
			t.Fatalf("version %d WeightTotal = %v, want %v", v, st.WeightTotal, wantWeight)
		}
	}
	// Applications: +1, +1, then the discounted slow fold is the whole
	// window, so its mean is still +1 (weights cancel in a 1-update
	// mean).
	if got := state[0].Data[0]; got != 3 {
		t.Fatalf("state = %v, want 3", got)
	}
}

// TestAsyncMaxStalenessDiscard: an update more than MaxStaleness
// versions behind is discarded (LateDiscarded), but the device is
// immediately re-armed with the fresh model and stays healthy.
func TestAsyncMaxStalenessDiscard(t *testing.T) {
	fastConn, fastClient := Pipe()
	slowConn, slowClient := Pipe()
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 4, MinClients: 2,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 1, MaxStaleness: 1},
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{fastConn, slowConn})
		serverErr <- err
	}()
	var fast, slow *asyncPeer
	var handshake sync.WaitGroup
	handshake.Add(2)
	go func() { defer handshake.Done(); fast = dialAsyncPeer(t, "fast", fastClient) }()
	go func() { defer handshake.Done(); slow = dialAsyncPeer(t, "slow", slowClient) }()
	handshake.Wait()

	m := fast.recvModel()
	slowM0 := slow.recvModel()
	// Drive the version to 2 with fast pushes.
	for want := uint64(1); want <= 2; want++ {
		fast.push(m, 1)
		m = fast.recvModel()
		if m.Version != want {
			t.Fatalf("fast re-armed with version %d, want %d", m.Version, want)
		}
	}
	// Slow's version-0 push is 2 versions stale — over the cut-off. It
	// must be discarded and slow re-armed with version 2, not benched.
	slow.push(slowM0, 100)
	slowM2 := slow.recvModel()
	if slowM2.Version != 2 {
		t.Fatalf("slow re-armed with version %d, want 2", slowM2.Version)
	}
	// Slow's fresh push now folds; fast's outstanding push and slow's
	// next one finish the session through the drain.
	slow.push(slowM2, 1)
	slowM3 := slow.recvModel()
	if slowM3.Version != 3 {
		t.Fatalf("slow re-armed with version %d, want 3", slowM3.Version)
	}
	slow.push(slowM3, 1)
	slow.recvDone()
	fast.push(m, 1)
	fast.recvDone()
	fastClient.Close()
	slowClient.Close()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}

	trace := srv.Trace()
	if len(trace) != 4 {
		t.Fatalf("trace has %d versions, want 4", len(trace))
	}
	discarded, quarantined, probation := 0, 0, 0
	for _, st := range trace {
		discarded += st.LateDiscarded
		quarantined += st.Quarantined
		probation += st.Probation
	}
	if discarded != 1 || quarantined != 0 || probation != 0 {
		t.Fatalf("discarded %d quarantined %d probation %d, want 1/0/0", discarded, quarantined, probation)
	}
	// The 100-delta discarded update must not have touched the model:
	// 4 applications of +1 each.
	if got := srv.State()[0].Data[0]; got != 4 {
		t.Fatalf("state = %v, want 4", got)
	}
}

// TestAsyncRateLimitAndDuplicates: MinPushInterval discards a push
// inside the rate window (Duplicates) while re-arming the device, and
// pushes without an outstanding model strike the health budget until
// the device is benched.
func TestAsyncRateLimitAndDuplicates(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	keeperConn, keeperClient := Pipe()
	floodConn, floodClient := Pipe()
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 2, MinClients: 1, Clock: clk, QuarantineRounds: 8,
		Hooks: eventHooks(events),
		Async: AsyncConfig{
			Enabled: true, GoalUpdates: 2,
			MinPushInterval: time.Second, MaxViolations: 2,
		},
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{keeperConn, floodConn})
		serverErr <- err
	}()
	var keeper, flood *asyncPeer
	var handshake sync.WaitGroup
	handshake.Add(2)
	go func() { defer handshake.Done(); keeper = dialAsyncPeer(t, "keeper", keeperClient) }()
	go func() { defer handshake.Done(); flood = dialAsyncPeer(t, "flood", floodClient) }()
	handshake.Wait()

	km := keeper.recvModel()
	fm := flood.recvModel()

	// Flood folds once, then pushes again without advancing the virtual
	// clock: inside MinPushInterval, so the push is discarded as a
	// duplicate — but flood is still re-armed.
	flood.push(fm, 1)
	fm = flood.recvModel()
	flood.push(fm, 1)
	fm = flood.recvModel()
	if fm.Version != 0 {
		t.Fatalf("flood re-armed with version %d, want 0 (window not full)", fm.Version)
	}

	// A training failure benches flood (probation, no reply owed); its
	// two follow-up pushes have no outstanding model, strike the health
	// budget twice, and hit MaxViolations.
	if err := floodClient.Send(&ErrorMsg{Text: "boom"}); err != nil {
		t.Fatal(err)
	}
	flood.push(fm, 1)
	flood.push(fm, 1)
	// Both bench decisions — the failure and the MaxViolations trip —
	// must land before the keeper is allowed to finish the session, or
	// the orphan pushes could drift into the drain and go unaccounted.
	waitEvent(t, events, "probation")
	waitEvent(t, events, "probation")

	// The keeper carries the session: advance the clock past the rate
	// window between folds so its pushes all count.
	for {
		clk.Advance(2 * time.Second)
		keeper.push(km, 1)
		msg, err := keeperClient.Recv()
		if err != nil {
			t.Fatalf("keeper: %v", err)
		}
		if _, done := msg.(*Done); done {
			break
		}
		km = msg.(*ModelDown)
	}
	keeperClient.Close()
	floodClient.Close()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}

	duplicates, probation, quarantined := 0, 0, 0
	for _, st := range srv.Trace() {
		duplicates += st.Duplicates
		probation += st.Probation
		quarantined += st.Quarantined
	}
	// 1 rate-limited push + 2 orphan pushes; the failure and the
	// MaxViolations trip both book probation (QuarantineRounds > 0 keeps
	// the bench temporary), never a permanent quarantine.
	if duplicates != 3 {
		t.Fatalf("duplicates = %d, want 3", duplicates)
	}
	if probation != 2 || quarantined != 0 {
		t.Fatalf("probation %d quarantined %d, want 2/0", probation, quarantined)
	}
}

// TestAsyncVersionMismatchBenched: a push that does not echo the
// version the server handed the device is a protocol violation.
func TestAsyncVersionMismatchBenched(t *testing.T) {
	keeperConn, keeperClient := Pipe()
	liarConn, liarClient := Pipe()
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 1, MinClients: 1,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 1},
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.RunAsync([]Conn{keeperConn, liarConn})
		serverErr <- err
	}()
	var keeper, liar *asyncPeer
	var handshake sync.WaitGroup
	handshake.Add(2)
	go func() { defer handshake.Done(); keeper = dialAsyncPeer(t, "keeper", keeperClient) }()
	go func() { defer handshake.Done(); liar = dialAsyncPeer(t, "liar", liarClient) }()
	handshake.Wait()

	km := keeper.recvModel()
	lm := liar.recvModel()
	lm.Version = 7 // claim a version the server never sent
	liar.push(lm, 1)
	if _, err := liarClient.Recv(); err == nil {
		t.Fatal("liar expected its connection closed")
	}
	keeper.push(km, 1)
	keeper.recvDone()
	keeperClient.Close()
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, st := range srv.Trace() {
		quarantined += st.Quarantined
	}
	if quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", quarantined)
	}
}

// TestAsyncBackpressureBufferOne: with the arrival fan-in capped at one
// in-flight update, readers block instead of buffering — and the
// session still completes every window.
func TestAsyncBackpressureBufferOne(t *testing.T) {
	trainers := make([]Trainer, 8)
	for i := range trainers {
		trainers[i] = newTestTrainer(string(rune('a'+i)), false, 1)
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 5, MinClients: 8,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 4, Buffer: 1},
	})
	serverErr, _, clientErrs, wg := startAsyncSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	trace := srv.Trace()
	if len(trace) != 5 {
		t.Fatalf("trace has %d versions, want 5", len(trace))
	}
	for v, st := range trace {
		if st.Responded != 4 {
			t.Fatalf("version %d stats = %+v, want 4 folds", v, st)
		}
	}
}

// TestAsyncConfigRejected: RunAsync guards its preconditions.
func TestAsyncConfigRejected(t *testing.T) {
	srv := NewServer(newState(0), ServerConfig{Rounds: 1})
	if _, err := srv.RunAsync(nil); err == nil {
		t.Fatal("RunAsync without Async.Enabled must fail")
	}
	srv = NewServer(newState(0), ServerConfig{
		Rounds: 1, SecAgg: true, Async: AsyncConfig{Enabled: true},
	})
	if _, err := srv.RunAsync(nil); err == nil {
		t.Fatal("RunAsync under SecAgg must fail")
	}
	srv = NewServer(newState(0), ServerConfig{
		Rounds: 1, Async: AsyncConfig{Enabled: true},
	})
	if _, err := srv.Run(nil); !errors.Is(err, ErrNotEnoughClients) {
		// Run ignores Async; with no clients it fails selection, not
		// configuration.
		t.Fatalf("Run with Async.Enabled = %v", err)
	}
}

// TestAsyncSoak: a larger fleet of protocol clients hammers the
// buffered path — exercised under -race by make check.
func TestAsyncSoak(t *testing.T) {
	trainers := make([]Trainer, 24)
	for i := range trainers {
		trainers[i] = newTestTrainer(string(rune('a'+i%26))+string(rune('0'+i/26)), false, float64(i%7)/8)
	}
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 12, MinClients: 24,
		Async: AsyncConfig{Enabled: true, GoalUpdates: 8},
	})
	serverErr, clients, clientErrs, wg := startAsyncSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	trace := srv.Trace()
	if len(trace) != 12 {
		t.Fatalf("trace has %d versions, want 12", len(trace))
	}
	total := 0
	for _, st := range trace {
		if st.Responded != 8 {
			t.Fatalf("stats = %+v, want 8 folds per window", st)
		}
		total += st.Responded
	}
	if total != 96 {
		t.Fatalf("folded %d updates, want 96", total)
	}
	for i := range clients {
		if clientErrs[i] != nil {
			t.Fatalf("client %d: %v", i, clientErrs[i])
		}
		if len(clients[i].Final) == 0 {
			t.Fatalf("client %d missed the final model", i)
		}
	}
}
