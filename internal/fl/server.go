package fl

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
)

// RoundPlanner decides, per FL cycle, which flat parameter tensors are
// protected inside the client TEE — GradSec's static and dynamic plans
// implement this (internal/core).
type RoundPlanner interface {
	// PlanRound returns the set of protected flat-parameter indices for
	// the round and an opaque plan blob forwarded to clients.
	PlanRound(round int) (protected map[int]bool, planBlob []byte)
}

// NoProtection is the baseline planner: nothing is protected.
type NoProtection struct{}

// PlanRound implements RoundPlanner.
func (NoProtection) PlanRound(int) (map[int]bool, []byte) { return nil, nil }

// ServerConfig configures an FL training session.
type ServerConfig struct {
	// Rounds is the number of FL cycles to run.
	Rounds int
	// RequireTEE, when set, rejects clients that fail attestation —
	// Fig. 2 step 1 of the paper.
	RequireTEE bool
	// Verifier validates attestation quotes; required when RequireTEE.
	Verifier *tz.Verifier
	// Planner supplies the per-round protection plan. Defaults to
	// NoProtection.
	Planner RoundPlanner
	// MinClients aborts the session when fewer clients pass selection.
	MinClients int
}

// Server drives an FL training session over a fixed set of client
// connections.
type Server struct {
	cfg   ServerConfig
	state []*tensor.Tensor
}

// NewServer creates a server owning the given initial global model state
// (flat parameter tensors; the slice is used in place).
func NewServer(state []*tensor.Tensor, cfg ServerConfig) *Server {
	if cfg.Planner == nil {
		cfg.Planner = NoProtection{}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	return &Server{cfg: cfg, state: state}
}

// State returns the current global model parameters.
func (s *Server) State() []*tensor.Tensor { return s.state }

// session is the server's per-client state.
type session struct {
	conn    Conn
	device  string
	hasTEE  bool
	channel *tz.Channel
}

// ErrNotEnoughClients is returned when selection leaves fewer clients
// than MinClients.
var ErrNotEnoughClients = errors.New("fl: not enough clients passed selection")

// Run executes selection followed by cfg.Rounds FL cycles over the given
// client connections, then closes them with a Done carrying the final
// model. It returns the number of selected clients.
func (s *Server) Run(conns []Conn) (int, error) {
	sessions, err := s.selectClients(conns)
	if err != nil {
		return 0, err
	}
	if len(sessions) < s.cfg.MinClients {
		return len(sessions), fmt.Errorf("%w: %d of %d", ErrNotEnoughClients, len(sessions), s.cfg.MinClients)
	}
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := s.runRound(round, sessions); err != nil {
			return len(sessions), fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	done := &Done{Final: s.state}
	for _, sess := range sessions {
		if err := sess.conn.Send(done); err != nil {
			return len(sessions), fmt.Errorf("fl: sending Done to %s: %w", sess.device, err)
		}
	}
	return len(sessions), nil
}

// selectClients performs Fig. 2 step 1: challenge every connection,
// verify attestation when TEE is required, and establish the trusted
// channel with accepted clients.
func (s *Server) selectClients(conns []Conn) ([]*session, error) {
	var out []*session
	for i, conn := range conns {
		nonce := make([]byte, 16)
		if _, err := rand.Read(nonce); err != nil {
			return nil, fmt.Errorf("fl: generating nonce: %w", err)
		}
		offer, err := tz.NewChannelOffer()
		if err != nil {
			return nil, err
		}
		ch := &Challenge{Nonce: nonce, ServerPub: offer.Public, RequireTEE: s.cfg.RequireTEE}
		if err := conn.Send(ch); err != nil {
			return nil, fmt.Errorf("fl: challenging client %d: %w", i, err)
		}
		msg, err := conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("fl: awaiting attestation from client %d: %w", i, err)
		}
		att, ok := msg.(*Attest)
		if !ok {
			return nil, fmt.Errorf("fl: client %d sent %T instead of Attest", i, msg)
		}
		if s.cfg.RequireTEE {
			if !att.HasTEE {
				s.reject(conn, "device has no TEE")
				continue
			}
			if s.cfg.Verifier == nil {
				return nil, errors.New("fl: RequireTEE set but no Verifier configured")
			}
			if err := s.cfg.Verifier.Verify(att.Quote, nonce); err != nil {
				s.reject(conn, fmt.Sprintf("attestation failed: %v", err))
				continue
			}
		}
		sess := &session{conn: conn, device: att.DeviceID, hasTEE: att.HasTEE}
		if att.HasTEE && len(att.ClientPub) > 0 {
			channel, err := offer.Establish(att.ClientPub, true)
			if err != nil {
				s.reject(conn, fmt.Sprintf("channel establishment failed: %v", err))
				continue
			}
			sess.channel = channel
		}
		out = append(out, sess)
	}
	return out, nil
}

func (s *Server) reject(conn Conn, reason string) {
	// Best effort: a client that has already gone away stays rejected.
	_ = conn.Send(&Reject{Reason: reason})
	_ = conn.Close()
}

// runRound distributes the model (splitting protected weights into the
// sealed path), gathers client updates concurrently, and applies FedAvg.
func (s *Server) runRound(round int, sessions []*session) error {
	protected, planBlob := s.cfg.Planner.PlanRound(round)

	updates := make([][]*tensor.Tensor, len(sessions))
	errs := make([]error, len(sessions))
	var wg sync.WaitGroup
	for i, sess := range sessions {
		wg.Add(1)
		go func(i int, sess *session) {
			defer wg.Done()
			updates[i], errs[i] = s.clientRound(round, sess, protected, planBlob)
		}(i, sess)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %s: %w", sessions[i].device, err)
		}
	}

	avg := FedAvg(updates)
	ApplyUpdate(s.state, avg, 1.0)
	return nil
}

// clientRound handles the ModelDown/GradUp exchange for one client.
func (s *Server) clientRound(round int, sess *session, protected map[int]bool, planBlob []byte) ([]*tensor.Tensor, error) {
	down := &ModelDown{Round: round, Plan: planBlob}
	down.Plain = make([]*tensor.Tensor, len(s.state))
	var secretIdx []int
	var secretTs []*tensor.Tensor
	for i, p := range s.state {
		if protected[i] && sess.channel != nil {
			secretIdx = append(secretIdx, i)
			secretTs = append(secretTs, p)
		} else {
			down.Plain[i] = p
		}
	}
	if len(secretIdx) > 0 {
		down.Sealed = sess.channel.Seal(SealedUpdate(secretIdx, secretTs))
	}
	if err := sess.conn.Send(down); err != nil {
		return nil, fmt.Errorf("sending model: %w", err)
	}

	msg, err := sess.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("awaiting update: %w", err)
	}
	up, ok := msg.(*GradUp)
	if !ok {
		if em, isErr := msg.(*ErrorMsg); isErr {
			return nil, fmt.Errorf("client error: %s", em.Text)
		}
		return nil, fmt.Errorf("unexpected %T instead of GradUp", msg)
	}
	if up.Round != round {
		return nil, fmt.Errorf("update for round %d during round %d", up.Round, round)
	}

	full := make([]*tensor.Tensor, len(s.state))
	copy(full, up.Plain)
	if len(up.Sealed) > 0 {
		if sess.channel == nil {
			return nil, errors.New("sealed update without an established channel")
		}
		blob, err := sess.channel.Open(up.Sealed)
		if err != nil {
			return nil, fmt.Errorf("unsealing update: %w", err)
		}
		idx, ts, err := ParseSealedUpdate(blob)
		if err != nil {
			return nil, fmt.Errorf("parsing sealed update: %w", err)
		}
		for j, id := range idx {
			if id < 0 || id >= len(full) {
				return nil, fmt.Errorf("sealed update index %d out of range", id)
			}
			full[id] = ts[j]
		}
	}
	for i, u := range full {
		if u == nil {
			return nil, fmt.Errorf("update missing tensor %d", i)
		}
		if !u.SameShape(s.state[i]) {
			return nil, fmt.Errorf("update tensor %d has shape %v, want %v", i, u.Shape, s.state[i].Shape)
		}
	}
	return full, nil
}

// FedAvg returns the elementwise mean of the client updates. All updates
// must be complete and shape-consistent (the server validates before
// calling).
func FedAvg(updates [][]*tensor.Tensor) []*tensor.Tensor {
	if len(updates) == 0 {
		return nil
	}
	out := make([]*tensor.Tensor, len(updates[0]))
	for i := range out {
		acc := updates[0][i].Clone()
		for _, u := range updates[1:] {
			tensor.AddInPlace(acc, u[i])
		}
		out[i] = tensor.Scale(acc, 1/float64(len(updates)))
	}
	return out
}

// ApplyUpdate adds scale×update to state in place. Updates are weight
// deltas (W_local − W_global), so scale 1 performs standard FedAvg.
func ApplyUpdate(state, update []*tensor.Tensor, scale float64) {
	for i, u := range update {
		tensor.AxPy(scale, u, state[i])
	}
}
