package fl

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	mrand "math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gradsec/gradsec/internal/journal"
	"github.com/gradsec/gradsec/internal/obs"
	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// RoundPlanner decides, per FL cycle, which flat parameter tensors are
// protected inside the client TEE — GradSec's static and dynamic plans
// implement this (internal/core).
type RoundPlanner interface {
	// PlanRound returns the set of protected flat-parameter indices for
	// the round and an opaque plan blob forwarded to clients.
	PlanRound(round int) (protected map[int]bool, planBlob []byte)
}

// NoProtection is the baseline planner: nothing is protected.
type NoProtection struct{}

// PlanRound implements RoundPlanner.
func (NoProtection) PlanRound(int) (map[int]bool, []byte) { return nil, nil }

// ServerConfig configures an FL training session.
type ServerConfig struct {
	// Rounds is the number of FL cycles to run.
	Rounds int
	// RequireTEE, when set, rejects clients that fail attestation —
	// Fig. 2 step 1 of the paper.
	RequireTEE bool
	// Verifier validates attestation quotes; required when RequireTEE.
	Verifier *tz.Verifier
	// Planner supplies the per-round protection plan. Defaults to
	// NoProtection.
	Planner RoundPlanner
	// MinClients is the fleet floor: the session aborts when fewer
	// clients pass selection, and a round fails with ErrNotEnoughClients
	// when fewer than MinClients updates arrive before the deadline.
	MinClients int

	// SampleCount, when positive, limits each round to that many
	// randomly sampled clients. Takes precedence over SampleFraction.
	SampleCount int
	// SampleFraction, when in (0,1), samples ⌈fraction·live⌉ clients per
	// round. 0 (or ≥1) means every live client participates.
	SampleFraction float64
	// SampleSeed seeds the sampling RNG so cohorts are reproducible.
	// The default seed is 1.
	SampleSeed int64

	// Codec is the tensor wire codec the server offers clients during
	// the handshake; a client may negotiate down (less compression),
	// never up. The zero value, wire.CodecF64, keeps the uncompressed
	// protocol: tensor payloads are byte-identical to the pre-codec
	// encoding (messages gained optional trailing fields, which
	// pre-codec decoders simply never read).
	Codec wire.Codec

	// SecAgg enables secure aggregation: clients send pairwise-masked
	// fixed-point updates (MaskedUp) the server folds without ever
	// seeing an individual update, reconciling dropped clients' masks
	// through revealed round seeds. Sealed protected-layer updates
	// additionally require Enclave. Example weights still apply
	// (clients pre-multiply in the ring); sampling, deadlines and
	// quarantine behave as in plaintext mode.
	SecAgg bool
	// SecAggScaleBits is the fixed-point precision for masked updates;
	// 0 selects secagg.DefaultScaleBits.
	SecAggScaleBits int
	// MaskDegree selects the masking topology for SecAgg sessions. 0
	// (the default) keeps the legacy full-pairwise masking — every
	// cohort member masks against every other, wire behaviour unchanged.
	// secagg.AutoDegree (-1) derives a k-regular mask graph per round
	// with k ≈ ⌈log₂ cohort⌉ plus slack, and a positive value fixes the
	// degree. With a graph, clients double-mask (pairwise + Shamir-shared
	// self mask), cutting masking cost from O(cohort²) to O(k·cohort)
	// and closing the late-update unmasking window (see internal/secagg).
	MaskDegree int
	// Enclave, in SecAgg sessions, aggregates sealed protected-layer
	// updates inside a simulated server enclave: trusted-channel keys
	// are generated there during selection and sealed blobs are opened
	// and folded behind the world boundary. Required whenever the
	// Planner protects tensors in a SecAgg session; clients unable to
	// establish a trusted channel are then rejected at selection so the
	// masked layout stays uniform across the cohort.
	Enclave *secagg.Enclave

	// MinRelease, in secure-aggregation sessions, is the release floor:
	// a round whose folded cohort is smaller than this never publishes
	// its aggregate (ErrCohortTooSmall) — an aggregate over a tiny
	// cohort approaches an individual update, defeating the masking.
	// The same floor is armed inside the aggregation enclave when one
	// is configured, so the sealed half is refused independently of the
	// untrusted engine. 0 disables (MinClients still applies).
	MinRelease int

	// Aggregation selects the round aggregation strategy. The default,
	// AggFedAvg, streams the weighted mean; AggTrimmedMean and
	// AggMedian are the Byzantine-robust strategies (see robust.go).
	// Robust strategies need plaintext per-client updates, so they are
	// mutually exclusive with SecAgg, Partials and Async — Open rejects
	// the combinations with a configuration error.
	Aggregation AggMethod
	// TrimFraction is the per-tail trim for AggTrimmedMean: the
	// ⌈TrimFraction·n⌉ largest and smallest values of every coordinate
	// are discarded before averaging. Must be in (0, 0.5).
	TrimFraction float64

	// Journal, when set, makes the session crash-durable: roster
	// admissions, quarantine/probation transitions, release-floor
	// raises and round opens/folds/closes are written through it, and
	// Recover rebuilds a resumable server from the log after a crash.
	// Appends are best-effort (an I/O error never fails a round); check
	// Journal.Err when durability must be verified.
	Journal *journal.Journal

	// AdaptiveCodec, when positive, enables the per-round adaptive
	// codec downgrade: the session opens at the exact f64 codec (the
	// configured Codec offer is overridden) and once a round's applied
	// UpdateNorm falls below this threshold the server switches every
	// capable client (Attest.Cap ≥ q8) to the q8 codec for the rest of
	// the session — early rounds keep full precision while updates are
	// large, late rounds ship 8× smaller broadcasts once training has
	// settled. The switch happens between rounds via CodecSwitch: the
	// server flips its send codec immediately but keeps decoding the
	// client's frames under the old codec until the client's CodecSwitch
	// ack arrives, so a straggler racing the switch with an old-codec
	// update still decodes and lands in the normal late/stale path (see
	// the ordering rule on CodecSwitch in messages.go). Ignored in
	// hierarchical partial mode (edges never observe the update norm —
	// the root does).
	AdaptiveCodec float64

	// Async configures the asynchronous buffered-federation mode driven
	// by RunAsync (FedBuff-style): no round barrier, clients push
	// updates whenever ready and the server folds them into a
	// staleness-weighted buffer applied every Async.GoalUpdates arrivals.
	// Rounds then counts buffered applications (model versions) rather
	// than synchronous cycles. Ignored by Run/StepRound.
	Async AsyncConfig

	// Partials turns the server into a hierarchical edge aggregator:
	// StepRound returns the round's un-normalised partial aggregate
	// (plain weighted sum, or cancelled ring sums under SecAgg) instead
	// of applying the weighted mean to the server state. The caller
	// forwards the partial upstream (internal/hier) where partials from
	// every shard compose exactly. Protection plans are still honoured
	// in plain mode (the edge unseals and folds protected halves like a
	// flat trusted server); under SecAgg a protecting planner is
	// rejected — sealed aggregation needs the root's enclave, which a
	// shard partial cannot carry.
	Partials bool

	// QuarantineRounds, when positive, turns quarantine for training
	// and protocol failures into probation: the client is excluded from
	// sampling for that many subsequent rounds, then becomes eligible
	// again (its connection stays open). Transport failures remain
	// permanent — the connection is gone. 0 keeps the historic
	// behaviour: every quarantine is permanent.
	QuarantineRounds int

	// RoundDeadline bounds each round: clients that have not responded
	// when it expires are dropped for the round (their late updates are
	// discarded) but stay eligible for later rounds. 0 waits forever.
	RoundDeadline time.Duration
	// IOTimeout bounds individual transport operations on connections
	// that support deadlines (TCP): handshake reads during selection and
	// every model-distribution write, so a client that stops reading can
	// no longer stall selection or distribution indefinitely. Mid-round
	// reads are not bounded by it (a sampled client may legitimately
	// stay silent until the RoundDeadline). 0 disables.
	IOTimeout time.Duration
	// SelectWorkers bounds the parallel attestation pool during client
	// selection. Defaults to 8.
	SelectWorkers int
	// Clock supplies wall time for round deadlines. Defaults to the
	// real clock; tests and flsim inject a simclock.Virtual.
	Clock simclock.WallClock

	// Hooks receive engine lifecycle events; all callbacks fire from the
	// server's round goroutine, in order.
	Hooks Hooks

	// Metrics, when set, receives engine telemetry: round counters,
	// per-phase latency histograms, wire byte/frame totals, quarantine
	// and staleness accounting. Families are shared — many servers (or
	// a root and its edges) may feed one registry. nil disables metrics
	// at zero hot-path cost.
	Metrics *obs.Registry
	// Spans, when set, receives one JSONL span per round and per phase,
	// timed on Clock — under a virtual clock the span stream is
	// bit-reproducible. nil disables tracing.
	Spans *obs.TraceSink
	// ClientTelemetry opts the server into folding client-attached
	// telemetry snapshots (GradUp trailing field) into Metrics under
	// tier="client", shard=<device> labels. Off by default: accepting
	// metric schemas from remote devices is a policy decision, and a
	// metered run with it off stays byte-identical to pre-telemetry
	// behaviour. Ignored when Metrics is nil.
	ClientTelemetry bool
}

// Hooks observe the round engine. Any field may be nil.
type Hooks struct {
	// RoundStarted fires after the round's cohort is sampled and the
	// deadline timer (if any) is armed, before models are distributed.
	RoundStarted func(round int, sampled []string)
	// UpdateFolded fires after a client update is folded into the
	// streaming aggregate.
	UpdateFolded func(round int, device string)
	// UpdatePushed fires in asynchronous sessions after every client
	// push has been fully processed — folded (folded true) or discarded
	// as stale, duplicate or rate-limited (folded false) — and before
	// the reply model is sent. Never fires in round-synchronous
	// sessions.
	UpdatePushed func(version int, device string, folded bool)
	// ClientQuarantined fires when a client is permanently excluded
	// (training/protocol/transport failure — not straggling). It does
	// not fire for probation; see ClientProbationed.
	ClientQuarantined func(device string, reason error)
	// ClientProbationed fires when a client is placed on temporary
	// probation under QuarantineRounds instead of being permanently
	// excluded — the connection stays open and the client becomes
	// eligible again after the window.
	ClientProbationed func(device string, reason error)
	// RoundClosed fires after the round's aggregate is applied (or the
	// round failed).
	RoundClosed func(stats RoundStats)
}

// RoundStats is one round's trace entry.
type RoundStats struct {
	// Round is the FL cycle index.
	Round int
	// Sampled is the cohort size drawn for the round.
	Sampled int
	// Responded counts updates folded before the deadline.
	Responded int
	// Dropped counts sampled clients that straggled past the deadline.
	Dropped int
	// Quarantined counts clients permanently excluded during the round.
	Quarantined int
	// Probation counts clients placed on temporary probation during the
	// round (QuarantineRounds; unlike Quarantined they come back).
	Probation int
	// LateDiscarded counts stale updates thrown away: answers to
	// earlier rounds in synchronous sessions, or pushes staler than
	// Async.MaxStaleness in asynchronous ones.
	LateDiscarded int
	// Duplicates counts duplicate or rate-limited pushes discarded in
	// asynchronous sessions; always 0 in round-synchronous ones.
	Duplicates int
	// Reconciled counts dropped cohort members whose unpaired masks
	// were reconstructed from survivor shares (secure aggregation).
	Reconciled int
	// WeightTotal is the summed FedAvg weight of the folded updates; it
	// equals Responded when every client carries unit weight (no
	// example counts on the wire).
	WeightTotal float64
	// UpdateNorm is the L2 norm of the applied aggregate update.
	UpdateNorm float64
	// Shards counts the edge partials folded into the round's aggregate
	// in a hierarchical session (internal/hier); 0 in flat sessions. In
	// a root's trace Sampled/Responded/Dropped/… are fleet-wide totals
	// summed over the shard accounting each PartialUp carries.
	Shards int
	// BytesUp and BytesDown are the round's wire traffic (client→server
	// and server→client, frame headers included), measured between round
	// commits when ServerConfig.Metrics is set; 0 with metrics disabled.
	// They are observability, not protocol state: the journal does not
	// carry them (its Stats decode is strict about trailing bytes, so
	// extending it would orphan every pre-existing journal), and a
	// recovered trace therefore reports 0 for replayed rounds.
	BytesUp   uint64
	BytesDown uint64
}

// Partial is one round's un-normalised aggregate, produced by a server
// in hierarchical partial mode (ServerConfig.Partials) and forwarded
// upstream as a PartialUp frame. Exactly one of Sum (plain) or Levels
// (secure aggregation) is set.
type Partial struct {
	Round int
	// Sum is Σ wᵢuᵢ over the shard's folded updates.
	Sum []*tensor.Tensor
	// Levels are the shard's ring sums with all pairwise masks
	// cancelled or reconciled (nil at protected positions — always
	// absent in partial mode).
	Levels []*wire.U64Tensor
	// ScaleBits is the fixed-point precision of Levels.
	ScaleBits int
	// Weight is the shard's summed FedAvg weight.
	Weight float64
	// Count is the number of folded client updates.
	Count int
	// Stats is the shard's round accounting, forwarded for root-side
	// bookkeeping.
	Stats RoundStats
}

// Server drives an FL training session over a set of client connections:
// parallel TEE-aware selection, per-round client sampling, deadline-based
// straggler dropout, quarantine of failed clients, and streaming FedAvg
// aggregation.
type Server struct {
	cfg   ServerConfig
	state []*tensor.Tensor
	rng   *mrand.Rand
	// trace is appended by the round goroutine under traceMu; Trace()
	// copies under the same lock so callers can never alias (or race
	// with) an active session's append.
	traceMu sync.Mutex
	trace   []RoundStats

	// ob is the telemetry state, nil when observability is disabled
	// (every use is nil-guarded — the zero-cost off switch).
	ob *serverObs

	// health is the lock-free session summary served by /healthz;
	// updated by the round goroutine, read by admin HTTP goroutines.
	health struct {
		open        atomic.Bool
		round       atomic.Int64
		roster      atomic.Int64
		quarantined atomic.Int64
		probation   atomic.Int64
	}

	// Session lifecycle (Open → StepRound* → Close/Abort). Run drives
	// the whole sequence; hierarchical edges step rounds under upstream
	// control.
	sessions []*session
	arrivals chan arrival
	done     chan struct{}
	readers  sync.WaitGroup
	opened   bool
	shut     bool
	// adapted latches the one-shot adaptive codec downgrade.
	adapted bool
	// roundTrace, when non-zero, is the upstream-minted trace ID the
	// next rounds carry (SetRoundTrace — hierarchical edges adopt the
	// root's ID); 0 makes each round mint its own. curTrace is the ID
	// the in-flight round actually stamps on spans and ModelDown. Both
	// are owned by the round goroutine.
	roundTrace uint64
	curTrace   uint64

	// history carries quarantine/probation decisions across sessions
	// of one server (Open/Close/Open) and across process restarts
	// (journal recovery): a device quarantined in an earlier session
	// stays excluded, and an unserved probation window is still
	// honoured when the device reconnects.
	history map[string]*deviceHistory
	// nextRound is the first round Run will execute: 0 for a fresh
	// server, one past the last committed round for a recovered one.
	nextRound int
	// roster, on a journal-recovered server, holds the crashed
	// session's admissions in selection order; Resume rebuilds
	// s.sessions in exactly this order so sampling draws line up.
	roster []*journal.Record
	// resuming switches selectOne into resumption mode: devices are
	// matched against the journaled roster instead of being verified
	// from scratch.
	resuming bool
}

// deviceHistory is a device's durable standing across sessions.
type deviceHistory struct {
	quarantined    bool
	probationUntil int
}

// NewServer creates a server owning the given initial global model state
// (flat parameter tensors; the slice is used in place).
func NewServer(state []*tensor.Tensor, cfg ServerConfig) *Server {
	if cfg.Planner == nil {
		cfg.Planner = NoProtection{}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.SelectWorkers <= 0 {
		cfg.SelectWorkers = 8
	}
	if cfg.SampleSeed == 0 {
		cfg.SampleSeed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real()
	}
	if !cfg.Codec.Valid() {
		cfg.Codec = wire.CodecF64
	}
	if cfg.SecAggScaleBits <= 0 || cfg.SecAggScaleBits > secagg.MaxScaleBits {
		cfg.SecAggScaleBits = secagg.DefaultScaleBits
	}
	if cfg.MinRelease < 0 {
		cfg.MinRelease = 0
	}
	if cfg.Partials {
		cfg.AdaptiveCodec = 0 // edges never observe the update norm
	}
	if cfg.AdaptiveCodec > 0 {
		cfg.Codec = wire.CodecF64 // adaptive sessions open exact
	}
	if cfg.Async.Enabled {
		if cfg.Async.GoalUpdates <= 0 {
			cfg.Async.GoalUpdates = cfg.MinClients
		}
		if cfg.Async.Buffer <= 0 {
			cfg.Async.Buffer = 2 * cfg.Async.GoalUpdates
		}
		if cfg.Async.MaxViolations <= 0 {
			cfg.Async.MaxViolations = 3
		}
		if cfg.Async.Discount == nil {
			cfg.Async.Discount = DefaultStalenessDiscount
		}
	}
	if cfg.Enclave != nil && cfg.MinRelease > 0 {
		// Arm the release floor inside the TA before any round begins,
		// so the sealed half is refused below the floor no matter what
		// the untrusted engine later claims.
		cfg.Enclave.SetMinRelease(cfg.MinRelease)
	}
	if cfg.Journal != nil && cfg.Metrics != nil {
		cfg.Journal.Instrument(
			cfg.Metrics.Histogram("gradsec_journal_ns", "journal I/O latency in nanoseconds", "op", "append"),
			cfg.Metrics.Histogram("gradsec_journal_ns", "journal I/O latency in nanoseconds", "op", "sync"),
		)
	}
	return &Server{
		cfg:     cfg,
		state:   state,
		rng:     mrand.New(mrand.NewSource(cfg.SampleSeed)),
		history: make(map[string]*deviceHistory),
		ob:      newServerObs(&cfg),
	}
}

// State returns the current global model parameters.
func (s *Server) State() []*tensor.Tensor { return s.state }

// Trace returns per-round statistics, in round order, as a defensive
// copy: it is safe to call (and keep) while a session is still running
// — the engine's appends can neither race with nor retroactively mutate
// the returned slice.
func (s *Server) Trace() []RoundStats {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	out := make([]RoundStats, len(s.trace))
	copy(out, s.trace)
	return out
}

// Health returns a lock-free snapshot of the session state for the
// admin /healthz surface: safe to call from any goroutine at any time.
func (s *Server) Health() obs.Health {
	h := obs.Health{
		Open:        s.health.open.Load(),
		Round:       int(s.health.round.Load()),
		Rounds:      s.cfg.Rounds,
		Roster:      int(s.health.roster.Load()),
		Quarantined: int(s.health.quarantined.Load()),
		Probation:   int(s.health.probation.Load()),
	}
	if s.cfg.Journal != nil {
		h.JournalLag = int(s.cfg.Journal.Pending())
	}
	return h
}

// session is the server's per-client state. Mutable fields are owned by
// the round goroutine.
type session struct {
	conn    Conn
	device  string
	hasTEE  bool
	channel *tz.Channel
	codec   wire.Codec
	// cap is the client's true maximum codec (≥ codec); the adaptive
	// downgrade may move codec up to it mid-session.
	cap wire.Codec
	// maskPub is the client's pairwise-masking public key (SecAgg).
	maskPub []byte
	// enclaveChannel marks a trusted channel held inside cfg.Enclave
	// rather than in this process (channel stays nil).
	enclaveChannel bool
	// quarantined permanently excludes the client (connection closed).
	quarantined bool
	// reconDoneRound is 1 + the latest round whose pairwise masks were
	// reconciled with this client counted as dropped (0 = never). An
	// update for any round below it arrives after the survivors already
	// revealed their seeds for that round — accepting it would let a
	// curious server unmask it — so it is refused with ErrLateAfterRecon
	// instead of being silently discarded.
	reconDoneRound int
	// probationUntil, under ServerConfig.QuarantineRounds, is the first
	// round index the client is eligible for again after a failure.
	probationUntil int
}

// eligible reports whether the session may be sampled in the round.
func (s *session) eligible(round int) bool {
	return !s.quarantined && round >= s.probationUntil
}

// arrival is one message (or terminal transport error) from a client's
// read loop.
type arrival struct {
	sess *session
	msg  Message
	err  error
}

// ErrNotEnoughClients is returned when selection leaves fewer clients
// than MinClients, or when fewer than MinClients updates arrive before a
// round deadline.
var ErrNotEnoughClients = errors.New("fl: not enough clients")

// MaxExampleWeight caps the FedAvg weight a single client can claim
// through GradUp.Examples: larger counts are folded at this weight, so
// one client can outweigh at most this many unit-weight peers.
const MaxExampleWeight = 1 << 20

// Run executes selection followed by cfg.Rounds FL cycles over the given
// client connections, then closes them with a Done carrying the final
// model. It returns the number of selected clients. On a
// journal-recovered server (Recover) the connections rejoin the crashed
// session via Resume and Run continues from the first uncommitted
// round.
func (s *Server) Run(conns []Conn) (int, error) {
	open := s.Open
	if s.Resumable() {
		open = s.Resume
	}
	n, err := open(conns)
	if err != nil {
		return n, err
	}
	for round := s.nextRound; round < s.cfg.Rounds; round++ {
		if _, err := s.StepRound(round); err != nil {
			s.Abort()
			return n, fmt.Errorf("fl: round %d: %w", round, err)
		}
	}
	return n, s.Close(nil)
}

// Open performs selection over the given client connections and starts
// the session's per-connection readers. It returns the number of
// selected clients; on error no session is open. Most callers use Run —
// Open/StepRound/Close expose the round lifecycle to callers that pace
// rounds externally, such as hierarchical edge aggregators driven by
// their root.
func (s *Server) Open(conns []Conn) (int, error) {
	if s.opened {
		return 0, errors.New("fl: session already open")
	}
	if s.cfg.RequireTEE && s.cfg.Verifier == nil {
		return 0, errors.New("fl: RequireTEE set but no Verifier configured")
	}
	if err := s.validateAggregation(); err != nil {
		return 0, err
	}
	sessions := s.selectClients(conns)
	// Standing from earlier sessions of this server carries over: a
	// quarantined device stays out, an unserved probation window is
	// restored.
	kept := sessions[:0]
	for _, sess := range sessions {
		if h := s.history[sess.device]; h != nil {
			if h.quarantined {
				s.reject(sess.conn, "device quarantined in an earlier session")
				continue
			}
			sess.probationUntil = h.probationUntil
		}
		kept = append(kept, sess)
	}
	sessions = kept
	if s.cfg.SecAgg {
		// Pairwise masking keys a mask to each device name: a duplicate
		// name would make two clients derive colliding pair signs, so
		// later duplicates are turned away (selection order is the input
		// order, hence deterministic).
		seen := make(map[string]bool, len(sessions))
		kept := sessions[:0]
		for _, sess := range sessions {
			if seen[sess.device] {
				s.reject(sess.conn, fmt.Sprintf("duplicate device name %q in secure-aggregation session", sess.device))
				continue
			}
			seen[sess.device] = true
			kept = append(kept, sess)
		}
		sessions = kept
	}
	if len(sessions) < s.cfg.MinClients {
		for _, sess := range sessions {
			s.reject(sess.conn, "not enough clients passed selection")
		}
		return len(sessions), fmt.Errorf("%w: %d of %d passed selection", ErrNotEnoughClients, len(sessions), s.cfg.MinClients)
	}

	// One reader per session feeds a shared arrival channel so a
	// straggler's late reply can surface (and be discarded) during any
	// later round instead of desynchronising the protocol. In
	// asynchronous mode the channel is the bounded fan-in buffer: when
	// it fills, the per-connection readers block — backpressure
	// propagates to the transports instead of growing server memory.
	buffer := len(sessions)
	if s.cfg.Async.Enabled && s.cfg.Async.Buffer < buffer {
		buffer = s.cfg.Async.Buffer
	}
	s.journalSessionOpen(sessions)
	s.sessions = sessions
	s.arrivals = make(chan arrival, buffer)
	s.done = make(chan struct{})
	for _, sess := range sessions {
		s.readers.Add(1)
		go func(sess *session) {
			defer s.readers.Done()
			readLoop(sess, s.arrivals, s.done)
		}(sess)
	}
	s.opened = true
	s.shut = false
	// Selection handshakes are session setup, not round traffic: rebase
	// the meter so round 0's byte deltas start clean.
	s.ob.resetMeterBase()
	s.health.open.Store(true)
	s.health.roster.Store(int64(len(sessions)))
	s.health.round.Store(int64(s.nextRound))
	return len(sessions), nil
}

// journalSessionOpen writes the session fingerprint and the roster, in
// selection order, through the journal. The order is load-bearing:
// cohort sampling permutes roster indices, so recovery must rebuild the
// roster in exactly this order.
func (s *Server) journalSessionOpen(sessions []*session) {
	if s.cfg.Journal == nil {
		return
	}
	var flags uint64
	if s.cfg.SecAgg {
		flags |= journal.FlagSecAgg
	}
	if s.cfg.Partials {
		flags |= journal.FlagPartials
	}
	if s.cfg.Async.Enabled {
		flags |= journal.FlagAsync
	}
	if s.cfg.RequireTEE {
		flags |= journal.FlagRequireTEE
	}
	s.journalAppend(&journal.Record{
		Type:   journal.RecSession,
		Flags:  flags,
		Seed:   s.cfg.SampleSeed,
		Rounds: s.cfg.Rounds,
		Scale:  s.cfg.SecAggScaleBits,
		Floor:  s.cfg.MinRelease,
	})
	for _, sess := range sessions {
		s.journalAppend(&journal.Record{
			Type:    journal.RecRoster,
			Device:  sess.device,
			Codec:   uint8(sess.codec),
			Cap:     uint8(sess.cap),
			HasTEE:  sess.hasTEE,
			MaskPub: sess.maskPub,
		})
	}
	if s.cfg.MinRelease > 0 {
		s.journalAppend(&journal.Record{Type: journal.RecFloor, Floor: s.cfg.MinRelease})
	}
	_ = s.cfg.Journal.Sync()
}

// journalAppend writes one record when a journal is configured.
// Best-effort by design: durability failures surface via Journal.Err,
// not by failing training rounds.
func (s *Server) journalAppend(rec *journal.Record) {
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Append(rec)
	}
}

// StepRound executes one FL cycle over the open session. In the default
// mode the round's weighted-mean update is applied to the server state
// and StepRound returns (nil, nil); in hierarchical partial mode
// (ServerConfig.Partials) the state is left untouched and the round's
// partial aggregate is returned for upstream forwarding. Rounds must be
// stepped with strictly increasing indices.
func (s *Server) StepRound(round int) (*Partial, error) {
	if !s.opened || s.shut {
		return nil, errors.New("fl: StepRound outside an open session")
	}
	// Write-ahead: mark the round in flight. Records between this open
	// and the round's close commit atomically at the close; a crash
	// leaves them uncommitted and recovery re-runs the round.
	s.journalAppend(&journal.Record{Type: journal.RecRoundOpen, Round: round})
	var p *Partial
	var err error
	if s.cfg.SecAgg {
		p, err = s.runSecAggRound(round, s.sessions, s.arrivals)
	} else {
		p, err = s.runRound(round, s.sessions, s.arrivals)
	}
	if round+1 > s.nextRound {
		s.nextRound = round + 1
	}
	if err != nil {
		return nil, err
	}
	s.maybeAdaptCodec()
	return p, nil
}

// Close ends the open session: every non-quarantined client receives a
// Done carrying the final model (the server's state when final is nil),
// encoded once per negotiated codec and broadcast, then the connections
// are torn down. Best effort: a client that died after contributing
// does not fail the completed session.
func (s *Server) Close(final []*tensor.Tensor) error {
	if !s.opened || s.shut {
		return nil
	}
	if final == nil {
		final = s.state
	}
	finalFrames := make(map[wire.Codec][]byte)
	for _, sess := range s.sessions {
		if sess.quarantined {
			continue
		}
		payload, ok := finalFrames[sess.codec]
		if !ok {
			payload = EncodeMessageCodec(&Done{Final: final}, sess.codec)
			finalFrames[sess.codec] = payload
		}
		_ = sess.conn.SendFrame(MsgDone, payload)
	}
	s.shutdown()
	return nil
}

// Abort tears the open session down without a final-model broadcast
// (failed rounds, upstream loss at a hierarchical edge). Safe to call
// on an unopened or already-closed session.
func (s *Server) Abort() { s.shutdown() }

func (s *Server) shutdown() {
	if !s.opened || s.shut {
		return
	}
	s.shut = true
	close(s.done)
	var enclaved []string
	for _, sess := range s.sessions {
		_ = sess.conn.Close()
		if sess.enclaveChannel {
			enclaved = append(enclaved, sess.device)
		}
	}
	s.readers.Wait()
	// Release the per-device trusted channels held inside the enclave:
	// they are session state, and leaving them registered after an
	// abort leaks TA memory for the life of the process (and blocks the
	// devices from re-establishing in a later session).
	if len(enclaved) > 0 && s.cfg.Enclave != nil {
		s.cfg.Enclave.ReleaseChannels(enclaved)
	}
	// The server itself outlives the session: quarantine/probation
	// history is retained (see history) and Open may be called again.
	s.health.open.Store(false)
	s.opened = false
	s.sessions = nil
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Sync()
	}
}

// SetState adopts new global model values in place (hierarchical edges
// take the root's model each round). Shapes must match the
// construction-time state.
func (s *Server) SetState(model []*tensor.Tensor) error {
	if len(model) != len(s.state) {
		return fmt.Errorf("fl: model has %d tensors, state has %d", len(model), len(s.state))
	}
	for i, t := range model {
		if t == nil || !t.SameShape(s.state[i]) {
			return fmt.Errorf("fl: model tensor %d does not match state shape %v", i, s.state[i].Shape)
		}
	}
	for i, t := range model {
		copy(s.state[i].Data, t.Data)
	}
	return nil
}

// SetRoundTrace adopts an upstream-minted round trace ID: the next
// StepRound stamps it on its spans and forwards it to clients in
// ModelDown.Trace, so a stitched timeline correlates the tiers of one
// fleet round. 0 restores self-minting (obs.RoundTrace of the round
// number). Call between rounds, from the goroutine driving StepRound —
// hierarchical edges call it with ShardDown.Trace before each round.
func (s *Server) SetRoundTrace(id uint64) {
	s.roundTrace = id
}

// maybeAdaptCodec runs the one-shot adaptive downgrade after a round
// closes: once the applied update norm falls below the threshold, every
// capable client is switched to q8 for the rest of the session.
func (s *Server) maybeAdaptCodec() {
	if s.cfg.AdaptiveCodec <= 0 || s.adapted || len(s.trace) == 0 {
		return
	}
	last := s.trace[len(s.trace)-1]
	if last.UpdateNorm <= 0 || last.UpdateNorm >= s.cfg.AdaptiveCodec {
		return
	}
	s.adapted = true
	for _, sess := range s.sessions {
		if sess.quarantined || sess.codec >= wire.CodecQ8 || sess.cap < wire.CodecQ8 {
			continue
		}
		// Best effort: a client we cannot reach keeps its old codec and
		// will be quarantined by the next round's distribution anyway.
		if err := sess.conn.Send(&CodecSwitch{Codec: wire.CodecQ8}); err != nil {
			continue
		}
		// Only the send side flips now; the receive side keeps decoding
		// the old codec until the client's CodecSwitch ack arrives in the
		// read loop, so an in-flight old-codec update (a straggler racing
		// the switch) still decodes instead of poisoning the stream.
		sess.codec = wire.CodecQ8
		sess.conn.SetSendCodec(wire.CodecQ8)
	}
}

// readLoop pumps one connection into the shared arrival channel until
// the connection fails or the session shuts down. Two cases are handled
// here rather than in the round goroutine because they must act before
// the *next* frame is read: a client's CodecSwitch ack flips the
// receive codec (every later frame is new-codec — FIFO framing), and a
// decode failure (ErrDecode) leaves the length-prefixed stream intact,
// so the loop keeps reading instead of treating the connection as dead.
func readLoop(sess *session, arrivals chan<- arrival, done <-chan struct{}) {
	for {
		msg, err := sess.conn.Recv()
		if cs, ok := msg.(*CodecSwitch); ok && cs.Codec.Valid() {
			sess.conn.SetRecvCodec(cs.Codec)
		}
		select {
		case arrivals <- arrival{sess: sess, msg: msg, err: err}:
		case <-done:
			return
		}
		if err != nil && !errors.Is(err, ErrDecode) {
			return
		}
	}
}

// selectClients performs Fig. 2 step 1 — challenge, attestation
// verification, trusted-channel establishment — across a bounded worker
// pool. Clients that fail are rejected individually; input order is
// preserved so sampling stays deterministic.
func (s *Server) selectClients(conns []Conn) []*session {
	results := make([]*session, len(conns))
	workers := s.cfg.SelectWorkers
	if workers > len(conns) {
		workers = len(conns)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = s.selectOne(conns[i])
			}
		}()
	}
	for i := range conns {
		work <- i
	}
	close(work)
	wg.Wait()

	var out []*session
	for _, sess := range results {
		if sess != nil {
			out = append(out, sess)
		}
	}
	return out
}

// selectOne runs the selection handshake with a single connection,
// returning nil when the client is rejected or unreachable. On
// deadline-capable transports the whole handshake is bounded by
// IOTimeout; afterwards only writes stay bounded, since reads are paced
// by the round deadline.
func (s *Server) selectOne(conn Conn) *session {
	SetMeter(conn, s.ob.wireMeter())
	dc, hasDeadlines := conn.(DeadlineConn)
	if hasDeadlines && s.cfg.IOTimeout > 0 {
		dc.SetReadTimeout(s.cfg.IOTimeout)
		dc.SetWriteTimeout(s.cfg.IOTimeout)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		s.reject(conn, fmt.Sprintf("generating nonce: %v", err))
		return nil
	}
	// In enclave-backed secure-aggregation sessions the trusted-channel
	// offer is generated inside the enclave, so the private half (and
	// later the channel keys) never exist in server memory.
	enclaved := s.cfg.SecAgg && s.cfg.Enclave != nil
	var offer *tz.ChannelOffer
	var offerID uint64
	var serverPub []byte
	establishedOffer := false
	if enclaved {
		var err error
		offerID, serverPub, err = s.cfg.Enclave.NewOffer()
		if err != nil {
			s.reject(conn, fmt.Sprintf("enclave channel offer: %v", err))
			return nil
		}
		// A handshake that fails before establishment must not leak the
		// offer in the enclave for the life of the process.
		defer func() {
			if !establishedOffer {
				s.cfg.Enclave.DiscardOffer(offerID)
			}
		}()
	} else {
		var err error
		offer, err = tz.NewChannelOffer()
		if err != nil {
			s.reject(conn, fmt.Sprintf("channel offer: %v", err))
			return nil
		}
		serverPub = offer.Public
	}
	ch := &Challenge{Nonce: nonce, ServerPub: serverPub, RequireTEE: s.cfg.RequireTEE, Codec: s.cfg.Codec}
	if s.cfg.SecAgg {
		ch.SecAgg = true
		ch.ScaleBits = uint8(s.cfg.SecAggScaleBits)
		ch.MaskDegree = s.cfg.MaskDegree
		if enclaved {
			// The quote covers nonce ‖ offered channel key, binding the
			// enclave identity to the key clients will seal against.
			quote, err := s.cfg.Enclave.Attest(secagg.AggQuoteNonce(nonce, serverPub))
			if err != nil {
				s.reject(conn, fmt.Sprintf("enclave attestation: %v", err))
				return nil
			}
			ch.AggQuote = quote
		}
	}
	if err := conn.Send(ch); err != nil {
		_ = conn.Close()
		return nil
	}
	msg, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return nil
	}
	att, ok := msg.(*Attest)
	if !ok {
		s.reject(conn, fmt.Sprintf("sent %T instead of Attest", msg))
		return nil
	}
	if !att.Codec.Valid() || att.Codec > s.cfg.Codec {
		s.reject(conn, fmt.Sprintf("codec %s exceeds offered %s", att.Codec, s.cfg.Codec))
		return nil
	}
	if !att.Cap.Valid() {
		att.Cap = att.Codec // an unknown claimed cap is no cap at all
	}
	if s.resuming {
		// Resumption: the device must be a member of the journaled
		// roster — its admission (including attestation) was already
		// journaled by the crashed process, so it rejoins without
		// re-attesting. The trust model is explicit: the journal is as
		// trusted as the server host that wrote it. Unknown devices and
		// devices the crashed session quarantined are turned away.
		ent := s.rosterEntry(att.DeviceID)
		if ent == nil {
			s.reject(conn, "device is not a member of the resumed session")
			return nil
		}
		if h := s.history[att.DeviceID]; h != nil && h.quarantined {
			s.reject(conn, "device was quarantined before the crash")
			return nil
		}
		if s.cfg.RequireTEE && !att.HasTEE {
			s.reject(conn, "device has no TEE")
			return nil
		}
	} else if s.cfg.RequireTEE {
		if !att.HasTEE {
			s.reject(conn, "device has no TEE")
			return nil
		}
		if err := s.cfg.Verifier.Verify(att.Quote, nonce); err != nil {
			s.reject(conn, fmt.Sprintf("attestation failed: %v", err))
			return nil
		}
	}
	if s.cfg.SecAgg {
		if len(att.MaskPub) == 0 {
			s.reject(conn, "secure aggregation requires a mask public key")
			return nil
		}
		if err := secagg.ValidateMaskPub(att.MaskPub); err != nil {
			s.reject(conn, fmt.Sprintf("invalid mask public key: %v", err))
			return nil
		}
	}
	sess := &session{conn: conn, device: att.DeviceID, hasTEE: att.HasTEE, codec: att.Codec, cap: att.Cap, maskPub: att.MaskPub}
	if att.HasTEE && len(att.ClientPub) > 0 {
		if enclaved {
			if err := s.cfg.Enclave.Establish(offerID, att.DeviceID, att.ClientPub); err != nil {
				s.reject(conn, fmt.Sprintf("enclave channel establishment failed: %v", err))
				return nil
			}
			establishedOffer = true
			sess.enclaveChannel = true
		} else {
			channel, err := offer.Establish(att.ClientPub, true)
			if err != nil {
				s.reject(conn, fmt.Sprintf("channel establishment failed: %v", err))
				return nil
			}
			sess.channel = channel
		}
	} else if enclaved {
		// The masked layout must be uniform across the cohort: a client
		// unable to take protected tensors through the sealed path
		// cannot participate once the planner protects anything.
		s.reject(conn, "secure aggregation with an enclave requires a trusted channel")
		return nil
	}
	conn.SetCodec(att.Codec)
	if hasDeadlines {
		dc.SetReadTimeout(0) // reads are round-paced from here on
	}
	return sess
}

func (s *Server) reject(conn Conn, reason string) {
	// Best effort: a client that has already gone away stays rejected.
	_ = conn.Send(&Reject{Reason: reason})
	_ = conn.Close()
}

// live returns the sessions eligible for the round — neither
// permanently quarantined nor on probation — in selection order.
func live(sessions []*session, round int) []*session {
	var out []*session
	for _, sess := range sessions {
		if sess.eligible(round) {
			out = append(out, sess)
		}
	}
	return out
}

// sample draws the round's cohort from the live sessions using the
// seeded RNG. Selection order is preserved. The permutation is always
// drawn over the full selected roster — never the live subset — so the
// RNG consumes an identical number of draws every round and the cohort
// sequence is invariant to quarantine/probation history: restricting a
// uniform roster permutation to the live subset leaves a uniform
// permutation of that subset, whose first k members are a uniform
// k-subset.
func (s *Server) sample(live []*session) []*session {
	n := len(live)
	k := n
	switch {
	case s.cfg.SampleCount > 0:
		k = s.cfg.SampleCount
	case s.cfg.SampleFraction > 0 && s.cfg.SampleFraction < 1:
		k = int(math.Ceil(float64(n) * s.cfg.SampleFraction))
	}
	if k < s.cfg.MinClients {
		k = s.cfg.MinClients
	}
	perm := s.rng.Perm(len(s.sessions))
	if k >= n {
		return live
	}
	liveSet := make(map[*session]bool, n)
	for _, sess := range live {
		liveSet[sess] = true
	}
	idx := make([]int, 0, k)
	for _, i := range perm {
		if liveSet[s.sessions[i]] {
			idx = append(idx, i)
			if len(idx) == k {
				break
			}
		}
	}
	sort.Ints(idx)
	out := make([]*session, 0, k)
	for _, i := range idx {
		out = append(out, s.sessions[i])
	}
	return out
}

// quarantine excludes a failed client. Stragglers are *not*
// quarantined — only training, protocol, and transport failures. With
// QuarantineRounds configured, non-transport failures put the client on
// probation (connection kept, re-eligible after the configured number
// of rounds); transport failures — the connection is gone — and the
// QuarantineRounds=0 default are permanent.
func (s *Server) quarantine(sess *session, reason error, stats *RoundStats, reasons *[]string) {
	s.quarantineAt(sess, 0, false, reason, stats, reasons)
}

func (s *Server) quarantineAt(sess *session, round int, probationable bool, reason error, stats *RoundStats, reasons *[]string) {
	if sess.quarantined {
		return
	}
	*reasons = append(*reasons, fmt.Sprintf("%s: %v", sess.device, reason))
	if probationable && s.cfg.QuarantineRounds > 0 {
		// Probation: the connection stays open and the client returns
		// after the window — accounted and signalled separately from
		// permanent loss.
		sess.probationUntil = round + 1 + s.cfg.QuarantineRounds
		s.noteHistory(sess.device).probationUntil = sess.probationUntil
		s.journalAppend(&journal.Record{Type: journal.RecProbation, Device: sess.device, Until: sess.probationUntil})
		stats.Probation++
		s.health.probation.Add(1)
		if s.cfg.Hooks.ClientProbationed != nil {
			s.cfg.Hooks.ClientProbationed(sess.device, reason)
		}
		return
	}
	sess.quarantined = true
	s.noteHistory(sess.device).quarantined = true
	s.journalAppend(&journal.Record{Type: journal.RecQuarantine, Device: sess.device})
	_ = sess.conn.Close()
	stats.Quarantined++
	s.health.quarantined.Add(1)
	if s.cfg.Hooks.ClientQuarantined != nil {
		s.cfg.Hooks.ClientQuarantined(sess.device, reason)
	}
}

// noteHistory returns (creating if needed) a device's durable standing.
func (s *Server) noteHistory(device string) *deviceHistory {
	h := s.history[device]
	if h == nil {
		h = &deviceHistory{}
		s.history[device] = h
	}
	return h
}

// runRound executes one FL cycle: sample a cohort, distribute the model,
// fold updates as they arrive (streaming FedAvg), and close the round at
// the deadline with whoever responded. In partial mode the aggregate is
// returned un-normalised instead of being applied.
func (s *Server) runRound(round int, sessions []*session, arrivals <-chan arrival) (*Partial, error) {
	alive := live(sessions, round)
	if len(alive) < s.cfg.MinClients {
		return nil, fmt.Errorf("%w: %d live clients, need %d", ErrNotEnoughClients, len(alive), s.cfg.MinClients)
	}
	// Resolve the round's trace ID before the first span opens: adopted
	// from upstream (hierarchical edge) or minted deterministically here.
	s.curTrace = s.roundTrace
	if s.curTrace == 0 {
		s.curTrace = obs.RoundTrace(round)
	}
	s.ob.setTrace(s.curTrace)
	ptRound := s.ob.startPhase("round", round)
	ptSample := s.ob.startPhase("sample", round)
	sampled := s.sample(alive)

	stats := RoundStats{Round: round, Sampled: len(sampled)}
	var reasons []string

	// Arm the deadline before any model leaves the server so time spent
	// distributing counts against the round budget. The sends themselves
	// are not interruptible by this timer; on deadline-capable
	// transports (TCP) each write is bounded by cfg.IOTimeout instead.
	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := s.cfg.Clock.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}

	if s.cfg.Hooks.RoundStarted != nil {
		names := make([]string, len(sampled))
		for i, sess := range sampled {
			names[i] = sess.device
		}
		s.cfg.Hooks.RoundStarted(round, names)
	}

	protected, planBlob := s.cfg.Planner.PlanRound(round)
	hasProtected := false
	for _, p := range protected {
		if p {
			hasProtected = true
			break
		}
	}

	// Encode-once broadcast: every cohort member that receives no sealed
	// payload gets the identical ModelDown bytes, serialised once per
	// negotiated codec instead of once per client. Only clients with a
	// trusted channel AND a non-empty protection plan need a per-client
	// build (their sealed blob is keyed to their channel).
	needsSealing := func(sess *session) bool { return hasProtected && sess.channel != nil }
	shared := make(map[wire.Codec][]byte)
	for _, sess := range sampled {
		if needsSealing(sess) {
			continue
		}
		if _, ok := shared[sess.codec]; !ok {
			down := &ModelDown{Round: round, Plain: s.state, Plan: planBlob, Version: uint64(round), Trace: s.curTrace}
			shared[sess.codec] = EncodeMessageCodec(down, sess.codec)
		}
	}

	ptSample.end()

	// Distribute the model to the cohort in parallel: shared frames for
	// the broadcast group, per-client sealing for the rest.
	ptBroadcast := s.ob.startPhase("broadcast", round)
	sendErrs := make([]error, len(sampled))
	var sends sync.WaitGroup
	for i, sess := range sampled {
		sends.Add(1)
		go func(i int, sess *session) {
			defer sends.Done()
			if !needsSealing(sess) {
				sendErrs[i] = sess.conn.SendFrame(MsgModelDown, shared[sess.codec])
				return
			}
			down, err := s.buildModelDown(round, sess, protected, planBlob)
			if err == nil {
				err = sess.conn.Send(down)
			}
			sendErrs[i] = err
		}(i, sess)
	}
	sends.Wait()
	ptBroadcast.end()

	pending := make(map[*session]bool, len(sampled))
	for i, sess := range sampled {
		if sendErrs[i] != nil {
			s.quarantine(sess, fmt.Errorf("sending model: %w", sendErrs[i]), &stats, &reasons)
			continue
		}
		pending[sess] = true
	}

	agg := s.newAggregator()
	ptCollect := s.ob.startPhase("collect", round)
collect:
	for len(pending) > 0 {
		select {
		case a := <-arrivals:
			s.handleArrival(round, a, pending, agg, &stats, &reasons)
		case <-deadlineC:
			// Drain updates that raced the deadline, then drop the rest.
			for {
				select {
				case a := <-arrivals:
					s.handleArrival(round, a, pending, agg, &stats, &reasons)
				default:
					break collect
				}
			}
		}
	}
	ptCollect.end()
	stats.Dropped = len(pending)
	stats.Responded = agg.Count()
	stats.WeightTotal = agg.Weight()

	ptClose := s.ob.startPhase("close", round)
	defer ptRound.end()
	defer ptClose.end()
	if agg.Count() < s.cfg.MinClients {
		detail := ""
		if len(reasons) > 0 {
			detail = " (" + strings.Join(reasons, "; ") + ")"
		}
		err := fmt.Errorf("%w: %d of %d sampled clients responded, need %d%s",
			ErrNotEnoughClients, agg.Count(), stats.Sampled, s.cfg.MinClients, detail)
		s.closeRound(stats, false, nil)
		return nil, err
	}
	if s.cfg.Partials {
		// Hierarchical edge: hand the raw weighted sum upstream; the
		// root normalises once over the whole fleet, so the hierarchy's
		// arithmetic composes exactly.
		s.closeRound(stats, true, nil)
		return &Partial{Round: round, Sum: agg.Sum(), Weight: agg.Weight(), Count: agg.Count(), Stats: stats}, nil
	}
	mean, err := agg.Mean()
	if err != nil {
		s.closeRound(stats, false, nil)
		return nil, err
	}
	stats.UpdateNorm = UpdateNorm(mean)
	ApplyUpdate(s.state, mean, 1.0)
	s.closeRound(stats, true, mean)
	return nil, nil
}

// closeRound commits a round: the journal close record (carrying the
// applied mean update for successful flat rounds, so recovery replays
// the model bit-identically without re-training), the trace entry, and
// the observer hook — in that order, so a crash inside a hook still
// finds the round committed on disk. Asynchronous sessions commit
// model versions as watermarks instead: they burn no sampling draws on
// replay.
func (s *Server) closeRound(stats RoundStats, ok bool, applied []*tensor.Tensor) {
	// Stamp the round's wire byte deltas into stats and fold it into the
	// counters first, so the trace entry below carries BytesUp/BytesDown.
	s.ob.noteClose(&stats, ok)
	if s.cfg.Journal != nil {
		typ := journal.RecRoundClose
		if s.cfg.Async.Enabled {
			typ = journal.RecWatermark
		}
		s.journalAppend(&journal.Record{
			Type:   typ,
			Round:  stats.Round,
			OK:     ok,
			Stats:  toJournalStats(stats),
			Update: applied,
		})
		_ = s.cfg.Journal.Sync()
	}
	s.traceMu.Lock()
	s.trace = append(s.trace, stats)
	s.traceMu.Unlock()
	s.health.round.Store(int64(stats.Round + 1))
	if s.cfg.Hooks.RoundClosed != nil {
		s.cfg.Hooks.RoundClosed(stats)
	}
}

func toJournalStats(st RoundStats) journal.Stats {
	return journal.Stats{
		Round:         st.Round,
		Sampled:       st.Sampled,
		Responded:     st.Responded,
		Dropped:       st.Dropped,
		Quarantined:   st.Quarantined,
		Probation:     st.Probation,
		LateDiscarded: st.LateDiscarded,
		Duplicates:    st.Duplicates,
		Reconciled:    st.Reconciled,
		WeightTotal:   st.WeightTotal,
		UpdateNorm:    st.UpdateNorm,
		Shards:        st.Shards,
	}
}

func fromJournalStats(st journal.Stats) RoundStats {
	return RoundStats{
		Round:         st.Round,
		Sampled:       st.Sampled,
		Responded:     st.Responded,
		Dropped:       st.Dropped,
		Quarantined:   st.Quarantined,
		Probation:     st.Probation,
		LateDiscarded: st.LateDiscarded,
		Duplicates:    st.Duplicates,
		Reconciled:    st.Reconciled,
		WeightTotal:   st.WeightTotal,
		UpdateNorm:    st.UpdateNorm,
		Shards:        st.Shards,
	}
}

// handleArrival routes one client message during a round: fold a valid
// update, discard stale ones, quarantine on failure.
func (s *Server) handleArrival(round int, a arrival, pending map[*session]bool, agg UpdateAggregator, stats *RoundStats, reasons *[]string) {
	sess := a.sess
	if sess.quarantined {
		return // residue from an already-closed connection
	}
	if a.err != nil {
		delete(pending, sess)
		// A frame that failed to decode is a client protocol fault on a
		// still-usable connection (probationable); anything else means
		// the transport is gone (permanent).
		s.quarantineAt(sess, round, errors.Is(a.err, ErrDecode), fmt.Errorf("transport: %w", a.err), stats, reasons)
		return
	}
	switch m := a.msg.(type) {
	case *CodecSwitch:
		// The client's ack of an adaptive downgrade; the receive codec
		// already flipped in the read loop. Nothing to fold.
		return
	case *GradUp:
		if m.Round < round {
			if m.Round < sess.reconDoneRound {
				// The target round's masks were already reconciled with
				// this device counted as dropped: accepting anything it
				// trained for that round is the unmasking window.
				delete(pending, sess)
				s.quarantineAt(sess, round, true, fmt.Errorf("%w: update for round %d", ErrLateAfterRecon, m.Round), stats, reasons)
				return
			}
			// A straggler's answer to an earlier round: discard, but keep
			// the client pending — its answer to this round may follow.
			stats.LateDiscarded++
			return
		}
		if m.Round > round || !pending[sess] {
			delete(pending, sess)
			s.quarantineAt(sess, round, true, fmt.Errorf("unexpected update for round %d during round %d", m.Round, round), stats, reasons)
			return
		}
		// Weighted FedAvg: a client reporting its local example count is
		// weighted by it; absent (0) means unit weight. The count is
		// clamped so a hostile or buggy client cannot claim an absurd
		// weight and drown out the rest of the cohort.
		weight := 1.0
		if m.Examples > 0 {
			weight = float64(min(m.Examples, MaxExampleWeight))
		}
		// A purely-plain update that arrived in the lazy q8 form folds
		// its levels straight into the running sum — no per-client
		// float64 model is ever materialised. Updates with a sealed half
		// take the merge path (the sealed tensors are f64 anyway).
		var err error
		if m.Q8 != nil && len(m.Sealed) == 0 {
			err = agg.AccumulateQ8(m.Q8, weight)
		} else {
			var update []*tensor.Tensor
			if update, err = s.mergeUpdate(sess, m); err == nil {
				err = agg.Add(update, weight)
			}
		}
		if err != nil {
			delete(pending, sess)
			s.quarantineAt(sess, round, true, err, stats, reasons)
			return
		}
		delete(pending, sess)
		s.mergeClientTelemetry(sess.device, m.Telemetry)
		s.journalAppend(&journal.Record{Type: journal.RecFold, Round: round, Device: sess.device})
		if s.cfg.Hooks.UpdateFolded != nil {
			s.cfg.Hooks.UpdateFolded(round, sess.device)
		}
	case *ErrorMsg:
		delete(pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("client error: %s", m.Text), stats, reasons)
	default:
		delete(pending, sess)
		s.quarantineAt(sess, round, true, fmt.Errorf("unexpected %T mid-round", a.msg), stats, reasons)
	}
}

// mergeClientTelemetry folds a client-attached telemetry snapshot into
// the server registry under client-tier provenance labels. Off unless
// the server opted in; a snapshot that fails to decode is dropped
// silently — telemetry must never fail a round.
func (s *Server) mergeClientTelemetry(device string, blob []byte) {
	if !s.cfg.ClientTelemetry || s.cfg.Metrics == nil || len(blob) == 0 {
		return
	}
	snap, err := obs.DecodeSnapshot(blob)
	if err != nil {
		return
	}
	s.cfg.Metrics.MergeSnapshot(snap, "tier", "client", "shard", device)
}

// buildModelDown assembles one client's round message, splitting
// protected tensors into the sealed path when the client has a trusted
// channel.
func (s *Server) buildModelDown(round int, sess *session, protected map[int]bool, planBlob []byte) (*ModelDown, error) {
	down := &ModelDown{Round: round, Plan: planBlob, Version: uint64(round), Trace: s.curTrace}
	down.Plain = make([]*tensor.Tensor, len(s.state))
	var secretIdx []int
	var secretTs []*tensor.Tensor
	for i, p := range s.state {
		if protected[i] && sess.channel != nil {
			secretIdx = append(secretIdx, i)
			secretTs = append(secretTs, p)
		} else {
			down.Plain[i] = p
		}
	}
	if len(secretIdx) > 0 {
		down.Sealed = sess.channel.Seal(SealedUpdate(secretIdx, secretTs))
	}
	return down, nil
}

// mergeUpdate reassembles a client's full flat update from its plain and
// sealed halves and validates it against the model shapes.
func (s *Server) mergeUpdate(sess *session, up *GradUp) ([]*tensor.Tensor, error) {
	full := make([]*tensor.Tensor, len(s.state))
	copy(full, up.Tensors())
	if len(up.Sealed) > 0 {
		if sess.channel == nil {
			return nil, errors.New("sealed update without an established channel")
		}
		blob, err := sess.channel.Open(up.Sealed)
		if err != nil {
			return nil, fmt.Errorf("unsealing update: %w", err)
		}
		idx, ts, err := ParseSealedUpdate(blob)
		if err != nil {
			return nil, fmt.Errorf("parsing sealed update: %w", err)
		}
		for j, id := range idx {
			if id < 0 || id >= len(full) {
				return nil, fmt.Errorf("sealed update index %d out of range", id)
			}
			full[id] = ts[j]
		}
	}
	for i, u := range full {
		if u == nil {
			return nil, fmt.Errorf("update missing tensor %d", i)
		}
		if !u.SameShape(s.state[i]) {
			return nil, fmt.Errorf("update tensor %d has shape %v, want %v", i, u.Shape, s.state[i].Shape)
		}
	}
	return full, nil
}

// FedAvg returns the elementwise mean of the client updates — the
// buffered reference implementation. The round engine itself streams
// through an Aggregator; for unit weights and equal fold order the two
// are bit-for-bit identical. All updates must be complete and
// shape-consistent (the server validates before calling).
func FedAvg(updates [][]*tensor.Tensor) []*tensor.Tensor {
	if len(updates) == 0 {
		return nil
	}
	out := make([]*tensor.Tensor, len(updates[0]))
	for i := range out {
		acc := updates[0][i].Clone()
		for _, u := range updates[1:] {
			tensor.AddInPlace(acc, u[i])
		}
		out[i] = tensor.Scale(acc, 1/float64(len(updates)))
	}
	return out
}

// ApplyUpdate adds scale×update to state in place. Updates are weight
// deltas (W_local − W_global), so scale 1 performs standard FedAvg.
func ApplyUpdate(state, update []*tensor.Tensor, scale float64) {
	for i, u := range update {
		tensor.AxPy(scale, u, state[i])
	}
}
