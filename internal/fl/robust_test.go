package fl

import (
	"errors"
	"testing"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

func TestParseAggMethod(t *testing.T) {
	cases := []struct {
		name string
		want AggMethod
	}{
		{"", AggFedAvg}, {"fedavg", AggFedAvg}, {"mean", AggFedAvg},
		{"trimmed-mean", AggTrimmedMean}, {"trimmed_mean", AggTrimmedMean}, {"trim", AggTrimmedMean},
		{"median", AggMedian},
	}
	for _, c := range cases {
		got, err := ParseAggMethod(c.name)
		if err != nil || got != c.want {
			t.Fatalf("ParseAggMethod(%q) = %v, %v; want %v", c.name, got, err, c.want)
		}
	}
	if _, err := ParseAggMethod("krum"); err == nil {
		t.Fatal("ParseAggMethod accepted an unknown method")
	}
}

// oneTensor builds a single-tensor update holding the given values.
func oneTensor(vals ...float64) []*tensor.Tensor {
	ts := tensor.New(len(vals))
	copy(ts.Data, vals)
	return []*tensor.Tensor{ts}
}

func TestTrimmedMeanDropsOutliers(t *testing.T) {
	ref := oneTensor(0, 0, 0)
	a := newRobustAggregator(ref, AggTrimmedMean, 0.2)
	// Five updates; one poisoner pushes +1000 on every coordinate.
	for _, v := range []float64{1, 2, 3, 4} {
		if err := a.Add(oneTensor(v, v, v), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Add(oneTensor(1000, 1000, 1000), 7); err != nil {
		t.Fatal(err)
	}
	// trim 0.2 of 5 → drop 1 from each end: keep {2,3,4} → mean 3,
	// independent of the poisoner's self-reported weight.
	mean, err := a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	for j, got := range mean[0].Data {
		if got != 3 {
			t.Fatalf("coord %d = %v, want 3", j, got)
		}
	}
	if a.Count() != 5 || a.Weight() != 11 {
		t.Fatalf("count/weight = %d/%v, want 5/11", a.Count(), a.Weight())
	}
	if a.Sum() != nil {
		t.Fatal("robust aggregator returned a partial sum")
	}
}

func TestTrimmedMeanClampsLargeTrim(t *testing.T) {
	// trim 0.45 of 2 updates → int(0.9)=0 dropped; with 3 updates
	// int(1.35)=1 from each end leaves exactly the median.
	a := newRobustAggregator(oneTensor(0), AggTrimmedMean, 0.45)
	for _, v := range []float64{-8, 2, 100} {
		if err := a.Add(oneTensor(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got := mean[0].Data[0]; got != 2 {
		t.Fatalf("trimmed mean = %v, want 2", got)
	}
}

func TestMedianOddAndEven(t *testing.T) {
	a := newRobustAggregator(oneTensor(0), AggMedian, 0)
	for _, v := range []float64{5, -100, 1} {
		if err := a.Add(oneTensor(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got := mean[0].Data[0]; got != 1 {
		t.Fatalf("odd median = %v, want 1", got)
	}

	a = newRobustAggregator(oneTensor(0), AggMedian, 0)
	for _, v := range []float64{4, -100, 2, 100} {
		if err := a.Add(oneTensor(v), 1); err != nil {
			t.Fatal(err)
		}
	}
	mean, err = a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got := mean[0].Data[0]; got != 3 {
		t.Fatalf("even median = %v, want 3", got)
	}
}

func TestRobustAggregatorRejects(t *testing.T) {
	a := newRobustAggregator(oneTensor(0, 0), AggMedian, 0)
	if _, err := a.Mean(); err == nil {
		t.Fatal("Mean of zero updates succeeded")
	}
	if err := a.Add(oneTensor(1), 1); err == nil {
		t.Fatal("accepted tensor-count mismatch")
	}
	if err := a.Add([]*tensor.Tensor{tensor.New(3)}, 1); err == nil {
		t.Fatal("accepted shape mismatch")
	}
	if err := a.Add(oneTensor(1, 1), 0); err == nil {
		t.Fatal("accepted zero weight")
	}
}

func TestRobustAccumulateQ8Materialises(t *testing.T) {
	a := newRobustAggregator(oneTensor(0, 0), AggMedian, 0)
	// Constant tensors (Scale 0) dequantise exactly to Lo.
	for _, v := range []float64{-2, 0, 2} {
		q := &wire.Q8Tensor{Shape: []int{2}, Lo: v, Levels: []byte{0, 0}}
		if err := a.AccumulateQ8([]*wire.Q8Tensor{q}, 1); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := a.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if got := mean[0].Data[0]; got != 0 {
		t.Fatalf("q8 median = %v, want 0", got)
	}
	if a.Count() != 3 {
		t.Fatalf("count = %d, want 3", a.Count())
	}
	bad := &wire.Q8Tensor{Shape: []int{3}, Levels: []byte{0, 0, 0}}
	if err := a.AccumulateQ8([]*wire.Q8Tensor{bad}, 1); err == nil {
		t.Fatal("accepted q8 shape mismatch")
	}
}

func TestRobustModeExclusions(t *testing.T) {
	open := func(cfg ServerConfig) error {
		srv := NewServer(newState(1), cfg)
		_, err := srv.Open(nil)
		return err
	}
	if err := open(ServerConfig{Aggregation: AggMedian, SecAgg: true}); !errors.Is(err, ErrRobustSecAgg) {
		t.Fatalf("SecAgg+robust: %v, want ErrRobustSecAgg", err)
	}
	if err := open(ServerConfig{Aggregation: AggMedian, Partials: true}); !errors.Is(err, ErrRobustPartials) {
		t.Fatalf("Partials+robust: %v, want ErrRobustPartials", err)
	}
	if err := open(ServerConfig{Aggregation: AggMedian, Async: AsyncConfig{Enabled: true}}); !errors.Is(err, ErrRobustAsync) {
		t.Fatalf("Async+robust: %v, want ErrRobustAsync", err)
	}
	if err := open(ServerConfig{Aggregation: AggTrimmedMean}); !errors.Is(err, ErrBadTrim) {
		t.Fatalf("trim 0: %v, want ErrBadTrim", err)
	}
	if err := open(ServerConfig{Aggregation: AggTrimmedMean, TrimFraction: 0.5}); !errors.Is(err, ErrBadTrim) {
		t.Fatalf("trim 0.5: %v, want ErrBadTrim", err)
	}
}

// TestMedianSessionShrugsOffPoisoner runs a full session: four honest
// clients pushing +1 per round, one pushing -1000. FedAvg would drag
// every weight down ~200 per round; the median lands exactly on the
// honest delta.
func TestMedianSessionShrugsOffPoisoner(t *testing.T) {
	state := newState(10)
	srv := NewServer(state, ServerConfig{Rounds: 2, Aggregation: AggMedian})
	trainers := []*testTrainer{
		newTestTrainer("h1", false, 1),
		newTestTrainer("h2", false, 1),
		newTestTrainer("h3", false, 1),
		newTestTrainer("h4", false, 1),
		newTestTrainer("poison", false, -1000),
	}
	if _, err := runSession(t, srv, trainers); err != nil {
		t.Fatal(err)
	}
	// Median of {1,1,1,1,-1000} is 1: after 2 rounds, 10 → 12 exactly.
	if got := state[0].Data[0]; got != 12 {
		t.Fatalf("state = %v, want 12 (median ignored the poisoner)", got)
	}
	for _, st := range srv.Trace() {
		if st.Responded != 5 {
			t.Fatalf("round %d responded = %d, want 5", st.Round, st.Responded)
		}
	}
}
