package fl

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDialRetrySucceedsAfterFailures: the dialer fails twice, then
// connects; DialRetry slept a doubled backoff before each retry.
func TestDialRetrySucceedsAfterFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	s, c := Pipe()
	defer s.Close()
	conn, err := DialRetry("test:1", RetryConfig{
		Attempts: 5,
		Base:     100 * time.Millisecond,
		Max:      time.Second,
		Jitter:   -1, // exact schedule
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
		Dial: func(string) (Conn, error) {
			calls++
			if calls < 3 {
				return nil, errors.New("connection refused")
			}
			return c, nil
		},
	})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	if conn != c {
		t.Fatal("returned a different conn")
	}
	if calls != 3 {
		t.Fatalf("dialed %d times, want 3", calls)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
	conn.Close()
}

// TestDialRetryExhaustsBudget: every attempt fails; the final error
// names the address, the budget, and wraps the last dial error.
func TestDialRetryExhaustsBudget(t *testing.T) {
	sentinel := errors.New("no route to host")
	calls := 0
	_, err := DialRetry("test:2", RetryConfig{
		Attempts: 3,
		Jitter:   -1,
		Sleep:    func(time.Duration) {},
		Dial:     func(string) (Conn, error) { calls++; return nil, sentinel },
	})
	if err == nil {
		t.Fatal("want an error after the budget is spent")
	}
	if calls != 3 {
		t.Fatalf("dialed %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last dial error", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %v does not report the budget", err)
	}
}

// TestDialRetryBackoffCapAndJitter: delays double up to Max and never
// beyond; with a pinned seed, jitter adds at most the configured
// fraction and the schedule is reproducible.
func TestDialRetryBackoffCapAndJitter(t *testing.T) {
	run := func() []time.Duration {
		var slept []time.Duration
		_, _ = DialRetry("test:3", RetryConfig{
			Attempts: 6,
			Base:     100 * time.Millisecond,
			Max:      400 * time.Millisecond,
			Jitter:   0.5,
			Seed:     42,
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
			Dial:     func(string) (Conn, error) { return nil, errors.New("down") },
		})
		return slept
	}
	first := run()
	if len(first) != 5 {
		t.Fatalf("slept %d times, want 5", len(first))
	}
	bases := []time.Duration{100, 200, 400, 400, 400}
	for i, base := range bases {
		lo, hi := base*time.Millisecond, base*time.Millisecond*3/2
		if first[i] < lo || first[i] > hi {
			t.Fatalf("backoff %d = %v, want within [%v, %v]", i, first[i], lo, hi)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pinned seed gave divergent schedules: %v vs %v", first, second)
		}
	}
}

// TestDialRetrySingleAttemptDefault: the zero config dials exactly once
// and never sleeps — drop-in for Dial.
func TestDialRetrySingleAttemptDefault(t *testing.T) {
	calls := 0
	_, err := DialRetry("test:4", RetryConfig{
		Sleep: func(time.Duration) { t.Fatal("single attempt must not sleep") },
		Dial:  func(string) (Conn, error) { calls++; return nil, errors.New("down") },
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls=%d err=%v, want one failed attempt", calls, err)
	}
}
