package fl

import (
	"errors"
	"fmt"
	"sort"

	"github.com/gradsec/gradsec/internal/tensor"
	"github.com/gradsec/gradsec/internal/wire"
)

// AggMethod selects the round aggregation strategy. The default,
// AggFedAvg, is the streaming weighted mean the engine has always run;
// the robust methods bound the influence of Byzantine clients at the
// cost of buffering the cohort's updates (O(clients × model) memory
// instead of O(model)) and of ignoring example-count weights — a
// self-reported weight is itself an attack vector, so robust methods
// treat every update equally.
type AggMethod uint8

const (
	// AggFedAvg is streaming weighted federated averaging.
	AggFedAvg AggMethod = iota
	// AggTrimmedMean sorts each coordinate across the cohort, drops
	// the ⌈trim·n⌉ largest and smallest values, and averages the rest.
	// Tolerates up to trim·n colluding poisoners per coordinate.
	AggTrimmedMean
	// AggMedian takes the coordinate-wise median — the trimmed mean's
	// limit, tolerating just under half the cohort.
	AggMedian
)

// ParseAggMethod maps a CLI/config name to an AggMethod.
func ParseAggMethod(name string) (AggMethod, error) {
	switch name {
	case "", "fedavg", "mean":
		return AggFedAvg, nil
	case "trimmed-mean", "trimmed_mean", "trim":
		return AggTrimmedMean, nil
	case "median":
		return AggMedian, nil
	}
	return 0, fmt.Errorf("fl: unknown aggregation method %q (want fedavg, trimmed-mean, or median)", name)
}

func (m AggMethod) String() string {
	switch m {
	case AggFedAvg:
		return "fedavg"
	case AggTrimmedMean:
		return "trimmed-mean"
	case AggMedian:
		return "median"
	}
	return fmt.Sprintf("aggmethod(%d)", uint8(m))
}

// Robust aggregation needs each client's plaintext update — the whole
// point is comparing per-client values coordinate by coordinate. That
// is structurally incompatible with secure aggregation, whose whole
// point is that the server only ever sees the masked sum. The two are
// therefore mutually exclusive; pick the threat model that matters
// more for the deployment (a poisoning fleet vs an honest-but-curious
// server) and document the choice.
var (
	// ErrRobustSecAgg rejects SecAgg + a robust aggregator.
	ErrRobustSecAgg = errors.New("fl: robust aggregation requires plaintext per-client updates and cannot compose with secure aggregation (masking hides exactly the per-client values trimming needs) — disable SecAgg or use AggFedAvg")
	// ErrRobustPartials rejects robust aggregation on a hierarchical
	// edge: a partial is an un-normalised sum, and trimming per-shard
	// sums at the root would not bound per-client influence anyway.
	ErrRobustPartials = errors.New("fl: robust aggregation is not available in hierarchical partial mode (partials are sums, not per-client updates)")
	// ErrRobustAsync rejects robust aggregation in asynchronous mode:
	// the buffer mixes versions, so coordinate statistics are not
	// taken over a common reference model.
	ErrRobustAsync = errors.New("fl: robust aggregation is not available in asynchronous mode (buffered updates span model versions)")
	// ErrBadTrim rejects a trim fraction outside (0, 0.5).
	ErrBadTrim = errors.New("fl: TrimFraction must be in (0, 0.5)")
)

// UpdateAggregator is the round aggregation strategy: the streaming
// FedAvg Aggregator and the buffering robust aggregators implement it,
// and the round loop folds arrivals through it without knowing which
// is behind it.
type UpdateAggregator interface {
	// Add folds one complete client update with the given weight.
	Add(update []*tensor.Tensor, weight float64) error
	// AccumulateQ8 folds one update that arrived in the lazy q8 wire
	// form.
	AccumulateQ8(update []*wire.Q8Tensor, weight float64) error
	// Count returns the number of folded updates.
	Count() int
	// Weight returns the summed weight of the folded updates.
	Weight() float64
	// Sum returns the raw weighted sum for hierarchical partial
	// forwarding; robust aggregators return nil (partial mode rejects
	// them at Open).
	Sum() []*tensor.Tensor
	// Mean produces the round aggregate.
	Mean() ([]*tensor.Tensor, error)
}

// newAggregator builds the configured aggregation strategy for one
// round over the current model shapes.
func (s *Server) newAggregator() UpdateAggregator {
	switch s.cfg.Aggregation {
	case AggTrimmedMean, AggMedian:
		return newRobustAggregator(s.state, s.cfg.Aggregation, s.cfg.TrimFraction)
	default:
		return NewAggregator(s.state)
	}
}

// validateAggregation enforces the mode exclusions above at session
// open, where configuration errors can still be reported cleanly.
func (s *Server) validateAggregation() error {
	if s.cfg.Aggregation == AggFedAvg {
		return nil
	}
	if s.cfg.SecAgg {
		return ErrRobustSecAgg
	}
	if s.cfg.Partials {
		return ErrRobustPartials
	}
	if s.cfg.Async.Enabled {
		return ErrRobustAsync
	}
	if s.cfg.Aggregation == AggTrimmedMean {
		if !(s.cfg.TrimFraction > 0 && s.cfg.TrimFraction < 0.5) {
			return fmt.Errorf("%w: got %v", ErrBadTrim, s.cfg.TrimFraction)
		}
	}
	return nil
}

// robustAggregator buffers the cohort's updates and aggregates
// coordinate-wise at Mean time. Updates are retained as handed to Add
// (the decoder allocates fresh tensors per arrival, so no copy is
// needed). Weights are summed for trace accounting but deliberately do
// not influence the aggregate.
type robustAggregator struct {
	ref     []*tensor.Tensor
	updates [][]*tensor.Tensor
	weight  float64
	method  AggMethod
	trim    float64
}

func newRobustAggregator(ref []*tensor.Tensor, method AggMethod, trim float64) *robustAggregator {
	return &robustAggregator{ref: ref, method: method, trim: trim}
}

func (a *robustAggregator) validate(n int, shape func(i int) bool, weight float64) error {
	if n != len(a.ref) {
		return fmt.Errorf("fl: update has %d tensors, model has %d", n, len(a.ref))
	}
	if weight <= 0 {
		return fmt.Errorf("fl: non-positive update weight %v", weight)
	}
	for i := 0; i < n; i++ {
		if !shape(i) {
			return fmt.Errorf("fl: update tensor %d shape mismatch", i)
		}
	}
	return nil
}

// Add implements UpdateAggregator, retaining the update for the
// coordinate pass.
func (a *robustAggregator) Add(update []*tensor.Tensor, weight float64) error {
	err := a.validate(len(update), func(i int) bool {
		return update[i] != nil && update[i].SameShape(a.ref[i])
	}, weight)
	if err != nil {
		return err
	}
	a.updates = append(a.updates, update)
	a.weight += weight
	return nil
}

// AccumulateQ8 implements UpdateAggregator by materialising the q8
// tensors — robust methods need every coordinate in float form, so the
// lazy-fold optimisation does not apply.
func (a *robustAggregator) AccumulateQ8(update []*wire.Q8Tensor, weight float64) error {
	err := a.validate(len(update), func(i int) bool {
		return update[i] != nil && update[i].SameShape(a.ref[i]) && len(update[i].Levels) == a.ref[i].Size()
	}, weight)
	if err != nil {
		return err
	}
	mat := make([]*tensor.Tensor, len(update))
	for i, q := range update {
		mat[i] = q.Materialise()
	}
	a.updates = append(a.updates, mat)
	a.weight += weight
	return nil
}

// Count implements UpdateAggregator.
func (a *robustAggregator) Count() int { return len(a.updates) }

// Weight implements UpdateAggregator.
func (a *robustAggregator) Weight() float64 { return a.weight }

// Sum implements UpdateAggregator; robust aggregators have no partial
// form (Open rejects Partials mode before one is ever built).
func (a *robustAggregator) Sum() []*tensor.Tensor { return nil }

// Mean implements UpdateAggregator: the coordinate-wise trimmed mean
// or median of the buffered updates. Sorting each coordinate makes the
// result independent of arrival order, so deterministic simulations
// stay bit-reproducible. With dyadic-rational inputs the median of an
// odd cohort and any trimmed sum are exact, which is what lets flsim
// assert robust-vs-clean norms without tolerance bands.
func (a *robustAggregator) Mean() ([]*tensor.Tensor, error) {
	n := len(a.updates)
	if n == 0 {
		return nil, errors.New("fl: aggregating zero updates")
	}
	drop := 0
	if a.method == AggTrimmedMean {
		drop = int(a.trim * float64(n))
		if 2*drop >= n {
			drop = (n - 1) / 2
		}
	}
	out := make([]*tensor.Tensor, len(a.ref))
	col := make([]float64, n)
	for i, r := range a.ref {
		out[i] = tensor.New(r.Shape...)
		dst := out[i].Data
		for j := range dst {
			for k, u := range a.updates {
				col[k] = u[i].Data[j]
			}
			sort.Float64s(col)
			switch a.method {
			case AggMedian:
				if n%2 == 1 {
					dst[j] = col[n/2]
				} else {
					dst[j] = (col[n/2-1] + col[n/2]) / 2
				}
			default: // AggTrimmedMean
				var sum float64
				kept := col[drop : n-drop]
				for _, v := range kept {
					sum += v
				}
				dst[j] = sum / float64(len(kept))
			}
		}
	}
	return out, nil
}
