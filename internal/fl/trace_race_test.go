package fl

import (
	"sync"
	"testing"
	"time"
)

// TestTraceConcurrentWithSession: Trace is documented safe to call
// while the session runs (an admin health endpoint polls it); it must
// return a consistent snapshot, not alias the slice the round
// goroutine is appending to. Run with -race (make test) to catch the
// regression this guards against.
func TestTraceConcurrentWithSession(t *testing.T) {
	trainers := []Trainer{
		newTestTrainer("a", false, 1),
		newTestTrainer("b", false, 2),
		newTestTrainer("c", false, 3),
	}
	srv := NewServer(newState(0), ServerConfig{Rounds: 8, MinClients: 3})

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 4; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			seen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				trace := srv.Trace()
				if len(trace) < seen {
					t.Errorf("trace shrank from %d to %d rounds", seen, len(trace))
					return
				}
				seen = len(trace)
				for _, st := range trace {
					_ = st.UpdateNorm // touch the entries: the copy must be stable
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}

	serverErr, _, _, wg := startSession(srv, trainers)
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()

	if got := len(srv.Trace()); got != 8 {
		t.Fatalf("final trace has %d rounds, want 8", got)
	}
}
