package fl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gradsec/gradsec/internal/secagg"
	"github.com/gradsec/gradsec/internal/simclock"
	"github.com/gradsec/gradsec/internal/tz"
	"github.com/gradsec/gradsec/internal/wire"
)

// TestSecAggSessionMatchesPlaintext: the same weighted fleet run under
// plaintext FedAvg and under masked secure aggregation must land on
// bit-identical models — masks cancel in the ring, and the dyadic
// updates survive fixed-point quantisation exactly.
func TestSecAggSessionMatchesPlaintext(t *testing.T) {
	build := func() []*testTrainer {
		small := newTestTrainer("small", false, 2)
		small.examples = 1
		big := newTestTrainer("big", false, 6)
		big.examples = 3
		return []*testTrainer{small, big}
	}

	plainState := newState(1, 10)
	plainSrv := NewServer(plainState, ServerConfig{Rounds: 3})
	if _, err := runSession(t, plainSrv, build()); err != nil {
		t.Fatal(err)
	}

	maskedState := newState(1, 10)
	maskedSrv := NewServer(maskedState, ServerConfig{Rounds: 3, SecAgg: true})
	clients, err := runSession(t, maskedSrv, build())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		if !c.SecAgg {
			t.Fatalf("client %d did not negotiate secure aggregation", i)
		}
	}

	for i := range plainState {
		for j := range plainState[i].Data {
			if plainState[i].Data[j] != maskedState[i].Data[j] {
				t.Fatalf("tensor %d elem %d: plaintext %v != masked %v",
					i, j, plainState[i].Data[j], maskedState[i].Data[j])
			}
		}
	}
	for r, st := range maskedSrv.Trace() {
		want := plainSrv.Trace()[r]
		if st.Responded != want.Responded || st.WeightTotal != want.WeightTotal {
			t.Fatalf("round %d stats diverged: plaintext %+v, masked %+v", r, want, st)
		}
		if st.Reconciled != 0 {
			t.Fatalf("full cohort must need no reconciliation: %+v", st)
		}
	}
}

// TestSecAggStragglerReconciliation: a straggler is dropped at the
// deadline and the survivor reveals the pair's round seed, so the
// round closes on exactly the survivor's update. When the straggler's
// stale masked update finally arrives in the next round, the revealed
// seeds would strip its masks — accepting (or even silently ignoring)
// it leaves a recoverable plaintext update on the server, so it is
// refused with ErrLateAfterRecon and the device quarantined.
func TestSecAggStragglerReconciliation(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	fast := newTestTrainer("fast", false, 2)
	slow := newGateTrainer("slow", 4, 0)
	state := newState(0)
	var mu sync.Mutex
	var quarantineReason error
	hooks := eventHooks(events)
	forward := hooks.ClientQuarantined
	hooks.ClientQuarantined = func(device string, reason error) {
		mu.Lock()
		quarantineReason = reason
		mu.Unlock()
		forward(device, reason)
	}
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		SecAgg: true, Hooks: hooks,
	})
	serverErr, _, clientErrs, wg := startSession(srv, []Trainer{fast, slow})

	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}
	if closed.stats.Reconciled != 1 {
		t.Fatalf("round 0 reconciled %d masks, want 1", closed.stats.Reconciled)
	}

	waitEvent(t, events, "started")
	slow.release(0)
	q := waitEvent(t, events, "quarantined")
	if q.device != "slow" {
		t.Fatalf("quarantined %q, want the late straggler", q.device)
	}
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Quarantined != 1 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}
	if closed.stats.LateDiscarded != 0 || closed.stats.Reconciled != 1 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	reason := quarantineReason
	mu.Unlock()
	if !errors.Is(reason, ErrLateAfterRecon) {
		t.Fatalf("quarantine reason = %v, want ErrLateAfterRecon", reason)
	}
	// Only fast's +2 folded each round — the straggler's stale round-0
	// update was refused, never folded.
	if got := state[0].Data[0]; got != 4 {
		t.Fatalf("state = %v, want 4", got)
	}
	if clientErrs[1] == nil {
		t.Fatal("quarantined straggler must see its session torn down")
	}
}

// TestSecAggLateAfterReconProbation: with QuarantineRounds configured
// the late-after-reconciliation refusal routes through the probation
// machinery — the device keeps its connection and sits out the window
// instead of losing the session.
func TestSecAggLateAfterReconProbation(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	fast := newTestTrainer("fast", false, 2)
	// Gated on both rounds: round 0 makes it a straggler, round 1 keeps
	// it silent after probation so the round's accounting stays exact.
	slow := newGateTrainer("slow", 4, 0, 1)
	state := newState(0)
	var mu sync.Mutex
	var probationReason error
	hooks := eventHooks(events)
	forward := hooks.ClientProbationed
	hooks.ClientProbationed = func(device string, reason error) {
		mu.Lock()
		probationReason = reason
		mu.Unlock()
		forward(device, reason)
	}
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		SecAgg: true, QuarantineRounds: 2, Hooks: hooks,
	})
	serverErr, _, _, wg := startSession(srv, []Trainer{fast, slow})

	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 || closed.stats.Probation != 0 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}

	waitEvent(t, events, "started")
	slow.release(0)
	p := waitEvent(t, events, "probation")
	if p.device != "slow" {
		t.Fatalf("probationed %q, want the late straggler", p.device)
	}
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Probation != 1 || closed.stats.Quarantined != 0 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}
	if closed.stats.LateDiscarded != 0 || closed.stats.Reconciled != 1 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	reason := probationReason
	mu.Unlock()
	if !errors.Is(reason, ErrLateAfterRecon) {
		t.Fatalf("probation reason = %v, want ErrLateAfterRecon", reason)
	}
	if got := state[0].Data[0]; got != 4 {
		t.Fatalf("state = %v, want 4", got)
	}
	slow.release(1)
	wg.Wait()
}

// TestSecAggLateAfterReconTCP: the late-after-reconciliation refusal
// must hold on the real stream transport, not just in-memory pipes —
// TCP buffering delays and reorders nothing the protocol relies on.
func TestSecAggLateAfterReconTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	fast := newTestTrainer("fast", false, 2)
	slow := newGateTrainer("slow", 4, 0)
	var wg sync.WaitGroup
	clientErrs := make([]error, 2)
	for i, tr := range []Trainer{fast, slow} {
		wg.Add(1)
		go func(i int, tr Trainer) {
			defer wg.Done()
			conn, err := Dial(l.Addr())
			if err != nil {
				clientErrs[i] = err
				return
			}
			defer conn.Close()
			clientErrs[i] = NewClient(conn, tr).Run()
		}(i, tr)
	}
	conns := make([]Conn, 0, 2)
	for len(conns) < 2 {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	state := newState(0)
	var mu sync.Mutex
	var quarantineReason error
	hooks := eventHooks(events)
	forward := hooks.ClientQuarantined
	hooks.ClientQuarantined = func(device string, reason error) {
		mu.Lock()
		quarantineReason = reason
		mu.Unlock()
		forward(device, reason)
	}
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		SecAgg: true, Hooks: hooks,
	})
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(conns)
		serverErr <- err
	}()

	waitEvent(t, events, "folded")
	clk.Advance(time.Second)
	closed := waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Dropped != 1 || closed.stats.Reconciled != 1 {
		t.Fatalf("round 0 stats = %+v", closed.stats)
	}

	waitEvent(t, events, "started")
	slow.release(0)
	q := waitEvent(t, events, "quarantined")
	if q.device != "slow" {
		t.Fatalf("quarantined %q, want the late straggler", q.device)
	}
	closed = waitEvent(t, events, "closed")
	if closed.stats.Responded != 1 || closed.stats.Quarantined != 1 ||
		closed.stats.LateDiscarded != 0 || closed.stats.Reconciled != 1 {
		t.Fatalf("round 1 stats = %+v", closed.stats)
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	reason := quarantineReason
	mu.Unlock()
	if !errors.Is(reason, ErrLateAfterRecon) {
		t.Fatalf("quarantine reason = %v, want ErrLateAfterRecon", reason)
	}
	if got := state[0].Data[0]; got != 4 {
		t.Fatalf("state = %v, want 4", got)
	}
}

// TestSecAggKRegularAutoDegreeTCP: auto degree over the real stream
// transport with a cohort smaller than the degree floor. DegreeFor(3)
// is 6, so both sides must clamp the announced degree to the complete
// graph (2 neighbours) identically — a divergence here makes the
// server expect a share count the clients never produce.
func TestSecAggKRegularAutoDegreeTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	trainers := make([]*testTrainer, 3)
	for i := range trainers {
		trainers[i] = newTestTrainer(fmt.Sprintf("pi-%d", i), false, float64(i+1))
	}
	var wg sync.WaitGroup
	clientErrs := make([]error, len(trainers))
	for i, tr := range trainers {
		wg.Add(1)
		go func(i int, tr Trainer) {
			defer wg.Done()
			conn, err := Dial(l.Addr())
			if err != nil {
				clientErrs[i] = err
				return
			}
			defer conn.Close()
			clientErrs[i] = NewClient(conn, tr).Run()
		}(i, tr)
	}
	conns := make([]Conn, 0, len(trainers))
	for len(conns) < len(trainers) {
		c, err := l.Accept()
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	state := newState(1, 10)
	srv := NewServer(state, ServerConfig{
		Rounds: 3, SecAgg: true, MaskDegree: secagg.AutoDegree,
	})
	if _, err := srv.Run(conns); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range clientErrs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for r, st := range srv.Trace() {
		if st.Responded != 3 || st.Quarantined != 0 || st.Reconciled != 0 {
			t.Fatalf("round %d stats = %+v", r, st)
		}
	}
	// avg delta = 2 per round, 3 rounds → +6 on every element.
	if got := state[0].Data[0]; got != 7 {
		t.Fatalf("state[0] = %v, want 7", got)
	}
}

// TestSecAggKRegularMatchesPlaintext: with a k-regular mask graph (a
// proper subgraph of the complete cohort graph) and double masking,
// the full-cohort session still lands bit-identically on the
// plaintext model — pairwise masks cancel along graph edges and every
// self mask is removed via the reconstructed Shamir seeds.
func TestSecAggKRegularMatchesPlaintext(t *testing.T) {
	build := func() []*testTrainer {
		trainers := make([]*testTrainer, 8)
		for i := range trainers {
			trainers[i] = newTestTrainer(fmt.Sprintf("dev-%d", i), false, float64(i+1))
		}
		return trainers
	}

	plainState := newState(1, 10)
	plainSrv := NewServer(plainState, ServerConfig{Rounds: 3})
	if _, err := runSession(t, plainSrv, build()); err != nil {
		t.Fatal(err)
	}

	// Degree 4 over 8 devices: each member masks against 4 of its 7
	// possible peers, so cancellation genuinely follows the graph.
	maskedState := newState(1, 10)
	maskedSrv := NewServer(maskedState, ServerConfig{Rounds: 3, SecAgg: true, MaskDegree: 4})
	if _, err := runSession(t, maskedSrv, build()); err != nil {
		t.Fatal(err)
	}

	for i := range plainState {
		for j := range plainState[i].Data {
			if plainState[i].Data[j] != maskedState[i].Data[j] {
				t.Fatalf("tensor %d elem %d: plaintext %v != k-regular masked %v",
					i, j, plainState[i].Data[j], maskedState[i].Data[j])
			}
		}
	}
	for r, st := range maskedSrv.Trace() {
		want := plainSrv.Trace()[r]
		if st.Responded != want.Responded || st.WeightTotal != want.WeightTotal {
			t.Fatalf("round %d stats diverged: plaintext %+v, masked %+v", r, want, st)
		}
		// A full k-regular fold removes its self masks without counting
		// them as reconciled dropouts.
		if st.Reconciled != 0 {
			t.Fatalf("full cohort must report no reconciled dropouts: %+v", st)
		}
	}
}

// TestSecAggKRegularStragglerDropout: under a k-regular graph a
// dropped straggler is reconciled from its surviving neighbours alone
// — pair seeds for its edges, Shamir shares for the survivors' self
// masks — and the weighted aggregate of the survivors comes out
// exactly.
func TestSecAggKRegularStragglerDropout(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	events := make(chan engineEvent, 64)
	// Five responders with dyadic weighted mean: (1+2+3+4+6·4)/8 = 4.25.
	deltas := []float64{1, 2, 3, 4, 6}
	weights := []int{1, 1, 1, 1, 4}
	trainers := make([]Trainer, 0, 6)
	for i, d := range deltas {
		tr := newTestTrainer(fmt.Sprintf("dev-%d", i), false, d)
		tr.examples = weights[i]
		trainers = append(trainers, tr)
	}
	// Gated on both rounds: drops at each deadline, never reports late.
	slow := newGateTrainer("slow", 9, 0, 1)
	trainers = append(trainers, slow)

	state := newState(0)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, MinClients: 1, RoundDeadline: time.Second, Clock: clk,
		SecAgg: true, MaskDegree: 4, Hooks: eventHooks(events),
	})
	serverErr, _, _, wg := startSession(srv, trainers)

	for round := 0; round < 2; round++ {
		for i := 0; i < len(deltas); i++ {
			waitEvent(t, events, "folded")
		}
		clk.Advance(time.Second)
		closed := waitEvent(t, events, "closed")
		if closed.stats.Responded != 5 || closed.stats.Dropped != 1 {
			t.Fatalf("round %d stats = %+v", round, closed.stats)
		}
		if closed.stats.Reconciled != 1 {
			t.Fatalf("round %d reconciled %d, want 1", round, closed.stats.Reconciled)
		}
	}

	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	if got := state[0].Data[0]; got != 8.5 {
		t.Fatalf("state = %v, want 8.5 (two rounds of the exact 4.25 survivor mean)", got)
	}
	slow.release(0)
	slow.release(1)
	wg.Wait()
}

// TestSecAggEnclaveProtectedSession: with a protection plan, sealed
// updates are folded inside the aggregation enclave and the final model
// still matches a plaintext TEE session bit for bit.
func TestSecAggEnclaveProtectedSession(t *testing.T) {
	build := func() []*testTrainer {
		return []*testTrainer{
			newTestTrainer("tee-a", true, 2),
			newTestTrainer("tee-b", true, 6),
		}
	}

	plainState := newState(5, 50)
	plainTr := build()
	plainSrv := NewServer(plainState, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(plainTr...),
		Planner: staticPlanner{0: true},
	})
	if _, err := runSession(t, plainSrv, plainTr); err != nil {
		t.Fatal(err)
	}

	enclave, err := secagg.NewEnclave("aggregator")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	secState := newState(5, 50)
	secTr := build()
	secSrv := NewServer(secState, ServerConfig{
		Rounds: 2, RequireTEE: true, Verifier: setupVerifier(secTr...),
		Planner: staticPlanner{0: true}, SecAgg: true, Enclave: enclave,
	})
	if _, err := runSession(t, secSrv, secTr); err != nil {
		t.Fatal(err)
	}

	for i := range plainState {
		for j := range plainState[i].Data {
			if plainState[i].Data[j] != secState[i].Data[j] {
				t.Fatalf("tensor %d elem %d: plaintext %v != enclave %v",
					i, j, plainState[i].Data[j], secState[i].Data[j])
			}
		}
	}
	// The protection split must have reached the clients through the
	// enclave-sealed path.
	for _, tr := range secTr {
		if !tr.sawNilAt[0] || tr.sawNilAt[1] {
			t.Fatalf("protection split wrong: %v", tr.sawNilAt)
		}
		if len(tr.openedBlobs) != 2 {
			t.Fatalf("opened %d sealed payloads, want 2", len(tr.openedBlobs))
		}
	}
	if enclave.Device().SMCCount() == 0 {
		t.Fatal("enclave saw no world switches — sealed path bypassed it")
	}
	if got := enclave.Device().SecureMemory().InUse(); got != 0 {
		t.Fatalf("enclave leaked %d bytes of secure memory", got)
	}
}

// TestSecAggClientVerifiesEnclaveQuote: a client configured with an
// enclave verifier accepts a provisioned aggregator and refuses an
// unprovisioned one.
func TestSecAggClientVerifiesEnclaveQuote(t *testing.T) {
	enclave, err := secagg.NewEnclave("attested-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()

	run := func(provision bool) (clientErr error, serverErr error) {
		v := tz.NewVerifier()
		if provision {
			v.RegisterDevice(enclave.Device().Identity().ID(), enclave.Device().Identity().RootKey())
			m, err := enclave.Measurement()
			if err != nil {
				t.Fatal(err)
			}
			v.AllowMeasurement(m)
		}
		tr := newTestTrainer("tee", true, 2)
		srv := NewServer(newState(0), ServerConfig{
			Rounds: 1, SecAgg: true, Enclave: enclave,
			RequireTEE: true, Verifier: setupVerifier(tr),
		})
		sc, cc := Pipe()
		client := NewClient(cc, tr)
		client.EnclaveVerifier = v
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cc.Close() // a refusing client must release the transport
			clientErr = client.Run()
		}()
		_, serverErr = srv.Run([]Conn{sc})
		wg.Wait()
		return clientErr, serverErr
	}

	if cErr, sErr := run(true); cErr != nil || sErr != nil {
		t.Fatalf("provisioned enclave refused: client=%v server=%v", cErr, sErr)
	}
	cErr, sErr := run(false)
	if cErr == nil || !strings.Contains(cErr.Error(), "enclave attestation") {
		t.Fatalf("unprovisioned enclave accepted: %v", cErr)
	}
	if !errors.Is(sErr, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", sErr)
	}
}

// TestSecAggRejectsMissingMaskPub: a client that answers a secagg
// challenge without a mask key is turned away at selection.
func TestSecAggRejectsMissingMaskPub(t *testing.T) {
	sc, cc := Pipe()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true})

	var rejected string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cc.Close()
		msg, err := cc.Recv()
		if err != nil {
			return
		}
		ch, ok := msg.(*Challenge)
		if !ok || !ch.SecAgg {
			return
		}
		_ = cc.Send(&Attest{DeviceID: "bare"})
		if m, err := cc.Recv(); err == nil {
			if rej, ok := m.(*Reject); ok {
				rejected = rej.Reason
			}
		}
	}()
	_, err := srv.Run([]Conn{sc})
	wg.Wait()
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", err)
	}
	if !strings.Contains(rejected, "mask") {
		t.Fatalf("rejection reason = %q", rejected)
	}
}

// TestSecAggRejectsGarbageMaskPub: an unparseable mask key would abort
// every honest peer's masking if it reached the roster, so it is
// rejected at selection like an absent one.
func TestSecAggRejectsGarbageMaskPub(t *testing.T) {
	sc, cc := Pipe()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true})

	var rejected string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer cc.Close()
		if _, err := cc.Recv(); err != nil {
			return
		}
		_ = cc.Send(&Attest{DeviceID: "garbled", MaskPub: []byte{1, 2, 3}})
		if m, err := cc.Recv(); err == nil {
			if rej, ok := m.(*Reject); ok {
				rejected = rej.Reason
			}
		}
	}()
	_, err := srv.Run([]Conn{sc})
	wg.Wait()
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("server err = %v", err)
	}
	if !strings.Contains(rejected, "mask") {
		t.Fatalf("rejection reason = %q", rejected)
	}
}

// TestMaskSharesRejectsShortSeed: a truncated seed must fail decoding
// rather than zero-pad into a wrong-mask subtraction.
func TestMaskSharesRejectsShortSeed(t *testing.T) {
	good := &MaskShares{Round: 1, Shares: []secagg.PairShare{{Device: "d", Seed: [32]byte{9}}}}
	if _, err := DecodeMessage(MsgMaskShares, EncodeMessage(good)); err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter()
	w.Uvarint(1) // round
	w.Uvarint(1) // one share
	w.String("d")
	w.Blob([]byte{1, 2, 3}) // 3-byte seed
	if _, err := DecodeMessage(MsgMaskShares, w.Bytes()); err == nil {
		t.Fatal("short seed must fail decoding")
	}
}

// TestSecAggRejectsDuplicateDevices: pairwise masking keys masks to
// device names, so a second client with the same name is turned away.
func TestSecAggRejectsDuplicateDevices(t *testing.T) {
	state := newState(0)
	srv := NewServer(state, ServerConfig{Rounds: 1, SecAgg: true, MinClients: 1})
	a := newTestTrainer("twin", false, 2)
	b := newTestTrainer("twin", false, 4)
	clients, err := runSession(t, srv, []*testTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if clients[0].RejectedReason != "" {
		t.Fatalf("first twin rejected: %s", clients[0].RejectedReason)
	}
	if !strings.Contains(clients[1].RejectedReason, "duplicate") {
		t.Fatalf("second twin reason = %q", clients[1].RejectedReason)
	}
	if got := state[0].Data[0]; got != 2 {
		t.Fatalf("state = %v, want only the first twin's update", got)
	}
}

// TestSecAggDuplicateDeviceCannotClobberEnclaveChannel: with an
// enclave, the first establisher of a device name keeps its channel;
// the duplicate is rejected during selection and the surviving twin's
// sealed path still works end to end.
func TestSecAggDuplicateDeviceCannotClobberEnclaveChannel(t *testing.T) {
	enclave, err := secagg.NewEnclave("twin-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	a := newTestTrainer("twin", true, 2)
	b := newTestTrainer("twin", true, 2)
	state := newState(5, 50)
	srv := NewServer(state, ServerConfig{
		Rounds: 2, SecAgg: true, Enclave: enclave, MinClients: 1,
		RequireTEE: true, Verifier: setupVerifier(a, b),
		Planner: staticPlanner{0: true},
	})
	clients, err := runSession(t, srv, []*testTrainer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rejections := 0
	for _, c := range clients {
		if c.RejectedReason != "" {
			rejections++
		}
	}
	if rejections != 1 {
		t.Fatalf("%d twins rejected, want exactly 1 (reasons: %q / %q)",
			rejections, clients[0].RejectedReason, clients[1].RejectedReason)
	}
	// The survivor's trusted channel must still work: both tensors
	// advanced by +2 per round across 2 rounds, protected one included.
	if state[0].Data[0] != 9 || state[1].Data[0] != 54 {
		t.Fatalf("state = %v / %v, want 9 / 54", state[0].Data[0], state[1].Data[0])
	}
}

// TestSecAggProtectionWithoutEnclaveFails: the server must refuse to
// run a protected plan without an enclave rather than unseal updates
// itself.
func TestSecAggProtectionWithoutEnclaveFails(t *testing.T) {
	tr := newTestTrainer("tee", true, 2)
	srv := NewServer(newState(0), ServerConfig{
		Rounds: 1, SecAgg: true, Planner: staticPlanner{0: true},
		RequireTEE: true, Verifier: setupVerifier(tr),
	})
	_, err := runSession(t, srv, []*testTrainer{tr})
	if !errors.Is(err, ErrSecAggNeedsEnclave) {
		t.Fatalf("err = %v, want ErrSecAggNeedsEnclave", err)
	}
}

// TestSecAggEnclaveRequiresChannel: in enclave-backed sessions a client
// without a trusted channel would fracture the uniform masked layout
// and is rejected at selection.
func TestSecAggEnclaveRequiresChannel(t *testing.T) {
	enclave, err := secagg.NewEnclave("strict-agg")
	if err != nil {
		t.Fatal(err)
	}
	defer enclave.Close()
	srv := NewServer(newState(0), ServerConfig{Rounds: 1, SecAgg: true, Enclave: enclave})
	plain := newTestTrainer("no-tee", false, 2)
	clients, err := runSession(t, srv, []*testTrainer{plain})
	if !errors.Is(err, ErrNotEnoughClients) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(clients[0].RejectedReason, "trusted channel") {
		t.Fatalf("reason = %q", clients[0].RejectedReason)
	}
}
